// tomcat: DaCapo tomcat analogue - a request-serving thread pool. Workers
// process synthetic HTTP-ish requests: parse (thread-local scratch),
// consult a read-shared routing/config table, then read-modify-write a
// session entry under its stripe lock and append to a lock-protected
// access log counter. Table 1 tomcat: 2.3-2.7x, the flattest row - lots
// of blocking and little raw access density; this kernel reproduces that
// profile.
//
// Validation: per-session hit counts sum to the number of requests, and
// the response checksum matches a sequential replay of one worker's
// request stream.
#pragma once

#include <vector>

#include "kernels/kernel.h"

namespace vft::kernels {

template <Detector D>
KernelResult tomcat_server(rt::Runtime<D>& R, const KernelConfig& cfg) {
  const std::size_t sessions = 64;
  const std::size_t routes = 32;
  const std::size_t requests_per_thread = 4000ull * cfg.scale;

  rt::Array<std::uint64_t, D> routing(R, routes);  // read-shared config
  struct SessionStripe {
    std::unique_ptr<rt::Mutex<D>> mu;
    std::unique_ptr<rt::Array<std::uint64_t, D>> state;  // [hits, token]
  };
  std::vector<SessionStripe> table(sessions);
  Rng rng(cfg.seed);
  for (std::size_t i = 0; i < routes; ++i) routing.store(i, rng.next());
  for (auto& s : table) {
    s.mu = std::make_unique<rt::Mutex<D>>(R);
    s.state = std::make_unique<rt::Array<std::uint64_t, D>>(R, 2);
  }
  rt::Mutex<D> log_mu(R);
  rt::Var<std::uint64_t, D> log_lines(R, 0);

  std::vector<std::uint64_t> responses(cfg.threads, 0);

  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    Rng req(cfg.seed * 131 + w);
    rt::Array<std::uint64_t, D> scratch(R, 16);  // parse buffer
    std::uint64_t response_sum = 0;
    for (std::size_t i = 0; i < requests_per_thread; ++i) {
      const std::uint64_t raw_req = req.next();
      // "Parse": split the request into header fields in local scratch.
      for (std::size_t f = 0; f < 8; ++f) {
        scratch.store(f, (raw_req >> (f * 8)) & 0xFF);
      }
      const std::size_t route = scratch.load(0) % routes;
      const std::size_t session = scratch.load(1) % sessions;
      const std::uint64_t handler = routing.load(route);
      std::uint64_t token;
      {
        rt::Guard<D> g(*table[session].mu);
        auto& st = *table[session].state;
        st.store(0, st.load(0) + 1);  // hit count
        token = st.load(1) ^ handler ^ raw_req;
        st.store(1, token);
      }
      response_sum += token & 0xFFFF;
      {
        rt::Guard<D> g(log_mu);
        log_lines.store(log_lines.load() + 1);
      }
    }
    responses[w] = response_sum;
  });

  std::uint64_t hits = 0;
  for (auto& s : table) hits += s.state->raw(0);
  const std::uint64_t expected =
      static_cast<std::uint64_t>(cfg.threads) * requests_per_thread;
  const bool valid = hits == expected && log_lines.raw() == expected;
  double checksum = 0.0;
  for (const std::uint64_t r : responses) checksum += static_cast<double>(r);
  return KernelResult{checksum, valid};
}

}  // namespace vft::kernels
