// jython: DaCapo jython analogue - a bytecode interpreter. Each worker
// interprets its own synthetic program over a thread-local operand stack
// and local-variable frame (dense exclusive/same-epoch traffic: the
// interpreter loop touches the heap on every opcode), with a read-shared
// constant pool and a shared module dictionary updated under a lock on
// rare STORE_GLOBAL opcodes. Table 1 jython: ~8.5x, nearly uniform across
// tools - access-dense but thread-local.
//
// Validation: interpreters are deterministic; each program's final
// accumulator is compared against an uninstrumented reference interpreter.
#pragma once

#include <vector>

#include "kernels/kernel.h"

namespace vft::kernels {

namespace jython_detail {

enum Op : std::uint8_t {
  kPushConst,   // push constpool[arg]
  kLoadLocal,   // push frame[arg]
  kStoreLocal,  // frame[arg] = pop
  kAdd,         // push(pop + pop)
  kXorMul,      // push(pop ^ (pop * 31))
  kDup,         // duplicate top
  kStoreGlobal, // module[arg % globals] = top (locked, rare)
  kNumOps,
};

struct Insn {
  Op op;
  std::uint32_t arg;
};

/// Deterministic synthetic program; always leaves >= 1 stack slot.
inline std::vector<Insn> make_program(Rng& rng, std::size_t len) {
  std::vector<Insn> prog;
  prog.push_back({kPushConst, 0});
  std::size_t depth = 1;
  for (std::size_t i = 1; i < len; ++i) {
    const std::uint32_t arg = static_cast<std::uint32_t>(rng.next_below(16));
    const std::uint64_t pick = rng.next_below(100);
    if (depth >= 2 && pick < 25) {
      prog.push_back({kAdd, 0});
      --depth;
    } else if (depth >= 2 && pick < 45) {
      prog.push_back({kXorMul, 0});
      --depth;
    } else if (pick < 60 && depth < 30) {
      prog.push_back({kPushConst, arg});
      ++depth;
    } else if (pick < 75 && depth < 30) {
      prog.push_back({kLoadLocal, arg});
      ++depth;
    } else if (pick < 90 && depth >= 2) {
      prog.push_back({kStoreLocal, arg});
      --depth;
    } else if (pick < 97 && depth < 30) {
      prog.push_back({kDup, 0});
      ++depth;
    } else {
      prog.push_back({kStoreGlobal, arg});
    }
  }
  return prog;
}

}  // namespace jython_detail

template <Detector D>
KernelResult jython_interp(rt::Runtime<D>& R, const KernelConfig& cfg) {
  using namespace jython_detail;
  const std::size_t prog_len = 4000;
  const std::size_t runs = 12 * cfg.scale;
  constexpr std::size_t kGlobals = 32;
  constexpr std::size_t kConsts = 16;

  rt::Array<std::uint64_t, D> constpool(R, kConsts);
  rt::Array<std::uint64_t, D> module(R, kGlobals);  // lock-protected
  rt::Mutex<D> module_mu(R);

  Rng init(cfg.seed);
  for (std::size_t i = 0; i < kConsts; ++i) constpool.store(i, init.next());

  // Per-thread programs, generated deterministically.
  std::vector<std::vector<Insn>> programs(cfg.threads);
  for (std::uint32_t w = 0; w < cfg.threads; ++w) {
    Rng prng(cfg.seed * 977 + w);
    programs[w] = make_program(prng, prog_len);
  }

  std::vector<std::uint64_t> finals(cfg.threads, 0);

  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    // Thread-local interpreter state, instrumented (heap in real Jython).
    rt::Array<std::uint64_t, D> stack(R, 64);
    rt::Array<std::uint64_t, D> frame(R, 16);
    std::uint64_t acc = 0;
    for (std::size_t run = 0; run < runs; ++run) {
      std::size_t sp = 0;
      for (const Insn& insn : programs[w]) {
        switch (insn.op) {
          case kPushConst:
            stack.store(sp++, constpool.load(insn.arg % kConsts));
            break;
          case kLoadLocal:
            stack.store(sp++, frame.load(insn.arg % 16));
            break;
          case kStoreLocal:
            frame.store(insn.arg % 16, stack.load(--sp));
            break;
          case kAdd: {
            const std::uint64_t a = stack.load(--sp);
            const std::uint64_t b = stack.load(--sp);
            stack.store(sp++, a + b);
            break;
          }
          case kXorMul: {
            const std::uint64_t a = stack.load(--sp);
            const std::uint64_t b = stack.load(--sp);
            stack.store(sp++, a ^ (b * 31));
            break;
          }
          case kDup: {
            const std::uint64_t a = stack.load(sp - 1);
            stack.store(sp++, a);
            break;
          }
          case kStoreGlobal: {
            rt::Guard<D> g(module_mu);
            module.store(insn.arg % kGlobals,
                         module.load(insn.arg % kGlobals) ^
                             stack.load(sp - 1));
            break;
          }
          default:
            break;
        }
      }
      acc ^= stack.load(sp - 1) + run;
    }
    finals[w] = acc;
  });

  // Reference: uninstrumented re-interpretation of thread 0's program.
  bool valid = true;
  if (cfg.validate) {
    std::vector<std::uint64_t> stack(64, 0), frame(16, 0);
    std::vector<std::uint64_t> consts(kConsts);
    Rng init2(cfg.seed);
    for (std::size_t i = 0; i < kConsts; ++i) consts[i] = init2.next();
    std::uint64_t acc = 0;
    for (std::size_t run = 0; run < runs; ++run) {
      std::size_t sp = 0;
      for (const Insn& insn : programs[0]) {
        switch (insn.op) {
          case kPushConst: stack[sp++] = consts[insn.arg % kConsts]; break;
          case kLoadLocal: stack[sp++] = frame[insn.arg % 16]; break;
          case kStoreLocal: frame[insn.arg % 16] = stack[--sp]; break;
          case kAdd: {
            const std::uint64_t a = stack[--sp];
            const std::uint64_t b = stack[--sp];
            stack[sp++] = a + b;
            break;
          }
          case kXorMul: {
            const std::uint64_t a = stack[--sp];
            const std::uint64_t b = stack[--sp];
            stack[sp++] = a ^ (b * 31);
            break;
          }
          case kDup: {
            const std::uint64_t a = stack[sp - 1];
            stack[sp++] = a;
            break;
          }
          case kStoreGlobal: break;  // does not affect the accumulator
          default: break;
        }
      }
      acc ^= stack[sp - 1] + run;
    }
    valid = finals[0] == acc;
  }
  double checksum = 0.0;
  for (const std::uint64_t f : finals) {
    checksum += static_cast<double>(f & 0xFFFFF);
  }
  return KernelResult{checksum, valid};
}

}  // namespace vft::kernels
