// Common scaffolding for the benchmark kernel suite: the C++ analogues of
// the JavaGrande and DaCapo programs of Table 1 (DESIGN.md Section 1.4
// maps each kernel to the program it stands in for).
//
// Every kernel is a function template over the detector type D, so the
// detector's handlers inline into the target code (static dispatch - the
// analogue of RoadRunner inlining tool fast paths). Each kernel:
//   - is race-free by construction (all sharing goes through instrumented
//     locks/barriers/volatiles), unless fault injection is enabled;
//   - routes its dominant data-structure accesses through rt::Var/rt::Array
//     (heap accesses are instrumented; scalar locals are not, mirroring
//     how RoadRunner instruments heap but not JVM locals);
//   - validates its own output (valid flag), so instrumentation bugs that
//     corrupt target semantics fail loudly;
//   - returns a deterministic checksum given (scale, threads, seed).
//
// `scale` grows the problem size roughly linearly in work.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "runtime/instrument.h"

namespace vft::kernels {

/// Where a kernel's dominant arrays keep their element shadow:
///   kInline  a private VarState allocation inside rt::Array (the default,
///            and what the Table 1 runs measure);
///   kTable   carved from the runtime's sharded-hash ShadowTable;
///   kSpace   carved from the runtime's lock-free two-level ShadowSpace,
///            so raw-pointer and wrapper instrumentation agree;
///   kPacked  carved from the runtime's PackedShadowSpace: accesses run
///            the 64-bit packed-cell same-epoch fast path inline and only
///            escalated words materialize a VarState (spill-capable
///            detectors; NullTool falls back to kInline).
enum class ShadowBackend : std::uint8_t { kInline, kTable, kSpace, kPacked };

inline const char* shadow_backend_name(ShadowBackend b) {
  switch (b) {
    case ShadowBackend::kTable: return "table";
    case ShadowBackend::kSpace: return "space";
    case ShadowBackend::kPacked: return "packed";
    default: return "inline";
  }
}

struct KernelConfig {
  std::uint32_t threads = 4;
  std::uint32_t scale = 1;
  std::uint64_t seed = 42;
  /// Shadow backend for kernels ported to the address-keyed API
  /// (currently sor and lufact); others ignore it.
  ShadowBackend shadow = ShadowBackend::kInline;
  /// When true, the kernel plants one unsynchronized access pattern so the
  /// detector under test should report at least one race (fault injection
  /// for the detection tests; benches never set this).
  bool inject_race = false;
  /// When false, kernels skip output validation whose cost is not
  /// negligible next to the kernel itself (timed bench iterations set this
  /// after one validated warm-up run, so ratios are not diluted by
  /// uninstrumented validation work). `valid` is then reported as true.
  bool validate = true;
};

struct KernelResult {
  double checksum = 0.0;
  bool valid = false;
};

/// SplitMix64: tiny deterministic RNG for kernel inputs. (Not the
/// std::mt19937 used by the trace generator; kernels need something cheap
/// enough to call inside instrumented loops without dominating them.)
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ull) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return next() % n; }

 private:
  std::uint64_t state_;
};

/// Standard-normal via Box-Muller (montecarlo needs gaussians).
inline double gaussian(Rng& rng) {
  double u1 = rng.next_double();
  double u2 = rng.next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

/// [begin, end) slice of n items for worker w out of p.
struct Slice {
  std::size_t begin;
  std::size_t end;
};

inline Slice slice_of(std::size_t n, std::uint32_t w, std::uint32_t p) {
  const std::size_t chunk = n / p;
  const std::size_t rem = n % p;
  const std::size_t begin = static_cast<std::size_t>(w) * chunk + std::min<std::size_t>(w, rem);
  const std::size_t len = chunk + (w < rem ? 1 : 0);
  return Slice{begin, begin + len};
}

/// An rt::Array whose shadow placement follows cfg.shadow: inline, or
/// carved from one of the runtime-owned address-keyed backends.
template <typename T, Detector D>
rt::Array<T, D> make_shadowed_array(rt::Runtime<D>& R, const KernelConfig& cfg,
                                    std::size_t n, T initial = T{}) {
  switch (cfg.shadow) {
    case ShadowBackend::kTable:
      return rt::Array<T, D>(R, R.shadow_table(), n, initial);
    case ShadowBackend::kSpace:
      return rt::Array<T, D>(R, R.shadow_space(), n, initial);
    case ShadowBackend::kPacked:
      if constexpr (rt::kPackedCapable<D>) {
        return rt::Array<T, D>(R, R.packed_space(), n, initial);
      } else {
        return rt::Array<T, D>(R, n, initial);  // nothing to pack (NullTool)
      }
    default:
      return rt::Array<T, D>(R, n, initial);
  }
}

}  // namespace vft::kernels
