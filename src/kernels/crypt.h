// crypt: JavaGrande IDEA-crypt analogue (DESIGN.md 1.4).
//
// Block cipher encrypt + decrypt over a partitioned text array with a
// small, hot, *read-shared* round-key table. The access mix is dominated
// by key-table reads (read-shared same-epoch after the first touch per
// epoch) and per-thread text reads/writes (same-epoch / exclusive), which
// is why the real crypt shows the highest overheads in Table 1: almost
// every cycle of the target is a heap access.
//
// Cipher: XTEA (64-bit blocks, 32 rounds) with the round-key additions
// precomputed into a 128-entry table so each round performs two
// instrumented key reads, as the IDEA key schedule does.
#pragma once

#include "kernels/kernel.h"

namespace vft::kernels {

namespace crypt_detail {

constexpr std::uint32_t kRounds = 32;

/// One XTEA encryption of block b, operating *in place* on the buffer the
/// way the Java IDEA kernel works byte-wise through its arrays: every
/// round re-loads and re-stores the two block words (thread-partitioned,
/// so [Read/Write Same Epoch] traffic) and reads two round-key terms
/// (read-shared traffic). This access density is what makes crypt the
/// most overhead-sensitive row of Table 1.
template <Detector D>
inline void encipher(rt::Array<std::uint32_t, D>& buf, std::size_t b,
                     rt::Array<std::uint32_t, D>& ks0,
                     rt::Array<std::uint32_t, D>& ks1) {
  for (std::uint32_t r = 0; r < kRounds; ++r) {
    std::uint32_t v0 = buf.load(2 * b);
    std::uint32_t v1 = buf.load(2 * b + 1);
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ ks0.load(r);
    buf.store(2 * b, v0);
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ ks1.load(r);
    buf.store(2 * b + 1, v1);
  }
}

template <Detector D>
inline void decipher(rt::Array<std::uint32_t, D>& buf, std::size_t b,
                     rt::Array<std::uint32_t, D>& ks0,
                     rt::Array<std::uint32_t, D>& ks1) {
  for (std::uint32_t r = kRounds; r-- > 0;) {
    std::uint32_t v1 = buf.load(2 * b + 1);
    std::uint32_t v0 = buf.load(2 * b);
    v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ ks1.load(r);
    buf.store(2 * b + 1, v1);
    v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ ks0.load(r);
    buf.store(2 * b, v0);
  }
}

}  // namespace crypt_detail

template <Detector D>
KernelResult crypt(rt::Runtime<D>& R, const KernelConfig& cfg) {
  using namespace crypt_detail;
  const std::size_t blocks = static_cast<std::size_t>(4096) * cfg.scale;
  const std::size_t words = blocks * 2;

  rt::Array<std::uint32_t, D> text(R, words);
  rt::Array<std::uint32_t, D> enc(R, words);
  rt::Array<std::uint32_t, D> dec(R, words);
  rt::Array<std::uint32_t, D> ks0(R, kRounds);
  rt::Array<std::uint32_t, D> ks1(R, kRounds);

  // Key schedule + plaintext, filled by the main thread (exclusive epochs);
  // workers read them after the fork happens-before edge.
  Rng rng(cfg.seed);
  std::uint32_t key[4];
  for (std::uint32_t& k : key) k = static_cast<std::uint32_t>(rng.next());
  std::uint32_t sum = 0;
  constexpr std::uint32_t kDelta = 0x9E3779B9;
  for (std::uint32_t r = 0; r < kRounds; ++r) {
    ks0.store(r, sum + key[sum & 3]);
    sum += kDelta;
    ks1.store(r, sum + key[(sum >> 11) & 3]);
  }
  for (std::size_t i = 0; i < words; ++i) {
    text.store(i, static_cast<std::uint32_t>(rng.next()));
  }

  // Phase 1: parallel encrypt (each worker owns a block slice).
  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    const Slice s = slice_of(blocks, w, cfg.threads);
    for (std::size_t b = s.begin; b < s.end; ++b) {
      enc.store(2 * b, text.load(2 * b));
      enc.store(2 * b + 1, text.load(2 * b + 1));
      encipher(enc, b, ks0, ks1);
    }
  });

  // Optional fault injection: one worker re-writes a block of `enc` that
  // belongs to another worker's slice, without synchronization.
  if (cfg.inject_race && cfg.threads >= 2) {
    rt::parallel_for_threads(R, 2, [&](std::uint32_t w) {
      enc.store(0, enc.load(0) + w);  // both threads, same element, no lock
    });
  }

  // Phase 2: parallel decrypt.
  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    const Slice s = slice_of(blocks, w, cfg.threads);
    for (std::size_t b = s.begin; b < s.end; ++b) {
      dec.store(2 * b, enc.load(2 * b));
      dec.store(2 * b + 1, enc.load(2 * b + 1));
      decipher(dec, b, ks0, ks1);
    }
  });

  // Validate round-trip on a sample (cheap relative to the cipher work).
  bool valid = true;
  if (!cfg.inject_race) {
    for (std::size_t i = 0; i < words; i += 97) {
      if (dec.raw(i) != text.raw(i)) {
        valid = false;
        break;
      }
    }
  }
  double checksum = 0.0;
  for (std::size_t i = 0; i < words; i += 1021) {
    checksum += static_cast<double>(enc.raw(i) & 0xFFFF);
  }
  return KernelResult{checksum, valid};
}

}  // namespace vft::kernels
