// raytracer: JavaGrande raytracer analogue.
//
// A sphere-scene ray tracer: the scene description (sphere centers, radii,
// colors, one light) is hot *read-shared* data consulted many times per
// pixel; pixels are written exclusively by the rendering worker (rows are
// dealt round-robin). Heavy read-shared traffic is why the real raytracer
// gains so much from v2's lock-free [Read Shared Same Epoch] path
// (Table 1: 82x for v1 vs 13.3x for v2).
//
// Validation: 16 sampled pixels are re-rendered sequentially with
// uninstrumented reads and compared bit-for-bit.
#pragma once

#include "kernels/kernel.h"

namespace vft::kernels {

namespace ray_detail {

constexpr std::size_t kSpheres = 12;
// Scene layout in the flat array: per sphere [cx, cy, cz, r, shade].
constexpr std::size_t kStride = 5;

struct Vec {
  double x, y, z;
};

inline Vec sub(Vec a, Vec b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
inline double dot(Vec a, Vec b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
inline Vec scale(Vec a, double s) { return {a.x * s, a.y * s, a.z * s}; }
inline Vec add(Vec a, Vec b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
inline Vec norm(Vec a) {
  const double inv = 1.0 / std::sqrt(dot(a, a));
  return scale(a, inv);
}

/// Trace one primary ray against the scene; `fetch(i)` reads scene slot i
/// (instrumented in the parallel phase, raw in validation).
template <typename Fetch>
double shade_pixel(double px, double py, Fetch&& fetch) {
  const Vec origin{0.0, 0.0, -6.0};
  const Vec dir = norm(Vec{px, py, 2.0});
  double best_t = 1e30;
  std::size_t hit = kSpheres;
  for (std::size_t s = 0; s < kSpheres; ++s) {
    const Vec c{fetch(s * kStride), fetch(s * kStride + 1),
                fetch(s * kStride + 2)};
    const double r = fetch(s * kStride + 3);
    const Vec oc = sub(origin, c);
    const double b = 2.0 * dot(oc, dir);
    const double cc = dot(oc, oc) - r * r;
    const double disc = b * b - 4.0 * cc;
    if (disc <= 0.0) continue;
    const double t = (-b - std::sqrt(disc)) * 0.5;
    if (t > 1e-6 && t < best_t) {
      best_t = t;
      hit = s;
    }
  }
  if (hit == kSpheres) return 0.02;  // background
  const Vec c{fetch(hit * kStride), fetch(hit * kStride + 1),
              fetch(hit * kStride + 2)};
  const Vec p = add(origin, scale(dir, best_t));
  const Vec n = norm(sub(p, c));
  const Vec light = norm(Vec{0.4, 0.9, -0.5});
  const double lambert = std::max(0.0, dot(n, light));
  return fetch(hit * kStride + 4) * (0.15 + 0.85 * lambert);
}

}  // namespace ray_detail

template <Detector D>
KernelResult raytracer(rt::Runtime<D>& R, const KernelConfig& cfg) {
  using namespace ray_detail;
  const std::size_t width = 96;
  const std::size_t height = 24 * cfg.scale + 24;

  rt::Array<double, D> scene(R, kSpheres * kStride);
  rt::Array<double, D> image(R, width * height);

  Rng rng(cfg.seed);
  for (std::size_t s = 0; s < kSpheres; ++s) {
    scene.store(s * kStride + 0, (rng.next_double() - 0.5) * 6.0);
    scene.store(s * kStride + 1, (rng.next_double() - 0.5) * 4.0);
    scene.store(s * kStride + 2, rng.next_double() * 4.0);
    scene.store(s * kStride + 3, 0.4 + rng.next_double() * 0.9);
    scene.store(s * kStride + 4, 0.3 + rng.next_double() * 0.7);
  }

  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    for (std::size_t y = w; y < height; y += cfg.threads) {
      for (std::size_t x = 0; x < width; ++x) {
        const double px = (static_cast<double>(x) / width - 0.5) * 4.0;
        const double py = (static_cast<double>(y) / height - 0.5) * 3.0;
        const double v =
            shade_pixel(px, py, [&](std::size_t i) { return scene.load(i); });
        image.store(y * width + x, v);
      }
    }
  });

  // Validate 16 sampled pixels against an uninstrumented re-render.
  bool valid = true;
  for (std::size_t k = 0; k < 16 && valid; ++k) {
    const std::size_t x = (k * 37) % width;
    const std::size_t y = (k * 53) % height;
    const double px = (static_cast<double>(x) / width - 0.5) * 4.0;
    const double py = (static_cast<double>(y) / height - 0.5) * 3.0;
    const double ref =
        shade_pixel(px, py, [&](std::size_t i) { return scene.raw(i); });
    valid = image.raw(y * width + x) == ref;
  }
  double checksum = 0.0;
  for (std::size_t i = 0; i < width * height; i += 7) checksum += image.raw(i);
  return KernelResult{checksum, valid};
}

}  // namespace vft::kernels
