// Kernel registry: every benchmark kernel, addressable by name, for a
// given detector type. Benches and tests iterate this table to cover the
// whole suite (the rows of Table 1).
#pragma once

#include <vector>

#include "kernels/avrora_sim.h"
#include "kernels/batik_raster.h"
#include "kernels/crypt.h"
#include "kernels/fop_layout.h"
#include "kernels/h2db.h"
#include "kernels/jython_interp.h"
#include "kernels/kernel.h"
#include "kernels/lufact.h"
#include "kernels/lusearch_idx.h"
#include "kernels/lusearch_query.h"
#include "kernels/moldyn.h"
#include "kernels/montecarlo.h"
#include "kernels/pmd_analyze.h"
#include "kernels/raytracer.h"
#include "kernels/series.h"
#include "kernels/sor.h"
#include "kernels/sparse.h"
#include "kernels/sunflow_render.h"
#include "kernels/tomcat_server.h"
#include "kernels/xalan_xform.h"

namespace vft::kernels {

template <Detector D>
using KernelFn = KernelResult (*)(rt::Runtime<D>&, const KernelConfig&);

template <Detector D>
struct KernelEntry {
  const char* name;
  KernelFn<D> fn;
  /// True when the kernel supports inject_race fault injection.
  bool injectable;
};

/// All 19 kernels, in Table 1 row order (JavaGrande block then the DaCapo
/// block; tradebeans/eclipse are omitted in the paper too).
template <Detector D>
std::vector<KernelEntry<D>> kernel_table() {
  return {
      {"crypt", &crypt<D>, true},
      {"lufact", &lufact<D>, false},
      {"moldyn", &moldyn<D>, false},
      {"montecarlo", &montecarlo<D>, false},
      {"raytracer", &raytracer<D>, false},
      {"series", &series<D>, false},
      {"sor", &sor<D>, false},
      {"sparse", &sparse<D>, false},
      {"avrora", &avrora_sim<D>, false},
      {"batik", &batik_raster<D>, false},
      {"fop", &fop_layout<D>, false},
      {"h2", &h2db<D>, false},
      {"jython", &jython_interp<D>, false},
      {"luindex", &lusearch_idx<D>, false},
      {"lusearch", &lusearch_query<D>, false},
      {"pmd", &pmd_analyze<D>, false},
      {"sunflow", &sunflow_render<D>, false},
      {"tomcat", &tomcat_server<D>, false},
      {"xalan", &xalan_xform<D>, false},
  };
}

/// Run one kernel under a fresh runtime/collector; returns (result, races).
template <Detector D, typename... ToolArgs>
std::pair<KernelResult, std::size_t> run_kernel(KernelFn<D> fn,
                                                const KernelConfig& cfg,
                                                ToolArgs&&... tool_args) {
  RaceCollector races;
  rt::Runtime<D> R(D(&races, std::forward<ToolArgs>(tool_args)...));
  typename rt::Runtime<D>::MainScope scope(R);
  const KernelResult result = fn(R, cfg);
  return {result, races.count()};
}

}  // namespace vft::kernels
