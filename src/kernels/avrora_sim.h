// avrora_sim: DaCapo avrora analogue - a multithreaded discrete-event
// simulator. A global event queue (binary heap under an instrumented lock)
// feeds workers; processing an event locks the target component, mutates
// its instrumented state registers, and usually schedules a follow-up
// event. Nearly every access is lock-protected and components migrate
// between threads constantly, so epochs rarely repeat - this is the
// "low overhead, sync-heavy" end of the table (avrora: 1.4-3.8x).
//
// Validation: exactly `budget` events are processed, and the sum of
// per-component event counters equals the global count.
#pragma once

#include <vector>

#include "kernels/kernel.h"

namespace vft::kernels {

template <Detector D>
KernelResult avrora_sim(rt::Runtime<D>& R, const KernelConfig& cfg) {
  const std::size_t components = 64;
  constexpr std::size_t kRegs = 8;  // state registers per component
  const std::uint64_t budget = 20000ull * cfg.scale;

  struct Component {
    std::unique_ptr<rt::Mutex<D>> mu;
    std::unique_ptr<rt::Array<std::uint64_t, D>> regs;
  };
  std::vector<Component> comps(components);
  for (auto& c : comps) {
    c.mu = std::make_unique<rt::Mutex<D>>(R);
    c.regs = std::make_unique<rt::Array<std::uint64_t, D>>(R, kRegs);
  }

  // Event queue: (time, component) min-heap under its own lock.
  struct Event {
    std::uint64_t time;
    std::uint32_t comp;
    bool operator<(const Event& o) const { return time > o.time; }  // min-heap
  };
  rt::Mutex<D> queue_mu(R);
  std::vector<Event> heap;  // guarded by queue_mu (plain data is fine: the
                            // lock is real; only *target* data needs shadow)
  rt::Var<std::uint64_t, D> processed(R, 0);

  Rng seed_rng(cfg.seed);
  for (std::uint32_t c = 0; c < components; ++c) {
    heap.push_back(Event{seed_rng.next_below(97), c});
  }
  std::make_heap(heap.begin(), heap.end());

  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    Rng rng(cfg.seed * 31 + w);
    for (;;) {
      Event ev{};
      {
        rt::Guard<D> g(queue_mu);
        const std::uint64_t done = processed.load();
        if (done >= budget || heap.empty()) break;
        processed.store(done + 1);
        std::pop_heap(heap.begin(), heap.end());
        ev = heap.back();
        heap.pop_back();
      }
      // Process: mutate the component's registers under its lock.
      Component& c = comps[ev.comp];
      std::uint64_t spawn_comp;
      {
        rt::Guard<D> g(*c.mu);
        const std::uint64_t count = c.regs->load(0);
        c.regs->store(0, count + 1);
        const std::size_t r = 1 + (ev.time % (kRegs - 1));
        c.regs->store(r, c.regs->load(r) ^ (ev.time * 0x9E3779B9ull));
        spawn_comp = (ev.comp + c.regs->load(r)) % components;
      }
      // Schedule a follow-up event (keeps the queue saturated).
      {
        rt::Guard<D> g(queue_mu);
        heap.push_back(Event{ev.time + 1 + rng.next_below(13),
                             static_cast<std::uint32_t>(spawn_comp)});
        std::push_heap(heap.begin(), heap.end());
      }
    }
  });

  std::uint64_t total = 0;
  for (auto& c : comps) total += c.regs->raw(0);
  double checksum = 0.0;
  for (auto& c : comps) {
    for (std::size_t r = 0; r < kRegs; ++r) {
      checksum += static_cast<double>(c.regs->raw(r) & 0xFFFF);
    }
  }
  return KernelResult{checksum, total == budget};
}

}  // namespace vft::kernels
