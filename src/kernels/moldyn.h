// moldyn: JavaGrande molecular-dynamics analogue.
//
// Velocity-Verlet N-body integration with a Lennard-Jones-ish pairwise
// force, barrier-phased: every worker reads *all* positions (read-shared)
// to compute forces for its own particle slice (exclusive writes), then
// updates its own positions/velocities. The all-to-all position reads make
// this moderately read-shared-heavy, like the real moldyn.
//
// Validation: total momentum is conserved up to floating-point noise
// (forces are computed pairwise-symmetrically within one worker's view).
#pragma once

#include "kernels/kernel.h"

namespace vft::kernels {

template <Detector D>
KernelResult moldyn(rt::Runtime<D>& R, const KernelConfig& cfg) {
  const std::size_t n = 256;                       // particles
  const std::size_t steps = 3 * cfg.scale;         // timesteps
  const double dt = 1e-4;

  rt::Array<double, D> pos(R, 3 * n);
  rt::Array<double, D> vel(R, 3 * n);
  rt::Array<double, D> force(R, 3 * n);
  rt::Barrier<D> barrier(R, cfg.threads);

  Rng rng(cfg.seed);
  // Lattice-ish positions and zero net momentum.
  for (std::size_t i = 0; i < n; ++i) {
    for (int d = 0; d < 3; ++d) {
      pos.store(3 * i + d,
                static_cast<double>((i * (d + 7)) % 17) * 0.71 +
                    0.05 * rng.next_double());
      vel.store(3 * i + d, 0.0);
    }
  }

  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    const Slice s = slice_of(n, w, cfg.threads);
    for (std::size_t step = 0; step < steps; ++step) {
      // Force phase: read-shared positions, exclusive force writes.
      for (std::size_t i = s.begin; i < s.end; ++i) {
        double fx = 0.0, fy = 0.0, fz = 0.0;
        const double xi = pos.load(3 * i);
        const double yi = pos.load(3 * i + 1);
        const double zi = pos.load(3 * i + 2);
        for (std::size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          const double dx = xi - pos.load(3 * j);
          const double dy = yi - pos.load(3 * j + 1);
          const double dz = zi - pos.load(3 * j + 2);
          const double r2 = dx * dx + dy * dy + dz * dz + 0.3;
          const double inv2 = 1.0 / r2;
          const double inv6 = inv2 * inv2 * inv2;
          const double mag = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
          fx += mag * dx;
          fy += mag * dy;
          fz += mag * dz;
        }
        force.store(3 * i, fx);
        force.store(3 * i + 1, fy);
        force.store(3 * i + 2, fz);
      }
      barrier.arrive_and_wait();
      // Integration phase: exclusive position/velocity updates.
      for (std::size_t i = s.begin; i < s.end; ++i) {
        for (int d = 0; d < 3; ++d) {
          const double v = vel.load(3 * i + d) + dt * force.load(3 * i + d);
          vel.store(3 * i + d, v);
          pos.store(3 * i + d, pos.load(3 * i + d) + dt * v);
        }
      }
      barrier.arrive_and_wait();
    }
  });

  // Momentum conservation: started at zero, forces are antisymmetric.
  double px = 0.0, py = 0.0, pz = 0.0, checksum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    px += vel.raw(3 * i);
    py += vel.raw(3 * i + 1);
    pz += vel.raw(3 * i + 2);
    checksum += pos.raw(3 * i);
  }
  const double drift = std::abs(px) + std::abs(py) + std::abs(pz);
  return KernelResult{checksum, drift < 1e-6 * static_cast<double>(steps + 1)};
}

}  // namespace vft::kernels
