// sunflow: DaCapo sunflow analogue - a global-illumination renderer, the
// single most read-shared-intensive program in Table 1 (v1 158.8x vs v2
// 25.4x: the poster child for the lock-free [Read Shared Same Epoch]
// path).
//
// Model: multi-bounce path tracing against a shared scene plus a shared
// photon-grid that is consulted several times per bounce - so the hot loop
// is almost nothing but re-reads of read-shared data. Pixels are written
// exclusively per worker (tiles dealt round-robin).
//
// Validation: 8 sampled pixels re-rendered sequentially, bit-compared.
#pragma once

#include "kernels/kernel.h"

namespace vft::kernels {

namespace sunflow_detail {

constexpr std::size_t kSpheres = 10;
constexpr std::size_t kStride = 5;  // [cx, cy, cz, r, albedo]
constexpr std::size_t kGrid = 512;  // photon-grid cells
constexpr int kBounces = 3;

struct V3 {
  double x, y, z;
};
inline V3 sub(V3 a, V3 b) { return {a.x - b.x, a.y - b.y, a.z - b.z}; }
inline V3 add(V3 a, V3 b) { return {a.x + b.x, a.y + b.y, a.z + b.z}; }
inline V3 mul(V3 a, double s) { return {a.x * s, a.y * s, a.z * s}; }
inline double dot(V3 a, V3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
inline V3 norm(V3 a) { return mul(a, 1.0 / std::sqrt(dot(a, a))); }

/// Path-trace one pixel: every bounce consults the whole sphere table and
/// three photon-grid cells through `scene(i)` / `photon(i)`.
template <typename SceneFetch, typename PhotonFetch>
double trace_path(double px, double py, SceneFetch&& scene,
                  PhotonFetch&& photon) {
  V3 origin{0.0, 0.0, -5.0};
  V3 dir = norm(V3{px, py, 1.8});
  double weight = 1.0;
  double radiance = 0.0;
  for (int bounce = 0; bounce < kBounces; ++bounce) {
    double best_t = 1e30;
    std::size_t hit = kSpheres;
    for (std::size_t s = 0; s < kSpheres; ++s) {
      const V3 c{scene(s * kStride), scene(s * kStride + 1),
                 scene(s * kStride + 2)};
      const double r = scene(s * kStride + 3);
      const V3 oc = sub(origin, c);
      const double b = 2.0 * dot(oc, dir);
      const double disc = b * b - 4.0 * (dot(oc, oc) - r * r);
      if (disc <= 0.0) continue;
      const double t = (-b - std::sqrt(disc)) * 0.5;
      if (t > 1e-6 && t < best_t) {
        best_t = t;
        hit = s;
      }
    }
    if (hit == kSpheres) {
      radiance += weight * 0.05;  // sky
      break;
    }
    const V3 c{scene(hit * kStride), scene(hit * kStride + 1),
               scene(hit * kStride + 2)};
    const double albedo = scene(hit * kStride + 4);
    const V3 p = add(origin, mul(dir, best_t));
    const V3 n = norm(sub(p, c));
    // Photon-map lookup: three grid cells keyed off the hit point.
    const auto cell = [&](double salt) {
      const double q = p.x * 7.1 + p.y * 13.3 + p.z * 3.7 + salt;
      return static_cast<std::size_t>(std::fabs(q) * 97.0) % kGrid;
    };
    const double gathered =
        photon(cell(0.0)) + photon(cell(1.7)) + photon(cell(4.2));
    radiance += weight * albedo * gathered * std::max(0.0, -dot(n, dir));
    // Deterministic "diffuse" bounce: reflect and perturb by the normal.
    dir = norm(sub(dir, mul(n, 2.0 * dot(dir, n))));
    origin = add(p, mul(dir, 1e-4));
    weight *= albedo * 0.6;
  }
  return radiance;
}

}  // namespace sunflow_detail

template <Detector D>
KernelResult sunflow_render(rt::Runtime<D>& R, const KernelConfig& cfg) {
  using namespace sunflow_detail;
  const std::size_t width = 64;
  const std::size_t height = 16 * cfg.scale + 16;

  rt::Array<double, D> scene(R, kSpheres * kStride);
  rt::Array<double, D> photons(R, kGrid);
  rt::Array<double, D> image(R, width * height);

  Rng rng(cfg.seed);
  for (std::size_t s = 0; s < kSpheres; ++s) {
    scene.store(s * kStride + 0, (rng.next_double() - 0.5) * 5.0);
    scene.store(s * kStride + 1, (rng.next_double() - 0.5) * 3.0);
    scene.store(s * kStride + 2, rng.next_double() * 5.0 + 1.0);
    scene.store(s * kStride + 3, 0.5 + rng.next_double() * 0.8);
    scene.store(s * kStride + 4, 0.3 + rng.next_double() * 0.6);
  }
  for (std::size_t g = 0; g < kGrid; ++g) {
    photons.store(g, rng.next_double() * 0.2);
  }

  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    for (std::size_t y = w; y < height; y += cfg.threads) {
      for (std::size_t x = 0; x < width; ++x) {
        const double px = (static_cast<double>(x) / width - 0.5) * 2.0;
        const double py = (static_cast<double>(y) / height - 0.5) * 1.5;
        const double v =
            trace_path(px, py, [&](std::size_t i) { return scene.load(i); },
                       [&](std::size_t i) { return photons.load(i); });
        image.store(y * width + x, v);
      }
    }
  });

  bool valid = true;
  if (cfg.validate) {
    for (std::size_t k = 0; k < 8 && valid; ++k) {
      const std::size_t x = (k * 29) % width;
      const std::size_t y = (k * 41) % height;
      const double px = (static_cast<double>(x) / width - 0.5) * 2.0;
      const double py = (static_cast<double>(y) / height - 0.5) * 1.5;
      const double ref =
          trace_path(px, py, [&](std::size_t i) { return scene.raw(i); },
                     [&](std::size_t i) { return photons.raw(i); });
      valid = image.raw(y * width + x) == ref;
    }
  }
  double checksum = 0.0;
  for (std::size_t i = 0; i < width * height; i += 5) checksum += image.raw(i);
  return KernelResult{checksum, valid};
}

}  // namespace vft::kernels
