// pmd: DaCapo pmd analogue - static program analysis over a file corpus.
// Workers pull "files" (token streams) from a shared locked work queue,
// run a handful of rule checks over each file's tokens (thread-local
// sweeps over read-shared file data), and bump shared per-rule violation
// counters under striped locks. Table 1 pmd: 3.2-5.6x - lots of sync and
// mostly linear scans.
//
// Validation: total violations across rules equals a sequential recount.
#pragma once

#include <vector>

#include "kernels/kernel.h"

namespace vft::kernels {

namespace pmd_detail {

constexpr std::size_t kRules = 8;

/// Rule r counts tokens satisfying a simple predicate with context.
inline bool violates(std::size_t rule, std::uint32_t prev, std::uint32_t cur) {
  switch (rule % kRules) {
    case 0: return cur % 97 == 0;
    case 1: return cur % 31 == 7 && prev % 2 == 0;
    case 2: return (cur & 0xFF) == (prev & 0xFF);
    case 3: return cur < prev && prev - cur > 1000000;
    case 4: return (cur ^ prev) % 1021 == 3;
    case 5: return cur % 257 == 19;
    case 6: return prev % 127 == cur % 127;
    default: return (cur >> 20) == 0;
  }
}

}  // namespace pmd_detail

template <Detector D>
KernelResult pmd_analyze(rt::Runtime<D>& R, const KernelConfig& cfg) {
  using namespace pmd_detail;
  const std::size_t files = 48;
  const std::size_t tokens_per_file = 3000ull * cfg.scale;

  // The corpus: one big read-shared token array, files are ranges.
  rt::Array<std::uint32_t, D> corpus(R, files * tokens_per_file);
  Rng rng(cfg.seed);
  for (std::size_t i = 0; i < files * tokens_per_file; ++i) {
    corpus.store(i, static_cast<std::uint32_t>(rng.next()));
  }

  rt::Mutex<D> queue_mu(R);
  rt::Var<std::uint32_t, D> next_file(R, 0);
  struct RuleCounter {
    std::unique_ptr<rt::Mutex<D>> mu;
    std::unique_ptr<rt::Var<std::uint64_t, D>> count;
  };
  std::vector<RuleCounter> rules(kRules);
  for (auto& r : rules) {
    r.mu = std::make_unique<rt::Mutex<D>>(R);
    r.count = std::make_unique<rt::Var<std::uint64_t, D>>(R, 0);
  }

  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t) {
    for (;;) {
      std::uint32_t file;
      {
        rt::Guard<D> g(queue_mu);
        file = next_file.load();
        if (file >= files) break;
        next_file.store(file + 1);
      }
      std::uint64_t hits[kRules] = {};
      const std::size_t base = static_cast<std::size_t>(file) * tokens_per_file;
      std::uint32_t prev = 0;
      for (std::size_t i = 0; i < tokens_per_file; ++i) {
        const std::uint32_t cur = corpus.load(base + i);
        for (std::size_t r = 0; r < kRules; ++r) {
          if (violates(r, prev, cur)) ++hits[r];
        }
        prev = cur;
      }
      for (std::size_t r = 0; r < kRules; ++r) {
        if (hits[r] != 0) {
          rt::Guard<D> g(*rules[r].mu);
          rules[r].count->store(rules[r].count->load() + hits[r]);
        }
      }
    }
  });

  std::uint64_t total = 0;
  for (auto& r : rules) total += r.count->raw();
  bool valid = true;
  if (cfg.validate) {
    std::uint64_t expect = 0;
    std::uint32_t prev = 0;
    for (std::size_t f = 0; f < files; ++f) {
      prev = 0;
      for (std::size_t i = 0; i < tokens_per_file; ++i) {
        const std::uint32_t cur = corpus.raw(f * tokens_per_file + i);
        for (std::size_t r = 0; r < kRules; ++r) {
          if (violates(r, prev, cur)) ++expect;
        }
        prev = cur;
      }
    }
    valid = total == expect;
  }
  return KernelResult{static_cast<double>(total), valid};
}

}  // namespace vft::kernels
