// sor: JavaGrande red-black successive over-relaxation analogue.
//
// Five-point stencil relaxation on a G x G grid, row bands per worker,
// barrier between the red and black half-sweeps. Band-interior cells are
// exclusive to their owner; band-boundary rows are read by the neighbor
// worker each half-sweep, so a modest fraction of accesses is read-shared.
// This access profile gives the mid-table overheads of the real sor.
//
// Validation: the checksum must match an uninstrumented sequential SOR
// with the identical update order (red-black is order-independent within
// a color, so sequential and parallel results agree bit-for-bit).
#pragma once

#include <vector>

#include "kernels/kernel.h"

namespace vft::kernels {

template <Detector D>
KernelResult sor(rt::Runtime<D>& R, const KernelConfig& cfg) {
  const std::size_t g = 128;
  const std::size_t iters = 4 * cfg.scale;
  const double omega = 1.25;

  // Ported to the address-keyed shadow API: cfg.shadow selects where the
  // grid's element shadow lives (inline, sharded table, or the two-level
  // ShadowSpace). Elements are 8-byte doubles, so even the word-granular
  // ShadowSpace keeps one VarState per cell and the access profile - and
  // the race verdict - is identical across backends.
  rt::Array<double, D> grid = make_shadowed_array<double>(R, cfg, g * g);
  rt::Barrier<D> barrier(R, cfg.threads);

  Rng rng(cfg.seed);
  std::vector<double> ref(g * g);
  for (std::size_t i = 0; i < g * g; ++i) {
    const double v = rng.next_double();
    grid.store(i, v);
    ref[i] = v;
  }

  auto relax_cell = [omega](double center, double up, double down, double left,
                            double right) {
    return center + omega * 0.25 * (up + down + left + right - 4.0 * center);
  };

  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    const Slice rows = slice_of(g - 2, w, cfg.threads);  // interior rows
    for (std::size_t it = 0; it < iters; ++it) {
      for (int color = 0; color < 2; ++color) {
        for (std::size_t r = rows.begin; r < rows.end; ++r) {
          const std::size_t i = r + 1;
          for (std::size_t j = 1 + ((i + static_cast<std::size_t>(color)) % 2);
               j < g - 1; j += 2) {
            const double v = relax_cell(
                grid.load(i * g + j), grid.load((i - 1) * g + j),
                grid.load((i + 1) * g + j), grid.load(i * g + j - 1),
                grid.load(i * g + j + 1));
            grid.store(i * g + j, v);
          }
        }
        barrier.arrive_and_wait();
      }
    }
  });

  double checksum = 0.0;
  for (std::size_t i = 0; i < g * g; ++i) checksum += grid.raw(i);
  if (!cfg.validate) return KernelResult{checksum, true};

  // Uninstrumented sequential reference with the same sweep structure.
  for (std::size_t it = 0; it < iters; ++it) {
    for (int color = 0; color < 2; ++color) {
      for (std::size_t i = 1; i < g - 1; ++i) {
        for (std::size_t j = 1 + ((i + static_cast<std::size_t>(color)) % 2);
             j < g - 1; j += 2) {
          ref[i * g + j] = relax_cell(ref[i * g + j], ref[(i - 1) * g + j],
                                      ref[(i + 1) * g + j], ref[i * g + j - 1],
                                      ref[i * g + j + 1]);
        }
      }
    }
  }

  bool valid = true;
  for (std::size_t i = 0; i < g * g; ++i) {
    if (grid.raw(i) != ref[i]) valid = false;
  }
  return KernelResult{checksum, valid};
}

}  // namespace vft::kernels
