// batik: DaCapo batik analogue - SVG-style rasterization. A read-shared
// shape table (circles and axis-aligned boxes with fill styles) is
// scan-converted into per-worker tile buffers; a small read-shared style
// palette is consulted per covered pixel. Low-to-moderate overhead with
// little locking (batik: 3.8-4.2x in Table 1, nearly tool-independent).
//
// Validation: winding-independent coverage count cross-checked against an
// uninstrumented sequential rasterization of sampled rows.
#pragma once

#include "kernels/kernel.h"

namespace vft::kernels {

namespace batik_detail {

constexpr std::size_t kShapes = 48;
// Shape layout: [kind(0=circle,1=box), a, b, c, d, style]
//   circle: center (a,b), radius c ; box: corners (a,b)-(c,d)
constexpr std::size_t kStride = 6;

template <typename Fetch, typename Style>
double shade(std::size_t x, std::size_t y, Fetch&& shape, Style&& style) {
  const double fx = static_cast<double>(x);
  const double fy = static_cast<double>(y);
  double acc = 0.0;
  for (std::size_t s = 0; s < kShapes; ++s) {
    const double kind = shape(s * kStride);
    bool inside;
    if (kind < 0.5) {
      const double dx = fx - shape(s * kStride + 1);
      const double dy = fy - shape(s * kStride + 2);
      const double r = shape(s * kStride + 3);
      inside = dx * dx + dy * dy <= r * r;
    } else {
      inside = fx >= shape(s * kStride + 1) && fy >= shape(s * kStride + 2) &&
               fx <= shape(s * kStride + 3) && fy <= shape(s * kStride + 4);
    }
    if (inside) {
      const auto sid = static_cast<std::size_t>(shape(s * kStride + 5));
      acc = 0.75 * acc + 0.25 * style(sid);  // painter's-order blend
    }
  }
  return acc;
}

}  // namespace batik_detail

template <Detector D>
KernelResult batik_raster(rt::Runtime<D>& R, const KernelConfig& cfg) {
  using namespace batik_detail;
  const std::size_t width = 128;
  const std::size_t height = 32 * cfg.scale + 32;
  constexpr std::size_t kStyles = 16;

  rt::Array<double, D> shapes(R, kShapes * kStride);
  rt::Array<double, D> palette(R, kStyles);
  rt::Array<double, D> canvas(R, width * height);

  Rng rng(cfg.seed);
  for (std::size_t s = 0; s < kShapes; ++s) {
    const bool circle = (rng.next() & 1) == 0;
    shapes.store(s * kStride + 0, circle ? 0.0 : 1.0);
    if (circle) {
      shapes.store(s * kStride + 1, rng.next_double() * width);
      shapes.store(s * kStride + 2, rng.next_double() * height);
      shapes.store(s * kStride + 3, 4.0 + rng.next_double() * 24.0);
      shapes.store(s * kStride + 4, 0.0);
    } else {
      const double x0 = rng.next_double() * width;
      const double y0 = rng.next_double() * height;
      shapes.store(s * kStride + 1, x0);
      shapes.store(s * kStride + 2, y0);
      shapes.store(s * kStride + 3, x0 + 4.0 + rng.next_double() * 30.0);
      shapes.store(s * kStride + 4, y0 + 4.0 + rng.next_double() * 20.0);
    }
    shapes.store(s * kStride + 5,
                 static_cast<double>(rng.next_below(kStyles)));
  }
  for (std::size_t i = 0; i < kStyles; ++i) {
    palette.store(i, 0.1 + 0.9 * rng.next_double());
  }

  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    // Row-banded tiles.
    const Slice rows = slice_of(height, w, cfg.threads);
    for (std::size_t y = rows.begin; y < rows.end; ++y) {
      for (std::size_t x = 0; x < width; ++x) {
        const double v =
            shade(x, y, [&](std::size_t i) { return shapes.load(i); },
                  [&](std::size_t sid) { return palette.load(sid); });
        canvas.store(y * width + x, v);
      }
    }
  });

  bool valid = true;
  if (cfg.validate) {
    for (std::size_t y = 0; y < height && valid; y += 37) {
      for (std::size_t x = 0; x < width && valid; x += 17) {
        const double ref =
            shade(x, y, [&](std::size_t i) { return shapes.raw(i); },
                  [&](std::size_t sid) { return palette.raw(sid); });
        valid = canvas.raw(y * width + x) == ref;
      }
    }
  }
  double checksum = 0.0;
  for (std::size_t i = 0; i < width * height; i += 11) {
    checksum += canvas.raw(i);
  }
  return KernelResult{checksum, valid};
}

}  // namespace vft::kernels
