// series: JavaGrande Fourier-series analogue.
//
// Each worker computes Fourier coefficients of f(x) = (x+1)^x over [0,2]
// by trapezoidal integration for its own coefficient range and writes two
// doubles per coefficient. Compute massively dominates heap traffic, so
// instrumentation overhead is ~0 - Table 1 reports 0.01x for every tool on
// series, and this kernel reproduces that corner of the table.
#pragma once

#include "kernels/kernel.h"

namespace vft::kernels {

namespace series_detail {

inline double f(double x) { return std::pow(x + 1.0, x); }

/// Trapezoidal integral of f(x) * trig(n * pi * x) over [0, 2].
inline double integrate(std::uint32_t n, bool use_cos) {
  constexpr int kPoints = 1000;
  constexpr double kPi = 3.14159265358979323846;
  const double dx = 2.0 / kPoints;
  double acc = 0.0;
  for (int i = 0; i <= kPoints; ++i) {
    const double x = i * dx;
    const double trig = use_cos ? std::cos(n * kPi * x) : std::sin(n * kPi * x);
    const double w = (i == 0 || i == kPoints) ? 0.5 : 1.0;
    acc += w * f(x) * trig;
  }
  return acc * dx;
}

}  // namespace series_detail

template <Detector D>
KernelResult series(rt::Runtime<D>& R, const KernelConfig& cfg) {
  using namespace series_detail;
  const std::size_t coeffs = static_cast<std::size_t>(64) * cfg.scale;

  rt::Array<double, D> a(R, coeffs);
  rt::Array<double, D> b(R, coeffs);

  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    const Slice s = slice_of(coeffs, w, cfg.threads);
    for (std::size_t n = s.begin; n < s.end; ++n) {
      a.store(n, integrate(static_cast<std::uint32_t>(n), /*use_cos=*/true));
      b.store(n, integrate(static_cast<std::uint32_t>(n), /*use_cos=*/false));
    }
  });

  // a[0] = integral of f over [0,2] = 5.76384... (1000-point trapezoid).
  const double a0 = a.raw(0);
  const bool valid = a0 > 5.7638 && a0 < 5.7639;
  double checksum = 0.0;
  for (std::size_t n = 0; n < coeffs; ++n) checksum += a.raw(n) - b.raw(n);
  return KernelResult{checksum, valid};
}

}  // namespace vft::kernels
