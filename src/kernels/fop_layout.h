// fop: DaCapo fop analogue - XSL-FO style document layout. A block tree
// (built by the main thread, read-shared) goes through two barrier-
// separated passes: a parallel *measure* pass computing intrinsic sizes
// bottom-up within per-worker subtree ranges, and a parallel *position*
// pass assigning coordinates from the measured sizes. Mix: read-shared
// tree + phase-exclusive measure/position arrays; short run, moderate
// uniform overhead (fop: ~10x across all tools in Table 1).
//
// Validation: total laid-out height equals the sequential sum of block
// heights (exact, same addition order), and positions are monotone.
#pragma once

#include "kernels/kernel.h"

namespace vft::kernels {

template <Detector D>
KernelResult fop_layout(rt::Runtime<D>& R, const KernelConfig& cfg) {
  const std::size_t blocks = 6000ull * cfg.scale;
  // Block record: [font, chars, indent]
  rt::Array<std::uint64_t, D> font(R, blocks);
  rt::Array<std::uint64_t, D> chars(R, blocks);
  rt::Array<std::uint64_t, D> indent(R, blocks);
  rt::Array<double, D> widths(R, 8);  // read-shared font metrics
  rt::Array<double, D> measured(R, blocks);  // measure-pass output
  rt::Array<double, D> ypos(R, blocks);      // position-pass output
  rt::Barrier<D> barrier(R, cfg.threads);

  Rng rng(cfg.seed);
  for (std::size_t i = 0; i < 8; ++i) {
    widths.store(i, 5.0 + 0.7 * static_cast<double>(i));
  }
  for (std::size_t b = 0; b < blocks; ++b) {
    font.store(b, rng.next_below(8));
    chars.store(b, 10 + rng.next_below(70));
    indent.store(b, rng.next_below(4) * 12);
  }
  const double page_width = 480.0;
  const double line_height = 11.2;

  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    const Slice s = slice_of(blocks, w, cfg.threads);
    // Pass 1 (measure): lines needed per block at its indent.
    for (std::size_t b = s.begin; b < s.end; ++b) {
      const double cw = widths.load(font.load(b));
      const double usable = page_width - static_cast<double>(indent.load(b));
      const double text = cw * static_cast<double>(chars.load(b));
      const double lines = std::ceil(text / usable);
      measured.store(b, lines * line_height);
    }
    barrier.arrive_and_wait();
    // Pass 2 (position): prefix heights within the slice, then each worker
    // adds the preceding slices' totals (reads other slices' measures:
    // read-shared after the barrier).
    double before = 0.0;
    for (std::size_t b = 0; b < s.begin; ++b) before += measured.load(b);
    double y = before;
    for (std::size_t b = s.begin; b < s.end; ++b) {
      ypos.store(b, y);
      y += measured.load(b);
    }
    barrier.arrive_and_wait();
  });

  bool valid = true;
  double total = 0.0;
  if (cfg.validate) {
    for (std::size_t b = 0; b < blocks; ++b) {
      const double cw = widths.raw(font.raw(b));
      const double usable = page_width - static_cast<double>(indent.raw(b));
      const double lines =
          std::ceil(cw * static_cast<double>(chars.raw(b)) / usable);
      if (measured.raw(b) != lines * line_height) valid = false;
      total += measured.raw(b);
    }
    // Last block's position + height == total height (exact: same order).
    double y = 0.0;
    for (std::size_t b = 0; b + 1 < blocks; ++b) y += measured.raw(b);
    if (ypos.raw(blocks - 1) != y) valid = false;
    for (std::size_t b = 1; b < blocks; ++b) {
      if (ypos.raw(b) < ypos.raw(b - 1)) valid = false;
    }
  }
  double checksum = 0.0;
  for (std::size_t b = 0; b < blocks; b += 13) checksum += ypos.raw(b);
  return KernelResult{checksum, valid};
}

}  // namespace vft::kernels
