// h2db: DaCapo h2 analogue - a lock-striped in-memory key-value table
// under a mixed get/put/delete workload. Bucket data is instrumented and
// bucket locks are real, so accesses are lock-protected and migrate
// between threads; moderate overhead in the table (h2: 7-11x).
//
// Validation: every worker tracks the net change it made to the sum of
// stored values (puts return the old value under the bucket lock, so the
// delta is exact); the final table scan must equal the sum of deltas.
#pragma once

#include <vector>

#include "kernels/kernel.h"

namespace vft::kernels {

template <Detector D>
KernelResult h2db(rt::Runtime<D>& R, const KernelConfig& cfg) {
  const std::size_t buckets = 128;
  const std::size_t slots = 16;  // open-addressed slots per bucket
  const std::uint64_t ops_per_thread = 30000ull * cfg.scale;

  struct Bucket {
    std::unique_ptr<rt::Mutex<D>> mu;
    std::unique_ptr<rt::Array<std::uint64_t, D>> keys;  // 0 = empty
    std::unique_ptr<rt::Array<std::uint64_t, D>> vals;
  };
  std::vector<Bucket> table(buckets);
  for (auto& b : table) {
    b.mu = std::make_unique<rt::Mutex<D>>(R);
    b.keys = std::make_unique<rt::Array<std::uint64_t, D>>(R, slots);
    b.vals = std::make_unique<rt::Array<std::uint64_t, D>>(R, slots);
  }

  std::vector<std::int64_t> deltas(cfg.threads, 0);

  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    Rng rng(cfg.seed * 101 + w);
    std::int64_t delta = 0;
    for (std::uint64_t op = 0; op < ops_per_thread; ++op) {
      const std::uint64_t key = 1 + rng.next_below(buckets * slots / 2);
      Bucket& b = table[key % buckets];
      const std::uint64_t kind = rng.next_below(10);
      rt::Guard<D> g(*b.mu);
      // Linear probe for the key (and the first free slot).
      std::size_t found = slots, free_slot = slots;
      for (std::size_t s = 0; s < slots; ++s) {
        const std::uint64_t k = b.keys->load(s);
        if (k == key) {
          found = s;
          break;
        }
        if (k == 0 && free_slot == slots) free_slot = s;
      }
      if (kind < 6) {  // get
        if (found != slots) (void)b.vals->load(found);
      } else if (kind < 9) {  // put
        const std::uint64_t v = 1 + rng.next_below(1000);
        if (found != slots) {
          delta += static_cast<std::int64_t>(v) -
                   static_cast<std::int64_t>(b.vals->load(found));
          b.vals->store(found, v);
        } else if (free_slot != slots) {
          b.keys->store(free_slot, key);
          b.vals->store(free_slot, v);
          delta += static_cast<std::int64_t>(v);
        }
      } else {  // delete
        if (found != slots) {
          delta -= static_cast<std::int64_t>(b.vals->load(found));
          b.keys->store(found, 0);
          b.vals->store(found, 0);
        }
      }
    }
    deltas[w] = delta;  // own slot, joined before being read
  });

  std::int64_t expected = 0;
  for (const std::int64_t d : deltas) expected += d;
  std::int64_t actual = 0;
  for (auto& b : table) {
    for (std::size_t s = 0; s < slots; ++s) {
      if (b.keys->raw(s) != 0) {
        actual += static_cast<std::int64_t>(b.vals->raw(s));
      }
    }
  }
  return KernelResult{static_cast<double>(actual), actual == expected};
}

}  // namespace vft::kernels
