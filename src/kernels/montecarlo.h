// montecarlo: JavaGrande Monte-Carlo option-pricing analogue.
//
// Workers pull path-simulation tasks from a shared counter guarded by an
// instrumented lock (the real montecarlo uses a task vector), read a small
// read-shared parameter block, simulate a geometric-Brownian-motion path,
// and write the result into their own slot. Lock traffic plus mostly
// thread-local compute puts this at the low-overhead end of the table
// (7-13x in the paper).
//
// Validation: the mean terminal price converges to S0 * exp(r * T); the
// check allows 6 standard errors.
#pragma once

#include "kernels/kernel.h"

namespace vft::kernels {

template <Detector D>
KernelResult montecarlo(rt::Runtime<D>& R, const KernelConfig& cfg) {
  const std::size_t paths = static_cast<std::size_t>(2000) * cfg.scale;
  constexpr std::size_t kSteps = 64;

  // Read-shared pricing parameters: [S0, r, sigma, T].
  rt::Array<double, D> params(R, 4);
  params.store(0, 100.0);
  params.store(1, 0.05);
  params.store(2, 0.2);
  params.store(3, 1.0);

  rt::Array<double, D> results(R, paths);
  rt::Mutex<D> task_mu(R);
  rt::Var<std::uint64_t, D> next_task(R, 0);

  // Tasks are batches of paths (like the real montecarlo's per-task time
  // series): one queue lock per batch, so the parameter block is re-read
  // many times within one epoch.
  constexpr std::uint64_t kBatch = 16;
  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    Rng rng(cfg.seed * 7919 + w);
    for (;;) {
      std::uint64_t begin;
      {
        rt::Guard<D> g(task_mu);
        begin = next_task.load();
        if (begin >= paths) break;
        next_task.store(std::min<std::uint64_t>(begin + kBatch, paths));
      }
      const std::uint64_t end = std::min<std::uint64_t>(begin + kBatch, paths);
      for (std::uint64_t task = begin; task < end; ++task) {
        const double s0 = params.load(0);
        const double r = params.load(1);
        const double sigma = params.load(2);
        const double t = params.load(3);
        const double dt = t / kSteps;
        const double drift = (r - 0.5 * sigma * sigma) * dt;
        const double vol = sigma * std::sqrt(dt);
        double logs = std::log(s0);
        for (std::size_t k = 0; k < kSteps; ++k) {
          logs += drift + vol * gaussian(rng);
        }
        results.store(task, std::exp(logs));
      }
    }
  });

  double sum = 0.0;
  for (std::size_t i = 0; i < paths; ++i) sum += results.raw(i);
  const double mean = sum / static_cast<double>(paths);
  // E[S_T] = S0 e^{rT} = 105.127; stderr ~ sigma_S / sqrt(paths) with
  // sigma_S ~ 21 for these parameters.
  const double expect = 100.0 * std::exp(0.05);
  const double tol = 6.0 * 21.0 / std::sqrt(static_cast<double>(paths));
  return KernelResult{mean, std::abs(mean - expect) < tol};
}

}  // namespace vft::kernels
