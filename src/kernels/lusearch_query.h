// lusearch (query side): DaCapo lusearch analogue, complementing the
// indexing-side `lusearch_idx` (which stands in for luindex). A postings
// index built by the main thread is *read-shared* by query workers that
// score documents into thread-local accumulators: read-shared postings
// traversal + dense exclusive scoring traffic (lusearch: 19-24x in
// Table 1, with v2 ~= the historical tools).
//
// Validation: top-scoring document of a sampled query recomputed
// sequentially and compared.
#pragma once

#include <vector>

#include "kernels/kernel.h"

namespace vft::kernels {

template <Detector D>
KernelResult lusearch_query(rt::Runtime<D>& R, const KernelConfig& cfg) {
  const std::size_t vocab = 256;
  const std::size_t docs = 512;
  const std::size_t postings_per_term = 24;
  const std::size_t queries_per_thread = 180 * cfg.scale;
  constexpr std::size_t kQueryTerms = 4;

  // CSR-style postings: term t owns rows [t*P, (t+1)*P) of (doc, weight).
  rt::Array<std::uint32_t, D> post_doc(R, vocab * postings_per_term);
  rt::Array<double, D> post_weight(R, vocab * postings_per_term);

  Rng rng(cfg.seed);
  for (std::size_t i = 0; i < vocab * postings_per_term; ++i) {
    post_doc.store(i, static_cast<std::uint32_t>(rng.next_below(docs)));
    post_weight.store(i, 0.1 + rng.next_double());
  }

  std::vector<double> best_scores(cfg.threads, 0.0);

  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    Rng qrng(cfg.seed * 61 + w);
    rt::Array<double, D> scores(R, docs);  // thread-local accumulator
    double best = 0.0;
    for (std::size_t q = 0; q < queries_per_thread; ++q) {
      for (std::size_t d = 0; d < docs; ++d) scores.store(d, 0.0);
      for (std::size_t k = 0; k < kQueryTerms; ++k) {
        const std::size_t term = qrng.next_below(vocab);
        for (std::size_t p = 0; p < postings_per_term; ++p) {
          const std::size_t row = term * postings_per_term + p;
          const std::uint32_t doc = post_doc.load(row);
          scores.store(doc, scores.load(doc) + post_weight.load(row));
        }
      }
      for (std::size_t d = 0; d < docs; ++d) {
        best = std::max(best, scores.load(d));
      }
    }
    best_scores[w] = best;
  });

  bool valid = true;
  if (cfg.validate) {
    // Re-run thread 0's queries against raw postings.
    Rng qrng(cfg.seed * 61 + 0);
    std::vector<double> scores(docs);
    double best = 0.0;
    for (std::size_t q = 0; q < queries_per_thread; ++q) {
      std::fill(scores.begin(), scores.end(), 0.0);
      for (std::size_t k = 0; k < kQueryTerms; ++k) {
        const std::size_t term = qrng.next_below(vocab);
        for (std::size_t p = 0; p < postings_per_term; ++p) {
          const std::size_t row = term * postings_per_term + p;
          scores[post_doc.raw(row)] += post_weight.raw(row);
        }
      }
      for (std::size_t d = 0; d < docs; ++d) best = std::max(best, scores[d]);
    }
    valid = best_scores[0] == best;
  }
  double checksum = 0.0;
  for (const double b : best_scores) checksum += b;
  return KernelResult{checksum, valid};
}

}  // namespace vft::kernels
