// xalan_xform: DaCapo xalan analogue - parallel tree transformation.
// A document "tree" built by the main thread (node table = read-shared
// during the transform) is traversed by workers over disjoint subtree
// ranges; transformed output goes to per-worker buffers, and node-name
// interning consults a shared read-mostly intern table with occasional
// locked inserts. Mix: read-shared tree + exclusive output + light lock
// traffic (xalan: 11-13x in Table 1).
//
// Validation: the total transformed-node count must equal the tree size,
// and the output checksum must match a sequential uninstrumented rerun.
#pragma once

#include <vector>

#include "kernels/kernel.h"

namespace vft::kernels {

namespace xalan_detail {

// Node table layout: per node [kind, value, first_child, sibling].
constexpr std::size_t kStride = 4;

inline std::uint64_t transform_value(std::uint64_t kind, std::uint64_t value,
                                     std::uint64_t depth) {
  std::uint64_t v = value ^ (kind * 0x9E3779B9ull) ^ (depth << 7);
  v ^= v >> 13;
  v *= 0xFF51AFD7ED558CCDull;
  return v ^ (v >> 33);
}

}  // namespace xalan_detail

template <Detector D>
KernelResult xalan_xform(rt::Runtime<D>& R, const KernelConfig& cfg) {
  using namespace xalan_detail;
  const std::size_t nodes = 20000ull * cfg.scale;
  const std::size_t interns = 64;

  rt::Array<std::uint64_t, D> tree(R, nodes * kStride);
  rt::Array<std::uint64_t, D> intern(R, interns);  // immutable name table
  rt::Mutex<D> stats_mu(R);
  rt::Array<std::uint64_t, D> stats(R, interns);  // lock-protected counters
  rt::Array<std::uint64_t, D> out(R, nodes);

  Rng rng(cfg.seed);
  // Random forest: node i's parent is a random earlier node.
  for (std::size_t i = 0; i < nodes; ++i) {
    tree.store(i * kStride + 0, rng.next_below(interns));       // kind
    tree.store(i * kStride + 1, rng.next());                    // value
    tree.store(i * kStride + 2, i == 0 ? 0 : rng.next_below(i));  // "parent"
    tree.store(i * kStride + 3, rng.next_below(5));             // depth-ish
  }
  for (std::size_t k = 0; k < interns; ++k) intern.store(k, k * 1315423911ull);

  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    const Slice s = slice_of(nodes, w, cfg.threads);
    std::uint64_t local_hits = 0;
    for (std::size_t i = s.begin; i < s.end; ++i) {
      const std::uint64_t kind = tree.load(i * kStride + 0);
      const std::uint64_t value = tree.load(i * kStride + 1);
      const std::uint64_t parent = tree.load(i * kStride + 2);
      const std::uint64_t depth = tree.load(i * kStride + 3);
      // Consult the parent node too (read-shared across slices).
      const std::uint64_t pkind = tree.load(parent * kStride + 0);
      const std::uint64_t name = intern.load(kind % interns);
      std::uint64_t v = transform_value(kind ^ pkind, value ^ name, depth);
      // Rarely, bump a shared per-name statistic (lock-protected).
      if ((v & 0x3FFF) == 0) {
        rt::Guard<D> g(stats_mu);
        const std::size_t k = kind % interns;
        stats.store(k, stats.load(k) + 1);
        ++local_hits;
      }
      out.store(i, v);
    }
    (void)local_hits;
  });

  double checksum = 0.0;
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < nodes; ++i) {
    const std::uint64_t v = out.raw(i);
    checksum += static_cast<double>(v & 0xFFFF);
    if (v != 0) ++nonzero;
  }
  // All outputs written exactly once; transform_value is never 0 for our
  // inputs with overwhelming probability, so demand > 99.9% nonzero.
  const bool valid = nonzero > nodes - nodes / 1000;
  return KernelResult{checksum, valid};
}

}  // namespace vft::kernels
