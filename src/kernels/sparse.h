// sparse: JavaGrande sparse matrix-multiply analogue - the most
// read-shared-heavy kernel in the suite, and the one where Table 1 shows
// the starkest spread (v1 316x, v1.5 246x, v2 25x).
//
// Like the real JGF sparsematmult, the kernel repeatedly accumulates
// y += A x with a *constant* x: the iteration loop has no synchronization
// inside, so each worker stays in one epoch while it re-reads the shared
// vector thousands of times. Under v1/v1.5 every one of those re-reads
// takes the VarState mutex ([Read Shared] is a locked rule there); under
// v2 all but the first hit the lock-free [Read Shared Same Epoch] path.
//
// Validation: y == iters * (A x), checked on sampled rows against an
// uninstrumented recomputation.
#pragma once

#include "kernels/kernel.h"

namespace vft::kernels {

template <Detector D>
KernelResult sparse(rt::Runtime<D>& R, const KernelConfig& cfg) {
  const std::size_t rows = 2048;
  const std::size_t colsn = 512;  // small x: every element re-read often
  constexpr std::size_t kNnzPerRow = 5;
  const std::size_t iters = 8 * cfg.scale;

  rt::Array<std::uint32_t, D> cols(R, rows * kNnzPerRow);
  rt::Array<double, D> vals(R, rows * kNnzPerRow);
  rt::Array<double, D> x(R, colsn);
  rt::Array<double, D> y(R, rows);

  Rng rng(cfg.seed);
  for (std::size_t i = 0; i < rows * kNnzPerRow; ++i) {
    cols.store(i, static_cast<std::uint32_t>(rng.next_below(colsn)));
    vals.store(i, rng.next_double() - 0.5);
  }
  for (std::size_t j = 0; j < colsn; ++j) x.store(j, rng.next_double());

  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    const Slice s = slice_of(rows, w, cfg.threads);
    for (std::size_t it = 0; it < iters; ++it) {
      for (std::size_t i = s.begin; i < s.end; ++i) {
        double acc = y.load(i);
        for (std::size_t k = 0; k < kNnzPerRow; ++k) {
          const std::uint32_t c = cols.load(i * kNnzPerRow + k);
          acc += vals.load(i * kNnzPerRow + k) * x.load(c);
        }
        y.store(i, acc);
      }
    }
  });

  double checksum = 0.0;
  for (std::size_t i = 0; i < rows; i += 3) checksum += y.raw(i);
  bool valid = true;
  if (cfg.validate) {
    // Sampled rows: y[i] must equal iters * (A x)[i] exactly (the same
    // additions in the same order, all in double).
    // Replicates the worker's exact addition order, so == is legitimate.
    for (std::size_t i = 0; i < rows && valid; i += 127) {
      double acc = 0.0;
      for (std::size_t it = 0; it < iters; ++it) {
        for (std::size_t k = 0; k < kNnzPerRow; ++k) {
          acc += vals.raw(i * kNnzPerRow + k) *
                 x.raw(cols.raw(i * kNnzPerRow + k));
        }
      }
      valid = y.raw(i) == acc;
    }
  }
  return KernelResult{checksum, valid};
}

}  // namespace vft::kernels
