// lusearch_idx: DaCapo luindex/lusearch analogue - document indexing.
// Workers tokenize their own synthetic documents into *thread-local*
// instrumented frequency tables (same-epoch-dominated traffic), then merge
// into a global striped dictionary under locks. Mostly thread-local work
// puts this in the mid-to-high-teens overhead band of the real luindex/
// lusearch (13-24x) because the access density is high even though
// sharing is rare.
//
// Validation: the dictionary totals must equal the number of tokens
// generated (counted locally, uninstrumented).
#pragma once

#include <vector>

#include "kernels/kernel.h"

namespace vft::kernels {

template <Detector D>
KernelResult lusearch_idx(rt::Runtime<D>& R, const KernelConfig& cfg) {
  const std::size_t vocab = 512;
  const std::size_t docs_per_thread = 24 * cfg.scale;
  const std::size_t tokens_per_doc = 2000;
  const std::size_t stripes = 16;

  struct Stripe {
    std::unique_ptr<rt::Mutex<D>> mu;
    std::unique_ptr<rt::Array<std::uint64_t, D>> counts;  // vocab/stripes terms
  };
  std::vector<Stripe> dict(stripes);
  const std::size_t per_stripe = vocab / stripes;
  for (auto& s : dict) {
    s.mu = std::make_unique<rt::Mutex<D>>(R);
    s.counts = std::make_unique<rt::Array<std::uint64_t, D>>(R, per_stripe);
  }

  std::vector<std::uint64_t> generated(cfg.threads, 0);

  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    Rng rng(cfg.seed * 53 + w);
    // Thread-local frequency table, instrumented (the detector sees dense
    // exclusive-epoch traffic here, like real per-document scratch).
    rt::Array<std::uint64_t, D> local(R, vocab);
    std::uint64_t tokens = 0;
    for (std::size_t doc = 0; doc < docs_per_thread; ++doc) {
      for (std::size_t i = 0; i < vocab; ++i) local.store(i, 0);
      for (std::size_t tok = 0; tok < tokens_per_doc; ++tok) {
        // Zipf-ish skew: favor low term ids.
        const std::uint64_t r = rng.next_below(vocab * vocab);
        const std::size_t term = static_cast<std::size_t>(
            static_cast<double>(vocab) * (1.0 - std::sqrt(static_cast<double>(r) /
                                                          (vocab * vocab))));
        const std::size_t t = std::min(term, vocab - 1);
        local.store(t, local.load(t) + 1);
        ++tokens;
      }
      // Merge the document's counts into the striped dictionary.
      for (std::size_t stripe = 0; stripe < stripes; ++stripe) {
        rt::Guard<D> g(*dict[stripe].mu);
        for (std::size_t k = 0; k < per_stripe; ++k) {
          const std::size_t term = stripe * per_stripe + k;
          const std::uint64_t c = local.load(term);
          if (c != 0) {
            dict[stripe].counts->store(k, dict[stripe].counts->load(k) + c);
          }
        }
      }
    }
    generated[w] = tokens;
  });

  std::uint64_t expected = 0;
  for (const std::uint64_t g : generated) expected += g;
  std::uint64_t total = 0;
  double checksum = 0.0;
  for (std::size_t stripe = 0; stripe < stripes; ++stripe) {
    for (std::size_t k = 0; k < per_stripe; ++k) {
      const std::uint64_t c = dict[stripe].counts->raw(k);
      total += c;
      checksum += static_cast<double>(c) * static_cast<double>(k % 7);
    }
  }
  return KernelResult{checksum, total == expected};
}

}  // namespace vft::kernels
