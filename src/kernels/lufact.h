// lufact: JavaGrande LU-factorization analogue.
//
// In-place LU with partial pivoting over an instrumented n x n matrix,
// row-cyclic work distribution, one barrier phase per column: thread 0
// selects the pivot and swaps rows, all threads eliminate their rows.
// The pivot row is read-shared within each elimination phase; each
// eliminated row is written exclusively by its owner - a barrier-phased
// mix of read-shared and exclusive traffic, like the real lufact.
//
// Validation: solve A x = b with the computed factors and check the
// residual against the saved (uninstrumented) copy of A.
#pragma once

#include <vector>

#include "kernels/kernel.h"

namespace vft::kernels {

template <Detector D>
KernelResult lufact(rt::Runtime<D>& R, const KernelConfig& cfg) {
  const std::size_t n = 64 * cfg.scale + 32;
  // Ported to the address-keyed shadow API (see kernel.h). The matrix is
  // 8-byte doubles: one VarState per element under every backend. piv is
  // 4-byte entries, so adjacent pivots share a shadow word under the
  // word-granular ShadowSpace - harmless here, since piv has a single
  // instrumented writer (worker 0) and is only raw-read afterwards.
  rt::Array<double, D> m = make_shadowed_array<double>(R, cfg, n * n);
  rt::Array<std::uint32_t, D> piv = make_shadowed_array<std::uint32_t>(R, cfg, n);
  rt::Barrier<D> barrier(R, cfg.threads);

  // Diagonally dominant random matrix (guarantees a well-conditioned LU).
  Rng rng(cfg.seed);
  std::vector<double> a_copy(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double v = rng.next_double() - 0.5;
      m.store(i * n + j, v);
      a_copy[i * n + j] = v;
      row_sum += std::abs(v);
    }
    const double d = a_copy[i * n + i] + row_sum + 1.0;
    m.store(i * n + i, d);
    a_copy[i * n + i] = d;
  }

  rt::parallel_for_threads(R, cfg.threads, [&](std::uint32_t w) {
    for (std::size_t k = 0; k < n; ++k) {
      if (w == 0) {
        // Pivot selection + row swap, single-threaded phase.
        std::size_t p = k;
        double best = std::abs(m.load(k * n + k));
        for (std::size_t i = k + 1; i < n; ++i) {
          const double v = std::abs(m.load(i * n + k));
          if (v > best) {
            best = v;
            p = i;
          }
        }
        piv.store(k, static_cast<std::uint32_t>(p));
        if (p != k) {
          for (std::size_t j = 0; j < n; ++j) {
            const double tmp = m.load(k * n + j);
            m.store(k * n + j, m.load(p * n + j));
            m.store(p * n + j, tmp);
          }
        }
      }
      barrier.arrive_and_wait();  // pivot row published to all workers
      const double pivot = m.load(k * n + k);
      // Row-cyclic elimination: worker w owns rows i = k+1.. with
      // i % threads == w.
      for (std::size_t i = k + 1; i < n; ++i) {
        if (i % cfg.threads != w) continue;
        const double factor = m.load(i * n + k) / pivot;
        m.store(i * n + k, factor);  // store L entry in place
        for (std::size_t j = k + 1; j < n; ++j) {
          m.store(i * n + j, m.load(i * n + j) - factor * m.load(k * n + j));
        }
      }
      barrier.arrive_and_wait();  // eliminated rows published
    }
  });

  // Solve A x = b via the factors (sequential, uninstrumented reads of the
  // factored matrix through raw()); validate the residual against a_copy.
  std::vector<double> b(n), x(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = rng.next_double();
  std::vector<double> pb = b;
  for (std::size_t k = 0; k < n; ++k) {  // apply pivots, forward subst (L)
    const std::size_t p = piv.raw(k);
    std::swap(pb[k], pb[p]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    double acc = pb[i];
    for (std::size_t j = 0; j < i; ++j) acc -= m.raw(i * n + j) * x[j];
    x[i] = acc;  // L has unit diagonal
  }
  for (std::size_t i = n; i-- > 0;) {  // back substitution (U)
    double acc = x[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= m.raw(i * n + j) * x[j];
    x[i] = acc / m.raw(i * n + i);
  }
  double resid = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = -b[i];
    for (std::size_t j = 0; j < n; ++j) acc += a_copy[i * n + j] * x[j];
    resid = std::max(resid, std::abs(acc));
  }
  double checksum = 0.0;
  for (std::size_t i = 0; i < n; ++i) checksum += m.raw(i * n + i);
  return KernelResult{checksum, resid < 1e-8};
}

}  // namespace vft::kernels
