// Plain (externally synchronized) vector clocks, transcribing the
// VectorClock class of Figure 3 (lines 17-59).
//
// A VectorClock stores one epoch per thread id, maintaining the
// well-formedness invariant tid(V[t]) == t for every t. Reads past the end
// of the allocated array return the bottom epoch t@0, and the array grows
// on demand when a larger index is written (ensureCapacity).
//
// Representation: the first kInline components live inline in the object
// (no heap allocation for the common case of a handful of threads); larger
// clocks spill to a heap array. This is the C++ rendition of the paper's
// Section 7 "Local Optimizations" on the vector-clock representation
// (unrolled, allocation-light clocks for small thread counts).
//
// This class performs no synchronization of its own. It backs:
//   - ThreadState.V  (thread-local per the Section 4 discipline),
//   - LockState.V    (protected by the target lock m itself),
//   - v1 VarState.V  (protected by the VarState mutex).
// The v2 discipline needs lock-free reads of single slots and uses
// SyncVectorClock instead.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "vft/epoch.h"
#include "vft/vc_simd.h"

namespace vft {

// The SIMD kernels treat Epoch arrays as raw u32 arrays (see vc_simd.h for
// why well-formedness makes that correct). Pin the layout they rely on.
static_assert(sizeof(Epoch) == sizeof(std::uint32_t));
static_assert(alignof(Epoch) == alignof(std::uint32_t));

/// Reinterpret an Epoch array as its packed-bits carrier for the kernels.
inline const std::uint32_t* epoch_bits(const Epoch* e) {
  return reinterpret_cast<const std::uint32_t*>(e);
}
inline std::uint32_t* epoch_bits(Epoch* e) {
  return reinterpret_cast<std::uint32_t*>(e);
}

class VectorClock {
 public:
  /// Components stored inline before spilling to the heap.
  static constexpr std::uint32_t kInline = 8;

  VectorClock() = default;

  /// A clock with capacity for threads [0, n), all at bottom.
  explicit VectorClock(std::uint32_t n) { ensure_capacity(n); }

  VectorClock(const VectorClock& other) { copy_from(other); }

  VectorClock& operator=(const VectorClock& other) {
    if (this != &other) {
      size_ = 0;  // discard contents; capacity is reused
      copy_from(other);
    }
    return *this;
  }

  VectorClock(VectorClock&& other) noexcept { move_from(std::move(other)); }

  VectorClock& operator=(VectorClock&& other) noexcept {
    if (this != &other) move_from(std::move(other));
    return *this;
  }

  /// get(t): the epoch for thread t, or t@0 beyond the allocated array.
  Epoch get(Tid t) const {
    return t < size_ ? data()[t] : Epoch::bottom(t);
  }

  /// set(t, e): store e at index t, growing the array if needed.
  /// Checked: e must be a well-formed epoch for thread t.
  void set(Tid t, Epoch e) {
    VFT_ASSERT(!e.is_shared() && e.tid() == t);
    ensure_capacity(t + 1);
    if (heap_) {
      heap_[t] = e;
    } else {
      // Heapless clocks have cap_ == kInline, so t < kInline here; the
      // min() only makes that bound visible to the optimizer.
      inline_[std::min(t, kInline - 1)] = e;
    }
  }

  /// inc(t): advance thread t's component by one (inc_t in Section 3).
  void inc(Tid t) { set(t, get(t).inc()); }

  /// Number of allocated components; logically the clock extends with
  /// bottom epochs beyond this.
  std::uint32_t size() const { return size_; }

  /// this <= other, point-wise over all components of either clock.
  /// Per-slot compares run as raw u32 compares (SIMD above the inline
  /// size): well-formedness makes them equivalent to vft::leq slot-wise.
  bool leq(const VectorClock& other) const {
    const Epoch* mine = data();
    const std::uint32_t common = std::min(size_, other.size_);
    if (!simd::leq_all(epoch_bits(mine), epoch_bits(other.data()), common)) {
      return false;
    }
    // Components beyond other's length compare against bottom: their clock
    // bits must all be zero.
    constexpr std::uint32_t kClockMask =
        (std::uint32_t{1} << Epoch::kClockBits) - 1;
    return simd::all_masked_zero(epoch_bits(mine) + common, size_ - common,
                                 kClockMask);
  }

  /// this := this join other (point-wise max; unsigned u32 max per slot).
  void join(const VectorClock& other) {
    ensure_capacity(other.size_);
    simd::join_max(epoch_bits(data()), epoch_bits(other.data()), other.size_);
  }

  /// this := other (copying all components either clock covers).
  void copy(const VectorClock& other) {
    ensure_capacity(other.size_);
    Epoch* mine = data();
    simd::copy_words(epoch_bits(mine), epoch_bits(other.data()), other.size_);
    for (Tid i = other.size_; i < size_; ++i) mine[i] = Epoch::bottom(i);
  }

  bool operator==(const VectorClock& other) const {
    const std::uint32_t n = std::max(size_, other.size_);
    for (Tid i = 0; i < n; ++i) {
      if (get(i) != other.get(i)) return false;
    }
    return true;
  }

  /// Grow the backing allocation to hold n components without changing
  /// the logical size. After reserve(n), every ensure_capacity(m) with
  /// m <= n is allocation-free - the sync wrappers (Volatile, Barrier)
  /// pre-size their clocks this way so growth never happens while they
  /// hold their locks.
  void reserve(std::uint32_t n) {
    if (n <= cap_) return;
    auto fresh = std::make_unique<Epoch[]>(n);
    simd::copy_words(epoch_bits(fresh.get()), epoch_bits(data()), size_);
    heap_ = std::move(fresh);
    cap_ = n;
  }

  /// Allocated capacity in components (>= size()).
  std::uint32_t capacity() const { return cap_; }

  /// Forget all components but keep the allocation: the phase-reset path
  /// of Barrier (and SharedMutex) without touching the heap.
  void reset() { size_ = 0; }

  /// Grow the backing array so that indices [0, n) are materialized.
  void ensure_capacity(std::uint32_t n) {
    if (n <= size_) return;
    if (n > cap_) {
      std::uint32_t new_cap = std::max(n, cap_ * 2);
      auto fresh = std::make_unique<Epoch[]>(new_cap);
      const Epoch* old = data();
      for (Tid i = 0; i < size_; ++i) fresh[i] = old[i];
      heap_ = std::move(fresh);
      cap_ = new_cap;
    }
    Epoch* d = data();
    for (Tid i = size_; i < n; ++i) d[i] = Epoch::bottom(i);
    size_ = n;
  }

  /// Contiguous component storage [0, size()). Exposed for the SIMD
  /// kernels of callers that fuse over this representation (e.g.
  /// SyncVectorClock::leq_locked) and for the hot-path microbench.
  const Epoch* raw_slots() const { return data(); }

  /// "<0@1, 1@0, ...>" for debugging and golden-state tests.
  std::string str() const;

 private:
  Epoch* data() { return heap_ ? heap_.get() : inline_; }
  const Epoch* data() const { return heap_ ? heap_.get() : inline_; }

  void copy_from(const VectorClock& other) {
    ensure_capacity(other.size_);
    simd::copy_words(epoch_bits(data()), epoch_bits(other.data()), other.size_);
    size_ = other.size_;
  }

  void move_from(VectorClock&& other) {
    if (other.heap_) {
      heap_ = std::move(other.heap_);
      cap_ = other.cap_;
      size_ = other.size_;
    } else {
      heap_.reset();
      cap_ = kInline;
      // min() is a no-op (heapless clocks have size_ <= kInline) but lets
      // the optimizer bound the copy inside the inline array.
      size_ = std::min(other.size_, kInline);
      simd::copy_words(epoch_bits(inline_), epoch_bits(other.inline_), size_);
    }
    other.size_ = 0;
    other.cap_ = kInline;
    other.heap_.reset();
  }

  std::uint32_t size_ = 0;
  std::uint32_t cap_ = kInline;
  Epoch inline_[kInline];
  std::unique_ptr<Epoch[]> heap_;
};

}  // namespace vft
