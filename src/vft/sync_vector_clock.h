// SyncVectorClock: the vector clock inside a v2 VarState, supporting the
// Section 5 synchronization discipline:
//
//   sx.V     protected by the VarState lock while sx.R != SHARED;
//            write-protected (lock for writes, lock-free reads) once SHARED.
//   sx.V[t]  readable lock-free by thread t itself once SHARED (the
//            [Read Shared Same Epoch] fast path); writable only by thread t
//            and only with the lock held.
//
// The Java implementation leans on two JVM features we must supply
// ourselves in C++:
//
//   1. `volatile` array references -> here the array pointer and the slots
//      are std::atomic with acquire/release ordering, so the lock-free
//      readers of Section 5 are expressed without undefined behaviour.
//   2. garbage collection -> when ensureCapacity replaces the array, a
//      lock-free reader may still hold the superseded one. We retire old
//      arrays to a list owned by this clock and free them on destruction
//      (DESIGN.md, substitution table). Superseded arrays are immutable
//      from the moment they are replaced, so stale readers observe exactly
//      the values that were current when they loaded the pointer - the
//      property the Java code gets from GC.
//
// Publication protocol for growth (all under the external VarState lock):
// fill the new array, publish the pointer with release, then publish the
// new length with release. A reader loads the length first (acquire) and
// the pointer second (acquire); seeing the new length therefore implies
// seeing the new (or a newer) pointer, so indices < len are always in
// bounds. A reader that sees an old length with a new pointer merely reads
// a prefix, which is harmless: get() returns bottom for missing slots.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/sched_point.h"
#include "vft/epoch.h"
#include "vft/vector_clock.h"

namespace vft {

class SyncVectorClock {
 public:
  SyncVectorClock() : len_(0), slots_(nullptr) {}

  ~SyncVectorClock() {
    delete[] slots_.load(std::memory_order_relaxed);
  }

  SyncVectorClock(const SyncVectorClock&) = delete;
  SyncVectorClock& operator=(const SyncVectorClock&) = delete;

  /// Lock-free read of slot t (acquire). Safe for thread t's own slot per
  /// the discipline; also used under the lock for arbitrary slots.
  Epoch get(Tid t) const {
    // One sched point for the whole read (len + pointer + slot): the
    // clock is the interleaving-relevant object, per-word granularity
    // would only blow up the schedule space without adding coverage.
    VFT_SCHED_POINT(kLoad, this);
    std::uint32_t n = len_.load(std::memory_order_acquire);
    if (t >= n) return Epoch::bottom(t);
    const std::atomic<Epoch>* s = slots_.load(std::memory_order_acquire);
    return s[t].load(std::memory_order_acquire);
  }

  /// Store e at slot t. Caller must hold the owning VarState's lock.
  void set_locked(Tid t, Epoch e) {
    VFT_SCHED_POINT(kStore, this);
    VFT_ASSERT(!e.is_shared() && e.tid() == t);
    ensure_capacity_locked(t + 1);
    slots_.load(std::memory_order_relaxed)[t].store(e, std::memory_order_release);
  }

  std::uint32_t size() const { return len_.load(std::memory_order_acquire); }

  /// this <= other, point-wise. Caller must hold the owning lock (the slow
  /// [Write Shared] check of Figure 4 line 169 runs locked).
  ///
  /// Runs the same SIMD kernels as VectorClock::leq: with the lock held the
  /// slot array is write-quiescent (every store requires the lock), so
  /// reading it as raw words races with nothing - concurrent lock-free
  /// readers only load, and read/read is no conflict.
  bool leq_locked(const VectorClock& other) const {
    VFT_SCHED_POINT(kLoad, this);
    static_assert(sizeof(std::atomic<Epoch>) == sizeof(std::uint32_t));
    const std::uint32_t mine_n = size();
    const std::uint32_t common = std::min(mine_n, other.size());
    const auto* raw = reinterpret_cast<const std::uint32_t*>(
        slots_.load(std::memory_order_acquire));
    if (!simd::leq_all(raw, epoch_bits(other.raw_slots()), common)) {
      return false;
    }
    // Our components past other's length compare against bottom epochs:
    // ok iff their clock bits are zero.
    constexpr std::uint32_t kClockMask =
        (std::uint32_t{1} << Epoch::kClockBits) - 1;
    return simd::all_masked_zero(raw + common, mine_n - common, kClockMask);
  }

  /// Snapshot into a plain clock (for reports and tests). Caller holds lock.
  VectorClock snapshot_locked() const {
    VectorClock out;
    for (Tid i = 0; i < size(); ++i) out.set(i, get(i));
    return out;
  }

  std::string str() const { return snapshot_locked().str(); }

 private:
  void ensure_capacity_locked(std::uint32_t n) {
    std::uint32_t old_n = len_.load(std::memory_order_relaxed);
    if (n <= old_n) return;
    // Grow geometrically but never materialize slots past the tid space
    // (filler epochs must be well-formed bottom(t) values).
    std::uint32_t new_n = std::max(n, old_n == 0 ? 4u : old_n * 2);
    new_n = std::min(new_n, static_cast<std::uint32_t>(Epoch::kMaxTid) + 1);
    new_n = std::max(new_n, n);
    auto* fresh = new std::atomic<Epoch>[new_n];
    const std::atomic<Epoch>* old = slots_.load(std::memory_order_relaxed);
    for (Tid i = 0; i < new_n; ++i) {
      Epoch e = i < old_n ? old[i].load(std::memory_order_relaxed)
                          : Epoch::bottom(i);
      fresh[i].store(e, std::memory_order_relaxed);
    }
    slots_.store(fresh, std::memory_order_release);
    len_.store(new_n, std::memory_order_release);
    if (old != nullptr) {
      retired_.emplace_back(const_cast<std::atomic<Epoch>*>(old));
    }
  }

  std::atomic<std::uint32_t> len_;
  std::atomic<std::atomic<Epoch>*> slots_;
  // Superseded arrays, kept alive for stale lock-free readers; mutated only
  // under the owning VarState's lock, freed with this clock.
  std::vector<std::unique_ptr<std::atomic<Epoch>[]>> retired_;
};

}  // namespace vft
