#include "vft/atomics.h"

#include <cstdlib>
#include <cstring>

namespace vft::atomics {

Mode mode_from_env() {
  const char* e = std::getenv("VFT_ATOMICS");
  if (e == nullptr || *e == '\0' || std::strcmp(e, "precise") == 0) {
    return Mode::kPrecise;
  }
  if (std::strcmp(e, "sc") == 0) return Mode::kSc;
  if (std::strcmp(e, "off") == 0) return Mode::kOff;
  return Mode::kPrecise;
}

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kPrecise:
      return "precise";
    case Mode::kSc:
      return "sc";
    case Mode::kOff:
      return "off";
  }
  return "?";
}

FenceTls& fence_tls(std::uint64_t gen) {
  thread_local FenceTls tl;
  if (tl.generation != gen) {
    // A Session::reset() happened since this thread last fenced: the old
    // clocks belong to a torn-down backend. Start from scratch.
    tl.has_release = false;
    tl.has_acquire = false;
    tl.release_V.reset();
    tl.acquire_V.reset();
    tl.generation = gen;
  }
  return tl;
}

}  // namespace vft::atomics
