// The race-report document model and its wire formats.
//
// One renderer serves every producer and consumer of reports: the C ABI's
// vft_report_write (in-process, end of run), the interposer's crash-path
// writer, and the `vft report merge/symbolize` offline tools. The JSON
// schema is versioned ("vft-report-v2"); the old flat text form survives
// as the `plain` compatibility format.
//
// Schema (canonical key order as rendered):
//   {
//     "schema": "vft-report-v2",
//     "detector": "VerifiedFT-v2",
//     "runs": 1,                      // >1 after `vft report merge`
//     "clean_exit": true,             // false: written from a crash handler
//     "contexts": [
//       {
//         "key": "0x<16 hex>",        // ASLR-stable context key (report.h)
//         "kind": "write-write race",
//         "var": "0x<hex>",
//         "var_name": "...",          // only when registered
//         "count": 1000,              // occurrences folded into the context
//         "suppressed_by": "rule",    // only when hidden ("<limit>": caps)
//         "accesses": [
//           { "role": "current", "kind": "write", "tid": 2, "epoch": "2@7",
//             "stack": [ { "pc": "0x..", "module": "/path", "offset": "0x..",
//                          "symbol": "fn", "symbol_offset": "0x..",
//                          "file": "x.cpp", "line": 12 } ] },
//           { "role": "prior", "kind": "write", "tid": 1, "epoch": "1@5",
//             "stack": [ ...the prior access's frames, from the bounded
//                        access history (vft/access_history.h); empty when
//                        the ring evicted the entry or history is off... ] }
//         ]
//       }
//     ],
//     "suppressions": [ { "name": "rule", "matched": 12 } ],
//     "summary": { "races": .., "contexts": .., "suppressed": ..,
//                  "suppressed_contexts": .., "threads": .., "locks": ..,
//                  "shadow_words": .. }
//   }
//
// Frames carry module+offset so symbolization can happen *offline*
// (`vft report symbolize`, addr2line/llvm-symbolizer): the monitored
// process never touches symbol tables. "symbol" is dladdr's nearest
// dynamic symbol when one was visible at capture time; "file"/"line"
// appear only after offline symbolization.
//
// Parsing is tolerant by design: a report truncated by a dying target
// yields every complete context plus a `truncated` flag, so `vft run`
// can still give a verdict for a crashed run.
//
// Rendering is canonical - fixed key order, contexts sorted by
// (kind, var, key), counts in decimal, addresses in hex - which is what
// makes `vft report merge` byte-stable across input orderings.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vft {
class RaceCollector;
}

namespace vft::reportio {

// ---------------------------------------------------------------------
// Minimal JSON tree (self-contained; no external deps). Numbers keep
// their raw token so uint64 counts round-trip losslessly.
// ---------------------------------------------------------------------

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  std::string number;  ///< raw numeric token
  std::string string;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;  ///< insertion order

  /// Object member lookup; nullptr when absent or not an object.
  const Json* get(std::string_view key) const;
  std::uint64_t as_u64(std::uint64_t fallback = 0) const;
  std::int64_t as_i64(std::int64_t fallback = 0) const;
};

struct JsonParse {
  Json value;
  bool complete = false;  ///< false: input ended mid-value (truncation)
  std::string error;      ///< non-empty only for malformed (not truncated)
};

/// Parse one JSON value. Truncated input produces the partial tree with
/// complete=false; structurally malformed input sets `error`.
JsonParse parse_json(std::string_view text);

/// Escape a byte string into JSON string-literal content (no quotes).
/// Printable ASCII passes through; quote/backslash are escaped; control
/// bytes and non-ASCII bytes become \u00XX so the output is valid JSON
/// for *any* input bytes (paths and symbols are not guaranteed UTF-8).
std::string json_escape(std::string_view s);

// ---------------------------------------------------------------------
// Report document model.
// ---------------------------------------------------------------------

struct Frame {
  std::uint64_t pc = 0;
  std::string module;
  std::uint64_t offset = 0;
  std::string symbol;
  std::uint64_t symbol_offset = 0;
  std::string file;  ///< offline symbolization only
  int line = -1;     ///< offline symbolization only
};

struct Access {
  std::string role;  ///< "current" | "prior"
  std::string kind;  ///< "read" | "write"; empty in pre-history reports
  unsigned tid = 0;
  std::string epoch;  ///< "t@c"
  std::vector<Frame> stack;
};

struct Context {
  std::string key;  ///< "0x<16 hex>"
  std::string kind;
  std::string var;  ///< "0x<hex>"
  std::string var_name;
  std::uint64_t count = 0;
  std::string suppressed_by;  ///< empty: visible
  std::vector<Access> accesses;

  bool hidden() const { return !suppressed_by.empty(); }
};

struct Summary {
  std::uint64_t races = 0;       ///< visible occurrences
  std::uint64_t contexts = 0;    ///< visible contexts
  std::uint64_t suppressed = 0;  ///< hidden occurrences
  std::uint64_t suppressed_contexts = 0;
  std::uint64_t threads = 0;
  std::uint64_t locks = 0;
  std::uint64_t shadow_words = 0;
};

/// Sampling-mode block ("sampling" object, emitted only when the run had
/// the sampling gate enabled - reports from exact runs are unchanged, so
/// the CI schema golden stays stable). All counters are integers so
/// merge_reports can sum them deterministically; the ratios the object
/// renders (achieved_rate, overhead_pct) are derived from the integers at
/// render time. The controller's current rate travels as parts-per-million
/// (rate_ppm) for the same reason; merge averages it weighted by busy_ns
/// in integer arithmetic.
struct SamplingInfo {
  bool enabled = false;
  std::string policy;         ///< "cell" | "drop" ("mixed" after a merge)
  double budget_pct = 0.0;    ///< configured target overhead (0: none)
  double rate0 = 1.0;         ///< configured initial rate
  std::uint64_t rate_ppm = 1000000;  ///< current global rate * 1e6
  std::uint64_t sampled = 0;
  std::uint64_t skipped = 0;
  std::uint64_t cooled_out = 0;
  std::uint64_t reheats = 0;
  std::uint64_t overhead_ns = 0;
  std::uint64_t busy_ns = 0;  ///< process CPU ns while the gate was live
  std::uint64_t adjustments = 0;
};

struct ReportDoc {
  std::string detector;
  std::uint64_t runs = 1;
  bool clean_exit = true;
  bool truncated = false;  ///< parse-side only: the input was cut short
  SamplingInfo sampling;   ///< rendered only when .enabled
  std::vector<Context> contexts;
  std::vector<std::pair<std::string, std::uint64_t>> suppression_stats;
  Summary summary;
};

/// Snapshot the live collector into a document. Backend stats (threads,
/// locks, shadow words) come from the caller; recomputes the summary
/// from the contexts.
ReportDoc build_report_doc(const RaceCollector& rc, const char* detector,
                           std::size_t threads, std::size_t locks,
                           std::size_t shadow_words, bool clean_exit);

/// Canonical JSON rendering (see header comment). Deterministic for a
/// given document.
std::string render_json(const ReportDoc& doc);

/// The pre-v2 flat text format, kept as the `plain` compatibility mode:
/// one "race:" line per visible context plus the "summary: races=..."
/// line older tooling scrapes.
std::string render_plain(const ReportDoc& doc);

/// Parse a v2 JSON report. Tolerant: truncation keeps complete contexts
/// and sets doc->truncated. Returns false only when nothing usable could
/// be recovered (err gets a diagnostic).
bool parse_report(std::string_view text, ReportDoc* doc,
                  std::string* err = nullptr);

/// Fuse fleet runs: contexts merged by key (counts and suppression stats
/// summed, representative chosen deterministically), process-level stats
/// summed, `runs` accumulated, clean_exit ANDed. Input order never
/// changes the rendered output.
ReportDoc merge_reports(const std::vector<ReportDoc>& docs);

/// Structural skeleton of a JSON document: object keys sorted, array
/// elements union-merged, scalars replaced by type tags. Two reports
/// with the same schema but different values/counts/addresses produce
/// identical skeletons - the CI golden for the merged fleet report.
std::string json_skeleton(std::string_view text);

}  // namespace vft::reportio
