// Per-rule frequency counters, for reproducing the Section 5 access-mix
// claim ([Read Same Epoch] 60%, [Write Same Epoch] 14%, [ReadShared Same
// Epoch] 12% -> the three lock-free fast paths cover ~85% of accesses).
//
// Every detector carries an optional RuleStats pointer; when unset (the
// default, and the Table 1 configuration) the only cost is one predictable
// branch per handler exit. When set, counters are relaxed atomics so that
// inline handlers in different target threads can bump them without
// synchronizing.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace vft {

enum class Rule : std::uint8_t {
  kReadSameEpoch,
  kReadSharedSameEpoch,
  kReadExclusive,
  kReadShare,
  kReadShared,
  kWriteSameEpoch,
  kWriteExclusive,
  kWriteShared,
  kWriteReadRace,
  kWriteWriteRace,
  kReadWriteRace,
  kSharedWriteRace,
  kAcquire,
  kRelease,
  kFork,
  kJoin,
  kVolRead,
  kVolWrite,
  kBarrier,
  // __tsan_atomic* sync accounting (vft/atomics.h). Like the sync rows
  // above these are not data accesses: an atomic op never routes through
  // the access rules, so the rows live past kSharedWriteRace and never
  // perturb total_accesses() or the Table 1 distribution.
  kAtomicLoad,     ///< __tsan_atomicN_load (any order)
  kAtomicStore,    ///< __tsan_atomicN_store (any order)
  kAtomicRmw,      ///< exchange / fetch_* / compare_exchange (any order)
  kAtomicFence,    ///< __tsan_atomic_thread_fence
  kAtomicRelaxed,  ///< of the above, ops that contributed NO sync edge
  // Packed-cell fast-path accounting (vft/packed_cell.h). These are
  // *extra* observations layered over the access rules above: a fast-path
  // hit also bumps its [.. Same Epoch]/[.. Exclusive] rule (the detector
  // never saw the access, so the fast path keeps the Table 1 distribution
  // honest), and a miss is counted here on top of whatever rule the
  // detector then fires. Placed after kBarrier so total_accesses() - which
  // sums only through kSharedWriteRace - never double counts.
  kFastReadHit,   ///< read completed inline against the packed cell
  kFastWriteHit,  ///< write completed inline against the packed cell
  kFastSpill,     ///< escalations won: cell spilled into a full VarState
  kFastMiss,      ///< accesses that fell through to a detector call
  kSampledOut,    ///< accesses gated out by the sampling layer
  kNumRules,
};

inline const char* rule_name(Rule r) {
  switch (r) {
    case Rule::kReadSameEpoch: return "[Read Same Epoch]";
    case Rule::kReadSharedSameEpoch: return "[Read Shared Same Epoch]";
    case Rule::kReadExclusive: return "[Read Exclusive]";
    case Rule::kReadShare: return "[Read Share]";
    case Rule::kReadShared: return "[Read Shared]";
    case Rule::kWriteSameEpoch: return "[Write Same Epoch]";
    case Rule::kWriteExclusive: return "[Write Exclusive]";
    case Rule::kWriteShared: return "[Write Shared]";
    case Rule::kWriteReadRace: return "[Write-Read Race]";
    case Rule::kWriteWriteRace: return "[Write-Write Race]";
    case Rule::kReadWriteRace: return "[Read-Write Race]";
    case Rule::kSharedWriteRace: return "[Shared-Write Race]";
    case Rule::kAcquire: return "[Acquire]";
    case Rule::kRelease: return "[Release]";
    case Rule::kFork: return "[Fork]";
    case Rule::kJoin: return "[Join]";
    case Rule::kVolRead: return "[Volatile Read]";
    case Rule::kVolWrite: return "[Volatile Write]";
    case Rule::kBarrier: return "[Barrier]";
    case Rule::kAtomicLoad: return "[Atomic Load]";
    case Rule::kAtomicStore: return "[Atomic Store]";
    case Rule::kAtomicRmw: return "[Atomic RMW]";
    case Rule::kAtomicFence: return "[Atomic Fence]";
    case Rule::kAtomicRelaxed: return "[Atomic Relaxed]";
    case Rule::kFastReadHit: return "[Fast Read Hit]";
    case Rule::kFastWriteHit: return "[Fast Write Hit]";
    case Rule::kFastSpill: return "[Fast Spill]";
    case Rule::kFastMiss: return "[Fast Miss]";
    case Rule::kSampledOut: return "[Sampled Out]";
    default: return "?";
  }
}

class RuleStats {
 public:
  static constexpr std::size_t kN = static_cast<std::size_t>(Rule::kNumRules);

  void bump(Rule r) {
    counts_[static_cast<std::size_t>(r)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Bulk bump: n observations of the same rule in one relaxed add. Used by
  /// the SIMD range kernels, which resolve a whole prefix of cells at once.
  void bump(Rule r, std::uint64_t n) {
    counts_[static_cast<std::size_t>(r)].fetch_add(n, std::memory_order_relaxed);
  }

  /// Address of a rule's counter, for the header-inlined ABI fast path: the
  /// inline hit bumps the counter through this pointer (same relaxed
  /// fetch_add the out-of-line path performs), keeping the fast/slow paths
  /// bit-identical on every counter without a flush protocol.
  std::atomic<std::uint64_t>* counter_addr(Rule r) {
    return &counts_[static_cast<std::size_t>(r)];
  }

  std::uint64_t count(Rule r) const {
    return counts_[static_cast<std::size_t>(r)].load(std::memory_order_relaxed);
  }

  /// Total read+write accesses (excludes sync operations).
  std::uint64_t total_accesses() const {
    std::uint64_t n = 0;
    for (std::size_t i = 0; i <= static_cast<std::size_t>(Rule::kSharedWriteRace); ++i) {
      n += counts_[i].load(std::memory_order_relaxed);
    }
    return n;
  }

  void reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kN> counts_{};
};

}  // namespace vft
