// Valgrind-style suppression rules for race reports.
//
// A suppression file is a sequence of blocks:
//
//     # known benign: the stats counter is monotonic and racy by design
//     {
//        stats-counter-increment
//        vft:race
//        fun:bump_stats*
//        obj:*libserver.so
//        ...
//     }
//
// Block grammar, line by line inside the braces:
//   - first line: the rule's name (free text, shown in the report's
//     suppression stats);
//   - `vft:<glob>` - which race kinds the rule covers. The glob is
//     matched against the kind name ("write-write race", ...); the
//     conventional `vft:race` matches every kind;
//   - the remaining lines describe the racing access's call stack from
//     the innermost frame down: `fun:<glob>` matches the frame's symbol
//     (dladdr's nearest dynamic symbol - compile the target with
//     -rdynamic for static-linkage names, or suppress by object),
//     `obj:<glob>` matches the containing module path, and `...` matches
//     any number of frames (including zero). A rule matches a *prefix*
//     of the stack: frames below the pattern are ignored, exactly like
//     valgrind.
//
// Matching runs only when a new error context is created (report.h), so
// the per-occurrence cost of a suppressed hot race is a hash lookup, and
// the race-free fast path never sees any of this. Matched contexts are
// counted, not dropped: valgrind's "suppressed: N" discipline, so a
// suppression hiding a *new* race is still visible in the stats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "vft/stack.h"

namespace vft {

/// Shell-style glob match supporting `*` and `?` (no character classes).
bool glob_match(const std::string& pattern, const std::string& text);

struct SuppressionFrame {
  enum Kind : std::uint8_t { kFun, kObj, kEllipsis };
  Kind kind;
  std::string glob;  ///< empty for kEllipsis
};

struct SuppressionRule {
  std::string name;
  std::string kind_glob;  ///< matched against race_kind_name(); "race" = all
  std::vector<SuppressionFrame> frames;
  /// Occurrences this rule has hidden (including dedup-folded repeats).
  mutable std::uint64_t matched = 0;
};

class SuppressionEngine {
 public:
  /// Parse one file / one in-memory ruleset and append its rules.
  /// Returns false (leaving previously loaded rules intact) on a
  /// missing file or malformed block; `err` gets a one-line diagnostic.
  bool load_file(const std::string& path, std::string* err = nullptr);
  bool load_text(const std::string& text, const std::string& origin,
                 std::string* err = nullptr);

  /// First rule matching this kind + resolved stack, or nullptr. Does
  /// not bump the match counter - the collector owns occurrence
  /// accounting via count_match().
  const SuppressionRule* match(const char* kind_name,
                               const std::vector<ResolvedFrame>& stack) const;

  void count_match(const SuppressionRule& rule, std::uint64_t n) const {
    rule.matched += n;
  }

  const std::deque<SuppressionRule>& rules() const { return rules_; }
  bool empty() const { return rules_.empty(); }
  void clear() { rules_.clear(); }

 private:
  /// deque: rules are referenced by address from live error contexts,
  /// so appending another file's rules must not move existing ones.
  std::deque<SuppressionRule> rules_;
};

}  // namespace vft
