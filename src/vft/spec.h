// The VerifiedFT analysis specification (Figure 2) as a *sequential*
// reference implementation: a deterministic state transition system
// S =a=> S' | Error over thread/lock/variable ids.
//
// This is the functional-correctness oracle: the concurrent detectors are
// differentially tested against it (each handler must transform the state
// exactly as the matching rule does), and it is itself validated against
// the happens-before oracle to check Theorem 3.1 (precise: Error iff the
// trace has a race).
//
// RuleSet selects between the VerifiedFT rules and the *original*
// FastTrack rules; the three differences (Section 3, "Comparison to the
// FastTrack Specification") are:
//   1. FastTrack has no [Read Shared Same Epoch] rule,
//   2. FastTrack's [Write Shared] resets Sx.R to the bottom epoch
//      (forgetting reads preceding the write),
//   3. FastTrack's [Join] additionally increments Su.V[u].
// Keeping both rule sets lets the ablation benches (DESIGN.md E5/E6)
// measure exactly what the specification changes buy.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "vft/epoch.h"
#include "vft/stats.h"
#include "vft/vector_clock.h"

namespace vft {

using VarId = std::uint64_t;
using LockId = std::uint64_t;
using VolId = std::uint64_t;

enum class RuleSet {
  kVerifiedFT,
  kOriginalFastTrack,
};

class Spec {
 public:
  /// Per-variable analysis state: Sx = { V, R, W }. R uses the SHARED
  /// sentinel epoch to encode the (Epoch | Shared) sum of Section 3.
  struct VarState {
    VectorClock V;
    Epoch R;  // bottom initially; SHARED once reads are unordered
    Epoch W;  // bottom initially
  };

  struct StepResult {
    Rule rule;     // which Figure 2 rule fired
    bool error;    // true iff the rule was one of the four race rules
  };

  explicit Spec(RuleSet rules = RuleSet::kVerifiedFT) : rules_(rules) {}

  // Transition functions, one per operation of the Section 2 trace
  // language. Once a step returns error the machine is halted: further
  // steps are a VFT_CHECK failure (Figure 2: "the analysis stops").
  StepResult on_read(Tid t, VarId x);
  StepResult on_write(Tid t, VarId x);
  StepResult on_acquire(Tid t, LockId m);
  StepResult on_release(Tid t, LockId m);
  StepResult on_fork(Tid t, Tid u);
  StepResult on_join(Tid t, Tid u);
  // Volatile accesses (Section 7): a read acquires the variable's
  // accumulated writer clock; a write publishes (joins) the writer's clock
  // and starts a new epoch. Volatile accesses never race.
  StepResult on_vol_read(Tid t, VolId v);
  StepResult on_vol_write(Tid t, VolId v);

  bool halted() const { return halted_; }
  RuleSet rules() const { return rules_; }

  // State accessors for golden-state tests (e.g. the Figure 1 walkthrough).
  // Reading a component materializes its initial value per S0.
  const VectorClock& thread_vc(Tid t) { return thread_state(t); }
  const VectorClock& lock_vc(LockId m) { return lock_state(m); }
  const VectorClock& vol_vc(VolId v) { return vol_state(v); }
  const VarState& var(VarId x) { return var_state(x); }
  Epoch thread_epoch(Tid t) { return thread_state(t).get(t); }

 private:
  VectorClock& thread_state(Tid t);
  VectorClock& lock_state(LockId m);
  VectorClock& vol_state(VolId v);
  VarState& var_state(VarId x);

  StepResult ok(Rule r) { return {r, false}; }
  StepResult error(Rule r) {
    halted_ = true;
    return {r, true};
  }

  RuleSet rules_;
  bool halted_ = false;
  std::unordered_map<Tid, VectorClock> threads_;
  std::unordered_map<LockId, VectorClock> locks_;
  std::unordered_map<VolId, VectorClock> volatiles_;
  std::unordered_map<VarId, VarState> vars_;
};

}  // namespace vft
