// The VerifiedFT analysis specification (Figure 2) as a *sequential*
// reference implementation: a deterministic state transition system
// S =a=> S' | Error over thread/lock/variable ids.
//
// This is the functional-correctness oracle: the concurrent detectors are
// differentially tested against it (each handler must transform the state
// exactly as the matching rule does), and it is itself validated against
// the happens-before oracle to check Theorem 3.1 (precise: Error iff the
// trace has a race).
//
// RuleSet selects between the VerifiedFT rules and the *original*
// FastTrack rules; the three differences (Section 3, "Comparison to the
// FastTrack Specification") are:
//   1. FastTrack has no [Read Shared Same Epoch] rule,
//   2. FastTrack's [Write Shared] resets Sx.R to the bottom epoch
//      (forgetting reads preceding the write),
//   3. FastTrack's [Join] additionally increments Su.V[u].
// Keeping both rule sets lets the ablation benches (DESIGN.md E5/E6)
// measure exactly what the specification changes buy.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "vft/epoch.h"
#include "vft/stats.h"
#include "vft/vector_clock.h"

namespace vft {

using VarId = std::uint64_t;
using LockId = std::uint64_t;
using VolId = std::uint64_t;

enum class RuleSet {
  kVerifiedFT,
  kOriginalFastTrack,
};

class Spec {
 public:
  /// Per-variable analysis state: Sx = { V, R, W }. R uses the SHARED
  /// sentinel epoch to encode the (Epoch | Shared) sum of Section 3.
  struct VarState {
    VectorClock V;
    Epoch R;  // bottom initially; SHARED once reads are unordered
    Epoch W;  // bottom initially
  };

  struct StepResult {
    Rule rule;     // which Figure 2 rule fired
    bool error;    // true iff the rule was one of the four race rules
  };

  explicit Spec(RuleSet rules = RuleSet::kVerifiedFT) : rules_(rules) {}

  // Transition functions, one per operation of the Section 2 trace
  // language. Once a step returns error the machine is halted: further
  // steps are a VFT_CHECK failure (Figure 2: "the analysis stops").
  StepResult on_read(Tid t, VarId x);
  StepResult on_write(Tid t, VarId x);
  StepResult on_acquire(Tid t, LockId m);
  StepResult on_release(Tid t, LockId m);
  StepResult on_fork(Tid t, Tid u);
  StepResult on_join(Tid t, Tid u);
  // Volatile accesses (Section 7): a read acquires the variable's
  // accumulated writer clock; a write publishes (joins) the writer's clock
  // and starts a new epoch. Volatile accesses never race.
  StepResult on_vol_read(Tid t, VolId v);
  StepResult on_vol_write(Tid t, VolId v);
  // C11/C++11 atomics with memory orders (the __tsan_atomic* surface;
  // vft/atomics.h gives the clock semantics). `mo` is the __ATOMIC_*
  // value: acquire-class loads join the location's release clock Sa.V,
  // release-class stores publish (join) the thread clock into it, an RMW
  // combines both ends, and relaxed accesses contribute no edge - they
  // only feed the fence machinery (a relaxed load accumulates Sa.V for a
  // later acquire fence; a relaxed store publishes a pending release
  // fence's snapshot). Atomic accesses never race.
  StepResult on_atomic_load(Tid t, VolId a, int mo);
  StepResult on_atomic_store(Tid t, VolId a, int mo);
  StepResult on_atomic_rmw(Tid t, VolId a, int mo);
  StepResult on_atomic_fence(Tid t, int mo);

  bool halted() const { return halted_; }
  RuleSet rules() const { return rules_; }

  // State accessors for golden-state tests (e.g. the Figure 1 walkthrough).
  // Reading a component materializes its initial value per S0.
  const VectorClock& thread_vc(Tid t) { return thread_state(t); }
  const VectorClock& lock_vc(LockId m) { return lock_state(m); }
  const VectorClock& vol_vc(VolId v) { return vol_state(v); }
  const VectorClock& atomic_vc(VolId a) { return atomic_state(a); }
  const VarState& var(VarId x) { return var_state(x); }
  Epoch thread_epoch(Tid t) { return thread_state(t).get(t); }

 private:
  /// Per-thread fence state: the last release fence's snapshot and the
  /// pending-acquire accumulation over relaxed loads since.
  struct FenceState {
    bool has_release = false;
    bool has_acquire = false;
    VectorClock release_V;
    VectorClock acquire_V;
  };

  VectorClock& thread_state(Tid t);
  VectorClock& lock_state(LockId m);
  VectorClock& vol_state(VolId v);
  VectorClock& atomic_state(VolId a);
  VarState& var_state(VarId x);
  FenceState& fence_state(Tid t);

  StepResult ok(Rule r) { return {r, false}; }
  StepResult error(Rule r) {
    halted_ = true;
    return {r, true};
  }

  RuleSet rules_;
  bool halted_ = false;
  std::unordered_map<Tid, VectorClock> threads_;
  std::unordered_map<LockId, VectorClock> locks_;
  std::unordered_map<VolId, VectorClock> volatiles_;
  std::unordered_map<VolId, VectorClock> atomics_;
  std::unordered_map<Tid, FenceState> fences_;
  std::unordered_map<VarId, VarState> vars_;
};

}  // namespace vft
