// Shadow state shared by every detector variant: ThreadState and LockState
// (Figure 3 lines 1-4). VarState layouts differ per variant (each detector
// header defines its own), but thread and lock state are common:
//
//   ThreadState.t  read-only after construction.
//   ThreadState.V  thread-local to the owner (Section 4 discipline): only
//                  the owning thread mutates it, other threads read it only
//                  across fork/join happens-before edges.
//   LockState.V    protected by the target lock m itself: handlers touch it
//                  only while the target thread holds m.
//
// ThreadState caches the owner's current epoch E = V[t] (the "Local
// Optimizations" of Section 7): every handler begins by reading it, so we
// keep it out of the vector clock array.
#pragma once

#include <cstdint>

#include "vft/epoch.h"
#include "vft/vector_clock.h"

namespace vft {

struct ThreadState {
  /// The owning thread's id; read-only.
  const Tid t;
  /// The owner's vector clock; thread-local per the discipline.
  VectorClock V;

  /// Construct the initial state inc_t(bottom): V[t] = t@1 (Section 3, S0).
  explicit ThreadState(Tid tid) : t(tid) {
    V.set(t, Epoch::make(t, 1));
    e_ = V.get(t);
  }

  /// Construct a state that *continues* a retired thread's clock: used when
  /// the runtime reuses a thread id slot. V := predecessor.V, then inc_t.
  /// This orders every operation of the predecessor before every operation
  /// of the successor - sound (adds no false alarms) but may hide races
  /// between a dead thread and its slot successor, the standard tid-reuse
  /// tradeoff (RoadRunner and TSan make the same one).
  ThreadState(Tid tid, const VectorClock& predecessor) : t(tid) {
    V.copy(predecessor);
    V.inc(t);
    e_ = V.get(t);
  }

  /// The cached current epoch E_t = V[t].
  Epoch epoch() const { return e_; }

  /// Address of the cached epoch's 32-bit representation, for the
  /// header-inlined ABI fast path's descriptor: only the owning thread
  /// mutates e_ (the Section 4 discipline), so a plain load through this
  /// pointer from that same thread always observes the current epoch -
  /// no invalidation protocol is needed across inc()/join().
  const std::uint32_t* epoch_bits_addr() const {
    static_assert(sizeof(Epoch) == sizeof(std::uint32_t));
    return reinterpret_cast<const std::uint32_t*>(&e_);
  }

  /// V := V join other. Used by the acquire and join handlers.
  void join(const VectorClock& other) {
    V.join(other);
    e_ = V.get(t);
  }

  /// V := inc_t(V). Used by the release and fork handlers.
  void inc() {
    V.inc(t);
    e_ = V.get(t);
  }

 private:
  Epoch e_;
};

struct LockState {
  /// Time of the last release of the lock; initially bottom.
  VectorClock V;
};

}  // namespace vft
