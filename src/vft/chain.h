// Chain<D1, D2>: run two detectors over the same event stream, RoadRunner
// tool-chaining style (RoadRunner composes tools in a pipeline; every
// event flows through each). Each component keeps its own VarState, so the
// pair observe identical events with independent analysis state - the
// online form of the differential testing the trace harness does offline
// (e.g. Chain<VftV2, FtCas> cross-checks the two on a live target; the
// collectors record which one saw what).
//
// The composite verdict is the conjunction: an access is clean only if
// both components said so.
#pragma once

#include "vft/detector_base.h"

namespace vft {

template <typename D1, typename D2>
class Chain {
 public:
  static constexpr const char* kName = "Chain";

  struct VarState {
    typename D1::VarState first;
    typename D2::VarState second;
    std::uint64_t id = 0;
  };

  Chain(D1 first, D2 second)
      : first_(std::move(first)), second_(std::move(second)) {}

  /// Convenience: both components share collector and stats sinks.
  explicit Chain(RaceCollector* races = nullptr, RuleStats* stats = nullptr)
      : first_(races, stats), second_(races, stats) {}

  bool read(ThreadState& st, VarState& sx) {
    propagate_id(sx);
    const bool a = first_.read(st, sx.first);
    const bool b = second_.read(st, sx.second);
    return a && b;
  }

  bool write(ThreadState& st, VarState& sx) {
    propagate_id(sx);
    const bool a = first_.write(st, sx.first);
    const bool b = second_.write(st, sx.second);
    return a && b;
  }

  // Sync handlers mutate the *shared* ThreadState/LockState; running both
  // components would double-apply the clock algebra, so exactly one owns
  // the synchronization bookkeeping (they all implement the identical
  // Figure 3 handlers - see DetectorBase).
  void acquire(ThreadState& st, LockState& sm) { first_.acquire(st, sm); }
  void release(ThreadState& st, LockState& sm) { first_.release(st, sm); }
  void fork(ThreadState& st, ThreadState& su) { first_.fork(st, su); }
  void join(ThreadState& st, ThreadState& su) { first_.join(st, su); }

  D1& first() { return first_; }
  D2& second() { return second_; }

 private:
  void propagate_id(VarState& sx) {
    sx.first.id = sx.id;
    sx.second.id = sx.id;
  }

  D1 first_;
  D2 second_;
};

}  // namespace vft
