#include "vft/sampling.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "vft/event_ctx.h"  // vft_tl_event_ctx: caller PC for the adaptive key

namespace vft::sampling {
namespace {

// splitmix64: the step function for both the seed expansion and the
// per-thread stream (each thread's stream starts at seed ^ its TLS
// address, so threads decorrelate without coordination).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool parse_double(const char* s, double* out) {
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

// Shadow pages are 4 KiB of application address space in the two-level
// directory; the adaptive table keys on that granule.
constexpr std::uintptr_t kPageShift = 12;

}  // namespace

std::atomic<Gate*> Gate::g_active{nullptr};
std::atomic<bool> Gate::g_drop{false};

bool parse_config(const char* sampling_spec, const char* budget_spec,
                  Config* out, std::string* err) {
  Config cfg;

  if (budget_spec != nullptr && budget_spec[0] != '\0') {
    std::string b = budget_spec;
    if (!b.empty() && b.back() == '%') b.pop_back();
    double pct = 0.0;
    if (!parse_double(b.c_str(), &pct) || pct <= 0.0 || pct > 100.0) {
      if (err) *err = "VFT_BUDGET: expected a percent in (0, 100], got '" +
                      std::string(budget_spec) + "'";
      return false;
    }
    cfg.enabled = true;
    cfg.budget_pct = pct;
  }

  if (sampling_spec != nullptr && sampling_spec[0] != '\0') {
    std::string spec = sampling_spec;
    if (spec == "off" || spec == "0") {
      // Explicit off wins over VFT_BUDGET: one knob to disable everything.
      *out = Config{};
      return true;
    }
    cfg.enabled = true;
    if (spec != "on" && spec != "1") {
      std::size_t pos = 0;
      while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos) comma = spec.size();
        std::string kv = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (kv.empty()) continue;
        std::size_t eq = kv.find('=');
        std::string key = kv.substr(0, eq);
        std::string val = eq == std::string::npos ? "" : kv.substr(eq + 1);
        if (key == "rate") {
          double r = 0.0;
          if (!parse_double(val.c_str(), &r) || r <= 0.0 || r > 1.0) {
            if (err) *err = "VFT_SAMPLING: rate must be in (0, 1], got '" + val + "'";
            return false;
          }
          cfg.rate = r;
        } else if (key == "policy") {
          if (val == "cell") {
            cfg.policy = Config::Policy::kCell;
          } else if (val == "drop") {
            cfg.policy = Config::Policy::kDrop;
          } else {
            if (err) *err = "VFT_SAMPLING: policy must be cell|drop, got '" + val + "'";
            return false;
          }
        } else if (key == "adaptive") {
          if (val == "0" || val == "off") {
            cfg.adaptive = false;
          } else if (val == "1" || val == "on") {
            cfg.adaptive = true;
          } else {
            if (err) *err = "VFT_SAMPLING: adaptive must be 0|1, got '" + val + "'";
            return false;
          }
        } else if (key == "seed") {
          std::uint64_t s = 0;
          if (!parse_u64(val.c_str(), &s)) {
            if (err) *err = "VFT_SAMPLING: seed must be an integer, got '" + val + "'";
            return false;
          }
          cfg.seed = s;
        } else if (key == "budget") {
          double pct = 0.0;
          if (!parse_double(val.c_str(), &pct) || pct <= 0.0 || pct > 100.0) {
            if (err) *err = "VFT_SAMPLING: budget must be a percent in (0, 100], got '" + val + "'";
            return false;
          }
          cfg.budget_pct = pct;
        } else {
          if (err) *err = "VFT_SAMPLING: unknown key '" + key + "'";
          return false;
        }
      }
    }
  }

  *out = cfg;
  return true;
}

Config config_from_env() {
  Config cfg;
  std::string err;
  if (!parse_config(std::getenv("VFT_SAMPLING"), std::getenv("VFT_BUDGET"),
                    &cfg, &err)) {
    std::fprintf(stderr, "vft: %s; sampling disabled\n", err.c_str());
    return Config{};
  }
  return cfg;
}

std::string describe(const Config& cfg) {
  if (!cfg.enabled) return "off";
  char buf[160];
  if (cfg.budget_pct > 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "policy=%s budget=%g%% rate0=%g adaptive=%d seed=%llu",
                  cfg.policy == Config::Policy::kDrop ? "drop" : "cell",
                  cfg.budget_pct, cfg.rate, cfg.adaptive ? 1 : 0,
                  static_cast<unsigned long long>(cfg.seed));
  } else {
    std::snprintf(buf, sizeof(buf), "policy=%s rate=%g adaptive=%d seed=%llu",
                  cfg.policy == Config::Policy::kDrop ? "drop" : "cell",
                  cfg.rate, cfg.adaptive ? 1 : 0,
                  static_cast<unsigned long long>(cfg.seed));
  }
  return buf;
}

std::uint64_t Gate::now_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::uint64_t Gate::cpu_now_ns() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

Gate::Gate(const Config& cfg)
    : cfg_(cfg),
      gen_(mix64(reinterpret_cast<std::uintptr_t>(this)) ^ now_ns()),
      rate_fp_(static_cast<std::uint32_t>(
          cfg.rate >= 1.0 ? kRateOne
                          : std::max(1.0, cfg.rate * kRateOne))) {
  for (auto& e : table_) e.store(0, std::memory_order_relaxed);
  start_ns_ = cpu_now_ns();
  window_start_ns_.store(start_ns_, std::memory_order_relaxed);
  if (cfg_.budget_pct > 0.0) calibrate();
}

// Measure the cost of a clock_gettime pair so controller probes charge
// the detector only for work beyond the timer's own floor.
void Gate::calibrate() {
  constexpr int kTrials = 256;
  std::uint64_t best = ~0ull;
  for (int i = 0; i < kTrials; ++i) {
    std::uint64_t a = now_ns();
    std::uint64_t b = now_ns();
    if (b - a < best) best = b - a;
  }
  timer_floor_ns_ = static_cast<double>(best);
}

// Draw the next geometric gap: G ~ floor(ln(u) / ln(1 - p)) accesses are
// skipped before the next sample. The cheap approximation -ln(u)/p is
// exact in the small-p regime sampling lives in and within a few percent
// even near p=1 (where the gap rounds to 0 anyway).
void Gate::draw_gap(Tls& t) {
  std::uint32_t fp = rate_fp_.load(std::memory_order_relaxed);
  if (fp >= kRateOne) {
    t.countdown = 0;
    return;
  }
  t.rng = mix64(t.rng);
  // u uniform in (0, 1]: never 0, so log() is safe.
  double u = (static_cast<double>(t.rng >> 11) + 1.0) * 0x1.0p-53;
  double p = static_cast<double>(fp) / kRateOne;
  double gap = -std::log(u) / p;
  t.countdown = gap >= 1e18 ? static_cast<std::uint64_t>(1e18)
                            : static_cast<std::uint64_t>(gap);
}

bool Gate::admit_and_refill(const void* addr, vft_fastpath_s* fp) {
  Tls& t = tls();
  if (fp->drop_pending > 0) {
    // Skips the inline path took on the gate's behalf; they fold into the
    // thread-local tally admit_slow flushes to the global counter.
    t.skipped += fp->drop_pending;
    fp->drop_pending = 0;
  }
  // A slow-path entry can arrive mid-gap (ranges and straddling accesses
  // bypass the inline countdown): honor the descriptor's prepaid skips
  // here exactly as the inline path would.
  if (fp->drop_countdown > 0) {
    fp->drop_countdown--;
    ++t.skipped;
    return false;
  }
  const bool admitted = should_sample(addr);  // probe-less: drop policy
  // admit_slow drew the next gap into the gate's own TLS; move it into
  // the descriptor so the inline path owns the countdown from here.
  if (t.gen == gen_) {
    fp->drop_countdown = t.countdown;
    t.countdown = 0;
  }
  return admitted;
}

bool Gate::admit_slow(Tls& t, const void* addr) {
  if (t.gen != gen_) {
    // First access through this gate on this thread (or the gate was
    // replaced by a reset): seed the stream and start a fresh gap.
    t.gen = gen_;
    t.rng = mix64(cfg_.seed ^ reinterpret_cast<std::uintptr_t>(&t));
    t.skipped = 0;
    t.sampled_since_probe = 0;
    draw_gap(t);
    if (t.countdown > 0) {
      --t.countdown;
      ++t.skipped;
      return false;
    }
  }

  // Countdown expired: this access is a sample point. Flush the skip
  // tally, draw the next gap, and give the adaptive table its say.
  if (t.skipped > 0) {
    skipped_.fetch_add(t.skipped, std::memory_order_relaxed);
    t.skipped = 0;
  }
  draw_gap(t);

  // The controller window advances per slow-path entry, cooled-out or
  // not: both shapes cost admit_slow work, and a hot-page workload whose
  // sample points mostly cool out must still pace rate adjustments.
  if (cfg_.budget_pct > 0.0 &&
      window_samples_.fetch_add(1, std::memory_order_relaxed) + 1 >=
          kAdjustWindow) {
    maybe_adjust();
  }

  if (cfg_.adaptive && cooled_out(t, addr)) {
    cooled_out_.fetch_add(1, std::memory_order_relaxed);
    skipped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  sampled_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

// One adaptive entry per (shadow page, caller PC) pair. The packed word
// is tag(32) | level(8) | clean(24); CAS-free updates are fine because
// losing an increment only delays a cooldown.
bool Gate::cooled_out(Tls& t, const void* addr) {
  std::uintptr_t page = reinterpret_cast<std::uintptr_t>(addr) >> kPageShift;
  std::uintptr_t pc = reinterpret_cast<std::uintptr_t>(vft_tl_event_ctx.pc);
  std::uint64_t h = mix64(page ^ (pc << 1));
  std::size_t idx = static_cast<std::size_t>(h) & (kTableSize - 1);
  std::uint32_t tag = static_cast<std::uint32_t>(h >> 32);
  if (tag == 0) tag = 1;  // tag 0 is the empty/hot marker

  std::uint64_t e = table_[idx].load(std::memory_order_relaxed);
  std::uint32_t etag = static_cast<std::uint32_t>(e >> 32);
  std::uint32_t level = static_cast<std::uint32_t>(e >> 24) & 0xff;
  std::uint32_t clean = static_cast<std::uint32_t>(e) & 0xffffff;

  if (etag != tag) {
    // Collision or first touch: claim the slot hot. Stealing resets the
    // previous key's cooldown, which only errs toward more sampling.
    table_[idx].store((static_cast<std::uint64_t>(tag) << 32) | 1,
                      std::memory_order_relaxed);
    return false;
  }

  if (level > 0) {
    // Pass this sample point with probability 2^-level.
    t.rng = mix64(t.rng);
    if ((t.rng & ((1u << level) - 1)) != 0) return true;
  }

  // The sample goes through; record one more clean observation.
  if (clean + 1 >= kCleanPerCool && level < kMaxCooldown) {
    ++level;
    clean = 0;
  } else {
    ++clean;
  }
  table_[idx].store((static_cast<std::uint64_t>(tag) << 32) |
                        (static_cast<std::uint64_t>(level) << 24) | clean,
                    std::memory_order_relaxed);
  return false;
}

void Gate::reheat(const void* addr) {
  std::uintptr_t page = reinterpret_cast<std::uintptr_t>(addr) >> kPageShift;
  std::uintptr_t pc = reinterpret_cast<std::uintptr_t>(vft_tl_event_ctx.pc);
  std::uint64_t h = mix64(page ^ (pc << 1));
  std::size_t idx = static_cast<std::size_t>(h) & (kTableSize - 1);
  std::uint64_t e = table_[idx].load(std::memory_order_relaxed);
  if (e != 0) {
    table_[idx].store(0, std::memory_order_relaxed);
    reheats_.fetch_add(1, std::memory_order_relaxed);
  }
  // The PC-qualified entry above may differ from the PC-free one other
  // threads (or non-interposed paths) hash to - cooled_out with pc==0
  // keys on mix64(page) - so clear that too.
  if (pc != 0) {
    std::uint64_t h2 = mix64(page);
    std::size_t idx2 = static_cast<std::size_t>(h2) & (kTableSize - 1);
    std::uint64_t e2 = table_[idx2].load(std::memory_order_relaxed);
    if (e2 != 0) {
      table_[idx2].store(0, std::memory_order_relaxed);
      reheats_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Gate::on_page_reset(const void* addr, std::size_t size) {
  std::uintptr_t first = reinterpret_cast<std::uintptr_t>(addr) >> kPageShift;
  std::uintptr_t last =
      (reinterpret_cast<std::uintptr_t>(addr) + (size ? size - 1 : 0)) >>
      kPageShift;
  // Bound the walk: a huge munmap can just flush the whole table.
  if (last - first >= kTableSize) {
    std::uint64_t cleared = 0;
    for (auto& e : table_) {
      if (e.exchange(0, std::memory_order_relaxed) != 0) ++cleared;
    }
    reheats_.fetch_add(cleared, std::memory_order_relaxed);
    return;
  }
  for (std::uintptr_t page = first; page <= last; ++page) {
    // Only the PC-free entry (cooled_out's key when no caller PC is
    // armed) is addressable from here - the freeing call site's PC is
    // unrelated to the accessors'. PC-qualified entries covering a
    // recycled page self-heal via the tag check.
    std::uint64_t h = mix64(page);
    std::size_t idx = static_cast<std::size_t>(h) & (kTableSize - 1);
    std::uint64_t e = table_[idx].load(std::memory_order_relaxed);
    if (e != 0) {
      table_[idx].store(0, std::memory_order_relaxed);
      reheats_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Gate::time_end(std::uint64_t token) {
  if (token == 0) return;
  std::uint64_t dt = now_ns() - (token & ~1ull);
  // A probe brackets one gate slow path plus one access's analysis - tens
  // of nanoseconds, low microseconds at the very worst (debug build, full
  // vector-clock join). A dt beyond that is the thread getting preempted
  // or page-faulting mid-probe; charging scheduler time x kProbeEvery as
  // "detector overhead" once per timeslice poisons the cumulative stat on
  // a loaded machine. Treat such probes as lost, not as evidence.
  if (dt >= kProbeOutlierNs) return;
  double extra = static_cast<double>(dt) - timer_floor_ns_;
  if (extra < 0.0) extra = 0.0;
  // One probe stands in for kProbeEvery sampled accesses.
  std::uint64_t charged = static_cast<std::uint64_t>(extra * kProbeEvery);
  overhead_ns_.fetch_add(charged, std::memory_order_relaxed);
  window_overhead_ns_.fetch_add(charged, std::memory_order_relaxed);
}

// One controller step: compare the window's measured overhead against the
// budget and scale the rate multiplicatively (clamped to [1/2, 2] per
// step so a noisy window can't crater the rate). The denominator is
// process CPU time, not wall time - on a loaded machine descheduled
// intervals stretch wall but cost the target nothing, and a controller
// dividing by wall would conclude the detector is nearly free and open
// the rate far past the budget.
void Gate::maybe_adjust() {
  std::uint64_t t0 = window_start_ns_.load(std::memory_order_relaxed);
  std::uint64_t t1 = cpu_now_ns();
  if (t1 <= t0) return;
  // Claim the window; losing racers fold into the next one.
  if (!window_start_ns_.compare_exchange_strong(t0, t1,
                                               std::memory_order_relaxed)) {
    return;
  }
  std::uint64_t over = window_overhead_ns_.exchange(0, std::memory_order_relaxed);
  window_samples_.store(0, std::memory_order_relaxed);

  double busy = static_cast<double>(t1 - t0);
  double measured_pct = 100.0 * static_cast<double>(over) / busy;
  std::uint32_t fp = rate_fp_.load(std::memory_order_relaxed);
  double rate = static_cast<double>(fp) / kRateOne;
  double factor;
  if (measured_pct <= 0.0) {
    factor = 2.0;  // no measurable cost: open up
  } else {
    factor = cfg_.budget_pct / measured_pct;
    if (factor < 0.5) factor = 0.5;
    if (factor > 2.0) factor = 2.0;
  }
  rate *= factor;
  if (rate > 1.0) rate = 1.0;
  if (rate < kMinRate) rate = kMinRate;
  rate_fp_.store(
      static_cast<std::uint32_t>(std::max(1.0, rate * kRateOne)),
      std::memory_order_relaxed);
  adjustments_.fetch_add(1, std::memory_order_relaxed);
}

Stats Gate::snapshot() const {
  Stats s;
  s.sampled = sampled_.load(std::memory_order_relaxed);
  s.skipped = skipped_.load(std::memory_order_relaxed);
  s.cooled_out = cooled_out_.load(std::memory_order_relaxed);
  s.reheats = reheats_.load(std::memory_order_relaxed);
  s.overhead_ns = overhead_ns_.load(std::memory_order_relaxed);
  s.busy_ns = cpu_now_ns() - start_ns_;
  s.adjustments = adjustments_.load(std::memory_order_relaxed);
  s.rate = static_cast<double>(rate_fp_.load(std::memory_order_relaxed)) /
           kRateOne;
  s.overhead_pct = s.busy_ns > 0
                       ? 100.0 * static_cast<double>(s.overhead_ns) /
                             static_cast<double>(s.busy_ns)
                       : 0.0;
  return s;
}

}  // namespace vft::sampling
