// Internal invariant checking for the VerifiedFT library.
//
// VFT_ASSERT guards internal invariants (epoch well-formedness, discipline
// obligations). It is compiled in unless NDEBUG is set, and can be forced
// back on in optimized builds with -DVFT_FORCE_ASSERTS (the test suite does
// this so that RelWithDebInfo test runs still check invariants).
//
// VFT_CHECK guards public API misuse (e.g. exceeding the maximum thread id)
// and is always on; the cost is a predictable branch off the fast path.
//
// Race detection itself is never expressed with these macros: races are
// expected outcomes and flow through vft::RaceReport.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace vft::detail {

[[noreturn]] inline void assert_fail(const char* kind, const char* expr,
                                     const char* file, int line) {
  std::fprintf(stderr, "%s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

/// Actionable fatal diagnostic for API misuse the caller can fix: unlike a
/// bare VFT_CHECK, the message says what happened *and* what to do about
/// it. Used where target programs (not this library) drive the runtime
/// into a wall - thread-registry exhaustion, events from unregistered
/// threads, double retire - so the abort reads like a tool diagnostic, not
/// an internal assertion.
[[noreturn]]
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
inline void
fatal(const char* fmt, ...) {
  std::fprintf(stderr, "vft: fatal: ");
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fprintf(stderr, "\n");
  std::abort();
}

}  // namespace vft::detail

#define VFT_CHECK(expr)                                                \
  ((expr) ? (void)0                                                    \
          : ::vft::detail::assert_fail("VFT_CHECK", #expr, __FILE__,   \
                                       __LINE__))

#if !defined(NDEBUG) || defined(VFT_FORCE_ASSERTS)
#define VFT_ASSERT(expr)                                               \
  ((expr) ? (void)0                                                    \
          : ::vft::detail::assert_fail("VFT_ASSERT", #expr, __FILE__,  \
                                       __LINE__))
#else
#define VFT_ASSERT(expr) ((void)0)
#endif
