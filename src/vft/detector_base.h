// Pieces shared by every detector variant.
//
// The four synchronization handlers (Figure 3 lines 102-118) are identical
// across all variants - they touch only ThreadState and LockState, whose
// discipline never changes between v1 and v2:
//
//   acquire: runs *after* the target acquires m, so sm.V is protected by m.
//   release: runs *before* the target releases m.
//   fork:    runs in the forking thread *before* the target thread starts,
//            while su is still thread-local to the forker.
//   join:    runs *after* the target join completes, when su is read-only.
//
// Race recovery policy (Section 7 fail-over): the Figure 2 specification
// halts at the first Error, but a production checker keeps going. After
// reporting, handlers force-update the access history as if the racing
// access had been well ordered (the same choice the RoadRunner FastTrack
// implementations make), so one racy variable yields one report per
// distinct unordered access rather than per subsequent operation.
// Differential tests against the specification therefore compare behaviour
// up to and including the first race.
#pragma once

#include "vft/report.h"
#include "vft/shadow_state.h"
#include "vft/stats.h"

namespace vft {

/// Mixin holding the report/stat sinks every detector carries.
class DetectorBase {
 public:
  DetectorBase(RaceCollector* races, RuleStats* stats)
      : races_(races), stats_(stats) {}

  /// [Acquire]: St.V := St.V join Sm.V. The target lock m is held.
  void acquire(ThreadState& st, LockState& sm) {
    st.join(sm.V);
    count(Rule::kAcquire);
  }

  /// [Release]: Sm.V := St.V; St.V := inc_t(St.V). The target lock m is held.
  void release(ThreadState& st, LockState& sm) {
    sm.V.copy(st.V);
    st.inc();
    count(Rule::kRelease);
  }

  /// [Fork]: Su.V := Su.V join St.V; St.V := inc_t(St.V). Runs before u starts.
  void fork(ThreadState& st, ThreadState& su) {
    su.join(st.V);
    st.inc();
    count(Rule::kFork);
  }

  /// [Join]: St.V := St.V join Su.V. Runs after u has terminated and been
  /// joined; note VerifiedFT does *not* increment Su.V[u] here (Section 3).
  void join(ThreadState& st, ThreadState& su) {
    st.join(su.V);
    count(Rule::kJoin);
  }

  RaceCollector* races() const { return races_; }
  RuleStats* stats() const { return stats_; }

 protected:
  void count(Rule r) {
    if (stats_ != nullptr) stats_->bump(r);
  }

  void report(RaceKind kind, std::uint64_t var, const ThreadState& st,
              Epoch prior) {
    switch (kind) {
      case RaceKind::kWriteRead: count(Rule::kWriteReadRace); break;
      case RaceKind::kWriteWrite: count(Rule::kWriteWriteRace); break;
      case RaceKind::kReadWrite: count(Rule::kReadWriteRace); break;
      case RaceKind::kSharedWrite: count(Rule::kSharedWriteRace); break;
    }
    if (races_ != nullptr) {
      RaceReport r{kind, var, st.t, prior, st.epoch(), CallStack{}};
      // Stack capture is fire-on-race only: the race-free fast path never
      // reaches this line. Yields an empty stack unless an interposition
      // boundary armed the per-thread event context (vft/stack.h).
      r.stack = capture_event_stack();
      races_->report(r);
    }
  }

 private:
  RaceCollector* races_;
  RuleStats* stats_;
};

/// e happens-before V: e <= V(tid(e)) (Section 3). The paper's handlers
/// spell this LEQ(e, st.get(TID(e))).
inline bool epoch_leq_vc(Epoch e, const VectorClock& v) {
  return leq(e, v.get(e.tid()));
}

/// The Section 7 "Local Optimizations" form: tests guaranteed to succeed
/// via program order are short-circuited -
///     st.t == TID(e) || LEQ(e, st.get(TID(e)))
/// - if the recorded epoch belongs to the current thread, the prior access
/// happens-before the current one by program order (thread clocks are
/// monotone), so the vector-clock load is skipped entirely.
inline bool ordered_before(Epoch e, const ThreadState& st) {
  return e.tid() == st.t || leq(e, st.V.get(e.tid()));
}

}  // namespace vft
