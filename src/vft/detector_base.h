// Pieces shared by every detector variant.
//
// The four synchronization handlers (Figure 3 lines 102-118) are identical
// across all variants - they touch only ThreadState and LockState, whose
// discipline never changes between v1 and v2:
//
//   acquire: runs *after* the target acquires m, so sm.V is protected by m.
//   release: runs *before* the target releases m.
//   fork:    runs in the forking thread *before* the target thread starts,
//            while su is still thread-local to the forker.
//   join:    runs *after* the target join completes, when su is read-only.
//
// Race recovery policy (Section 7 fail-over): the Figure 2 specification
// halts at the first Error, but a production checker keeps going. After
// reporting, handlers force-update the access history as if the racing
// access had been well ordered (the same choice the RoadRunner FastTrack
// implementations make), so one racy variable yields one report per
// distinct unordered access rather than per subsequent operation.
// Differential tests against the specification therefore compare behaviour
// up to and including the first race.
#pragma once

#include <mutex>

#include "vft/access_history.h"
#include "vft/atomics.h"
#include "vft/report.h"
#include "vft/shadow_state.h"
#include "vft/stats.h"

namespace vft {

/// Mixin holding the report/stat sinks every detector carries.
class DetectorBase {
 public:
  DetectorBase(RaceCollector* races, RuleStats* stats)
      : races_(races), stats_(stats) {}

  /// [Acquire]: St.V := St.V join Sm.V. The target lock m is held.
  void acquire(ThreadState& st, LockState& sm) {
    st.join(sm.V);
    count(Rule::kAcquire);
  }

  /// [Release]: Sm.V := St.V; St.V := inc_t(St.V). The target lock m is held.
  void release(ThreadState& st, LockState& sm) {
    sm.V.copy(st.V);
    st.inc();
    count(Rule::kRelease);
  }

  /// [Fork]: Su.V := Su.V join St.V; St.V := inc_t(St.V). Runs before u starts.
  void fork(ThreadState& st, ThreadState& su) {
    su.join(st.V);
    st.inc();
    count(Rule::kFork);
  }

  /// [Join]: St.V := St.V join Su.V. Runs after u has terminated and been
  /// joined; note VerifiedFT does *not* increment Su.V[u] here (Section 3).
  void join(ThreadState& st, ThreadState& su) {
    st.join(su.V);
    count(Rule::kJoin);
  }

  // --- __tsan_atomic* sync handlers (vft/atomics.h). Shared by every
  // variant exactly like the four pthread handlers above: they touch only
  // ThreadState, the location's AtomicState, and the thread's fence TLS.
  // `eff` is the mode-adjusted memory order (atomics::effective_mo); the
  // interposer executes the real operation with hardened hardware
  // ordering (loads at least acquire, stores at least release), which is
  // what makes the fast-epoch skip below sound: reading a value implies
  // seeing its writer's fast_epoch update, because every edge-creating
  // publication completes that update before its real store runs.

  /// [Atomic Load]: acquire-class joins Sa.V; relaxed contributes no edge
  /// but feeds the pending-acquire accumulator for a later acquire fence.
  void atomic_load(ThreadState& st, atomics::AtomicState& sa,
                   atomics::FenceTls& f, int eff) {
    count(Rule::kAtomicLoad);
    if (atomics::mo_is_acquire(eff)) {
      atomic_join(st, sa);
      return;
    }
    count(Rule::kAtomicRelaxed);
    atomic_accumulate(sa, f);
  }

  /// [Atomic Store]: release-class publishes St.V into Sa.V; relaxed
  /// publishes only a pending release-fence snapshot (or nothing).
  void atomic_store(ThreadState& st, atomics::AtomicState& sa,
                    atomics::FenceTls& f, int eff) {
    count(Rule::kAtomicStore);
    if (atomics::mo_is_release(eff)) {
      atomic_publish(st, sa);
      return;
    }
    count(Rule::kAtomicRelaxed);
    if (f.has_release) atomic_publish_snapshot(sa, f.release_V);
  }

  /// [Atomic RMW], store half - runs *before* the real operation so the
  /// publication is in Sa.V by the time the stored value is visible.
  /// A failed compare_exchange leaves this publication behind: a spurious
  /// hb edge (the value never became visible), never a missed race.
  void atomic_rmw_pre(ThreadState& st, atomics::AtomicState& sa,
                      atomics::FenceTls& f, int eff) {
    count(Rule::kAtomicRmw);
    if (atomics::mo_is_release(eff)) {
      atomic_publish(st, sa);
      return;
    }
    if (!atomics::mo_is_acquire(eff)) count(Rule::kAtomicRelaxed);
    if (f.has_release) atomic_publish_snapshot(sa, f.release_V);
  }

  /// [Atomic RMW], load half - runs *after* the real operation observed
  /// its prior value. For a failed compare_exchange the caller passes the
  /// failure order (a failed CAS is a load).
  void atomic_rmw_post(ThreadState& st, atomics::AtomicState& sa,
                       atomics::FenceTls& f, int eff) {
    if (atomics::mo_is_acquire(eff)) {
      atomic_join(st, sa);
    } else {
      atomic_accumulate(sa, f);
    }
  }

  /// [Atomic Fence]: the C++ fence-synchronization rules in clock form.
  /// Acquire half first, so an acq_rel/seq_cst fence's release snapshot
  /// includes what its acquire half just joined.
  void atomic_fence(ThreadState& st, atomics::FenceTls& f, int eff) {
    count(Rule::kAtomicFence);
    const bool acq = atomics::mo_is_acquire(eff);
    const bool rel = atomics::mo_is_release(eff);
    if (acq && f.has_acquire) st.join(f.acquire_V);
    if (rel) {
      // Snapshot now; inc so the snapshot's own epoch t@c never covers a
      // later access by t (the same reason [Release] increments).
      f.release_V.copy(st.V);
      f.has_release = true;
      st.inc();
    }
    if (!acq && !rel) count(Rule::kAtomicRelaxed);
  }

  RaceCollector* races() const { return races_; }
  RuleStats* stats() const { return stats_; }

 protected:
  void count(Rule r) {
    if (stats_ != nullptr) stats_->bump(r);
  }

  /// Acquire edge: St.V := St.V join Sa.V, behind the fast-epoch skip.
  /// Knowing the armed epoch t@c means St.V already holds t's clock at c,
  /// which the dominating arm made a superset of Sa.V; a SHARED or
  /// unknown arm takes the locked join.
  void atomic_join(ThreadState& st, atomics::AtomicState& sa) {
    VFT_SCHED_POINT(kLoad, &sa.fast_epoch);
    const std::uint32_t bits = sa.fast_epoch.load(std::memory_order_acquire);
    if (bits == 0) return;  // nothing ever published: Sa.V is bottom
    if (bits != atomics::AtomicState::kSharedBits) {
      const Epoch fe = Epoch::from_bits(bits);
      if (leq(fe, st.V.get(fe.tid()))) return;
    }
    std::scoped_lock lk(sa.mu);
    st.join(sa.sync_V);
  }

  /// Release edge: Sa.V := Sa.V join St.V; St.V := inc_t(St.V). The join
  /// (not the [Release] copy) because unordered publishers must not lose
  /// each other's clocks - this matches the specification's volatile
  /// handler. The fast-epoch arm runs as a CAS *outside* the lock: a
  /// publisher that raced in since the snapshot fails the exchange and
  /// collapses the arm to SHARED instead of clobbering a concurrent arm.
  void atomic_publish(ThreadState& st, atomics::AtomicState& sa) {
    bool dominated;
    std::uint32_t prev;
    {
      std::scoped_lock lk(sa.mu);
      dominated = sa.sync_V.leq(st.V);
      sa.sync_V.join(st.V);
      prev = sa.fast_epoch.load(std::memory_order_relaxed);
    }
    std::uint32_t next =
        dominated ? st.epoch().bits() : atomics::AtomicState::kSharedBits;
    std::uint32_t cur = prev;
    for (;;) {
      VFT_SCHED_POINT(kCas, &sa.fast_epoch);
      if (sa.fast_epoch.compare_exchange_weak(cur, next,
                                              std::memory_order_release,
                                              std::memory_order_relaxed)) {
        break;
      }
      next = atomics::AtomicState::kSharedBits;
    }
    st.inc();
  }

  /// Fence-backed publication: a relaxed store after a release fence
  /// publishes the fence's snapshot. No single epoch summarizes a
  /// snapshot, so the arm collapses to SHARED (CAS loop: an armer racing
  /// in concurrently loses either here or in its own exchange).
  void atomic_publish_snapshot(atomics::AtomicState& sa,
                               const VectorClock& snap) {
    {
      std::scoped_lock lk(sa.mu);
      if (snap.leq(sa.sync_V)) return;  // already published: keep the arm
      sa.sync_V.join(snap);
    }
    std::uint32_t cur = sa.fast_epoch.load(std::memory_order_relaxed);
    for (;;) {
      VFT_SCHED_POINT(kCas, &sa.fast_epoch);
      if (sa.fast_epoch.compare_exchange_weak(
              cur, atomics::AtomicState::kSharedBits,
              std::memory_order_release, std::memory_order_relaxed)) {
        break;
      }
    }
  }

  /// Relaxed load: fold Sa.V into the pending-acquire accumulator (the
  /// acquire-fence rule needs the release clock of every location read
  /// relaxed since the last fence). Never cleared: once joined into St.V
  /// the accumulator is dominated, so later joins are no-ops.
  void atomic_accumulate(atomics::AtomicState& sa, atomics::FenceTls& f) {
    std::scoped_lock lk(sa.mu);
    f.acquire_V.join(sa.sync_V);
    f.has_acquire = true;
  }

  /// History hooks: every slow-path access handler calls one of these
  /// after the same-epoch checks (a same-epoch hit and a sampled-out
  /// access never record - see access_history.h). One predicted-null
  /// load when the history layer is off.
  void record_read(std::uint64_t var, const ThreadState& st) {
    history::note_access(var, st.t, st.epoch(), history::AccessKind::kRead);
  }
  void record_write(std::uint64_t var, const ThreadState& st) {
    history::note_access(var, st.t, st.epoch(), history::AccessKind::kWrite);
  }

  void report(RaceKind kind, std::uint64_t var, const ThreadState& st,
              Epoch prior) {
    switch (kind) {
      case RaceKind::kWriteRead: count(Rule::kWriteReadRace); break;
      case RaceKind::kWriteWrite: count(Rule::kWriteWriteRace); break;
      case RaceKind::kReadWrite: count(Rule::kReadWriteRace); break;
      case RaceKind::kSharedWrite: count(Rule::kSharedWriteRace); break;
    }
    if (races_ != nullptr) {
      RaceReport r{kind, var, st.t, prior, st.epoch(), CallStack{},
                   CallStack{}};
      // Stack capture is fire-on-race only: the race-free fast path never
      // reaches this line. Yields an empty stack unless an interposition
      // boundary armed the per-thread event context (vft/stack.h).
      r.stack = capture_event_stack();
      // Look the prior side up in the access history: an exact full-epoch
      // match (t@c) on the opposite access kind. Exact matching makes
      // tid-slot reuse safe: a reused slot continues its predecessor's
      // clock, so the same t@c can never denote two different accesses.
      // A SHARED prior (read-shared write race) carries no single epoch
      // and finds nothing; the report then degrades to a bare epoch,
      // exactly like pre-history reports.
      if (history::AccessHistory* h = history::active();
          h != nullptr && !prior.is_shared()) {
        const history::AccessKind want =
            (kind == RaceKind::kReadWrite || kind == RaceKind::kSharedWrite)
                ? history::AccessKind::kRead
                : history::AccessKind::kWrite;
        history::Entry pe;
        if (h->find(var, prior, want, &pe)) {
          h->stack_of(pe.stack_id, &r.prior_stack);
        }
      }
      races_->report(r);
    }
  }

 private:
  RaceCollector* races_;
  RuleStats* stats_;
};

/// e happens-before V: e <= V(tid(e)) (Section 3). The paper's handlers
/// spell this LEQ(e, st.get(TID(e))).
inline bool epoch_leq_vc(Epoch e, const VectorClock& v) {
  return leq(e, v.get(e.tid()));
}

/// The Section 7 "Local Optimizations" form: tests guaranteed to succeed
/// via program order are short-circuited -
///     st.t == TID(e) || LEQ(e, st.get(TID(e)))
/// - if the recorded epoch belongs to the current thread, the prior access
/// happens-before the current one by program order (thread clocks are
/// monotone), so the vector-clock load is skipped entirely.
inline bool ordered_before(Epoch e, const ThreadState& st) {
  return e.tid() == st.t || leq(e, st.V.get(e.tid()));
}

}  // namespace vft
