// Checked<D>: an invariant-validating decorator around any epoch detector.
//
// Wraps each handler call and asserts, afterwards, the data invariants the
// Section 5/6 argument relies on (the ones CIVL encodes as layer
// invariants):
//
//   1. W advances only to the acting thread's current epoch (or is
//      untouched): after write(st, x), W is old-W or E_t.
//   2. R is either a well-formed epoch or SHARED; under the VerifiedFT
//      rules SHARED is absorbing ("a VarState object that has entered
//      Shared mode remains in Shared mode" - Section 6). The original
//      FastTrack rules deliberately violate absorption ([Write Shared]
//      resets R), so the check is configurable.
//   3. The acting thread's clock never decreases across any handler, and
//      its own component is untouched by read/write handlers.
//   4. The handler verdict is consistent with the collector: false iff
//      the report count grew.
//
// Intended for *serialized* analysis runs (trace replay, single-threaded
// debugging): the before/after snapshots assume no concurrent handler is
// mutating the same VarState, so do not wrap detectors driven by truly
// parallel targets. It satisfies the same Detector concept, so the trace
// harnesses run Checked<VftV2> unchanged.
#pragma once

#include "vft/detector_base.h"
#include "vft/probe.h"

namespace vft {

template <typename D>
  requires ProbeableVarState<typename D::VarState>
class Checked {
 public:
  static constexpr const char* kName = "Checked";

  using VarState = typename D::VarState;

  explicit Checked(D inner, bool shared_is_absorbing = true)
      : inner_(std::move(inner)), absorbing_(shared_is_absorbing) {}

  bool read(ThreadState& st, VarState& sx) {
    const Snapshot before = snap(st, sx);
    const bool ok = inner_.read(st, sx);
    check_common(before, st, sx, ok);
    // A read never changes W.
    VFT_CHECK(probe_w(sx) == before.w);
    return ok;
  }

  bool write(ThreadState& st, VarState& sx) {
    const Snapshot before = snap(st, sx);
    const bool ok = inner_.write(st, sx);
    check_common(before, st, sx, ok);
    // Invariant 1: W is old or the actor's epoch.
    const Epoch w = probe_w(sx);
    VFT_CHECK(w == before.w || w == st.epoch());
    return ok;
  }

  void acquire(ThreadState& st, LockState& sm) {
    const VectorClock before = st.V;
    inner_.acquire(st, sm);
    VFT_CHECK(before.leq(st.V));  // invariant 3: clocks only grow
  }

  void release(ThreadState& st, LockState& sm) {
    const VectorClock before = st.V;
    inner_.release(st, sm);
    VFT_CHECK(before.leq(st.V));
    VFT_CHECK(st.epoch() == before.get(st.t).inc());  // new epoch exactly
  }

  void fork(ThreadState& st, ThreadState& su) {
    const VectorClock before = st.V;
    inner_.fork(st, su);
    VFT_CHECK(before.leq(st.V));
    VFT_CHECK(before.leq(su.V));  // child knows everything the parent did
  }

  void join(ThreadState& st, ThreadState& su) {
    const VectorClock before = st.V;
    inner_.join(st, su);
    VFT_CHECK(before.leq(st.V));
    VFT_CHECK(su.V.leq(st.V));  // joiner absorbed the child's clock
  }

  D& inner() { return inner_; }
  RaceCollector* races() const { return inner_.races(); }

 private:
  struct Snapshot {
    Epoch r, w;
    Epoch actor_component;
    std::size_t reports;
  };

  Snapshot snap(ThreadState& st, VarState& sx) {
    return Snapshot{probe_r(sx), probe_w(sx), st.V.get(st.t),
                    inner_.races() != nullptr ? inner_.races()->count() : 0};
  }

  void check_common(const Snapshot& before, ThreadState& st, VarState& sx,
                    bool ok) {
    // Invariant 2: SHARED absorption (VerifiedFT rules only).
    if (absorbing_ && before.r.is_shared()) {
      VFT_CHECK(probe_r(sx).is_shared());
    }
    // Invariant 3: access handlers never move the actor's own clock.
    VFT_CHECK(st.V.get(st.t) == before.actor_component);
    // Invariant 4: verdict matches reporting.
    if (inner_.races() != nullptr) {
      const std::size_t now = inner_.races()->count();
      if (ok) {
        VFT_CHECK(now == before.reports);
      } else {
        VFT_CHECK(now > before.reports);
      }
    }
  }

  D inner_;
  bool absorbing_;
};

}  // namespace vft
