#include "vft/report.h"

#include <cstdio>

namespace vft {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) {
  return fnv_bytes(h, &v, sizeof(v));
}

std::uint64_t fnv_str(std::uint64_t h, const std::string& s) {
  h = fnv_bytes(h, s.data(), s.size());
  return fnv_bytes(h, "\0", 1);  // delimiter: "ab","c" != "a","bc"
}

constexpr std::size_t kFlatCap = 65536;

}  // namespace

const char* race_kind_name(RaceKind k) {
  switch (k) {
    case RaceKind::kWriteRead: return "write-read race";
    case RaceKind::kWriteWrite: return "write-write race";
    case RaceKind::kReadWrite: return "read-write race";
    case RaceKind::kSharedWrite: return "shared-write race";
  }
  return "unknown race";
}

std::string RaceReport::str() const {
  return std::string(race_kind_name(kind)) + " on var " + std::to_string(var) +
         ": thread " + std::to_string(current_tid) + " at " + current.str() +
         " conflicts with prior access at " + prior.str();
}

std::uint64_t RaceCollector::raw_key(const RaceReport& r) const {
  std::uint64_t h = fnv_u64(kFnvOffset, static_cast<std::uint64_t>(r.kind));
  if (r.stack.empty()) {
    // No capture boundary: the variable id is the only locality signal
    // (and the historical per-variable behaviour the unit suites pin).
    h = fnv_u64(h, 0xA11);  // domain-separate the two key shapes
    h = fnv_u64(h, r.var);
  } else {
    for (std::uint8_t i = 0; i < r.stack.depth; ++i) {
      h = fnv_u64(h, static_cast<std::uint64_t>(r.stack.pc[i]));
    }
  }
  return h;
}

std::uint64_t RaceCollector::stable_key(
    const RaceReport& r, const std::vector<ResolvedFrame>& frames) const {
  std::uint64_t h = fnv_str(kFnvOffset, race_kind_name(r.kind));
  if (frames.empty()) {
    h = fnv_u64(h, 0xA11);
    h = fnv_u64(h, r.var);
    return h;
  }
  for (const ResolvedFrame& f : frames) {
    if (f.module.empty()) {
      // Unresolvable frame: the raw pc is all we have. Not ASLR-stable;
      // merge treats contexts containing such frames as distinct per run
      // unless the binary is loaded at a fixed address.
      h = fnv_u64(h, f.pc);
    } else {
      h = fnv_str(h, module_basename(f.module));
      h = fnv_u64(h, f.offset);
    }
  }
  return h;
}

void RaceCollector::report(const RaceReport& r) {
  std::scoped_lock lk(mu_);
  const std::uint64_t raw = raw_key(r);
  if (auto it = index_.find(raw); it != index_.end()) {
    RaceContext& ctx = contexts_[it->second];
    ++ctx.count;
    if (ctx.hidden()) {
      ++suppressed_;
      if (ctx.suppressed_by != nullptr) {
        suppressions_.count_match(*ctx.suppressed_by, 1);
      }
    } else if (flat_.size() < kFlatCap) {
      flat_.push_back(r);
    }
    return;
  }

  RaceContext ctx;
  ctx.first = r;
  ctx.count = 1;
  ctx.frames.reserve(r.stack.depth);
  for (std::uint8_t i = 0; i < r.stack.depth; ++i) {
    ctx.frames.push_back(resolve_frame(r.stack.pc[i]));
  }
  ctx.prior_frames.reserve(r.prior_stack.depth);
  for (std::uint8_t i = 0; i < r.prior_stack.depth; ++i) {
    ctx.prior_frames.push_back(resolve_frame(r.prior_stack.pc[i]));
  }
  ctx.key = stable_key(r, ctx.frames);
  // A fun:/obj: rule may match EITHER side of the race: the racing pair
  // is symmetric, and a rule written against the library function that
  // owns the allocation should hide the context no matter which side the
  // detector happened to catch second.
  ctx.suppressed_by = suppressions_.match(race_kind_name(r.kind), ctx.frames);
  if (ctx.suppressed_by == nullptr && !ctx.prior_frames.empty()) {
    ctx.suppressed_by =
        suppressions_.match(race_kind_name(r.kind), ctx.prior_frames);
  }
  if (ctx.suppressed_by == nullptr &&
      (visible_contexts_ >= total_limit_ ||
       per_var_contexts_[r.var] >= per_var_limit_)) {
    ctx.limit_dropped = true;
  }
  if (ctx.hidden()) {
    ++suppressed_;
    if (ctx.suppressed_by != nullptr) {
      suppressions_.count_match(*ctx.suppressed_by, 1);
    }
  } else {
    ++visible_contexts_;
    ++per_var_contexts_[r.var];
    if (flat_.size() < kFlatCap) flat_.push_back(r);
  }
  index_.emplace(raw, contexts_.size());
  contexts_.push_back(std::move(ctx));
}

std::size_t RaceCollector::count() const {
  std::scoped_lock lk(mu_);
  std::size_t n = 0;
  for (const RaceContext& c : contexts_) {
    if (!c.hidden()) n += c.count;
  }
  return n;
}

std::size_t RaceCollector::context_count() const {
  std::scoped_lock lk(mu_);
  return visible_contexts_;
}

std::size_t RaceCollector::suppressed() const {
  std::scoped_lock lk(mu_);
  return suppressed_;
}

std::vector<RaceContext> RaceCollector::contexts() const {
  std::scoped_lock lk(mu_);
  return contexts_;
}

std::vector<RaceReport> RaceCollector::all() const {
  std::scoped_lock lk(mu_);
  return flat_;
}

std::optional<RaceReport> RaceCollector::first() const {
  std::scoped_lock lk(mu_);
  for (const RaceContext& c : contexts_) {
    if (!c.hidden()) return c.first;
  }
  return std::nullopt;
}

bool RaceCollector::empty() const {
  std::scoped_lock lk(mu_);
  return contexts_.empty() && suppressed_ == 0;
}

void RaceCollector::clear() {
  std::scoped_lock lk(mu_);
  contexts_.clear();
  flat_.clear();
  index_.clear();
  per_var_contexts_.clear();
  visible_contexts_ = 0;
  suppressed_ = 0;
  for (const SuppressionRule& r : suppressions_.rules()) r.matched = 0;
}

void RaceCollector::set_per_var_limit(std::size_t k) {
  std::scoped_lock lk(mu_);
  per_var_limit_ = k;
}

void RaceCollector::set_total_limit(std::size_t n) {
  std::scoped_lock lk(mu_);
  total_limit_ = n;
}

void RaceCollector::name_var(std::uint64_t var, std::string name) {
  std::scoped_lock lk(mu_);
  names_[var] = std::move(name);
}

std::optional<std::string> RaceCollector::var_name(std::uint64_t var) const {
  std::scoped_lock lk(mu_);
  const auto it = names_.find(var);
  if (it == names_.end()) return std::nullopt;
  return it->second;
}

std::string RaceCollector::describe(const RaceReport& r) const {
  std::scoped_lock lk(mu_);
  const auto it = names_.find(r.var);
  const std::string var_label =
      it != names_.end() ? it->second : "var " + std::to_string(r.var);
  return std::string(race_kind_name(r.kind)) + " on " + var_label +
         ": thread " + std::to_string(r.current_tid) + " at " +
         r.current.str() + " conflicts with prior access at " +
         r.prior.str();
}

bool RaceCollector::load_suppressions(const std::string& path,
                                      std::string* err) {
  std::scoped_lock lk(mu_);
  return suppressions_.load_file(path, err);
}

bool RaceCollector::load_suppressions_text(const std::string& text,
                                           const std::string& origin,
                                           std::string* err) {
  std::scoped_lock lk(mu_);
  return suppressions_.load_text(text, origin, err);
}

int RaceCollector::load_suppressions_env(const char* paths) {
  if (paths == nullptr || paths[0] == '\0') return 0;
  int loaded = 0;
  std::string list(paths);
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t colon = list.find(':', start);
    const std::string path =
        list.substr(start, colon == std::string::npos ? std::string::npos
                                                      : colon - start);
    if (!path.empty()) {
      std::string err;
      if (load_suppressions(path, &err)) {
        ++loaded;
      } else {
        std::fprintf(stderr, "vft: warning: %s (VFT_SUPPRESSIONS)\n",
                     err.c_str());
      }
    }
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  return loaded;
}

std::vector<std::pair<std::string, std::uint64_t>>
RaceCollector::suppression_stats() const {
  std::scoped_lock lk(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const SuppressionRule& r : suppressions_.rules()) {
    out.emplace_back(r.name, r.matched);
  }
  return out;
}

std::size_t RaceCollector::suppression_rule_count() const {
  std::scoped_lock lk(mu_);
  return suppressions_.rules().size();
}

}  // namespace vft
