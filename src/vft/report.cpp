#include "vft/report.h"

namespace vft {

const char* race_kind_name(RaceKind k) {
  switch (k) {
    case RaceKind::kWriteRead: return "write-read race";
    case RaceKind::kWriteWrite: return "write-write race";
    case RaceKind::kReadWrite: return "read-write race";
    case RaceKind::kSharedWrite: return "shared-write race";
  }
  return "unknown race";
}

std::string RaceCollector::describe(const RaceReport& r) const {
  std::scoped_lock lk(mu_);
  const auto it = names_.find(r.var);
  const std::string var_label =
      it != names_.end() ? it->second : "var " + std::to_string(r.var);
  return std::string(race_kind_name(r.kind)) + " on " + var_label +
         ": thread " + std::to_string(r.current_tid) + " at " +
         r.current.str() + " conflicts with prior access at " +
         r.prior.str();
}

std::string RaceReport::str() const {
  return std::string(race_kind_name(kind)) + " on var " + std::to_string(var) +
         ": thread " + std::to_string(current_tid) + " at " + current.str() +
         " conflicts with prior access at " + prior.str();
}

}  // namespace vft
