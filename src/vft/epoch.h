// Epochs: the scalar clock values at the heart of FastTrack/VerifiedFT.
//
// An epoch t@c pairs a thread id t with that thread's clock value c
// (paper Section 3). Following Section 4 ("our actual implementation
// bit-packs epochs in 32-bit integers"), an Epoch is one 32-bit word with
// the thread id in the top kTidBits bits and the clock in the low
// kClockBits bits. The reserved value SHARED (all ones) marks a VarState
// whose read history has degraded to a full vector clock.
//
// The operations below implement the paper's LEQ / MAX / INC / TID
// (Figure 3, lines 11-14). As in the paper they are only defined for
// epochs of the same thread; this precondition is VFT_ASSERT-checked.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "vft/assert.h"

namespace vft {

/// Thread identifier. Dense, starting at 0, allocated by the runtime.
using Tid = std::uint32_t;
/// Scalar logical clock value.
using Clock = std::uint32_t;

/// A bit-packed epoch t@c, or the SHARED sentinel.
class Epoch {
 public:
  static constexpr int kClockBits = 24;
  static constexpr int kTidBits = 32 - kClockBits;
  static constexpr Clock kMaxClock = (Clock{1} << kClockBits) - 2;
  static constexpr Tid kMaxTid = (Tid{1} << kTidBits) - 2;

  /// Default epoch is bottom: 0@0 (a minimal epoch; cf. paper's A@0).
  constexpr Epoch() noexcept : bits_(0) {}

  /// Builds t@c. Checked: tid and clock must fit the packing.
  static constexpr Epoch make(Tid t, Clock c) {
    VFT_ASSERT(t <= kMaxTid);
    VFT_ASSERT(c <= kMaxClock);
    return Epoch((static_cast<std::uint32_t>(t) << kClockBits) | c);
  }

  /// The SHARED sentinel stored in VarState.R when reads are unordered.
  static constexpr Epoch shared() noexcept { return Epoch(~std::uint32_t{0}); }

  /// Bottom epoch for thread t: t@0. Returned by VectorClock::get for
  /// indices beyond the allocated array (Figure 3, line 36).
  static constexpr Epoch bottom(Tid t) { return make(t, 0); }

  constexpr bool is_shared() const noexcept { return bits_ == ~std::uint32_t{0}; }

  /// TID(t@c) = t. Undefined (asserted) on SHARED.
  constexpr Tid tid() const {
    VFT_ASSERT(!is_shared());
    return bits_ >> kClockBits;
  }

  /// The clock component c of t@c. Undefined (asserted) on SHARED.
  constexpr Clock clock() const {
    VFT_ASSERT(!is_shared());
    return bits_ & ((std::uint32_t{1} << kClockBits) - 1);
  }

  /// LEQ(t@c1, t@c2) = c1 <= c2. Both operands must belong to the same
  /// thread (paper: epoch operations are undefined across threads).
  friend constexpr bool leq(Epoch a, Epoch b) {
    VFT_ASSERT(!a.is_shared() && !b.is_shared());
    VFT_ASSERT(a.tid() == b.tid());
    return a.bits_ <= b.bits_;
  }

  /// MAX(t@c1, t@c2) = t@max(c1, c2).
  friend constexpr Epoch max(Epoch a, Epoch b) {
    VFT_ASSERT(!a.is_shared() && !b.is_shared());
    VFT_ASSERT(a.tid() == b.tid());
    return Epoch(a.bits_ >= b.bits_ ? a.bits_ : b.bits_);
  }

  /// INC(t@c) = t@(c+1). Checked against clock overflow: a target program
  /// performing more than 2^24-2 release operations in one thread exceeds
  /// the packing and must fail loudly rather than wrap.
  constexpr Epoch inc() const {
    VFT_ASSERT(!is_shared());
    VFT_CHECK(clock() < kMaxClock);
    return Epoch(bits_ + 1);
  }

  /// Raw packed representation; used by FT-CAS to pack (R, W) pairs into a
  /// single 8-byte atomic, and by tests.
  constexpr std::uint32_t bits() const noexcept { return bits_; }
  static constexpr Epoch from_bits(std::uint32_t b) noexcept { return Epoch(b); }

  friend constexpr bool operator==(Epoch a, Epoch b) noexcept = default;

  /// "t@c" or "SHARED", for reports and debugging.
  std::string str() const {
    if (is_shared()) return "SHARED";
    return std::to_string(tid()) + "@" + std::to_string(clock());
  }

 private:
  constexpr explicit Epoch(std::uint32_t bits) noexcept : bits_(bits) {}

  std::uint32_t bits_;
};

static_assert(sizeof(Epoch) == 4);

// Re-declare the hidden friends at namespace scope so qualified calls
// (vft::leq) and calls from same-named member functions resolve.
constexpr bool leq(Epoch a, Epoch b);
constexpr Epoch max(Epoch a, Epoch b);

}  // namespace vft
