#include "vft/spec.h"

#include "vft/access_history.h"
#include "vft/assert.h"
#include "vft/atomics.h"

namespace vft {

namespace {

/// t@c happens-before V (Section 3): t@c <= V(t).
bool epoch_leq(Epoch e, const VectorClock& v) {
  return leq(e, v.get(e.tid()));
}

}  // namespace

VectorClock& Spec::thread_state(Tid t) {
  auto it = threads_.find(t);
  if (it == threads_.end()) {
    // S0 maps each thread to inc_t(bottom): V[t] = t@1.
    VectorClock vc;
    vc.set(t, Epoch::make(t, 1));
    it = threads_.emplace(t, std::move(vc)).first;
  }
  return it->second;
}

VectorClock& Spec::lock_state(LockId m) {
  return locks_[m];  // S0: bottom vector clock
}

VectorClock& Spec::vol_state(VolId v) {
  return volatiles_[v];  // S0: bottom vector clock
}

VectorClock& Spec::atomic_state(VolId a) {
  return atomics_[a];  // S0: bottom release clock Sa.V
}

Spec::FenceState& Spec::fence_state(Tid t) {
  return fences_[t];  // S0: no pending fence halves
}

Spec::VarState& Spec::var_state(VarId x) {
  return vars_[x];  // S0: bottom clock, R = W = bottom epoch
}

Spec::StepResult Spec::on_read(Tid t, VarId x) {
  VFT_CHECK(!halted_);
  VectorClock& st = thread_state(t);
  VarState& sx = var_state(x);
  const Epoch e = st.get(t);

  // [Read Same Epoch]: Sx.R = E_t. (SHARED never bit-equals a real epoch.)
  if (sx.R == e) return ok(Rule::kReadSameEpoch);

  // [Read Shared Same Epoch]: Sx.R = SHARED and Sx.V(t) = E_t.
  // VerifiedFT-only rule; the original FastTrack falls through to
  // [Read Shared] below and redoes the write check.
  if (rules_ == RuleSet::kVerifiedFT && sx.R.is_shared() && sx.V.get(t) == e) {
    return ok(Rule::kReadSharedSameEpoch);
  }

  // History hook, past the same-epoch rules: the oracle records through
  // the same installed AccessHistory as the production detectors, so
  // differential runs see consistent prior-side metadata.
  history::note_access(x, t, e, history::AccessKind::kRead);

  // [Write-Read Race]: Sx.W not happens-before St.V.
  if (!epoch_leq(sx.W, st)) return error(Rule::kWriteReadRace);

  if (sx.R.is_shared()) {
    // [Read Shared]: Sx.V(t) := E_t.
    sx.V.set(t, e);
    return ok(Rule::kReadShared);
  }
  if (epoch_leq(sx.R, st)) {
    // [Read Exclusive]: reads remain totally ordered; Sx.R := E_t.
    sx.R = e;
    return ok(Rule::kReadExclusive);
  }
  // [Read Share]: concurrent reads; switch to vector-clock read history
  // v = bottom[t := E_t, u := Sx.R].
  VFT_ASSERT(sx.R.tid() != t);  // u != t is implied by program order
  VectorClock v;
  v.set(sx.R.tid(), sx.R);
  v.set(t, e);
  sx.V = std::move(v);
  sx.R = Epoch::shared();
  return ok(Rule::kReadShare);
}

Spec::StepResult Spec::on_write(Tid t, VarId x) {
  VFT_CHECK(!halted_);
  VectorClock& st = thread_state(t);
  VarState& sx = var_state(x);
  const Epoch e = st.get(t);

  // [Write Same Epoch]: Sx.W = E_t.
  if (sx.W == e) return ok(Rule::kWriteSameEpoch);

  // History hook, past the same-epoch rule (see on_read).
  history::note_access(x, t, e, history::AccessKind::kWrite);

  // [Write-Write Race].
  if (!epoch_leq(sx.W, st)) return error(Rule::kWriteWriteRace);

  if (!sx.R.is_shared()) {
    // [Read-Write Race] / [Write Exclusive].
    if (!epoch_leq(sx.R, st)) return error(Rule::kReadWriteRace);
    sx.W = e;
    return ok(Rule::kWriteExclusive);
  }
  // [Shared-Write Race] / [Write Shared]: full vector-clock comparison.
  if (!sx.V.leq(st)) return error(Rule::kSharedWriteRace);
  sx.W = e;
  if (rules_ == RuleSet::kOriginalFastTrack) {
    // Original FastTrack forgets the read history on a shared write,
    // dropping back to exclusive-epoch mode. VerifiedFT deliberately does
    // not (Section 3: no measured benefit, and it causes R to thrash
    // between shared and unshared states).
    sx.R = Epoch();
  }
  return ok(Rule::kWriteShared);
}

Spec::StepResult Spec::on_acquire(Tid t, LockId m) {
  VFT_CHECK(!halted_);
  thread_state(t).join(lock_state(m));
  return ok(Rule::kAcquire);
}

Spec::StepResult Spec::on_release(Tid t, LockId m) {
  VFT_CHECK(!halted_);
  VectorClock& st = thread_state(t);
  lock_state(m).copy(st);
  st.inc(t);
  return ok(Rule::kRelease);
}

Spec::StepResult Spec::on_vol_read(Tid t, VolId v) {
  VFT_CHECK(!halted_);
  const VectorClock vv = vol_state(v);  // copy: same-map reference hazard
  thread_state(t).join(vv);
  return ok(Rule::kVolRead);
}

Spec::StepResult Spec::on_vol_write(Tid t, VolId v) {
  VFT_CHECK(!halted_);
  VectorClock& st = thread_state(t);
  vol_state(v).join(st);
  st.inc(t);
  return ok(Rule::kVolWrite);
}

Spec::StepResult Spec::on_atomic_load(Tid t, VolId a, int mo) {
  VFT_CHECK(!halted_);
  VectorClock& st = thread_state(t);
  if (atomics::mo_is_acquire(mo)) {
    // Acquire: St.V := St.V join Sa.V.
    st.join(atomic_state(a));
    return ok(Rule::kAtomicLoad);
  }
  // Relaxed: no edge now; Sa.V feeds the pending-acquire accumulator so a
  // later acquire fence can pick it up (C++ fence-synchronization rule).
  FenceState& f = fence_state(t);
  f.acquire_V.join(atomic_state(a));
  f.has_acquire = true;
  return ok(Rule::kAtomicLoad);
}

Spec::StepResult Spec::on_atomic_store(Tid t, VolId a, int mo) {
  VFT_CHECK(!halted_);
  VectorClock& st = thread_state(t);
  if (atomics::mo_is_release(mo)) {
    // Release: Sa.V := Sa.V join St.V (join, not copy: unordered
    // publishers must not lose each other's clocks); St.V := inc_t(St.V).
    atomic_state(a).join(st);
    st.inc(t);
    return ok(Rule::kAtomicStore);
  }
  // Relaxed: publishes only a pending release fence's snapshot.
  FenceState& f = fence_state(t);
  if (f.has_release) atomic_state(a).join(f.release_V);
  return ok(Rule::kAtomicStore);
}

Spec::StepResult Spec::on_atomic_rmw(Tid t, VolId a, int mo) {
  VFT_CHECK(!halted_);
  // Store half first, then load half - the runtime's rmw_pre/rmw_post
  // ordering collapsed into one sequential step.
  VectorClock& st = thread_state(t);
  FenceState& f = fence_state(t);
  if (atomics::mo_is_release(mo)) {
    atomic_state(a).join(st);
    st.inc(t);
  } else if (f.has_release) {
    atomic_state(a).join(f.release_V);
  }
  if (atomics::mo_is_acquire(mo)) {
    st.join(atomic_state(a));
  } else {
    f.acquire_V.join(atomic_state(a));
    f.has_acquire = true;
  }
  return ok(Rule::kAtomicRmw);
}

Spec::StepResult Spec::on_atomic_fence(Tid t, int mo) {
  VFT_CHECK(!halted_);
  VectorClock& st = thread_state(t);
  FenceState& f = fence_state(t);
  // Acquire half before release half, so an acq_rel/seq_cst fence's
  // snapshot includes what its acquire half just joined.
  if (atomics::mo_is_acquire(mo) && f.has_acquire) st.join(f.acquire_V);
  if (atomics::mo_is_release(mo)) {
    f.release_V.copy(st);
    f.has_release = true;
    st.inc(t);
  }
  return ok(Rule::kAtomicFence);
}

Spec::StepResult Spec::on_fork(Tid t, Tid u) {
  VFT_CHECK(!halted_);
  VFT_CHECK(t != u);
  // Materialize both entries first: inserting the second could rehash the
  // map and invalidate a reference to the first.
  thread_state(t);
  thread_state(u);
  VectorClock& st = threads_.at(t);
  VectorClock& su = threads_.at(u);
  su.join(st);
  st.inc(t);
  return ok(Rule::kFork);
}

Spec::StepResult Spec::on_join(Tid t, Tid u) {
  VFT_CHECK(!halted_);
  VFT_CHECK(t != u);
  thread_state(t);
  thread_state(u);
  VectorClock& st = threads_.at(t);
  VectorClock& su = threads_.at(u);
  st.join(su);
  if (rules_ == RuleSet::kOriginalFastTrack) {
    // Original FastTrack increments the joined thread's own clock; the
    // update is unnecessary and VerifiedFT drops it (Section 3).
    su.inc(u);
  }
  return ok(Rule::kJoin);
}

}  // namespace vft
