// Per-address synchronization state for the __tsan_atomic* surface: the
// memory-order-precise clock treatment of C11/C++11 atomics.
//
// The stance is precision-first (the robustness-checking reading of the
// FT2 design): an atomic operation contributes a happens-before edge only
// when its memory order says so -
//
//   acquire-class load   St.V := St.V join Sa.V        (joins the release clock)
//   release-class store  Sa.V := Sa.V join St.V; inc_t (publishes the clock)
//   RMW                  both ends, per its single order
//   relaxed              NO edge - the access orders nothing
//
// so a program whose only ordering is x86's strong execution of relaxed
// atomics still shows its plain-data races. Atomic accesses themselves
// never race (C++ guarantees atomicity regardless of order); what the
// missing edges expose is the unordered *plain* data around them.
//
// Fences follow the C++ fence-synchronization rules in clock form:
//
//   fence(release)  snapshot St.V; inc_t. Every later relaxed store
//                   publishes the snapshot into its location's Sa.V.
//   fence(acquire)  St.V := St.V join A, where A is the accumulation of
//                   Sa.V over every relaxed load since (each relaxed load
//                   folds its location's current release clock into the
//                   thread's pending-acquire clock A).
//   fence(seq_cst)  both halves. The seq_cst total order itself is not
//                   modeled (like TSan; only its acquire/release strength).
//
// Sa.V lives in a LockRegistry-style sharded address-keyed registry
// (AtomicRegistry below). Each state carries the FastTrack volatile-epoch
// fast path: a release publication whose thread clock dominated Sa.V arms
// `fast_epoch` with the publishing epoch t@c, and an acquirer that already
// knows t@c skips the locked join entirely (knowing t@c implies having
// absorbed the publisher's full clock at c, hence Sa.V). The arm is a CAS
// so concurrent publishers collapse it to SHARED instead of clobbering
// each other; the CAS and the loads around it are VFT_SCHED_POINT-probed
// for the src/sched/ explorer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "sched/sched_point.h"
#include "vft/epoch.h"
#include "vft/vector_clock.h"

namespace vft::atomics {

// The TSan morder ABI values; identical to GCC/Clang's __ATOMIC_*
// constants, so the interposer forwards the compiler's argument verbatim.
inline constexpr int kMoRelaxed = 0;
inline constexpr int kMoConsume = 1;
inline constexpr int kMoAcquire = 2;
inline constexpr int kMoRelease = 3;
inline constexpr int kMoAcqRel = 4;
inline constexpr int kMoSeqCst = 5;

/// Consume is promoted to acquire (the standard implementation choice).
inline constexpr bool mo_is_acquire(int mo) {
  return mo == kMoConsume || mo == kMoAcquire || mo == kMoAcqRel ||
         mo == kMoSeqCst;
}

inline constexpr bool mo_is_release(int mo) {
  return mo == kMoRelease || mo == kMoAcqRel || mo == kMoSeqCst;
}

/// VFT_ATOMICS launch-time mode.
///   precise  (default) edges exactly per memory order - relaxed orders
///            nothing, so x86-hidden races surface.
///   sc       every order is modeled as seq_cst: the conservative
///            "TSan-on-x86 strong execution" view. The A/B half of the
///            litmus corpus: races the precise mode flags disappear here.
///   off      atomic operations are invisible to the analysis (the PR-5
///            interposer-only behaviour; the real operation still runs).
enum class Mode : std::uint8_t { kPrecise, kSc, kOff };

Mode mode_from_env();
const char* mode_name(Mode m);

/// The effective memory order under `mode`.
inline int effective_mo(Mode mode, int mo) {
  return mode == Mode::kSc ? kMoSeqCst : mo;
}

/// One atomic location's synchronization shadow.
struct AtomicState {
  /// SHARED sentinel for fast_epoch: unordered publishers, fast path off.
  static constexpr std::uint32_t kSharedBits = ~std::uint32_t{0};

  SchedMutex mu;
  /// Release clock Sa.V: join of every release-class publication (and
  /// every fence-backed snapshot publication). Guarded by mu.
  VectorClock sync_V;
  /// 0: nothing published yet (acquirers and relaxed loads skip the
  /// locked join - there is no clock to join). kSharedBits: publishers
  /// were unordered, every acquirer takes the locked join. Otherwise the
  /// epoch t@c of the last dominating publication: an acquirer whose
  /// V[t] >= c already absorbed Sa.V and skips the join.
  std::atomic<std::uint32_t> fast_epoch{0};
};

/// Address-keyed map from atomic locations to their AtomicState, with the
/// LockRegistry contract: references are stable for the session, every
/// alias maps to the same state, and reset_range drops states whose
/// addresses die so recycled memory starts from a bottom clock.
class AtomicRegistry {
 public:
  AtomicRegistry() = default;
  AtomicRegistry(const AtomicRegistry&) = delete;
  AtomicRegistry& operator=(const AtomicRegistry&) = delete;

  /// The AtomicState identified by `addr`, created bottom on first use.
  AtomicState& of(const void* addr) {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    Shard& s = shard_of(a);
    std::scoped_lock lk(s.mu);
    auto& slot = s.map[a];
    if (slot == nullptr) slot = std::make_unique<AtomicState>();
    return *slot;
  }

  /// Drop every state whose address lies in [addr, addr+size).
  void reset_range(const void* addr, std::size_t size) {
    const auto lo = reinterpret_cast<std::uintptr_t>(addr);
    const std::uintptr_t hi = lo + size;
    for (Shard& s : shards_) {
      std::scoped_lock lk(s.mu);
      for (auto it = s.map.begin(); it != s.map.end();) {
        if (it->first >= lo && it->first < hi) {
          it = s.map.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  /// Number of distinct atomic locations seen so far.
  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::scoped_lock lk(s.mu);
      n += s.map.size();
    }
    return n;
  }

 private:
  static constexpr std::size_t kShards = 64;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uintptr_t, std::unique_ptr<AtomicState>> map;
  };

  Shard& shard_of(std::uintptr_t a) {
    // Atomics are at least naturally aligned; drop the low bits before
    // mixing so neighbouring locations still spread over shards.
    std::uintptr_t x = a >> 3;
    x ^= x >> 17;
    x *= 0x9E3779B97F4A7C15ull;
    return shards_[(x >> 32) & (kShards - 1)];
  }

  Shard shards_[kShards];
};

/// Per-OS-thread fence state, generation-tagged so a Session::reset()
/// can never leak a previous backend's clocks into the next.
///
///   release_V  the snapshot taken by the last release-class fence;
///              published into Sa.V by every later relaxed store.
///   acquire_V  the accumulation of Sa.V over relaxed loads since; an
///              acquire-class fence joins it into the thread clock.
///              Never cleared: after the join it is <= St.V, so keeping
///              it only makes future joins no-ops (monotone, no precision
///              loss, no reallocation churn).
struct FenceTls {
  std::uint64_t generation = 0;
  bool has_release = false;
  bool has_acquire = false;
  VectorClock release_V;
  VectorClock acquire_V;
};

/// The calling thread's fence state for the session generation `gen`
/// (state from an older generation is discarded on first touch).
FenceTls& fence_tls(std::uint64_t gen);

}  // namespace vft::atomics
