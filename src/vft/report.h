// Race reports and their collector.
//
// The Figure 2 specification halts at the first Error; the production
// detectors instead follow the Section 7 fail-over semantics: a detected
// race is recorded as a structured report and checking continues, with the
// analysis state force-updated as if the racing access had been ordered
// (so one buggy variable does not flood the log with one report per
// subsequent access).
//
// The collector is thread-safe: handlers run inline in target threads, so
// concurrent reports are expected. Reporting is off the fast path - only
// racy programs pay for the lock.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <string>
#include <vector>

#include "vft/epoch.h"

namespace vft {

/// Which analysis rule detected the race (Figure 2 error rules).
enum class RaceKind : std::uint8_t {
  kWriteRead,    // [Write-Read Race]: read races with the last write
  kWriteWrite,   // [Write-Write Race]: write races with the last write
  kReadWrite,    // [Read-Write Race]: write races with the last (epoch) read
  kSharedWrite,  // [Shared-Write Race]: write races with a read-shared read
};

const char* race_kind_name(RaceKind k);

struct RaceReport {
  RaceKind kind;
  /// Variable identifier. The id scheme, by origin of the VarState:
  ///   - trace replay: the trace's small dense variable id;
  ///   - wrapper shadows (rt::Var, rt::Array inline mode): the address of
  ///     the VarState itself - uniform across wrapper kinds, and distinct
  ///     per element for arrays;
  ///   - address-keyed backends (rt::ShadowSpace pages, rt::ShadowTable,
  ///     and rt::Array's carved mode, which borrows backend slots): the
  ///     *target* address being shadowed (word-aligned for ShadowSpace),
  ///     so a report names the racing memory, not the shadow's location;
  ///   - explicit ids passed to Var's constructor override the default.
  /// Ids only need to be stable and unique per logical variable; name_var
  /// attaches the human-readable names reports print.
  std::uint64_t var;
  /// Thread performing the racing (current) access.
  Tid current_tid;
  /// Epoch of the prior conflicting access; SHARED-mode read races report
  /// the first unordered component found.
  Epoch prior;
  /// The current thread's epoch at the racing access.
  Epoch current;

  std::string str() const;
};

class RaceCollector {
 public:
  /// Record one race. Thread-safe. Reports beyond the per-variable or
  /// total limits are counted as suppressed rather than stored (the
  /// RoadRunner -maxWarn behaviour: a hot racy field should not drown the
  /// log, but the suppression must be visible).
  void report(const RaceReport& r) {
    std::scoped_lock lk(mu_);
    if (reports_.size() >= total_limit_ ||
        per_var_counts_[r.var] >= per_var_limit_) {
      ++suppressed_;
      return;
    }
    ++per_var_counts_[r.var];
    reports_.push_back(r);
  }

  /// At most k stored reports per distinct variable (default: unlimited).
  void set_per_var_limit(std::size_t k) {
    std::scoped_lock lk(mu_);
    per_var_limit_ = k;
  }

  /// At most n stored reports in total (default: unlimited).
  void set_total_limit(std::size_t n) {
    std::scoped_lock lk(mu_);
    total_limit_ = n;
  }

  /// Reports dropped by the limits.
  std::size_t suppressed() const {
    std::scoped_lock lk(mu_);
    return suppressed_;
  }

  /// Attach a human-readable name to a variable id; describe() uses it.
  void name_var(std::uint64_t var, std::string name) {
    std::scoped_lock lk(mu_);
    names_[var] = std::move(name);
  }

  /// Like RaceReport::str() but with the registered variable name.
  std::string describe(const RaceReport& r) const;

  bool empty() const {
    std::scoped_lock lk(mu_);
    return reports_.empty() && suppressed_ == 0;
  }

  std::size_t count() const {
    std::scoped_lock lk(mu_);
    return reports_.size();
  }

  std::optional<RaceReport> first() const {
    std::scoped_lock lk(mu_);
    if (reports_.empty()) return std::nullopt;
    return reports_.front();
  }

  std::vector<RaceReport> all() const {
    std::scoped_lock lk(mu_);
    return reports_;
  }

  void clear() {
    std::scoped_lock lk(mu_);
    reports_.clear();
    per_var_counts_.clear();
    suppressed_ = 0;
  }

 private:
  mutable std::mutex mu_;
  std::vector<RaceReport> reports_;
  std::unordered_map<std::uint64_t, std::size_t> per_var_counts_;
  std::unordered_map<std::uint64_t, std::string> names_;
  std::size_t per_var_limit_ = static_cast<std::size_t>(-1);
  std::size_t total_limit_ = static_cast<std::size_t>(-1);
  std::size_t suppressed_ = 0;
};

}  // namespace vft
