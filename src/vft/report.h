// Race reports and the error-context store behind them.
//
// The Figure 2 specification halts at the first Error; the production
// detectors instead follow the Section 7 fail-over semantics: a detected
// race is recorded as a structured report and checking continues, with the
// analysis state force-updated as if the racing access had been ordered.
//
// Reports are not a flat log. Borrowing valgrind's error-context
// machinery (coregrind/vg_errcontext.c), every report is folded into an
// *error context* keyed by the racing access's call stack + race kind
// (falling back to the variable id when no stack was captured - wrapper
// and trace-replay callers). A hot race that fires a million times is one
// context with count 10^6, not a million log lines. Suppression rules
// (vft/suppress.h, valgrind-like syntax, loaded from VFT_SUPPRESSIONS)
// hide matching contexts from the report body while still counting them.
//
// Two keys per context:
//   - the *dedup* key hashes the raw frame PCs: cheap, computed on every
//     occurrence, process-local (ASLR-dependent);
//   - the *context* key hashes the resolved module-basename+offset frames
//     plus the kind: stable across runs of the same binaries, and the
//     fusion key for `vft report merge` over a fleet of runs. Computed
//     once, when the context is created.
//
// Cost model: the race-free fast path never touches any of this. An
// occurrence of a known context pays one lock + one hash lookup. Only a
// *new* context resolves frames (dladdr) and runs suppression matching.
//
// The collector is thread-safe: handlers run inline in target threads, so
// concurrent reports are expected.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <string>
#include <vector>

#include "vft/epoch.h"
#include "vft/stack.h"
#include "vft/suppress.h"

namespace vft {

/// Which analysis rule detected the race (Figure 2 error rules).
enum class RaceKind : std::uint8_t {
  kWriteRead,    // [Write-Read Race]: read races with the last write
  kWriteWrite,   // [Write-Write Race]: write races with the last write
  kReadWrite,    // [Read-Write Race]: write races with the last (epoch) read
  kSharedWrite,  // [Shared-Write Race]: write races with a read-shared read
};

const char* race_kind_name(RaceKind k);

struct RaceReport {
  RaceKind kind;
  /// Variable identifier. The id scheme, by origin of the VarState:
  ///   - trace replay: the trace's small dense variable id;
  ///   - wrapper shadows (rt::Var, rt::Array inline mode): the address of
  ///     the VarState itself - uniform across wrapper kinds, and distinct
  ///     per element for arrays;
  ///   - address-keyed backends (rt::ShadowSpace pages, rt::ShadowTable,
  ///     and rt::Array's carved mode, which borrows backend slots): the
  ///     *target* address being shadowed (word-aligned for ShadowSpace),
  ///     so a report names the racing memory, not the shadow's location;
  ///   - explicit ids passed to Var's constructor override the default.
  /// Ids only need to be stable and unique per logical variable; name_var
  /// attaches the human-readable names reports print.
  std::uint64_t var;
  /// Thread performing the racing (current) access.
  Tid current_tid;
  /// Epoch of the prior conflicting access; SHARED-mode read races report
  /// the first unordered component found.
  Epoch prior;
  /// The current thread's epoch at the racing access.
  Epoch current;
  /// The racing (current) access's call stack, captured when the race
  /// fired (vft/stack.h). Empty when no interposition boundary was armed.
  CallStack stack;
  /// The prior access's call stack, looked up in the bounded access
  /// history (vft/access_history.h) by exact prior epoch. Empty when the
  /// history layer is off, the ring evicted the entry, or the prior is
  /// SHARED - the report then degrades to a bare prior epoch, exactly
  /// like pre-history reports.
  CallStack prior_stack;

  std::string str() const;
};

/// One deduplicated error context: a representative report, the resolved
/// frames of its racing access, and the occurrence count.
struct RaceContext {
  std::uint64_t key = 0;  ///< ASLR-stable cross-run key (see file header)
  RaceReport first;       ///< representative (first) occurrence
  std::vector<ResolvedFrame> frames;  ///< resolved first.stack
  std::vector<ResolvedFrame> prior_frames;  ///< resolved first.prior_stack
  std::uint64_t count = 0;            ///< occurrences folded in
  /// Matching suppression rule, or nullptr. Suppressed contexts are
  /// hidden from count()/all()/first() but remain in contexts() so the
  /// report can show what was hidden.
  const SuppressionRule* suppressed_by = nullptr;
  /// Context arrived past set_total_limit()/set_per_var_limit(): hidden
  /// like a suppressed context, attributed to the limits instead of a
  /// rule.
  bool limit_dropped = false;

  bool hidden() const { return suppressed_by != nullptr || limit_dropped; }
};

class RaceCollector {
 public:
  /// Fold one race occurrence into its error context. Thread-safe.
  void report(const RaceReport& r);

  /// Total *visible* race occurrences (sum of non-hidden context counts);
  /// detector tests count every occurrence, so dedup must not change
  /// this number.
  std::size_t count() const;

  /// Number of distinct visible error contexts.
  std::size_t context_count() const;

  /// Occurrences hidden from the report: suppression-rule matches plus
  /// over-limit drops. Nonzero suppression still means "racy run".
  std::size_t suppressed() const;

  /// Every context, visible and hidden, in first-seen order.
  std::vector<RaceContext> contexts() const;

  /// Flat per-occurrence log of visible races, in arrival order, for
  /// callers that predate dedup. Each entry is the occurrence as
  /// reported (its own tid/epochs — occurrences folding into the same
  /// context are NOT collapsed to the representative). Capped at 65536
  /// entries; occurrences of hidden contexts are omitted.
  std::vector<RaceReport> all() const;

  std::optional<RaceReport> first() const;

  bool empty() const;

  void clear();

  /// At most k stored contexts per distinct variable / in total
  /// (default: unlimited). With dedup these are triage guards, not
  /// memory guards: past the limit, *new* contexts are recorded hidden
  /// and their occurrences count as suppressed.
  void set_per_var_limit(std::size_t k);
  void set_total_limit(std::size_t n);

  /// Attach a human-readable name to a variable id; describe() and the
  /// report writers use it.
  void name_var(std::uint64_t var, std::string name);
  std::optional<std::string> var_name(std::uint64_t var) const;

  /// Like RaceReport::str() but with the registered variable name.
  std::string describe(const RaceReport& r) const;

  /// The suppression rules this collector filters through. Loading is
  /// thread-safe; rules apply to contexts created after the load.
  bool load_suppressions(const std::string& path, std::string* err = nullptr);
  bool load_suppressions_text(const std::string& text,
                              const std::string& origin,
                              std::string* err = nullptr);
  /// Load every file in a colon-separated VFT_SUPPRESSIONS-style list.
  /// Returns the number of files loaded; parse failures warn to stderr.
  int load_suppressions_env(const char* paths);

  /// Per-rule match statistics: (rule name, occurrences hidden).
  std::vector<std::pair<std::string, std::uint64_t>> suppression_stats() const;
  std::size_t suppression_rule_count() const;

 private:
  std::uint64_t raw_key(const RaceReport& r) const;
  std::uint64_t stable_key(const RaceReport& r,
                           const std::vector<ResolvedFrame>& frames) const;

  mutable std::mutex mu_;
  std::vector<RaceContext> contexts_;
  std::vector<RaceReport> flat_;  // visible occurrences, arrival order
  std::unordered_map<std::uint64_t, std::size_t> index_;  // raw key -> idx
  std::unordered_map<std::uint64_t, std::size_t> per_var_contexts_;
  std::unordered_map<std::uint64_t, std::string> names_;
  SuppressionEngine suppressions_;
  std::size_t per_var_limit_ = static_cast<std::size_t>(-1);
  std::size_t total_limit_ = static_cast<std::size_t>(-1);
  std::size_t visible_contexts_ = 0;
  std::size_t suppressed_ = 0;
};

}  // namespace vft
