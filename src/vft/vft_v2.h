// VerifiedFT-v2 (Figure 4): the optimized idealized implementation.
//
// The three most common rules run lock-free "pure blocks":
//   [Read Same Epoch], [Read Shared Same Epoch] in read (lines 130-135),
//   [Write Same Epoch] in write (lines 157-160).
// Everything else acquires the VarState mutex and proceeds as in v1. The
// pure blocks never modify state, so per the Section 5 reduction argument
// a normally-terminating pure block is a both-mover and each handler stays
// serializable; the mechanical version of that argument is this repo's
// small-scope serializability test (tests/serializability_test.cpp).
#pragma once

#include <mutex>

#include "vft/detector_base.h"
#include "vft/sync_var_state.h"

namespace vft {

class VftV2 : public DetectorBase {
 public:
  static constexpr const char* kName = "VerifiedFT-v2";

  using VarState = SyncVarState;

  explicit VftV2(RaceCollector* races = nullptr, RuleStats* stats = nullptr)
      : DetectorBase(races, stats) {}

  /// Read handler (Figure 4 lines 127-152).
  bool read(ThreadState& st, VarState& sx) {
    const Tid t = st.t;
    const Epoch e = st.epoch();
    // -- pure block: lock-free fast paths --
    {
      const Epoch r = sx.r_nolock();  // N (or R when it yields SHARED)
      if (r == e) {  // [Read Same Epoch]
        count(Rule::kReadSameEpoch);
        return true;
      }
      if (r.is_shared() && sx.V.get(t) == e) {  // [Read Shared Same Epoch]
        // R: reading SHARED has no subsequent writes; the V[t] slot is
        // readable by thread t without the lock per the discipline.
        count(Rule::kReadSharedSameEpoch);
        return true;
      }
    }
    // -- slow path, as v1 --
    std::scoped_lock lk(sx.mu);
    record_read(sx.id, st);  // history: past the same-epoch fast paths
    bool ok = true;
    const Epoch w = sx.w_locked();
    if (!ordered_before(w, st)) {  // [Write-Read Race]
      report(RaceKind::kWriteRead, sx.id, st, w);
      ok = false;
    }
    const Epoch r = sx.r_locked();
    if (!r.is_shared()) {
      if (ordered_before(r, st)) {
        sx.set_r_locked(e);  // [Read Exclusive] (N: concurrent readers)
        if (ok) count(Rule::kReadExclusive);
      } else {
        // [Read Share]: populate V *before* publishing SHARED; lock-free
        // readers only touch V after observing SHARED (acquire), which
        // synchronizes with this release store.
        sx.V.set_locked(r.tid(), r);
        sx.V.set_locked(t, e);
        sx.set_r_locked(Epoch::shared());
        if (ok) count(Rule::kReadShare);
      }
    } else {
      sx.V.set_locked(t, e);  // [Read Shared]
      if (ok) count(Rule::kReadShared);
    }
    return ok;
  }

  /// Write handler (Figure 4 lines 154-173).
  bool write(ThreadState& st, VarState& sx) {
    const Epoch e = st.epoch();
    // -- pure block: lock-free [Write Same Epoch] --
    {
      const Epoch w = sx.w_nolock();  // N
      if (w == e) {
        count(Rule::kWriteSameEpoch);
        return true;
      }
    }
    std::scoped_lock lk(sx.mu);
    record_write(sx.id, st);  // history: past the same-epoch fast path
    // Re-read W under the lock in case it changed (Section 5). W = e is
    // impossible here (only this thread writes epoch e), so fall through.
    bool ok = true;
    const Epoch w = sx.w_locked();
    if (!ordered_before(w, st)) {  // [Write-Write Race]
      report(RaceKind::kWriteWrite, sx.id, st, w);
      ok = false;
    }
    const Epoch r = sx.r_locked();
    if (!r.is_shared()) {
      if (!ordered_before(r, st)) {  // [Read-Write Race]
        report(RaceKind::kReadWrite, sx.id, st, r);
        ok = false;
      }
      sx.set_w_locked(e);  // [Write Exclusive]
      if (ok) count(Rule::kWriteExclusive);
    } else {
      if (!sx.V.leq_locked(st.V)) {  // [Shared-Write Race]
        report(RaceKind::kSharedWrite, sx.id, st, first_unordered(sx, st.V));
        ok = false;
      }
      sx.set_w_locked(e);  // [Write Shared]; R stays SHARED (Section 3)
      if (ok) count(Rule::kWriteShared);
    }
    return ok;
  }

 private:
  static Epoch first_unordered(const SyncVarState& sx,
                               const VectorClock& threadVC) {
    std::uint32_t n = std::max(sx.V.size(), threadVC.size());
    for (Tid i = 0; i < n; ++i) {
      if (!leq(sx.V.get(i), threadVC.get(i))) return sx.V.get(i);
    }
    return Epoch();
  }
};

}  // namespace vft
