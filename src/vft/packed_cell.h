// Packed shadow cell: the inline same-epoch fast path of this repo's
// perf line (SmartTrack/RoadRunner "fast path in a handful of
// unsynchronized instructions" shape, brought to the VerifiedFT rules).
//
// One 64-bit atomic word per shadowed memory word holds {R, W} while the
// variable is in an *epoch-only* state: R in the high 32 bits, W in the
// low 32 (exactly FtCas::VarState's packing). The per-access fast path is
//
//   read:   load cell; R == E_t            -> done      [Read Same Epoch]
//           R, W both ordered before t     -> CAS {E_t, W}  [Read Exclusive]
//           otherwise                      -> escalate
//   write:  load cell; W == E_t            -> done      [Write Same Epoch]
//           R, W both ordered before t     -> CAS {R, E_t}  [Write Exclusive]
//           otherwise                      -> escalate
//
// i.e. a load, a compare, and (for the exclusive advance) one CAS - no
// detector call, no VarState, no lock. Everything else - read sharing,
// lock-protected handoffs, races - spills the cell's exact {R, W} snapshot
// into a full VarState and runs the unmodified production detector on it
// from then on.
//
// Precision argument (why the fast path changes no verdict): while a cell
// is in epoch mode, its {R, W} is exactly the {R, W} the detector would
// hold for the same access history. [Read/Write Same Epoch] are no-ops in
// every detector; the exclusive advances perform the same single-field
// update the detector's epoch rules perform; and the cell refuses (and
// escalates) precisely when the next transition is *not* one of those four
// rules - before any [Read Share], [Read/Write Shared] or race rule would
// fire. The spill injects the snapshot via inject() (vft/probe.h), so the
// detector resumes from the exact state it would have had. Races are
// therefore reported by the detector, never swallowed by the fast path.
//
// Escalation protocol and its linearization (the Section 5-style argument,
// written out in docs/ALGORITHM.md s10): escalation is a one-way
// transition driven by a CAS to the ESCALATING sentinel. The winning CAS
// is the linearization point - it carries the authoritative {R, W}
// snapshot out of the cell (epochs in the cell are monotone and the
// sentinel is terminal, so there is no ABA). The winner injects the
// snapshot into the VarState, publishes it, and only then release-stores
// ESCALATED; every other thread that observes a sentinel either spins out
// the (short: one inject) window or acquire-loads ESCALATED, which makes
// the injected VarState visible before it is ever passed to a detector
// handler. Fast paths never complete against a sentinel, so no access can
// race the handoff.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>

#include "sched/sched_point.h"
#include "vft/access_history.h"
#include "vft/detector_base.h"
#include "vft/probe.h"

namespace vft {

/// VarState representations the packed cell can spill into: inject() must
/// reconstruct an epoch-mode state and the id field must exist for race
/// reports. All six production detectors qualify (Djit via the vector-clock
/// singleton injection in probe.h); rt::NullTool does not (nothing to
/// spill to - and nothing to detect).
template <typename VS>
concept SpillableVarState = requires(VS& v, Epoch e) {
  inject(v, e, e);
  { v.id } -> std::convertible_to<std::uint64_t>;
};

/// Bump a RuleStats counter through any tool exposing a stats() accessor
/// (the DetectorBase family); no-op otherwise. The fast path lives outside
/// the detector handlers, so it must do its own rule accounting.
template <typename Tool>
inline void bump_rule(Tool& tool, Rule r) {
  if constexpr (requires { tool.stats(); }) {
    if (RuleStats* s = tool.stats()) s->bump(r);
  }
}

/// Bulk variant for the SIMD range kernels: a matched prefix of n cells
/// bumps its rule counters once with n instead of n times.
template <typename Tool>
inline void bump_rule(Tool& tool, Rule r, std::uint64_t n) {
  if constexpr (requires { tool.stats(); }) {
    if (RuleStats* s = tool.stats()) s->bump(r, n);
  }
}

class PackedCell {
 public:
  /// Sentinels: an epoch-mode cell never stores SHARED in its R field
  /// (read sharing escalates first), so R == all-ones marks the cell as
  /// out of epoch mode. The W field disambiguates the two phases.
  static constexpr std::uint64_t kEscalating = 0xFFFFFFFF00000000ull;
  static constexpr std::uint64_t kEscalated = 0xFFFFFFFF00000001ull;

  /// Same packing as FtCas::VarState: R high, W low. The default cell
  /// (all zeroes) is {bottom, bottom}: clock-0 epochs are ordered before
  /// everything (thread clocks start at 1), so first touches take the
  /// exclusive fast path instead of escalating.
  static constexpr std::uint64_t pack(Epoch r, Epoch w) {
    return (static_cast<std::uint64_t>(r.bits()) << 32) | w.bits();
  }
  static constexpr Epoch unpack_r(std::uint64_t v) {
    return Epoch::from_bits(static_cast<std::uint32_t>(v >> 32));
  }
  static constexpr Epoch unpack_w(std::uint64_t v) {
    return Epoch::from_bits(static_cast<std::uint32_t>(v));
  }
  static constexpr bool is_sentinel(std::uint64_t v) {
    return (v >> 32) == 0xFFFFFFFFull;
  }

  /// Shared access to the cell word funnels through these, so the sched
  /// explorer interleaves every fast-path load/CAS and the escalation
  /// handshake.
  std::uint64_t load_bits() const {
    VFT_SCHED_POINT(kLoad, &bits_);
    return bits_.load(std::memory_order_acquire);
  }
  bool cas_bits(std::uint64_t& expected, std::uint64_t desired) {
    VFT_SCHED_POINT(kCas, &bits_);
    return bits_.compare_exchange_weak(expected, desired,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire);
  }

  enum class Fast : std::uint8_t {
    kSameEpoch,  ///< hit: [Read/Write Same Epoch], cell untouched
    kAdvanced,   ///< hit: [Read/Write Exclusive], committed by one CAS
    kSlow,       ///< miss: escalate (or already escalated) and call the detector
  };

  /// The read fast path. Never completes an access the detector would not
  /// treat as [Read Same Epoch]/[Read Exclusive] on identical state.
  Fast fast_read(const ThreadState& st) {
    const Epoch e = st.epoch();
    std::uint64_t cur = load_bits();
    for (;;) {
      if (is_sentinel(cur)) return Fast::kSlow;
      if (unpack_r(cur) == e) return Fast::kSameEpoch;
      const Epoch r = unpack_r(cur);
      const Epoch w = unpack_w(cur);
      if (!ordered_before(r, st) || !ordered_before(w, st)) return Fast::kSlow;
      if (cas_bits(cur, pack(e, w))) {
        return Fast::kAdvanced;
      }
    }
  }

  /// The write fast path ([Write Same Epoch]/[Write Exclusive]).
  Fast fast_write(const ThreadState& st) {
    const Epoch e = st.epoch();
    std::uint64_t cur = load_bits();
    for (;;) {
      if (is_sentinel(cur)) return Fast::kSlow;
      if (unpack_w(cur) == e) return Fast::kSameEpoch;
      const Epoch r = unpack_r(cur);
      const Epoch w = unpack_w(cur);
      if (!ordered_before(r, st) || !ordered_before(w, st)) return Fast::kSlow;
      if (cas_bits(cur, pack(r, e))) {
        return Fast::kAdvanced;
      }
    }
  }

  /// Claim the escalation. Returns the cell's {R, W} snapshot iff the
  /// caller won the ESCALATING CAS (the linearization point) and must now
  /// inject + publish the VarState and call finish_escalate(); returns
  /// nullopt once the cell is ESCALATED (spinning out a concurrent
  /// winner's publication window if needed).
  std::optional<std::pair<Epoch, Epoch>> begin_escalate() {
    std::uint64_t cur = load_bits();
    for (;;) {
      if (cur == kEscalated) return std::nullopt;
      if (cur == kEscalating) {
        wait_escalated();
        return std::nullopt;
      }
      if (cas_bits(cur, kEscalating)) {
        return std::make_pair(unpack_r(cur), unpack_w(cur));
      }
    }
  }

  /// Publish the escalation: the spilled VarState must be fully injected
  /// and reachable before this release-store.
  void finish_escalate() {
    VFT_SCHED_POINT(kStore, &bits_);
    bits_.store(kEscalated, std::memory_order_release);
  }

  bool escalated() const { return load_bits() == kEscalated; }

  /// Raw word, for tests and split-snapshotting layers.
  std::uint64_t bits() const { return load_bits(); }

 private:
  void wait_escalated() const {
    // The window is one inject() wide; spin with a yield for fairness on
    // oversubscribed hosts. Under the cooperative scheduler each
    // iteration parks as "blocked until a state change" so exploration
    // over the spin stays finite.
    while (load_bits() != kEscalated) {
      VFT_SCHED_SPIN(&bits_);
    }
  }

  std::atomic<std::uint64_t> bits_{0};
};

/// Resolve a cell to its spilled VarState, escalating it first if this
/// caller gets there before anyone else. `make` must create/locate the
/// VarState and make it reachable for `get` (publication order is carried
/// by the cell, so plain stores suffice inside make); `get` returns the
/// already-published VarState. Both are only invoked under the protocol's
/// mutual exclusion guarantees. Sets *won when this call performed the
/// spill (for stats).
template <typename Make, typename Get>
inline auto& escalate_cell(PackedCell& cell, Make&& make, Get&& get,
                           bool* won = nullptr) {
  if (auto rw = cell.begin_escalate()) {
    auto& vs = make();
#ifdef VFT_SCHED
    // Seeded-bug hook: publish ESCALATED *before* the snapshot lands, the
    // interleaving a dropped release on finish_escalate() would allow. A
    // loser can then read an empty VarState and miss the race the
    // snapshot carried; the mutation smoke test asserts the explorer
    // catches exactly that.
    if (sched::Mutations::escalate_publish_before_inject.load(
            std::memory_order_relaxed)) {
      cell.finish_escalate();
      inject(vs, rw->first, rw->second);
      if (won != nullptr) *won = true;
      return vs;
    }
#endif
    inject(vs, rw->first, rw->second);
    cell.finish_escalate();
    if (won != nullptr) *won = true;
    return vs;
  }
  if (won != nullptr) *won = false;
  return get();
}

/// One instrumented read through a packed cell: fast path inline, detector
/// call (spilling first if necessary) otherwise. Returns the detector's
/// verdict (true = no race; fast-path hits are race-free by construction).
/// Deliberately independent of rt::Runtime so trace-level differential
/// tests can drive the exact production code with hand-managed
/// ThreadStates. Sets *spilled when this access escalated the cell (the
/// sampling layer's reheat signal).
template <typename Tool, typename Make, typename Get>
inline bool packed_read(Tool& tool, ThreadState& st, PackedCell& cell,
                        Make&& make, Get&& get, bool* spilled = nullptr,
                        std::uint64_t var = 0) {
  switch (cell.fast_read(st)) {
    case PackedCell::Fast::kSameEpoch:
      bump_rule(tool, Rule::kReadSameEpoch);
      bump_rule(tool, Rule::kFastReadHit);
      return true;
    case PackedCell::Fast::kAdvanced:
      bump_rule(tool, Rule::kReadExclusive);
      bump_rule(tool, Rule::kFastReadHit);
      // An exclusive advance installs a NEW last-read epoch without ever
      // reaching a detector, and that epoch is exactly what a later racing
      // write will name as its prior - so the advance is a history-worthy
      // (non-same-epoch) transition. Callers with a stable variable id
      // (the packed shadow space) pass it; var 0 (trace tests, benches)
      // keeps the historical un-instrumented behaviour.
      if (var != 0) {
        history::note_access(var, st.t, st.epoch(),
                             history::AccessKind::kRead);
      }
      return true;
    case PackedCell::Fast::kSlow:
      break;
  }
  bool won = false;
  auto& vs = escalate_cell(cell, std::forward<Make>(make),
                           std::forward<Get>(get), &won);
  if (won) bump_rule(tool, Rule::kFastSpill);
  if (spilled != nullptr) *spilled = won;
  bump_rule(tool, Rule::kFastMiss);
  return tool.read(st, vs);
}

template <typename Tool, typename Make, typename Get>
inline bool packed_write(Tool& tool, ThreadState& st, PackedCell& cell,
                         Make&& make, Get&& get, bool* spilled = nullptr,
                         std::uint64_t var = 0) {
  switch (cell.fast_write(st)) {
    case PackedCell::Fast::kSameEpoch:
      bump_rule(tool, Rule::kWriteSameEpoch);
      bump_rule(tool, Rule::kFastWriteHit);
      return true;
    case PackedCell::Fast::kAdvanced:
      bump_rule(tool, Rule::kWriteExclusive);
      bump_rule(tool, Rule::kFastWriteHit);
      // See packed_read: the advanced last-write epoch is the prior a
      // racing access will look up, so it must be in the history.
      if (var != 0) {
        history::note_access(var, st.t, st.epoch(),
                             history::AccessKind::kWrite);
      }
      return true;
    case PackedCell::Fast::kSlow:
      break;
  }
  bool won = false;
  auto& vs = escalate_cell(cell, std::forward<Make>(make),
                           std::forward<Get>(get), &won);
  if (won) bump_rule(tool, Rule::kFastSpill);
  if (spilled != nullptr) *spilled = won;
  bump_rule(tool, Rule::kFastMiss);
  return tool.write(st, vs);
}

/// The sampling-gated variants (vft/sampling.h decides `sampled`). A
/// sampled-out access runs *only* the fast path: a same-epoch hit leaves
/// the cell alone and an exclusive advance commits the same single-CAS
/// update the real access would, so the cell's last-access metadata stays
/// fresh for later sampled accesses to race against. kSlow returns
/// without escalating and without calling the detector - a sampled-out
/// access never spills, never touches a VarState, and (if the cell is
/// already ESCALATED) never advances the spilled state either. Only
/// Rule::kSampledOut is bumped: the access-rule counters keep describing
/// the *analyzed* access mix, which is what the Table 1 distribution and
/// the rate=1.0 differential test compare.
template <typename Tool, typename Make, typename Get>
inline bool sampled_packed_read(Tool& tool, ThreadState& st, PackedCell& cell,
                                Make&& make, Get&& get, bool sampled,
                                bool* spilled = nullptr,
                                std::uint64_t var = 0) {
  if (sampled) [[likely]] {
    return packed_read(tool, st, cell, std::forward<Make>(make),
                       std::forward<Get>(get), spilled, var);
  }
  (void)cell.fast_read(st);  // keep last-reader metadata fresh; kSlow: no-op
  bump_rule(tool, Rule::kSampledOut);
  return true;
}

template <typename Tool, typename Make, typename Get>
inline bool sampled_packed_write(Tool& tool, ThreadState& st, PackedCell& cell,
                                 Make&& make, Get&& get, bool sampled,
                                 bool* spilled = nullptr,
                                 std::uint64_t var = 0) {
  if (sampled) [[likely]] {
    return packed_write(tool, st, cell, std::forward<Make>(make),
                        std::forward<Get>(get), spilled, var);
  }
  (void)cell.fast_write(st);  // keep last-writer metadata fresh; kSlow: no-op
  bump_rule(tool, Rule::kSampledOut);
  return true;
}

}  // namespace vft
