#include "vft/report_io.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "vft/report.h"

namespace vft::reportio {

// ---------------------------------------------------------------------
// JSON tree.
// ---------------------------------------------------------------------

const Json* Json::get(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::uint64_t Json::as_u64(std::uint64_t fallback) const {
  if (type == Type::kNumber && !number.empty()) {
    return std::strtoull(number.c_str(), nullptr, 10);
  }
  if (type == Type::kString && string.rfind("0x", 0) == 0) {
    return std::strtoull(string.c_str() + 2, nullptr, 16);
  }
  return fallback;
}

std::int64_t Json::as_i64(std::int64_t fallback) const {
  if (type == Type::kNumber && !number.empty()) {
    return std::strtoll(number.c_str(), nullptr, 10);
  }
  return fallback;
}

namespace {

/// Recursive-descent parser, tolerant of truncation: running out of
/// input mid-value keeps everything parsed so far and clears `complete`,
/// so a report cut short by a dying process still yields its finished
/// contexts. Structural errors (not truncation) set `error`.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParse run() {
    JsonParse out;
    skip_ws();
    out.value = parse_value(0);
    out.complete = !truncated_ && error_.empty();
    out.error = error_;
    return out;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  void fail(const std::string& what) {
    if (error_.empty()) {
      error_ = "json: " + what + " at offset " + std::to_string(pos_);
    }
  }

  Json parse_value(int depth) {
    Json v;
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return v;
    }
    skip_ws();
    if (eof()) {
      truncated_ = true;
      return v;
    }
    const char c = peek();
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') return parse_string_value();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') return parse_null();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail(std::string("unexpected character '") + c + "'");
    return v;
  }

  Json parse_object(int depth) {
    Json v;
    v.type = Json::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (eof()) {
        truncated_ = true;
        return v;
      }
      if (peek() != '"') {
        fail("expected object key");
        return v;
      }
      std::string key;
      if (!parse_string_raw(&key)) return v;
      skip_ws();
      if (eof()) {
        truncated_ = true;
        return v;
      }
      if (peek() != ':') {
        fail("expected ':'");
        return v;
      }
      ++pos_;
      const std::size_t before_errors = error_.size();
      Json member = parse_value(depth + 1);
      // A scalar cut off mid-way is dropped; a truncated container is kept
      // (it already dropped its own incomplete tail), so a report that
      // dies inside "contexts" still surfaces the complete entries.
      if (before_errors == error_.size() &&
          (!truncated_ || member.type == Json::Type::kObject ||
           member.type == Json::Type::kArray)) {
        v.object.emplace_back(std::move(key), std::move(member));
      }
      if (truncated_ || !error_.empty()) return v;
      skip_ws();
      if (eof()) {
        truncated_ = true;
        return v;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
      return v;
    }
  }

  Json parse_array(int depth) {
    Json v;
    v.type = Json::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      const std::size_t before_errors = error_.size();
      Json elem = parse_value(depth + 1);
      if (before_errors == error_.size() &&
          (!truncated_ || elem.type == Json::Type::kObject ||
           elem.type == Json::Type::kArray)) {
        v.array.push_back(std::move(elem));
      }
      if (truncated_ || !error_.empty()) return v;
      skip_ws();
      if (eof()) {
        truncated_ = true;
        return v;
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
      return v;
    }
  }

  bool parse_string_raw(std::string* out) {
    ++pos_;  // '"'
    std::string s;
    while (true) {
      if (eof()) {
        truncated_ = true;
        return false;
      }
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (eof()) {
          truncated_ = true;
          return false;
        }
        const char e = text_[pos_++];
        switch (e) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              truncated_ = true;
              return false;
            }
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return false;
              }
            }
            // We only emit \u00XX for raw bytes; decode those back to the
            // byte. Larger code points get a UTF-8 encoding.
            if (cp < 0x80) {
              s += static_cast<char>(cp);
            } else if (cp < 0x100) {
              s += static_cast<char>(cp);
            } else if (cp < 0x800) {
              s += static_cast<char>(0xC0 | (cp >> 6));
              s += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (cp >> 12));
              s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape");
            return false;
        }
        continue;
      }
      s += c;
    }
    *out = std::move(s);
    return true;
  }

  Json parse_string_value() {
    Json v;
    v.type = Json::Type::kString;
    parse_string_raw(&v.string);
    return v;
  }

  Json parse_bool() {
    Json v;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.type = Json::Type::kBool;
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.type = Json::Type::kBool;
      v.boolean = false;
      pos_ += 5;
    } else if (text_.size() - pos_ < 5) {
      truncated_ = true;
    } else {
      fail("bad literal");
    }
    return v;
  }

  Json parse_null() {
    Json v;
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
    } else if (text_.size() - pos_ < 4) {
      truncated_ = true;
    } else {
      fail("bad literal");
    }
    return v;
  }

  Json parse_number() {
    Json v;
    v.type = Json::Type::kNumber;
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && ((peek() >= '0' && peek() <= '9') || peek() == '.' ||
                      peek() == 'e' || peek() == 'E' || peek() == '+' ||
                      peek() == '-')) {
      ++pos_;
    }
    v.number = std::string(text_.substr(start, pos_ - start));
    if (v.number.empty() || v.number == "-") fail("bad number");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool truncated_ = false;
  std::string error_;
};

std::string hex(std::uint64_t v, int width = 0) {
  char buf[32];
  if (width > 0) {
    std::snprintf(buf, sizeof(buf), "0x%0*llx", width,
                  static_cast<unsigned long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
  }
  return buf;
}

}  // namespace

JsonParse parse_json(std::string_view text) { return Parser(text).run(); }

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  char buf[8];
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (u >= 0x20 && u < 0x7f) {
      out += c;
    } else {
      // Control bytes and everything non-ASCII: \u00XX keeps the output
      // valid JSON for arbitrary input bytes (paths are not always UTF-8).
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      out += buf;
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Live-collector snapshot.
// ---------------------------------------------------------------------

ReportDoc build_report_doc(const RaceCollector& rc, const char* detector,
                           std::size_t threads, std::size_t locks,
                           std::size_t shadow_words, bool clean_exit) {
  ReportDoc doc;
  doc.detector = detector == nullptr ? "" : detector;
  doc.clean_exit = clean_exit;
  doc.summary.threads = threads;
  doc.summary.locks = locks;
  doc.summary.shadow_words = shadow_words;

  for (const RaceContext& c : rc.contexts()) {
    Context out;
    out.key = hex(c.key, 16);
    out.kind = race_kind_name(c.first.kind);
    out.var = hex(c.first.var);
    if (const auto name = rc.var_name(c.first.var)) out.var_name = *name;
    out.count = c.count;
    if (c.suppressed_by != nullptr) {
      out.suppressed_by = c.suppressed_by->name;
    } else if (c.limit_dropped) {
      out.suppressed_by = "<limit>";
    }

    // Access kinds follow from the race kind: a write-read race is a
    // current *read* against a prior *write*; every other kind has a
    // current write, racing against a prior write (write-write) or a
    // prior read (read-write, shared-write).
    Access cur;
    cur.role = "current";
    cur.kind = c.first.kind == RaceKind::kWriteRead ? "read" : "write";
    cur.tid = c.first.current_tid;
    cur.epoch = c.first.current.str();
    for (const ResolvedFrame& f : c.frames) {
      Frame fr;
      fr.pc = f.pc;
      fr.module = f.module;
      fr.offset = f.offset;
      fr.symbol = f.symbol;
      fr.symbol_offset = f.sym_offset;
      cur.stack.push_back(std::move(fr));
    }
    Access prior;
    prior.role = "prior";
    prior.kind = (c.first.kind == RaceKind::kWriteRead ||
                  c.first.kind == RaceKind::kWriteWrite)
                     ? "write"
                     : "read";
    prior.tid = c.first.prior.is_shared() ? 0 : c.first.prior.tid();
    prior.epoch = c.first.prior.str();
    for (const ResolvedFrame& f : c.prior_frames) {
      Frame fr;
      fr.pc = f.pc;
      fr.module = f.module;
      fr.offset = f.offset;
      fr.symbol = f.symbol;
      fr.symbol_offset = f.sym_offset;
      prior.stack.push_back(std::move(fr));
    }
    out.accesses.push_back(std::move(cur));
    out.accesses.push_back(std::move(prior));
    doc.contexts.push_back(std::move(out));
  }
  for (const auto& [name, matched] : rc.suppression_stats()) {
    doc.suppression_stats.emplace_back(name, matched);
  }

  for (const Context& c : doc.contexts) {
    if (c.hidden()) {
      doc.summary.suppressed += c.count;
      ++doc.summary.suppressed_contexts;
    } else {
      doc.summary.races += c.count;
      ++doc.summary.contexts;
    }
  }
  return doc;
}

// ---------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------

namespace {

void render_frame(std::string& o, const Frame& f, const char* indent) {
  o += indent;
  o += "{\"pc\": \"" + hex(f.pc) + "\"";
  if (!f.module.empty()) {
    o += ", \"module\": \"" + json_escape(f.module) + "\"";
    o += ", \"offset\": \"" + hex(f.offset) + "\"";
  }
  if (!f.symbol.empty()) {
    o += ", \"symbol\": \"" + json_escape(f.symbol) + "\"";
    o += ", \"symbol_offset\": \"" + hex(f.symbol_offset) + "\"";
  }
  if (!f.file.empty()) {
    o += ", \"file\": \"" + json_escape(f.file) + "\"";
    o += ", \"line\": " + std::to_string(f.line < 0 ? 0 : f.line);
  }
  o += "}";
}

void render_access(std::string& o, const Access& a) {
  o += "      {\"role\": \"" + json_escape(a.role) + "\"";
  if (!a.kind.empty()) o += ", \"kind\": \"" + json_escape(a.kind) + "\"";
  o += ", \"tid\": " + std::to_string(a.tid) + ", \"epoch\": \"" +
       json_escape(a.epoch) + "\",\n       \"stack\": [";
  for (std::size_t i = 0; i < a.stack.size(); ++i) {
    o += i == 0 ? "\n" : ",\n";
    render_frame(o, a.stack[i], "         ");
  }
  if (!a.stack.empty()) o += "\n       ";
  o += "]}";
}

/// Contexts ordered by (kind, var, key, var_name): the canonical output
/// order, independent of discovery or merge-input order.
bool context_less(const Context& a, const Context& b) {
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.var != b.var) return a.var < b.var;
  if (a.key != b.key) return a.key < b.key;
  return a.var_name < b.var_name;
}

}  // namespace

std::string render_json(const ReportDoc& doc) {
  std::vector<const Context*> ordered;
  ordered.reserve(doc.contexts.size());
  for (const Context& c : doc.contexts) ordered.push_back(&c);
  std::sort(ordered.begin(), ordered.end(),
            [](const Context* a, const Context* b) {
              return context_less(*a, *b);
            });

  std::string o;
  o += "{\n";
  o += "  \"schema\": \"vft-report-v2\",\n";
  o += "  \"detector\": \"" + json_escape(doc.detector) + "\",\n";
  o += "  \"runs\": " + std::to_string(doc.runs) + ",\n";
  o += std::string("  \"clean_exit\": ") +
       (doc.clean_exit ? "true" : "false") + ",\n";
  if (doc.sampling.enabled) {
    const SamplingInfo& sp = doc.sampling;
    const std::uint64_t total = sp.sampled + sp.skipped;
    char buf[64];
    o += "  \"sampling\": {\"policy\": \"" + json_escape(sp.policy) + "\"";
    std::snprintf(buf, sizeof(buf), ", \"budget_pct\": %g", sp.budget_pct);
    o += buf;
    std::snprintf(buf, sizeof(buf), ", \"rate0\": %g", sp.rate0);
    o += buf;
    o += ", \"rate_ppm\": " + std::to_string(sp.rate_ppm);
    o += ",\n               \"sampled\": " + std::to_string(sp.sampled);
    o += ", \"skipped\": " + std::to_string(sp.skipped);
    o += ", \"cooled_out\": " + std::to_string(sp.cooled_out);
    o += ", \"reheats\": " + std::to_string(sp.reheats);
    o += ",\n               \"overhead_ns\": " + std::to_string(sp.overhead_ns);
    o += ", \"busy_ns\": " + std::to_string(sp.busy_ns);
    o += ", \"adjustments\": " + std::to_string(sp.adjustments);
    std::snprintf(buf, sizeof(buf), ",\n               \"achieved_rate\": %.6f",
                  total > 0 ? static_cast<double>(sp.sampled) /
                                  static_cast<double>(total)
                            : 0.0);
    o += buf;
    std::snprintf(buf, sizeof(buf), ", \"overhead_pct\": %.3f",
                  sp.busy_ns > 0 ? 100.0 * static_cast<double>(sp.overhead_ns) /
                                       static_cast<double>(sp.busy_ns)
                                 : 0.0);
    o += buf;
    o += "},\n";
  }
  o += "  \"contexts\": [";
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const Context& c = *ordered[i];
    o += i == 0 ? "\n" : ",\n";
    o += "    {\"key\": \"" + c.key + "\",\n";
    o += "     \"kind\": \"" + json_escape(c.kind) + "\",\n";
    o += "     \"var\": \"" + json_escape(c.var) + "\",\n";
    if (!c.var_name.empty()) {
      o += "     \"var_name\": \"" + json_escape(c.var_name) + "\",\n";
    }
    o += "     \"count\": " + std::to_string(c.count) + ",\n";
    if (!c.suppressed_by.empty()) {
      o += "     \"suppressed_by\": \"" + json_escape(c.suppressed_by) +
           "\",\n";
    }
    o += "     \"accesses\": [";
    for (std::size_t j = 0; j < c.accesses.size(); ++j) {
      o += j == 0 ? "\n" : ",\n";
      render_access(o, c.accesses[j]);
    }
    if (!c.accesses.empty()) o += "\n     ";
    o += "]}";
  }
  if (!ordered.empty()) o += "\n  ";
  o += "],\n";
  o += "  \"suppressions\": [";
  {
    auto stats = doc.suppression_stats;
    std::sort(stats.begin(), stats.end());
    for (std::size_t i = 0; i < stats.size(); ++i) {
      o += i == 0 ? "\n" : ",\n";
      o += "    {\"name\": \"" + json_escape(stats[i].first) +
           "\", \"matched\": " + std::to_string(stats[i].second) + "}";
    }
    if (!stats.empty()) o += "\n  ";
  }
  o += "],\n";
  const Summary& s = doc.summary;
  o += "  \"summary\": {\"races\": " + std::to_string(s.races) +
       ", \"contexts\": " + std::to_string(s.contexts) +
       ", \"suppressed\": " + std::to_string(s.suppressed) +
       ", \"suppressed_contexts\": " + std::to_string(s.suppressed_contexts) +
       ",\n              \"threads\": " + std::to_string(s.threads) +
       ", \"locks\": " + std::to_string(s.locks) +
       ", \"shadow_words\": " + std::to_string(s.shadow_words) + "}\n";
  o += "}\n";
  return o;
}

std::string render_plain(const ReportDoc& doc) {
  std::string o;
  o += "== VerifiedFT report (detector " + doc.detector + ") ==\n";
  std::vector<const Context*> ordered;
  for (const Context& c : doc.contexts) ordered.push_back(&c);
  std::sort(ordered.begin(), ordered.end(),
            [](const Context* a, const Context* b) {
              return context_less(*a, *b);
            });
  for (const Context* cp : ordered) {
    const Context& c = *cp;
    if (c.hidden()) continue;
    const std::string var_label =
        c.var_name.empty() ? "var " + c.var : c.var_name;
    std::string cur_tid = "?", cur_epoch = "?", prior_epoch = "?";
    for (const Access& a : c.accesses) {
      if (a.role == "current") {
        cur_tid = std::to_string(a.tid);
        cur_epoch = a.epoch;
      } else if (a.role == "prior") {
        prior_epoch = a.epoch;
      }
    }
    o += "race: " + c.kind + " on " + var_label + ": thread " + cur_tid +
         " at " + cur_epoch + " conflicts with prior access at " +
         prior_epoch;
    if (c.count > 1) o += " (x" + std::to_string(c.count) + ")";
    o += "\n";
    // Both sides of the race, indented under the scraper-stable "race:"
    // line. The prior side's stack comes from the access history; when
    // the ring evicted it the side renders with "(no stack)".
    for (const Access& a : c.accesses) {
      o += "  " + a.role;
      if (!a.kind.empty()) o += " " + a.kind;
      o += " by thread " + std::to_string(a.tid) + " at " + a.epoch + ":";
      if (a.stack.empty()) {
        o += " (no stack)\n";
        continue;
      }
      o += "\n";
      for (std::size_t i = 0; i < a.stack.size(); ++i) {
        const Frame& f = a.stack[i];
        o += "    #" + std::to_string(i) + " ";
        if (!f.symbol.empty()) o += f.symbol + " ";
        if (!f.module.empty()) {
          o += f.module + "+" + hex(f.offset);
        } else {
          o += hex(f.pc);
        }
        if (!f.file.empty()) {
          o += " " + f.file + ":" + std::to_string(f.line < 0 ? 0 : f.line);
        }
        o += "\n";
      }
    }
  }
  for (const Context* cp : ordered) {
    if (!cp->hidden()) continue;
    o += "suppressed: " + cp->kind + " on var " + cp->var + " by " +
         cp->suppressed_by + " (x" + std::to_string(cp->count) + ")\n";
  }
  const Summary& s = doc.summary;
  o += "summary: races=" + std::to_string(s.races) +
       " contexts=" + std::to_string(s.contexts) +
       " suppressed=" + std::to_string(s.suppressed) +
       " threads=" + std::to_string(s.threads) +
       " locks=" + std::to_string(s.locks) +
       " shadow-words=" + std::to_string(s.shadow_words) + "\n";
  return o;
}

// ---------------------------------------------------------------------
// Parsing a document back.
// ---------------------------------------------------------------------

namespace {

Frame frame_from_json(const Json& j) {
  Frame f;
  if (const Json* v = j.get("pc")) f.pc = v->as_u64();
  if (const Json* v = j.get("module")) f.module = v->string;
  if (const Json* v = j.get("offset")) f.offset = v->as_u64();
  if (const Json* v = j.get("symbol")) f.symbol = v->string;
  if (const Json* v = j.get("symbol_offset")) f.symbol_offset = v->as_u64();
  if (const Json* v = j.get("file")) f.file = v->string;
  if (const Json* v = j.get("line")) {
    f.line = static_cast<int>(v->as_i64(-1));
  }
  return f;
}

Access access_from_json(const Json& j) {
  Access a;
  if (const Json* v = j.get("role")) a.role = v->string;
  if (const Json* v = j.get("kind")) a.kind = v->string;
  if (const Json* v = j.get("tid")) a.tid = static_cast<unsigned>(v->as_u64());
  if (const Json* v = j.get("epoch")) a.epoch = v->string;
  if (const Json* v = j.get("stack")) {
    for (const Json& e : v->array) a.stack.push_back(frame_from_json(e));
  }
  return a;
}

std::optional<Context> context_from_json(const Json& j) {
  // A context salvaged from a truncated report must at least identify
  // itself; half-parsed trailing entries without kind+key are dropped.
  const Json* kind = j.get("kind");
  const Json* key = j.get("key");
  if (kind == nullptr || key == nullptr) return std::nullopt;
  Context c;
  c.kind = kind->string;
  c.key = key->string;
  if (const Json* v = j.get("var")) c.var = v->string;
  if (const Json* v = j.get("var_name")) c.var_name = v->string;
  if (const Json* v = j.get("count")) c.count = v->as_u64(1);
  if (c.count == 0) c.count = 1;
  if (const Json* v = j.get("suppressed_by")) c.suppressed_by = v->string;
  if (const Json* v = j.get("accesses")) {
    for (const Json& e : v->array) c.accesses.push_back(access_from_json(e));
  }
  return c;
}

}  // namespace

bool parse_report(std::string_view text, ReportDoc* doc, std::string* err) {
  JsonParse parsed = parse_json(text);
  if (!parsed.error.empty()) {
    if (err != nullptr) *err = parsed.error;
    return false;
  }
  if (parsed.value.type != Json::Type::kObject) {
    if (err != nullptr) *err = "report: top-level JSON object missing";
    return false;
  }
  const Json& root = parsed.value;
  if (const Json* v = root.get("schema"); v != nullptr &&
      v->string != "vft-report-v2") {
    if (err != nullptr) *err = "report: unknown schema '" + v->string + "'";
    return false;
  }
  *doc = ReportDoc{};
  doc->truncated = !parsed.complete;
  if (const Json* v = root.get("detector")) doc->detector = v->string;
  if (const Json* v = root.get("runs")) doc->runs = v->as_u64(1);
  if (doc->runs == 0) doc->runs = 1;
  if (const Json* v = root.get("clean_exit")) doc->clean_exit = v->boolean;
  if (doc->truncated) doc->clean_exit = false;
  if (const Json* v = root.get("sampling")) {
    SamplingInfo& sp = doc->sampling;
    sp.enabled = true;
    if (const Json* t = v->get("policy")) sp.policy = t->string;
    if (const Json* t = v->get("budget_pct")) {
      sp.budget_pct = std::strtod(t->number.c_str(), nullptr);
    }
    if (const Json* t = v->get("rate0")) {
      sp.rate0 = std::strtod(t->number.c_str(), nullptr);
    }
    if (const Json* t = v->get("rate_ppm")) sp.rate_ppm = t->as_u64(1000000);
    if (const Json* t = v->get("sampled")) sp.sampled = t->as_u64();
    if (const Json* t = v->get("skipped")) sp.skipped = t->as_u64();
    if (const Json* t = v->get("cooled_out")) sp.cooled_out = t->as_u64();
    if (const Json* t = v->get("reheats")) sp.reheats = t->as_u64();
    if (const Json* t = v->get("overhead_ns")) sp.overhead_ns = t->as_u64();
    if (const Json* t = v->get("busy_ns")) sp.busy_ns = t->as_u64();
    if (const Json* t = v->get("adjustments")) sp.adjustments = t->as_u64();
  }
  if (const Json* v = root.get("contexts")) {
    for (const Json& e : v->array) {
      if (auto c = context_from_json(e)) doc->contexts.push_back(*std::move(c));
    }
  }
  if (const Json* v = root.get("suppressions")) {
    for (const Json& e : v->array) {
      const Json* name = e.get("name");
      const Json* matched = e.get("matched");
      if (name != nullptr) {
        doc->suppression_stats.emplace_back(
            name->string, matched == nullptr ? 0 : matched->as_u64());
      }
    }
  }
  // Recompute the context-derived summary (authoritative even for
  // truncated input); process stats come from the summary block when it
  // survived.
  for (const Context& c : doc->contexts) {
    if (c.hidden()) {
      doc->summary.suppressed += c.count;
      ++doc->summary.suppressed_contexts;
    } else {
      doc->summary.races += c.count;
      ++doc->summary.contexts;
    }
  }
  if (const Json* v = root.get("summary")) {
    if (const Json* t = v->get("threads")) doc->summary.threads = t->as_u64();
    if (const Json* t = v->get("locks")) doc->summary.locks = t->as_u64();
    if (const Json* t = v->get("shadow_words")) {
      doc->summary.shadow_words = t->as_u64();
    }
  }
  return true;
}

// ---------------------------------------------------------------------
// Fleet merge.
// ---------------------------------------------------------------------

namespace {

/// Deterministic representative fingerprint: the context rendered with
/// its volatile fields (count, suppression) zeroed, so the winner never
/// depends on input order.
std::string context_fingerprint(const Context& c) {
  Context copy = c;
  copy.count = 0;
  copy.suppressed_by.clear();
  ReportDoc tmp;
  tmp.contexts.push_back(std::move(copy));
  return render_json(tmp);
}

}  // namespace

ReportDoc merge_reports(const std::vector<ReportDoc>& docs) {
  ReportDoc out;
  out.runs = 0;
  out.clean_exit = true;

  struct Slot {
    Context ctx;
    std::string fingerprint;
    std::uint64_t count = 0;
    bool any_visible = false;
    std::string suppressed_by;
  };
  std::map<std::string, Slot> by_key;
  std::map<std::string, std::uint64_t> supp;
  std::string detector;
  bool mixed = false;

  // Sampling block: integer counters sum; the weighted current-rate
  // average and the config-equality folds below are all order-independent,
  // keeping the merge byte-stable across input orderings.
  bool sampling_any = false;
  bool sampling_policy_mixed = false, sampling_cfg_mixed = false;
  std::string sampling_policy;
  double sampling_budget = 0.0, sampling_rate0 = 1.0;
  bool sampling_cfg_set = false;
  std::uint64_t rate_weighted = 0;

  for (const ReportDoc& d : docs) {
    out.runs += d.runs;
    out.clean_exit = out.clean_exit && d.clean_exit && !d.truncated;
    if (d.sampling.enabled) {
      const SamplingInfo& sp = d.sampling;
      SamplingInfo& o = out.sampling;
      sampling_any = true;
      if (sampling_policy.empty()) {
        sampling_policy = sp.policy;
      } else if (sp.policy != sampling_policy) {
        sampling_policy_mixed = true;
      }
      if (!sampling_cfg_set) {
        sampling_cfg_set = true;
        sampling_budget = sp.budget_pct;
        sampling_rate0 = sp.rate0;
      } else if (sp.budget_pct != sampling_budget ||
                 sp.rate0 != sampling_rate0) {
        sampling_cfg_mixed = true;
      }
      o.sampled += sp.sampled;
      o.skipped += sp.skipped;
      o.cooled_out += sp.cooled_out;
      o.reheats += sp.reheats;
      o.overhead_ns += sp.overhead_ns;
      o.busy_ns += sp.busy_ns;
      o.adjustments += sp.adjustments;
      rate_weighted += sp.rate_ppm * (sp.busy_ns / 1000);
    }
    if (detector.empty()) {
      detector = d.detector;
    } else if (!d.detector.empty() && d.detector != detector) {
      mixed = true;
    }
    out.summary.threads += d.summary.threads;
    out.summary.locks += d.summary.locks;
    out.summary.shadow_words += d.summary.shadow_words;
    for (const auto& [name, matched] : d.suppression_stats) {
      supp[name] += matched;
    }
    for (const Context& c : d.contexts) {
      Slot& slot = by_key[c.key];
      slot.count += c.count;
      // Visible in any run wins: a context is only hidden fleet-wide if
      // every run hid it (suppression configs should agree, but a
      // disagreement must not silently hide a race).
      if (!c.hidden()) {
        slot.any_visible = true;
      } else if (slot.suppressed_by.empty() ||
                 c.suppressed_by < slot.suppressed_by) {
        slot.suppressed_by = c.suppressed_by;
      }
      const std::string fp = context_fingerprint(c);
      if (slot.fingerprint.empty() || fp < slot.fingerprint) {
        slot.fingerprint = fp;
        slot.ctx = c;
      }
    }
  }
  if (out.runs == 0) out.runs = 1;
  out.detector = mixed ? "mixed" : detector;
  if (sampling_any) {
    SamplingInfo& o = out.sampling;
    o.enabled = true;
    o.policy = sampling_policy_mixed ? "mixed" : sampling_policy;
    o.budget_pct = sampling_cfg_mixed ? 0.0 : sampling_budget;
    o.rate0 = sampling_cfg_mixed ? 1.0 : sampling_rate0;
    const std::uint64_t busy_us = o.busy_ns / 1000;
    o.rate_ppm = busy_us > 0 ? rate_weighted / busy_us : 1000000;
  }

  for (auto& [key, slot] : by_key) {
    Context c = slot.ctx;
    c.count = slot.count;
    c.suppressed_by = slot.any_visible ? "" : slot.suppressed_by;
    if (c.hidden()) {
      out.summary.suppressed += c.count;
      ++out.summary.suppressed_contexts;
    } else {
      out.summary.races += c.count;
      ++out.summary.contexts;
    }
    out.contexts.push_back(std::move(c));
  }
  for (const auto& [name, matched] : supp) {
    out.suppression_stats.emplace_back(name, matched);
  }
  return out;
}

// ---------------------------------------------------------------------
// Schema skeleton (CI golden).
// ---------------------------------------------------------------------

namespace {

/// Schema trees reuse Json: leaves are type-tag strings, arrays hold one
/// union-merged element schema, object keys are sorted.
Json schema_of(const Json& v) {
  Json s;
  switch (v.type) {
    case Json::Type::kNull:
      s.type = Json::Type::kString;
      s.string = "null";
      break;
    case Json::Type::kBool:
      s.type = Json::Type::kString;
      s.string = "bool";
      break;
    case Json::Type::kNumber:
      s.type = Json::Type::kString;
      s.string = "num";
      break;
    case Json::Type::kString:
      s.type = Json::Type::kString;
      s.string = "str";
      break;
    case Json::Type::kArray:
      s.type = Json::Type::kArray;
      break;
    case Json::Type::kObject:
      s.type = Json::Type::kObject;
      break;
  }
  return s;
}

Json merge_schema(const Json& a, const Json& b);

Json merge_object_schema(const Json& a, const Json& b) {
  Json out;
  out.type = Json::Type::kObject;
  std::map<std::string, const Json*> am, bm;
  for (const auto& [k, v] : a.object) am[k] = &v;
  for (const auto& [k, v] : b.object) bm[k] = &v;
  for (const auto& [k, av] : am) {
    const auto bit = bm.find(k);
    out.object.emplace_back(
        k, bit == bm.end() ? *av : merge_schema(*av, *bit->second));
  }
  for (const auto& [k, bv] : bm) {
    if (am.find(k) == am.end()) out.object.emplace_back(k, *bv);
  }
  std::sort(out.object.begin(), out.object.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  return out;
}

Json merge_schema(const Json& a, const Json& b) {
  if (a.type != b.type) {
    Json s;
    s.type = Json::Type::kString;
    s.string = "mixed";
    return s;
  }
  if (a.type == Json::Type::kObject) return merge_object_schema(a, b);
  if (a.type == Json::Type::kArray) {
    Json s;
    s.type = Json::Type::kArray;
    if (a.array.empty()) {
      s.array = b.array;
    } else if (b.array.empty()) {
      s.array = a.array;
    } else {
      s.array.push_back(merge_schema(a.array[0], b.array[0]));
    }
    return s;
  }
  if (a.string == b.string) return a;
  Json s;
  s.type = Json::Type::kString;
  s.string = "mixed";
  return s;
}

Json skeletonize(const Json& v) {
  Json s = schema_of(v);
  if (v.type == Json::Type::kObject) {
    for (const auto& [k, member] : v.object) {
      s.object.emplace_back(k, skeletonize(member));
    }
    std::sort(s.object.begin(), s.object.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
  } else if (v.type == Json::Type::kArray) {
    Json merged;
    bool have = false;
    for (const Json& e : v.array) {
      Json es = skeletonize(e);
      merged = have ? merge_schema(merged, es) : std::move(es);
      have = true;
    }
    if (have) s.array.push_back(std::move(merged));
  }
  return s;
}

void render_schema(const Json& s, std::string& o, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  switch (s.type) {
    case Json::Type::kString:
      o += "\"" + s.string + "\"";
      break;
    case Json::Type::kArray:
      if (s.array.empty()) {
        o += "[]";
      } else {
        o += "[\n" + pad + "  ";
        render_schema(s.array[0], o, indent + 1);
        o += "\n" + pad + "]";
      }
      break;
    case Json::Type::kObject: {
      if (s.object.empty()) {
        o += "{}";
        break;
      }
      o += "{\n";
      for (std::size_t i = 0; i < s.object.size(); ++i) {
        o += pad + "  \"" + json_escape(s.object[i].first) + "\": ";
        render_schema(s.object[i].second, o, indent + 1);
        o += i + 1 < s.object.size() ? ",\n" : "\n";
      }
      o += pad + "}";
      break;
    }
    default:
      o += "\"?\"";
  }
}

}  // namespace

std::string json_skeleton(std::string_view text) {
  const JsonParse parsed = parse_json(text);
  if (!parsed.error.empty() || !parsed.complete) {
    return "\"<unparsable: " + (parsed.error.empty() ? "truncated"
                                                     : parsed.error) +
           ">\"\n";
  }
  const Json skel = skeletonize(parsed.value);
  std::string o;
  render_schema(skel, o, 0);
  o += "\n";
  return o;
}

}  // namespace vft::reportio
