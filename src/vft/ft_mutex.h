// FT-Mutex: reconstruction of the earlier RoadRunner FastTrack
// implementation the paper compares against (Section 4, "Comparison to
// Prior FastTrack Implementations").
//
// Discipline: all VarState fields are *write-protected* by the mutex -
// writes require the lock, reads may happen anywhere. Handlers first run
// optimistically: they read the fields unlocked, compute the intended
// transition, then acquire the lock and validate that (R, W) are unchanged
// before committing; interference triggers a bounded retry and finally a
// fully locked (v1-style) execution. This is exactly the "optimistic
// control mechanism that detects whether any value read from memory has
// been modified prior to updating the analysis state" that made the
// original so hard to maintain - reproduced here as a baseline, not as a
// recommendation.
//
// By default this detector runs the *original FastTrack* rules, i.e. no
// [Read Shared Same Epoch] fast rule and [Write Shared] resets R to the
// bottom epoch. Constructing it with RuleSet::kVerifiedFT applies the
// revised rules instead, which is the E6 ablation (Section 8 observes the
// revised rules do not meaningfully change FT-Mutex/FT-CAS performance).
#pragma once

#include <mutex>

#include "vft/detector_base.h"
#include "vft/spec.h"
#include "vft/sync_var_state.h"

namespace vft {

class FtMutex : public DetectorBase {
 public:
  static constexpr const char* kName = "FT-Mutex";
  static constexpr int kMaxRetries = 3;

  using VarState = SyncVarState;

  explicit FtMutex(RaceCollector* races = nullptr, RuleStats* stats = nullptr,
                   RuleSet rules = RuleSet::kOriginalFastTrack)
      : DetectorBase(races, stats), rules_(rules) {}

  bool read(ThreadState& st, VarState& sx) {
    const Tid t = st.t;
    const Epoch e = st.epoch();
    for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
      const Epoch r = sx.r_nolock();
      if (r == e) {  // [Read Same Epoch], lock-free
        count(Rule::kReadSameEpoch);
        return true;
      }
      if (r.is_shared()) {
        if (rules_ == RuleSet::kVerifiedFT && sx.V.get(t) == e) {
          count(Rule::kReadSharedSameEpoch);  // only with the revised rules
          return true;
        }
        // Original rules: every read-shared access runs the [Read Shared]
        // rule, but the implementation skips the lock when the V[t] := E_t
        // update is a no-op (the unlocked read-shared fast path of the
        // historical FT-Mutex; unlike the VerifiedFT rule it still loads W
        // and runs the write-read check). A stale W here is benign: W only
        // grows, and a concurrent unordered write is caught by that
        // write's own [Shared-Write] check against V[t].
        const Epoch w = sx.w_nolock();
        if (ordered_before(w, st) && sx.V.get(t) == e) {
          count(Rule::kReadShared);
          return true;
        }
        break;  // first read this epoch (or race): commit under the lock
      }
      // Optimistic: compute the exclusive-mode transition unlocked...
      const Epoch w = sx.w_nolock();
      if (!ordered_before(w, st) || !ordered_before(r, st)) {
        break;  // race or share transition: handle under the lock
      }
      // ...then validate and commit under the lock.
      std::scoped_lock lk(sx.mu);
      if (sx.r_locked() == r && sx.w_locked() == w) {
        sx.set_r_locked(e);  // [Read Exclusive]
        count(Rule::kReadExclusive);
        record_read(sx.id, st);  // history: a committed non-same-epoch read
        return true;
      }
      // Interference: another thread committed between our read and the
      // lock. Drop the lock and retry the optimistic path.
    }
    return read_locked(st, sx);
  }

  bool write(ThreadState& st, VarState& sx) {
    const Epoch e = st.epoch();
    for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
      const Epoch w = sx.w_nolock();
      if (w == e) {  // [Write Same Epoch], lock-free
        count(Rule::kWriteSameEpoch);
        return true;
      }
      const Epoch r = sx.r_nolock();
      if (r.is_shared() || !ordered_before(w, st) || !ordered_before(r, st)) {
        break;  // shared mode or race: handle under the lock
      }
      std::scoped_lock lk(sx.mu);
      if (sx.r_locked() == r && sx.w_locked() == w) {
        sx.set_w_locked(e);  // [Write Exclusive]
        count(Rule::kWriteExclusive);
        record_write(sx.id, st);  // history: a committed non-same-epoch write
        return true;
      }
    }
    return write_locked(st, sx);
  }

 private:
  /// Fully locked fallback: v1 semantics with this detector's rule set.
  bool read_locked(ThreadState& st, VarState& sx) {
    const Tid t = st.t;
    const Epoch e = st.epoch();
    std::scoped_lock lk(sx.mu);
    const Epoch r = sx.r_locked();
    if (r == e) {
      count(Rule::kReadSameEpoch);
      return true;
    }
    if (r.is_shared() && sx.V.get(t) == e) {
      // With the original rules this is still a [Read Shared] state update
      // (same stored value), but it must pass through the write check.
      if (rules_ == RuleSet::kVerifiedFT) {
        count(Rule::kReadSharedSameEpoch);
        return true;
      }
    }
    record_read(sx.id, st);  // history: past the same-epoch fast paths
    bool ok = true;
    const Epoch w = sx.w_locked();
    if (!ordered_before(w, st)) {
      report(RaceKind::kWriteRead, sx.id, st, w);
      ok = false;
    }
    if (!r.is_shared()) {
      if (ordered_before(r, st)) {
        sx.set_r_locked(e);
        if (ok) count(Rule::kReadExclusive);
      } else {
        sx.V.set_locked(r.tid(), r);
        sx.V.set_locked(t, e);
        sx.set_r_locked(Epoch::shared());
        if (ok) count(Rule::kReadShare);
      }
    } else {
      sx.V.set_locked(t, e);
      if (ok) count(Rule::kReadShared);
    }
    return ok;
  }

  bool write_locked(ThreadState& st, VarState& sx) {
    const Epoch e = st.epoch();
    std::scoped_lock lk(sx.mu);
    const Epoch w = sx.w_locked();
    if (w == e) {
      count(Rule::kWriteSameEpoch);
      return true;
    }
    record_write(sx.id, st);  // history: past the same-epoch fast path
    bool ok = true;
    if (!ordered_before(w, st)) {
      report(RaceKind::kWriteWrite, sx.id, st, w);
      ok = false;
    }
    const Epoch r = sx.r_locked();
    if (!r.is_shared()) {
      if (!ordered_before(r, st)) {
        report(RaceKind::kReadWrite, sx.id, st, r);
        ok = false;
      }
      sx.set_w_locked(e);
      if (ok) count(Rule::kWriteExclusive);
    } else {
      if (!sx.V.leq_locked(st.V)) {
        report(RaceKind::kSharedWrite, sx.id, st, Epoch());
        ok = false;
      }
      sx.set_w_locked(e);
      if (rules_ == RuleSet::kOriginalFastTrack) {
        // Original [Write Shared]: forget the read history, dropping back
        // to exclusive-epoch mode (the "thrashing" behaviour E5 measures).
        sx.set_r_locked(Epoch());
      }
      if (ok) count(Rule::kWriteShared);
    }
    return ok;
  }

  RuleSet rules_;
};

}  // namespace vft
