// Bounded per-variable access history: the metadata substrate that lets a
// race report carry BOTH racing stacks.
//
// FastTrack-style last-access shadow state (VarState / PackedCell) keeps
// no history: when a race fires, the prior side is a bare epoch t@c and
// only the *current* access has a capturable stack. This layer records a
// small ring of recent slow-path accesses per variable - entries of
// {interned stack id, epoch, tid, access kind, size} - so the detector
// can look the prior epoch back up and attach its stack to the report.
//
// Cost discipline (the SmartTrack argument: per-variable access metadata
// is affordable iff it stays off the fast path):
//   - recording happens ONLY on the slow path: a same-epoch packed-cell
//     hit and a sampled-out access never reach note_access();
//   - stacks are hash-consed into a bounded intern table, so the ring
//     entry is 16 bytes and repeated sites cost one hash lookup;
//   - both the ring count per variable (kRingCapacity) and the total
//     tracked variables / interned stacks are hard-bounded; overflow is
//     counted and degrades to "no prior stack", never to growth.
//
// Lookup correctness under tid-slot reuse (PR 5): a reused thread slot
// *continues* its predecessor's clock (ThreadState(tid, predecessor)
// copies V and increments), so epochs are strictly monotone per slot and
// an exact full-epoch match (t@c, not just t) can never confuse a
// successor thread's entry with its predecessor's.
//
// This layer is also the seam for the SmartTrack/WCP predictive tier:
// a predictive analysis needs exactly this per-variable window of recent
// accesses with stacks and clocks to re-order against.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "vft/epoch.h"
#include "vft/stack.h"

namespace vft::history {

/// What the recorded access did. Race lookups want the *opposite* side:
/// a write-read race looks for the prior write, a read-write race for the
/// prior read.
enum class AccessKind : std::uint8_t { kRead = 0, kWrite = 1 };

inline const char* access_kind_name(AccessKind k) {
  return k == AccessKind::kWrite ? "write" : "read";
}

/// One recorded slow-path access. 16 bytes; stack_id 0 means "no stack
/// was interned" (empty capture or intern table full).
struct Entry {
  std::uint32_t stack_id = 0;
  Epoch epoch;                           ///< full t@c at the access
  Tid tid = 0;
  AccessKind kind = AccessKind::kRead;
  std::uint8_t valid = 0;                ///< 0 = slot never written
  std::uint16_t size = 0;                ///< access size hint (bytes)
};

static_assert(sizeof(Entry) == 16);

/// Fixed ring capacity per variable. Eight entries comfortably cover the
/// gap between a racing pair (the prior access is by construction one of
/// the last few slow-path touches before the current one).
inline constexpr std::size_t kRingCapacity = 8;

/// The per-variable bounded ring. `next` counts pushes forever; the slot
/// index is next % kRingCapacity, so wraparound silently evicts the
/// oldest entry.
struct Ring {
  std::uint32_t next = 0;
  Entry entries[kRingCapacity];

  void push(const Entry& e) {
    entries[next % kRingCapacity] = e;
    ++next;
  }

  /// Newest-to-oldest scan for an exact (epoch, kind) match.
  const Entry* find(Epoch epoch, AccessKind kind) const {
    const std::uint32_t n =
        next < kRingCapacity ? next : static_cast<std::uint32_t>(kRingCapacity);
    for (std::uint32_t back = 1; back <= n; ++back) {
      const Entry& e = entries[(next - back) % kRingCapacity];
      if (e.valid != 0 && e.epoch == epoch && e.kind == kind) return &e;
    }
    return nullptr;
  }
};

/// Hash-consed bounded stack interning. Ids are 1-based; 0 is reserved
/// for "no stack". The table never shrinks and is capped at kMaxStacks
/// distinct stacks; beyond that intern() returns 0 and counts the drop
/// (reports then degrade to a stack-less prior, exactly like pre-history
/// reports).
class StackTable {
 public:
  static constexpr std::size_t kMaxStacks = std::size_t{1} << 16;

  /// Intern `cs`, returning its id (0 for an empty stack or a full table).
  std::uint32_t intern(const CallStack& cs);

  /// Copy the stack for `id` into *out. False for id 0 / unknown ids.
  bool lookup(std::uint32_t id, CallStack* out) const;

  std::size_t size() const;
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_hash_;
  std::vector<CallStack> stacks_;  ///< id - 1 indexes this
  std::atomic<std::uint64_t> dropped_{0};
};

/// The process-wide access history: sharded var -> Ring maps plus the
/// shared stack intern table. All methods are thread-safe; none are on
/// the same-epoch fast path.
class AccessHistory {
 public:
  static constexpr std::size_t kShards = 64;
  /// Hard bound on tracked variables across all shards; beyond it new
  /// variables are dropped (counted), existing rings keep recording.
  static constexpr std::size_t kMaxVars = std::size_t{1} << 20;

  /// Record one slow-path access with an explicit stack (tests, replay).
  void record(std::uint64_t var, Tid tid, Epoch epoch, AccessKind kind,
              std::uint16_t size, const CallStack& stack);

  /// Record the in-flight access: captures the armed event-ctx stack
  /// (capture_event_stack) and the thread's tl_access_size hint.
  void record_current(std::uint64_t var, Tid tid, Epoch epoch, AccessKind kind);

  /// Look up the prior side of a race: the entry for exactly (epoch,
  /// want) on `var`. False when the ring evicted it (or never saw it).
  bool find(std::uint64_t var, Epoch epoch, AccessKind want, Entry* out) const;

  /// Resolve an interned stack id; false for 0 / unknown.
  bool stack_of(std::uint32_t id, CallStack* out) const {
    return stacks_.lookup(id, out);
  }

  /// Drop rings for variables in [addr, addr+size): called from the
  /// free-hint path so recycled heap memory cannot leak a dead
  /// allocation's stacks into a new allocation's report.
  void reset_range(std::uint64_t addr, std::size_t size);

  /// Drop all rings (stack interning survives; ids stay valid).
  void clear();

  std::uint64_t recorded() const { return recorded_.load(std::memory_order_relaxed); }
  std::uint64_t var_drops() const { return var_drops_.load(std::memory_order_relaxed); }
  std::uint64_t stack_drops() const { return stacks_.dropped(); }
  std::size_t interned_stacks() const { return stacks_.size(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, Ring> rings;
  };

  Shard& shard_of(std::uint64_t var) {
    return shards_[(var >> 3) & (kShards - 1)];
  }
  const Shard& shard_of(std::uint64_t var) const {
    return shards_[(var >> 3) & (kShards - 1)];
  }

  Shard shards_[kShards];
  StackTable stacks_;
  std::atomic<std::size_t> var_count_{0};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> var_drops_{0};
};

/// The installed history, or nullptr when the layer is off. Same
/// publication contract as sampling::Gate: install() swaps the pointer,
/// replaced instances are leaked by design (a racing recorder may still
/// hold the old pointer).
AccessHistory* active();
void install(AccessHistory* h);

/// VFT_HISTORY env gate: default ON; "0"/"off"/"false" disables.
bool enabled_from_env();

/// Best-effort access-size hint, set by the session layer's per-access
/// handlers before detector dispatch. Zero when no handler armed it.
extern thread_local std::uint32_t tl_access_size;

/// The detector-side hook: record the in-flight slow-path access. A
/// single predicted-null load when the layer is off. NEVER call this
/// from a same-epoch hit or a sampled-out access.
inline void note_access(std::uint64_t var, Tid tid, Epoch epoch,
                        AccessKind kind) {
  if (AccessHistory* h = active()) h->record_current(var, tid, epoch, kind);
}

}  // namespace vft::history
