// Bounded call-stack capture for race reports.
//
// Capture is fire-on-race only: the race-free fast path never walks a
// stack. What it *does* pay is two thread-local stores at the
// interposition boundary (src/interpose/preload.cpp): every __tsan_*
// access wrapper records its caller's return address and frame address in
// `vft_tl_event_ctx` before forwarding the event. When a race fires
// inside that event, capture_event_stack() starts from the recorded
// frame, so the walk yields *target* frames (the racing access site and
// its callers), never the analysis runtime's own frames - regardless of
// how the runtime itself was compiled.
//
// The walk is a classic frame-pointer chain ([fp] = caller fp,
// [fp+8] = return address on x86-64 and the equivalent layout on
// AArch64), validated hard: monotonically increasing frame addresses,
// pointer alignment, and containment in the calling thread's stack
// mapping (pthread_getattr_np, cached per thread). A target compiled
// without frame pointers degrades gracefully to the one guaranteed frame
// (the boundary return address); the native corpus compiles with
// -fno-omit-frame-pointer so its reports carry full chains.
//
// Depth is capped by VFT_STACK_DEPTH (default 16, max kMaxStackDepth).
// Frames resolve to module+offset via dladdr() only when a *new* error
// context is created (report.h) or a report is written - never per
// occurrence of an already-known race, and never on the access fast path.
#pragma once

#include <cstdint>
#include <string>

#include "vft/event_ctx.h"

namespace vft {

/// Hard upper bound on recorded frames; VFT_STACK_DEPTH can only lower it.
inline constexpr int kMaxStackDepth = 32;

/// A bounded, fixed-size call stack: raw return addresses, innermost
/// (the racing access site) first.
struct CallStack {
  std::uint8_t depth = 0;
  std::uintptr_t pc[kMaxStackDepth] = {};

  bool push(std::uintptr_t p) {
    if (depth >= kMaxStackDepth) return false;
    pc[depth++] = p;
    return true;
  }
  bool empty() const { return depth == 0; }

  friend bool operator==(const CallStack& a, const CallStack& b) {
    if (a.depth != b.depth) return false;
    for (std::uint8_t i = 0; i < a.depth; ++i) {
      if (a.pc[i] != b.pc[i]) return false;
    }
    return true;
  }
};

/// The effective depth cap: VFT_STACK_DEPTH clamped to [1, kMaxStackDepth]
/// (default 16). Read once per process.
int stack_depth_limit();

/// FNV-1a over the raw program counters (process-local identity; the
/// ASLR-stable cross-run key is computed from resolved module+offset
/// frames, see report.h).
std::uint64_t hash_stack(const CallStack& s);

/// Capture the current thread's stack for a race firing inside the
/// in-flight access event. Empty when no interposition boundary armed the
/// event context (wrapper-path and trace-replay callers: their reports
/// stay keyed by variable instead). Never allocates.
CallStack capture_event_stack();

/// One frame resolved for output and suppression matching. `module` is
/// the containing object's path and `offset` the module-relative address
/// (pc - load base): stable across ASLR, exactly what addr2line wants.
/// `symbol` is the nearest *dynamic* symbol when dladdr can see one
/// (static functions need offline symbolization) - good enough for
/// fun: suppression globs on exported functions.
struct ResolvedFrame {
  std::uintptr_t pc = 0;
  std::string module;          ///< empty: resolution failed
  std::uintptr_t offset = 0;   ///< pc when resolution failed
  std::string symbol;          ///< may be empty
  std::uintptr_t sym_offset = 0;
};

/// dladdr-based resolution; off the fast path by construction (new
/// contexts and report writing only).
ResolvedFrame resolve_frame(std::uintptr_t pc);

/// `module` shorn of its directory part, for cross-host context keys.
std::string module_basename(const std::string& module);

}  // namespace vft
