#include "vft/vector_clock.h"

namespace vft {

std::string VectorClock::str() const {
  std::string out = "<";
  for (Tid i = 0; i < size(); ++i) {
    if (i != 0) out += ", ";
    out += get(i).str();
  }
  out += ">";
  return out;
}

}  // namespace vft
