#ifndef _GNU_SOURCE
#define _GNU_SOURCE
#endif

#include "vft/stack.h"

#include <dlfcn.h>
#include <pthread.h>

#include <cstdlib>

#include "vft/fastpath_ctx.h"

extern "C" {
thread_local vft_event_ctx_s vft_tl_event_ctx = {nullptr, nullptr};
thread_local vft_shadow_stack_s vft_tl_shadow_stack = {};
thread_local vft_fastpath_s vft_tl_fastpath = {};
// Starts at 1 so a zero-initialized thread descriptor is always stale.
uint64_t vft_g_fastpath_gen = 1;
}

namespace vft {
namespace {

/// The calling thread's stack mapping [lo, hi), from pthread_getattr_np,
/// resolved lazily and cached per thread. Queried only on the race path.
struct StackBounds {
  std::uintptr_t lo = 0;
  std::uintptr_t hi = 0;
  bool resolved = false;
};
thread_local StackBounds tl_bounds;

StackBounds thread_stack_bounds() {
  StackBounds& b = tl_bounds;
  if (!b.resolved) {
    b.resolved = true;
    pthread_attr_t attr;
    if (pthread_getattr_np(pthread_self(), &attr) == 0) {
      void* addr = nullptr;
      std::size_t size = 0;
      if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
        b.lo = reinterpret_cast<std::uintptr_t>(addr);
        b.hi = b.lo + size;
      }
      pthread_attr_destroy(&attr);
    }
  }
  return b;
}

}  // namespace

int stack_depth_limit() {
  static const int limit = [] {
    int d = 16;
    if (const char* env = std::getenv("VFT_STACK_DEPTH");
        env != nullptr && env[0] != '\0') {
      d = std::atoi(env);
    }
    if (d < 1) d = 1;
    if (d > kMaxStackDepth) d = kMaxStackDepth;
    return d;
  }();
  return limit;
}

std::uint64_t hash_stack(const CallStack& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t i = 0; i < s.depth; ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(s.pc[i]);
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

namespace {

/// Fallback caller frames from the __tsan_func_entry/exit shadow stack
/// (vft/event_ctx.h), innermost first. Used when the frame-pointer walk
/// found no caller - a target compiled without frame pointers leaves the
/// fp chain dead, but its instrumented prologues still recorded every
/// live call site.
void append_shadow_frames(CallStack& cs, int limit) {
  const vft_shadow_stack_s& ss = vft_tl_shadow_stack;
  uint32_t top = ss.depth;
  if (top > VFT_SHADOW_STACK_MAX) top = VFT_SHADOW_STACK_MAX;
  for (uint32_t i = top; i != 0 && cs.depth < limit; --i) {
    const auto pc = reinterpret_cast<std::uintptr_t>(ss.pc[i - 1]);
    if (pc < 4096) continue;
    // The innermost shadow entry is the call into the function holding
    // the access; if the fp walk already produced that frame, skip it.
    if (cs.depth > 0 && cs.pc[cs.depth - 1] == pc) continue;
    cs.push(pc);
  }
}

}  // namespace

CallStack capture_event_stack() {
  CallStack cs;
  const vft_event_ctx_s ctx = vft_tl_event_ctx;
  const int limit = stack_depth_limit();
  if (ctx.pc == nullptr) {
    // No interposition boundary armed the event context (wrapper-path
    // callers, or a prior-side capture after the boundary already
    // cleared it). The __tsan_func_entry/exit shadow stack still knows
    // the live call chain, so prior-side history entries degrade to the
    // instrumented callers instead of to an empty stack.
    append_shadow_frames(cs, limit);
    return cs;
  }
  cs.push(reinterpret_cast<std::uintptr_t>(ctx.pc));
  if (ctx.fp == nullptr) {
    append_shadow_frames(cs, limit);
    return cs;
  }

  // Walk caller frames from the boundary wrapper's frame. Every frame
  // address must stay inside this thread's stack mapping and strictly
  // increase, so each dereference is of live, mapped stack memory even
  // when a non-frame-pointer target left garbage in the chain.
  StackBounds bounds = thread_stack_bounds();
  std::uintptr_t fp = reinterpret_cast<std::uintptr_t>(ctx.fp);
  if (bounds.hi == 0) {
    // No mapping info: allow a tight window above the known-live frame.
    bounds.lo = fp;
    bounds.hi = fp + (64u << 10);
  }
  auto valid = [&bounds](std::uintptr_t p) {
    return p >= bounds.lo && p + 2 * sizeof(std::uintptr_t) <= bounds.hi &&
           (p & (sizeof(std::uintptr_t) - 1)) == 0;
  };
  if (!valid(fp)) {
    append_shadow_frames(cs, limit);
    return cs;
  }
  // [fp+8] here is the return into the target - ctx.pc again - so only
  // the *next* frame up contributes a new caller PC.
  fp = reinterpret_cast<const std::uintptr_t*>(fp)[0];
  std::uintptr_t prev = reinterpret_cast<std::uintptr_t>(ctx.fp);
  while (cs.depth < limit && valid(fp) && fp > prev) {
    const auto* frame = reinterpret_cast<const std::uintptr_t*>(fp);
    const std::uintptr_t ret = frame[1];
    if (ret < 4096) break;  // null page: end of chain / garbage
    cs.push(ret);
    prev = fp;
    fp = frame[0];
  }
  // An fp walk that never left the boundary frame means the target has no
  // frame-pointer chain; the shadow stack still knows the callers.
  if (cs.depth < 2) append_shadow_frames(cs, limit);
  return cs;
}

ResolvedFrame resolve_frame(std::uintptr_t pc) {
  ResolvedFrame f;
  f.pc = pc;
  f.offset = pc;
  Dl_info info;
  // Resolve pc-1: a captured frame is a *return* address, one past the
  // call; the byte before it is inside the calling instruction and
  // therefore inside the right module/symbol even at function tails.
  if (pc != 0 && dladdr(reinterpret_cast<void*>(pc - 1), &info) != 0 &&
      info.dli_fname != nullptr) {
    f.module = info.dli_fname;
    f.offset = pc - reinterpret_cast<std::uintptr_t>(info.dli_fbase);
    if (info.dli_sname != nullptr) {
      f.symbol = info.dli_sname;
      f.sym_offset = pc - reinterpret_cast<std::uintptr_t>(info.dli_saddr);
    }
  }
  return f;
}

std::string module_basename(const std::string& module) {
  const std::size_t slash = module.find_last_of('/');
  return slash == std::string::npos ? module : module.substr(slash + 1);
}

}  // namespace vft
