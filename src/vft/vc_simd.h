// SIMD kernels for the vector-clock inner loops (leq / join / copy).
//
// Why raw 32-bit compares are correct: every clock this repo stores obeys
// the well-formedness invariant tid(V[t]) == t, so two clocks' slot-t
// epochs always carry the same tid in the top kTidBits bits. For epochs
// with equal tids,
//
//   leq(a, b)  =  bits(a) <= bits(b)   (unsigned)
//   max(a, b)  =  from_bits(max(bits(a), bits(b)))
//
// and the SHARED sentinel never appears inside a VectorClock (set()
// asserts it away). That makes the per-slot loops of VectorClock::leq/
// join/copy element-wise unsigned u32 operations with no cross-lane
// dependencies - exactly the shape SSE2/AVX2 eat: 4 or 8 slots per
// instruction instead of one compare-and-branch per slot.
//
// Dispatch: a single resolution point picks the widest ISA the CPU (and
// an optional VFT_VC_ISA=scalar|sse2|avx2 env override, read once) is
// able to run; the per-ISA entry points stay exported so the differential
// test (tests/vector_clock_simd_test.cpp) and bench_hotpath can pit every
// variant against the scalar reference on the same inputs. SSE2 is the
// x86-64 baseline; the AVX2 bodies are compiled with a function-level
// target attribute, so a plain -O2 build still contains them and enables
// them at runtime via cpuid. Non-x86 builds fall back to scalar.
//
// The kernels operate on raw std::uint32_t arrays (the bit-carrier of
// Epoch): callers reinterpret their Epoch storage, which static_asserts
// in vector_clock.h guarantee is layout-identical.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vft::simd {

enum class Isa : std::uint8_t { kScalar, kSse2, kAvx2 };

/// The ISA the dispatched kernels below actually run (after the cpuid
/// probe and the VFT_VC_ISA override).
Isa active_isa();

const char* isa_name(Isa isa);

/// True when `isa`'s kernels can run on this machine (compile target and
/// cpuid both permit it).
bool isa_available(Isa isa);

// --- Dispatched kernels (resolved once, then direct calls) -----------------

/// all i < n: a[i] <= b[i], unsigned.
bool leq_all(const std::uint32_t* a, const std::uint32_t* b, std::size_t n);

/// dst[i] := max(dst[i], src[i]), unsigned, for i < n.
void join_max(std::uint32_t* dst, const std::uint32_t* src, std::size_t n);

/// dst[0, n) := src[0, n) (memcpy; here so all three hot loops share the
/// one dispatch surface and the differential test covers them uniformly).
void copy_words(std::uint32_t* dst, const std::uint32_t* src, std::size_t n);

/// all i < n: (a[i] & mask) == 0. Used for the leq tail ("components past
/// the other clock's length must be at bottom", mask = the clock bits).
bool all_masked_zero(const std::uint32_t* a, std::size_t n, std::uint32_t mask);

// --- Packed-cell range kernels ---------------------------------------------
//
// Range interposition (memcpy/memset/str* wrappers) resolves whole runs of
// packed shadow cells at once: count the leading cells of `cells[0, n)`
// that the inline same-epoch fast path would accept for this thread's
// epoch. A read matches when the cell's R half (high 32 bits) equals
// `epoch_bits`; a write matches when the W half (low 32 bits) equals it
// AND the R half is not all-ones (the ESCALATING/ESCALATED sentinels park
// there, and the ESCALATED W half is 1 = tid 0 @ clock 1 - the same
// collision the scalar fast path guards against). The SIMD bodies check
// 2 (SSE2) or 4 (AVX2) cells per iteration with plain vector loads; a
// failed block is re-resolved with the scalar kernel's atomic acquire
// loads, so the returned prefix is always exact. A torn racy read can
// only shorten the prefix (the word then takes the scalar spill-out),
// never extend it past a non-matching cell.
//
// Under ThreadSanitizer builds the dispatcher pins these to the scalar
// variant: raw vector loads over the std::atomic cell array would be
// flagged even though the verdict tolerates tearing.

std::size_t cells_match_read_prefix(const std::uint64_t* cells, std::size_t n,
                                    std::uint32_t epoch_bits);
std::size_t cells_match_write_prefix(const std::uint64_t* cells, std::size_t n,
                                     std::uint32_t epoch_bits);

// --- Per-ISA entry points (testing / benchmarking) -------------------------
// Calling an entry point whose ISA isa_available() rejects is undefined
// (illegal-instruction trap); guard with isa_available first.

bool leq_all_scalar(const std::uint32_t* a, const std::uint32_t* b, std::size_t n);
void join_max_scalar(std::uint32_t* dst, const std::uint32_t* src, std::size_t n);
bool all_masked_zero_scalar(const std::uint32_t* a, std::size_t n, std::uint32_t mask);

bool leq_all_sse2(const std::uint32_t* a, const std::uint32_t* b, std::size_t n);
void join_max_sse2(std::uint32_t* dst, const std::uint32_t* src, std::size_t n);
bool all_masked_zero_sse2(const std::uint32_t* a, std::size_t n, std::uint32_t mask);

bool leq_all_avx2(const std::uint32_t* a, const std::uint32_t* b, std::size_t n);
void join_max_avx2(std::uint32_t* dst, const std::uint32_t* src, std::size_t n);
bool all_masked_zero_avx2(const std::uint32_t* a, std::size_t n, std::uint32_t mask);

std::size_t cells_match_read_prefix_scalar(const std::uint64_t* cells,
                                           std::size_t n,
                                           std::uint32_t epoch_bits);
std::size_t cells_match_write_prefix_scalar(const std::uint64_t* cells,
                                            std::size_t n,
                                            std::uint32_t epoch_bits);
std::size_t cells_match_read_prefix_sse2(const std::uint64_t* cells,
                                         std::size_t n,
                                         std::uint32_t epoch_bits);
std::size_t cells_match_write_prefix_sse2(const std::uint64_t* cells,
                                          std::size_t n,
                                          std::uint32_t epoch_bits);
std::size_t cells_match_read_prefix_avx2(const std::uint64_t* cells,
                                         std::size_t n,
                                         std::uint32_t epoch_bits);
std::size_t cells_match_write_prefix_avx2(const std::uint64_t* cells,
                                          std::size_t n,
                                          std::uint32_t epoch_bits);

}  // namespace vft::simd
