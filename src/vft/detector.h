// Umbrella header and compile-time plumbing for the detector family.
//
// A Detector is any type exposing:
//   - nested VarState (default-constructible, with a public `id` field),
//   - bool read(ThreadState&, VarState&), bool write(...),
//   - void acquire/release(ThreadState&, LockState&),
//   - void fork/join(ThreadState&, ThreadState&),
//   - a constructor (RaceCollector*, RuleStats*),
//   - static constexpr const char* kName.
// Handlers return false iff they detected (and reported) a race.
//
// Kernels, benches, and the trace replayer are templates over this concept,
// so the per-access dispatch is static - the C++ analogue of RoadRunner
// inlining tool fast paths into the target (Section 7).
#pragma once

#include <concepts>

#include "vft/detector_base.h"
#include "vft/djit.h"
#include "vft/ft_cas.h"
#include "vft/ft_mutex.h"
#include "vft/vft_v1.h"
#include "vft/vft_v15.h"
#include "vft/vft_v2.h"

namespace vft {

template <typename D>
concept Detector = requires(D d, ThreadState& st, ThreadState& su,
                            LockState& sm, typename D::VarState& sx) {
  { d.read(st, sx) } -> std::same_as<bool>;
  { d.write(st, sx) } -> std::same_as<bool>;
  d.acquire(st, sm);
  d.release(st, sm);
  d.fork(st, su);
  d.join(st, su);
  { D::kName } -> std::convertible_to<const char*>;
};

static_assert(Detector<VftV1>);
static_assert(Detector<VftV15>);
static_assert(Detector<VftV2>);
static_assert(Detector<FtMutex>);
static_assert(Detector<FtCas>);
static_assert(Detector<Djit>);

/// Invoke fn once per detector type, passing a freshly constructed
/// detector. fn receives (detector&) and must be a generic callable.
/// Used by differential tests to cover the whole family.
template <typename Fn>
void for_each_detector(RaceCollector* races, RuleStats* stats, Fn&& fn) {
  {
    VftV1 d(races, stats);
    fn(d);
  }
  {
    VftV15 d(races, stats);
    fn(d);
  }
  {
    VftV2 d(races, stats);
    fn(d);
  }
  {
    FtMutex d(races, stats);
    fn(d);
  }
  {
    FtCas d(races, stats);
    fn(d);
  }
  {
    Djit d(races, stats);
    fn(d);
  }
}

}  // namespace vft
