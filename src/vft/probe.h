// Uniform read-only access to each detector's VarState representation
// (epoch detectors only). Used by the Checked<> invariant decorator and by
// the differential tests; kept out of the detectors themselves so the
// production types stay exactly shaped like the paper's.
#pragma once

#include "sched/sched_point.h"
#include "vft/djit.h"
#include "vft/ft_cas.h"
#include "vft/sync_var_state.h"
#include "vft/vft_v1.h"

namespace vft {

inline Epoch probe_r(VftV1::VarState& v) { return v.R; }
inline Epoch probe_w(VftV1::VarState& v) { return v.W; }
inline Epoch probe_vslot(VftV1::VarState& v, Tid t) { return v.V.get(t); }

inline Epoch probe_r(SyncVarState& v) {
  return v.R.load(std::memory_order_acquire);
}
inline Epoch probe_w(SyncVarState& v) {
  return v.W.load(std::memory_order_acquire);
}
inline Epoch probe_vslot(SyncVarState& v, Tid t) { return v.V.get(t); }

inline Epoch probe_r(FtCas::VarState& v) {
  return FtCas::VarState::unpack_r(v.rw.load(std::memory_order_acquire));
}
inline Epoch probe_w(FtCas::VarState& v) {
  return FtCas::VarState::unpack_w(v.rw.load(std::memory_order_acquire));
}
inline Epoch probe_vslot(FtCas::VarState& v, Tid t) { return v.V.get(t); }

// State injection (used by the dynamic-granularity shadow when it splits a
// granule: the fresh element states inherit the granule's epoch history so
// no pre-split access is forgotten). Caller must ensure no concurrent
// handler is running on the target state. SHARED read histories cannot be
// injected generically; dynamic granularity splits *before* a second
// thread's access, so the granule is still in epoch mode at split time.

inline void inject(VftV1::VarState& v, Epoch r, Epoch w) {
  VFT_ASSERT(!r.is_shared());
  v.R = r;
  v.W = w;
}
inline void inject(SyncVarState& v, Epoch r, Epoch w) {
  VFT_ASSERT(!r.is_shared());
  VFT_SCHED_POINT(kStore, &v.R);
  v.R.store(r, std::memory_order_release);
  VFT_SCHED_POINT(kStore, &v.W);
  v.W.store(w, std::memory_order_release);
}
inline void inject(FtCas::VarState& v, Epoch r, Epoch w) {
  VFT_ASSERT(!r.is_shared());
  VFT_SCHED_POINT(kStore, &v.rw);
  v.rw.store(FtCas::VarState::pack(r, w), std::memory_order_release);
}
inline void inject(Djit::VarState& v, Epoch r, Epoch w) {
  // DJIT+ keeps full vector clocks; an epoch-mode history {r, w} lands as
  // the singleton clock entries of the recording threads. Clock-0 epochs
  // are bottom (the clock's implicit default) and need no slot.
  VFT_ASSERT(!r.is_shared());
  if (r.clock() > 0) v.Rvc.set(r.tid(), r);
  if (w.clock() > 0) v.Wvc.set(w.tid(), w);
}

/// True for VarState types the probes understand (excludes DJIT+, which
/// has no epoch representation).
template <typename VS>
concept ProbeableVarState = requires(VS& v, Epoch e) {
  { probe_r(v) } -> std::same_as<Epoch>;
  { probe_w(v) } -> std::same_as<Epoch>;
  inject(v, e, e);
};

}  // namespace vft
