// VerifiedFT-v1 (Figure 3): the basic concurrent implementation.
//
// Every read/write handler body executes under the VarState's mutex, so
// all VarState fields are plain (lock-protected) data and the plain
// VectorClock suffices. Serializability is the textbook reduction pattern
// R (acquire) . B* (race-free accesses) . L (release).
//
// This variant is correct but slow (the paper measures ~15x overhead):
// every access pays a lock round-trip, and concurrent reads of read-shared
// data serialize on sx's mutex. It is the baseline against which v1.5/v2's
// fast-path unlocking is measured (DESIGN.md experiments E1/E4).
#pragma once

#include <mutex>

#include "vft/detector_base.h"
#include "vft/vector_clock.h"

namespace vft {

class VftV1 : public DetectorBase {
 public:
  static constexpr const char* kName = "VerifiedFT-v1";

  struct VarState {
    std::mutex mu;
    Epoch R;  // bottom initially; SHARED once reads are unordered
    Epoch W;  // bottom initially
    VectorClock V;
    std::uint64_t id = 0;  // variable identity for race reports
  };

  explicit VftV1(RaceCollector* races = nullptr, RuleStats* stats = nullptr)
      : DetectorBase(races, stats) {}

  /// Read handler (Figure 3 lines 60-82). Returns false iff a race was
  /// detected (and reported; checking continues per Section 7).
  bool read(ThreadState& st, VarState& sx) {
    const Tid t = st.t;
    const Epoch e = st.epoch();
    std::scoped_lock lk(sx.mu);
    const Epoch r = sx.R;
    if (r == e) {  // [Read Same Epoch]
      count(Rule::kReadSameEpoch);
      return true;
    }
    if (r.is_shared() && sx.V.get(t) == e) {  // [Read Shared Same Epoch]
      count(Rule::kReadSharedSameEpoch);
      return true;
    }
    record_read(sx.id, st);  // history: past the same-epoch fast paths
    bool ok = true;
    const Epoch w = sx.W;
    if (!ordered_before(w, st)) {  // [Write-Read Race]
      report(RaceKind::kWriteRead, sx.id, st, w);
      ok = false;  // fail-over: fall through and record the read anyway
    }
    if (!r.is_shared()) {
      if (ordered_before(r, st)) {
        sx.R = e;  // [Read Exclusive]
        if (ok) count(Rule::kReadExclusive);
      } else {
        sx.V.set(r.tid(), r);  // [Read Share]
        sx.V.set(t, e);
        sx.R = Epoch::shared();
        if (ok) count(Rule::kReadShare);
      }
    } else {
      sx.V.set(t, e);  // [Read Shared]
      if (ok) count(Rule::kReadShared);
    }
    return ok;
  }

  /// Write handler (Figure 3 lines 84-100).
  bool write(ThreadState& st, VarState& sx) {
    const Tid t = st.t;
    (void)t;
    const Epoch e = st.epoch();
    std::scoped_lock lk(sx.mu);
    const Epoch w = sx.W;
    if (w == e) {  // [Write Same Epoch]
      count(Rule::kWriteSameEpoch);
      return true;
    }
    record_write(sx.id, st);  // history: past the same-epoch fast path
    bool ok = true;
    if (!ordered_before(w, st)) {  // [Write-Write Race]
      report(RaceKind::kWriteWrite, sx.id, st, w);
      ok = false;
    }
    const Epoch r = sx.R;
    if (!r.is_shared()) {
      if (!ordered_before(r, st)) {  // [Read-Write Race]
        report(RaceKind::kReadWrite, sx.id, st, r);
        ok = false;
      }
      sx.W = e;  // [Write Exclusive]
      if (ok) count(Rule::kWriteExclusive);
    } else {
      if (!sx.V.leq(st.V)) {  // [Shared-Write Race] (slow VC comparison)
        report(RaceKind::kSharedWrite, sx.id, st, first_unordered(sx.V, st.V));
        ok = false;
      }
      sx.W = e;  // [Write Shared]; VerifiedFT keeps R = SHARED (Section 3)
      if (ok) count(Rule::kWriteShared);
    }
    return ok;
  }

 protected:
  /// For shared-write race reports: the first read epoch not ordered
  /// before the writer's clock.
  static Epoch first_unordered(const VectorClock& reads,
                               const VectorClock& threadVC) {
    std::uint32_t n = std::max(reads.size(), threadVC.size());
    for (Tid i = 0; i < n; ++i) {
      if (!leq(reads.get(i), threadVC.get(i))) return reads.get(i);
    }
    return Epoch();
  }
};

}  // namespace vft
