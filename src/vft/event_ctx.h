/* The per-thread interposition-boundary context for race stack capture.
 *
 * Written by the __tsan_* access wrappers (two plain stores: the
 * instrumented call site's return address and the wrapper's own frame
 * address) immediately before forwarding an access event; consumed by
 * capture_event_stack() (vft/stack.h) when a race fires during the
 * access it describes, and cleared by the runtime afterwards so a stale
 * boundary can never describe the wrong access.
 *
 * Plain C so the preload library and foreign bindings can write it with
 * no C++ dependency. Shared by vft/stack.h and abi/vft_abi.h; defined in
 * vft/stack.cpp.
 */
#ifndef VFT_VFT_EVENT_CTX_H_
#define VFT_VFT_EVENT_CTX_H_

#include <stdint.h>

#ifdef __cplusplus
#define VFT_EVENT_CTX_TLS thread_local
extern "C" {
#else
#define VFT_EVENT_CTX_TLS __thread
#endif

typedef struct vft_event_ctx_s {
  const void* pc; /* return address into the target (the access site) */
  const void* fp; /* the boundary wrapper's frame address */
} vft_event_ctx_s;

extern VFT_EVENT_CTX_TLS vft_event_ctx_s vft_tl_event_ctx;

/* Per-thread shadow call stack, maintained by __tsan_func_entry/exit
 * (the compiler instruments every function's prologue/epilogue with the
 * call site's return address). capture_event_stack() falls back to it
 * when the frame-pointer walk comes up empty - targets compiled with
 * -fomit-frame-pointer still get race stacks this way. depth keeps
 * counting past the cap so deep recursion stays balanced; only the
 * outermost VFT_SHADOW_STACK_MAX call sites are recorded. */
#define VFT_SHADOW_STACK_MAX 64

typedef struct vft_shadow_stack_s {
  uint32_t depth; /* live frames; may exceed VFT_SHADOW_STACK_MAX */
  const void* pc[VFT_SHADOW_STACK_MAX];
} vft_shadow_stack_s;

extern VFT_EVENT_CTX_TLS vft_shadow_stack_s vft_tl_shadow_stack;

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* VFT_VFT_EVENT_CTX_H_ */
