#include "vft/vc_simd.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define VFT_SIMD_X86 1
#include <immintrin.h>
#else
#define VFT_SIMD_X86 0
#endif

namespace vft::simd {

// --- Scalar reference -------------------------------------------------------

bool leq_all_scalar(const std::uint32_t* a, const std::uint32_t* b,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

void join_max_scalar(std::uint32_t* dst, const std::uint32_t* src,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (src[i] > dst[i]) dst[i] = src[i];
  }
}

bool all_masked_zero_scalar(const std::uint32_t* a, std::size_t n,
                            std::uint32_t mask) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & mask) != 0) return false;
  }
  return true;
}

// The scalar cell kernels use the same acquire loads PackedCell::load_bits
// performs, so they are the exactness reference (and the TSan-safe
// dispatch target) for the vector bodies below.
std::size_t cells_match_read_prefix_scalar(const std::uint64_t* cells,
                                           std::size_t n,
                                           std::uint32_t epoch_bits) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t c = __atomic_load_n(&cells[i], __ATOMIC_ACQUIRE);
    if (static_cast<std::uint32_t>(c >> 32) != epoch_bits) return i;
  }
  return n;
}

std::size_t cells_match_write_prefix_scalar(const std::uint64_t* cells,
                                            std::size_t n,
                                            std::uint32_t epoch_bits) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t c = __atomic_load_n(&cells[i], __ATOMIC_ACQUIRE);
    if (static_cast<std::uint32_t>(c) != epoch_bits ||
        static_cast<std::uint32_t>(c >> 32) == 0xFFFFFFFFu) {
      return i;
    }
  }
  return n;
}

#if VFT_SIMD_X86

// --- SSE2 (x86-64 baseline) -------------------------------------------------
//
// SSE2 has no unsigned 32-bit compare or max; the standard sign-flip trick
// (xor with 0x80000000) turns unsigned order into signed order, for which
// pcmpgtd exists.

namespace {
inline __m128i flip_sign128(__m128i v) {
  return _mm_xor_si128(v, _mm_set1_epi32(static_cast<int>(0x80000000u)));
}
}  // namespace

bool leq_all_sse2(const std::uint32_t* a, const std::uint32_t* b,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    // a > b (unsigned) in any lane -> violation.
    const __m128i gt = _mm_cmpgt_epi32(flip_sign128(va), flip_sign128(vb));
    if (_mm_movemask_epi8(gt) != 0) return false;
  }
  return leq_all_scalar(a + i, b + i, n - i);
}

void join_max_sse2(std::uint32_t* dst, const std::uint32_t* src,
                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vd =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i vs =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d_gt = _mm_cmpgt_epi32(flip_sign128(vd), flip_sign128(vs));
    // max = (dst & (dst>src)) | (src & ~(dst>src)).
    const __m128i mx =
        _mm_or_si128(_mm_and_si128(d_gt, vd), _mm_andnot_si128(d_gt, vs));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), mx);
  }
  join_max_scalar(dst + i, src + i, n - i);
}

bool all_masked_zero_sse2(const std::uint32_t* a, std::size_t n,
                          std::uint32_t mask) {
  const __m128i vm = _mm_set1_epi32(static_cast<int>(mask));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i hit = _mm_cmpeq_epi32(_mm_and_si128(va, vm),
                                        _mm_setzero_si128());
    if (_mm_movemask_epi8(hit) != 0xFFFF) return false;
  }
  return all_masked_zero_scalar(a + i, n - i, mask);
}

// Packed-cell prefixes, 2 cells (one xmm) per iteration. Each 64-bit cell
// holds {R = high dword, W = low dword}; pcmpeqd gives per-dword equality,
// and movemask_epi8 exposes it as 4 bits per dword: bits 0xF0F0 select the
// R halves of both cells, 0x0F0F the W halves. The vector loads are plain
// (non-atomic) on purpose - a failed block is re-resolved with the scalar
// kernel's acquire loads, so tearing can only shorten the returned prefix
// (see vc_simd.h).

std::size_t cells_match_read_prefix_sse2(const std::uint64_t* cells,
                                         std::size_t n,
                                         std::uint32_t epoch_bits) {
  const __m128i ve = _mm_set1_epi32(static_cast<int>(epoch_bits));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cells + i));
    const __m128i eq = _mm_cmpeq_epi32(v, ve);
    if ((_mm_movemask_epi8(eq) & 0xF0F0) != 0xF0F0) {
      return i + cells_match_read_prefix_scalar(cells + i, 2, epoch_bits);
    }
  }
  return i + cells_match_read_prefix_scalar(cells + i, n - i, epoch_bits);
}

std::size_t cells_match_write_prefix_sse2(const std::uint64_t* cells,
                                          std::size_t n,
                                          std::uint32_t epoch_bits) {
  const __m128i ve = _mm_set1_epi32(static_cast<int>(epoch_bits));
  std::size_t i = 0;
  if (epoch_bits > 1) {
    // The sentinel family is {ESCALATING: W = 0, ESCALATED: W = 1}, and a
    // live W half can only collide with it when the epoch itself is 0 or
    // 1 (tid 0 in its first clocks). For every other epoch the W-lane
    // match alone excludes sentinels, so the per-block sentinel compare
    // hoists out of the loop entirely.
    for (; i + 2 <= n; i += 2) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cells + i));
      const int eq = _mm_movemask_epi8(_mm_cmpeq_epi32(v, ve));
      if ((eq & 0x0F0F) != 0x0F0F) {
        return i + cells_match_write_prefix_scalar(cells + i, 2, epoch_bits);
      }
    }
    return i + cells_match_write_prefix_scalar(cells + i, n - i, epoch_bits);
  }
  const __m128i ones = _mm_set1_epi32(-1);
  for (; i + 2 <= n; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cells + i));
    const int eq = _mm_movemask_epi8(_mm_cmpeq_epi32(v, ve));
    // An R half of all-ones is the ESCALATING/ESCALATED sentinel family;
    // the epoch match on W alone would accept ESCALATED (W = 1).
    const int sent = _mm_movemask_epi8(_mm_cmpeq_epi32(v, ones));
    if ((eq & 0x0F0F) != 0x0F0F || (sent & 0xF0F0) != 0) {
      return i + cells_match_write_prefix_scalar(cells + i, 2, epoch_bits);
    }
  }
  return i + cells_match_write_prefix_scalar(cells + i, n - i, epoch_bits);
}

// --- AVX2 (compiled via target attribute, enabled by cpuid) -----------------
//
// Every exit that can lead to non-VEX SSE code runs _mm256_zeroupper()
// first. GCC inserts vzeroupper on plain returns but NOT on the sibcall
// (tail-jump) into the SSE2 helpers, and leq_all_sse2 executes a non-VEX
// movdqa before its length check: delegating with dirty ymm uppers makes
// that one instruction pay the full AVX->SSE state-transition penalty
// (measured ~135 ns per call on Skylake-SP - 40x the kernel itself).

__attribute__((target("avx2"))) bool leq_all_avx2(const std::uint32_t* a,
                                                  const std::uint32_t* b,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // AVX2 has unsigned max: a <= b per-lane iff max(a, b) == b.
    const __m256i ok = _mm256_cmpeq_epi32(_mm256_max_epu32(va, vb), vb);
    if (_mm256_movemask_epi8(ok) != -1) {
      _mm256_zeroupper();
      return false;
    }
  }
  _mm256_zeroupper();
  return leq_all_sse2(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) void join_max_avx2(std::uint32_t* dst,
                                                   const std::uint32_t* src,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_max_epu32(vd, vs));
  }
  _mm256_zeroupper();
  join_max_sse2(dst + i, src + i, n - i);
}

__attribute__((target("avx2"))) bool all_masked_zero_avx2(
    const std::uint32_t* a, std::size_t n, std::uint32_t mask) {
  const __m256i vm = _mm256_set1_epi32(static_cast<int>(mask));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    if (!_mm256_testz_si256(va, vm)) {
      _mm256_zeroupper();
      return false;
    }
  }
  _mm256_zeroupper();
  return all_masked_zero_sse2(a + i, n - i, mask);
}

// The AVX2 kernels check 8 cells (two ymm vectors) per iteration and fold
// the two per-vector equality masks into a single movemask with a vpand:
// an R-lane bit survives the AND only if the lane matched in BOTH vectors,
// so one branch covers the whole 8-cell block. On the race-free bulk-copy
// path this halves the per-cell loop overhead versus one movemask+branch
// per vector; a failed block is re-resolved scalar, which also pins down
// the exact prefix length the combined mask can't express.

__attribute__((target("avx2"))) std::size_t cells_match_read_prefix_avx2(
    const std::uint64_t* cells, std::size_t n, std::uint32_t epoch_bits) {
  const __m256i ve = _mm256_set1_epi32(static_cast<int>(epoch_bits));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm_prefetch(reinterpret_cast<const char*>(cells + i) + 512,
                 _MM_HINT_T0);
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cells + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cells + i + 4));
    const __m256i eq = _mm256_and_si256(_mm256_cmpeq_epi32(v0, ve),
                                        _mm256_cmpeq_epi32(v1, ve));
    if ((_mm256_movemask_epi8(eq) & static_cast<int>(0xF0F0F0F0u)) !=
        static_cast<int>(0xF0F0F0F0u)) {
      _mm256_zeroupper();
      return i + cells_match_read_prefix_scalar(cells + i, 8, epoch_bits);
    }
  }
  _mm256_zeroupper();
  return i + cells_match_read_prefix_sse2(cells + i, n - i, epoch_bits);
}

__attribute__((target("avx2"))) std::size_t cells_match_write_prefix_avx2(
    const std::uint64_t* cells, std::size_t n, std::uint32_t epoch_bits) {
  const __m256i ve = _mm256_set1_epi32(static_cast<int>(epoch_bits));
  std::size_t i = 0;
  if (epoch_bits > 1) {
    // Sentinel compare hoisted (see the SSE2 kernel): W in {0, 1} marks
    // ESCALATING/ESCALATED, so for epoch_bits > 1 the W-lane match alone
    // excludes sentinels and the loop is as lean as the read kernel's.
    for (; i + 8 <= n; i += 8) {
      _mm_prefetch(reinterpret_cast<const char*>(cells + i) + 512,
                   _MM_HINT_T0);
      const __m256i v0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cells + i));
      const __m256i v1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cells + i + 4));
      const __m256i eq = _mm256_and_si256(_mm256_cmpeq_epi32(v0, ve),
                                          _mm256_cmpeq_epi32(v1, ve));
      if ((_mm256_movemask_epi8(eq) & 0x0F0F0F0F) != 0x0F0F0F0F) {
        _mm256_zeroupper();
        return i + cells_match_write_prefix_scalar(cells + i, 8, epoch_bits);
      }
    }
    _mm256_zeroupper();
    return i + cells_match_write_prefix_sse2(cells + i, n - i, epoch_bits);
  }
  const __m256i ones = _mm256_set1_epi32(-1);
  for (; i + 8 <= n; i += 8) {
    _mm_prefetch(reinterpret_cast<const char*>(cells + i) + 512,
                 _MM_HINT_T0);
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cells + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cells + i + 4));
    // W-epoch match must hold in both vectors (AND); the sentinel R half
    // must appear in neither (OR), since all-ones marks ESCALATING /
    // ESCALATED and the W-only epoch match would accept ESCALATED (W = 1).
    const int eq = _mm256_movemask_epi8(_mm256_and_si256(
        _mm256_cmpeq_epi32(v0, ve), _mm256_cmpeq_epi32(v1, ve)));
    const int sent = _mm256_movemask_epi8(_mm256_or_si256(
        _mm256_cmpeq_epi32(v0, ones), _mm256_cmpeq_epi32(v1, ones)));
    if ((eq & 0x0F0F0F0F) != 0x0F0F0F0F ||
        (sent & static_cast<int>(0xF0F0F0F0u)) != 0) {
      _mm256_zeroupper();
      return i + cells_match_write_prefix_scalar(cells + i, 8, epoch_bits);
    }
  }
  _mm256_zeroupper();
  return i + cells_match_write_prefix_sse2(cells + i, n - i, epoch_bits);
}

#else  // !VFT_SIMD_X86: the SSE2/AVX2 names alias the scalar reference.

bool leq_all_sse2(const std::uint32_t* a, const std::uint32_t* b,
                  std::size_t n) {
  return leq_all_scalar(a, b, n);
}
void join_max_sse2(std::uint32_t* dst, const std::uint32_t* src,
                   std::size_t n) {
  join_max_scalar(dst, src, n);
}
bool all_masked_zero_sse2(const std::uint32_t* a, std::size_t n,
                          std::uint32_t mask) {
  return all_masked_zero_scalar(a, n, mask);
}
bool leq_all_avx2(const std::uint32_t* a, const std::uint32_t* b,
                  std::size_t n) {
  return leq_all_scalar(a, b, n);
}
void join_max_avx2(std::uint32_t* dst, const std::uint32_t* src,
                   std::size_t n) {
  join_max_scalar(dst, src, n);
}
bool all_masked_zero_avx2(const std::uint32_t* a, std::size_t n,
                          std::uint32_t mask) {
  return all_masked_zero_scalar(a, n, mask);
}
std::size_t cells_match_read_prefix_sse2(const std::uint64_t* cells,
                                         std::size_t n,
                                         std::uint32_t epoch_bits) {
  return cells_match_read_prefix_scalar(cells, n, epoch_bits);
}
std::size_t cells_match_write_prefix_sse2(const std::uint64_t* cells,
                                          std::size_t n,
                                          std::uint32_t epoch_bits) {
  return cells_match_write_prefix_scalar(cells, n, epoch_bits);
}
std::size_t cells_match_read_prefix_avx2(const std::uint64_t* cells,
                                         std::size_t n,
                                         std::uint32_t epoch_bits) {
  return cells_match_read_prefix_scalar(cells, n, epoch_bits);
}
std::size_t cells_match_write_prefix_avx2(const std::uint64_t* cells,
                                          std::size_t n,
                                          std::uint32_t epoch_bits) {
  return cells_match_write_prefix_scalar(cells, n, epoch_bits);
}

#endif  // VFT_SIMD_X86

// --- Dispatch ---------------------------------------------------------------

namespace {

Isa probe_isa() {
#if VFT_SIMD_X86
  Isa best = __builtin_cpu_supports("avx2") ? Isa::kAvx2 : Isa::kSse2;
#else
  Isa best = Isa::kScalar;
#endif
  if (const char* v = std::getenv("VFT_VC_ISA")) {
    Isa wanted = best;
    if (std::strcmp(v, "scalar") == 0) wanted = Isa::kScalar;
    if (std::strcmp(v, "sse2") == 0) wanted = Isa::kSse2;
    if (std::strcmp(v, "avx2") == 0) wanted = Isa::kAvx2;
    // Never dispatch above what the hardware can run.
    if (static_cast<int>(wanted) <= static_cast<int>(best)) best = wanted;
  }
  return best;
}

const Isa g_isa = probe_isa();

using LeqFn = bool (*)(const std::uint32_t*, const std::uint32_t*, std::size_t);
using JoinFn = void (*)(std::uint32_t*, const std::uint32_t*, std::size_t);
using MaskFn = bool (*)(const std::uint32_t*, std::size_t, std::uint32_t);

LeqFn pick_leq() {
  switch (g_isa) {
    case Isa::kAvx2: return &leq_all_avx2;
    case Isa::kSse2: return &leq_all_sse2;
    default: return &leq_all_scalar;
  }
}
JoinFn pick_join() {
  switch (g_isa) {
    case Isa::kAvx2: return &join_max_avx2;
    case Isa::kSse2: return &join_max_sse2;
    default: return &join_max_scalar;
  }
}
MaskFn pick_mask() {
  switch (g_isa) {
    case Isa::kAvx2: return &all_masked_zero_avx2;
    case Isa::kSse2: return &all_masked_zero_sse2;
    default: return &all_masked_zero_scalar;
  }
}

// The packed cells live in a std::atomic<uint64_t> array; the vector
// bodies read them with plain loads. That is by design (vc_simd.h), but
// TSan instruments the atomic array and would flag every vector load, so
// sanitized builds pin the cell kernels to the scalar acquire-load path.
#if defined(__SANITIZE_THREAD__)
#define VFT_SIMD_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define VFT_SIMD_TSAN 1
#endif
#endif
#ifndef VFT_SIMD_TSAN
#define VFT_SIMD_TSAN 0
#endif

using CellFn = std::size_t (*)(const std::uint64_t*, std::size_t,
                               std::uint32_t);

CellFn pick_cells_read() {
  if (VFT_SIMD_TSAN) return &cells_match_read_prefix_scalar;
  switch (g_isa) {
    case Isa::kAvx2: return &cells_match_read_prefix_avx2;
    case Isa::kSse2: return &cells_match_read_prefix_sse2;
    default: return &cells_match_read_prefix_scalar;
  }
}
CellFn pick_cells_write() {
  if (VFT_SIMD_TSAN) return &cells_match_write_prefix_scalar;
  switch (g_isa) {
    case Isa::kAvx2: return &cells_match_write_prefix_avx2;
    case Isa::kSse2: return &cells_match_write_prefix_sse2;
    default: return &cells_match_write_prefix_scalar;
  }
}

const LeqFn g_leq = pick_leq();
const JoinFn g_join = pick_join();
const MaskFn g_mask = pick_mask();
const CellFn g_cells_read = pick_cells_read();
const CellFn g_cells_write = pick_cells_write();

}  // namespace

Isa active_isa() { return g_isa; }

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
  }
  return "?";
}

bool isa_available(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
      return VFT_SIMD_X86 != 0;
    case Isa::kAvx2:
#if VFT_SIMD_X86
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

bool leq_all(const std::uint32_t* a, const std::uint32_t* b, std::size_t n) {
  return g_leq(a, b, n);
}

void join_max(std::uint32_t* dst, const std::uint32_t* src, std::size_t n) {
  g_join(dst, src, n);
}

void copy_words(std::uint32_t* dst, const std::uint32_t* src, std::size_t n) {
  std::memcpy(dst, src, n * sizeof(std::uint32_t));
}

bool all_masked_zero(const std::uint32_t* a, std::size_t n,
                     std::uint32_t mask) {
  return g_mask(a, n, mask);
}

std::size_t cells_match_read_prefix(const std::uint64_t* cells, std::size_t n,
                                    std::uint32_t epoch_bits) {
  return g_cells_read(cells, n, epoch_bits);
}

std::size_t cells_match_write_prefix(const std::uint64_t* cells, std::size_t n,
                                     std::uint32_t epoch_bits) {
  return g_cells_write(cells, n, epoch_bits);
}

}  // namespace vft::simd
