#include "vft/vc_simd.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define VFT_SIMD_X86 1
#include <immintrin.h>
#else
#define VFT_SIMD_X86 0
#endif

namespace vft::simd {

// --- Scalar reference -------------------------------------------------------

bool leq_all_scalar(const std::uint32_t* a, const std::uint32_t* b,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

void join_max_scalar(std::uint32_t* dst, const std::uint32_t* src,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (src[i] > dst[i]) dst[i] = src[i];
  }
}

bool all_masked_zero_scalar(const std::uint32_t* a, std::size_t n,
                            std::uint32_t mask) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & mask) != 0) return false;
  }
  return true;
}

#if VFT_SIMD_X86

// --- SSE2 (x86-64 baseline) -------------------------------------------------
//
// SSE2 has no unsigned 32-bit compare or max; the standard sign-flip trick
// (xor with 0x80000000) turns unsigned order into signed order, for which
// pcmpgtd exists.

namespace {
inline __m128i flip_sign128(__m128i v) {
  return _mm_xor_si128(v, _mm_set1_epi32(static_cast<int>(0x80000000u)));
}
}  // namespace

bool leq_all_sse2(const std::uint32_t* a, const std::uint32_t* b,
                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    // a > b (unsigned) in any lane -> violation.
    const __m128i gt = _mm_cmpgt_epi32(flip_sign128(va), flip_sign128(vb));
    if (_mm_movemask_epi8(gt) != 0) return false;
  }
  return leq_all_scalar(a + i, b + i, n - i);
}

void join_max_sse2(std::uint32_t* dst, const std::uint32_t* src,
                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vd =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i vs =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d_gt = _mm_cmpgt_epi32(flip_sign128(vd), flip_sign128(vs));
    // max = (dst & (dst>src)) | (src & ~(dst>src)).
    const __m128i mx =
        _mm_or_si128(_mm_and_si128(d_gt, vd), _mm_andnot_si128(d_gt, vs));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), mx);
  }
  join_max_scalar(dst + i, src + i, n - i);
}

bool all_masked_zero_sse2(const std::uint32_t* a, std::size_t n,
                          std::uint32_t mask) {
  const __m128i vm = _mm_set1_epi32(static_cast<int>(mask));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i hit = _mm_cmpeq_epi32(_mm_and_si128(va, vm),
                                        _mm_setzero_si128());
    if (_mm_movemask_epi8(hit) != 0xFFFF) return false;
  }
  return all_masked_zero_scalar(a + i, n - i, mask);
}

// --- AVX2 (compiled via target attribute, enabled by cpuid) -----------------
//
// Every exit that can lead to non-VEX SSE code runs _mm256_zeroupper()
// first. GCC inserts vzeroupper on plain returns but NOT on the sibcall
// (tail-jump) into the SSE2 helpers, and leq_all_sse2 executes a non-VEX
// movdqa before its length check: delegating with dirty ymm uppers makes
// that one instruction pay the full AVX->SSE state-transition penalty
// (measured ~135 ns per call on Skylake-SP - 40x the kernel itself).

__attribute__((target("avx2"))) bool leq_all_avx2(const std::uint32_t* a,
                                                  const std::uint32_t* b,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // AVX2 has unsigned max: a <= b per-lane iff max(a, b) == b.
    const __m256i ok = _mm256_cmpeq_epi32(_mm256_max_epu32(va, vb), vb);
    if (_mm256_movemask_epi8(ok) != -1) {
      _mm256_zeroupper();
      return false;
    }
  }
  _mm256_zeroupper();
  return leq_all_sse2(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) void join_max_avx2(std::uint32_t* dst,
                                                   const std::uint32_t* src,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_max_epu32(vd, vs));
  }
  _mm256_zeroupper();
  join_max_sse2(dst + i, src + i, n - i);
}

__attribute__((target("avx2"))) bool all_masked_zero_avx2(
    const std::uint32_t* a, std::size_t n, std::uint32_t mask) {
  const __m256i vm = _mm256_set1_epi32(static_cast<int>(mask));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    if (!_mm256_testz_si256(va, vm)) {
      _mm256_zeroupper();
      return false;
    }
  }
  _mm256_zeroupper();
  return all_masked_zero_sse2(a + i, n - i, mask);
}

#else  // !VFT_SIMD_X86: the SSE2/AVX2 names alias the scalar reference.

bool leq_all_sse2(const std::uint32_t* a, const std::uint32_t* b,
                  std::size_t n) {
  return leq_all_scalar(a, b, n);
}
void join_max_sse2(std::uint32_t* dst, const std::uint32_t* src,
                   std::size_t n) {
  join_max_scalar(dst, src, n);
}
bool all_masked_zero_sse2(const std::uint32_t* a, std::size_t n,
                          std::uint32_t mask) {
  return all_masked_zero_scalar(a, n, mask);
}
bool leq_all_avx2(const std::uint32_t* a, const std::uint32_t* b,
                  std::size_t n) {
  return leq_all_scalar(a, b, n);
}
void join_max_avx2(std::uint32_t* dst, const std::uint32_t* src,
                   std::size_t n) {
  join_max_scalar(dst, src, n);
}
bool all_masked_zero_avx2(const std::uint32_t* a, std::size_t n,
                          std::uint32_t mask) {
  return all_masked_zero_scalar(a, n, mask);
}

#endif  // VFT_SIMD_X86

// --- Dispatch ---------------------------------------------------------------

namespace {

Isa probe_isa() {
#if VFT_SIMD_X86
  Isa best = __builtin_cpu_supports("avx2") ? Isa::kAvx2 : Isa::kSse2;
#else
  Isa best = Isa::kScalar;
#endif
  if (const char* v = std::getenv("VFT_VC_ISA")) {
    Isa wanted = best;
    if (std::strcmp(v, "scalar") == 0) wanted = Isa::kScalar;
    if (std::strcmp(v, "sse2") == 0) wanted = Isa::kSse2;
    if (std::strcmp(v, "avx2") == 0) wanted = Isa::kAvx2;
    // Never dispatch above what the hardware can run.
    if (static_cast<int>(wanted) <= static_cast<int>(best)) best = wanted;
  }
  return best;
}

const Isa g_isa = probe_isa();

using LeqFn = bool (*)(const std::uint32_t*, const std::uint32_t*, std::size_t);
using JoinFn = void (*)(std::uint32_t*, const std::uint32_t*, std::size_t);
using MaskFn = bool (*)(const std::uint32_t*, std::size_t, std::uint32_t);

LeqFn pick_leq() {
  switch (g_isa) {
    case Isa::kAvx2: return &leq_all_avx2;
    case Isa::kSse2: return &leq_all_sse2;
    default: return &leq_all_scalar;
  }
}
JoinFn pick_join() {
  switch (g_isa) {
    case Isa::kAvx2: return &join_max_avx2;
    case Isa::kSse2: return &join_max_sse2;
    default: return &join_max_scalar;
  }
}
MaskFn pick_mask() {
  switch (g_isa) {
    case Isa::kAvx2: return &all_masked_zero_avx2;
    case Isa::kSse2: return &all_masked_zero_sse2;
    default: return &all_masked_zero_scalar;
  }
}

const LeqFn g_leq = pick_leq();
const JoinFn g_join = pick_join();
const MaskFn g_mask = pick_mask();

}  // namespace

Isa active_isa() { return g_isa; }

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
  }
  return "?";
}

bool isa_available(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
      return VFT_SIMD_X86 != 0;
    case Isa::kAvx2:
#if VFT_SIMD_X86
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

bool leq_all(const std::uint32_t* a, const std::uint32_t* b, std::size_t n) {
  return g_leq(a, b, n);
}

void join_max(std::uint32_t* dst, const std::uint32_t* src, std::size_t n) {
  g_join(dst, src, n);
}

void copy_words(std::uint32_t* dst, const std::uint32_t* src, std::size_t n) {
  std::memcpy(dst, src, n * sizeof(std::uint32_t));
}

bool all_masked_zero(const std::uint32_t* a, std::size_t n,
                     std::uint32_t mask) {
  return g_mask(a, n, mask);
}

}  // namespace vft::simd
