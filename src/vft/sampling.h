// Per-access sampling: the always-on production mode's admission gate.
//
// FastTrack-style analysis pays a detector call (or at least a packed-cell
// fast path) on *every* access; under production traffic that tax is the
// difference between a test tool and a mode you can leave on. Following
// the sampling line of work (LiteRace's cold-region decay, "Efficient
// Timestamping for Sampling-based Race Detection" - see PAPERS.md), this
// layer samples only a fraction of memory accesses while keeping every
// synchronization event (locks, fork/join, volatiles, barriers) exactly
// tracked, so vector clocks stay precise for the accesses that *are*
// analyzed. A sampled-out access either updates only the 64-bit packed
// shadow cell (policy `cell`: last-access metadata stays fresh, so a later
// sampled access still races against it) or touches nothing at all
// (policy `drop`: the ABI entry point returns before even the session
// dispatch). Neither ever spills, escalates, or touches a VarState.
//
// Three cooperating mechanisms (docs/ALGORITHM.md s14):
//
//   Gate        a branch-cheap per-thread geometric countdown: skip the
//               next G accesses, where G is drawn from the geometric
//               distribution matching the current global rate. The hot
//               path is one TLS decrement and one predictable branch; the
//               slow path (once per sampled access) re-draws the gap,
//               flushes counters, and consults the adaptive table.
//
//   Adaptive    a small fixed-size table keyed by shadow-page base XOR the
//   table       caller PC (when the interposer's event ctx is armed):
//               regions that stay race-free across many samples cool down
//               (each cooldown level halves their effective rate), and
//               re-heat to full rate on first spill, first race report, or
//               page reset (free/munmap) - LiteRace-style burst decay.
//
//   Controller  VFT_BUDGET=5 (percent): times every 64th sampled access,
//               subtracts the calibrated timer floor, extrapolates the
//               detector's self-time against wall time, and multiplies the
//               global rate toward the budget every adjustment window.
//
// Exactness anchor: with rate=1.0, no budget, and the adaptive table off,
// the gate admits every access and the analysis is bit-identical to the
// ungated packed-cell path (tests/sampling_test.cpp holds this as a
// differential invariant).
//
// Configuration (read once at session-backend creation):
//   VFT_SAMPLING  "on" | "off" | comma list of key=value:
//                 rate=0.02 policy=cell|drop adaptive=0|1 seed=7
//                 (any key implies "on")
//   VFT_BUDGET    target overhead percent, e.g. "5" or "5%"; implies
//                 sampling on with the controller driving the rate.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "vft/fastpath_ctx.h"

namespace vft::sampling {

struct Config {
  enum class Policy : std::uint8_t {
    kCell,  ///< sampled-out accesses update only the packed cell
    kDrop,  ///< sampled-out accesses touch nothing (ABI early exit)
  };

  bool enabled = false;
  double rate = 1.0;        ///< initial global sampling rate (0, 1]
  double budget_pct = 0.0;  ///< target overhead percent; 0: controller off
  Policy policy = Policy::kCell;
  bool adaptive = true;     ///< per-page/PC cooldown table armed
  std::uint64_t seed = 1;   ///< per-process RNG seed (threads decorrelate)
};

/// Parse the VFT_SAMPLING/VFT_BUDGET pair (either may be null/empty).
/// Returns false and fills *err on a malformed spec; *out is then
/// untouched. An empty pair parses to Config{.enabled = false}.
bool parse_config(const char* sampling_spec, const char* budget_spec,
                  Config* out, std::string* err);

/// parse_config over getenv("VFT_SAMPLING")/getenv("VFT_BUDGET");
/// malformed specs warn on stderr and fall back to sampling-off (a bad
/// knob must not change a production target's behavior beyond full
/// tracking).
Config config_from_env();

/// "policy=cell rate=0.0213 budget=5" - the effective-config line for run
/// banners and logs.
std::string describe(const Config& cfg);

/// Monotone counter snapshot of one gate's lifetime (relaxed reads; the
/// integer fields are what the report merge sums).
struct Stats {
  std::uint64_t sampled = 0;       ///< accesses admitted to the analysis
  std::uint64_t skipped = 0;       ///< accesses gated out
  std::uint64_t cooled_out = 0;    ///< skips due to a cooled page entry
  std::uint64_t reheats = 0;       ///< table resets from spill/race/free
  std::uint64_t overhead_ns = 0;   ///< extrapolated detector self-time
  std::uint64_t busy_ns = 0;       ///< process CPU time since gate install
  std::uint64_t adjustments = 0;   ///< controller windows applied
  double rate = 1.0;               ///< current global rate
  double overhead_pct = 0.0;       ///< overhead_ns / busy_ns, percent
};

/// The process-global sampling gate. Leaked like the Session that owns
/// its lifetime decisions: detached target threads may consult it during
/// static destruction.
class Gate {
 public:
  explicit Gate(const Config& cfg);

  /// The active gate, or nullptr when sampling is off. Installed by the
  /// session factory (runtime/session.cpp) before any gated access can
  /// run; replaced only by Session::reset() + re-creation (tests).
  static Gate* active() { return g_active.load(std::memory_order_acquire); }

  /// Make `g` (may be nullptr) the active gate. Publication only - the
  /// caller owns construction; previous gates leak by design (a stale
  /// TLS countdown can still reference one mid-access).
  static void install(Gate* g) {
    g_active.store(g, std::memory_order_release);
    g_drop.store(g != nullptr && g->cfg_.policy == Config::Policy::kDrop,
                 std::memory_order_release);
  }

  /// True iff the active gate runs the drop policy (the ABI early exit's
  /// one-load predicate).
  static bool drop_policy_active() {
    return g_drop.load(std::memory_order_acquire);
  }

  const Config& config() const { return cfg_; }

  /// The admission decision for one access (or one range event) at
  /// `addr`, with a controller probe token. Hot path (mid-gap skip): one
  /// thread-local decrement plus one branch, never probed - the cheap
  /// skip is the always-on floor the controller does not regulate. Every
  /// kProbeEvery-th *slow-path entry* (sample point, whether it ends up
  /// sampled or cooled out) opens a probe BEFORE admit_slow runs, so the
  /// measured cost covers the gate's own bookkeeping (gap draw, adaptive
  /// table) plus whatever detector work the caller brackets - the real
  /// marginal cost of raising the rate. The caller must pass the token to
  /// time_end() after the access completes (0 token: no-op).
  bool should_sample(const void* addr, std::uint64_t* probe) {
    Tls& t = tls();
    if (t.gen == gen_ && t.countdown > 0) {
      --t.countdown;
      ++t.skipped;
      return false;
    }
    if (cfg_.budget_pct > 0.0 &&
        (++t.sampled_since_probe & (kProbeEvery - 1)) == 0) {
      *probe = now_ns() | 1;  // |1: a 0 reading must not read as "no probe"
    }
    return admit_slow(t, addr);
  }

  /// Probe-less admission for callers with nothing to bracket (the drop
  /// policy's ABI early exit): the gate's own slow-path cost is charged
  /// immediately; the (dropped) access contributes nothing else.
  bool should_sample(const void* addr) {
    std::uint64_t probe = 0;
    const bool s = should_sample(addr, &probe);
    time_end(probe);
    return s;
  }

  /// Drop-policy admission through the header-inlined fast path's
  /// descriptor (vft/fastpath_ctx.h): flushes the skips the inline path
  /// took on the gate's behalf, decides this access, and transfers the
  /// freshly drawn geometric countdown INTO the descriptor so subsequent
  /// sampled-out accesses resolve entirely inline. Returns true when this
  /// access is admitted. Defined in sampling.cpp.
  bool admit_and_refill(const void* addr, vft_fastpath_s* fp);

  /// Controller probe for accesses admitted without a gate decision (the
  /// drop policy's session side treats every arriving access as sampled):
  /// returns a timestamp token every kProbeEvery-th call, 0 otherwise.
  std::uint64_t maybe_time_begin() {
    Tls& t = tls();
    if (cfg_.budget_pct <= 0.0 ||
        (++t.sampled_since_probe & (kProbeEvery - 1)) != 0) {
      return 0;
    }
    return now_ns() | 1;
  }
  void time_end(std::uint64_t token);

  // --- reheat hooks (the adaptive table's feedback edges) --------------
  /// A sampled access at `addr` escalated its cell into a VarState.
  void on_spill(const void* addr) { reheat(addr); }
  /// A sampled access at `addr` reported a race.
  void on_race(const void* addr) { reheat(addr); }
  /// The target freed [addr, addr+size): cooled entries covering it go
  /// back to full rate (recycled addresses are new variables).
  void on_page_reset(const void* addr, std::size_t size);

  Stats snapshot() const;

  /// The calibrated timer floor (ns) subtracted from every controller
  /// probe; exposed for the bench's sampling section.
  double timer_floor_ns() const { return timer_floor_ns_; }

 private:
  static constexpr std::uint32_t kRateOne = 1u << 20;  ///< fixed-point 1.0
  static constexpr std::uint64_t kProbeEvery = 64;     ///< controller probe period
  static constexpr std::uint64_t kAdjustWindow = 4096; ///< samples per rate step
  static constexpr std::uint64_t kProbeOutlierNs = 32'000;  ///< discard preempted probes
  static constexpr std::size_t kTableSize = 1024;      ///< adaptive entries (pow2)
  static constexpr std::uint32_t kCleanPerCool = 256;  ///< samples to cool a level
  static constexpr std::uint32_t kMaxCooldown = 6;     ///< min effective rate 1/64
  static constexpr double kMinRate = 1.0 / 4096.0;     ///< controller floor

  struct Tls {
    std::uint64_t gen = 0;        ///< owning gate's generation
    std::uint64_t countdown = 0;  ///< accesses left to skip
    std::uint64_t rng = 0;
    std::uint64_t skipped = 0;    ///< pending flush to the global counter
    std::uint64_t sampled_since_probe = 0;
  };
  static Tls& tls() {
    static thread_local Tls t;
    return t;
  }

  static std::uint64_t now_ns();
  /// CLOCK_PROCESS_CPUTIME_ID: the controller's denominator. Overhead is
  /// "detector CPU per target CPU", so descheduled time must advance
  /// neither side - wall time would dilute the measurement on a loaded
  /// machine and the controller would open the rate against a phantom
  /// budget. Syscall-priced, so only touched at window/snapshot edges.
  static std::uint64_t cpu_now_ns();

  bool admit_slow(Tls& t, const void* addr);
  void draw_gap(Tls& t);
  void reheat(const void* addr);
  bool cooled_out(Tls& t, const void* addr);
  void maybe_adjust();
  void calibrate();

  static std::atomic<Gate*> g_active;
  static std::atomic<bool> g_drop;

  const Config cfg_;
  const std::uint64_t gen_;  ///< unique per gate; stale TLS re-syncs
  std::atomic<std::uint32_t> rate_fp_;  ///< current rate * kRateOne

  /// Adaptive table: one packed word per entry -
  /// tag(32) | cooldown level(8) | clean-sample count(24). Entry 0 with
  /// tag 0 means "hot" (level 0), so a clean table starts at full rate.
  std::atomic<std::uint64_t> table_[kTableSize];

  std::atomic<std::uint64_t> sampled_{0};
  std::atomic<std::uint64_t> skipped_{0};
  std::atomic<std::uint64_t> cooled_out_{0};
  std::atomic<std::uint64_t> reheats_{0};
  std::atomic<std::uint64_t> overhead_ns_{0};
  std::atomic<std::uint64_t> window_overhead_ns_{0};
  std::atomic<std::uint64_t> window_samples_{0};
  std::atomic<std::uint64_t> window_start_ns_{0};
  std::atomic<std::uint64_t> adjustments_{0};
  std::uint64_t start_ns_ = 0;
  double timer_floor_ns_ = 0.0;
};

/// The ABI entry points' drop-policy predicate: true iff the access at
/// `addr` should be dropped before any session dispatch. One acquire load
/// on the (overwhelmingly common) sampling-off path.
inline bool drop_gate_skips(const void* addr) {
  if (!Gate::drop_policy_active()) [[likely]] return false;
  Gate* g = Gate::active();
  return g != nullptr && !g->should_sample(addr);
}

}  // namespace vft::sampling
