/* The per-thread fast-path descriptor for the header-inlined ABI hot path.
 *
 * Armed by the runtime (SessionImpl) after a slow-path access establishes
 * the thread's shadow page and epoch; consumed by the inline try-functions
 * in abi/vft_abi_inline.h, which resolve the same-epoch hit and the
 * sampled-out skip with no call, no AbiScope, and no virtual dispatch.
 *
 * Validity protocol: the descriptor is live iff `gen` equals the process
 * global vft_g_fastpath_gen (which starts at 1 and is bumped on every
 * Session::reset / detector re-selection; a thread-local gen of 0 is
 * always stale). Every pointer dereference in the inline path is guarded
 * by that comparison, so retraction is a single atomic increment - no
 * per-thread teardown is needed. `epoch_addr` points at the owning
 * thread's cached epoch (only the owner mutates it, so it is always
 * fresh); `cells` points at the packed-cell array of the shadow page
 * covering `page_base`; the rule pointers target the session's RuleStats
 * counters so an inline hit bumps exactly what the out-of-line path
 * would.
 *
 * Drop-policy sampling rides the same descriptor: `drop_countdown` holds
 * the remaining geometric skips handed out by Gate::admit_and_refill, and
 * `drop_pending` accumulates skips taken inline until the next slow-path
 * entry flushes them into the gate's statistics.
 *
 * Plain C so the preload library can use it with no C++ dependency.
 * Defined in vft/stack.cpp next to the event context it complements.
 */
#ifndef VFT_VFT_FASTPATH_CTX_H_
#define VFT_VFT_FASTPATH_CTX_H_

#include <stdint.h>

#ifdef __cplusplus
#define VFT_FASTPATH_TLS thread_local
extern "C" {
#else
#define VFT_FASTPATH_TLS __thread
#endif

typedef struct vft_fastpath_s {
  uint64_t gen;               /* == vft_g_fastpath_gen when live; 0 = stale */
  const uint32_t* epoch_addr; /* owning thread's current epoch bits */
  uintptr_t page_base;        /* first target byte covered by `cells` */
  const uint64_t* cells;      /* packed cells of the cached shadow page */
  uint64_t drop_countdown;    /* drop-policy skips remaining (0 = sample) */
  uint64_t drop_pending;      /* inline skips not yet flushed to the gate */
  uint64_t hit_reads;         /* inline read hits pending counter flush */
  uint64_t hit_writes;        /* inline write hits pending counter flush */
  uint64_t* rule_read[2];     /* counters credited with flushed read hits */
  uint64_t* rule_write[2];    /* counters credited with flushed write hits */
} vft_fastpath_s;

/* Credit the descriptor's pending inline hits to the session's rule
 * counters (the same relaxed adds the out-of-line path performs, in bulk)
 * and zero them. The inline hit itself only increments the plain
 * thread-local tallies - a shared-counter RMW per access would cost more
 * than the dispatch it saves - so the runtime flushes here at every
 * slow-path entry, re-arm, and thread detach. At any point where the
 * descriptor is quiescent the counters are bit-identical to the
 * out-of-line path's. Callers must have validated `gen` (stale pointers
 * are never dereferenced; a cleared descriptor has zero tallies). */
static inline void vft_fastpath_flush_hits(vft_fastpath_s* fp) {
  if (fp->hit_reads != 0) {
    __atomic_fetch_add(fp->rule_read[0], fp->hit_reads, __ATOMIC_RELAXED);
    __atomic_fetch_add(fp->rule_read[1], fp->hit_reads, __ATOMIC_RELAXED);
    fp->hit_reads = 0;
  }
  if (fp->hit_writes != 0) {
    __atomic_fetch_add(fp->rule_write[0], fp->hit_writes, __ATOMIC_RELAXED);
    __atomic_fetch_add(fp->rule_write[1], fp->hit_writes, __ATOMIC_RELAXED);
    fp->hit_writes = 0;
  }
}

extern VFT_FASTPATH_TLS vft_fastpath_s vft_tl_fastpath;

/* Process-wide descriptor generation. Read with acquire in the inline
 * path; incremented (release) by Session::reset to retract every armed
 * descriptor and the published entry table at once. */
extern uint64_t vft_g_fastpath_gen;

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* VFT_VFT_FASTPATH_CTX_H_ */
