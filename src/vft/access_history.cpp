#include "vft/access_history.h"

#include <cstdlib>
#include <cstring>

namespace vft::history {

thread_local std::uint32_t tl_access_size = 0;

namespace {
std::atomic<AccessHistory*> g_active{nullptr};
}  // namespace

AccessHistory* active() { return g_active.load(std::memory_order_acquire); }

void install(AccessHistory* h) {
  // Publication only: a replaced instance is leaked by design, because a
  // concurrently racing recorder may still hold the old pointer (same
  // contract as sampling::Gate::install).
  g_active.store(h, std::memory_order_release);
}

bool enabled_from_env() {
  const char* env = std::getenv("VFT_HISTORY");
  if (env == nullptr || env[0] == '\0') return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "false") == 0);
}

std::uint32_t StackTable::intern(const CallStack& cs) {
  if (cs.empty()) return 0;
  const std::uint64_t h = hash_stack(cs);
  std::lock_guard<std::mutex> lk(mu_);
  auto it = by_hash_.find(h);
  if (it != by_hash_.end()) {
    for (std::uint32_t id : it->second) {
      if (stacks_[id - 1] == cs) return id;
    }
  }
  if (stacks_.size() >= kMaxStacks) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  stacks_.push_back(cs);
  const auto id = static_cast<std::uint32_t>(stacks_.size());
  by_hash_[h].push_back(id);
  return id;
}

bool StackTable::lookup(std::uint32_t id, CallStack* out) const {
  if (id == 0) return false;
  std::lock_guard<std::mutex> lk(mu_);
  if (id > stacks_.size()) return false;
  *out = stacks_[id - 1];
  return true;
}

std::size_t StackTable::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stacks_.size();
}

void AccessHistory::record(std::uint64_t var, Tid tid, Epoch epoch,
                           AccessKind kind, std::uint16_t size,
                           const CallStack& stack) {
  // Intern outside the shard lock: interning takes the (distinct) table
  // lock and may compare frame arrays, which has no business serializing
  // unrelated variables.
  const std::uint32_t sid = stacks_.intern(stack);
  Entry e;
  e.stack_id = sid;
  e.epoch = epoch;
  e.tid = tid;
  e.kind = kind;
  e.valid = 1;
  e.size = size;

  Shard& s = shard_of(var);
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.rings.find(var);
  if (it == s.rings.end()) {
    if (var_count_.load(std::memory_order_relaxed) >= kMaxVars) {
      var_drops_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    var_count_.fetch_add(1, std::memory_order_relaxed);
    it = s.rings.emplace(var, Ring{}).first;
  }
  it->second.push(e);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

void AccessHistory::record_current(std::uint64_t var, Tid tid, Epoch epoch,
                                   AccessKind kind) {
  const CallStack cs = capture_event_stack();
  std::uint32_t size = tl_access_size;
  if (size > 0xffffu) size = 0xffffu;
  record(var, tid, epoch, kind, static_cast<std::uint16_t>(size), cs);
}

bool AccessHistory::find(std::uint64_t var, Epoch epoch, AccessKind want,
                         Entry* out) const {
  const Shard& s = shard_of(var);
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.rings.find(var);
  if (it == s.rings.end()) return false;
  const Entry* e = it->second.find(epoch, want);
  if (e == nullptr) return false;
  *out = *e;
  return true;
}

void AccessHistory::reset_range(std::uint64_t addr, std::size_t size) {
  if (size == 0) return;
  const std::uint64_t lo = addr;
  const std::uint64_t hi = addr + size;
  // Small ranges: erase per word-aligned key. Large ranges (a munmap of a
  // big arena) would touch too many keys that were never tracked, so scan
  // the shards instead.
  constexpr std::size_t kPerKeyLimit = 4096;
  if (size <= kPerKeyLimit) {
    for (std::uint64_t v = lo & ~std::uint64_t{7}; v < hi; v += 8) {
      Shard& s = shard_of(v);
      std::lock_guard<std::mutex> lk(s.mu);
      if (s.rings.erase(v) != 0) {
        var_count_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    return;
  }
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    for (auto it = s.rings.begin(); it != s.rings.end();) {
      if (it->first >= lo && it->first < hi) {
        it = s.rings.erase(it);
        var_count_.fetch_sub(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
}

void AccessHistory::clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    s.rings.clear();
  }
  var_count_.store(0, std::memory_order_relaxed);
}

}  // namespace vft::history
