#include "vft/suppress.h"

#include <fstream>
#include <sstream>

namespace vft {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Frames from position fi onward match pattern tokens from position pi
/// onward, with `...` absorbing zero or more frames. Patterns match a
/// stack *prefix*: running out of pattern is success. Stacks are <= 32
/// frames and rules a handful of tokens, so plain recursion is fine.
bool match_frames(const std::vector<SuppressionFrame>& pat, std::size_t pi,
                  const std::vector<ResolvedFrame>& stack, std::size_t fi) {
  if (pi == pat.size()) return true;
  const SuppressionFrame& p = pat[pi];
  if (p.kind == SuppressionFrame::kEllipsis) {
    for (std::size_t skip = fi; skip <= stack.size(); ++skip) {
      if (match_frames(pat, pi + 1, stack, skip)) return true;
    }
    return false;
  }
  if (fi >= stack.size()) return false;
  const ResolvedFrame& f = stack[fi];
  const bool hit = p.kind == SuppressionFrame::kFun
                       ? !f.symbol.empty() && glob_match(p.glob, f.symbol)
                       : !f.module.empty() && glob_match(p.glob, f.module);
  return hit && match_frames(pat, pi + 1, stack, fi + 1);
}

}  // namespace

bool glob_match(const std::string& pattern, const std::string& text) {
  // Iterative star-backtracking matcher (the classic two-pointer form).
  std::size_t p = 0, t = 0;
  std::size_t star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool SuppressionEngine::load_text(const std::string& text,
                                  const std::string& origin,
                                  std::string* err) {
  std::vector<SuppressionRule> parsed;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool in_block = false;
  SuppressionRule rule;
  bool have_name = false;

  auto fail = [&](const std::string& what) {
    if (err != nullptr) {
      *err = origin + ":" + std::to_string(lineno) + ": " + what;
    }
    return false;
  };

  while (std::getline(in, line)) {
    ++lineno;
    const std::string s = trim(line);
    if (s.empty() || s[0] == '#') continue;
    if (!in_block) {
      if (s != "{") return fail("expected '{' opening a suppression block");
      in_block = true;
      rule = SuppressionRule{};
      have_name = false;
      continue;
    }
    if (s == "}") {
      if (!have_name) return fail("suppression block has no name");
      if (rule.kind_glob.empty()) {
        return fail("suppression '" + rule.name + "' has no vft: line");
      }
      parsed.push_back(std::move(rule));
      in_block = false;
      continue;
    }
    if (!have_name) {
      rule.name = s;
      have_name = true;
      continue;
    }
    if (s.rfind("vft:", 0) == 0) {
      if (!rule.kind_glob.empty()) return fail("duplicate vft: line");
      rule.kind_glob = trim(s.substr(4));
      if (rule.kind_glob.empty()) return fail("empty vft: kind glob");
      continue;
    }
    if (s == "...") {
      rule.frames.push_back({SuppressionFrame::kEllipsis, ""});
      continue;
    }
    if (s.rfind("fun:", 0) == 0) {
      rule.frames.push_back({SuppressionFrame::kFun, trim(s.substr(4))});
      continue;
    }
    if (s.rfind("obj:", 0) == 0) {
      rule.frames.push_back({SuppressionFrame::kObj, trim(s.substr(4))});
      continue;
    }
    return fail("unrecognized suppression line '" + s + "'");
  }
  if (in_block) return fail("unterminated suppression block");

  for (auto& r : parsed) rules_.push_back(std::move(r));
  return true;
}

bool SuppressionEngine::load_file(const std::string& path, std::string* err) {
  std::ifstream in(path);
  if (!in) {
    if (err != nullptr) *err = path + ": cannot open suppression file";
    return false;
  }
  std::ostringstream all;
  all << in.rdbuf();
  return load_text(all.str(), path, err);
}

const SuppressionRule* SuppressionEngine::match(
    const char* kind_name, const std::vector<ResolvedFrame>& stack) const {
  const std::string kind = kind_name == nullptr ? "" : kind_name;
  for (const SuppressionRule& r : rules_) {
    // `vft:race` is the conventional match-every-kind spelling; every
    // kind name ends in "race" but a glob has to say so explicitly.
    const bool kind_ok =
        r.kind_glob == "race" || glob_match(r.kind_glob, kind);
    if (!kind_ok) continue;
    if (match_frames(r.frames, 0, stack, 0)) return &r;
  }
  return nullptr;
}

}  // namespace vft
