// VerifiedFT-v1.5: the intermediate variant of Section 8, built to show
// why unlocking [Read Shared Same Epoch] matters. It makes only
// [Read Same Epoch] and [Write Same Epoch] lock-free; repeated reads of
// read-shared data still serialize on the VarState mutex, which is why
// read-shared-heavy workloads (sparse, sunflow analogues) stay slow here
// and only recover with v2 (Table 1: 10.8x vs 8.12x geomean).
#pragma once

#include <mutex>

#include "vft/detector_base.h"
#include "vft/sync_var_state.h"

namespace vft {

class VftV15 : public DetectorBase {
 public:
  static constexpr const char* kName = "VerifiedFT-v1.5";

  using VarState = SyncVarState;

  explicit VftV15(RaceCollector* races = nullptr, RuleStats* stats = nullptr)
      : DetectorBase(races, stats) {}

  bool read(ThreadState& st, VarState& sx) {
    const Tid t = st.t;
    const Epoch e = st.epoch();
    // -- pure block: only [Read Same Epoch] is lock-free in v1.5 --
    {
      const Epoch r = sx.r_nolock();
      if (r == e) {
        count(Rule::kReadSameEpoch);
        return true;
      }
    }
    std::scoped_lock lk(sx.mu);
    const Epoch r = sx.r_locked();
    if (r.is_shared() && sx.V.get(t) == e) {  // [Read Shared Same Epoch], locked
      count(Rule::kReadSharedSameEpoch);
      return true;
    }
    record_read(sx.id, st);  // history: past the same-epoch fast paths
    bool ok = true;
    const Epoch w = sx.w_locked();
    if (!ordered_before(w, st)) {  // [Write-Read Race]
      report(RaceKind::kWriteRead, sx.id, st, w);
      ok = false;
    }
    if (!r.is_shared()) {
      if (ordered_before(r, st)) {
        sx.set_r_locked(e);  // [Read Exclusive]
        if (ok) count(Rule::kReadExclusive);
      } else {
        sx.V.set_locked(r.tid(), r);  // [Read Share]
        sx.V.set_locked(t, e);
        sx.set_r_locked(Epoch::shared());
        if (ok) count(Rule::kReadShare);
      }
    } else {
      sx.V.set_locked(t, e);  // [Read Shared]
      if (ok) count(Rule::kReadShared);
    }
    return ok;
  }

  bool write(ThreadState& st, VarState& sx) {
    const Epoch e = st.epoch();
    {
      const Epoch w = sx.w_nolock();
      if (w == e) {  // [Write Same Epoch], lock-free
        count(Rule::kWriteSameEpoch);
        return true;
      }
    }
    std::scoped_lock lk(sx.mu);
    record_write(sx.id, st);  // history: past the same-epoch fast path
    bool ok = true;
    const Epoch w = sx.w_locked();
    if (!ordered_before(w, st)) {  // [Write-Write Race]
      report(RaceKind::kWriteWrite, sx.id, st, w);
      ok = false;
    }
    const Epoch r = sx.r_locked();
    if (!r.is_shared()) {
      if (!ordered_before(r, st)) {  // [Read-Write Race]
        report(RaceKind::kReadWrite, sx.id, st, r);
        ok = false;
      }
      sx.set_w_locked(e);  // [Write Exclusive]
      if (ok) count(Rule::kWriteExclusive);
    } else {
      if (!sx.V.leq_locked(st.V)) {  // [Shared-Write Race]
        report(RaceKind::kSharedWrite, sx.id, st, Epoch());
        ok = false;
      }
      sx.set_w_locked(e);  // [Write Shared]
      if (ok) count(Rule::kWriteShared);
    }
    return ok;
  }
};

}  // namespace vft
