// VarState layout shared by VerifiedFT-v1.5 and VerifiedFT-v2: the
// Section 5 synchronization discipline made concrete in C++.
//
//   W  write-protected by mu: stores require the lock, loads may be
//      lock-free ([Write Same Epoch] fast path). Java declares the field
//      volatile; C++ requires std::atomic to make the unsynchronized load
//      defined behaviour.
//   R  initially write-protected by mu; immutable once SHARED. The
//      lock-free load of SHARED is a right-mover (no subsequent writes).
//   V  SyncVectorClock implementing the per-slot rules (see its header).
//
// The named accessors mirror the CIVL Layer-0 functions of Section 6
// (VarStateGetWNoLock / VarStateGetW / VarStateSetW, and likewise for R),
// so each call site documents which mover annotation it relies on.
//
// Every shared access announces itself through VFT_SCHED_POINT so the
// src/sched/ explorer can interleave it; the macros are no-ops (and mu
// is a plain std::mutex) outside VFT_SCHED builds.
#pragma once

#include <atomic>

#include "sched/sched_point.h"
#include "vft/epoch.h"
#include "vft/sync_vector_clock.h"

namespace vft {

struct SyncVarState {
  SchedMutex mu;
  std::atomic<Epoch> R{};  // bottom initially
  std::atomic<Epoch> W{};  // bottom initially
  SyncVectorClock V;
  std::uint64_t id = 0;

  // --- CIVL Layer-0 style accessors (Section 6) ---

  /// atomic (N): unsynchronized read, used only by the lock-free pure
  /// blocks of Figure 4.
  Epoch r_nolock() const {
    VFT_SCHED_POINT(kLoad, &R);
    return R.load(std::memory_order_acquire);
  }
  Epoch w_nolock() const {
    VFT_SCHED_POINT(kLoad, &W);
    return W.load(std::memory_order_acquire);
  }

  /// both-mover (B): reads with mu held; no concurrent writer can exist.
  Epoch r_locked() const {
    VFT_SCHED_POINT(kLoad, &R);
    return R.load(std::memory_order_relaxed);
  }
  Epoch w_locked() const {
    VFT_SCHED_POINT(kLoad, &W);
    return W.load(std::memory_order_relaxed);
  }

  /// atomic (N): writes with mu held; concurrent lock-free readers exist.
  void set_r_locked(Epoch e) {
    VFT_SCHED_POINT(kStore, &R);
    R.store(e, std::memory_order_release);
  }
  void set_w_locked(Epoch e) {
    VFT_SCHED_POINT(kStore, &W);
    W.store(e, std::memory_order_release);
  }
};

static_assert(std::atomic<Epoch>::is_always_lock_free);

}  // namespace vft
