// DJIT+-style baseline: a precise dynamic race detector that keeps *full
// vector clocks* for both the read and write history of every variable -
// the state of the art before FastTrack introduced epochs (referenced in
// Section 9; also the shape of the verified implementation of Mansky et
// al. discussed there). Everything runs under the VarState mutex.
//
// Purpose in this repo: calibrate what the epoch representation buys.
// Every read and write costs O(#threads) work and a lock round-trip, so
// this detector bounds v1 from below in the benches.
#pragma once

#include <mutex>

#include "vft/detector_base.h"
#include "vft/vector_clock.h"

namespace vft {

class Djit : public DetectorBase {
 public:
  static constexpr const char* kName = "DJIT+ (full VC)";

  struct VarState {
    std::mutex mu;
    VectorClock Rvc;  // last read time per thread
    VectorClock Wvc;  // last write time per thread
    std::uint64_t id = 0;
  };

  explicit Djit(RaceCollector* races = nullptr, RuleStats* stats = nullptr)
      : DetectorBase(races, stats) {}

  bool read(ThreadState& st, VarState& sx) {
    const Tid t = st.t;
    const Epoch e = st.epoch();
    std::scoped_lock lk(sx.mu);
    bool ok = true;
    if (!sx.Wvc.leq(st.V)) {  // some write is not ordered before this read
      report(RaceKind::kWriteRead, sx.id, st, first_unordered(sx.Wvc, st.V));
      // Fail-over: forget the conflicting write history so one racy pair
      // yields one report, not one per subsequent access (the full-VC
      // analogue of the epoch detectors' W := e repair).
      sx.Wvc = VectorClock();
      ok = false;
    }
    sx.Rvc.set(t, e);
    if (ok) count(Rule::kReadShared);  // every read is a full-VC update
    record_read(sx.id, st);  // history: DJIT+ has no same-epoch fast path
    return ok;
  }

  bool write(ThreadState& st, VarState& sx) {
    const Tid t = st.t;
    const Epoch e = st.epoch();
    std::scoped_lock lk(sx.mu);
    bool ok = true;
    if (!sx.Wvc.leq(st.V)) {
      report(RaceKind::kWriteWrite, sx.id, st, first_unordered(sx.Wvc, st.V));
      sx.Wvc = VectorClock();  // fail-over repair, as in read
      ok = false;
    }
    if (ok && !sx.Rvc.leq(st.V)) {
      report(RaceKind::kReadWrite, sx.id, st, first_unordered(sx.Rvc, st.V));
      sx.Rvc = VectorClock();
      ok = false;
    }
    sx.Wvc.set(t, e);
    if (ok) count(Rule::kWriteShared);
    record_write(sx.id, st);  // history: DJIT+ has no same-epoch fast path
    return ok;
  }

 private:
  static Epoch first_unordered(const VectorClock& hist,
                               const VectorClock& threadVC) {
    std::uint32_t n = std::max(hist.size(), threadVC.size());
    for (Tid i = 0; i < n; ++i) {
      if (!leq(hist.get(i), threadVC.get(i))) return hist.get(i);
    }
    return Epoch();
  }
};

}  // namespace vft
