// FT-CAS: reconstruction of the CAS-based RoadRunner FastTrack variant
// (Section 4): "embeds sx.W and sx.R in a single 8-byte long that is
// always read and written atomically and uses a similar optimistic
// mechanism based on atomic CAS operations. The lock sx is still used for
// the vector clock."
//
// The packed (R, W) word makes the epoch-to-epoch transitions lock-free:
// a handler snapshots the word, runs the race checks against the snapshot,
// and commits with a compare-and-swap - CAS failure means interference, so
// the checks rerun on the fresh snapshot. Transitions that touch the
// vector clock ([Read Share], [Read Shared] slot updates, [Write Shared])
// take the mutex, but must still publish R/W via CAS because the lock-free
// paths of other threads do not respect the lock.
//
// Like FT-Mutex, the default rule set is the original FastTrack rules;
// RuleSet::kVerifiedFT enables the revised rules for the E6 ablation.
#pragma once

#include <atomic>
#include <cstdint>

#include "sched/sched_point.h"

#include "vft/detector_base.h"
#include "vft/spec.h"
#include "vft/sync_vector_clock.h"

namespace vft {

class FtCas : public DetectorBase {
 public:
  static constexpr const char* kName = "FT-CAS";

  struct VarState {
    /// R in the high 32 bits, W in the low 32; always read/CASed whole.
    std::atomic<std::uint64_t> rw{0};
    SchedMutex mu;  // protects V only
    SyncVectorClock V;
    std::uint64_t id = 0;

    static std::uint64_t pack(Epoch r, Epoch w) {
      return (static_cast<std::uint64_t>(r.bits()) << 32) | w.bits();
    }
    static Epoch unpack_r(std::uint64_t v) {
      return Epoch::from_bits(static_cast<std::uint32_t>(v >> 32));
    }
    static Epoch unpack_w(std::uint64_t v) {
      return Epoch::from_bits(static_cast<std::uint32_t>(v));
    }

    /// All shared access to the packed word funnels through these two, so
    /// the sched explorer sees every load and every CAS attempt.
    std::uint64_t load_rw() const {
      VFT_SCHED_POINT(kLoad, &rw);
      return rw.load(std::memory_order_acquire);
    }
    bool cas_rw(std::uint64_t& expected, std::uint64_t desired) {
      VFT_SCHED_POINT(kCas, &rw);
      return rw.compare_exchange_weak(expected, desired,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
    }
  };

  explicit FtCas(RaceCollector* races = nullptr, RuleStats* stats = nullptr,
                 RuleSet rules = RuleSet::kOriginalFastTrack)
      : DetectorBase(races, stats), rules_(rules) {}

  bool read(ThreadState& st, VarState& sx) {
    const Tid t = st.t;
    const Epoch e = st.epoch();
    std::uint64_t cur = sx.load_rw();
    for (;;) {
      const Epoch r = VarState::unpack_r(cur);
      const Epoch w = VarState::unpack_w(cur);
      if (r == e) {  // [Read Same Epoch]
        count(Rule::kReadSameEpoch);
        return true;
      }
      if (r.is_shared()) {
        if (rules_ == RuleSet::kVerifiedFT && sx.V.get(t) == e) {
          count(Rule::kReadSharedSameEpoch);
          return true;
        }
        if (rules_ == RuleSet::kOriginalFastTrack &&
            ordered_before(w, st) && sx.V.get(t) == e) {
          // Unlocked [Read Shared] whose V[t] update is a no-op; see the
          // matching comment in FT-Mutex.
          count(Rule::kReadShared);
          return true;
        }
        return read_shared_locked(st, sx);  // V update needs the lock
      }
      if (!ordered_before(w, st)) {  // [Write-Read Race]
        report(RaceKind::kWriteRead, sx.id, st, w);
        // Fail-over: record the read as if ordered (CAS keeps others' view
        // consistent), then stop treating this access as racy.
        force_read(sx, st, e);
        record_read(sx.id, st);  // history: the racing read is a prior too
        return false;
      }
      if (ordered_before(r, st)) {
        // [Read Exclusive]: lock-free commit; CAS validates both R and W,
        // so the checks above hold at the commit point.
        if (sx.cas_rw(cur, VarState::pack(e, w))) {
          count(Rule::kReadExclusive);
          record_read(sx.id, st);  // history: non-same-epoch commit
          return true;
        }
        continue;  // interference: cur reloaded, re-run all checks
      }
      return read_share_locked(st, sx);  // inflate to a vector clock
    }
  }

  bool write(ThreadState& st, VarState& sx) {
    const Epoch e = st.epoch();
    std::uint64_t cur = sx.load_rw();
    for (;;) {
      const Epoch r = VarState::unpack_r(cur);
      const Epoch w = VarState::unpack_w(cur);
      if (w == e) {  // [Write Same Epoch]
        count(Rule::kWriteSameEpoch);
        return true;
      }
      if (!ordered_before(w, st)) {  // [Write-Write Race]
        report(RaceKind::kWriteWrite, sx.id, st, w);
        force_write(sx, e);
        record_write(sx.id, st);  // history: the racing write is a prior too
        return false;
      }
      if (r.is_shared()) return write_shared_locked(st, sx);
      if (!ordered_before(r, st)) {  // [Read-Write Race]
        report(RaceKind::kReadWrite, sx.id, st, r);
        force_write(sx, e);
        record_write(sx.id, st);  // history: the racing write is a prior too
        return false;
      }
      // [Write Exclusive]: lock-free CAS commit.
      if (sx.cas_rw(cur, VarState::pack(r, e))) {
        count(Rule::kWriteExclusive);
        record_write(sx.id, st);  // history: non-same-epoch commit
        return true;
      }
    }
  }

 private:
  /// R := SHARED with the read history inflated to a vector clock. Holds
  /// the mutex for V, publishes via CAS (lock-free readers don't lock).
  bool read_share_locked(ThreadState& st, VarState& sx) {
    const Tid t = st.t;
    const Epoch e = st.epoch();
    std::scoped_lock lk(sx.mu);
    std::uint64_t cur = sx.load_rw();
    for (;;) {
      const Epoch r = VarState::unpack_r(cur);
      const Epoch w = VarState::unpack_w(cur);
      bool ok = true;
      if (!ordered_before(w, st)) {
        report(RaceKind::kWriteRead, sx.id, st, w);
        ok = false;
      }
      if (r.is_shared()) {
        sx.V.set_locked(t, e);  // raced with another share: just our slot
        if (ok) count(Rule::kReadShared);
        record_read(sx.id, st);
        return ok;
      }
      if (r == e) return true;  // another CAS of ours? defensive no-op
      if (ordered_before(r, st)) {
        // The previous read got ordered in the meantime: exclusive update.
        if (sx.cas_rw(cur, VarState::pack(e, w))) {
          if (ok) count(Rule::kReadExclusive);
          record_read(sx.id, st);
          return ok;
        }
        continue;
      }
      // Populate V before publishing SHARED (release CAS), so lock-free
      // readers that observe SHARED see the slots.
      sx.V.set_locked(r.tid(), r);
      sx.V.set_locked(t, e);
      if (sx.cas_rw(cur, VarState::pack(Epoch::shared(), w))) {
        if (ok) count(Rule::kReadShare);
        record_read(sx.id, st);
        return ok;
      }
    }
  }

  /// [Read Shared] slot update (R already SHARED, which is final).
  bool read_shared_locked(ThreadState& st, VarState& sx) {
    const Tid t = st.t;
    const Epoch e = st.epoch();
    std::scoped_lock lk(sx.mu);
    const std::uint64_t cur = sx.load_rw();
    const Epoch w = VarState::unpack_w(cur);
    VFT_ASSERT(VarState::unpack_r(cur).is_shared());
    bool ok = true;
    if (!ordered_before(w, st)) {
      report(RaceKind::kWriteRead, sx.id, st, w);
      ok = false;
    }
    sx.V.set_locked(t, e);
    if (ok) count(Rule::kReadShared);
    record_read(sx.id, st);
    return ok;
  }

  bool write_shared_locked(ThreadState& st, VarState& sx) {
    const Epoch e = st.epoch();
    std::scoped_lock lk(sx.mu);
    std::uint64_t cur = sx.load_rw();
    // R is SHARED and final; only W changes concurrently (via CAS).
    VFT_ASSERT(VarState::unpack_r(cur).is_shared());
    bool ok = true;
    if (!ordered_before(VarState::unpack_w(cur), st)) {
      report(RaceKind::kWriteWrite, sx.id, st, VarState::unpack_w(cur));
      ok = false;
    } else if (!sx.V.leq_locked(st.V)) {  // [Shared-Write Race]
      report(RaceKind::kSharedWrite, sx.id, st, Epoch());
      ok = false;
    }
    const Epoch new_r = rules_ == RuleSet::kOriginalFastTrack
                            ? Epoch()            // forget reads (original)
                            : Epoch::shared();   // keep SHARED (VerifiedFT)
    for (;;) {
      if (sx.cas_rw(cur, VarState::pack(new_r, e))) {
        break;
      }
    }
    if (ok) count(Rule::kWriteShared);
    record_write(sx.id, st);
    return ok;
  }

  /// Fail-over state repair after a reported race on a write.
  void force_write(VarState& sx, Epoch e) {
    std::uint64_t cur = sx.load_rw();
    while (!sx.cas_rw(cur, VarState::pack(VarState::unpack_r(cur), e))) {
    }
  }

  /// Fail-over state repair after a reported race on a read.
  void force_read(VarState& sx, ThreadState& st, Epoch e) {
    std::uint64_t cur = sx.load_rw();
    for (;;) {
      const Epoch r = VarState::unpack_r(cur);
      if (r.is_shared()) {
        std::scoped_lock lk(sx.mu);
        sx.V.set_locked(st.t, e);
        return;
      }
      if (ordered_before(r, st)) {
        if (sx.cas_rw(cur, VarState::pack(e, VarState::unpack_w(cur)))) {
          return;
        }
      } else {
        // Inflate to SHARED without re-running the (already reported)
        // write-read check.
        std::scoped_lock lk(sx.mu);
        cur = sx.load_rw();
        for (;;) {
          const Epoch r2 = VarState::unpack_r(cur);
          if (r2.is_shared()) {
            sx.V.set_locked(st.t, e);
            return;
          }
          sx.V.set_locked(r2.tid(), r2);
          sx.V.set_locked(st.t, e);
          if (sx.cas_rw(cur, VarState::pack(Epoch::shared(), VarState::unpack_w(cur)))) {
            return;
          }
        }
      }
    }
  }

  RuleSet rules_;
};

}  // namespace vft
