// Cooperative virtual-thread scheduler: the execution engine under every
// VFT_SCHED exploration. Each scenario thread is a real std::thread, but
// exactly one is ever runnable: threads park at every VFT_SCHED_POINT
// (announcing the operation they are about to perform) and the controller
// resumes whichever one a Chooser picks, recording the pick into a
// sched::Schedule. Serializing execution this way makes the interleaving
// of the announced operations a pure function of the schedule, which is
// what lets the DFS explorer enumerate the space and the replayer
// reproduce a failure from a CI artifact.
//
// Enabled-set rules (what the Chooser may pick):
//   - a thread with a pending kLockAcq on a cooperatively-held mutex is
//     disabled until the holder's kLockRel runs (the scheduler tracks
//     ownership; no real lock is taken while a hook is installed);
//   - a thread parked at kSpin is disabled until any other thread
//     performs a store/CAS/lock op ("blocked until state change") - this
//     is what keeps DFS over PackedCell::wait_escalated finite;
//   - everything else parked is enabled.
// No enabled thread and not all done = deadlock; exceeding max_steps
// (spinner/CAS livelock) is reported as livelock. Both unwind the
// remaining threads one at a time via a per-thread abort exception, so
// the serialized-execution invariant holds even while failing.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sched/sched_point.h"
#include "sched/schedule.h"
#include "vft/assert.h"

namespace vft::sched {

/// Snapshot of one virtual thread at a decision point. views[i].tid == i;
/// the Chooser sees every thread (pending ops drive sleep-set pruning)
/// but may only pick an enabled one.
struct ThreadView {
  std::uint32_t tid = 0;
  PendingOp pending;
  bool enabled = false;
  bool done = false;
};

class Scheduler final : public SchedHook {
 public:
  using Body = std::function<void()>;
  /// Pick the tid to resume (must be enabled), or nullopt to abandon the
  /// execution (sleep-set-blocked prefix, exhausted replay schedule).
  using Chooser =
      std::function<std::optional<std::uint32_t>(const std::vector<ThreadView>&)>;

  struct Result {
    Schedule schedule;
    bool completed = false;  ///< every body ran to the end
    bool deadlock = false;   ///< threads remain, none enabled
    bool livelock = false;   ///< max_steps exceeded
    bool abandoned = false;  ///< chooser returned nullopt
  };

  explicit Scheduler(std::size_t max_steps = std::size_t{1} << 16)
      : max_steps_(max_steps) {}

  /// Run the bodies to completion (or failure) under `choose`. Reentrant
  /// per Scheduler object across calls, not within one.
  Result run(const std::vector<Body>& bodies, const Chooser& choose) {
    const std::uint32_t n = static_cast<std::uint32_t>(bodies.size());
    VFT_CHECK(n > 0);
    threads_.clear();
    lock_owner_.clear();
    change_epoch_ = 1;
    active_ = kNone;
    for (std::uint32_t i = 0; i < n; ++i) {
      threads_.push_back(std::make_unique<VThread>());
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      threads_[i]->th =
          std::thread([this, i, &bodies] { thread_main(i, bodies[i]); });
    }

    Result res;
    {
      std::unique_lock lk(m_);
      cv_.wait(lk, [&] { return all_parked_or_done(); });
      std::size_t steps = 0;
      std::vector<ThreadView> views(n);
      for (;;) {
        bool all_done = true;
        bool any_enabled = false;
        for (std::uint32_t i = 0; i < n; ++i) {
          const VThread& t = *threads_[i];
          views[i].tid = i;
          views[i].pending = t.pending;
          views[i].done = t.st == VThread::St::kDone;
          views[i].enabled = enabled_locked(t);
          all_done &= views[i].done;
          any_enabled |= views[i].enabled;
        }
        if (all_done) {
          res.completed = true;
          break;
        }
        if (!any_enabled) {
          res.deadlock = true;
          abort_locked(lk);
          break;
        }
        if (steps >= max_steps_) {
          res.livelock = true;
          abort_locked(lk);
          break;
        }
        const std::optional<std::uint32_t> pick = choose(views);
        if (!pick.has_value()) {
          res.abandoned = true;
          abort_locked(lk);
          break;
        }
        VFT_CHECK(*pick < n && views[*pick].enabled);
        res.schedule.push_back(*pick);
        ++steps;
        resume_locked(*pick, lk);
      }
    }
    for (auto& t : threads_) t->th.join();
    threads_.clear();
    return res;
  }

  // --- SchedHook (called from the virtual threads) ---

  void point(PendingOp op) override {
    const std::uint32_t i = tls_index_;
    VThread& t = *threads_[i];
    if (t.unwinding) {
      // Free-running towards completion during abort. Points are no-ops
      // (execution is still serialized: the controller unwinds one thread
      // at a time), except a spin, which would never terminate with every
      // other thread parked. Throwing is safe exactly here: lock releases
      // may be announced from destructors (std::scoped_lock), spins never
      // are.
      if (op.kind == PointKind::kSpin) throw Aborted{};
      return;
    }
    std::unique_lock lk(m_);
    t.pending = op;
    if (op.kind == PointKind::kSpin) t.spin_seen = change_epoch_;
    t.st = VThread::St::kParked;
    active_ = kNone;
    cv_.notify_all();
    cv_.wait(lk, [&] { return active_ == static_cast<std::int64_t>(i); });
    t.st = VThread::St::kRunning;
    if (t.abort) {
      // Don't throw from the park itself: this frame may be a destructor
      // (a cooperative unlock). Run the rest of the body for real - every
      // later point no-ops via `unwinding`, so the thread just finishes.
      t.unwinding = true;
      if (op.kind == PointKind::kSpin) throw Aborted{};
    }
  }

  void coop_lock(const void* mu) override {
    point({PointKind::kLockAcq, mu});
  }
  void coop_unlock(const void* mu) override {
    point({PointKind::kLockRel, mu});
  }
  void spin(const void* obj) override { point({PointKind::kSpin, obj}); }

 private:
  struct Aborted {};

  struct VThread {
    enum class St : std::uint8_t { kRunning, kParked, kDone };
    St st = St::kRunning;
    PendingOp pending;
    std::uint64_t spin_seen = 0;  ///< change_epoch_ when parked at kSpin
    bool abort = false;           ///< next resume throws Aborted
    bool unwinding = false;       ///< written/read by the thread itself only
    std::thread th;
  };

  static constexpr std::int64_t kNone = -1;
  static inline thread_local std::uint32_t tls_index_ = 0;

  void thread_main(std::uint32_t i, const Body& body) {
    tls_index_ = i;
    tls_hook = this;
    try {
      point({PointKind::kThreadStart, nullptr});  // initial park
      body();
    } catch (const Aborted&) {
    }
    tls_hook = nullptr;
    std::unique_lock lk(m_);
    threads_[i]->st = VThread::St::kDone;
    active_ = kNone;
    cv_.notify_all();
  }

  bool all_parked_or_done() const {
    for (const auto& t : threads_) {
      if (t->st == VThread::St::kRunning) return false;
    }
    return true;
  }

  bool enabled_locked(const VThread& t) const {
    if (t.st != VThread::St::kParked) return false;
    switch (t.pending.kind) {
      case PointKind::kLockAcq:
        return !lock_owner_.contains(t.pending.obj);
      case PointKind::kSpin:
        return change_epoch_ > t.spin_seen;
      default:
        return true;
    }
  }

  /// Resume thread i and wait for its next park/finish. The op effects
  /// the scheduler must model (lock ownership, the state-change epoch
  /// that wakes spinners) are applied here: the thread performs the
  /// announced op right after resuming, and nothing else runs before its
  /// next park, so applying them at resume time is equivalent.
  void resume_locked(std::uint32_t i, std::unique_lock<std::mutex>& lk) {
    VThread& t = *threads_[i];
    switch (t.pending.kind) {
      case PointKind::kLockAcq:
        VFT_CHECK(!lock_owner_.contains(t.pending.obj));
        lock_owner_[t.pending.obj] = i;
        break;
      case PointKind::kLockRel:
        VFT_CHECK(lock_owner_.contains(t.pending.obj) &&
                  lock_owner_[t.pending.obj] == i);
        lock_owner_.erase(t.pending.obj);
        ++change_epoch_;
        break;
      case PointKind::kStore:
      case PointKind::kCas:
        ++change_epoch_;
        break;
      default:
        break;
    }
    active_ = static_cast<std::int64_t>(i);
    cv_.notify_all();
    cv_.wait(lk, [&] { return active_ == kNone; });
  }

  /// Unwind the remaining threads one at a time (resume-with-abort, wait
  /// for done), preserving serialized execution even on the failure path.
  void abort_locked(std::unique_lock<std::mutex>& lk) {
    for (std::uint32_t i = 0; i < threads_.size(); ++i) {
      VThread& t = *threads_[i];
      if (t.st == VThread::St::kDone) continue;
      t.abort = true;
      active_ = static_cast<std::int64_t>(i);
      cv_.notify_all();
      cv_.wait(lk, [&] { return threads_[i]->st == VThread::St::kDone; });
    }
  }

  const std::size_t max_steps_;
  std::mutex m_;
  std::condition_variable cv_;
  std::int64_t active_ = kNone;  ///< tid allowed to run; kNone = controller
  std::uint64_t change_epoch_ = 1;
  std::vector<std::unique_ptr<VThread>> threads_;
  std::unordered_map<const void*, std::uint32_t> lock_owner_;
};

}  // namespace vft::sched
