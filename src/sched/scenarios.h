// The scenario library: the concurrent micro-programs the schedule
// explorer enumerates, shared by tests/sched_explore_test.cpp and the
// `vft sched` CLI so a failure artifact from either replays in both.
//
// Every scenario is an InstanceFactory producing fresh detector state per
// execution, two (or more) virtual-thread bodies whose shared accesses
// all pass through VFT_SCHED points, and a check() run on the terminal
// state. Checks are differential: the detector's race reports are
// compared against the sequential Spec oracle run over the serialized
// trace(s) the schedule could linearize to, and the race verdict is
// cross-checked against hb_oracle (whose answer is interleaving-
// independent for a fixed operation set). A scenario therefore fails
// only when the concurrent implementation disagrees with the paper's
// sequential semantics - exactly the Theorem 3.1 serializability claim,
// checked per schedule.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/instrument.h"
#include "runtime/registry.h"
#include "runtime/tool.h"
#include "sched/explore.h"
#include "sched/sched_point.h"
#include "trace/hb_oracle.h"
#include "trace/trace.h"
#include "vft/atomics.h"
#include "vft/ft_cas.h"
#include "vft/packed_cell.h"
#include "vft/probe.h"
#include "vft/report.h"
#include "vft/spec.h"
#include "vft/stats.h"
#include "vft/vft_v2.h"

namespace vft::sched {

// Shared ids across scenario traces: one data variable, one volatile,
// one volatile-ordered variable.
inline constexpr VarId kX = 1;
inline constexpr std::uint64_t kV = 100;
inline constexpr VarId kY = 200;

/// Spec run over a serialized trace: where it halted (if it raced) and
/// the machine itself, for terminal-state comparison.
struct SpecEnd {
  bool raced = false;
  Rule rule = Rule::kReadSameEpoch;
  Tid by = 0;
  Spec spec{RuleSet::kVerifiedFT};
};

inline SpecEnd run_spec(const trace::Trace& tr) {
  SpecEnd end;
  for (const trace::Op& op : tr) {
    Spec::StepResult r{};
    switch (op.kind) {
      case trace::OpKind::kRead:
        r = end.spec.on_read(op.t, op.target);
        break;
      case trace::OpKind::kWrite:
        r = end.spec.on_write(op.t, op.target);
        break;
      case trace::OpKind::kAcquire:
        r = end.spec.on_acquire(op.t, op.target);
        break;
      case trace::OpKind::kRelease:
        r = end.spec.on_release(op.t, op.target);
        break;
      case trace::OpKind::kFork:
        r = end.spec.on_fork(op.t, static_cast<Tid>(op.target));
        break;
      case trace::OpKind::kJoin:
        r = end.spec.on_join(op.t, static_cast<Tid>(op.target));
        break;
      case trace::OpKind::kVolRead:
        r = end.spec.on_vol_read(op.t, op.target);
        break;
      case trace::OpKind::kVolWrite:
        r = end.spec.on_vol_write(op.t, op.target);
        break;
    }
    if (r.error) {
      end.raced = true;
      end.rule = r.rule;
      end.by = op.t;
      break;
    }
  }
  return end;
}

/// Figure 2 race rule -> report kind, for matching Spec halts against
/// RaceCollector entries.
inline std::optional<RaceKind> race_kind_of(Rule r) {
  switch (r) {
    case Rule::kWriteReadRace:
      return RaceKind::kWriteRead;
    case Rule::kWriteWriteRace:
      return RaceKind::kWriteWrite;
    case Rule::kReadWriteRace:
      return RaceKind::kReadWrite;
    case Rule::kSharedWriteRace:
      return RaceKind::kSharedWrite;
    default:
      return std::nullopt;
  }
}

/// Compare a detector VarState (through the probe seam) against the Spec
/// machine's state for kX. Empty string = equivalent.
template <typename VS>
std::string diff_var_state(VS& v, Spec& spec, Tid max_tid) {
  const Spec::VarState& sx = spec.var(kX);
  if (probe_w(v) != sx.W) {
    return "W=" + probe_w(v).str() + " spec=" + sx.W.str();
  }
  if (probe_r(v) != sx.R) {
    return "R=" + probe_r(v).str() + " spec=" + sx.R.str();
  }
  if (probe_r(v).is_shared()) {
    for (Tid t = 0; t <= max_tid; ++t) {
      if (probe_vslot(v, t) != sx.V.get(t)) {
        return "V[" + std::to_string(t) + "]=" + probe_vslot(v, t).str() +
               " spec=" + sx.V.get(t).str();
      }
    }
  }
  return "";
}

inline trace::Trace operator+(trace::Trace a, const trace::Trace& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

// ---------------------------------------------------------------------------
// Two-thread read/read and read/write duos over a bare detector
// (VftV2 or FtCas): the v2 read-share CAS-free promotion and the FT-CAS
// R update window from the paper's Figure 4/5 discussion.
// ---------------------------------------------------------------------------

template <typename D>
D make_detector(RaceCollector* rc, RuleStats* st) {
  if constexpr (std::is_constructible_v<D, RaceCollector*, RuleStats*,
                                        RuleSet>) {
    return D(rc, st, RuleSet::kVerifiedFT);
  } else {
    return D(rc, st);
  }
}

template <typename D>
struct DuoState {
  RaceCollector races;
  RuleStats stats;
  D det;
  typename D::VarState x;
  ThreadState t0{0}, t1{1}, t2{2};

  DuoState() : det(make_detector<D>(&races, &stats)) {
    x.id = kX;
    det.write(t0, x);
    det.fork(t0, t1);
    det.fork(t0, t2);
  }
};

/// Shared duo postcondition. Race-free shape (read/read): no reports,
/// terminal VarState == the Spec state of either serial order (they
/// coincide for these programs, but we accept either on principle).
/// Racy shape (read/write): exactly one report, matching the Spec halt
/// of one of the two serial orders; hb_oracle must agree a race exists.
template <typename S>
std::optional<std::string> duo_check(S& s, bool second_writes) {
  const trace::Trace base{trace::wr(0, kX), trace::fork(0, 1),
                          trace::fork(0, 2)};
  // Mirrors make_duo: the race-free shape reads twice per thread (so the
  // windows overlap under exploration), the racy shape accesses once.
  const trace::Trace a_ops = second_writes
                                 ? trace::Trace{trace::rd(1, kX)}
                                 : trace::Trace{trace::rd(1, kX),
                                                trace::rd(1, kX)};
  const trace::Trace b_ops = second_writes
                                 ? trace::Trace{trace::wr(2, kX)}
                                 : trace::Trace{trace::rd(2, kX),
                                                trace::rd(2, kX)};
  SpecEnd ab = run_spec(base + a_ops + b_ops);
  SpecEnd ba = run_spec(base + b_ops + a_ops);
  const trace::HbResult hb = trace::analyze(base + a_ops + b_ops);
  const auto reports = s.races.all();

  if (hb.race_free()) {
    if (ab.raced || ba.raced) return "spec raced on an hb-race-free trace";
    if (!reports.empty()) {
      return "detector reported a race on a race-free program";
    }
    const std::string da = diff_var_state(s.x, ab.spec, 2);
    const std::string db = diff_var_state(s.x, ba.spec, 2);
    if (!da.empty() && !db.empty()) {
      return "terminal state matches no serial order: " + da;
    }
    return std::nullopt;
  }

  if (!ab.raced && !ba.raced) return "hb raced but spec did not";
  if (reports.size() != 1) {
    return "expected exactly one race report, got " +
           std::to_string(reports.size());
  }
  const RaceReport& r = reports.front();
  if (r.var != kX) return "race reported on wrong variable";
  const auto matches = [&](const SpecEnd& e) {
    return e.raced && race_kind_of(e.rule) == r.kind && e.by == r.current_tid;
  };
  if (!matches(ab) && !matches(ba)) {
    return "race report matches no serial order";
  }
  return std::nullopt;
}

template <typename D>
Instance make_duo(bool second_writes) {
  auto s = std::make_shared<DuoState<D>>();
  Instance inst;
  inst.state = s;
  inst.bodies = {
      [s, second_writes] {
        s->det.read(s->t1, s->x);
        if (!second_writes) s->det.read(s->t1, s->x);
      },
      [s, second_writes] {
        if (second_writes) {
          s->det.write(s->t2, s->x);
        } else {
          s->det.read(s->t2, s->x);
          s->det.read(s->t2, s->x);
        }
      },
  };
  inst.check = [s, second_writes] { return duo_check(*s, second_writes); };
  return inst;
}

// ---------------------------------------------------------------------------
// Packed-cell escalation scenarios (PR 3's ESCALATING/ESCALATED spill
// protocol), driven through the production packed_read/packed_write
// dispatchers with hand-managed ThreadStates.
// ---------------------------------------------------------------------------

struct PackedState {
  RaceCollector races;
  RuleStats stats;
  VftV2 det{&races, &stats};
  PackedCell cell;
  SyncVarState spill;
  ThreadState t0{0}, t1{1}, t2{2};

  PackedState() { spill.id = kX; }

  auto slot() {
    return [this]() -> SyncVarState& { return spill; };
  }
};

enum class PackedShape {
  kReadRead,    ///< race-free; one reader promotes, the other spills
  kWriteWrite,  ///< racy: one write-write race in every schedule
  kMissedRace,  ///< racy both-slow contended escalation: two reports
};

inline std::optional<std::string> packed_check(PackedState& s,
                                               PackedShape shape) {
  const std::uint64_t spills = s.stats.count(Rule::kFastSpill);
  const auto reports = s.races.all();
  switch (shape) {
    case PackedShape::kReadRead: {
      if (!reports.empty()) {
        return "detector reported a race on a race-free program";
      }
      if (spills != 1) {
        return "expected exactly one spill, got " + std::to_string(spills);
      }
      if (!s.cell.escalated()) return "cell not ESCALATED at exit";
      const trace::Trace base{trace::wr(0, kX), trace::fork(0, 1),
                              trace::fork(0, 2)};
      SpecEnd ab = run_spec(base + trace::Trace{trace::rd(1, kX),
                                                trace::rd(1, kX),
                                                trace::rd(2, kX),
                                                trace::rd(2, kX)});
      if (ab.raced) return "spec raced on the race-free packed program";
      const std::string d = diff_var_state(s.spill, ab.spec, 2);
      if (!d.empty()) return "spilled state diverges from Spec: " + d;
      return std::nullopt;
    }
    case PackedShape::kWriteWrite: {
      if (spills != 1) {
        return "expected exactly one spill, got " + std::to_string(spills);
      }
      if (reports.size() != 1) {
        return "expected exactly one race report, got " +
               std::to_string(reports.size());
      }
      const RaceReport& r = reports.front();
      if (r.kind != RaceKind::kWriteWrite || r.var != kX ||
          (r.current_tid != 1 && r.current_tid != 2)) {
        return "write/write race report malformed";
      }
      return std::nullopt;
    }
    case PackedShape::kMissedRace: {
      // Both readers race with the pre-escalation write the cell snapshot
      // carries; the snapshot reaches them through inject(), so both MUST
      // report - a schedule where one does not means the publication
      // order leaked an empty VarState.
      if (reports.size() != 2) {
        return "expected two write/read reports, got " +
               std::to_string(reports.size());
      }
      bool saw1 = false, saw2 = false;
      for (const RaceReport& r : reports) {
        if (r.kind != RaceKind::kWriteRead || r.var != kX) {
          return "missed-race report malformed";
        }
        saw1 |= r.current_tid == 1;
        saw2 |= r.current_tid == 2;
      }
      if (!saw1 || !saw2) return "both readers must report the race";
      if (spills != 1) {
        return "expected exactly one spill, got " + std::to_string(spills);
      }
      return std::nullopt;
    }
  }
  return "unreachable";
}

inline Instance make_packed(PackedShape shape) {
  auto s = std::make_shared<PackedState>();
  if (shape == PackedShape::kMissedRace) {
    // Fork first: the initializing write's epoch (0@3) is then unordered
    // with BOTH children, so both take the slow path and contend for the
    // escalation - the widest window the protocol has.
    s->det.fork(s->t0, s->t1);
    s->det.fork(s->t0, s->t2);
    packed_write(s->det, s->t0, s->cell, s->slot(), s->slot());
  } else {
    packed_write(s->det, s->t0, s->cell, s->slot(), s->slot());
    s->det.fork(s->t0, s->t1);
    s->det.fork(s->t0, s->t2);
  }
  const bool writes = shape == PackedShape::kWriteWrite;
  // kReadRead reads twice per thread: the winner of the fast-path CAS
  // would otherwise finish before the loser even discovers it must
  // escalate, collapsing the interleaving space to the two fast paths.
  // The second read keeps both threads alive through the whole
  // escalation protocol (spin window, inject, spilled-state reads), so
  // the explorer exercises every overlap the protocol actually has.
  const int reads = shape == PackedShape::kReadRead ? 2 : 1;
  Instance inst;
  inst.state = s;
  inst.bodies = {
      [s, writes, reads] {
        if (writes) {
          packed_write(s->det, s->t1, s->cell, s->slot(), s->slot());
        } else {
          for (int i = 0; i < reads; ++i) {
            packed_read(s->det, s->t1, s->cell, s->slot(), s->slot());
          }
        }
      },
      [s, writes, reads] {
        if (writes) {
          packed_write(s->det, s->t2, s->cell, s->slot(), s->slot());
        } else {
          for (int i = 0; i < reads; ++i) {
            packed_read(s->det, s->t2, s->cell, s->slot(), s->slot());
          }
        }
      },
  };
  inst.check = [s, shape] { return packed_check(*s, shape); };
  return inst;
}

// ---------------------------------------------------------------------------
// Volatile fast-path scenarios (PR 2's same-epoch arm/disarm), through
// the full rt::Runtime plumbing. The reader records the values it
// observed; the check linearizes its volatile reads after exactly the
// writer operations those values prove happened, runs the Spec over that
// serialization, and demands the detector agree.
// ---------------------------------------------------------------------------

struct VolatileState {
  RaceCollector races;
  RuleStats stats;
  rt::Runtime<VftV2> rt{VftV2(&races, &stats)};
  rt::Runtime<VftV2>::MainScope main{rt};
  rt::Volatile<int, VftV2> v{rt, 0};
  rt::Var<int, VftV2> y{rt, 0, kY};
  ThreadState* t1 = nullptr;
  ThreadState* t2 = nullptr;
  int s1 = -1, s2 = -1;

  VolatileState() {
    t1 = &rt.registry().create();
    rt.tool().fork(rt.self(), *t1);
    t2 = &rt.registry().create();
    rt.tool().fork(rt.self(), *t2);
  }
};

/// Build the serialized trace a reader observing `seen` volatile values
/// linearizes to: each volatile read is placed after exactly the writer
/// prefix that produced the value it saw; gated plain reads follow their
/// guarding volatile read.
inline trace::Trace linearize_volatile(const trace::Trace& writer_ops,
                                       const std::vector<trace::Op>& reads,
                                       const std::vector<int>& vws_before) {
  trace::Trace out{trace::fork(0, 1), trace::fork(0, 2)};
  std::size_t wi = 0;
  int vws = 0;
  auto emit_writer_until = [&](int want) {
    while (vws < want && wi < writer_ops.size()) {
      out.push_back(writer_ops[wi]);
      if (writer_ops[wi].kind == trace::OpKind::kVolWrite) ++vws;
      ++wi;
    }
  };
  for (std::size_t i = 0; i < reads.size(); ++i) {
    emit_writer_until(vws_before[i]);
    out.push_back(reads[i]);
  }
  while (wi < writer_ops.size()) out.push_back(writer_ops[wi++]);
  return out;
}

inline std::optional<std::string> volatile_check(VolatileState& s,
                                                 bool stale_epoch_shape) {
  if (s.s1 < 0 || s.s2 < 0 || s.s2 < s.s1) {
    return "reader observed a non-monotonic value sequence";
  }
  trace::Trace writer_ops;
  std::vector<trace::Op> reads;
  std::vector<int> vws_before;
  if (stale_epoch_shape) {
    // writer: v=1; y=1; v=2      reader: s1=v; s2=v; if (s2==2) read y
    writer_ops = {trace::vwr(1, kV), trace::wr(1, kY), trace::vwr(1, kV)};
    if (s.s1 > 2 || s.s2 > 2) return "reader saw an impossible value";
    reads.push_back(trace::vrd(2, kV));
    vws_before.push_back(s.s1 == 0 ? 0 : (s.s1 == 1 ? 1 : 2));
    reads.push_back(trace::vrd(2, kV));
    vws_before.push_back(s.s2 == 0 ? 0 : (s.s2 == 1 ? 1 : 2));
    if (s.s2 == 2) {
      reads.push_back(trace::rd(2, kY));
      vws_before.push_back(2);
    }
  } else {
    // writer: y=1; v=1           reader: s1=v; if (s1==1) read y
    writer_ops = {trace::wr(1, kY), trace::vwr(1, kV)};
    if (s.s1 > 1) return "reader saw an impossible value";
    reads.push_back(trace::vrd(2, kV));
    vws_before.push_back(s.s1);
    if (s.s1 == 1) {
      reads.push_back(trace::rd(2, kY));
      vws_before.push_back(1);
    }
  }
  const trace::Trace tr = linearize_volatile(writer_ops, reads, vws_before);
  SpecEnd end = run_spec(tr);
  if (end.raced) return "spec raced on the linearized volatile trace";
  if (!trace::analyze(tr).race_free()) {
    return "hb raced on the linearized volatile trace";
  }
  if (!s.races.empty()) {
    const RaceReport r = *s.races.first();
    return "false race: " + std::string(race_kind_name(r.kind)) + " on var " +
           std::to_string(r.var) + " by t" + std::to_string(r.current_tid);
  }
  return std::nullopt;
}

inline Instance make_volatile(bool stale_epoch_shape) {
  auto s = std::make_shared<VolatileState>();
  Instance inst;
  inst.state = s;
  inst.bodies = {
      [s, stale_epoch_shape] {
        rt::Registry::ThreadScope scope(*s->t1);
        if (stale_epoch_shape) {
          s->v.store(1);
          s->y.store(1);
          s->v.store(2);
        } else {
          s->y.store(1);
          s->v.store(1);
        }
      },
      [s, stale_epoch_shape] {
        rt::Registry::ThreadScope scope(*s->t2);
        s->s1 = s->v.load();
        if (stale_epoch_shape) {
          s->s2 = s->v.load();
          if (s->s2 == 2) (void)s->y.load();
        } else {
          s->s2 = s->s1;
          if (s->s1 == 1) (void)s->y.load();
        }
      },
  };
  inst.check = [s, stale_epoch_shape] {
    return volatile_check(*s, stale_epoch_shape);
  };
  return inst;
}

// ---------------------------------------------------------------------------
// Atomic sync-state scenarios (the __tsan_atomic* clock layer of
// vft/atomics.h): the fast-epoch arm CAS in atomic_publish racing an
// acquire load's fast-skip read, and two unordered CAS-loop publishers
// contending for the arm. Driven through the DetectorBase handlers with a
// bare AtomicState, like the duo scenarios. Checks are differential
// against Spec::on_atomic_*; the data-read gates mirror make_volatile:
// within the cooperative scheduler a thread runs atomically between sched
// points, so a flag set right after a handler returns (no point in
// between) is observable iff the publication completed first.
// ---------------------------------------------------------------------------

inline bool vc_eq(const VectorClock& a, const VectorClock& b) {
  return a.leq(b) && b.leq(a);
}

template <typename D>
struct AtomicHandoffState {
  RaceCollector races;
  RuleStats stats;
  D det;
  typename D::VarState x;
  atomics::AtomicState a;
  atomics::FenceTls fw, fr;
  ThreadState t0{0}, t1{1}, t2{2};
  bool published = false;  ///< set after the writer's store handler returns
  bool saw = false;        ///< reader's observation, taken before its load

  AtomicHandoffState() : det(make_detector<D>(&races, &stats)) {
    x.id = kX;
    det.write(t0, x);
    det.fork(t0, t1);
    det.fork(t0, t2);
  }
};

/// Release/acquire handoff postcondition. The reader touched x only if it
/// observed the completed publication, so with a release store NO
/// schedule may report a race and the terminal state must match the
/// serialization the observation proves; with a relaxed store the same
/// observation proves nothing (no edge), so every schedule where the
/// gated read ran must report exactly the write-read race the Spec halts
/// on — the relaxed-no-edge property, checked under every interleaving of
/// the arm CAS, the fast-skip load, and the sync mutex.
template <typename S>
std::optional<std::string> atomic_handoff_check(S& s, bool relaxed) {
  Spec spec;
  bool okc = !spec.on_write(0, kX).error && !spec.on_fork(0, 1).error &&
             !spec.on_fork(0, 2).error && !spec.on_write(1, kX).error;
  if (!okc) return "spec raced on the race-free handoff prefix";
  const Epoch pub = spec.thread_epoch(1);
  spec.on_atomic_store(1, kV,
                       relaxed ? atomics::kMoRelaxed : atomics::kMoRelease);
  spec.on_atomic_load(2, kV, atomics::kMoAcquire);
  if (!vc_eq(s.a.sync_V, spec.atomic_vc(kV))) {
    return "atomic release clock diverges from Spec";
  }
  const std::uint32_t bits = s.a.fast_epoch.load(std::memory_order_relaxed);
  if (relaxed) {
    if (bits != 0) return "relaxed store armed the fast epoch";
  } else if (bits != pub.bits()) {
    return "fast epoch is not the sole publisher's epoch";
  }
  const auto reports = s.races.all();
  if (!s.saw) {
    if (!reports.empty()) return "race reported without the gated read";
    const std::string d = diff_var_state(s.x, spec, 2);
    if (!d.empty()) return "terminal state diverges from Spec: " + d;
    return std::nullopt;
  }
  const Spec::StepResult r = spec.on_read(2, kX);
  if (relaxed) {
    if (!r.error || r.rule != Rule::kWriteReadRace) {
      return "spec did not halt on the relaxed-published read";
    }
    if (reports.size() != 1) {
      return "expected exactly one race report, got " +
             std::to_string(reports.size());
    }
    const RaceReport& rep = reports.front();
    if (rep.kind != RaceKind::kWriteRead || rep.var != kX ||
        rep.current_tid != 2) {
      return "relaxed-handoff race report malformed";
    }
    return std::nullopt;
  }
  if (r.error) return "spec raced on the release/acquire handoff";
  if (!reports.empty()) return "false race on a release/acquire handoff";
  const std::string d = diff_var_state(s.x, spec, 2);
  if (!d.empty()) return "terminal state diverges from Spec: " + d;
  return std::nullopt;
}

template <typename D>
Instance make_atomic_handoff(bool relaxed) {
  auto s = std::make_shared<AtomicHandoffState<D>>();
  Instance inst;
  inst.state = s;
  inst.bodies = {
      [s, relaxed] {
        s->det.write(s->t1, s->x);
        s->det.atomic_store(
            s->t1, s->a, s->fw,
            relaxed ? atomics::kMoRelaxed : atomics::kMoRelease);
        // No sched point since the handler's last one: the flag becomes
        // visible atomically with the completed publication.
        s->published = true;
      },
      [s] {
        s->saw = s->published;
        s->det.atomic_load(s->t2, s->a, s->fr, atomics::kMoAcquire);
        if (s->saw) s->det.read(s->t2, s->x);
      },
  };
  inst.check = [s, relaxed] { return atomic_handoff_check(*s, relaxed); };
  return inst;
}

template <typename D>
struct AtomicCasState {
  RaceCollector races;
  RuleStats stats;
  D det;
  typename D::VarState x, y;
  atomics::AtomicState a;
  atomics::FenceTls f1, f2;
  ThreadState t0{0}, t1{1}, t2{2};
  bool pub1 = false, pub2 = false;
  bool saw_by1 = false;  ///< t1 observed t2's completed publication
  bool saw_by2 = false;  ///< t2 observed t1's completed publication

  AtomicCasState() : det(make_detector<D>(&races, &stats)) {
    x.id = kX;
    y.id = kY;
    det.write(t0, x);
    det.write(t0, y);
    det.fork(t0, t1);
    det.fork(t0, t2);
  }
};

/// Two unordered acq_rel publishers (the rmw_pre/rmw_post split of a CAS
/// loop) racing for the fast-epoch arm: the terminal arm must be SHARED
/// in every interleaving of the two mutex sections and CAS attempts
/// (neither publisher's clock covers the other's publication), the sync
/// clock must be the exact join of both (release = JOIN, not copy: no
/// schedule may lose a publisher), and the gated cross-reads must be
/// race-free exactly when the gate's serialization says so.
template <typename S>
std::optional<std::string> atomic_cas_check(S& s) {
  if (s.saw_by1 && s.saw_by2) {
    return "both threads observed the other publishing first";
  }
  Spec spec;
  const auto t1_ops = [&spec] {
    return !spec.on_write(1, kX).error &&
           !spec.on_atomic_rmw(1, kV, atomics::kMoAcqRel).error;
  };
  const auto t2_ops = [&spec] {
    return !spec.on_write(2, kY).error &&
           !spec.on_atomic_rmw(2, kV, atomics::kMoAcqRel).error;
  };
  bool okc = !spec.on_write(0, kX).error && !spec.on_write(0, kY).error &&
             !spec.on_fork(0, 1).error && !spec.on_fork(0, 2).error;
  if (s.saw_by1) {
    okc = okc && t2_ops() && t1_ops() && !spec.on_read(1, kY).error;
  } else if (s.saw_by2) {
    okc = okc && t1_ops() && t2_ops() && !spec.on_read(2, kX).error;
  } else {
    okc = okc && t1_ops() && t2_ops();
  }
  if (!okc) return "spec raced on the gated CAS publication program";
  if (!s.races.empty()) {
    const RaceReport r = *s.races.first();
    return "false race: " + std::string(race_kind_name(r.kind)) + " on var " +
           std::to_string(r.var) + " by t" + std::to_string(r.current_tid);
  }
  if (!vc_eq(s.a.sync_V, spec.atomic_vc(kV))) {
    return "CAS release clock is not the join of both publishers";
  }
  if (s.a.fast_epoch.load(std::memory_order_relaxed) !=
      atomics::AtomicState::kSharedBits) {
    return "unordered publishers must collapse the fast epoch to SHARED";
  }
  if (probe_w(s.x) != spec.var(kX).W || probe_r(s.x) != spec.var(kX).R) {
    return "terminal x state diverges from Spec";
  }
  if (probe_w(s.y) != spec.var(kY).W || probe_r(s.y) != spec.var(kY).R) {
    return "terminal y state diverges from Spec";
  }
  return std::nullopt;
}

template <typename D>
Instance make_atomic_cas_publish() {
  auto s = std::make_shared<AtomicCasState<D>>();
  Instance inst;
  inst.state = s;
  inst.bodies = {
      [s] {
        s->det.write(s->t1, s->x);
        s->saw_by1 = s->pub2;
        s->det.atomic_rmw_pre(s->t1, s->a, s->f1, atomics::kMoAcqRel);
        s->det.atomic_rmw_post(s->t1, s->a, s->f1, atomics::kMoAcqRel);
        s->pub1 = true;
        if (s->saw_by1) s->det.read(s->t1, s->y);
      },
      [s] {
        s->det.write(s->t2, s->y);
        s->saw_by2 = s->pub1;
        s->det.atomic_rmw_pre(s->t2, s->a, s->f2, atomics::kMoAcqRel);
        s->det.atomic_rmw_post(s->t2, s->a, s->f2, atomics::kMoAcqRel);
        s->pub2 = true;
        if (s->saw_by2) s->det.read(s->t2, s->x);
      },
  };
  inst.check = [s] { return atomic_cas_check(*s); };
  return inst;
}

// ---------------------------------------------------------------------------
// Harness self-test: a textbook AB-BA deadlock over cooperative mutexes.
// The explorer must FIND the deadlock (deadlocks > 0); a harness that
// cannot is not exploring lock orders.
// ---------------------------------------------------------------------------

inline Instance make_toy_deadlock() {
  struct S {
    Mutex a, b;
  };
  auto s = std::make_shared<S>();
  Instance inst;
  inst.state = s;
  inst.bodies = {
      [s] {
        s->a.lock();
        s->b.lock();
        s->b.unlock();
        s->a.unlock();
      },
      [s] {
        s->b.lock();
        s->a.lock();
        s->a.unlock();
        s->b.unlock();
      },
  };
  inst.check = [] { return std::nullopt; };
  return inst;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Scenario {
  const char* name;
  const char* summary;
  bool expect_deadlocks = false;  ///< toy-deadlock: deadlocks are the point
  InstanceFactory make;
};

inline const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> all = {
      {"v2-read-share", "VftV2 concurrent readers promote R to SHARED",
       false, [] { return make_duo<VftV2>(false); }},
      {"v2-read-write-race", "VftV2 unordered read vs write: one race",
       false, [] { return make_duo<VftV2>(true); }},
      {"ftcas-read-share", "FT-CAS concurrent readers through the R CAS window",
       false, [] { return make_duo<FtCas>(false); }},
      {"ftcas-read-write-race", "FT-CAS unordered read vs write: one race",
       false, [] { return make_duo<FtCas>(true); }},
      {"packed-escalate", "packed cell read/read: exactly one spill, no race",
       false, [] { return make_packed(PackedShape::kReadRead); }},
      {"packed-write-race", "packed cell write/write: one spill, one race",
       false, [] { return make_packed(PackedShape::kWriteWrite); }},
      {"packed-missed-race",
       "contended escalation: snapshot must reach both losers", false,
       [] { return make_packed(PackedShape::kMissedRace); }},
      {"volatile-publish", "Volatile publication: gated read is ordered",
       false, [] { return make_volatile(false); }},
      {"volatile-stale-epoch",
       "Volatile re-arm: stale fast epoch must not skip the join", false,
       [] { return make_volatile(true); }},
      {"atomic-handoff",
       "atomic release/acquire handoff: gated read is ordered", false,
       [] { return make_atomic_handoff<VftV2>(false); }},
      {"atomic-handoff-relaxed",
       "relaxed publication orders nothing: gated read must race", false,
       [] { return make_atomic_handoff<VftV2>(true); }},
      {"atomic-cas-publish",
       "unordered CAS publishers: joined clock, SHARED arm", false,
       [] { return make_atomic_cas_publish<VftV2>(); }},
      {"toy-deadlock", "AB-BA lock order: explorer must find the deadlock",
       true, make_toy_deadlock},
  };
  return all;
}

inline const Scenario* find_scenario(std::string_view name) {
  for (const Scenario& s : scenarios()) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

/// Test-only ordering mutations by CLI-friendly name.
inline std::atomic<bool>* find_mutation(std::string_view name) {
  if (name == "volatile-value-before-arm") {
    return &Mutations::volatile_value_before_arm;
  }
  if (name == "escalate-publish-before-inject") {
    return &Mutations::escalate_publish_before_inject;
  }
  return nullptr;
}

/// RAII arm/disarm of one mutation knob around an exploration.
class ScopedMutation {
 public:
  explicit ScopedMutation(std::atomic<bool>& knob) : knob_(knob) {
    knob_.store(true, std::memory_order_relaxed);
  }
  ~ScopedMutation() { knob_.store(false, std::memory_order_relaxed); }
  ScopedMutation(const ScopedMutation&) = delete;
  ScopedMutation& operator=(const ScopedMutation&) = delete;

 private:
  std::atomic<bool>& knob_;
};

}  // namespace vft::sched
