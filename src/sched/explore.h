// Schedule-space exploration on top of sched::Scheduler.
//
// explore_dfs: depth-first enumeration of every schedule of a scenario
// instance, with two orthogonal reducers:
//
//   - Sleep sets (Godefroid): when the explorer backtracks over a choice
//     p at a node, p is put to sleep in the sibling subtrees and stays
//     asleep until an operation conflicting with p's pending op executes
//     (conflicting = same object, at least one write-like; see
//     sched_point.h). A prefix whose every enabled thread is asleep is
//     provably a commutation of an already-visited schedule and is
//     abandoned (counted in sleep_blocked, not schedules). Sound for
//     "some schedule violates the check" because sleeping threads' next
//     ops commute with the explored subtree - see docs/ALGORITHM.md s11.
//
//   - A CHESS-style preemption bound: switching away from a still-
//     enabled thread is a preemption; schedules needing more than the
//     bound are cut (bound_blocked). Unlike sleep sets this is a real
//     coverage bound - exhaustive suites run with the bound off, larger
//     scenarios pick a small bound and say so.
//
// explore_pct: the PCT randomized sampler (Burckhardt et al.): random
// thread priorities, d-1 random priority-change points, highest-priority
// enabled thread runs. Fully deterministic given (seed, run index) - the
// generator is hand-rolled over std::mt19937_64 outputs only, never
// distribution classes, so artifacts replay across standard libraries.
//
// Both return the recorded Schedule of each failing execution; replay()
// re-executes one schedule exactly.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "sched/scheduler.h"

namespace vft::sched {

/// One scenario instance: fresh state, bodies closed over it, and a
/// post-run oracle check (nullopt = every oracle agrees with the run).
struct Instance {
  std::vector<Scheduler::Body> bodies;
  std::function<std::optional<std::string>()> check;
  std::shared_ptr<void> state;  ///< keepalive for whatever the closures use
};

using InstanceFactory = std::function<Instance()>;

struct ExploreConfig {
  int preemption_bound = -1;  ///< <0: unbounded (exhaustive)
  bool sleep_sets = true;
  std::size_t max_schedules = std::size_t{1} << 20;  ///< safety cap
  std::size_t max_steps = std::size_t{1} << 16;      ///< livelock guard
};

struct ExploreResult {
  std::size_t schedules = 0;      ///< complete executions visited
  std::size_t sleep_blocked = 0;  ///< prefixes pruned as redundant
  std::size_t bound_blocked = 0;  ///< prefixes cut by the preemption bound
  std::size_t deadlocks = 0;
  std::size_t livelocks = 0;
  std::size_t failures = 0;  ///< completed executions whose check failed
  std::vector<FailureArtifact> artifacts;  ///< first few failures
  bool capped = false;

  bool clean() const {
    return failures == 0 && deadlocks == 0 && livelocks == 0 && !capped;
  }
};

namespace detail {

inline constexpr std::uint32_t kNoTid = 0xFFFFFFFFu;

/// One decision point along the current DFS path. Stored pendings and
/// enabled sets are deterministic functions of the choice prefix, so
/// backtracking can pick the next sibling without re-running.
struct Node {
  std::vector<std::uint32_t> enabled;  ///< tids enabled here, ascending
  std::vector<PendingOp> pending;      ///< per tid (all threads)
  std::set<std::uint32_t> sleep_entry;
  std::set<std::uint32_t> done;
  std::optional<std::uint32_t> chosen;
  std::uint32_t prev_running = kNoTid;
  int preemptions = 0;  ///< used along the path up to this node
};

inline bool is_preemption(const Node& n, std::uint32_t c) {
  if (n.prev_running == kNoTid || n.prev_running == c) return false;
  for (std::uint32_t t : n.enabled) {
    if (t == n.prev_running) return true;  // switched away while runnable
  }
  return false;
}

/// First admissible candidate at n: enabled, not done, not asleep, and
/// within the preemption bound. Sets *bound_cut when the bound (alone)
/// removed at least one otherwise-admissible candidate.
inline std::optional<std::uint32_t> next_candidate(const Node& n,
                                                   const ExploreConfig& cfg,
                                                   bool* bound_cut) {
  for (std::uint32_t c : n.enabled) {
    if (n.done.contains(c)) continue;
    if (cfg.sleep_sets && n.sleep_entry.contains(c)) continue;
    if (cfg.preemption_bound >= 0 && is_preemption(n, c) &&
        n.preemptions >= cfg.preemption_bound) {
      *bound_cut = true;
      continue;
    }
    return c;
  }
  return std::nullopt;
}

}  // namespace detail

inline ExploreResult explore_dfs(const InstanceFactory& make,
                                 const ExploreConfig& cfg = {}) {
  ExploreResult res;
  std::vector<detail::Node> path;
  Scheduler sched(cfg.max_steps);
  for (;;) {
    if (res.schedules + res.sleep_blocked + res.bound_blocked >=
        cfg.max_schedules) {
      res.capped = true;
      break;
    }
    Instance inst = make();
    std::size_t depth = 0;
    std::set<std::uint32_t> carry;  // sleep set for the next new node
    std::uint32_t prev = detail::kNoTid;
    int preempts = 0;
    bool bound_this_run = false;

    const Scheduler::Chooser chooser =
        [&](const std::vector<ThreadView>& views)
        -> std::optional<std::uint32_t> {
      if (depth == path.size()) {
        // Frontier: record the decision point, pick its first candidate.
        detail::Node n;
        n.pending.resize(views.size());
        for (const ThreadView& v : views) {
          n.pending[v.tid] = v.pending;
          if (v.enabled) n.enabled.push_back(v.tid);
        }
        n.sleep_entry = carry;
        n.prev_running = prev;
        n.preemptions = preempts;
        bool bound_cut = false;
        n.chosen = detail::next_candidate(n, cfg, &bound_cut);
        const bool blocked = !n.chosen.has_value();
        if (blocked) bound_this_run = bound_cut;
        path.push_back(std::move(n));
        if (blocked) return std::nullopt;  // pruned prefix: abandon
      }
      detail::Node& n = path[depth];
      const std::uint32_t c = *n.chosen;
      if (cfg.sleep_sets) {
        // Child sleep set: sleepers and explored siblings whose pending
        // op commutes with c's stay asleep; conflicting ones wake.
        carry.clear();
        for (std::uint32_t t : n.sleep_entry) {
          if (!conflicting(n.pending[t], n.pending[c])) carry.insert(t);
        }
        for (std::uint32_t t : n.done) {
          if (!conflicting(n.pending[t], n.pending[c])) carry.insert(t);
        }
      }
      if (detail::is_preemption(n, c)) ++preempts;
      prev = c;
      ++depth;
      return c;
    };

    const Scheduler::Result r = sched.run(inst.bodies, chooser);
    if (r.completed) {
      ++res.schedules;
      std::optional<std::string> err =
          inst.check ? inst.check() : std::nullopt;
      if (err.has_value()) {
        ++res.failures;
        if (res.artifacts.size() < 8) {
          res.artifacts.push_back(
              {"", 0, res.schedules, preempts, r.schedule, *err});
        }
      }
    } else if (r.abandoned) {
      if (bound_this_run) {
        ++res.bound_blocked;
      } else {
        ++res.sleep_blocked;
      }
    } else if (r.deadlock) {
      ++res.deadlocks;
      if (res.artifacts.size() < 8) {
        res.artifacts.push_back(
            {"", 0, res.schedules, preempts, r.schedule, "deadlock"});
      }
    } else if (r.livelock) {
      ++res.livelocks;
    }

    // Backtrack: advance the deepest node with an untried sibling.
    bool advanced = false;
    while (!path.empty()) {
      detail::Node& n = path.back();
      if (n.chosen.has_value()) {
        n.done.insert(*n.chosen);
        n.chosen.reset();
      }
      bool bound_cut = false;
      if (auto pick = detail::next_candidate(n, cfg, &bound_cut)) {
        n.chosen = pick;
        advanced = true;
        break;
      }
      path.pop_back();
    }
    if (!advanced) break;  // space exhausted
  }
  return res;
}

struct PctConfig {
  std::uint64_t seed = 1;
  int preemptions = 3;  ///< PCT depth d: d-1 priority change points
  std::size_t runs = 100;
  std::size_t max_steps = std::size_t{1} << 16;
  std::size_t length_hint = 64;  ///< change points drawn from [1, hint)
};

struct PctResult {
  std::size_t runs = 0;
  std::size_t failures = 0;
  std::size_t deadlocks = 0;
  std::size_t livelocks = 0;
  std::vector<FailureArtifact> artifacts;
};

inline PctResult explore_pct(const InstanceFactory& make,
                             const PctConfig& cfg = {}) {
  PctResult res;
  Scheduler sched(cfg.max_steps);
  for (std::size_t run = 0; run < cfg.runs; ++run) {
    // One self-contained stream per run: replaying (seed, run) alone
    // reproduces the schedule.
    std::mt19937_64 rng(cfg.seed * 0x9E3779B97F4A7C15ull + run + 1);
    Instance inst = make();
    const std::size_t n = inst.bodies.size();
    // Initial priorities: a permutation of [d, d+n), Fisher-Yates over
    // raw rng() words (distribution classes are not portable).
    std::vector<long> prio(n);
    for (std::size_t i = 0; i < n; ++i) prio[i] = cfg.preemptions + long(i);
    for (std::size_t i = n; i > 1; --i) {
      std::swap(prio[i - 1], prio[rng() % i]);
    }
    // d-1 change points at random step indices; at the k-th one reached,
    // the currently-highest enabled thread drops below everything.
    std::vector<std::size_t> change_at;
    const int changes = cfg.preemptions > 0 ? cfg.preemptions - 1 : 0;
    for (int k = 0; k < changes; ++k) {
      change_at.push_back(1 + rng() % (cfg.length_hint > 1
                                           ? cfg.length_hint - 1
                                           : 1));
    }
    long next_low = 0;
    std::size_t step = 0;
    const Scheduler::Chooser chooser =
        [&](const std::vector<ThreadView>& views)
        -> std::optional<std::uint32_t> {
      std::uint32_t best = detail::kNoTid;
      for (const ThreadView& v : views) {
        if (v.enabled && (best == detail::kNoTid || prio[v.tid] > prio[best])) {
          best = v.tid;
        }
      }
      for (std::size_t cp : change_at) {
        if (cp == step) prio[best] = --next_low;
      }
      // Re-pick after any priority drop.
      for (const ThreadView& v : views) {
        if (v.enabled && (prio[v.tid] > prio[best])) best = v.tid;
      }
      ++step;
      return best;
    };
    const Scheduler::Result r = sched.run(inst.bodies, chooser);
    ++res.runs;
    std::optional<std::string> err;
    if (r.completed) {
      err = inst.check ? inst.check() : std::nullopt;
    } else if (r.deadlock) {
      ++res.deadlocks;
      err = "deadlock";
    } else if (r.livelock) {
      ++res.livelocks;
      err = "livelock";
    }
    if (err.has_value()) {
      ++res.failures;
      if (res.artifacts.size() < 8) {
        res.artifacts.push_back(
            {"", cfg.seed, run, cfg.preemptions, r.schedule, *err});
      }
    }
  }
  return res;
}

/// Re-execute one recorded schedule exactly. The scenario programs are
/// deterministic given the schedule, so this reproduces the original
/// execution; a schedule that no longer matches (picks a disabled or
/// missing thread) abandons and reports so.
struct ReplayOutcome {
  Scheduler::Result result;
  std::optional<std::string> error;  ///< check failure, deadlock, mismatch
};

inline ReplayOutcome replay(const InstanceFactory& make, const Schedule& s,
                            std::size_t max_steps = std::size_t{1} << 16) {
  Instance inst = make();
  std::size_t pos = 0;
  bool mismatch = false;
  Scheduler sched(max_steps);
  ReplayOutcome out;
  out.result = sched.run(
      inst.bodies,
      [&](const std::vector<ThreadView>& views)
          -> std::optional<std::uint32_t> {
        if (pos >= s.size()) return std::nullopt;
        const std::uint32_t c = s[pos++];
        if (c >= views.size() || !views[c].enabled) {
          mismatch = true;
          return std::nullopt;
        }
        return c;
      });
  if (mismatch) {
    out.error = "schedule does not match this scenario/build";
  } else if (out.result.abandoned) {
    out.error = "schedule ended before the program did";
  } else if (out.result.deadlock) {
    out.error = "deadlock";
  } else if (out.result.livelock) {
    out.error = "livelock";
  } else if (out.result.completed && inst.check) {
    out.error = inst.check();
  }
  return out;
}

}  // namespace vft::sched
