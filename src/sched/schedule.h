// Schedule: the replay format shared by the DFS explorer, the PCT
// sampler, the `vft sched` CLI, and the promoted deterministic handshake
// tests (sched/script.h). A schedule is simply the sequence of virtual
// thread indices the scheduler resumed, one entry per sched point; the
// textual form is comma-separated ("0,1,1,0"), compact enough to paste
// from a CI log into `vft sched --schedule`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace vft::sched {

using Schedule = std::vector<std::uint32_t>;

inline std::string to_string(const Schedule& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(s[i]);
  }
  return out;
}

/// Parse "0,1,1,0". Returns nullopt on malformed input (anything but
/// digits and separating commas).
inline std::optional<Schedule> parse_schedule(const std::string& text) {
  Schedule out;
  std::uint32_t cur = 0;
  bool have_digit = false;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<std::uint32_t>(c - '0');
      have_digit = true;
    } else if (c == ',') {
      if (!have_digit) return std::nullopt;
      out.push_back(cur);
      cur = 0;
      have_digit = false;
    } else if (c != ' ') {
      return std::nullopt;
    }
  }
  if (have_digit) out.push_back(cur);
  if (out.empty()) return std::nullopt;
  return out;
}

/// Everything needed to reproduce one failing execution. The PCT sampler
/// emits these; DFS failures reuse the format with seed/run zeroed. The
/// schedule alone replays the execution exactly (the scenario programs
/// are deterministic given the schedule); seed + preemptions + run
/// re-derive it from scratch as a cross-check.
struct FailureArtifact {
  std::string scenario;
  std::uint64_t seed = 0;
  std::size_t run = 0;
  int preemptions = 0;
  Schedule schedule;
  std::string error;
};

/// One greppable line per failure ("VFT-SCHED-FAIL ..."), the form CI
/// uploads and README documents for the triage loop.
inline std::string format_artifact(const FailureArtifact& a) {
  return "VFT-SCHED-FAIL scenario=" + a.scenario +
         " seed=" + std::to_string(a.seed) + " run=" + std::to_string(a.run) +
         " preemptions=" + std::to_string(a.preemptions) +
         " schedule=" + to_string(a.schedule) + " error=" + a.error;
}

}  // namespace vft::sched
