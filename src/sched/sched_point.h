// SchedPoint: the VFT_SCHED injection seam for systematic schedule
// exploration (loom/CHESS style) of the detectors' own atomics.
//
// The detectors' lock-free hot paths (sync_var_state.h, ft_cas.h,
// packed_cell.h, sync_vector_clock.h, the Volatile fast path in
// runtime/instrument.h) announce every shared atomic load/store/CAS
// through VFT_SCHED_POINT before performing it. Under a VFT_SCHED build
// with a scheduler installed (src/sched/scheduler.h), each announcement
// parks the calling thread until the scheduler picks it to run, so a
// driver can enumerate or sample every interleaving of the announced
// operations. Without VFT_SCHED the macros expand to nothing and the
// cooperative mutex alias collapses to std::mutex: the production hot
// paths are byte-for-byte what they were.
//
// ODR rule: every translation unit that includes an instrumented header
// and ends up in the same binary must agree on VFT_SCHED. The sched test
// target therefore links only libraries whose TUs never include detector
// headers (vft_core, vft_trace) and compiles the runtime TUs it needs
// itself; see tests/CMakeLists.txt.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>

namespace vft::sched {

/// True in VFT_SCHED builds; lets call sites (the CLI) degrade gracefully
/// instead of silently exploring a program with no sched points.
#ifdef VFT_SCHED
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// What the parked thread is about to do. The explorer's dependence
/// relation (sleep-set pruning) and the scheduler's enabled-set both key
/// off this: two operations conflict iff they target the same object and
/// at least one is a write (CAS counts as a write even when it fails -
/// over-approximating dependence is sound, it only costs pruning).
enum class PointKind : std::uint8_t {
  kThreadStart,  ///< virtual thread parked before its body runs
  kLoad,         ///< atomic load
  kStore,        ///< atomic store
  kCas,          ///< compare-exchange (attempt; may fail)
  kLockAcq,      ///< cooperative mutex lock (disabled while held by another)
  kLockRel,      ///< cooperative mutex unlock
  kSpin,         ///< spin-loop iteration (disabled until any state change)
};

/// True when the op kind can change shared state (wakes spinners, makes
/// CAS loops re-run, conflicts with everything on the same object).
inline constexpr bool is_write_kind(PointKind k) {
  return k == PointKind::kStore || k == PointKind::kCas ||
         k == PointKind::kLockAcq || k == PointKind::kLockRel;
}

/// One announced pending operation.
struct PendingOp {
  PointKind kind = PointKind::kThreadStart;
  const void* obj = nullptr;
};

/// Two pending ops conflict (are "dependent" in the partial-order sense)
/// iff they can't be commuted: same object, at least one write-like.
/// kThreadStart and kSpin conservatively conflict with everything, so a
/// sleeping thread holding one never stays wrongly asleep.
inline bool conflicting(const PendingOp& a, const PendingOp& b) {
  if (a.kind == PointKind::kThreadStart || b.kind == PointKind::kThreadStart ||
      a.kind == PointKind::kSpin || b.kind == PointKind::kSpin) {
    return true;
  }
  if (a.obj != b.obj) return false;
  return is_write_kind(a.kind) || is_write_kind(b.kind);
}

/// The scheduler side of the seam. Installed per OS thread via tls_hook;
/// the instrumented headers call through it only when one is present.
class SchedHook {
 public:
  virtual ~SchedHook() = default;
  /// Announce `op` and park until scheduled; the caller performs the op
  /// after this returns, before its next point.
  virtual void point(PendingOp op) = 0;
  /// Cooperative mutex ops: the scheduler serializes execution and tracks
  /// ownership, so no real lock is taken while a hook is installed.
  virtual void coop_lock(const void* mu) = 0;
  virtual void coop_unlock(const void* mu) = 0;
  /// One spin-loop iteration: park until any other thread performs a
  /// store/CAS/unlock (keeps DFS over spin loops finite).
  virtual void spin(const void* obj) = 0;
};

inline thread_local SchedHook* tls_hook = nullptr;

inline void point(PointKind k, const void* obj) {
  if (SchedHook* h = tls_hook) h->point({k, obj});
}

inline void spin_yield(const void* obj) {
  if (SchedHook* h = tls_hook) {
    h->spin(obj);
  } else {
    std::this_thread::yield();
  }
}

/// Drop-in mutex for the detectors' VarState/Volatile locks. With a hook
/// installed, lock/unlock become scheduler decisions (the scheduler keeps
/// a thread with a pending acquire on a held lock disabled); without one
/// it is a plain std::mutex. Lockable, so std::scoped_lock works.
class Mutex {
 public:
  void lock() {
    if (SchedHook* h = tls_hook) {
      h->coop_lock(this);
    } else {
      mu_.lock();
    }
  }
  void unlock() {
    if (SchedHook* h = tls_hook) {
      h->coop_unlock(this);
    } else {
      mu_.unlock();
    }
  }

 private:
  std::mutex mu_;
};

/// Test-only ordering mutations (the "seeded bug" smoke tests of
/// tests/sched_explore_test.cpp). Consulted only inside #ifdef VFT_SCHED
/// blocks of the instrumented headers: production builds never even read
/// the flags. Each knob reorders two statements in exactly the way the
/// weakened memory order it names would permit, so the SC-only explorer
/// can observe the bug as a statement interleaving.
struct Mutations {
  /// Volatile::store publishes the data value *before* arming fast_epoch_
  /// (models dropping the release/ordering between the arm and the value
  /// publication): a reader can observe a fresh value with a stale armed
  /// epoch it already knows, skip the clock join, and later report a
  /// false race on a location the volatile was supposed to order.
  static inline std::atomic<bool> volatile_value_before_arm{false};
  /// escalate_cell publishes ESCALATED *before* injecting the {R, W}
  /// snapshot into the spilled VarState (models dropping the release on
  /// finish_escalate): a losing thread can run the detector against an
  /// empty VarState and miss a race the snapshot carried.
  static inline std::atomic<bool> escalate_publish_before_inject{false};

  static void reset() {
    volatile_value_before_arm.store(false, std::memory_order_relaxed);
    escalate_publish_before_inject.store(false, std::memory_order_relaxed);
  }
};

}  // namespace vft::sched

namespace vft {

/// The mutex type the instrumented headers declare. std::mutex in
/// production builds; the cooperative one under VFT_SCHED.
#ifdef VFT_SCHED
using SchedMutex = sched::Mutex;
#else
using SchedMutex = std::mutex;
#endif

}  // namespace vft

#ifdef VFT_SCHED
#define VFT_SCHED_POINT(kind, obj) \
  ::vft::sched::point(::vft::sched::PointKind::kind, obj)
#define VFT_SCHED_SPIN(obj) ::vft::sched::spin_yield(obj)
#else
#define VFT_SCHED_POINT(kind, obj) ((void)0)
#define VFT_SCHED_SPIN(obj) (std::this_thread::yield())
#endif
