// ScriptedOrder: the scheduler's replay format applied at coarse-step
// granularity, for deterministic handshake tests that run in ordinary
// (non-VFT_SCHED) builds.
//
// The fine-grained Scheduler serializes every atomic access and only
// exists under VFT_SCHED; the promoted handshake tests in
// tests/packed_fastpath_test.cpp and tests/volatile_fastpath_test.cpp
// instead name a handful of coarse steps per thread (a whole detector
// call, a store+store pair) and drive them in an explicit order. Both
// layers speak sched::Schedule - a list of thread indices, one per step -
// so a schedule printed by one is readable by the other and by
// `vft sched --schedule`.
//
// Usage:
//   ScriptedOrder order({0, 1, 1, 0});     // t0, then t1 twice, then t0
//   // thread 0:  order.step(0, [&]{ ... }); ... order.step(0, [&]{ ... });
//   // thread 1:  order.step(1, [&]{ ... }); order.step(1, [&]{ ... });
// Each step blocks until every earlier schedule entry has executed, runs
// its body while holding the sequencer lock (steps are totally ordered
// and mutually exclusive - that is the point), and wakes the next. The
// destructor checks the whole schedule was consumed, so a test that
// under-runs its script fails loudly instead of silently passing.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <type_traits>
#include <utility>

#include "sched/schedule.h"
#include "vft/assert.h"

namespace vft::sched {

class ScriptedOrder {
 public:
  explicit ScriptedOrder(Schedule schedule) : sched_(std::move(schedule)) {}

  ~ScriptedOrder() { VFT_CHECK(pos_ == sched_.size()); }

  ScriptedOrder(const ScriptedOrder&) = delete;
  ScriptedOrder& operator=(const ScriptedOrder&) = delete;

  /// Run `body` as the next step owned by `tid`. Blocks until the
  /// schedule reaches an entry equal to tid.
  template <typename F>
  auto step(std::uint32_t tid, F&& body) {
    std::unique_lock lk(m_);
    cv_.wait(lk, [&] { return pos_ < sched_.size() && sched_[pos_] == tid; });
    // Advance before running: if body throws (a failing EXPECT inside a
    // GTest death, say) the remaining steps are not wedged.
    ++pos_;
    auto wake = [this] { cv_.notify_all(); };
    if constexpr (std::is_void_v<decltype(body())>) {
      std::forward<F>(body)();
      wake();
    } else {
      auto r = std::forward<F>(body)();
      wake();
      return r;
    }
  }

  std::size_t consumed() const {
    std::scoped_lock lk(m_);
    return pos_;
  }

 private:
  mutable std::mutex m_;
  std::condition_variable cv_;
  Schedule sched_;
  std::size_t pos_ = 0;
};

}  // namespace vft::sched
