// libvft_preload: run the analysis under an *unmodified* target binary.
//
// Two event sources feed the C ABI (src/abi/vft_abi.h):
//
//   Synchronization - this library defines the pthread entry points the
//   target calls (pthread_create/join/detach, mutex lock/trylock/unlock,
//   condvar waits) and forwards to the real libc implementation resolved
//   with dlsym(RTLD_NEXT). Works both via LD_PRELOAD (the `vft run`
//   launcher) and by linking the target against this library directly.
//
//   Memory accesses - an OS-level wrapper cannot see plain loads and
//   stores, so the target is compiled with GCC/Clang's
//   `-fsanitize=thread` *compile-only* instrumentation (no -fsanitize at
//   link, so libtsan never enters the process) and this library provides
//   the __tsan_* surface those compilers emit, mapping it onto
//   vft_read*/vft_write*. This is the substitution for RoadRunner's
//   bytecode instrumentation at the native level: the compiler inserts
//   the event calls, we supply the tool behind them.
//
// Ordering discipline (ALGORITHM.md Section 4) is enforced here, at the
// boundary where target operations actually happen:
//   - the acquire handler runs *after* the native lock call succeeded
//     (only a successful acquire orders the critical section);
//   - the join handler runs *after* the native join returned (only then
//     is the child's final clock stable);
//   - release, fork, and access handlers run *before* their operation.
//
// Thread exit is observed with a pthread_key destructor: it fires during
// thread termination after C++ thread_locals are destroyed, whether the
// thread returned from its start routine or called pthread_exit. The
// library constructor attaches the main thread; its destructor detaches
// it and writes the end-of-run report (VFT_REPORT=<path>, JSON when the
// path ends in ".json"; always a one-line summary to stderr).
#ifndef _GNU_SOURCE
#define _GNU_SOURCE
#endif

#include <dlfcn.h>
#include <malloc.h>
#include <pthread.h>
#include <signal.h>
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/mman.h>

#include "abi/vft_abi.h"
#include "abi/vft_abi_inline.h"

namespace {

// ---------------------------------------------------------------------
// Real-function resolution. Eager where possible (library constructor);
// free() additionally resolves lazily because the dynamic linker can
// call it before our constructor runs.
// ---------------------------------------------------------------------

template <typename Fn>
Fn resolve(const char* name) {
  return reinterpret_cast<Fn>(dlsym(RTLD_NEXT, name));
}

using CreateFn = int (*)(pthread_t*, const pthread_attr_t*, void* (*)(void*),
                         void*);
using JoinFn = int (*)(pthread_t, void**);
using DetachFn = int (*)(pthread_t);
using MutexFn = int (*)(pthread_mutex_t*);
using CondWaitFn = int (*)(pthread_cond_t*, pthread_mutex_t*);
using CondTimedWaitFn = int (*)(pthread_cond_t*, pthread_mutex_t*,
                                const struct timespec*);
using FreeFn = void (*)(void*);
using MunmapFn = int (*)(void*, size_t);
using MemcpyFn = void* (*)(void*, const void*, size_t);
using MemsetFn = void* (*)(void*, int, size_t);
using BzeroFn = void (*)(void*, size_t);
using StrlenFn = size_t (*)(const char*);
using StrnlenFn = size_t (*)(const char*, size_t);
using StrcpyFn = char* (*)(char*, const char*);
using StrncpyFn = char* (*)(char*, const char*, size_t);
using StrcatFn = char* (*)(char*, const char*);

CreateFn real_create;
JoinFn real_join;
DetachFn real_detach;
MutexFn real_mutex_lock;
MutexFn real_mutex_trylock;
MutexFn real_mutex_unlock;
CondWaitFn real_cond_wait;
CondTimedWaitFn real_cond_timedwait;
FreeFn real_free;
MunmapFn real_munmap;
MemcpyFn real_memcpy;
MemcpyFn real_memmove;
MemsetFn real_memset;
BzeroFn real_bzero;
StrlenFn real_strlen;
StrnlenFn real_strnlen;
StrcpyFn real_strcpy;
StrncpyFn real_strncpy;
StrcatFn real_strcat;

/// Set at the end of the library constructor: mem*/str* calls before the
/// analysis is up (dynamic-linker bootstrap, early libc init) forward no
/// events - they run against memory no target thread has touched yet.
volatile int g_mem_ready = 0;

void resolve_all() {
  real_create = resolve<CreateFn>("pthread_create");
  real_join = resolve<JoinFn>("pthread_join");
  real_detach = resolve<DetachFn>("pthread_detach");
  real_mutex_lock = resolve<MutexFn>("pthread_mutex_lock");
  real_mutex_trylock = resolve<MutexFn>("pthread_mutex_trylock");
  real_mutex_unlock = resolve<MutexFn>("pthread_mutex_unlock");
  real_cond_wait = resolve<CondWaitFn>("pthread_cond_wait");
  real_cond_timedwait = resolve<CondTimedWaitFn>("pthread_cond_timedwait");
  real_free = resolve<FreeFn>("free");
  real_munmap = resolve<MunmapFn>("munmap");
  real_memcpy = resolve<MemcpyFn>("memcpy");
  real_memmove = resolve<MemcpyFn>("memmove");
  real_memset = resolve<MemsetFn>("memset");
  real_bzero = resolve<BzeroFn>("bzero");
  real_strlen = resolve<StrlenFn>("strlen");
  real_strnlen = resolve<StrnlenFn>("strnlen");
  real_strcpy = resolve<StrcpyFn>("strcpy");
  real_strncpy = resolve<StrncpyFn>("strncpy");
  real_strcat = resolve<StrcatFn>("strcat");
}

// ---------------------------------------------------------------------
// Thread-exit observation: a key whose destructor runs as the thread
// terminates. Set for every thread we trampoline (and the main thread
// is covered by the library destructor instead).
// ---------------------------------------------------------------------

pthread_key_t g_end_key;
pthread_once_t g_end_key_once = PTHREAD_ONCE_INIT;

void on_thread_end(void*) { vft_detach(); }

void make_end_key() { pthread_key_create(&g_end_key, on_thread_end); }

void arm_thread_end() {
  pthread_once(&g_end_key_once, make_end_key);
  pthread_setspecific(g_end_key, reinterpret_cast<void*>(1));
}

// ---------------------------------------------------------------------
// pthread_t -> analysis token map, for routing join/detach. A plain
// open-addressed table under a libc mutex (no C++ containers here: this
// code runs inside malloc/free interposition paths).
// ---------------------------------------------------------------------

struct TokenEntry {
  pthread_t tid;
  uint64_t token;
  int used;
};

constexpr size_t kTokenSlots = 1024;  // concurrent unjoined threads
TokenEntry g_tokens[kTokenSlots];
pthread_mutex_t g_tokens_mu = PTHREAD_MUTEX_INITIALIZER;

void token_put(pthread_t tid, uint64_t token) {
  real_mutex_lock(&g_tokens_mu);
  for (size_t i = 0; i < kTokenSlots; ++i) {
    if (!g_tokens[i].used) {
      g_tokens[i] = TokenEntry{tid, token, 1};
      real_mutex_unlock(&g_tokens_mu);
      return;
    }
  }
  real_mutex_unlock(&g_tokens_mu);
  // Table full: the thread stays monitored but its join edge is lost
  // (conservative for false negatives only on > kTokenSlots unjoined
  // threads, which a reasonable target never accumulates).
}

uint64_t token_take(pthread_t tid) {
  real_mutex_lock(&g_tokens_mu);
  for (size_t i = 0; i < kTokenSlots; ++i) {
    if (g_tokens[i].used && pthread_equal(g_tokens[i].tid, tid)) {
      g_tokens[i].used = 0;
      const uint64_t token = g_tokens[i].token;
      real_mutex_unlock(&g_tokens_mu);
      return token;
    }
  }
  real_mutex_unlock(&g_tokens_mu);
  return 0;
}

// ---------------------------------------------------------------------
// Thread trampoline: binds the child to its pre-created ThreadState
// before a single target instruction runs in it.
// ---------------------------------------------------------------------

struct StartPack {
  void* (*fn)(void*);
  void* arg;
  uint64_t token;
};

void* trampoline(void* raw) {
  StartPack* heap_pack = static_cast<StartPack*>(raw);
  StartPack pack = *heap_pack;
  if (real_free != nullptr) real_free(heap_pack);
  vft_thread_begin(pack.token);
  arm_thread_end();
  return pack.fn(pack.arg);
}

bool attr_is_detached(const pthread_attr_t* attr) {
  if (attr == nullptr) return false;
  int state = PTHREAD_CREATE_JOINABLE;
  pthread_attr_getdetachstate(attr, &state);
  return state == PTHREAD_CREATE_DETACHED;
}

}  // namespace

// ---------------------------------------------------------------------
// Interposed pthread surface.
// ---------------------------------------------------------------------

extern "C" {

int pthread_create(pthread_t* tid, const pthread_attr_t* attr,
                   void* (*fn)(void*), void* arg) {
  if (real_create == nullptr) resolve_all();
  const uint64_t token = vft_thread_create();  // fork handler: before create
  StartPack* pack = static_cast<StartPack*>(malloc(sizeof(StartPack)));
  if (pack == nullptr) return real_create(tid, attr, fn, arg);
  *pack = StartPack{fn, arg, token};
  const int rc = real_create(tid, attr, trampoline, pack);
  if (rc != 0) {
    if (real_free != nullptr) real_free(pack);
    vft_thread_join(token);  // child never existed: reclaim its slot
    return rc;
  }
  if (token != 0) {
    if (attr_is_detached(attr)) {
      vft_thread_detach(token);
    } else {
      token_put(*tid, token);
    }
  }
  return rc;
}

int pthread_join(pthread_t tid, void** retval) {
  if (real_join == nullptr) resolve_all();
  const int rc = real_join(tid, retval);
  if (rc == 0) {
    vft_thread_join(token_take(tid));  // join handler: after native join
  }
  return rc;
}

int pthread_detach(pthread_t tid) {
  if (real_detach == nullptr) resolve_all();
  const int rc = real_detach(tid);
  if (rc == 0) vft_thread_detach(token_take(tid));
  return rc;
}

int pthread_mutex_lock(pthread_mutex_t* m) {
  if (real_mutex_lock == nullptr) resolve_all();
  const int rc = real_mutex_lock(m);
  if (rc == 0) vft_mutex_lock(m);  // acquire handler: after the acquire
  return rc;
}

int pthread_mutex_trylock(pthread_mutex_t* m) {
  if (real_mutex_trylock == nullptr) resolve_all();
  const int rc = real_mutex_trylock(m);
  if (rc == 0) vft_mutex_lock(m);  // only a successful trylock acquires
  return rc;
}

int pthread_mutex_unlock(pthread_mutex_t* m) {
  if (real_mutex_unlock == nullptr) resolve_all();
  vft_mutex_unlock(m);  // release handler: before the release
  return real_mutex_unlock(m);
}

// A condvar wait releases the mutex, blocks, and reacquires: model it as
// exactly that - release handler before the wait, acquire handler after
// the (always reacquiring) return, timeout or not.
int pthread_cond_wait(pthread_cond_t* c, pthread_mutex_t* m) {
  if (real_cond_wait == nullptr) resolve_all();
  vft_mutex_unlock(m);
  const int rc = real_cond_wait(c, m);
  vft_mutex_lock(m);
  return rc;
}

int pthread_cond_timedwait(pthread_cond_t* c, pthread_mutex_t* m,
                           const struct timespec* abstime) {
  if (real_cond_timedwait == nullptr) resolve_all();
  vft_mutex_unlock(m);
  const int rc = real_cond_timedwait(c, m, abstime);
  vft_mutex_lock(m);
  return rc;
}

// ---------------------------------------------------------------------
// Memory-lifetime interposition: freed ranges reset their shadow and
// lock state so recycled addresses start from bottom.
// ---------------------------------------------------------------------

void free(void* p) {
  if (real_free == nullptr) {
    real_free = resolve<FreeFn>("free");
    if (real_free == nullptr) return;  // dlsym bootstrap: leak, don't crash
  }
  if (p != nullptr) vft_free_hint(p, malloc_usable_size(p));
  real_free(p);
}

int munmap(void* addr, size_t len) {
  if (real_munmap == nullptr) resolve_all();
  vft_free_hint(addr, len);
  return real_munmap(addr, len);
}

// ---------------------------------------------------------------------
// The __tsan_* surface `-fsanitize=thread` compilation emits; mapped
// onto the sized ABI events. Unaligned and 16-byte forms degrade to the
// range path inside the session when they straddle a shadow word.
//
// Each access wrapper first arms the per-thread capture boundary
// (vft/event_ctx.h): its return address is the instrumented access site
// in the target, and its frame address anchors the frame-pointer walk
// that reconstructs the target's stack *if* this access races. On the
// non-racing path these two stores are the entire cost (the bench's
// `report_ctx` section measures them); the ABI clears the boundary on
// the way out.
// ---------------------------------------------------------------------

#define VFT_ARM_EVENT_CTX()                              \
  do {                                                   \
    vft_tl_event_ctx.pc = __builtin_return_address(0);   \
    vft_tl_event_ctx.fp = __builtin_frame_address(0);    \
  } while (0)

void __tsan_init(void) {}

// Shadow call stack (vft/event_ctx.h): the compiler instruments every
// function prologue with the call site's return address and every
// epilogue with an exit. Two TLS stores per call on the hot path; the
// payoff is that __tsan_*-sourced race reports carry caller stacks even
// for targets built without frame pointers (capture_event_stack falls
// back to this stack when the fp walk dies). depth counts past the cap
// so deep recursion unwinds balanced.
void __tsan_func_entry(void* call_pc) {
  vft_shadow_stack_s& ss = vft_tl_shadow_stack;
  if (ss.depth < VFT_SHADOW_STACK_MAX) ss.pc[ss.depth] = call_pc;
  ss.depth++;
}
void __tsan_func_exit(void) {
  vft_shadow_stack_s& ss = vft_tl_shadow_stack;
  if (ss.depth != 0) ss.depth--;
}

// Sized wrappers compile the header-inlined fast path directly into the
// interposition boundary: a same-epoch hit (or a drop-policy sampled-out
// skip) returns before any call, any AbiScope, and any event-context
// store. Only an inline miss arms the capture boundary - the slow path
// is the only consumer, and a hit cannot race.
//
// The trailing barrier keeps the slow call out of tail position: a
// sibling-call would pop this frame (and the armed fp anchor) before the
// detector runs, so a race would walk freed stack instead of the caller
// chain.
#define VFT_TSAN_READ(name, size)                 \
  void name(void* a) {                            \
    if (vft_fastpath_try_read(a, (size))) return; \
    VFT_ARM_EVENT_CTX();                          \
    vft_abi_slow_read(a, (size));                 \
    asm volatile("" ::: "memory");                \
  }
#define VFT_TSAN_WRITE(name, size)                 \
  void name(void* a) {                             \
    if (vft_fastpath_try_write(a, (size))) return; \
    VFT_ARM_EVENT_CTX();                           \
    vft_abi_slow_write(a, (size));                 \
    asm volatile("" ::: "memory");                 \
  }
#define VFT_TSAN_RANGE(name, fwd)      \
  void name(void* a) {                 \
    VFT_ARM_EVENT_CTX();               \
    fwd;                               \
    asm volatile("" ::: "memory");     \
  }

VFT_TSAN_READ(__tsan_read1, 1)
VFT_TSAN_READ(__tsan_read2, 2)
VFT_TSAN_READ(__tsan_read4, 4)
VFT_TSAN_READ(__tsan_read8, 8)
VFT_TSAN_RANGE(__tsan_read16, vft_range_read(a, 16))
VFT_TSAN_WRITE(__tsan_write1, 1)
VFT_TSAN_WRITE(__tsan_write2, 2)
VFT_TSAN_WRITE(__tsan_write4, 4)
VFT_TSAN_WRITE(__tsan_write8, 8)
VFT_TSAN_RANGE(__tsan_write16, vft_range_write(a, 16))

VFT_TSAN_READ(__tsan_unaligned_read2, 2)
VFT_TSAN_READ(__tsan_unaligned_read4, 4)
VFT_TSAN_READ(__tsan_unaligned_read8, 8)
VFT_TSAN_RANGE(__tsan_unaligned_read16, vft_range_read(a, 16))
VFT_TSAN_WRITE(__tsan_unaligned_write2, 2)
VFT_TSAN_WRITE(__tsan_unaligned_write4, 4)
VFT_TSAN_WRITE(__tsan_unaligned_write8, 8)
VFT_TSAN_RANGE(__tsan_unaligned_write16, vft_range_write(a, 16))

#undef VFT_TSAN_READ
#undef VFT_TSAN_WRITE
#undef VFT_TSAN_RANGE

void __tsan_read_range(void* a, unsigned long size) {
  VFT_ARM_EVENT_CTX();
  vft_range_read(a, size);
}
void __tsan_write_range(void* a, unsigned long size) {
  VFT_ARM_EVENT_CTX();
  vft_range_write(a, size);
}

void __tsan_vptr_read(void** a) {
  if (vft_fastpath_try_read(a, 8)) return;
  VFT_ARM_EVENT_CTX();
  vft_abi_slow_read(a, 8);
  asm volatile("" ::: "memory");
}
void __tsan_vptr_update(void** a, void*) {
  if (vft_fastpath_try_write(a, 8)) return;
  VFT_ARM_EVENT_CTX();
  vft_abi_slow_write(a, 8);
  asm volatile("" ::: "memory");
}

// ---------------------------------------------------------------------
// __tsan_atomic*: with -fsanitize=thread the compiler replaces the
// atomic operation itself with these calls, so each wrapper must perform
// the REAL operation via the __atomic builtins *and* feed the sync
// halves to the analysis, in the Section 4 ordering: publish
// (vft_atomic_store / _rmw_pre) before the value becomes visible, join
// (vft_atomic_load / _rmw_post) after it was observed.
//
// The real operation runs with *hardened* hardware ordering - loads at
// least acquire, stores at least release, RMWs acq_rel (TSan's runtime
// makes the same choice). Strengthening the execution never hides a
// race from the clock analysis (verdicts come from the declared orders,
// which are forwarded to the ABI untouched), and it is what makes the
// runtime's fast-epoch protocol sound on any host: reading a value
// implies seeing its writer's sync-state updates. The declared order
// arrives as the TSan morder argument, which is numerically identical
// to __ATOMIC_* - it is passed through verbatim.
// ---------------------------------------------------------------------

#define VFT_HW_LOAD(mo) ((mo) == 5 ? __ATOMIC_SEQ_CST : __ATOMIC_ACQUIRE)
#define VFT_HW_STORE(mo) ((mo) == 5 ? __ATOMIC_SEQ_CST : __ATOMIC_RELEASE)
#define VFT_HW_RMW(mo) ((mo) == 5 ? __ATOMIC_SEQ_CST : __ATOMIC_ACQ_REL)
#define VFT_HW_FAIL(mo) ((mo) == 5 ? __ATOMIC_SEQ_CST : __ATOMIC_ACQUIRE)

#define VFT_TSAN_RMW(bits, type, name, builtin)                            \
  type __tsan_atomic##bits##_##name(volatile type* a, type v, int mo) {    \
    vft_atomic_rmw_pre((const void*)a, mo);                                \
    const type r = builtin(a, v, VFT_HW_RMW(mo));                          \
    vft_atomic_rmw_post((const void*)a, mo);                               \
    return r;                                                              \
  }

#define VFT_TSAN_ATOMIC(bits, type)                                        \
  type __tsan_atomic##bits##_load(const volatile type* a, int mo) {        \
    const type v = __atomic_load_n(a, VFT_HW_LOAD(mo));                    \
    vft_atomic_load((const void*)a, mo);                                   \
    return v;                                                              \
  }                                                                        \
  void __tsan_atomic##bits##_store(volatile type* a, type v, int mo) {     \
    vft_atomic_store((const void*)a, mo);                                  \
    __atomic_store_n(a, v, VFT_HW_STORE(mo));                              \
  }                                                                        \
  VFT_TSAN_RMW(bits, type, exchange, __atomic_exchange_n)                  \
  VFT_TSAN_RMW(bits, type, fetch_add, __atomic_fetch_add)                  \
  VFT_TSAN_RMW(bits, type, fetch_sub, __atomic_fetch_sub)                  \
  VFT_TSAN_RMW(bits, type, fetch_and, __atomic_fetch_and)                  \
  VFT_TSAN_RMW(bits, type, fetch_or, __atomic_fetch_or)                    \
  VFT_TSAN_RMW(bits, type, fetch_xor, __atomic_fetch_xor)                  \
  VFT_TSAN_RMW(bits, type, fetch_nand, __atomic_fetch_nand)                \
  int __tsan_atomic##bits##_compare_exchange_strong(                       \
      volatile type* a, type* c, type v, int mo, int fmo) {                \
    vft_atomic_rmw_pre((const void*)a, mo);                                \
    const int ok = __atomic_compare_exchange_n(                            \
        a, c, v, 0, VFT_HW_RMW(mo), VFT_HW_FAIL(fmo));                     \
    /* a failed CAS is a load: join with the failure order */              \
    vft_atomic_rmw_post((const void*)a, ok ? mo : fmo);                    \
    return ok;                                                             \
  }                                                                        \
  int __tsan_atomic##bits##_compare_exchange_weak(                         \
      volatile type* a, type* c, type v, int mo, int fmo) {                \
    return __tsan_atomic##bits##_compare_exchange_strong(a, c, v, mo,      \
                                                         fmo);             \
  }                                                                        \
  type __tsan_atomic##bits##_compare_exchange_val(                         \
      volatile type* a, type c, type v, int mo, int fmo) {                 \
    __tsan_atomic##bits##_compare_exchange_strong(a, &c, v, mo, fmo);      \
    return c;                                                              \
  }

VFT_TSAN_ATOMIC(8, uint8_t)
VFT_TSAN_ATOMIC(16, uint16_t)
VFT_TSAN_ATOMIC(32, uint32_t)
VFT_TSAN_ATOMIC(64, uint64_t)

#undef VFT_TSAN_ATOMIC
#undef VFT_TSAN_RMW

void __tsan_atomic_thread_fence(int mo) {
  // Real fence first (strongest form: correct for every declared order,
  // and a fence is far off any hot path), then the clock-level fence.
  __atomic_thread_fence(__ATOMIC_SEQ_CST);
  vft_atomic_fence(mo);
}

void __tsan_atomic_signal_fence(int mo) {
  // Compiler-only barrier; orders nothing between threads, so the
  // analysis sees no event.
  (void)mo;
  asm volatile("" ::: "memory");
}

// ---------------------------------------------------------------------
// mem*/str* interposition: libc's bulk routines are how real programs
// touch most of their bytes, and compile-time instrumentation cannot see
// inside libc. Each wrapper forwards one range event per side (reads of
// the source, writes of the destination) and then calls the real
// routine; the session resolves the range with the SIMD packed-cell
// prefix kernels. Before the real symbol is resolved (dynamic-linker
// bootstrap: dlsym itself calls mem*), a volatile byte loop stands in -
// volatile so the optimizer cannot recognize the loop and emit a call
// back into the wrapper.
//
// vft_abi_in_runtime() gates every event block: the analysis itself uses
// these libc routines (report rendering, suppression matching), and while
// the nested range event would be dropped by the ABI's reentrancy guard,
// arming the event context here would poison the stack captured by a race
// recorded later in the same enclosing access event.
// ---------------------------------------------------------------------

void* memcpy(void* dst, const void* src, size_t n) {
  if (real_memcpy == nullptr) {
    volatile unsigned char* d = static_cast<unsigned char*>(dst);
    const volatile unsigned char* s =
        static_cast<const unsigned char*>(src);
    for (size_t i = 0; i < n; ++i) d[i] = s[i];
    return dst;
  }
  if (g_mem_ready && n != 0 && !vft_abi_in_runtime()) {
    VFT_ARM_EVENT_CTX();
    vft_range_read(src, n);
    VFT_ARM_EVENT_CTX();
    vft_range_write(dst, n);
  }
  return real_memcpy(dst, src, n);
}

void* memmove(void* dst, const void* src, size_t n) {
  if (real_memmove == nullptr) {
    volatile unsigned char* d = static_cast<unsigned char*>(dst);
    const volatile unsigned char* s =
        static_cast<const unsigned char*>(src);
    if (d < s) {
      for (size_t i = 0; i < n; ++i) d[i] = s[i];
    } else {
      for (size_t i = n; i > 0; --i) d[i - 1] = s[i - 1];
    }
    return dst;
  }
  if (g_mem_ready && n != 0 && !vft_abi_in_runtime()) {
    VFT_ARM_EVENT_CTX();
    vft_range_read(src, n);
    VFT_ARM_EVENT_CTX();
    vft_range_write(dst, n);
  }
  return real_memmove(dst, src, n);
}

void* memset(void* dst, int c, size_t n) {
  if (real_memset == nullptr) {
    volatile unsigned char* d = static_cast<unsigned char*>(dst);
    for (size_t i = 0; i < n; ++i) d[i] = static_cast<unsigned char>(c);
    return dst;
  }
  if (g_mem_ready && n != 0 && !vft_abi_in_runtime()) {
    VFT_ARM_EVENT_CTX();
    vft_range_write(dst, n);
  }
  return real_memset(dst, c, n);
}

void bzero(void* dst, size_t n) {
  if (real_bzero == nullptr) {
    volatile unsigned char* d = static_cast<unsigned char*>(dst);
    for (size_t i = 0; i < n; ++i) d[i] = 0;
    return;
  }
  if (g_mem_ready && n != 0 && !vft_abi_in_runtime()) {
    VFT_ARM_EVENT_CTX();
    vft_range_write(dst, n);
  }
  real_bzero(dst, n);
}

size_t strlen(const char* s) {
  if (real_strlen == nullptr) {
    const volatile char* p = s;
    size_t n = 0;
    while (p[n] != '\0') ++n;
    return n;
  }
  // The length is the operation's own output, so the read event (the
  // scanned bytes including the terminator) follows the real call.
  const size_t n = real_strlen(s);
  if (g_mem_ready && !vft_abi_in_runtime()) {
    VFT_ARM_EVENT_CTX();
    vft_range_read(s, n + 1);
  }
  return n;
}

size_t strnlen(const char* s, size_t max) {
  if (real_strnlen == nullptr) {
    const volatile char* p = s;
    size_t n = 0;
    while (n < max && p[n] != '\0') ++n;
    return n;
  }
  const size_t n = real_strnlen(s, max);
  if (g_mem_ready && !vft_abi_in_runtime()) {
    VFT_ARM_EVENT_CTX();
    vft_range_read(s, n < max ? n + 1 : max);
  }
  return n;
}

char* strcpy(char* dst, const char* src) {  // NOLINT
  if (real_strcpy == nullptr) {
    volatile char* d = dst;
    const volatile char* s = src;
    size_t i = 0;
    do {
      d[i] = s[i];
    } while (s[i++] != '\0');
    return dst;
  }
  if (g_mem_ready && !vft_abi_in_runtime()) {
    const size_t n = real_strlen != nullptr ? real_strlen(src) + 1 : 0;
    if (n != 0) {
      VFT_ARM_EVENT_CTX();
      vft_range_read(src, n);
      VFT_ARM_EVENT_CTX();
      vft_range_write(dst, n);
    }
  }
  return real_strcpy(dst, src);
}

char* strncpy(char* dst, const char* src, size_t n) {
  if (real_strncpy == nullptr) {
    volatile char* d = dst;
    const volatile char* s = src;
    size_t i = 0;
    for (; i < n && s[i] != '\0'; ++i) d[i] = s[i];
    for (; i < n; ++i) d[i] = '\0';
    return dst;
  }
  if (g_mem_ready && n != 0 && !vft_abi_in_runtime()) {
    const size_t len =
        real_strnlen != nullptr ? real_strnlen(src, n) : n;
    VFT_ARM_EVENT_CTX();
    vft_range_read(src, len < n ? len + 1 : n);
    VFT_ARM_EVENT_CTX();
    vft_range_write(dst, n);  // strncpy always stores all n bytes
  }
  return real_strncpy(dst, src, n);
}

char* strcat(char* dst, const char* src) {
  if (real_strcat == nullptr) {
    volatile char* d = dst;
    const volatile char* s = src;
    size_t dn = 0;
    while (d[dn] != '\0') ++dn;
    size_t i = 0;
    do {
      d[dn + i] = s[i];
    } while (s[i++] != '\0');
    return dst;
  }
  if (g_mem_ready && real_strlen != nullptr && !vft_abi_in_runtime()) {
    const size_t dn = real_strlen(dst);
    const size_t sn = real_strlen(src) + 1;
    VFT_ARM_EVENT_CTX();
    vft_range_read(dst, dn + 1);
    VFT_ARM_EVENT_CTX();
    vft_range_read(src, sn);
    VFT_ARM_EVENT_CTX();
    vft_range_write(dst + dn, sn);
  }
  return real_strcat(dst, src);
}

// ---------------------------------------------------------------------
// Process lifecycle.
// ---------------------------------------------------------------------

static int report_path_is_json(const char* report) {
  const size_t n = strlen(report);
  return n >= 5 && strcmp(report + n - 5, ".json") == 0;
}

// Crash-path report salvage: on a fatal signal, write the report with
// clean_exit=false before the process dies, so `vft run` can still give
// a verdict for everything detected up to the crash. Best-effort by
// nature (the write is not async-signal-safe; a second fault inside it
// just kills the process the way it was already dying) - the tolerant
// parser on the consumer side finishes the job if the file is cut short.
static struct sigaction g_prev_sig[32];

static void vft_crash_handler(int signo, siginfo_t* info, void* uctx) {
  static volatile sig_atomic_t in_handler = 0;
  if (!in_handler) {
    in_handler = 1;
    const char* report = getenv("VFT_REPORT");
    if (report != nullptr && report[0] != '\0') {
      vft_report_write_ex(report, report_path_is_json(report), /*clean=*/0);
    }
    fprintf(stderr, "vft: target received fatal signal %d; report %s\n",
            signo,
            report != nullptr && report[0] != '\0' ? "salvaged" : "lost");
  }
  // Re-deliver with the original disposition so the exit status (and any
  // chained handler, e.g. a sanitizer's) is exactly what it would have
  // been without us.
  struct sigaction* prev =
      signo > 0 && signo < 32 ? &g_prev_sig[signo] : nullptr;
  if (prev != nullptr && (prev->sa_flags & SA_SIGINFO) != 0 &&
      prev->sa_sigaction != nullptr) {
    prev->sa_sigaction(signo, info, uctx);
    return;
  }
  if (prev != nullptr && (prev->sa_flags & SA_SIGINFO) == 0 &&
      prev->sa_handler != SIG_DFL && prev->sa_handler != SIG_IGN &&
      prev->sa_handler != nullptr) {
    prev->sa_handler(signo);
    return;
  }
  signal(signo, SIG_DFL);
  raise(signo);
}

static void install_crash_handlers(void) {
  static const int kFatal[] = {SIGSEGV, SIGBUS, SIGABRT, SIGILL, SIGFPE};
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = vft_crash_handler;
  sa.sa_flags = SA_SIGINFO | SA_NODEFER;
  sigemptyset(&sa.sa_mask);
  for (size_t i = 0; i < sizeof(kFatal) / sizeof(kFatal[0]); ++i) {
    const int signo = kFatal[i];
    sigaction(signo, &sa, &g_prev_sig[signo]);
  }
}

__attribute__((constructor)) static void vft_preload_init(void) {
  resolve_all();
  pthread_once(&g_end_key_once, make_end_key);
  install_crash_handlers();
  vft_attach();  // the main thread is target thread 0
  g_mem_ready = 1;  // mem*/str* wrappers may forward range events now
}

__attribute__((destructor)) static void vft_preload_fini(void) {
  vft_detach();
  const size_t races = vft_race_count();
  const size_t suppressed = vft_suppressed_count();
  const char* report = getenv("VFT_REPORT");
  if (report != nullptr && report[0] != '\0') {
    if (vft_report_write(report, report_path_is_json(report)) != 0) {
      fprintf(stderr, "vft: cannot write report to %s\n", report);
    }
  }
  if (suppressed != 0) {
    fprintf(stderr, "vft: %s: %zu race report(s), %zu suppressed\n",
            vft_detector_name(), races, suppressed);
  } else {
    fprintf(stderr, "vft: %s: %zu race report(s)\n", vft_detector_name(),
            races);
  }
  vft_sampling_stats_s sp;
  if (vft_sampling_stats(&sp) != 0) {
    const double total = (double)(sp.sampled + sp.skipped);
    fprintf(stderr,
            "vft: sampling [%s]: rate=%.4f (now %.4f) overhead=%.2f%% "
            "sampled=%llu skipped=%llu reheats=%llu\n",
            vft_sampling_describe(),
            total > 0 ? (double)sp.sampled / total : 0.0, sp.rate,
            sp.overhead_pct, (unsigned long long)sp.sampled,
            (unsigned long long)sp.skipped, (unsigned long long)sp.reheats);
  }
}

}  // extern "C"
