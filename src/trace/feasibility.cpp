#include "trace/feasibility.h"

#include <unordered_map>
#include <unordered_set>

namespace vft::trace {

namespace {

struct ThreadInfo {
  bool forked = false;       // appeared as fork target
  bool joined = false;       // appeared as join target
  bool ran = false;          // performed at least one operation
  bool ran_since_fork = false;
};

}  // namespace

std::optional<FeasibilityError> check_feasible(const Trace& trace) {
  std::unordered_map<LockId, std::optional<Tid>> lock_holder;
  std::unordered_map<Tid, ThreadInfo> threads;

  auto fail = [](std::size_t i, std::string msg) {
    return FeasibilityError{i, std::move(msg)};
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Op& op = trace[i];
    if (op.t > Epoch::kMaxTid) {
      return fail(i, "thread id exceeds epoch packing limit");
    }
    ThreadInfo& self = threads[op.t];
    // Constraint (4), first half: a forked thread has no ops before its
    // fork. Seeing an op from a thread that is later forked is caught when
    // the fork arrives; here we catch ops after a join of this thread.
    if (self.joined) {
      return fail(i, "operation of thread " + std::to_string(op.t) +
                         " after join on it");
    }
    self.ran = true;
    self.ran_since_fork = true;

    switch (op.kind) {
      case OpKind::kRead:
      case OpKind::kWrite:
      case OpKind::kVolRead:
      case OpKind::kVolWrite:  // volatiles carry no feasibility constraints
        break;
      case OpKind::kAcquire: {
        std::optional<Tid>& holder = lock_holder[op.target];
        if (holder.has_value()) {
          return fail(i, "acquire of lock m" + std::to_string(op.target) +
                             " already held by thread " +
                             std::to_string(*holder));
        }
        holder = op.t;
        break;
      }
      case OpKind::kRelease: {
        std::optional<Tid>& holder = lock_holder[op.target];
        if (!holder.has_value() || *holder != op.t) {
          return fail(i, "release of lock m" + std::to_string(op.target) +
                             " not held by thread " + std::to_string(op.t));
        }
        holder.reset();
        break;
      }
      case OpKind::kFork: {
        const Tid u = static_cast<Tid>(op.target);
        if (u == op.t) return fail(i, "thread forks itself");
        if (u > Epoch::kMaxTid) {
          return fail(i, "forked thread id exceeds epoch packing limit");
        }
        ThreadInfo& child = threads[u];
        if (child.forked) {
          return fail(i, "thread " + std::to_string(u) + " forked twice");
        }
        if (child.ran) {
          return fail(i, "thread " + std::to_string(u) +
                             " has operations before its fork");
        }
        child.forked = true;
        child.ran_since_fork = false;
        break;
      }
      case OpKind::kJoin: {
        const Tid u = static_cast<Tid>(op.target);
        if (u == op.t) return fail(i, "thread joins itself");
        ThreadInfo& child = threads[u];
        if (!child.forked) {
          return fail(i, "join on never-forked thread " + std::to_string(u));
        }
        if (!child.ran_since_fork) {
          return fail(i, "no operation of thread " + std::to_string(u) +
                             " between its fork and join");
        }
        child.joined = true;
        break;
      }
    }
  }
  return std::nullopt;
}

}  // namespace vft::trace
