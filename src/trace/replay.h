// Replay: drive the specification or any detector with a trace.
//
// Detector replay is a template (static dispatch, mirroring how the
// runtime calls handlers) and runs sequentially - the trace *is* the
// interleaving, and each handler runs to completion at its trace position.
// This is exactly the setting of the functional-correctness half of the
// Section 6 proof: given serializability (checked separately by the
// small-scope enumeration test), handlers may be reasoned about serially.
//
// Differential use: replay the same feasible trace through the spec and a
// detector and compare (a) whether and where the first race is detected
// and (b) the final analysis state.
#pragma once

#include <condition_variable>
#include <mutex>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "trace/trace.h"
#include "vft/shadow_state.h"
#include "vft/spec.h"
#include "vft/stats.h"

namespace vft::trace {

/// Shadow-object store for one detector instance: the runtime system's
/// one-to-one mapping between program entities and state objects
/// (Section 4's "we assume the underlying run-time system maintains...").
template <typename D>
class ShadowStore {
 public:
  ThreadState& thread(Tid t) {
    auto it = threads_.find(t);
    if (it == threads_.end()) {
      it = threads_.emplace(t, std::make_unique<ThreadState>(t)).first;
    }
    return *it->second;
  }

  typename D::VarState& var(VarId x) {
    auto it = vars_.find(x);
    if (it == vars_.end()) {
      auto state = std::make_unique<typename D::VarState>();
      state->id = x;
      it = vars_.emplace(x, std::move(state)).first;
    }
    return *it->second;
  }

  /// Shadow state for a volatile variable: the accumulated writer clock
  /// (Section 7 semantics; common to every detector). The mutex matters
  /// only for concurrent replay, where it orders the VC manipulation.
  struct VolState {
    std::mutex mu;
    VectorClock V;
  };

  VolState& vol(std::uint64_t v) {
    auto it = vols_.find(v);
    if (it == vols_.end()) {
      it = vols_.emplace(v, std::make_unique<VolState>()).first;
    }
    return *it->second;
  }

  LockState& lock(LockId m) {
    auto it = locks_.find(m);
    if (it == locks_.end()) {
      it = locks_.emplace(m, std::make_unique<LockState>()).first;
    }
    return *it->second;
  }

 private:
  std::unordered_map<Tid, std::unique_ptr<ThreadState>> threads_;
  std::unordered_map<VarId, std::unique_ptr<typename D::VarState>> vars_;
  std::unordered_map<LockId, std::unique_ptr<LockState>> locks_;
  std::unordered_map<std::uint64_t, std::unique_ptr<VolState>> vols_;
};

struct ReplayResult {
  /// Trace index of the first access on which the detector reported a
  /// race; nullopt if the replay was race-free.
  std::optional<std::size_t> first_race;
  /// Total number of handler invocations that reported a race. Detectors
  /// continue after races (Section 7), so this can exceed one.
  std::size_t racy_ops = 0;
};

/// Apply one operation to a detector through its store. Returns the
/// handler verdict (false = race reported).
template <typename D>
bool apply(D& d, ShadowStore<D>& store, const Op& op) {
  switch (op.kind) {
    case OpKind::kRead:
      return d.read(store.thread(op.t), store.var(op.target));
    case OpKind::kWrite:
      return d.write(store.thread(op.t), store.var(op.target));
    case OpKind::kAcquire:
      d.acquire(store.thread(op.t), store.lock(op.target));
      return true;
    case OpKind::kRelease:
      d.release(store.thread(op.t), store.lock(op.target));
      return true;
    case OpKind::kFork:
      d.fork(store.thread(op.t), store.thread(static_cast<Tid>(op.target)));
      return true;
    case OpKind::kJoin:
      d.join(store.thread(op.t), store.thread(static_cast<Tid>(op.target)));
      return true;
    case OpKind::kVolRead: {
      auto& vs = store.vol(op.target);
      std::scoped_lock lk(vs.mu);
      store.thread(op.t).join(vs.V);
      return true;
    }
    case OpKind::kVolWrite: {
      auto& vs = store.vol(op.target);
      ThreadState& st = store.thread(op.t);
      std::scoped_lock lk(vs.mu);
      vs.V.join(st.V);
      st.inc();
      return true;
    }
  }
  return true;
}

template <typename D>
ReplayResult replay(const Trace& trace, D& d, ShadowStore<D>& store) {
  ReplayResult result;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (!apply(d, store, trace[i])) {
      if (!result.first_race) result.first_race = i;
      result.racy_ops++;
    }
  }
  return result;
}

template <typename D>
ReplayResult replay(const Trace& trace, D& d) {
  ShadowStore<D> store;
  return replay(trace, d, store);
}

/// Concurrent replay: the trace's interleaving is enforced by a turn-based
/// scheduler, but every thread id's handlers run on a dedicated OS thread.
/// The analysis outcome must equal sequential replay's (and the tests
/// check that it does); what this adds is coverage of the *cross-thread*
/// aspects the sequential replayer cannot see - the Section 4 ThreadState
/// phase changes (parent-local -> child-local -> read-only after join)
/// happen across real thread boundaries, so stale-cache or missing-fence
/// bugs in the state handoff would surface here (especially under TSan).
template <typename D>
ReplayResult concurrent_replay(const Trace& trace, D& d) {
  ShadowStore<D> store;
  // Materialize every thread's state up front (the runtime system owns
  // states; creating them mid-run from the wrong thread would itself be a
  // handoff bug we don't want to model).
  std::vector<Tid> tids;
  for (const Op& op : trace) {
    store.thread(op.t);
    if (op.kind == OpKind::kFork || op.kind == OpKind::kJoin) {
      store.thread(static_cast<Tid>(op.target));
    }
  }
  {
    std::unordered_map<Tid, bool> seen;
    for (const Op& op : trace) {
      if (!seen[op.t]) {
        seen[op.t] = true;
        tids.push_back(op.t);
      }
    }
  }

  std::mutex mu;
  std::condition_variable cv;
  std::size_t next = 0;
  ReplayResult result;

  std::vector<std::thread> threads;
  threads.reserve(tids.size());
  for (const Tid tid : tids) {
    threads.emplace_back([&, tid] {
      for (;;) {
        std::unique_lock lk(mu);
        cv.wait(lk, [&] {
          return next >= trace.size() || trace[next].t == tid;
        });
        if (next >= trace.size()) return;
        const std::size_t i = next;
        // Run the handler while holding the turn lock: the trace order is
        // the (serial) interleaving under test.
        if (!apply(d, store, trace[i])) {
          if (!result.first_race) result.first_race = i;
          result.racy_ops++;
        }
        next = i + 1;
        cv.notify_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  return result;
}

struct SpecReplayResult {
  /// Index at which the spec transitioned to Error (and halted), if any.
  std::optional<std::size_t> error_index;
  /// The Figure 2 rule fired by each processed operation (stops at Error).
  std::vector<Rule> rules;
};

/// Run the Figure 2 transition system over a trace, halting at Error.
SpecReplayResult replay_spec(const Trace& trace, Spec& spec);

}  // namespace vft::trace
