#include "trace/hb_oracle.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "vft/assert.h"

namespace vft::trace {

namespace {

/// Plain integer vector clock (no epochs - this oracle deliberately shares
/// no machinery with the analysis under test).
struct IntVC {
  std::vector<std::uint64_t> v;

  std::uint64_t get(std::size_t i) const { return i < v.size() ? v[i] : 0; }
  void set(std::size_t i, std::uint64_t val) {
    if (v.size() <= i) v.resize(i + 1, 0);
    v[i] = val;
  }
  void join(const IntVC& o) {
    if (v.size() < o.v.size()) v.resize(o.v.size(), 0);
    for (std::size_t i = 0; i < o.v.size(); ++i) v[i] = std::max(v[i], o.v[i]);
  }
};

struct Access {
  std::size_t index;
  Tid t;
  bool is_write;
  IntVC ts;
};

}  // namespace

HbResult analyze(const Trace& trace) {
  std::unordered_map<Tid, IntVC> threads;
  std::unordered_map<LockId, IntVC> locks;
  std::unordered_map<std::uint64_t, IntVC> volatiles;
  std::unordered_map<VarId, std::vector<Access>> accesses;

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Op& op = trace[i];
    threads[op.t];  // materialize before taking references

    // Pre-op joins: this op happens after the joined-from event. Copies
    // avoid holding references across same-map insertions (rehashing).
    if (op.kind == OpKind::kAcquire) {
      const IntVC lm = locks[op.target];
      threads.at(op.t).join(lm);
    }
    if (op.kind == OpKind::kJoin) {
      const IntVC cu = threads[static_cast<Tid>(op.target)];
      threads.at(op.t).join(cu);
    }
    if (op.kind == OpKind::kVolRead) {
      const IntVC vv = volatiles[op.target];
      threads.at(op.t).join(vv);
    }

    // Tick and timestamp: each operation gets a unique VC.
    IntVC& ct2 = threads.at(op.t);
    ct2.set(op.t, ct2.get(op.t) + 1);
    const IntVC ts = ct2;

    // Post-op propagation: later events on the edge target happen after
    // this op (so the copy happens after the timestamp tick).
    if (op.kind == OpKind::kRelease) locks[op.target] = ts;
    if (op.kind == OpKind::kVolWrite) volatiles[op.target].join(ts);
    if (op.kind == OpKind::kFork) {
      threads[static_cast<Tid>(op.target)].join(ts);
    }

    if (op.kind == OpKind::kRead || op.kind == OpKind::kWrite) {
      const bool is_write = op.kind == OpKind::kWrite;
      std::vector<Access>& hist = accesses[op.target];
      for (const Access& a : hist) {
        if (!a.is_write && !is_write) continue;  // read-read never conflicts
        // a happens-before this op iff ts(a)[thread(a)] <= ts[thread(a)].
        if (a.ts.get(a.t) <= ts.get(a.t)) continue;
        return HbResult{RacePair{a.index, i}};
      }
      hist.push_back(Access{i, op.t, is_write, ts});
    }
  }
  return HbResult{std::nullopt};
}

HbResult analyze_closure(const Trace& trace) {
  const std::size_t n = trace.size();
  const std::size_t words = (n + 63) / 64;
  // reach[i] = set of indices j with j happens-before i (j < i).
  std::vector<std::vector<std::uint64_t>> reach(n);

  std::unordered_map<Tid, std::size_t> last_of_thread;
  std::unordered_map<LockId, std::size_t> last_release;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> vol_writes;
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  auto add_edge = [&](std::size_t from, std::size_t to) {
    VFT_ASSERT(from < to);
    std::vector<std::uint64_t>& r = reach[to];
    const std::vector<std::uint64_t>& src = reach[from];
    for (std::size_t w = 0; w < src.size(); ++w) r[w] |= src[w];
    r[from / 64] |= std::uint64_t{1} << (from % 64);
  };

  std::unordered_map<Tid, std::size_t> pending_fork;  // child -> fork index

  for (std::size_t i = 0; i < n; ++i) {
    reach[i].assign(words, 0);
    const Op& op = trace[i];

    auto it = last_of_thread.find(op.t);
    if (it != last_of_thread.end()) add_edge(it->second, i);  // program order

    // fork(t,u) happens-before every op of u: edge to u's first op, then
    // u's program order plus transitivity covers the rest.
    auto pf = pending_fork.find(op.t);
    if (pf != pending_fork.end()) {
      add_edge(pf->second, i);
      pending_fork.erase(pf);
    }

    switch (op.kind) {
      case OpKind::kAcquire: {
        auto lr = last_release.find(op.target);
        if (lr != last_release.end() && lr->second != kNone) {
          add_edge(lr->second, i);
        }
        break;
      }
      case OpKind::kRelease:
        last_release[op.target] = i;
        break;
      case OpKind::kFork:
        pending_fork[static_cast<Tid>(op.target)] = i;
        break;
      case OpKind::kJoin: {
        // Every op of u happens-before join(t,u): edge from u's last op.
        auto lu = last_of_thread.find(static_cast<Tid>(op.target));
        if (lu != last_of_thread.end()) add_edge(lu->second, i);
        break;
      }
      case OpKind::kVolWrite:
        vol_writes[op.target].push_back(i);
        break;
      case OpKind::kVolRead: {
        // Every earlier volatile write happens-before this read. (Writes
        // do not order each other, so each needs its own edge.)
        for (const std::size_t w : vol_writes[op.target]) add_edge(w, i);
        break;
      }
      default:
        break;
    }
    last_of_thread[op.t] = i;
  }

  auto ordered = [&](std::size_t a, std::size_t b) {
    return (reach[b][a / 64] >> (a % 64)) & 1;
  };

  for (std::size_t j = 0; j < n; ++j) {
    const Op& b = trace[j];
    if (b.kind != OpKind::kRead && b.kind != OpKind::kWrite) continue;
    for (std::size_t i = 0; i < j; ++i) {
      const Op& a = trace[i];
      if (a.kind != OpKind::kRead && a.kind != OpKind::kWrite) continue;
      if (a.target != b.target) continue;
      if (a.kind == OpKind::kRead && b.kind == OpKind::kRead) continue;
      if (!ordered(i, j)) return HbResult{RacePair{i, j}};
    }
  }
  return HbResult{std::nullopt};
}

}  // namespace vft::trace
