#include "trace/interleave.h"

#include <optional>
#include <unordered_map>

#include "vft/assert.h"

namespace vft::trace {

namespace {

struct EnumState {
  std::vector<ThreadProgram> programs;
  std::vector<std::size_t> pc;          // next op per thread
  std::vector<bool> started;            // false while a fork is pending
  std::vector<bool> joined;             // true after some join(t, u)
  std::unordered_map<LockId, std::optional<Tid>> lock_holder;
  Trace current;
  std::size_t count = 0;
  const std::function<void(const Trace&)>* visit = nullptr;
};

bool exhausted(const EnumState& s, Tid t) {
  return s.pc[t] >= s.programs[t].size();
}

/// Whether thread t's next op can be scheduled now.
bool schedulable(const EnumState& s, Tid t) {
  if (!s.started[t] || s.joined[t] || exhausted(s, t)) return false;
  const Op& op = s.programs[t][s.pc[t]];
  switch (op.kind) {
    case OpKind::kAcquire: {
      const auto it = s.lock_holder.find(op.target);
      return it == s.lock_holder.end() || !it->second.has_value();
    }
    case OpKind::kRelease: {
      const auto it = s.lock_holder.find(op.target);
      return it != s.lock_holder.end() && it->second == t;
    }
    case OpKind::kFork: {
      const Tid u = static_cast<Tid>(op.target);
      return u < s.programs.size() && !s.started[u] && s.pc[u] == 0;
    }
    case OpKind::kJoin: {
      const Tid u = static_cast<Tid>(op.target);
      // Block until the target ran at least one op and finished its
      // program (constraints (4) and (5) of Section 2).
      return u < s.programs.size() && s.started[u] && !s.joined[u] &&
             !s.programs[u].empty() && exhausted(s, u);
    }
    default:
      return true;
  }
}

void recurse(EnumState& s) {
  bool any = false;
  for (Tid t = 0; t < s.programs.size(); ++t) {
    if (!schedulable(s, t)) continue;
    any = true;
    Op op = s.programs[t][s.pc[t]];
    op.t = t;
    // Apply.
    s.pc[t]++;
    s.current.push_back(op);
    std::optional<Tid> saved_holder;
    switch (op.kind) {
      case OpKind::kAcquire:
        saved_holder = s.lock_holder[op.target];
        s.lock_holder[op.target] = t;
        break;
      case OpKind::kRelease:
        saved_holder = s.lock_holder[op.target];
        s.lock_holder[op.target].reset();
        break;
      case OpKind::kFork:
        s.started[static_cast<Tid>(op.target)] = true;
        break;
      case OpKind::kJoin:
        s.joined[static_cast<Tid>(op.target)] = true;
        break;
      default:
        break;
    }
    recurse(s);
    // Undo.
    switch (op.kind) {
      case OpKind::kAcquire:
      case OpKind::kRelease:
        s.lock_holder[op.target] = saved_holder;
        break;
      case OpKind::kFork:
        s.started[static_cast<Tid>(op.target)] = false;
        break;
      case OpKind::kJoin:
        s.joined[static_cast<Tid>(op.target)] = false;
        break;
      default:
        break;
    }
    s.current.pop_back();
    s.pc[t]--;
  }
  if (!any) {
    // Either complete or deadlocked mid-way; only visit complete merges.
    for (Tid t = 0; t < s.programs.size(); ++t) {
      if (s.started[t] && !exhausted(s, t)) return;  // deadlock: skip
    }
    ++s.count;
    (*s.visit)(s.current);
  }
}

}  // namespace

std::size_t for_each_interleaving(
    std::vector<ThreadProgram> programs,
    const std::function<void(const Trace&)>& visit) {
  VFT_CHECK(programs.size() <= Epoch::kMaxTid);
  EnumState s;
  s.programs = std::move(programs);
  s.pc.assign(s.programs.size(), 0);
  // A thread is initially started unless some program forks it.
  s.started.assign(s.programs.size(), true);
  for (const ThreadProgram& p : s.programs) {
    for (const Op& op : p) {
      if (op.kind == OpKind::kFork) {
        const Tid u = static_cast<Tid>(op.target);
        if (u < s.started.size()) s.started[u] = false;
      }
    }
  }
  s.joined.assign(s.programs.size(), false);
  s.visit = &visit;
  recurse(s);
  return s.count;
}

}  // namespace vft::trace
