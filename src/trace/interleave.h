// Exhaustive interleaving enumeration for small concurrent programs: given
// per-thread operation sequences, produce *every* feasible merge (schedule)
// as a trace. Where the random generator samples the schedule space, this
// explorer covers it - the engine behind the small-scope exhaustive form
// of the Theorem 3.1 tests (every schedule of a program template, every
// detector, every verdict checked against the oracle).
//
// Feasibility pruning: a thread whose next operation acquires a held lock
// is not schedulable at that point; fork/join targets must respect the
// Section 2 constraints (the caller's per-thread programs express forks
// and joins like any other op; enumeration only schedules a thread's ops
// after its fork and stops scheduling after it is joined - callers are
// expected to provide programs whose joins come after the target thread's
// last op in every schedule, which the enumerator enforces by blocking a
// join until the target thread's program is exhausted).
#pragma once

#include <functional>
#include <vector>

#include "trace/trace.h"

namespace vft::trace {

/// One thread's program: the ops it performs, in order. The op's `t` field
/// is ignored on input (set from the program's position).
using ThreadProgram = std::vector<Op>;

/// Calls `visit` once per feasible interleaving. Returns the number of
/// interleavings visited. Threads [0, programs.size()) exist from the
/// start unless some program forks them (a thread with a pending fork
/// cannot run before it).
std::size_t for_each_interleaving(
    std::vector<ThreadProgram> programs,
    const std::function<void(const Trace&)>& visit);

}  // namespace vft::trace
