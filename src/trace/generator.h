// Seeded random feasible-trace generator, the workhorse of the property
// tests: every generated trace satisfies the Section 2 feasibility
// constraints by construction (and the test suite re-checks them with the
// independent checker).
//
// The generator models a pool of threads. Thread 0 exists from the start;
// others may exist initially or be forked at runtime depending on config.
// Each variable is assigned a guard lock; with probability
// `disciplined_fraction` a variable is "disciplined" (all accesses happen
// while its guard is held -> provably race-free), otherwise accesses are
// unguarded and may race. Setting disciplined_fraction = 1 yields
// race-free traces (useful for precision testing: no false alarms);
// lower values exercise the race-reporting paths.
#pragma once

#include <cstdint>
#include <random>

#include "trace/trace.h"

namespace vft::trace {

struct GeneratorConfig {
  std::uint32_t initial_threads = 2;  // threads alive at trace start (>= 1)
  std::uint32_t max_threads = 4;      // forked threads beyond the initial
  std::uint32_t vars = 8;
  std::uint32_t locks = 2;
  std::uint32_t volatiles = 2;
  std::uint32_t ops = 200;

  /// Fraction of variables whose accesses always hold the guard lock.
  double disciplined_fraction = 1.0;
  /// Relative weight of reads among accesses.
  double read_fraction = 0.7;
  /// Probability that a given step is a synchronization op (acq/rel pair
  /// bodies, fork, join) rather than an access.
  double sync_fraction = 0.2;
  /// Probability that a step is a fork/join (within the sync budget).
  double fork_join_fraction = 0.3;
  /// Probability that a sync step is a volatile access (vrd/vwr).
  double volatile_fraction = 0.15;

  std::uint64_t seed = 1;
};

/// Generates one feasible trace. Deterministic in the config (incl. seed).
Trace generate(const GeneratorConfig& config);

}  // namespace vft::trace
