#include "trace/minimize.h"

#include <vector>

#include "trace/feasibility.h"
#include "trace/hb_oracle.h"

namespace vft::trace {

namespace {

bool still_racy(const Trace& t, std::size_t* calls) {
  ++*calls;
  return is_feasible(t) && !analyze(t).race_free();
}

/// Remove indices [lo, hi) from t.
Trace without_range(const Trace& t, std::size_t lo, std::size_t hi) {
  Trace out;
  out.reserve(t.size() - (hi - lo));
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (i < lo || i >= hi) out.push_back(t[i]);
  }
  return out;
}

}  // namespace

MinimizeResult minimize_racy_trace(const Trace& input) {
  MinimizeResult result;
  result.trace = input;
  if (!still_racy(result.trace, &result.oracle_calls)) {
    return result;  // nothing to do (precondition violated)
  }

  // ddmin-style: try removing geometrically shrinking chunks, then single
  // operations until a fixed point (1-minimality).
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    std::size_t chunk = std::max<std::size_t>(result.trace.size() / 2, 1);
    while (chunk >= 1) {
      bool removed_at_this_size = false;
      // Scan from the back: later ops are more often droppable (everything
      // after the racing access is irrelevant).
      for (std::size_t hi = result.trace.size(); hi >= chunk; --hi) {
        const std::size_t lo = hi - chunk;
        Trace candidate = without_range(result.trace, lo, hi);
        if (still_racy(candidate, &result.oracle_calls)) {
          result.trace = std::move(candidate);
          removed_at_this_size = true;
          shrunk = true;
          hi = result.trace.size() + 1;  // restart the scan (post --hi)
        }
        if (result.trace.size() < chunk) break;
      }
      if (!removed_at_this_size) {
        if (chunk == 1) break;
        chunk /= 2;
      }
    }
  }
  return result;
}

}  // namespace vft::trace
