#include "trace/replay.h"

namespace vft::trace {

SpecReplayResult replay_spec(const Trace& trace, Spec& spec) {
  SpecReplayResult out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Op& op = trace[i];
    Spec::StepResult r{};
    switch (op.kind) {
      case OpKind::kRead:
        r = spec.on_read(op.t, op.target);
        break;
      case OpKind::kWrite:
        r = spec.on_write(op.t, op.target);
        break;
      case OpKind::kAcquire:
        r = spec.on_acquire(op.t, op.target);
        break;
      case OpKind::kRelease:
        r = spec.on_release(op.t, op.target);
        break;
      case OpKind::kFork:
        r = spec.on_fork(op.t, static_cast<Tid>(op.target));
        break;
      case OpKind::kJoin:
        r = spec.on_join(op.t, static_cast<Tid>(op.target));
        break;
      case OpKind::kVolRead:
        r = spec.on_vol_read(op.t, op.target);
        break;
      case OpKind::kVolWrite:
        r = spec.on_vol_write(op.t, op.target);
        break;
    }
    out.rules.push_back(r.rule);
    if (r.error) {
      out.error_index = i;
      break;  // Figure 2: the analysis stops at Error
    }
  }
  return out;
}

}  // namespace vft::trace
