// The Section 2 trace language: a trace is a sequence of operations
//
//   rd(t,x) | wr(t,x) | acq(t,m) | rel(t,m) | fork(t,u) | join(t,u)
//
// over thread ids t,u, variables x, and locks m. Traces are the lingua
// franca of the testing half of this repo: the generator produces them,
// the feasibility checker validates them, the HB oracle classifies them,
// and the replayer drives the specification and every detector with them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vft/epoch.h"
#include "vft/spec.h"

namespace vft::trace {

enum class OpKind : std::uint8_t {
  kRead,
  kWrite,
  kAcquire,
  kRelease,
  kFork,
  kJoin,
  // Volatile accesses (Section 7, "Additional Synchronization
  // Primitives"): synchronization operations, not data accesses - a
  // volatile write publishes the writer's clock into the variable, a
  // volatile read acquires the accumulated writer clocks. They never race.
  kVolRead,
  kVolWrite,
};

const char* op_kind_name(OpKind k);

struct Op {
  OpKind kind;
  Tid t;
  /// Operand: VarId for rd/wr, LockId for acq/rel, Tid for fork/join,
  /// volatile id for vrd/vwr.
  std::uint64_t target;

  friend bool operator==(const Op&, const Op&) = default;

  /// "rd(0,x3)", "acq(1,m0)", "fork(0,1)", ...
  std::string str() const;
};

using Trace = std::vector<Op>;

// Convenience constructors, mirroring the paper's concrete syntax.
inline Op rd(Tid t, VarId x) { return {OpKind::kRead, t, x}; }
inline Op wr(Tid t, VarId x) { return {OpKind::kWrite, t, x}; }
inline Op acq(Tid t, LockId m) { return {OpKind::kAcquire, t, m}; }
inline Op rel(Tid t, LockId m) { return {OpKind::kRelease, t, m}; }
inline Op fork(Tid t, Tid u) { return {OpKind::kFork, t, u}; }
inline Op join(Tid t, Tid u) { return {OpKind::kJoin, t, u}; }
inline Op vrd(Tid t, std::uint64_t v) { return {OpKind::kVolRead, t, v}; }
inline Op vwr(Tid t, std::uint64_t v) { return {OpKind::kVolWrite, t, v}; }

/// Renders "rd(0,x1); wr(1,x1)" etc.
std::string to_string(const Trace& trace);

/// Parses the to_string format (used by golden tests and examples).
/// Returns false on malformed input.
bool parse(const std::string& text, Trace* out);

}  // namespace vft::trace
