// Feasibility checking for traces, per Section 2: a feasible trace
// respects the usual constraints on forks, joins, and locking:
//   (1) no thread acquires a lock previously acquired but not released,
//   (2) no thread releases a lock it did not previously acquire,
//   (3) each thread is forked at most once,
//   (4) no instructions of thread u precede fork(t,u) or follow join(t',u),
//   (5) at least one instruction of u lies between fork(t,u) and join(t',u).
// We additionally reject self-forks/joins and joins on threads that were
// never forked (the analysis rules presuppose the join target ran), and
// bound thread ids by the epoch packing.
//
// Both the trace generator (which must only emit feasible traces) and the
// property-test harness (which must only feed detectors feasible traces;
// Theorem 3.1 is stated over feasible traces only) are validated with this
// checker.
#pragma once

#include <optional>
#include <string>

#include "trace/trace.h"

namespace vft::trace {

struct FeasibilityError {
  std::size_t index;    // offending operation
  std::string message;  // which constraint broke and how
};

/// Returns nullopt when the trace is feasible, else the first violation.
std::optional<FeasibilityError> check_feasible(const Trace& trace);

inline bool is_feasible(const Trace& trace) {
  return !check_feasible(trace).has_value();
}

}  // namespace vft::trace
