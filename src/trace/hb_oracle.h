// Gold-standard happens-before race oracle over the Section 2 trace
// language, used to validate Theorem 3.1 (the analysis reports an error
// iff the trace has a race) against the specification and, transitively,
// against every detector.
//
// Two independent implementations are provided and cross-checked in the
// test suite:
//
//   - analyze(): the classic Mattern-style per-operation vector-clock
//     timestamping (O(n * T)), finding the earliest operation that races
//     with an earlier conflicting access;
//   - analyze_closure(): an explicit happens-before DAG (program order,
//     release->acquire per lock, fork->child op, child op->join edges)
//     with transitive-closure reachability (O(n^2) and up), structurally
//     as close to the Section 2 definition as code gets.
//
// Neither uses epochs or any FastTrack machinery, so agreement with the
// specification is meaningful evidence, not a shared-bug tautology.
#pragma once

#include <cstddef>
#include <optional>

#include "trace/trace.h"

namespace vft::trace {

struct RacePair {
  std::size_t first;   // index of the earlier access
  std::size_t second;  // index of the racing (later) access
};

struct HbResult {
  /// The earliest operation (by trace index of the *second* access) that
  /// races with some earlier conflicting access; nullopt if race-free.
  std::optional<RacePair> first_race;

  bool race_free() const { return !first_race.has_value(); }
};

/// Vector-clock timestamping oracle. Precondition: trace is feasible.
HbResult analyze(const Trace& trace);

/// Transitive-closure oracle. Precondition: trace is feasible. Quadratic
/// in trace length and intended for traces up to a few thousand ops.
HbResult analyze_closure(const Trace& trace);

}  // namespace vft::trace
