#include "trace/trace.h"

#include <cctype>
#include <sstream>

namespace vft::trace {

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kRead: return "rd";
    case OpKind::kWrite: return "wr";
    case OpKind::kAcquire: return "acq";
    case OpKind::kRelease: return "rel";
    case OpKind::kFork: return "fork";
    case OpKind::kJoin: return "join";
    case OpKind::kVolRead: return "vrd";
    case OpKind::kVolWrite: return "vwr";
  }
  return "?";
}

std::string Op::str() const {
  std::string out = op_kind_name(kind);
  out += "(";
  out += std::to_string(t);
  out += ",";
  switch (kind) {
    case OpKind::kRead:
    case OpKind::kWrite:
      out += "x";
      break;
    case OpKind::kAcquire:
    case OpKind::kRelease:
      out += "m";
      break;
    case OpKind::kVolRead:
    case OpKind::kVolWrite:
      out += "v";
      break;
    default:
      break;
  }
  out += std::to_string(target);
  out += ")";
  return out;
}

std::string to_string(const Trace& trace) {
  std::string out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i != 0) out += "; ";
    out += trace[i].str();
  }
  return out;
}

namespace {

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && (std::isspace(static_cast<unsigned char>(s[i])) != 0)) {
    ++i;
  }
}

bool parse_number(const std::string& s, std::size_t& i, std::uint64_t* out) {
  if (i >= s.size() || std::isdigit(static_cast<unsigned char>(s[i])) == 0) {
    return false;
  }
  std::uint64_t v = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])) != 0) {
    v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
    ++i;
  }
  *out = v;
  return true;
}

}  // namespace

bool parse(const std::string& text, Trace* out) {
  out->clear();
  std::size_t i = 0;
  for (;;) {
    skip_ws(text, i);
    if (i >= text.size()) return true;
    std::size_t start = i;
    while (i < text.size() && std::isalpha(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
    const std::string name = text.substr(start, i - start);
    OpKind kind;
    if (name == "rd") {
      kind = OpKind::kRead;
    } else if (name == "wr") {
      kind = OpKind::kWrite;
    } else if (name == "acq") {
      kind = OpKind::kAcquire;
    } else if (name == "rel") {
      kind = OpKind::kRelease;
    } else if (name == "fork") {
      kind = OpKind::kFork;
    } else if (name == "join") {
      kind = OpKind::kJoin;
    } else if (name == "vrd") {
      kind = OpKind::kVolRead;
    } else if (name == "vwr") {
      kind = OpKind::kVolWrite;
    } else {
      return false;
    }
    skip_ws(text, i);
    if (i >= text.size() || text[i] != '(') return false;
    ++i;
    skip_ws(text, i);
    std::uint64_t tid = 0;
    if (!parse_number(text, i, &tid)) return false;
    skip_ws(text, i);
    if (i >= text.size() || text[i] != ',') return false;
    ++i;
    skip_ws(text, i);
    // Optional sigil: 'x' before variables, 'm' before locks.
    if (i < text.size() &&
        (text[i] == 'x' || text[i] == 'm' || text[i] == 'v')) {
      ++i;
    }
    std::uint64_t target = 0;
    if (!parse_number(text, i, &target)) return false;
    skip_ws(text, i);
    if (i >= text.size() || text[i] != ')') return false;
    ++i;
    out->push_back(Op{kind, static_cast<Tid>(tid), target});
    skip_ws(text, i);
    if (i < text.size() && text[i] == ';') ++i;
  }
}

}  // namespace vft::trace
