#include "trace/generator.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "vft/assert.h"

namespace vft::trace {

namespace {

enum class ThreadPhase : std::uint8_t {
  kActive,      // running, may emit ops
  kNotStarted,  // available as a fork target
  kFinished,    // terminated, available as a join target
  kJoined,      // joined; emits nothing ever again
};

struct GenThread {
  ThreadPhase phase = ThreadPhase::kNotStarted;
  bool was_forked = false;
  std::uint32_t ops_since_fork = 0;
  std::vector<LockId> held;  // emitted acquires without matching release
};

}  // namespace

Trace generate(const GeneratorConfig& config) {
  VFT_CHECK(config.initial_threads >= 1);
  const std::uint32_t total =
      config.initial_threads + config.max_threads;
  VFT_CHECK(total - 1 <= Epoch::kMaxTid);

  std::mt19937_64 rng(config.seed);
  auto chance = [&](double p) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < p;
  };
  auto pick = [&](std::uint32_t n) {
    return std::uniform_int_distribution<std::uint32_t>(0, n - 1)(rng);
  };

  std::vector<GenThread> threads(total);
  for (std::uint32_t i = 0; i < config.initial_threads; ++i) {
    threads[i].phase = ThreadPhase::kActive;
    threads[i].ops_since_fork = 1;  // initial threads are never joined-gated
  }

  // Guard lock per variable; disciplined vars always access under it.
  const std::uint32_t nlocks = std::max(config.locks, 1u);
  auto guard_of = [&](VarId x) { return static_cast<LockId>(x % nlocks); };
  std::vector<bool> disciplined(config.vars);
  for (std::uint32_t x = 0; x < config.vars; ++x) {
    disciplined[x] = chance(config.disciplined_fraction);
  }

  std::vector<std::optional<Tid>> lock_holder(nlocks);

  Trace out;
  out.reserve(config.ops);
  auto emit = [&](Op op) {
    out.push_back(op);
    threads[op.t].ops_since_fork++;
  };

  std::size_t attempts = 0;
  const std::size_t max_attempts = static_cast<std::size_t>(config.ops) * 50 + 1000;
  while (out.size() < config.ops && attempts++ < max_attempts) {
    // Pick a random active thread.
    std::vector<Tid> active;
    for (Tid t = 0; t < total; ++t) {
      if (threads[t].phase == ThreadPhase::kActive) active.push_back(t);
    }
    if (active.empty()) break;
    const Tid t = active[pick(static_cast<std::uint32_t>(active.size()))];
    GenThread& self = threads[t];

    if (chance(config.sync_fraction)) {
      if (chance(config.fork_join_fraction)) {
        // Try fork, then termination, then join.
        std::vector<Tid> forkable;
        std::vector<Tid> joinable;
        for (Tid u = 0; u < total; ++u) {
          if (threads[u].phase == ThreadPhase::kNotStarted) forkable.push_back(u);
          if (threads[u].phase == ThreadPhase::kFinished) joinable.push_back(u);
        }
        const double which =
            std::uniform_real_distribution<double>(0.0, 1.0)(rng);
        if (which < 0.4 && !forkable.empty()) {
          const Tid u = forkable[pick(static_cast<std::uint32_t>(forkable.size()))];
          emit(fork(t, u));
          threads[u].phase = ThreadPhase::kActive;
          threads[u].was_forked = true;
          threads[u].ops_since_fork = 0;
        } else if (which < 0.7 && !joinable.empty()) {
          const Tid u = joinable[pick(static_cast<std::uint32_t>(joinable.size()))];
          emit(join(t, u));
          threads[u].phase = ThreadPhase::kJoined;
        } else if (self.was_forked && self.ops_since_fork >= 1 &&
                   self.held.empty() && active.size() >= 2) {
          // Terminate (emit nothing); becomes a join target. Constraint
          // (5) is met: ops_since_fork >= 1.
          self.phase = ThreadPhase::kFinished;
        }
        continue;
      }
      if (config.volatiles > 0 && chance(config.volatile_fraction)) {
        const std::uint64_t v = pick(config.volatiles);
        emit(chance(0.5) ? vrd(t, v) : vwr(t, v));
        continue;
      }
      // Lock op: release something held, else acquire something free.
      if (!self.held.empty() && chance(0.6)) {
        const std::size_t k = pick(static_cast<std::uint32_t>(self.held.size()));
        const LockId m = self.held[k];
        self.held.erase(self.held.begin() + static_cast<std::ptrdiff_t>(k));
        lock_holder[m].reset();
        emit(rel(t, m));
      } else {
        const LockId m = pick(nlocks);
        if (!lock_holder[m].has_value()) {
          lock_holder[m] = t;
          self.held.push_back(m);
          emit(acq(t, m));
        }
      }
      continue;
    }

    // Memory access.
    if (config.vars == 0) continue;
    const VarId x = pick(config.vars);
    const bool is_read = chance(config.read_fraction);
    if (disciplined[x]) {
      const LockId m = guard_of(x);
      const bool already_held = lock_holder[m].has_value() && *lock_holder[m] == t;
      if (!already_held) {
        if (lock_holder[m].has_value()) continue;  // guard busy; try later
        lock_holder[m] = t;
        self.held.push_back(m);
        emit(acq(t, m));
      }
      emit(is_read ? rd(t, x) : wr(t, x));
      if (!already_held) {
        lock_holder[m].reset();
        self.held.erase(
            std::find(self.held.begin(), self.held.end(), m));
        emit(rel(t, m));
      }
    } else {
      emit(is_read ? rd(t, x) : wr(t, x));
    }
  }
  return out;
}

}  // namespace vft::trace
