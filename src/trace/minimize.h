// Trace minimization: shrink a racy feasible trace to a locally minimal
// racy subsequence - the delta-debugging step of the race-triage workflow
// (take the enormous trace behind a report, cut it down to the handful of
// operations that actually constitute the race, then read it).
//
// The predicate for "still interesting" is: feasible AND the HB oracle
// still finds a race. Minimization preserves subsequence-ness, so every
// operation in the output appeared in the input in the same order.
#pragma once

#include "trace/trace.h"

namespace vft::trace {

struct MinimizeResult {
  Trace trace;             // locally minimal racy subsequence
  std::size_t oracle_calls = 0;  // work accounting (for tests/telemetry)
};

/// Precondition: `input` is feasible and races (checked; returns the input
/// unchanged with oracle_calls = 1 if it does not race).
/// Postcondition: the result is feasible, races, is a subsequence of the
/// input, and removing any single remaining operation either breaks
/// feasibility or the race (1-minimality).
MinimizeResult minimize_racy_trace(const Trace& input);

}  // namespace vft::trace
