#include "runtime/registry.h"

namespace vft::rt {

thread_local ThreadState* Registry::tl_self_ = nullptr;

}  // namespace vft::rt
