#include "runtime/session.h"

#include <cstdlib>

namespace vft::rt::ambient {
namespace {

/// Map a launch-time detector name (CLI / VFT_DETECTOR spelling) to a
/// backend. Returns nullptr for an unknown name.
std::unique_ptr<SessionBackend> make_backend(const std::string& name,
                                             RaceCollector* races,
                                             RuleStats* stats,
                                             std::uint64_t generation) {
  if (name == "v1") {
    return std::make_unique<SessionImpl<VftV1>>(races, stats, generation);
  }
  if (name == "v1.5") {
    return std::make_unique<SessionImpl<VftV15>>(races, stats, generation);
  }
  if (name == "v2") {
    return std::make_unique<SessionImpl<VftV2>>(races, stats, generation);
  }
  if (name == "ft-mutex") {
    return std::make_unique<SessionImpl<FtMutex>>(races, stats, generation);
  }
  if (name == "ft-cas") {
    return std::make_unique<SessionImpl<FtCas>>(races, stats, generation);
  }
  if (name == "djit") {
    return std::make_unique<SessionImpl<Djit>>(races, stats, generation);
  }
  return nullptr;
}

std::string detector_from_env() {
  if (const char* env = std::getenv("VFT_DETECTOR"); env != nullptr &&
      env[0] != '\0') {
    return env;
  }
  return "v2";
}

}  // namespace

bool Session::configure(const std::string& name) {
  // Validate against the factory without constructing a backend: a dry
  // probe would allocate a whole runtime just to throw it away.
  static constexpr const char* kNames[] = {"v1",       "v1.5",   "v2",
                                           "ft-mutex", "ft-cas", "djit"};
  bool known = false;
  for (const char* n : kNames) known = known || name == n;
  if (!known) return false;
  std::scoped_lock lk(mu_);
  detector_ = name;
  return true;
}

SessionBackend& Session::create_backend() {
  std::scoped_lock lk(mu_);
  if (backend_ == nullptr) {
    if (detector_.empty()) detector_ = detector_from_env();
    // Suppression rules ride the same launch-time configuration surface
    // as the detector choice; load_suppressions_env warns (and skips the
    // file) on parse errors rather than failing the target's launch.
    // Loaded once per process: rules survive a reset() (the collector's
    // clear() keeps them), so a re-created backend must not double-load.
    if (!suppressions_loaded_) {
      suppressions_loaded_ = true;
      races_.load_suppressions_env(std::getenv("VFT_SUPPRESSIONS"));
    }
    // Resolve the sampling configuration and publish the gate *before*
    // the backend exists: SessionImpl snapshots Gate::active() in its
    // constructor, so the first access event already sees the gate.
    // Re-read on every (re-)creation - tests reconfigure via environment
    // + reset(); replaced gates leak by design (a detached target thread
    // may still hold one mid-access).
    {
      const sampling::Config scfg = sampling::config_from_env();
      sampling::Gate::install(scfg.enabled ? new sampling::Gate(scfg)
                                           : nullptr);
    }
    // Same pattern for the access-history layer (prior-side stacks in
    // race reports): published before the backend exists so the first
    // slow-path access can record; default ON, VFT_HISTORY=off disables.
    history::install(history::enabled_from_env() ? new history::AccessHistory()
                                                 : nullptr);
    const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
    backend_ = make_backend(detector_, &races_, &stats_, gen);
    if (backend_ == nullptr) {
      detail::fatal(
          "unknown detector '%s' (from VFT_DETECTOR); expected one of "
          "v1 v1.5 v2 ft-mutex ft-cas djit",
          detector_.c_str());
    }
    v2_ = detector_ == "v2"
              ? static_cast<SessionImpl<VftV2>*>(backend_.get())
              : nullptr;
    backend_ptr_.store(backend_.get(), std::memory_order_release);
    entry_table_.store(&backend_->entries(), std::memory_order_release);
  }
  return *backend_;
}

void Session::reset() {
  std::scoped_lock lk(mu_);
  // Invalidate every thread's session binding before tearing the backend
  // down: the generation tag makes stale SessionTls records unreachable,
  // and the calling thread drops its registry binding explicitly.
  generation_.fetch_add(1, std::memory_order_relaxed);
  Registry::bind(nullptr);
  tl_session = SessionTls{};
  // Retract every header-inlined fast-path descriptor and entry table in
  // one shot: bumping the global generation makes all per-thread
  // descriptors and the published EntryTable's snapshot stale before the
  // backend they point into is destroyed. Other threads are quiescent by
  // this function's contract; the calling thread clears its own
  // descriptor eagerly.
  __atomic_fetch_add(&vft_g_fastpath_gen, 1, __ATOMIC_RELEASE);
  vft_tl_fastpath = vft_fastpath_s{};
  entry_table_.store(nullptr, std::memory_order_release);
  backend_ptr_.store(nullptr, std::memory_order_release);
  v2_ = nullptr;
  backend_.reset();
  races_.clear();
  stats_.reset();
  // Retract the published sampling gate with the backend it belonged to:
  // between this reset and the next backend creation, Gate::active()
  // consumers (the stats ABI, the drop policy's pre-dispatch check) must
  // not see the torn-down session's gate or its counters. The first
  // event re-reads the environment and republishes in create_backend().
  sampling::Gate::install(nullptr);
  // Retract the access history with the backend: its var ids point into
  // the torn-down shadow space's address scheme. Leaked like the gate.
  history::install(nullptr);
}

}  // namespace vft::rt::ambient
