// Additional synchronization primitives (Section 7, "Additional
// Synchronization Primitives"): reader-writer locks, reentrant mutexes
// (Java monitors are reentrant; only the outermost enter/exit is an
// analysis event), and once-initialization capturing the happens-before
// edge between a static initializer and every later use.
#pragma once

#include <shared_mutex>

#include "runtime/instrument.h"

namespace vft::rt {

/// Instrumented reader-writer lock with the standard FastTrack-style
/// happens-before treatment:
///   write-unlock publishes the writer's clock (w_vc) and resets the
///   accumulated reader clock (the writer joined it on entry, so w_vc
///   dominates it);
///   write-lock joins w_vc and r_vc;
///   read-unlock folds the reader's clock into r_vc (readers don't order
///   each other - they only order against later writers);
///   read-lock joins w_vc only.
template <Detector D>
class SharedMutex {
 public:
  explicit SharedMutex(Runtime<D>& rt) : rt_(&rt) {}

  void lock() {  // writer
    mu_.lock();
    if constexpr (kInstrumented<D>) {
      std::scoped_lock lk(vc_mu_);
      ThreadState& st = rt_->self();
      st.join(w_vc_);
      st.join(r_vc_);
    }
  }

  void unlock() {
    if constexpr (kInstrumented<D>) {
      std::scoped_lock lk(vc_mu_);
      ThreadState& st = rt_->self();
      w_vc_.copy(st.V);
      r_vc_ = VectorClock();  // dominated by w_vc_ (joined at lock())
      st.inc();
    }
    mu_.unlock();
  }

  void lock_shared() {  // reader
    mu_.lock_shared();
    if constexpr (kInstrumented<D>) {
      std::scoped_lock lk(vc_mu_);
      rt_->self().join(w_vc_);
    }
  }

  void unlock_shared() {
    if constexpr (kInstrumented<D>) {
      std::scoped_lock lk(vc_mu_);
      ThreadState& st = rt_->self();
      r_vc_.join(st.V);
      st.inc();
    }
    mu_.unlock_shared();
  }

 private:
  Runtime<D>* rt_;
  std::shared_mutex mu_;
  std::mutex vc_mu_;  // concurrent readers need their VC updates ordered
  VectorClock w_vc_;
  VectorClock r_vc_;
};

template <Detector D>
class SharedGuard {
 public:
  explicit SharedGuard(SharedMutex<D>& m) : m_(&m) { m_->lock_shared(); }
  ~SharedGuard() { m_->unlock_shared(); }
  SharedGuard(const SharedGuard&) = delete;
  SharedGuard& operator=(const SharedGuard&) = delete;

 private:
  SharedMutex<D>* m_;
};

/// Instrumented reentrant mutex. Nested acquires by the holder are not
/// analysis events (RoadRunner filters reentrant monitor operations the
/// same way) - only the outermost enter runs the acquire handler and only
/// the outermost exit runs the release handler.
template <Detector D>
class RecursiveMutex {
 public:
  explicit RecursiveMutex(Runtime<D>& rt) : rt_(&rt) {}

  void lock() {
    mu_.lock();
    if (depth_++ == 0) {
      rt_->tool().acquire(rt_->self(), shadow_);
    }
  }

  void unlock() {
    VFT_CHECK(depth_ > 0);
    if (--depth_ == 0) {
      rt_->tool().release(rt_->self(), shadow_);
    }
    mu_.unlock();
  }

  /// Current nesting depth as seen by the holder (testing aid).
  int depth() const { return depth_; }

 private:
  Runtime<D>* rt_;
  std::recursive_mutex mu_;
  // depth_ is only accessed while mu_ is held, i.e. by the owner.
  int depth_ = 0;
  LockState shadow_;
};

/// Once-initialization with the Section 7 static-initializer ordering: the
/// initializer's effects happen-before every get(). After initialization
/// the captured clock is immutable, so get() reads it with one acquire
/// load and a lock-free join.
template <typename T, Detector D>
class Once {
 public:
  explicit Once(Runtime<D>& rt) : rt_(&rt) {}

  /// Runs `init` exactly once (first caller); every caller returns the
  /// value ordered after the initializer.
  template <typename Fn>
  T& get(Fn&& init) {
    if (!ready_.load(std::memory_order_acquire)) {
      std::scoped_lock lk(mu_);
      if (!ready_.load(std::memory_order_relaxed)) {
        value_ = init();
        if constexpr (kInstrumented<D>) {
          init_vc_.copy(rt_->self().V);
          rt_->self().inc();  // initializer epoch closes, like a release
        }
        ready_.store(true, std::memory_order_release);
      }
    }
    if constexpr (kInstrumented<D>) {
      // init_vc_ is immutable once ready_: lock-free join is safe.
      rt_->self().join(init_vc_);
    }
    return value_;
  }

  bool initialized() const { return ready_.load(std::memory_order_acquire); }

 private:
  Runtime<D>* rt_;
  std::atomic<bool> ready_{false};
  std::mutex mu_;
  VectorClock init_vc_;
  T value_{};
};

}  // namespace vft::rt
