// Thread registry: the runtime-system half of Section 4's assumption that
// there is a one-to-one mapping between target threads and ThreadState
// objects, and that each handler runs in the thread performing the
// operation.
//
// The registry allocates dense thread ids, owns the ThreadState objects,
// and tracks the calling thread's identity in a thread_local (set while a
// target thread is "entered" into a runtime). Thread ids of joined threads
// are reused - the successor's vector clock continues the predecessor's
// (see ThreadState's reuse constructor for the precision tradeoff) - so a
// long-running target can create far more than Epoch::kMaxTid threads as
// long as no more than kMaxTid+1 are live at once.
//
// Two binding styles share the thread_local:
//   ThreadScope  RAII, nestable - the wrapper (rt::Thread) and test style.
//   bind()       persistent - the ABI/interposer style, where a target
//                thread's lifetime is not a C++ scope (it attaches at its
//                first event and unbinds when the OS thread exits).
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "vft/assert.h"
#include "vft/shadow_state.h"

namespace vft::rt {

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The calling thread's ThreadState (set by ThreadScope or bind()).
  /// Handlers use this to find "st" without threading it through target
  /// code.
  static ThreadState* current() { return tl_self_; }

  /// Persistently (re)bind the calling OS thread to `ts` (nullptr to
  /// unbind). The ABI attach/detach path uses this: unlike ThreadScope
  /// there is no enclosing scope whose exit could restore a previous
  /// binding - the OS thread *is* the target thread until it exits.
  static void bind(ThreadState* ts) { tl_self_ = ts; }

  /// Allocate a ThreadState: a retired slot's successor if one is free,
  /// else a fresh tid. Returns nullptr when every tid in [0, kMaxTid] is
  /// currently live - the caller decides whether that is fatal (create())
  /// or degrades gracefully (the ABI leaves the thread unmonitored).
  /// Thread-safe (forks may be concurrent).
  ThreadState* try_create() {
    std::scoped_lock lk(mu_);
    if (!free_.empty()) {
      const Tid t = free_.back();
      free_.pop_back();
      auto fresh = std::make_unique<ThreadState>(t, slots_[t]->V);
      // Park the predecessor instead of freeing it: a stale retire() of a
      // reused slot must be *detectable* (identity check below), which
      // requires the stale reference to stay readable - and the successor
      // must never be handed the predecessor's address by the allocator.
      // Costs sizeof(ThreadState) per reused slot; diagnosability over
      // footprint.
      graveyard_.push_back(std::move(slots_[t]));
      slots_[t] = std::move(fresh);
      live_[t] = true;
      return slots_[t].get();
    }
    if (slots_.size() > Epoch::kMaxTid) return nullptr;
    const Tid t = static_cast<Tid>(slots_.size());
    slots_.push_back(std::make_unique<ThreadState>(t));
    live_.push_back(true);
    return slots_.back().get();
  }

  /// Allocate a ThreadState, failing loudly with an actionable diagnostic
  /// when the live-thread population exhausts the tid space.
  ThreadState& create() {
    ThreadState* ts = try_create();
    if (ts == nullptr) {
      detail::fatal(
          "thread registry exhausted: %u target threads are live at once, "
          "but epochs pack thread ids into %d bits (Epoch::kMaxTid = %u, "
          "so at most %u concurrently-live threads). Join or detach "
          "finished threads so their tid slots can be reused - total "
          "thread count is unbounded, only the live population is capped.",
          static_cast<unsigned>(Epoch::kMaxTid) + 1, Epoch::kTidBits,
          static_cast<unsigned>(Epoch::kMaxTid),
          static_cast<unsigned>(Epoch::kMaxTid) + 1);
    }
    return *ts;
  }

  /// Return a joined (or detached-and-exited) thread's slot to the free
  /// list. The caller must have already run the join handler; the state
  /// object stays alive (its final VC seeds the slot's next occupant, and
  /// after reuse it is parked so stale references remain readable).
  /// Retiring the same live slot twice would hand one tid to two live
  /// threads, and retiring a parked predecessor would retire its live
  /// successor's slot out from under it - both rejected with a
  /// diagnostic: the slot must currently be live AND owned by `ts`
  /// itself, not a successor.
  void retire(const ThreadState& ts) {
    std::scoped_lock lk(mu_);
    if (ts.t >= live_.size() || !live_[ts.t] ||
        slots_[ts.t].get() != &ts) {
      detail::fatal(
          "double retire of thread slot %u: this ThreadState was already "
          "retired (its tid may even be re-used by a live successor). "
          "Retire a thread exactly once - from its join, or from its exit "
          "when detached, never both (see the lifecycle protocol in "
          "docs/ALGORITHM.md s12).",
          static_cast<unsigned>(ts.t));
    }
    live_[ts.t] = false;
    free_.push_back(ts.t);
  }

  /// Number of tids ever allocated (for tests).
  std::size_t slots_in_use() const {
    std::scoped_lock lk(mu_);
    return slots_.size();
  }

  /// Number of currently live (not retired) slots.
  std::size_t live_count() const {
    std::scoped_lock lk(mu_);
    return slots_.size() - free_.size();
  }

  /// High-water mark of allocated tids: a vector clock whose capacity
  /// covers [0, capacity()) never reallocates while the current thread
  /// population lives. Sync wrappers use this to pre-size their clocks at
  /// construction (plus headroom for threads forked later).
  std::uint32_t capacity() const {
    std::scoped_lock lk(mu_);
    return static_cast<std::uint32_t>(slots_.size());
  }

  /// RAII: marks the calling OS thread as running target thread `ts` for
  /// the duration of the scope. Nestable (restores the previous binding),
  /// which lets a bench harness run several runtimes from one main thread.
  class ThreadScope {
   public:
    explicit ThreadScope(ThreadState& ts) : prev_(tl_self_) { tl_self_ = &ts; }
    ~ThreadScope() { tl_self_ = prev_; }
    ThreadScope(const ThreadScope&) = delete;
    ThreadScope& operator=(const ThreadScope&) = delete;

   private:
    ThreadState* prev_;
  };

 private:
  static thread_local ThreadState* tl_self_;

  mutable std::mutex mu_;
  std::deque<std::unique_ptr<ThreadState>> slots_;
  std::vector<bool> live_;  ///< per-tid: allocated and not retired
  std::vector<Tid> free_;
  /// Predecessors displaced by slot reuse, kept alive so a stale
  /// retire() is a diagnosed error instead of a use-after-free.
  std::deque<std::unique_ptr<ThreadState>> graveyard_;
};

}  // namespace vft::rt
