// Thread registry: the runtime-system half of Section 4's assumption that
// there is a one-to-one mapping between target threads and ThreadState
// objects, and that each handler runs in the thread performing the
// operation.
//
// The registry allocates dense thread ids, owns the ThreadState objects,
// and tracks the calling thread's identity in a thread_local (set while a
// target thread is "entered" into a runtime). Thread ids of joined threads
// are reused - the successor's vector clock continues the predecessor's
// (see ThreadState's reuse constructor for the precision tradeoff) - so a
// long-running target can create far more than Epoch::kMaxTid threads as
// long as no more than kMaxTid+1 are live at once.
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "vft/assert.h"
#include "vft/shadow_state.h"

namespace vft::rt {

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The calling thread's ThreadState (set by ThreadScope). Handlers use
  /// this to find "st" without threading it through target code.
  static ThreadState* current() { return tl_self_; }

  /// Allocate a ThreadState: a retired slot's successor if one is free,
  /// else a fresh tid. Thread-safe (forks may be concurrent).
  ThreadState& create() {
    std::scoped_lock lk(mu_);
    if (!free_.empty()) {
      const Tid t = free_.back();
      free_.pop_back();
      auto fresh = std::make_unique<ThreadState>(t, slots_[t]->V);
      slots_[t] = std::move(fresh);
      return *slots_[t];
    }
    const Tid t = static_cast<Tid>(slots_.size());
    VFT_CHECK(t <= Epoch::kMaxTid);
    slots_.push_back(std::make_unique<ThreadState>(t));
    return *slots_.back();
  }

  /// Return a joined thread's slot to the free list. The caller must have
  /// already run the join handler; the state object stays alive (its final
  /// VC seeds the slot's next occupant).
  void retire(const ThreadState& ts) {
    std::scoped_lock lk(mu_);
    free_.push_back(ts.t);
  }

  /// Number of tids ever allocated (for tests).
  std::size_t slots_in_use() const {
    std::scoped_lock lk(mu_);
    return slots_.size();
  }

  /// High-water mark of allocated tids: a vector clock whose capacity
  /// covers [0, capacity()) never reallocates while the current thread
  /// population lives. Sync wrappers use this to pre-size their clocks at
  /// construction (plus headroom for threads forked later).
  std::uint32_t capacity() const {
    std::scoped_lock lk(mu_);
    return static_cast<std::uint32_t>(slots_.size());
  }

  /// RAII: marks the calling OS thread as running target thread `ts` for
  /// the duration of the scope. Nestable (restores the previous binding),
  /// which lets a bench harness run several runtimes from one main thread.
  class ThreadScope {
   public:
    explicit ThreadScope(ThreadState& ts) : prev_(tl_self_) { tl_self_ = &ts; }
    ~ThreadScope() { tl_self_ = prev_; }
    ThreadScope(const ThreadScope&) = delete;
    ThreadScope& operator=(const ThreadScope&) = delete;

   private:
    ThreadState* prev_;
  };

 private:
  static thread_local ThreadState* tl_self_;

  mutable std::mutex mu_;
  std::deque<std::unique_ptr<ThreadState>> slots_;
  std::vector<Tid> free_;
};

}  // namespace vft::rt
