// Instrumented target-program primitives: the RoadRunner analogue.
//
// RoadRunner rewrites JVM bytecode so each memory/sync operation of the
// target runs an event handler inline in the acting thread. C++ offers no
// portable bytecode rewriting, so target programs here are written against
// these wrappers instead (DESIGN.md substitution table): the execution
// model - inline handlers, one shadow object per thread/lock/variable - is
// the same, only the insertion mechanism differs.
//
// Handler ordering follows Section 4: acquire and join handlers run
// *after* the target operation; all others run *before* it.
//
// The target data itself lives in std::atomic cells accessed with relaxed
// ordering (a plain mov on mainstream ISAs). This is how the target can
// legally exhibit the data races the detector is meant to find: a C++
// program with native unsynchronized accesses would be UB, while relaxed
// atomics give TSan-style defined-but-racy behaviour.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <string>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/tool.h"
#include "sched/sched_point.h"
#include "vft/vector_clock.h"

namespace vft::rt {

/// True when D performs analysis; NullTool configurations skip even the
/// inline vector-clock work of Volatile/Barrier so that base-time runs
/// measure the uninstrumented target.
template <typename D>
inline constexpr bool kInstrumented = !std::is_same_v<D, NullTool>;

/// Bump a RuleStats counter through a tool that exposes one (the
/// DetectorBase family); a no-op for tools without a stats() accessor.
/// Lets the wrappers count the Section 7 sync extras (volatile accesses,
/// barrier arrivals) that bypass the detector's handler interface.
template <typename Tool>
inline void count_sync_rule(Tool& tool, Rule r) {
  if constexpr (requires { tool.stats(); }) {
    if (RuleStats* s = tool.stats()) s->bump(r);
  }
}

/// True when D's VarState can back the packed-cell fast path (all six
/// production detectors; NullTool has nothing to spill to).
template <typename D>
inline constexpr bool kPackedCapable = SpillableVarState<typename D::VarState>;

/// One instrumented scalar variable with an inline shadow VarState.
///
/// With `packed = true` (and a spill-capable detector), accesses first run
/// the vft/packed_cell.h fast path against an inline 64-bit cell and only
/// escalation calls the detector on the inline VarState - the spill target
/// pre-exists, so escalation is just inject + publish. Default off: the
/// Table 1 benches measure the detectors themselves, so removing their
/// calls must be an explicit choice, not a silent one.
template <typename T, Detector D>
class Var {
 public:
  explicit Var(Runtime<D>& rt, T initial = T{}, std::uint64_t id = 0,
               bool packed = false)
      : rt_(&rt), packed_(packed && kPackedCapable<D>), data_(initial) {
    // Default id: the shadow VarState's own address - the same scheme
    // Array uses for its element shadows, so ids are consistent across
    // wrapper kinds (see the id taxonomy in vft/report.h).
    shadow_.id = id != 0 ? id : reinterpret_cast<std::uint64_t>(&shadow_);
  }

  T load() {
    if constexpr (kPackedCapable<D>) {
      if (packed_) {
        packed_read(rt_->tool(), rt_->self(), cell_, spill_target(),
                    spill_target());
        return data_.load(std::memory_order_relaxed);
      }
    }
    rt_->tool().read(rt_->self(), shadow_);
    return data_.load(std::memory_order_relaxed);
  }

  void store(T v) {
    if constexpr (kPackedCapable<D>) {
      if (packed_) {
        packed_write(rt_->tool(), rt_->self(), cell_, spill_target(),
                     spill_target());
        data_.store(v, std::memory_order_relaxed);
        return;
      }
    }
    rt_->tool().write(rt_->self(), shadow_);
    data_.store(v, std::memory_order_relaxed);
  }

  /// Uninstrumented access (post-join result collection and the like).
  T raw() const { return data_.load(std::memory_order_relaxed); }

  /// Register a human-readable name for race reports (describe()).
  void set_name(std::string name) {
    if (RaceCollector* rc = rt_->tool().races()) {
      rc->name_var(shadow_.id, std::move(name));
    }
  }

  /// In packed mode the cell is force-escalated first, so external probes
  /// always observe coherent detector state.
  typename D::VarState& shadow() {
    if constexpr (kPackedCapable<D>) {
      if (packed_) escalate_cell(cell_, spill_target(), spill_target());
    }
    return shadow_;
  }

  /// The packed cell (tests; meaningful only in packed mode).
  PackedCell& cell() { return cell_; }

 private:
  auto spill_target() {
    return [this]() -> typename D::VarState& { return shadow_; };
  }

  Runtime<D>* rt_;
  const bool packed_;
  PackedCell cell_;
  std::atomic<T> data_;
  typename D::VarState shadow_;
};

/// Instrumented array: one shadow VarState per element (RoadRunner's
/// fine-grained array shadow mode). Shadow lives either inline (private
/// allocation, the default) or carved out of an address-keyed backend so
/// that raw-pointer instrumentation of the same memory hits the same
/// VarStates.
template <typename T, Detector D>
class Array {
 public:
  Array(Runtime<D>& rt, std::size_t n, T initial = T{})
      : rt_(&rt),
        n_(n),
        data_(std::make_unique<std::atomic<T>[]>(n)),
        shadow_(std::make_unique<typename D::VarState[]>(n)) {
    for (std::size_t i = 0; i < n; ++i) {
      data_[i].store(initial, std::memory_order_relaxed);
      shadow_[i].id = reinterpret_cast<std::uint64_t>(&shadow_[i]);
    }
  }

  /// Carve the element shadow out of `backend` (a ShadowSpace or
  /// ShadowTable), keyed by each element's address. Wrapper accesses and
  /// instrumented_read/write on &data()[i] then agree on the VarState.
  /// Note: under ShadowSpace's word granularity, elements smaller than the
  /// shadow word share a VarState with their word neighbors.
  template <typename B>
    requires ShadowBackendFor<B, D>
  Array(Runtime<D>& rt, B& backend, std::size_t n, T initial = T{})
      : rt_(&rt),
        n_(n),
        data_(std::make_unique<std::atomic<T>[]>(n)),
        shadow_ptrs_(std::make_unique<typename D::VarState*[]>(n)) {
    for (std::size_t i = 0; i < n; ++i) {
      data_[i].store(initial, std::memory_order_relaxed);
      shadow_ptrs_[i] = &backend.of(&data_[i]);
    }
  }

  /// Carve packed cells out of `space` instead: element accesses run the
  /// same-epoch fast path inline against 8-byte cells and only escalated
  /// elements ever materialize a VarState (word granularity applies, as
  /// with any address-keyed backend). instrumented_read/write on
  /// &data()[i] through the same space agree on cell and spill state.
  Array(Runtime<D>& rt, PackedShadowSpace<D>& space, std::size_t n,
        T initial = T{})
    requires kPackedCapable<D>
      : rt_(&rt),
        n_(n),
        data_(std::make_unique<std::atomic<T>[]>(n)),
        pspace_(&space),
        pslots_(std::make_unique<typename PackedShadowSpace<D>::Slot[]>(n)) {
    for (std::size_t i = 0; i < n; ++i) {
      data_[i].store(initial, std::memory_order_relaxed);
      pslots_[i] = space.slot_of(&data_[i]);
    }
  }

  std::size_t size() const { return n_; }

  T load(std::size_t i) {
    VFT_ASSERT(i < n_);
    if constexpr (kPackedCapable<D>) {
      if (pspace_ != nullptr) {
        pspace_->read_slot(rt_->tool(), rt_->self(), pslots_[i]);
        return data_[i].load(std::memory_order_relaxed);
      }
    }
    rt_->tool().read(rt_->self(), shadow(i));
    return data_[i].load(std::memory_order_relaxed);
  }

  void store(std::size_t i, T v) {
    VFT_ASSERT(i < n_);
    if constexpr (kPackedCapable<D>) {
      if (pspace_ != nullptr) {
        pspace_->write_slot(rt_->tool(), rt_->self(), pslots_[i]);
        data_[i].store(v, std::memory_order_relaxed);
        return;
      }
    }
    rt_->tool().write(rt_->self(), shadow(i));
    data_[i].store(v, std::memory_order_relaxed);
  }

  /// Uninstrumented access, for target code that operates on provably
  /// thread-private scratch data (matching how real tools exclude
  /// known-local accesses; used sparingly and called out in the kernels).
  T raw(std::size_t i) const { return data_[i].load(std::memory_order_relaxed); }
  void raw_store(std::size_t i, T v) {
    data_[i].store(v, std::memory_order_relaxed);
  }

  /// Register element names "name[i]" for race reports. Uses shadow_id()
  /// so a packed array's cells are not escalated just to be named.
  void set_name(const std::string& name) {
    if (RaceCollector* rc = rt_->tool().races()) {
      for (std::size_t i = 0; i < n_; ++i) {
        rc->name_var(shadow_id(i), name + "[" + std::to_string(i) + "]");
      }
    }
  }

  /// The element's VarState. In packed mode this force-escalates the cell
  /// first, so external probes always observe coherent detector state.
  typename D::VarState& shadow(std::size_t i) {
    if constexpr (kPackedCapable<D>) {
      if (pspace_ != nullptr) return pspace_->escalated(pslots_[i]);
    }
    return shadow_ ? shadow_[i] : *shadow_ptrs_[i];
  }

  /// The element's race-report id, without materializing any spill state.
  std::uint64_t shadow_id(std::size_t i) const {
    if constexpr (kPackedCapable<D>) {
      if (pspace_ != nullptr) return pslots_[i].id;
    }
    return shadow_ ? shadow_[i].id : shadow_ptrs_[i]->id;
  }

  /// The element storage, for raw-pointer instrumentation of the same
  /// memory (meaningful with the backend-carving constructors).
  std::atomic<T>* data() { return data_.get(); }

 private:
  Runtime<D>* rt_;
  std::size_t n_;
  std::unique_ptr<std::atomic<T>[]> data_;
  std::unique_ptr<typename D::VarState[]> shadow_;        // inline mode
  std::unique_ptr<typename D::VarState*[]> shadow_ptrs_;  // carved mode
  PackedShadowSpace<D>* pspace_ = nullptr;                // packed mode
  std::unique_ptr<typename PackedShadowSpace<D>::Slot[]> pslots_;
};

/// Instrumented mutex: a real std::mutex plus the LockState shadow.
template <Detector D>
class Mutex {
 public:
  explicit Mutex(Runtime<D>& rt) : rt_(&rt) {}

  void lock() {
    mu_.lock();
    rt_->tool().acquire(rt_->self(), shadow_);  // handler after the acquire
  }

  void unlock() {
    rt_->tool().release(rt_->self(), shadow_);  // handler before the release
    mu_.unlock();
  }

  LockState& shadow() { return shadow_; }
  std::mutex& native() { return mu_; }

 private:
  Runtime<D>* rt_;
  std::mutex mu_;
  LockState shadow_;
};

/// RAII guard for Mutex.
template <Detector D>
class Guard {
 public:
  explicit Guard(Mutex<D>& m) : m_(&m) { m_->lock(); }
  ~Guard() { m_->unlock(); }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

 private:
  Mutex<D>* m_;
};

/// Tid headroom the sync wrappers pre-size their clocks for beyond the
/// registry's current high-water mark, so clocks of wrappers constructed
/// before the workers fork still cover the usual worker counts without
/// ever reallocating under the wrapper's lock.
inline constexpr std::uint32_t kPresizeTids = 64;

/// Instrumented Java-style volatile variable. Reads and writes are
/// synchronization operations: a write publishes the writer's clock
/// (release-like: Sv.V := Sv.V join St.V; inc_t), a read acquires it
/// (St.V := St.V join Sv.V) - the standard FastTrack treatment mentioned
/// in Section 7 ("Additional Synchronization Primitives").
///
/// Fast path (the FastTrack volatile-epoch optimization): a store whose
/// thread's clock dominates vc_ leaves vc_ == that thread's clock, and
/// publishes the storing epoch t@c in fast_epoch_. A reader that already
/// knows t@c (its V[t] >= c) is ordered after that store - each epoch
/// contains at most one clock publication, so knowing t@c implies having
/// absorbed the publication's full clock - hence vc_ <= its own clock
/// already and the locked join would be a no-op: skip it entirely. When
/// the storing clock does not dominate vc_ (several unordered writers),
/// fast_epoch_ is set to SHARED and every reader takes the locked join.
///
/// Ordering: fast_epoch_ is updated under the lock *before* the value's
/// release-store, and readers load it *after* the value's acquire-load,
/// so the epoch a reader checks is at least as recent as the store whose
/// value it observed. A reader may still see an epoch staler than the
/// globally latest store - that linearizes the read before the store
/// whose value has not yet landed, a valid serialization of the two
/// overlapping volatile operations (same §5-style argument the detector
/// handlers rely on).
template <typename T, Detector D>
class Volatile {
 public:
  explicit Volatile(Runtime<D>& rt, T initial = T{}, bool fast_path = true)
      : rt_(&rt), fast_path_(fast_path), data_(initial) {
    if constexpr (kInstrumented<D>) {
      vc_.reserve(std::max(rt.registry().capacity(), kPresizeTids));
    }
  }

  T load() {
    // Read the value first, then acquire the clock: a writer joins vc_
    // *before* its release-store, so any stored value we observe has its
    // writer's clock already merged into vc_ by the time we lock. The
    // reverse order has a window (join, writer publishes, we load the new
    // value without its clock) that manifests as false positives on reads
    // the volatile was supposed to order.
    VFT_SCHED_POINT(kLoad, &data_);
    const T v = data_.load(std::memory_order_acquire);
    if constexpr (kInstrumented<D>) {
      VFT_SCHED_POINT(kLoad, &fast_epoch_);
      const Epoch fe = fast_epoch_.load(std::memory_order_acquire);
      ThreadState& st = rt_->self();
      if (fe.is_shared() || !vft::leq(fe, st.V.get(fe.tid()))) {
        // Slow path: the locked join, publish-before-release order as
        // above.
        std::scoped_lock lk(mu_);
        st.join(vc_);
      }  // else [Volatile Same Epoch]: vc_ <= st.V already, join skipped
      count_sync_rule(rt_->tool(), Rule::kVolRead);
    }
    return v;
  }

  void store(T v) {
    bool value_published = false;
    if constexpr (kInstrumented<D>) {
      {
        std::scoped_lock lk(mu_);
        ThreadState& st = rt_->self();
        const bool dominated = vc_.leq(st.V);
        vc_.join(st.V);
        const Epoch e = st.epoch();
        st.inc();
        const Epoch armed =
            dominated && fast_path_ ? e : Epoch::shared();
#ifdef VFT_SCHED
        // Seeded-bug hook (sched mutation smoke test): publish the value
        // *before* arming, the interleaving that dropping the arm->value
        // ordering below would allow. A reader can then pair a fresh
        // value with a stale armed epoch it already covers, skip the
        // join, and report a false race on a location this volatile was
        // supposed to order.
        if (sched::Mutations::volatile_value_before_arm.load(
                std::memory_order_relaxed)) {
          VFT_SCHED_POINT(kStore, &data_);
          data_.store(v, std::memory_order_release);
          value_published = true;
        }
#endif
        // Enable the read fast path only when vc_ collapsed to exactly
        // this thread's clock; must precede the value store below.
        VFT_SCHED_POINT(kStore, &fast_epoch_);
        fast_epoch_.store(armed, std::memory_order_release);
      }
      count_sync_rule(rt_->tool(), Rule::kVolWrite);
    }
    if (!value_published) {
      VFT_SCHED_POINT(kStore, &data_);
      data_.store(v, std::memory_order_release);
    }
  }

 private:
  Runtime<D>* rt_;
  const bool fast_path_;  // false: always take the locked join (benching)
  SchedMutex mu_;  // protects vc_ (multiple readers/writers synchronize)
  VectorClock vc_;
  // SHARED disables the fast path; otherwise the epoch of the last store,
  // valid only because that store's clock dominated vc_.
  std::atomic<Epoch> fast_epoch_{Epoch::shared()};
  std::atomic<T> data_;
};

/// Instrumented cyclic barrier for a fixed party count. Happens-before:
/// every operation before any arrival happens-before every operation after
/// the corresponding departure (all-to-all), modeled by joining all
/// arrivals' clocks and re-acquiring the merged clock on departure, then
/// starting a fresh epoch (as in the barrier support of the standard
/// FastTrack implementations, Section 7).
template <Detector D>
class Barrier {
 public:
  Barrier(Runtime<D>& rt, std::uint32_t parties)
      : rt_(&rt), parties_(parties) {
    if constexpr (kInstrumented<D>) {
      // Pre-size both clocks: a phase flip under mu_ must never touch the
      // allocator (it runs with every party blocked on it).
      const std::uint32_t n =
          std::max(rt.registry().capacity(), kPresizeTids);
      gather_.reserve(n);
      released_.reserve(n);
    }
  }

  void arrive_and_wait() {
    std::unique_lock lk(mu_);
    if constexpr (kInstrumented<D>) gather_.join(rt_->self().V);
    const std::uint64_t my_phase = phase_;
    if (++arrived_ == parties_) {
      released_ = gather_;
      gather_.reset();  // keeps the reserved capacity
      arrived_ = 0;
      ++phase_;
      cv_.notify_all();
    } else {
      cv_.wait(lk, [&] { return phase_ != my_phase; });
    }
    if constexpr (kInstrumented<D>) {
      ThreadState& st = rt_->self();
      st.join(released_);
      st.inc();  // departures start a new epoch, like a release
      count_sync_rule(rt_->tool(), Rule::kBarrier);
    }
  }

 private:
  Runtime<D>* rt_;
  const std::uint32_t parties_;
  std::mutex mu_;
  std::condition_variable cv_;
  VectorClock gather_;    // accumulating arrivals for the current phase
  VectorClock released_;  // merged clock of the last completed phase
  std::uint32_t arrived_ = 0;
  std::uint64_t phase_ = 0;
};

/// Instrumented condition variable over an instrumented Mutex. The
/// analysis sees wait as release + (re)acquire of the monitor, exactly the
/// wait/notify treatment of Section 7; notify itself is not an event
/// (ordering flows through the monitor).
template <Detector D>
class CondVar {
 public:
  explicit CondVar(Runtime<D>& rt) : rt_(&rt) {}

  template <typename Pred>
  void wait(Mutex<D>& m, Pred pred) {
    while (!pred()) {
      rt_->tool().release(rt_->self(), m.shadow());  // before releasing
      std::unique_lock lk(m.native(), std::adopt_lock);
      cv_.wait(lk);
      lk.release();  // keep the native mutex held; we reacquired it
      rt_->tool().acquire(rt_->self(), m.shadow());  // after reacquiring
    }
  }

  void notify_all() { cv_.notify_all(); }
  void notify_one() { cv_.notify_one(); }

 private:
  Runtime<D>* rt_;
  std::condition_variable cv_;
};

/// Instrumented thread. The fork handler runs in the parent *before* the
/// child starts (while the child's ThreadState is still parent-local); the
/// join handler runs in the joiner *after* the native join (when the
/// child's state is read-only). Section 4's discipline, verbatim.
template <Detector D>
class Thread {
 public:
  template <typename Fn>
  Thread(Runtime<D>& rt, Fn fn) : rt_(&rt), child_(&rt.registry().create()) {
    rt_->tool().fork(rt_->self(), *child_);
    native_ = std::thread([this, fn = std::move(fn)]() mutable {
      Registry::ThreadScope scope(*child_);
      fn();
    });
  }

  ~Thread() { VFT_CHECK(!native_.joinable()); }  // must be joined explicitly

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  void join() {
    native_.join();
    rt_->tool().join(rt_->self(), *child_);
    rt_->registry().retire(*child_);
  }

  ThreadState& state() { return *child_; }

 private:
  Runtime<D>* rt_;
  ThreadState* child_;
  std::thread native_;
};

/// Fork `n` workers running fn(worker_index) and join them all: the
/// ubiquitous parallel-kernel shape.
template <Detector D, typename Fn>
void parallel_for_threads(Runtime<D>& rt, std::uint32_t n, Fn fn) {
  std::vector<std::unique_ptr<Thread<D>>> workers;
  workers.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    workers.push_back(std::make_unique<Thread<D>>(rt, [fn, i] { fn(i); }));
  }
  for (auto& w : workers) w->join();
}

}  // namespace vft::rt
