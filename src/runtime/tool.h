// Tool plumbing: the NullTool used for base-time measurement, and the
// Runtime that binds a detector to a registry.
//
// Like RoadRunner, the runtime dispatches events to the tool inline in the
// thread that performed the target operation; with a template parameter
// the dispatch is static, so tool fast paths inline into the target code
// (the C++ analogue of RoadRunner inlining fast-path handlers, Section 7).
#pragma once

#include <mutex>
#include <utility>

#include "runtime/registry.h"
#include "runtime/shadow_space.h"
#include "runtime/shadow_table.h"
#include "vft/detector.h"

namespace vft::rt {

/// The "no analysis" tool: every handler is a no-op that the optimizer
/// erases. Targets instantiated with NullTool measure base running time
/// (the denominator of the Table 1 overheads).
class NullTool {
 public:
  static constexpr const char* kName = "none";

  struct VarState {
    std::uint64_t id = 0;
  };

  explicit NullTool(RaceCollector* = nullptr, RuleStats* = nullptr) {}

  RaceCollector* races() const { return nullptr; }

  bool read(ThreadState&, VarState&) { return true; }
  bool write(ThreadState&, VarState&) { return true; }
  void acquire(ThreadState&, LockState&) {}
  void release(ThreadState&, LockState&) {}
  void fork(ThreadState&, ThreadState&) {}
  void join(ThreadState&, ThreadState&) {}
};

static_assert(Detector<NullTool>);

/// One analysis session: a detector instance plus the thread registry it
/// works against. Target wrappers (Var, Array, Mutex, Thread, ...) hold a
/// pointer to their Runtime and route events through it.
template <Detector D>
class Runtime {
 public:
  using Tool = D;

  explicit Runtime(D tool) : tool_(std::move(tool)) {}

  D& tool() { return tool_; }
  Registry& registry() { return registry_; }

  /// The session's raw-pointer shadow memory, created on first use (so
  /// wrapper-only targets pay nothing). Tools and examples use this
  /// instead of hand-threading a backend next to the runtime.
  ShadowSpace<D>& shadow_space() {
    std::call_once(space_once_,
                   [this] { space_ = std::make_unique<ShadowSpace<D>>(); });
    return *space_;
  }

  /// The fallback sharded-hash backend, also lazy (kept for exact
  /// byte-granular keying and for backend A/B comparisons).
  ShadowTable<D>& shadow_table() {
    std::call_once(table_once_,
                   [this] { table_ = std::make_unique<ShadowTable<D>>(); });
    return *table_;
  }

  /// The packed-cell shadow space (the inline same-epoch fast path with
  /// VarState spill-on-escalation), also lazy. Meaningful for detectors
  /// whose VarState is SpillableVarState - all six production detectors;
  /// a NullTool instantiation compiles but has nothing to spill to, so
  /// callers gate on the concept (see kernels::make_shadowed_array).
  PackedShadowSpace<D>& packed_space() {
    std::call_once(packed_once_,
                   [this] { packed_ = std::make_unique<PackedShadowSpace<D>>(); });
    return *packed_;
  }

  /// True iff shadow_space() has been materialized (stats reporting can
  /// avoid forcing an allocation).
  bool has_shadow_space() const { return space_ != nullptr; }
  bool has_shadow_table() const { return table_ != nullptr; }
  bool has_packed_space() const { return packed_ != nullptr; }

  /// The calling thread's state; the thread must be inside a ThreadScope
  /// (MainScope or a runtime-spawned Thread) or persistently bound by the
  /// ABI attach path. Failing that is target-integration misuse, so the
  /// diagnostic says how to register the thread rather than just aborting.
  ThreadState& self() {
    ThreadState* ts = Registry::current();
    if (ts == nullptr) {
      detail::fatal(
          "analysis event from an unregistered thread: this OS thread has "
          "no ThreadState bound. Register the program's first thread with "
          "a MainScope, spawn workers through rt::Thread, or - for "
          "unmodified binaries - route events through the C ABI "
          "(src/abi/vft_abi.h), whose entry points attach the calling "
          "thread implicitly.");
    }
    return *ts;
  }

  /// RAII registration of the program's initial thread. The ThreadState is
  /// owned by the registry; the scope only binds the thread_local.
  class MainScope {
   public:
    explicit MainScope(Runtime& rt) : scope_(rt.registry_.create()) {}

   private:
    Registry::ThreadScope scope_;
  };

 private:
  D tool_;
  Registry registry_;
  std::once_flag space_once_;
  std::once_flag table_once_;
  std::once_flag packed_once_;
  std::unique_ptr<ShadowSpace<D>> space_;
  std::unique_ptr<ShadowTable<D>> table_;
  std::unique_ptr<PackedShadowSpace<D>> packed_;
};

}  // namespace vft::rt
