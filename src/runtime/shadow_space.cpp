#include "runtime/shadow_space.h"

#include <atomic>
#include <cstdio>

namespace vft::rt {

std::uint64_t ShadowGeometry::next_space_id() {
  // Start at 1: id 0 is the thread-local cache's "empty" tag.
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::string ShadowGeometry::describe() {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "two-level shadow: %zu buckets x chained %zu-byte pages, "
                "%zu slots/page @ %zu-byte granularity",
                kBuckets, kPageSpan, kSlotsPerPage, kGranularity);
  return buf;
}

std::string str(const ShadowSpaceStats& s) {
  char buf[200];
  int n = std::snprintf(buf, sizeof(buf),
                        "pages=%zu slots=%zu mem=%.2fMiB collisions=%zu "
                        "cache-misses=%zu",
                        s.pages, s.slots,
                        static_cast<double>(s.bytes) / (1024.0 * 1024.0),
                        s.collisions, s.cache_misses);
  if (s.spilled > 0 && n > 0 && static_cast<std::size_t>(n) < sizeof(buf)) {
    n += std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                       " spilled=%zu", s.spilled);
  }
  if (s.words_reset > 0 && n > 0 &&
      static_cast<std::size_t>(n) < sizeof(buf)) {
    std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                  " words-reset=%zu", s.words_reset);
  }
  return buf;
}

}  // namespace vft::rt
