#include "runtime/shadow_space.h"

#include <cstdio>

namespace vft::rt {

std::string ShadowGeometry::describe() {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "two-level shadow: %zu buckets x chained %zu-byte pages, "
                "%zu slots/page @ %zu-byte granularity",
                kBuckets, kPageSpan, kSlotsPerPage, kGranularity);
  return buf;
}

std::string str(const ShadowSpaceStats& s) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "pages=%zu slots=%zu mem=%.2fMiB collisions=%zu", s.pages,
                s.slots, static_cast<double>(s.bytes) / (1024.0 * 1024.0),
                s.collisions);
  return buf;
}

}  // namespace vft::rt
