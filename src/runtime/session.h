// The process-global analysis session: the single entry point the C ABI
// (src/abi/vft_abi.h) and the LD_PRELOAD interposer (src/interpose/)
// route through, and the backing store of the ambient annotation macros.
//
// Layering (the RoadRunner substitution, one level lower than ambient.h):
//
//   target binary ──pthread/tsan events──> interposer ──C ABI──> Session
//                                                                  │
//                                               SessionBackend (virtual)
//                                                                  │
//                                  SessionImpl<D>: Runtime<D> + ShadowSpace
//                                                + LockRegistry + lifecycle
//
// The detector D is fixed for the whole process but selectable at launch
// (VFT_DETECTOR environment variable, or Session::configure before first
// use): the ABI entry points are plain C functions, so the detector
// dispatch happens once per event through SessionBackend's vtable instead
// of per call-site templates. bench_hotpath's `abi_dispatch` section
// tracks exactly what that indirection costs against the inlined wrapper
// path.
//
// Implicit thread lifecycle: any thread is attached on its first event
// (OS-thread identity lives in Registry's thread_local binding). Threads
// created through the interposer get the explicit §4 protocol instead -
// fork handler in the parent *before* the native create, join handler in
// the joiner *after* the native join - via create/begin/join/detach
// tokens. A thread that exits unjoined, or detached, retires its tid slot
// exactly once (see ThreadRecord below); registry exhaustion degrades to
// an unmonitored thread with a one-time warning instead of aborting the
// target.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/lock_registry.h"
#include "runtime/tool.h"
#include "vft/access_history.h"
#include "vft/atomics.h"
#include "vft/detector.h"
#include "vft/fastpath_ctx.h"
#include "vft/report_io.h"
#include "vft/sampling.h"

namespace vft::rt::ambient {

/// Devirtualized event dispatch for the ABI slow path. SessionImpl is
/// `final`, so the captureless-lambda thunks below compile to direct
/// calls into the template-inlined handlers - the C ABI pays one indirect
/// call through this table instead of the backend() acquire-load plus a
/// vtable hop per event. The table is built once in the SessionImpl
/// constructor and published by Session::create_backend(); `generation`
/// snapshots vft_g_fastpath_gen at creation, and Session::reset() bumps
/// that global, so a consumer that checks `generation` against the
/// current global can never dispatch into a torn-down backend.
struct EntryTable {
  using AccessFn = void (*)(void*, const void*, std::size_t);
  /// Atomic sync entries: (self, addr, morder). morder is the TSan ABI
  /// value (== __ATOMIC_*); address identity is the sync-state key, so no
  /// size is needed.
  using AtomicFn = void (*)(void*, const void*, int);
  using FenceFn = void (*)(void*, int);

  void* self = nullptr;
  AccessFn read = nullptr;
  AccessFn write = nullptr;
  AccessFn range_read = nullptr;
  AccessFn range_write = nullptr;
  AtomicFn atomic_load = nullptr;
  AtomicFn atomic_store = nullptr;
  AtomicFn atomic_rmw_pre = nullptr;
  AtomicFn atomic_rmw_post = nullptr;
  FenceFn atomic_fence = nullptr;
  std::uint64_t generation = 0;
};

/// The detector-erased session surface. One virtual hop per event; the
/// handlers behind it are the same template-inlined fast paths the
/// wrappers use.
class SessionBackend {
 public:
  virtual ~SessionBackend() = default;

  virtual const char* detector_name() const = 0;

  // --- memory accesses (word-granular; an access spilling over its
  // 8-byte shadow word takes the range path). Handlers run *before* the
  // target access, per the §4 ordering discipline.
  virtual void read(const void* addr, std::size_t size) = 0;
  virtual void write(const void* addr, std::size_t size) = 0;
  virtual void range_read(const void* addr, std::size_t size) = 0;
  virtual void range_write(const void* addr, std::size_t size) = 0;

  // --- native locks, keyed by address (pthread_mutex_t*). Per §4 the
  // caller invokes mutex_lock *after* the native acquire succeeded and
  // mutex_unlock *before* the native release.
  virtual void mutex_lock(const void* m) = 0;
  virtual void mutex_unlock(const void* m) = 0;

  // --- __tsan_atomic* sync events, keyed by address like locks. The
  // ordering discipline mirrors §4: store/rmw_pre run *before* the real
  // operation (publish before the value is visible), load/rmw_post run
  // *after* it (join once the value was observed). `mo` is the target's
  // declared memory order (TSan ABI == __ATOMIC_* values); the VFT_ATOMICS
  // mode is applied inside.
  virtual void atomic_load(const void* a, int mo) = 0;
  virtual void atomic_store(const void* a, int mo) = 0;
  virtual void atomic_rmw_pre(const void* a, int mo) = 0;
  virtual void atomic_rmw_post(const void* a, int mo) = 0;
  virtual void atomic_fence(int mo) = 0;

  // --- thread lifecycle. attach() binds the calling OS thread to a fresh
  // (implicitly detached) target thread; detach() is its end-of-thread
  // event. The token protocol maps pthread_create/join/detach 1:1.
  virtual bool attach() = 0;
  virtual void detach() = 0;
  virtual std::uint64_t thread_create() = 0;
  virtual void thread_begin(std::uint64_t token) = 0;
  virtual void thread_join(std::uint64_t token) = 0;
  virtual void thread_detach(std::uint64_t token) = 0;

  /// The target freed [addr, addr+size): clear shadow words and drop
  /// dead locks so recycled addresses start from bottom state.
  virtual void free_hint(const void* addr, std::size_t size) = 0;

  /// The backend's devirtualized access-entry table (see EntryTable).
  virtual const EntryTable& entries() const = 0;

  // --- introspection for end-of-run reports.
  virtual std::size_t threads_seen() const = 0;
  virtual std::size_t locks_seen() const = 0;
  virtual std::size_t shadow_words() const = 0;
};

/// Per-OS-thread session state, tagged with the backend generation so a
/// Session::reset() (tests) can never resurrect a stale record.
struct SessionTls {
  void* record = nullptr;        ///< ThreadRecord* of the owning backend
  std::uint64_t generation = 0;  ///< Session generation the fields belong to
  bool unmonitored = false;      ///< registry exhausted: events are no-ops
};
inline thread_local SessionTls tl_session{};

template <Detector D>
class SessionImpl final : public SessionBackend {
 public:
  SessionImpl(RaceCollector* races, RuleStats* stats,
              std::uint64_t generation)
      : rt_(D(races, stats)),
        generation_(generation),
        gate_(sampling::Gate::active()),
        drop_mode_(gate_ != nullptr &&
                   gate_->config().policy ==
                       sampling::Config::Policy::kDrop) {
    // Devirtualized dispatch thunks: SessionImpl is final, so these
    // compile to direct calls into the handlers below.
    entries_.self = this;
    entries_.read = [](void* s, const void* a, std::size_t n) {
      static_cast<SessionImpl*>(s)->read(a, n);
    };
    entries_.write = [](void* s, const void* a, std::size_t n) {
      static_cast<SessionImpl*>(s)->write(a, n);
    };
    entries_.range_read = [](void* s, const void* a, std::size_t n) {
      static_cast<SessionImpl*>(s)->range_read(a, n);
    };
    entries_.range_write = [](void* s, const void* a, std::size_t n) {
      static_cast<SessionImpl*>(s)->range_write(a, n);
    };
    entries_.atomic_load = [](void* s, const void* a, int mo) {
      static_cast<SessionImpl*>(s)->atomic_load(a, mo);
    };
    entries_.atomic_store = [](void* s, const void* a, int mo) {
      static_cast<SessionImpl*>(s)->atomic_store(a, mo);
    };
    entries_.atomic_rmw_pre = [](void* s, const void* a, int mo) {
      static_cast<SessionImpl*>(s)->atomic_rmw_pre(a, mo);
    };
    entries_.atomic_rmw_post = [](void* s, const void* a, int mo) {
      static_cast<SessionImpl*>(s)->atomic_rmw_post(a, mo);
    };
    entries_.atomic_fence = [](void* s, int mo) {
      static_cast<SessionImpl*>(s)->atomic_fence(mo);
    };
    entries_.generation =
        __atomic_load_n(&vft_g_fastpath_gen, __ATOMIC_ACQUIRE);
    if constexpr (SpillableVarState<typename D::VarState>) {
      // Header-inlined fast-path descriptor arming: ungated runs only.
      // Under cell-policy sampling an inline hit would bypass the gate's
      // countdown and controller probes (starving the overhead budget);
      // under the drop policy the ABI slow path arms the countdown half
      // of the descriptor and the cell half stays disarmed.
      fastpath_arm_ =
          gate_ == nullptr && stats != nullptr && fastpath_env_enabled();
      if (stats != nullptr) {
        static_assert(sizeof(std::atomic<std::uint64_t>) ==
                      sizeof(std::uint64_t));
        static_assert(std::atomic<std::uint64_t>::is_always_lock_free);
        rule_read_hit_[0] = reinterpret_cast<std::uint64_t*>(
            stats->counter_addr(Rule::kReadSameEpoch));
        rule_read_hit_[1] = reinterpret_cast<std::uint64_t*>(
            stats->counter_addr(Rule::kFastReadHit));
        rule_write_hit_[0] = reinterpret_cast<std::uint64_t*>(
            stats->counter_addr(Rule::kWriteSameEpoch));
        rule_write_hit_[1] = reinterpret_cast<std::uint64_t*>(
            stats->counter_addr(Rule::kFastWriteHit));
      }
    }
  }

  /// The typed runtime, for same-detector callers (ambient wrappers,
  /// benches) that want the inlined path next to the erased one.
  Runtime<D>& runtime() { return rt_; }
  LockRegistry& locks() { return locks_; }

  const char* detector_name() const override { return D::kName; }

  const EntryTable& entries() const override { return entries_; }

  // Spillable detectors (all six production ones) route every ABI access
  // through the packed-cell space whether or not a sampling gate is
  // installed: the packed fast path is the scalar flank of the
  // header-inlined one, so the inline path's cached cell pointers stay
  // the authoritative shadow and a slow-path access leaves exactly the
  // {R, W} the next inline hit tests against. Non-spillable detectors
  // keep the full-VarState ShadowSpace route.

  void read(const void* addr, std::size_t size) override {
    ThreadState* ts = self_or_attach();
    if (ts == nullptr) return;
    // Size hint for history entries; only consumed on the slow path.
    history::tl_access_size = static_cast<std::uint32_t>(size);
    if constexpr (SpillableVarState<typename D::VarState>) {
      if (gate_ != nullptr) {
        gated_access</*IsWrite=*/false>(*ts, addr, size);
        return;
      }
      auto& packed = rt_.packed_space();
      if (one_word(addr, size)) {
        packed.read(rt_.tool(), *ts, addr);
      } else {
        packed.range_read(rt_.tool(), *ts, addr, size, /*sampled=*/true);
      }
      arm_fastpath(*ts, addr);
      return;
    }
    auto& shadow = rt_.shadow_space();
    if (one_word(addr, size)) {
      rt_.tool().read(*ts, shadow.of(addr));
    } else {
      instrumented_range_read(rt_, shadow, addr, size);
    }
  }

  void write(const void* addr, std::size_t size) override {
    ThreadState* ts = self_or_attach();
    if (ts == nullptr) return;
    history::tl_access_size = static_cast<std::uint32_t>(size);
    if constexpr (SpillableVarState<typename D::VarState>) {
      if (gate_ != nullptr) {
        gated_access</*IsWrite=*/true>(*ts, addr, size);
        return;
      }
      auto& packed = rt_.packed_space();
      if (one_word(addr, size)) {
        packed.write(rt_.tool(), *ts, addr);
      } else {
        packed.range_write(rt_.tool(), *ts, addr, size, /*sampled=*/true);
      }
      arm_fastpath(*ts, addr);
      return;
    }
    auto& shadow = rt_.shadow_space();
    if (one_word(addr, size)) {
      rt_.tool().write(*ts, shadow.of(addr));
    } else {
      instrumented_range_write(rt_, shadow, addr, size);
    }
  }

  void range_read(const void* addr, std::size_t size) override {
    ThreadState* ts = self_or_attach();
    if (ts == nullptr) return;
    history::tl_access_size = static_cast<std::uint32_t>(size);
    if constexpr (SpillableVarState<typename D::VarState>) {
      if (gate_ != nullptr) {
        gated_access</*IsWrite=*/false>(*ts, addr, size);
        return;
      }
      rt_.packed_space().range_read(rt_.tool(), *ts, addr, size,
                                    /*sampled=*/true);
      arm_fastpath(*ts, addr);
      return;
    }
    instrumented_range_read(rt_, rt_.shadow_space(), addr, size);
  }

  void range_write(const void* addr, std::size_t size) override {
    ThreadState* ts = self_or_attach();
    if (ts == nullptr) return;
    history::tl_access_size = static_cast<std::uint32_t>(size);
    if constexpr (SpillableVarState<typename D::VarState>) {
      if (gate_ != nullptr) {
        gated_access</*IsWrite=*/true>(*ts, addr, size);
        return;
      }
      rt_.packed_space().range_write(rt_.tool(), *ts, addr, size,
                                     /*sampled=*/true);
      arm_fastpath(*ts, addr);
      return;
    }
    instrumented_range_write(rt_, rt_.shadow_space(), addr, size);
  }

  void mutex_lock(const void* m) override {
    ThreadState* ts = self_or_attach();
    if (ts == nullptr) return;
    rt_.tool().acquire(*ts, locks_.of(m));
  }

  void mutex_unlock(const void* m) override {
    ThreadState* ts = self_or_attach();
    if (ts == nullptr) return;
    rt_.tool().release(*ts, locks_.of(m));
  }

  // Atomic sync events run ungated (like mutex_lock/unlock: sampling
  // thins data accesses, never synchronization - a dropped edge would
  // manufacture false races, the one thing the sampling layer must never
  // do). VFT_ATOMICS=off restores the PR-5 interposer-only behaviour.

  void atomic_load(const void* a, int mo) override {
    if (atomics_mode_ == atomics::Mode::kOff) return;
    ThreadState* ts = self_or_attach();
    if (ts == nullptr) return;
    rt_.tool().atomic_load(*ts, atomics_.of(a),
                           atomics::fence_tls(generation_),
                           atomics::effective_mo(atomics_mode_, mo));
  }

  void atomic_store(const void* a, int mo) override {
    if (atomics_mode_ == atomics::Mode::kOff) return;
    ThreadState* ts = self_or_attach();
    if (ts == nullptr) return;
    rt_.tool().atomic_store(*ts, atomics_.of(a),
                            atomics::fence_tls(generation_),
                            atomics::effective_mo(atomics_mode_, mo));
  }

  void atomic_rmw_pre(const void* a, int mo) override {
    if (atomics_mode_ == atomics::Mode::kOff) return;
    ThreadState* ts = self_or_attach();
    if (ts == nullptr) return;
    rt_.tool().atomic_rmw_pre(*ts, atomics_.of(a),
                              atomics::fence_tls(generation_),
                              atomics::effective_mo(atomics_mode_, mo));
  }

  void atomic_rmw_post(const void* a, int mo) override {
    if (atomics_mode_ == atomics::Mode::kOff) return;
    ThreadState* ts = self_or_attach();
    if (ts == nullptr) return;
    rt_.tool().atomic_rmw_post(*ts, atomics_.of(a),
                               atomics::fence_tls(generation_),
                               atomics::effective_mo(atomics_mode_, mo));
  }

  void atomic_fence(int mo) override {
    if (atomics_mode_ == atomics::Mode::kOff) return;
    ThreadState* ts = self_or_attach();
    if (ts == nullptr) return;
    rt_.tool().atomic_fence(*ts, atomics::fence_tls(generation_),
                            atomics::effective_mo(atomics_mode_, mo));
  }

  bool attach() override { return self_or_attach() != nullptr; }

  /// End-of-thread event for the calling thread (interposer: pthread key
  /// destructor; tests: explicit call). Detached and implicitly-attached
  /// threads retire their slot here; a joinable thread's slot instead
  /// stays live until its join handler has consumed the final clock.
  void detach() override {
    // The descriptor's epoch/cell pointers die with this binding; its tid
    // slot may be recycled by a later thread. Pending inline-hit tallies
    // are credited first - detach is a quiescent observation point.
    if (vft_tl_fastpath.gen == entries_.generation) {
      vft_fastpath_flush_hits(&vft_tl_fastpath);
    }
    vft_tl_fastpath = vft_fastpath_s{};
    SessionTls& tls = tl_session;
    if (tls.generation == generation_ && tls.record != nullptr) {
      std::scoped_lock lk(mu_);
      auto* rec = static_cast<ThreadRecord*>(tls.record);
      rec->ended = true;
      retire_if_due(*rec);
    }
    Registry::bind(nullptr);
    tl_session = SessionTls{};
  }

  /// Parent-side half of pthread_create, called *before* the native
  /// create (§4: the fork handler runs while the child state is still
  /// parent-local). Returns the child's token, or 0 when the registry is
  /// exhausted (the child then runs unmonitored).
  std::uint64_t thread_create() override {
    ThreadState* parent = self_or_attach();
    if (parent == nullptr) return 0;
    std::scoped_lock lk(mu_);
    ThreadState* child = rt_.registry().try_create();
    if (child == nullptr) {
      warn_exhausted();
      return 0;
    }
    rt_.tool().fork(*parent, *child);
    ++threads_seen_;
    const std::uint64_t token = next_token_++;
    records_.emplace(token, ThreadRecord{child, token});
    return token;
  }

  /// Child-side: bind the calling OS thread to its pre-created state.
  /// Must be the child's first action (the interposer's thread trampoline
  /// guarantees it).
  void thread_begin(std::uint64_t token) override {
    // A fresh binding must not inherit a descriptor. Tallies a previous
    // same-OS-thread binding left behind are still credited (the rule
    // pointers outlive bindings - they target the Session's RuleStats).
    if (vft_tl_fastpath.gen == entries_.generation) {
      vft_fastpath_flush_hits(&vft_tl_fastpath);
    }
    vft_tl_fastpath = vft_fastpath_s{};
    if (token == 0) {
      tl_session = SessionTls{nullptr, generation_, /*unmonitored=*/true};
      return;
    }
    std::scoped_lock lk(mu_);
    auto it = records_.find(token);
    if (it == records_.end()) return;
    Registry::bind(it->second.ts);
    tl_session = SessionTls{&it->second, generation_, false};
  }

  /// Joiner-side half of pthread_join, called *after* the native join
  /// returned success (§4: the join handler runs when the child state is
  /// read-only). Consumes the token; the child's slot retires here unless
  /// a detach already retired it.
  void thread_join(std::uint64_t token) override {
    if (token == 0) return;
    ThreadState* joiner = self_or_attach();
    std::scoped_lock lk(mu_);
    auto it = records_.find(token);
    if (it == records_.end()) return;
    ThreadRecord& rec = it->second;
    if (!rec.retired) {
      // The child may still be between "end of user code" and its key
      // destructor only in hand-driven tests; real pthread_join returns
      // after the child fully terminated.
      if (joiner != nullptr) rt_.tool().join(*joiner, *rec.ts);
      rt_.registry().retire(*rec.ts);
      rec.retired = true;
    }
    records_.erase(it);
  }

  /// pthread_detach: no one will join this thread, so its end-of-thread
  /// event retires the slot (immediately, if it already ended).
  void thread_detach(std::uint64_t token) override {
    if (token == 0) return;
    std::scoped_lock lk(mu_);
    auto it = records_.find(token);
    if (it == records_.end()) return;
    it->second.detached = true;
    retire_if_due(it->second);
  }

  void free_hint(const void* addr, std::size_t size) override {
    if (size == 0) return;
    if (rt_.has_shadow_space()) rt_.shadow_space().reset_range(addr, size);
    if constexpr (SpillableVarState<typename D::VarState>) {
      if (rt_.has_packed_space()) rt_.packed_space().reset_range(addr, size);
    }
    locks_.reset_range(addr, size);
    atomics_.reset_range(addr, size);
    // Recycled addresses are new variables: any cooled sampling state
    // covering them goes back to full rate.
    if (gate_ != nullptr) gate_->on_page_reset(addr, size);
    // Drop access-history rings too: a freed allocation's stacks must not
    // appear as the prior side of a race on recycled memory.
    if (history::AccessHistory* h = history::active()) {
      h->reset_range(reinterpret_cast<std::uint64_t>(addr), size);
    }
  }

  std::size_t threads_seen() const override {
    std::scoped_lock lk(mu_);
    return threads_seen_;
  }

  std::size_t locks_seen() const override { return locks_.size(); }

  std::size_t shadow_words() const override {
    std::size_t n = rt_.has_shadow_space()
                        ? const_cast<Runtime<D>&>(rt_).shadow_space().size()
                        : 0;
    if (rt_.has_packed_space()) {
      n += const_cast<Runtime<D>&>(rt_).packed_space().size();
    }
    return n;
  }

 private:
  /// One target thread's lifecycle. The invariant behind "slot retired
  /// exactly once": retirement happens at exactly one of
  ///   - thread_join (joinable thread, whether or not it already ended),
  ///   - retire_if_due on end (detached or implicitly attached thread),
  ///   - retire_if_due on thread_detach (thread already ended),
  /// guarded by `retired` under mu_. A joinable thread that ends and is
  /// never joined keeps its slot (still consistent - just not reusable,
  /// exactly like a leaked pthread).
  struct ThreadRecord {
    ThreadState* ts;
    std::uint64_t token = 0;  ///< 0: implicit attach (not joinable)
    bool detached = false;
    bool ended = false;
    bool retired = false;
  };

  static bool one_word(const void* addr, std::size_t size) {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    return (a & (ShadowGeometry::kGranularity - 1)) + size <=
           ShadowGeometry::kGranularity;
  }

  /// VFT_FASTPATH=off|0 disables descriptor arming (the differential
  /// test's baseline half and an escape hatch). Sched builds never arm:
  /// an inline hit would skip the access's sched points.
  static bool fastpath_env_enabled() {
#ifdef VFT_SCHED
    return false;
#else
    const char* env = std::getenv("VFT_FASTPATH");
    return env == nullptr || (std::strcmp(env, "off") != 0 &&
                              std::strcmp(env, "0") != 0);
#endif
  }

  /// Arm the calling thread's header-inlined descriptor
  /// (vft/fastpath_ctx.h) for the page just accessed: cache the epoch
  /// pointer, the page's cell array, and the rule counters, then
  /// generation-stamp the descriptor live. Called after the access, so
  /// a same-address follow-up resolves inline against the {R, W} this
  /// access just recorded. Cheap re-arm check first: same page, same
  /// thread binding, still-live generation.
  void arm_fastpath(ThreadState& ts, const void* addr) {
    if (!fastpath_arm_) return;
    vft_fastpath_s& fp = vft_tl_fastpath;
    const std::uintptr_t base =
        ShadowGeometry::base_of(reinterpret_cast<std::uintptr_t>(addr));
    if (fp.gen == entries_.generation && fp.page_base == base &&
        fp.epoch_addr == ts.epoch_bits_addr()) {
      return;
    }
    if constexpr (SpillableVarState<typename D::VarState>) {
      if (fp.gen == entries_.generation) {
        // Page-switch re-arm: credit pending tallies before the rewrite.
        vft_fastpath_flush_hits(&fp);
      } else {
        // Stale descriptor from an older backend: its tallies were accrued
        // against counters that have since been reset - drop them.
        fp.hit_reads = 0;
        fp.hit_writes = 0;
      }
      fp.epoch_addr = ts.epoch_bits_addr();
      fp.page_base = base;
      fp.cells = rt_.packed_space().page_cells(base);
      fp.drop_countdown = 0;
      fp.drop_pending = 0;
      fp.rule_read[0] = rule_read_hit_[0];
      fp.rule_read[1] = rule_read_hit_[1];
      fp.rule_write[0] = rule_write_hit_[0];
      fp.rule_write[1] = rule_write_hit_[1];
      // entries_.generation snapshots the global at backend creation; if
      // a reset bumped the global since, this stamp leaves the descriptor
      // stale and the inline path keeps falling through - correct, since
      // this backend is being torn down.
      fp.gen = entries_.generation;
    }
  }

  /// The sampling route: accesses run against the packed-cell space so a
  /// sampled-out access costs one cell fast path at most and spills feed
  /// the gate's reheat hook. One gate decision covers a whole range
  /// (ranges are one program event; per-word draws would just multiply
  /// the rate by the range length). Under the drop policy the ABI entry
  /// point already drew the gate, so every access arriving here counts as
  /// sampled - there must be exactly one draw per event.
  template <bool IsWrite>
  void gated_access(ThreadState& ts, const void* addr, std::size_t size) {
    std::uint64_t probe = 0;
    bool sampled;
    if (drop_mode_) {
      sampled = true;  // the ABI entry point already drew the gate
      probe = gate_->maybe_time_begin();
    } else {
      // The probe (when armed) opens inside should_sample, before the
      // gate's own slow path, so the controller charges gate bookkeeping
      // plus the shadow access - the true marginal cost of the rate.
      sampled = gate_->should_sample(addr, &probe);
    }
    auto& packed = rt_.packed_space();
    auto& tool = rt_.tool();
    bool spilled = false;
    bool ok = true;
    if (one_word(addr, size)) {
      if constexpr (IsWrite) {
        ok = packed.write_gated(tool, ts, addr, sampled, &spilled);
      } else {
        ok = packed.read_gated(tool, ts, addr, sampled, &spilled);
      }
    } else {
      if constexpr (IsWrite) {
        ok = packed.range_write(tool, ts, addr, size, sampled, &spilled);
      } else {
        ok = packed.range_read(tool, ts, addr, size, sampled, &spilled);
      }
    }
    if (sampled) {
      if (spilled) gate_->on_spill(addr);
      if (!ok) gate_->on_race(addr);
    }
    gate_->time_end(probe);  // 0 token (unprobed / sampled-out): no-op
  }

  /// The calling thread's state, attaching implicitly on first contact.
  /// A wrapper-style ThreadScope binding (tests mixing APIs) wins; an
  /// exhausted registry leaves the thread unmonitored (nullptr).
  ThreadState* self_or_attach() {
    if (ThreadState* ts = Registry::current()) return ts;
    SessionTls& tls = tl_session;
    if (tls.generation == generation_ && tls.unmonitored) return nullptr;
    std::scoped_lock lk(mu_);
    ThreadState* ts = rt_.registry().try_create();
    if (ts == nullptr) {
      warn_exhausted();
      tl_session = SessionTls{nullptr, generation_, /*unmonitored=*/true};
      return nullptr;
    }
    ++threads_seen_;
    // Implicit threads have no joiner, so they behave as detached:
    // end-of-thread retires the slot.
    auto rec = std::make_unique<ThreadRecord>(ts, std::uint64_t{0});
    rec->detached = true;
    ThreadRecord* r = rec.get();
    implicit_records_.push_back(std::move(rec));
    Registry::bind(ts);
    tl_session = SessionTls{r, generation_, false};
    return ts;
  }

  /// Retire the slot if this record's lifecycle is complete. Caller holds
  /// mu_. The `retired` flag makes retirement idempotent across the
  /// end/detach/join paths; Registry::retire itself rejects a double
  /// retire as a backstop.
  void retire_if_due(ThreadRecord& rec) {
    if (rec.ended && rec.detached && !rec.retired) {
      rt_.registry().retire(*rec.ts);
      rec.retired = true;
    }
  }

  void warn_exhausted() {
    if (warned_exhausted_) return;
    warned_exhausted_ = true;
    std::fprintf(
        stderr,
        "vft: warning: thread registry exhausted (%u concurrently-live "
        "target threads, the Epoch::kMaxTid limit); further threads run "
        "unmonitored and their accesses are invisible to the race "
        "analysis. Join or detach finished threads so tid slots can be "
        "reused.\n",
        static_cast<unsigned>(Epoch::kMaxTid) + 1);
  }

  Runtime<D> rt_;
  LockRegistry locks_;
  atomics::AtomicRegistry atomics_;
  const atomics::Mode atomics_mode_ = atomics::mode_from_env();
  const std::uint64_t generation_;
  sampling::Gate* const gate_;  ///< nullptr: sampling off, classic route
  const bool drop_mode_;
  EntryTable entries_;
  bool fastpath_arm_ = false;  ///< ungated + stats + env allow arming
  std::uint64_t* rule_read_hit_[2] = {nullptr, nullptr};
  std::uint64_t* rule_write_hit_[2] = {nullptr, nullptr};

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, ThreadRecord> records_;
  std::vector<std::unique_ptr<ThreadRecord>> implicit_records_;
  std::uint64_t next_token_ = 1;
  std::size_t threads_seen_ = 0;
  bool warned_exhausted_ = false;
};

/// The process-wide analysis session. The instance is intentionally
/// leaked: under the interposer, detached target threads can outlive
/// main(), and events arriving during static destruction must still find
/// a live session.
class Session {
 public:
  static Session& instance() {
    static Session* session = new Session();
    return *session;
  }

  /// Select the detector for the next backend creation (first use, or the
  /// next reset()). Accepts the CLI names: v1 v1.5 v2 ft-mutex ft-cas
  /// djit. Returns false (and changes nothing) for an unknown name; has
  /// no effect on an already-created backend until reset().
  bool configure(const std::string& name);

  /// The erased backend, created on first use from configure()'s choice
  /// or the VFT_DETECTOR environment variable (default v2).
  SessionBackend& backend() {
    if (SessionBackend* b = backend_ptr_.load(std::memory_order_acquire)) {
      return *b;
    }
    return create_backend();
  }

  RaceCollector& races() { return races_; }
  RuleStats& rule_stats() { return stats_; }

  /// The live backend's devirtualized entry table, or nullptr before the
  /// first event / after reset(). Consumers must compare the table's
  /// generation snapshot against vft_g_fastpath_gen before dispatching
  /// through it (src/abi/vft_abi.cpp does); a stale table may point into
  /// a backend that reset() is about to destroy.
  const EntryTable* entry_table() const {
    return entry_table_.load(std::memory_order_acquire);
  }

  /// Snapshot the end-of-run report document: the collector's error
  /// contexts plus the backend's process stats (report_io renders it as
  /// vft-report-v2 JSON or the plain compatibility format). clean_exit
  /// false marks a report written from a crash path.
  reportio::ReportDoc report_doc(bool clean_exit = true) {
    SessionBackend& b = backend();
    reportio::ReportDoc doc = reportio::build_report_doc(
        races_, b.detector_name(), b.threads_seen(), b.locks_seen(),
        b.shadow_words(), clean_exit);
    if (sampling::Gate* g = sampling::Gate::active()) {
      const sampling::Config& cfg = g->config();
      const sampling::Stats s = g->snapshot();
      reportio::SamplingInfo& sp = doc.sampling;
      sp.enabled = true;
      sp.policy =
          cfg.policy == sampling::Config::Policy::kDrop ? "drop" : "cell";
      sp.budget_pct = cfg.budget_pct;
      sp.rate0 = cfg.rate;
      sp.rate_ppm = static_cast<std::uint64_t>(s.rate * 1e6 + 0.5);
      sp.sampled = s.sampled;
      sp.skipped = s.skipped;
      sp.cooled_out = s.cooled_out;
      sp.reheats = s.reheats;
      sp.overhead_ns = s.overhead_ns;
      sp.busy_ns = s.busy_ns;
      sp.adjustments = s.adjustments;
    }
    return doc;
  }

  /// Typed access for the default configuration, used by the ambient
  /// wrappers (ambient::Thread/Lock) and same-detector fast paths. Fatal
  /// with a pointer at VFT_DETECTOR if the session runs another detector:
  /// mixing a typed v2 handler with, say, ft-cas state would corrupt both.
  Runtime<VftV2>& runtime() {
    backend();
    if (v2_ == nullptr) {
      detail::fatal(
          "this session was launched with detector '%s', but a caller "
          "asked for the typed VerifiedFT-v2 runtime (ambient wrappers "
          "and VFT_AMBIENT_* macros are v2-only). Launch with "
          "VFT_DETECTOR=v2 (the default), or route everything through "
          "the detector-erased ABI instead.",
          backend().detector_name());
    }
    return v2_->runtime();
  }

  ShadowSpace<VftV2>& shadow() { return runtime().shadow_space(); }

  /// Monotone session generation; bumped by reset() so thread-local
  /// bindings from a previous backend can never be mistaken for live.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

  /// Drops all analysis state (shadow, reports, thread registry, lock
  /// registry) and re-creates the backend with the configured detector.
  /// Only safe while no ambient/ABI threads are live; intended for tests.
  void reset();

 private:
  Session() = default;

  SessionBackend& create_backend();

  std::mutex mu_;
  std::string detector_;  ///< empty: resolve from env at creation
  std::unique_ptr<SessionBackend> backend_;
  std::atomic<SessionBackend*> backend_ptr_{nullptr};
  std::atomic<const EntryTable*> entry_table_{nullptr};
  SessionImpl<VftV2>* v2_ = nullptr;
  std::atomic<std::uint64_t> generation_{1};
  bool suppressions_loaded_ = false;  ///< VFT_SUPPRESSIONS: once per process
  RaceCollector races_;
  RuleStats stats_;
};

}  // namespace vft::rt::ambient
