// Dynamic-granularity array shadow: the adaptive refinement of coarse
// shadowing surveyed in Section 9 ("Efficient Data Race Detection for
// C/C++ Programs Using Dynamic Granularity"). While a granule of G
// elements is only ever touched by one thread, a single VarState shadows
// all of it (G-fold cheaper in memory and checks); the moment a *second*
// thread touches the granule, it is split into per-element VarStates that
// inherit the granule's epoch history, so precision from then on equals
// the fine-grained array - without CoarseArray's false alarms.
//
// Split protocol: every access first loads the granule's element-table
// pointer (acquire). Non-null -> fine-grained path. Null -> compare the
// granule's owner (atomic tid; claimed by CAS on first touch): the owner
// stays on the coarse path; any other thread performs the split under the
// granule's split mutex - allocate element states, inject the granule's
// (R, W) into each, publish the table (release) - then proceeds on its
// element. The granule state is still epoch-mode at that point (only the
// owner has touched it), so injection is exact.
//
// Precision caveat (inherent to the technique and documented by its
// authors): an owner access that is in flight *during* the split races
// with the split's snapshot; its bookkeeping may land in the granule state
// after the copy and be forgotten. The window is one access wide; the
// tests drive the split from quiescent points where the semantics are
// exact.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>

#include "runtime/tool.h"
#include "vft/probe.h"

namespace vft::rt {

template <typename T, Detector D>
  requires ProbeableVarState<typename D::VarState>
class AdaptiveArray {
 public:
  /// With `packed = true`, the coarse (owner-only) path runs the packed
  /// cell fast path against a per-granule cell instead of calling the
  /// detector on the coarse VarState: the owner's accesses are always
  /// ordered after its own history, so they stay inline until the granule
  /// splits; split() then snapshots {R, W} from the cell. Opt-in like the
  /// other wrappers' packed modes.
  AdaptiveArray(Runtime<D>& rt, std::size_t n, std::size_t granule,
                T initial = T{}, bool packed = false)
      : rt_(&rt),
        packed_(packed),
        n_(n),
        granule_(granule == 0 ? 1 : granule),
        data_(std::make_unique<std::atomic<T>[]>(n)),
        granules_(std::make_unique<Granule[]>(num_granules())) {
    for (std::size_t i = 0; i < n; ++i) {
      data_[i].store(initial, std::memory_order_relaxed);
    }
    for (std::size_t g = 0; g < num_granules(); ++g) {
      granules_[g].coarse.id = reinterpret_cast<std::uint64_t>(&granules_[g]);
    }
  }

  std::size_t size() const { return n_; }

  T load(std::size_t i) {
    access(i, /*is_write=*/false);
    return data_[i].load(std::memory_order_relaxed);
  }

  void store(std::size_t i, T v) {
    access(i, /*is_write=*/true);
    data_[i].store(v, std::memory_order_relaxed);
  }

  T raw(std::size_t i) const { return data_[i].load(std::memory_order_relaxed); }

  /// Number of granules that have split to per-element shadows (tests).
  std::size_t split_count() const {
    std::size_t k = 0;
    for (std::size_t g = 0; g < num_granules(); ++g) {
      if (granules_[g].elements.load(std::memory_order_acquire) != nullptr) {
        ++k;
      }
    }
    return k;
  }

 private:
  struct Granule {
    typename D::VarState coarse;
    PackedCell cell;  // fronts `coarse` in packed mode
    std::atomic<Tid> owner{kUnowned};
    std::atomic<typename D::VarState*> elements{nullptr};
    std::mutex split_mu;
    std::unique_ptr<typename D::VarState[]> storage;  // owns `elements`
  };

  static constexpr Tid kUnowned = ~Tid{0};

  std::size_t num_granules() const { return (n_ + granule_ - 1) / granule_; }

  void access(std::size_t i, bool is_write) {
    Granule& g = granules_[i / granule_];
    typename D::VarState* fine = g.elements.load(std::memory_order_acquire);
    if (fine == nullptr && packed_ && owner_is_self(g)) {
      // Owner-only coarse path through the cell. The owner's accesses are
      // ordered after its own recorded epochs by program order, so in
      // practice this never escalates before the split; the spill target
      // is the eager coarse VarState either way.
      auto target = [&g]() -> typename D::VarState& { return g.coarse; };
      if (is_write) {
        packed_write(rt_->tool(), rt_->self(), g.cell, target, target);
      } else {
        packed_read(rt_->tool(), rt_->self(), g.cell, target, target);
      }
      return;
    }
    typename D::VarState& vs =
        fine != nullptr ? fine[i % granule_] : shadow_for(g, i);
    if (is_write) {
      rt_->tool().write(rt_->self(), vs);
    } else {
      rt_->tool().read(rt_->self(), vs);
    }
  }

  /// Resolve the granule's owner, claiming it on first touch.
  bool owner_is_self(Granule& g) {
    const Tid self = rt_->self().t;
    Tid owner = g.owner.load(std::memory_order_acquire);
    if (owner == kUnowned &&
        g.owner.compare_exchange_strong(owner, self,
                                        std::memory_order_acq_rel)) {
      return true;  // first touch: claimed the granule
    }
    return owner == self ||
           g.owner.load(std::memory_order_acquire) == self;
  }

  typename D::VarState& shadow_for(Granule& g, std::size_t i) {
    typename D::VarState* fine = g.elements.load(std::memory_order_acquire);
    if (fine != nullptr) return fine[i % granule_];
    if (owner_is_self(g)) return g.coarse;  // exclusive owner, coarse path
    return split(g, i);  // second thread: refine to per-element shadows
  }

  typename D::VarState& split(Granule& g, std::size_t i) {
    std::scoped_lock lk(g.split_mu);
    typename D::VarState* fine = g.elements.load(std::memory_order_acquire);
    if (fine == nullptr) {
      const std::size_t lo = (&g - granules_.get()) * granule_;
      const std::size_t len = std::min(granule_, n_ - lo);
      auto storage = std::make_unique<typename D::VarState[]>(len);
      // Epoch-mode snapshot of the granule's history: from the cell when
      // it fronts the coarse path, from the coarse VarState otherwise (or
      // when the cell was force-escalated into it).
      Epoch r, w;
      const std::uint64_t bits = g.cell.bits();
      if (packed_ && !PackedCell::is_sentinel(bits)) {
        r = PackedCell::unpack_r(bits);
        w = PackedCell::unpack_w(bits);
      } else {
        r = probe_r(g.coarse);
        w = probe_w(g.coarse);
      }
      for (std::size_t k = 0; k < len; ++k) {
        storage[k].id = reinterpret_cast<std::uint64_t>(&storage[k]);
        inject(storage[k], r, w);
      }
      fine = storage.get();
      g.storage = std::move(storage);
      g.elements.store(fine, std::memory_order_release);
    }
    return fine[i % granule_];
  }

  Runtime<D>* rt_;
  const bool packed_;
  std::size_t n_;
  std::size_t granule_;
  std::unique_ptr<std::atomic<T>[]> data_;
  std::unique_ptr<Granule[]> granules_;
};

}  // namespace vft::rt
