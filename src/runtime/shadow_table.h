// Sharded-hash shadow memory: the fallback backend behind the raw-pointer
// entry points of shadow_space.h, kept for exact (byte-keyed) address
// resolution and as the baseline bench_shadow measures the two-level
// ShadowSpace against.
//
// Layout: a fixed power-of-two array of shards, each a mutex-protected
// open hash map. The shard mutex is held only during lookup/insert, never
// during the detector handler, so the detector's own locking discipline
// (and its lock-free fast paths) is unaffected - but unlike ShadowSpace
// the table adds a lock acquisition per access, which is why it is no
// longer the default (see docs/ALGORITHM.md §8).
//
// VarState addresses are stable once created (node-based map + unique_ptr),
// matching the runtime-system assumption of Section 4 that the mapping
// from variables to VarState objects is one-to-one and persistent.
//
// Keying: exact addresses, not words - two distinct byte addresses always
// get distinct VarStates, unlike ShadowSpace's word granularity.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "runtime/shadow_space.h"

namespace vft::rt {

template <Detector D>
class ShadowTable {
 public:
  ShadowTable() = default;
  ShadowTable(const ShadowTable&) = delete;
  ShadowTable& operator=(const ShadowTable&) = delete;

  /// The VarState shadowing `addr` (created on first use). Thread-safe.
  typename D::VarState& of(const void* addr) {
    const auto key = reinterpret_cast<std::uintptr_t>(addr);
    Shard& shard = shards_[shard_of(key)];
    std::scoped_lock lk(shard.mu);
    auto [it, inserted] = shard.map.try_emplace(key);
    if (inserted) {
      it->second = std::make_unique<typename D::VarState>();
      it->second->id = key;
    }
    return *it->second;
  }

  /// Pre-size every shard for ~`expected` total locations, so the hot
  /// phase does not rehash under the shard locks.
  void reserve(std::size_t expected) {
    const std::size_t per_shard = (expected + kShards - 1) / kShards;
    for (Shard& s : shards_) {
      std::scoped_lock lk(s.mu);
      s.map.reserve(per_shard);
    }
  }

  /// Rehash threshold knob for the underlying maps (default 1.0).
  void set_max_load_factor(float f) {
    for (Shard& s : shards_) {
      std::scoped_lock lk(s.mu);
      s.map.max_load_factor(f);
    }
  }

  /// Number of shadowed locations (racy snapshot; for tests/diagnostics).
  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::scoped_lock lk(s.mu);
      n += s.map.size();
    }
    return n;
  }

 private:
  static constexpr std::size_t kShards = 64;

  static std::size_t shard_of(std::uintptr_t key) {
    // Mix before masking: heap addresses share low-bit alignment patterns.
    key ^= key >> 17;
    key *= 0x9E3779B97F4A7C15ull;
    return (key >> 32) & (kShards - 1);
  }

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uintptr_t, std::unique_ptr<typename D::VarState>> map;
  };

  Shard shards_[kShards];
};

}  // namespace vft::rt
