// Address-keyed shadow memory: the TSan-style mapping from target memory
// locations to VarState objects, for instrumenting raw pointers rather
// than rt::Var/rt::Array wrappers (whose shadow is inline).
//
// Layout: a fixed power-of-two array of shards, each a mutex-protected
// open hash map. The shard mutex is held only during lookup/insert, never
// during the detector handler, so the detector's own locking discipline
// (and its lock-free fast paths) is unaffected - the table adds a
// fixed lookup cost per access, which is why the kernels use inline
// shadow instead (and why real tools burn address bits for direct-mapped
// shadow; see EXPERIMENTS.md notes).
//
// VarState addresses are stable once created (node-based map + unique_ptr),
// matching the runtime-system assumption of Section 4 that the mapping
// from variables to VarState objects is one-to-one and persistent.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "runtime/tool.h"

namespace vft::rt {

template <Detector D>
class ShadowTable {
 public:
  ShadowTable() = default;
  ShadowTable(const ShadowTable&) = delete;
  ShadowTable& operator=(const ShadowTable&) = delete;

  /// The VarState shadowing `addr` (created on first use). Thread-safe.
  typename D::VarState& of(const void* addr) {
    const auto key = reinterpret_cast<std::uintptr_t>(addr);
    Shard& shard = shards_[shard_of(key)];
    std::scoped_lock lk(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      auto state = std::make_unique<typename D::VarState>();
      state->id = key;
      it = shard.map.emplace(key, std::move(state)).first;
    }
    return *it->second;
  }

  /// Number of shadowed locations (racy snapshot; for tests/diagnostics).
  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::scoped_lock lk(s.mu);
      n += s.map.size();
    }
    return n;
  }

 private:
  static constexpr std::size_t kShards = 64;

  static std::size_t shard_of(std::uintptr_t key) {
    // Mix before masking: heap addresses share low-bit alignment patterns.
    key ^= key >> 17;
    key *= 0x9E3779B97F4A7C15ull;
    return (key >> 32) & (kShards - 1);
  }

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uintptr_t, std::unique_ptr<typename D::VarState>> map;
  };

  Shard shards_[kShards];
};

/// Raw-pointer instrumentation entry points (the API a compiler pass would
/// call; exercised by tests and the shadow-table example).
template <Detector D>
bool instrumented_read(Runtime<D>& rt, ShadowTable<D>& table, const void* addr) {
  return rt.tool().read(rt.self(), table.of(addr));
}

template <Detector D>
bool instrumented_write(Runtime<D>& rt, ShadowTable<D>& table, const void* addr) {
  return rt.tool().write(rt.self(), table.of(addr));
}

}  // namespace vft::rt
