// Two-level shadow memory: the production-shaped mapping from target
// addresses to analysis state, replacing the mutex-sharded hash table
// as the primary raw-pointer backend.
//
// Layout (the Valgrind-DRD primary/secondary map, adapted to 64-bit
// address spaces the way ThreadSanitizer-style tools do):
//
//   address ──┬─ bits [kPageSpanLog2, 64)  ──> bucket in a fixed top-level
//             │                                array of atomic page
//             │                                pointers (hash-mixed so the
//             │                                sparse 48-bit user space
//             │                                spreads evenly)
//             └─ bits [kGranularityLog2,
//                      kPageSpanLog2)      ──> slot inside the page
//
// Two page flavors share that directory machinery (PageDirectory below):
//
//   ShadowSpace        one full VarState per 8-byte word - every access is
//                      a detector call against production analysis state.
//   PackedShadowSpace  one 64-bit packed {R, W} cell per word plus a lazy
//                      spill slot - the same-epoch/exclusive fast path of
//                      vft/packed_cell.h runs inline against the cell, and
//                      only escalated words ever materialize a VarState.
//
// Pages are allocated on first touch and published with a CAS into the
// bucket's chain - no lock anywhere on the lookup path. Distinct page
// bases that land in the same bucket chain off each other (the chain is
// almost always length 1).
//
// Two properties the Section 4 runtime assumptions need:
//
//   Stability  pages are never freed or moved during a session, so a
//              VarState& (or cell&) stays valid forever (the one-to-one
//              persistent variable->VarState mapping). The flip side: if
//              the target frees memory and the allocator reuses the
//              address, the new object inherits the old shadow word (real
//              tools hook free() to clear shadow; see docs/ALGORITHM.md §8).
//   Agreement  every alias of an address maps to the same VarState, so
//              wrapper-based (rt::Array carving) and raw-pointer
//              instrumentation of the same memory see the same history.
//
// Granularity: accesses within the same 8-byte word share a VarState
// (word-granular shadow, as in TSan's default). The fallback ShadowTable
// keys exact addresses instead; use word-aligned data when comparing
// backends.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "vft/detector.h"
#include "vft/packed_cell.h"
#include "vft/vc_simd.h"

namespace vft::rt {

template <Detector D>
class Runtime;

/// Geometry shared by every ShadowSpace instantiation (non-template so the
/// formatting helpers can live in shadow_space.cpp).
struct ShadowGeometry {
  /// log2 bytes per shadow slot: 8-byte words, one VarState each.
  static constexpr std::size_t kGranularityLog2 = 3;
  static constexpr std::size_t kGranularity = 1u << kGranularityLog2;
  /// log2 slots per page: 512 slots -> a page spans 4 KiB of target memory.
  static constexpr std::size_t kSlotsPerPageLog2 = 9;
  static constexpr std::size_t kSlotsPerPage = 1u << kSlotsPerPageLog2;
  static constexpr std::size_t kPageSpanLog2 = kGranularityLog2 + kSlotsPerPageLog2;
  static constexpr std::size_t kPageSpan = 1u << kPageSpanLog2;
  /// log2 top-level buckets: 64K atomic pointers = 512 KiB per space.
  static constexpr std::size_t kTopBitsLog2 = 16;
  static constexpr std::size_t kBuckets = 1u << kTopBitsLog2;

  /// The page base covering `a`.
  static std::uintptr_t base_of(std::uintptr_t a) {
    return a & ~static_cast<std::uintptr_t>(kPageSpan - 1);
  }

  /// Slot index of `a` within its page.
  static std::size_t slot_index(std::uintptr_t a) {
    return (a >> kGranularityLog2) & (kSlotsPerPage - 1);
  }

  /// Top-level index for a page base: multiply-shift mix of the page
  /// number, so the handful of live 48-bit address-space regions (stack,
  /// heap, globals) spread over the buckets instead of clustering.
  static std::size_t bucket_of(std::uintptr_t page_base) {
    std::uintptr_t x = page_base >> kPageSpanLog2;
    x ^= x >> 29;
    x *= 0x9E3779B97F4A7C15ull;
    x ^= x >> 32;
    return static_cast<std::size_t>(x) & (kBuckets - 1);
  }

  /// One-line description of the layout constants (for docs/tools).
  static std::string describe();

  /// Monotonically increasing id handed to each directory instance.
  /// The thread-local lookup cache tags entries with it, so a cache entry
  /// can never resurrect a page of a destroyed (or different) space even
  /// if a later space reuses the same object address.
  static std::uint64_t next_space_id();
};

/// Allocation counters of one shadow space (snapshot; relaxed reads).
struct ShadowSpaceStats {
  std::size_t pages = 0;       ///< shadow pages allocated
  std::size_t slots = 0;       ///< shadow slots those pages hold
  std::size_t bytes = 0;       ///< footprint: top-level array + pages
  std::size_t collisions = 0;  ///< bucket chains longer than one + CAS races
  std::size_t cache_misses = 0;  ///< lookups that fell past the TL cache
  std::size_t spilled = 0;  ///< packed cells escalated to full VarStates
  std::size_t words_reset = 0;  ///< shadow words cleared by reset_range
};

/// "pages=N slots=N mem=N.NMiB collisions=N ..." (shadow_space.cpp).
std::string str(const ShadowSpaceStats& s);

/// The lock-free two-level page table both shadow flavors share. PageT
/// must expose `const std::uintptr_t base`, `std::atomic<PageT*> next`,
/// and a PageT(std::uintptr_t base) constructor.
///
/// Lookup fast path: a TSan-style thread-local last-page cache.
/// Consecutive accesses to the same 4 KiB shadow page (the overwhelmingly
/// common case for sweeps and per-thread working sets) skip the bucket
/// hash, the atomic chain walk, and their acquire fences: two compares and
/// a shift. Entries are tagged with the directory's unique id, so a cache
/// line can never outlive its space or leak across spaces (ids are never
/// reused); the cached PageT* was acquire-loaded by this same thread when
/// it was inserted, so its contents are already visible.
template <typename PageT>
class PageDirectory {
 public:
  using Geometry = ShadowGeometry;

  PageDirectory()
      : buckets_(std::make_unique<std::atomic<PageT*>[]>(Geometry::kBuckets)) {}

  ~PageDirectory() {
    for (std::size_t b = 0; b < Geometry::kBuckets; ++b) {
      PageT* p = buckets_[b].load(std::memory_order_relaxed);
      while (p != nullptr) {
        PageT* next = p->next.load(std::memory_order_relaxed);
        delete p;
        p = next;
      }
    }
  }

  PageDirectory(const PageDirectory&) = delete;
  PageDirectory& operator=(const PageDirectory&) = delete;

  /// The page for `base` (allocated on first touch), through the
  /// thread-local cache. Single fused tag check: both the space id and the
  /// page base must match; OR-ing the XORs turns that into one
  /// compare-and-branch.
  PageT& page(std::uintptr_t base) {
    const Cache& c = tl_cache_;
    if (((c.space ^ id_) | (c.base ^ base)) == 0) {
      return *c.page;
    }
    return page_miss(base);
  }

  /// The page for `base` if it was ever touched, else nullptr - a lookup
  /// that never allocates. reset_range walks existing pages with this so
  /// clearing the shadow of freed memory cannot materialize new pages.
  PageT* find_page(std::uintptr_t base) {
    std::atomic<PageT*>& head = buckets_[Geometry::bucket_of(base)];
    for (PageT* p = head.load(std::memory_order_acquire); p != nullptr;
         p = p->next.load(std::memory_order_acquire)) {
      if (p->base == base) return p;
    }
    return nullptr;
  }

  /// The pre-cache lookup path (hash + chain walk), kept callable so
  /// bench_hotpath can measure exactly what the cache buys.
  PageT& page_uncached(std::uintptr_t base) {
    std::atomic<PageT*>& head = buckets_[Geometry::bucket_of(base)];
    for (PageT* p = head.load(std::memory_order_acquire); p != nullptr;
         p = p->next.load(std::memory_order_acquire)) {
      if (p->base == base) return *p;
    }
    return publish_page(head, base);
  }

  std::size_t pages() const { return pages_.load(std::memory_order_relaxed); }
  std::size_t collisions() const {
    return collisions_.load(std::memory_order_relaxed);
  }
  std::size_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }

 private:
  /// One-entry per-thread lookup cache (per PageT instantiation).
  struct Cache {
    std::uint64_t space = 0;  ///< owning directory's id_; 0 never matches
    std::uintptr_t base = 0;
    PageT* page = nullptr;
  };
  /// constinit: guarantees constant initialization, so every TU accesses
  /// the TLS slot directly instead of through the dynamic-init wrapper
  /// function the ABI otherwise requires for inline thread_locals. The
  /// wrapper call was the whole cost of the cache on single-page hammer
  /// workloads (BENCH_hotpath shadow_cache hammer_* rows).
  inline static constinit thread_local Cache tl_cache_{};

#if defined(__GNUC__) || defined(__clang__)
  __attribute__((noinline, cold))
#endif
  PageT& page_miss(std::uintptr_t base) {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    std::atomic<PageT*>& head = buckets_[Geometry::bucket_of(base)];
    PageT* p = head.load(std::memory_order_acquire);
    while (p != nullptr && p->base != base) {
      p = p->next.load(std::memory_order_acquire);
    }
    if (p == nullptr) p = &publish_page(head, base);
    tl_cache_ = Cache{id_, base, p};
    return *p;
  }

  /// Miss path: allocate the page for `base` and CAS it onto the bucket
  /// chain; on a lost race the winner's page is used and ours is dropped.
  PageT& publish_page(std::atomic<PageT*>& head, std::uintptr_t base) {
    auto fresh = std::make_unique<PageT>(base);
    PageT* expected = head.load(std::memory_order_acquire);
    for (;;) {
      // Re-scan: a concurrent publisher may have added `base` meanwhile.
      for (PageT* p = expected; p != nullptr;
           p = p->next.load(std::memory_order_acquire)) {
        if (p->base == base) {
          collisions_.fetch_add(1, std::memory_order_relaxed);
          return *p;
        }
      }
      fresh->next.store(expected, std::memory_order_relaxed);
      if (head.compare_exchange_weak(expected, fresh.get(),
                                     std::memory_order_release,
                                     std::memory_order_acquire)) {
        if (expected != nullptr) {
          collisions_.fetch_add(1, std::memory_order_relaxed);
        }
        pages_.fetch_add(1, std::memory_order_relaxed);
        return *fresh.release();
      }
    }
  }

  const std::uint64_t id_ = Geometry::next_space_id();
  std::unique_ptr<std::atomic<PageT*>[]> buckets_;
  std::atomic<std::size_t> pages_{0};
  std::atomic<std::size_t> collisions_{0};
  std::atomic<std::size_t> cache_misses_{0};
};

template <Detector D>
class ShadowSpace {
 public:
  using Geometry = ShadowGeometry;

  ShadowSpace() = default;
  ShadowSpace(const ShadowSpace&) = delete;
  ShadowSpace& operator=(const ShadowSpace&) = delete;

  /// The VarState shadowing the word containing `addr` (page allocated on
  /// first touch). Lock-free; the returned reference is stable forever.
  typename D::VarState& of(const void* addr) {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    return dir_.page(Geometry::base_of(a)).slot(a);
  }

  /// The pre-cache lookup path, for bench_hotpath's cache A/B.
  typename D::VarState& of_uncached(const void* addr) {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    return dir_.page_uncached(Geometry::base_of(a)).slot(a);
  }

  /// Reset every shadow word overlapping [addr, addr+size) to its initial
  /// (bottom) VarState, keeping the word's report id. This is the shadow
  /// half of free()/munmap() interposition: without it, memory the
  /// allocator recycles would inherit the dead object's access history and
  /// report false races against its previous life (docs/ALGORITHM.md s8).
  ///
  /// Only pages that already exist are touched - clearing never allocates.
  /// The caller must guarantee no thread concurrently accesses the range
  /// being cleared; for the free() path that is the target's own
  /// correctness obligation (freeing memory another thread still uses is a
  /// bug this very tool exists to find).
  void reset_range(const void* addr, std::size_t size) {
    if (size == 0) return;
    const auto lo = reinterpret_cast<std::uintptr_t>(addr);
    const std::uintptr_t hi = lo + size;
    for (std::uintptr_t base = Geometry::base_of(lo); base < hi;
         base += Geometry::kPageSpan) {
      Page* p = dir_.find_page(base);
      if (p == nullptr) continue;
      const std::uintptr_t first = base < lo ? lo : base;
      const std::uintptr_t last =
          base + Geometry::kPageSpan < hi ? base + Geometry::kPageSpan : hi;
      std::size_t i = Geometry::slot_index(first);
      const std::size_t end =
          ((last - 1 - base) >> Geometry::kGranularityLog2) + 1;
      for (; i < end; ++i) {
        auto& vs = p->slots[i];
        const std::uint64_t id = vs.id;
        std::destroy_at(&vs);
        std::construct_at(&vs);
        vs.id = id;
      }
      words_reset_.fetch_add(end - Geometry::slot_index(first),
                             std::memory_order_relaxed);
    }
  }

  /// Pages allocated so far (racy snapshot).
  std::size_t pages() const { return dir_.pages(); }

  /// VarState slots materialized so far (pages * slots-per-page).
  std::size_t size() const { return pages() * Geometry::kSlotsPerPage; }

  /// Shadow words cleared by reset_range so far.
  std::size_t words_reset() const {
    return words_reset_.load(std::memory_order_relaxed);
  }

  ShadowSpaceStats stats() const {
    ShadowSpaceStats s;
    s.pages = pages();
    s.slots = s.pages * Geometry::kSlotsPerPage;
    s.bytes = Geometry::kBuckets * sizeof(std::atomic<Page*>) +
              s.pages * sizeof(Page);
    s.collisions = dir_.collisions();
    s.cache_misses = dir_.cache_misses();
    s.words_reset = words_reset();
    return s;
  }

 private:
  struct Page {
    explicit Page(std::uintptr_t b) : base(b) {
      for (std::size_t i = 0; i < Geometry::kSlotsPerPage; ++i) {
        slots[i].id = base + (i << Geometry::kGranularityLog2);
      }
    }

    typename D::VarState& slot(std::uintptr_t addr) {
      return slots[Geometry::slot_index(addr)];
    }

    const std::uintptr_t base;
    std::atomic<Page*> next{nullptr};
    typename D::VarState slots[Geometry::kSlotsPerPage];
  };

  PageDirectory<Page> dir_;
  std::atomic<std::size_t> words_reset_{0};
};

/// Packed-cell shadow space: 16 bytes of page payload per target word (an
/// 8-byte {R, W} cell plus an 8-byte lazy spill pointer) instead of a full
/// VarState. Accesses run the vft/packed_cell.h fast path inline; only
/// escalated words allocate a VarState, published through the cell's
/// ESCALATING->ESCALATED protocol (the spill directory of the packed
/// design). The spilled VarState's id is the word's base address, the same
/// id ShadowSpace assigns, so race reports agree across flavors.
template <Detector D>
class PackedShadowSpace {
 public:
  using Geometry = ShadowGeometry;
  using VarState = typename D::VarState;

  PackedShadowSpace() = default;
  PackedShadowSpace(const PackedShadowSpace&) = delete;
  PackedShadowSpace& operator=(const PackedShadowSpace&) = delete;

  /// A resolved word: its cell, its spill slot, and the report id. Stable
  /// forever; wrappers pre-resolve one per element.
  struct Slot {
    PackedCell* cell = nullptr;
    std::atomic<VarState*>* spill = nullptr;
    std::uint64_t id = 0;
  };

  Slot slot_of(const void* addr) {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    Page& p = dir_.page(Geometry::base_of(a));
    const std::size_t i = Geometry::slot_index(a);
    return Slot{&p.cells[i], &p.spills[i],
                p.base + (i << Geometry::kGranularityLog2)};
  }

  /// The packed cell shadowing the word containing `addr`.
  PackedCell& cell_of(const void* addr) {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    return dir_.page(Geometry::base_of(a)).cells[Geometry::slot_index(a)];
  }

  /// Force-escalated VarState access, so external probes (and the generic
  /// backend concept) stay coherent with the cell protocol. Prefer
  /// read()/write(): this defeats the fast path for the word it touches.
  VarState& of(const void* addr) { return escalated(slot_of(addr)); }

  /// One instrumented access: fast path inline against the cell, detector
  /// call on the (spilled-on-demand) VarState otherwise.
  template <typename Tool>
  bool read(Tool& tool, ThreadState& st, const void* addr) {
    return read_slot(tool, st, slot_of(addr));
  }
  template <typename Tool>
  bool write(Tool& tool, ThreadState& st, const void* addr) {
    return write_slot(tool, st, slot_of(addr));
  }

  /// Slot-resolved variants (wrappers cache the Slot per element).
  template <typename Tool>
  bool read_slot(Tool& tool, ThreadState& st, const Slot& s) {
    return packed_read(tool, st, *s.cell, spill_make(s), spill_get(s),
                       /*spilled=*/nullptr, /*var=*/s.id);
  }
  template <typename Tool>
  bool write_slot(Tool& tool, ThreadState& st, const Slot& s) {
    return packed_write(tool, st, *s.cell, spill_make(s), spill_get(s),
                        /*spilled=*/nullptr, /*var=*/s.id);
  }

  /// The spilled VarState of `s`, escalating the cell first if needed.
  VarState& escalated(const Slot& s) {
    return escalate_cell(*s.cell, spill_make(s), spill_get(s));
  }

  /// Sampling-gated accesses (vft/sampling.h): with sampled=false only the
  /// cell fast path runs - no spill, no detector, no VarState. *spilled
  /// reports an escalation performed by this access, the gate's reheat
  /// signal.
  template <typename Tool>
  bool read_gated(Tool& tool, ThreadState& st, const void* addr, bool sampled,
                  bool* spilled = nullptr) {
    const Slot s = slot_of(addr);
    return sampled_packed_read(tool, st, *s.cell, spill_make(s), spill_get(s),
                               sampled, spilled, /*var=*/s.id);
  }
  template <typename Tool>
  bool write_gated(Tool& tool, ThreadState& st, const void* addr, bool sampled,
                   bool* spilled = nullptr) {
    const Slot s = slot_of(addr);
    return sampled_packed_write(tool, st, *s.cell, spill_make(s), spill_get(s),
                                sampled, spilled, /*var=*/s.id);
  }

  /// The raw cell words of the page covering `base` (allocated on first
  /// touch). The header-inlined ABI fast path (src/abi/vft_abi_inline.h)
  /// caches this pointer in its per-thread descriptor and the SIMD range
  /// kernels scan it directly; page stability makes the pointer valid for
  /// the life of the space. The fast path only *reads* cells (a same-epoch
  /// hit mutates nothing), hence const.
  const std::uint64_t* page_cells(std::uintptr_t base) {
    static_assert(sizeof(PackedCell) == sizeof(std::uint64_t));
    static_assert(alignof(PackedCell) == alignof(std::uint64_t));
    return reinterpret_cast<const std::uint64_t*>(dir_.page(base).cells);
  }

  /// Range accesses (the memcpy/memset/str* interposition shape): resolve
  /// whole runs of same-epoch cells per SIMD iteration instead of one
  /// packed fast path per word. The vc_simd prefix kernel counts leading
  /// cells this thread's epoch already covers; those bump their rule
  /// counters in bulk and are done (a same-epoch hit mutates nothing).
  /// The first non-matching word takes the ordinary gated scalar path -
  /// advance/spill/detector exactly as a single access would - and the
  /// scan resumes after it. Counter totals are bit-identical to the
  /// per-word loop. Returns false iff any word reported a race; *spilled
  /// reports any escalation (the sampling gate's reheat signal).
  template <typename Tool>
  bool range_read(Tool& tool, ThreadState& st, const void* addr,
                  std::size_t size, bool sampled, bool* spilled = nullptr) {
    return range_access<false>(tool, st, addr, size, sampled, spilled);
  }
  template <typename Tool>
  bool range_write(Tool& tool, ThreadState& st, const void* addr,
                   std::size_t size, bool sampled, bool* spilled = nullptr) {
    return range_access<true>(tool, st, addr, size, sampled, spilled);
  }

  /// Reset every shadow word overlapping [addr, addr+size) to bottom
  /// state, the packed-flavor counterpart of ShadowSpace::reset_range
  /// (same caller obligations: no concurrent access to the range). An
  /// epoch-mode cell goes back to {bottom, bottom}; an escalated word
  /// stays escalated and its spilled VarState is re-bottomed in place,
  /// keeping the report id - re-entering epoch mode would need to
  /// un-publish the VarState other threads may have cached.
  void reset_range(const void* addr, std::size_t size) {
    if (size == 0) return;
    const auto lo = reinterpret_cast<std::uintptr_t>(addr);
    const std::uintptr_t hi = lo + size;
    for (std::uintptr_t base = Geometry::base_of(lo); base < hi;
         base += Geometry::kPageSpan) {
      Page* p = dir_.find_page(base);
      if (p == nullptr) continue;
      const std::uintptr_t first = base < lo ? lo : base;
      const std::uintptr_t last =
          base + Geometry::kPageSpan < hi ? base + Geometry::kPageSpan : hi;
      std::size_t i = Geometry::slot_index(first);
      const std::size_t end =
          ((last - 1 - base) >> Geometry::kGranularityLog2) + 1;
      for (; i < end; ++i) {
        if (VarState* vs = p->spills[i].load(std::memory_order_relaxed)) {
          const std::uint64_t id = vs->id;
          std::destroy_at(vs);
          std::construct_at(vs);
          vs->id = id;
        } else {
          // Racing an in-flight escalation loses benignly: the loser's
          // snapshot was the pre-free history the caller promised is quiet.
          std::uint64_t cur = p->cells[i].bits();
          while (!PackedCell::is_sentinel(cur) &&
                 !p->cells[i].cas_bits(cur, 0)) {
          }
        }
      }
      words_reset_.fetch_add(end - Geometry::slot_index(first),
                             std::memory_order_relaxed);
    }
  }

  std::size_t pages() const { return dir_.pages(); }
  std::size_t size() const { return pages() * Geometry::kSlotsPerPage; }
  std::size_t spilled() const {
    return spilled_.load(std::memory_order_relaxed);
  }
  std::size_t words_reset() const {
    return words_reset_.load(std::memory_order_relaxed);
  }

  ShadowSpaceStats stats() const {
    ShadowSpaceStats s;
    s.pages = pages();
    s.slots = s.pages * Geometry::kSlotsPerPage;
    s.bytes = Geometry::kBuckets * sizeof(std::atomic<Page*>) +
              s.pages * sizeof(Page) + spilled() * sizeof(VarState);
    s.collisions = dir_.collisions();
    s.cache_misses = dir_.cache_misses();
    s.spilled = spilled();
    s.words_reset = words_reset();
    return s;
  }

 private:
  struct Page {
    explicit Page(std::uintptr_t b) : base(b) {}

    ~Page() {
      for (std::size_t i = 0; i < Geometry::kSlotsPerPage; ++i) {
        delete spills[i].load(std::memory_order_relaxed);
      }
    }

    const std::uintptr_t base;
    std::atomic<Page*> next{nullptr};
    /// The page covering base + kPageSpan, filled in by the first range
    /// access that walks past this page. Pages live until the space dies,
    /// so the pointer never dangles; it turns the per-page directory
    /// lookup of a multi-page range into a single pointer chase.
    std::atomic<Page*> adjacent{nullptr};
    PackedCell cells[Geometry::kSlotsPerPage];
    std::atomic<VarState*> spills[Geometry::kSlotsPerPage]{};
  };

  template <bool IsWrite, typename Tool>
  bool range_access(Tool& tool, ThreadState& st, const void* addr,
                    std::size_t size, bool sampled, bool* spilled) {
    if (size == 0) return true;
    const std::uint32_t e = st.epoch().bits();
    const std::uintptr_t lo =
        reinterpret_cast<std::uintptr_t>(addr) &
        ~static_cast<std::uintptr_t>(Geometry::kGranularity - 1);
    const std::uintptr_t hi = reinterpret_cast<std::uintptr_t>(addr) + size;
    bool ok = true;
    Page* prev = nullptr;
    // SIMD-resolved cells accumulate locally and credit their rule
    // counters once per call - totals are identical to per-page bumps,
    // without an atomic RMW pair on every page segment.
    [[maybe_unused]] std::uint64_t hit_cells = 0;
    [[maybe_unused]] std::uint64_t sampled_out_cells = 0;
    for (std::uintptr_t base = Geometry::base_of(lo); base < hi;
         base += Geometry::kPageSpan) {
      // Consecutive pages ride the adjacency link instead of re-walking
      // the directory: one acquire load per page after the first.
      Page* pp = prev != nullptr
                     ? prev->adjacent.load(std::memory_order_acquire)
                     : nullptr;
      if (pp == nullptr || pp->base != base) {
        pp = &dir_.page(base);
        if (prev != nullptr) {
          prev->adjacent.store(pp, std::memory_order_release);
        }
      }
      prev = pp;
      Page& p = *pp;
      const std::uintptr_t first = base < lo ? lo : base;
      const std::uintptr_t last =
          base + Geometry::kPageSpan < hi ? base + Geometry::kPageSpan : hi;
      std::size_t i = Geometry::slot_index(first);
      const std::size_t end =
          ((last - 1 - base) >> Geometry::kGranularityLog2) + 1;
      const auto* bits = reinterpret_cast<const std::uint64_t*>(p.cells);
      while (i < end) {
#ifndef VFT_SCHED
        // Sched builds skip the prefix: the per-word loop below funnels
        // through load_bits()/cas_bits(), which carry the sched points.
        const std::size_t m =
            IsWrite ? simd::cells_match_write_prefix(bits + i, end - i, e)
                    : simd::cells_match_read_prefix(bits + i, end - i, e);
        if (m > 0) {
          if (sampled) {
            hit_cells += m;
          } else {
            // Sampled-out same-epoch hits: the scalar gated path would
            // leave the cell untouched and bump only kSampledOut too.
            sampled_out_cells += m;
          }
          i += m;
          if (i == end) break;
        }
#endif
        const void* wa = reinterpret_cast<const void*>(
            base + (i << Geometry::kGranularityLog2));
        bool word_spilled = false;
        ok &= IsWrite ? write_gated(tool, st, wa, sampled, &word_spilled)
                      : read_gated(tool, st, wa, sampled, &word_spilled);
        if (word_spilled && spilled != nullptr) *spilled = true;
        ++i;
      }
    }
#ifndef VFT_SCHED
    if (hit_cells > 0) {
      bump_rule(tool, IsWrite ? Rule::kWriteSameEpoch : Rule::kReadSameEpoch,
                hit_cells);
      bump_rule(tool, IsWrite ? Rule::kFastWriteHit : Rule::kFastReadHit,
                hit_cells);
    }
    if (sampled_out_cells > 0) {
      bump_rule(tool, Rule::kSampledOut, sampled_out_cells);
    }
#endif
    return ok;
  }

  /// make/get closures for escalate_cell: publication order is carried by
  /// the cell's release-store of ESCALATED, so the spill pointer itself
  /// needs only relaxed ordering.
  auto spill_make(const Slot& s) {
    return [this, &s]() -> VarState& {
      auto* vs = new VarState();
      vs->id = s.id;
      s.spill->store(vs, std::memory_order_relaxed);
      spilled_.fetch_add(1, std::memory_order_relaxed);
      return *vs;
    };
  }
  auto spill_get(const Slot& s) {
    return [&s]() -> VarState& { return *s.spill->load(std::memory_order_relaxed); };
  }

  PageDirectory<Page> dir_;
  std::atomic<std::size_t> spilled_{0};
  std::atomic<std::size_t> words_reset_{0};
};

/// Anything mapping addresses to stable VarStates can back the raw-pointer
/// entry points: ShadowSpace (primary), ShadowTable (fallback), and
/// PackedShadowSpace (via its force-escalating of(); the dedicated
/// overloads below keep its fast path instead).
template <typename S, typename D>
concept ShadowBackendFor = requires(S& s, const void* p) {
  { s.of(p) } -> std::same_as<typename D::VarState&>;
};

// --- Raw-pointer instrumentation entry points -------------------------------
//
// The API a compiler pass or binary-instrumentation front end would call
// (TSan's __tsan_readN/__tsan_writeN shape), generic over the backend so
// tools can switch between ShadowSpace, ShadowTable, and the packed cells
// with a flag.

template <Detector D, typename S>
  requires ShadowBackendFor<S, D>
bool instrumented_read(Runtime<D>& rt, S& shadow, const void* addr) {
  return rt.tool().read(rt.self(), shadow.of(addr));
}

template <Detector D, typename S>
  requires ShadowBackendFor<S, D>
bool instrumented_write(Runtime<D>& rt, S& shadow, const void* addr) {
  return rt.tool().write(rt.self(), shadow.of(addr));
}

/// Packed-cell overloads: more specialized than the generic backend
/// template, so they win overload resolution and keep the fast path.
template <Detector D>
bool instrumented_read(Runtime<D>& rt, PackedShadowSpace<D>& shadow,
                       const void* addr) {
  return shadow.read(rt.tool(), rt.self(), addr);
}

template <Detector D>
bool instrumented_write(Runtime<D>& rt, PackedShadowSpace<D>& shadow,
                        const void* addr) {
  return shadow.write(rt.tool(), rt.self(), addr);
}

/// Hint-prefetch the shadow word `slots_ahead` slots past `vs`. Inside a
/// shadow page consecutive target words shadow to consecutive VarStates,
/// so a range sweep's next few shadow words sit right after the current
/// one; pulling them toward L1 while the detector handler runs hides the
/// VarState-sized stride. Prefetch never faults, so running past a page
/// end (or, for the ShadowTable backend, into unrelated heap) is merely a
/// wasted hint.
template <typename V>
inline void prefetch_shadow_ahead(const V& vs, std::size_t slots_ahead = 4) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(
      reinterpret_cast<const char*>(&vs) + slots_ahead * sizeof(V), 1, 3);
#else
  (void)vs;
  (void)slots_ahead;
#endif
}

/// Access-size/range variant: one read event per shadow word overlapped by
/// [addr, addr+size) - the __tsan_read8/memcpy-annotation shape. Returns
/// false iff any word reported a race.
template <Detector D, typename S>
  requires ShadowBackendFor<S, D>
bool instrumented_range_read(Runtime<D>& rt, S& shadow, const void* addr,
                             std::size_t size) {
  if (size == 0) return true;
  ThreadState& self = rt.self();
  auto& tool = rt.tool();
  std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr) &
                     ~static_cast<std::uintptr_t>(ShadowGeometry::kGranularity - 1);
  const std::uintptr_t end = reinterpret_cast<std::uintptr_t>(addr) + size;
  bool ok = true;
  for (; a < end; a += ShadowGeometry::kGranularity) {
    auto& vs = shadow.of(reinterpret_cast<const void*>(a));
    prefetch_shadow_ahead(vs);
    ok &= tool.read(self, vs);
  }
  return ok;
}

template <Detector D, typename S>
  requires ShadowBackendFor<S, D>
bool instrumented_range_write(Runtime<D>& rt, S& shadow, const void* addr,
                              std::size_t size) {
  if (size == 0) return true;
  ThreadState& self = rt.self();
  auto& tool = rt.tool();
  std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr) &
                     ~static_cast<std::uintptr_t>(ShadowGeometry::kGranularity - 1);
  const std::uintptr_t end = reinterpret_cast<std::uintptr_t>(addr) + size;
  bool ok = true;
  for (; a < end; a += ShadowGeometry::kGranularity) {
    auto& vs = shadow.of(reinterpret_cast<const void*>(a));
    prefetch_shadow_ahead(vs);
    ok &= tool.write(self, vs);
  }
  return ok;
}

/// Packed range variants: the fast path per word; cells are 8 bytes apart,
/// so the hardware prefetcher covers the stride and no hint is needed.
template <Detector D>
bool instrumented_range_read(Runtime<D>& rt, PackedShadowSpace<D>& shadow,
                             const void* addr, std::size_t size) {
  if (size == 0) return true;
  ThreadState& self = rt.self();
  auto& tool = rt.tool();
  std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr) &
                     ~static_cast<std::uintptr_t>(ShadowGeometry::kGranularity - 1);
  const std::uintptr_t end = reinterpret_cast<std::uintptr_t>(addr) + size;
  bool ok = true;
  for (; a < end; a += ShadowGeometry::kGranularity) {
    ok &= shadow.read(tool, self, reinterpret_cast<const void*>(a));
  }
  return ok;
}

template <Detector D>
bool instrumented_range_write(Runtime<D>& rt, PackedShadowSpace<D>& shadow,
                              const void* addr, std::size_t size) {
  if (size == 0) return true;
  ThreadState& self = rt.self();
  auto& tool = rt.tool();
  std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr) &
                     ~static_cast<std::uintptr_t>(ShadowGeometry::kGranularity - 1);
  const std::uintptr_t end = reinterpret_cast<std::uintptr_t>(addr) + size;
  bool ok = true;
  for (; a < end; a += ShadowGeometry::kGranularity) {
    ok &= shadow.write(tool, self, reinterpret_cast<const void*>(a));
  }
  return ok;
}

}  // namespace vft::rt
