// Two-level shadow memory: the production-shaped mapping from target
// addresses to VarState objects, replacing the mutex-sharded hash table
// as the primary raw-pointer backend.
//
// Layout (the Valgrind-DRD primary/secondary map, adapted to 64-bit
// address spaces the way ThreadSanitizer-style tools do):
//
//   address ──┬─ bits [kPageSpanLog2, 64)  ──> bucket in a fixed top-level
//             │                                array of atomic page
//             │                                pointers (hash-mixed so the
//             │                                sparse 48-bit user space
//             │                                spreads evenly)
//             └─ bits [kGranularityLog2,
//                      kPageSpanLog2)      ──> slot inside the page
//
// Each "shadow page" covers kPageSpan bytes of target memory at
// word (8-byte) granularity: one VarState per word. Pages are allocated
// on first touch and published with a CAS into the bucket's chain - no
// lock anywhere on the lookup path. Distinct page bases that land in the
// same bucket chain off each other (the chain is almost always length 1).
//
// Two properties the Section 4 runtime assumptions need:
//
//   Stability  pages are never freed or moved during a session, so a
//              VarState& stays valid forever (the one-to-one persistent
//              variable->VarState mapping). The flip side: if the target
//              frees memory and the allocator reuses the address, the new
//              object inherits the old shadow word (real tools hook free()
//              to clear shadow; see docs/ALGORITHM.md §8).
//   Agreement  every alias of an address maps to the same VarState, so
//              wrapper-based (rt::Array carving) and raw-pointer
//              instrumentation of the same memory see the same history.
//
// Granularity: accesses within the same 8-byte word share a VarState
// (word-granular shadow, as in TSan's default). The fallback ShadowTable
// keys exact addresses instead; use word-aligned data when comparing
// backends.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "vft/detector.h"

namespace vft::rt {

template <Detector D>
class Runtime;

/// Geometry shared by every ShadowSpace instantiation (non-template so the
/// formatting helpers can live in shadow_space.cpp).
struct ShadowGeometry {
  /// log2 bytes per shadow slot: 8-byte words, one VarState each.
  static constexpr std::size_t kGranularityLog2 = 3;
  static constexpr std::size_t kGranularity = 1u << kGranularityLog2;
  /// log2 slots per page: 512 slots -> a page spans 4 KiB of target memory.
  static constexpr std::size_t kSlotsPerPageLog2 = 9;
  static constexpr std::size_t kSlotsPerPage = 1u << kSlotsPerPageLog2;
  static constexpr std::size_t kPageSpanLog2 = kGranularityLog2 + kSlotsPerPageLog2;
  static constexpr std::size_t kPageSpan = 1u << kPageSpanLog2;
  /// log2 top-level buckets: 64K atomic pointers = 512 KiB per space.
  static constexpr std::size_t kTopBitsLog2 = 16;
  static constexpr std::size_t kBuckets = 1u << kTopBitsLog2;

  /// Top-level index for a page base: multiply-shift mix of the page
  /// number, so the handful of live 48-bit address-space regions (stack,
  /// heap, globals) spread over the buckets instead of clustering.
  static std::size_t bucket_of(std::uintptr_t page_base) {
    std::uintptr_t x = page_base >> kPageSpanLog2;
    x ^= x >> 29;
    x *= 0x9E3779B97F4A7C15ull;
    x ^= x >> 32;
    return static_cast<std::size_t>(x) & (kBuckets - 1);
  }

  /// One-line description of the layout constants (for docs/tools).
  static std::string describe();
};

/// Allocation counters of one ShadowSpace (snapshot; relaxed reads).
struct ShadowSpaceStats {
  std::size_t pages = 0;       ///< shadow pages allocated
  std::size_t slots = 0;       ///< VarState slots those pages hold
  std::size_t bytes = 0;       ///< footprint: top-level array + pages
  std::size_t collisions = 0;  ///< bucket chains longer than one + CAS races
};

/// "pages=N slots=N mem=N.NMiB collisions=N" (shadow_space.cpp).
std::string str(const ShadowSpaceStats& s);

template <Detector D>
class ShadowSpace {
 public:
  using Geometry = ShadowGeometry;

  ShadowSpace()
      : buckets_(std::make_unique<std::atomic<Page*>[]>(Geometry::kBuckets)) {}

  ~ShadowSpace() {
    for (std::size_t b = 0; b < Geometry::kBuckets; ++b) {
      Page* p = buckets_[b].load(std::memory_order_relaxed);
      while (p != nullptr) {
        Page* next = p->next.load(std::memory_order_relaxed);
        delete p;
        p = next;
      }
    }
  }

  ShadowSpace(const ShadowSpace&) = delete;
  ShadowSpace& operator=(const ShadowSpace&) = delete;

  /// The VarState shadowing the word containing `addr` (page allocated on
  /// first touch). Lock-free; the returned reference is stable forever.
  typename D::VarState& of(const void* addr) {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    const std::uintptr_t base =
        a & ~static_cast<std::uintptr_t>(Geometry::kPageSpan - 1);
    std::atomic<Page*>& head = buckets_[Geometry::bucket_of(base)];
    for (Page* p = head.load(std::memory_order_acquire); p != nullptr;
         p = p->next.load(std::memory_order_acquire)) {
      if (p->base == base) return p->slot(a);
    }
    return publish_page(head, base, a);
  }

  /// Pages allocated so far (racy snapshot).
  std::size_t pages() const { return pages_.load(std::memory_order_relaxed); }

  /// VarState slots materialized so far (pages * slots-per-page).
  std::size_t size() const { return pages() * Geometry::kSlotsPerPage; }

  ShadowSpaceStats stats() const {
    ShadowSpaceStats s;
    s.pages = pages();
    s.slots = s.pages * Geometry::kSlotsPerPage;
    s.bytes = Geometry::kBuckets * sizeof(std::atomic<Page*>) +
              s.pages * sizeof(Page);
    s.collisions = collisions_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Page {
    explicit Page(std::uintptr_t b) : base(b) {
      for (std::size_t i = 0; i < Geometry::kSlotsPerPage; ++i) {
        slots[i].id = base + (i << Geometry::kGranularityLog2);
      }
    }

    typename D::VarState& slot(std::uintptr_t addr) {
      return slots[(addr >> Geometry::kGranularityLog2) &
                   (Geometry::kSlotsPerPage - 1)];
    }

    const std::uintptr_t base;
    std::atomic<Page*> next{nullptr};
    typename D::VarState slots[Geometry::kSlotsPerPage];
  };

  /// Miss path: allocate the page for `base` and CAS it onto the bucket
  /// chain; on a lost race the winner's page is used and ours is dropped.
  typename D::VarState& publish_page(std::atomic<Page*>& head,
                                     std::uintptr_t base, std::uintptr_t a) {
    auto fresh = std::make_unique<Page>(base);
    Page* expected = head.load(std::memory_order_acquire);
    for (;;) {
      // Re-scan: a concurrent publisher may have added `base` meanwhile.
      for (Page* p = expected; p != nullptr;
           p = p->next.load(std::memory_order_acquire)) {
        if (p->base == base) {
          collisions_.fetch_add(1, std::memory_order_relaxed);
          return p->slot(a);
        }
      }
      fresh->next.store(expected, std::memory_order_relaxed);
      if (head.compare_exchange_weak(expected, fresh.get(),
                                     std::memory_order_release,
                                     std::memory_order_acquire)) {
        if (expected != nullptr) {
          collisions_.fetch_add(1, std::memory_order_relaxed);
        }
        pages_.fetch_add(1, std::memory_order_relaxed);
        return fresh.release()->slot(a);
      }
    }
  }

  std::unique_ptr<std::atomic<Page*>[]> buckets_;
  std::atomic<std::size_t> pages_{0};
  std::atomic<std::size_t> collisions_{0};
};

/// Anything mapping addresses to stable VarStates can back the raw-pointer
/// entry points: ShadowSpace (primary) and ShadowTable (fallback).
template <typename S, typename D>
concept ShadowBackendFor = requires(S& s, const void* p) {
  { s.of(p) } -> std::same_as<typename D::VarState&>;
};

// --- Raw-pointer instrumentation entry points -------------------------------
//
// The API a compiler pass or binary-instrumentation front end would call
// (TSan's __tsan_readN/__tsan_writeN shape), generic over the backend so
// tools can switch between ShadowSpace and ShadowTable with a flag.

template <Detector D, typename S>
  requires ShadowBackendFor<S, D>
bool instrumented_read(Runtime<D>& rt, S& shadow, const void* addr) {
  return rt.tool().read(rt.self(), shadow.of(addr));
}

template <Detector D, typename S>
  requires ShadowBackendFor<S, D>
bool instrumented_write(Runtime<D>& rt, S& shadow, const void* addr) {
  return rt.tool().write(rt.self(), shadow.of(addr));
}

/// Access-size/range variant: one read event per shadow word overlapped by
/// [addr, addr+size) - the __tsan_read8/memcpy-annotation shape. Returns
/// false iff any word reported a race.
template <Detector D, typename S>
  requires ShadowBackendFor<S, D>
bool instrumented_range_read(Runtime<D>& rt, S& shadow, const void* addr,
                             std::size_t size) {
  if (size == 0) return true;
  ThreadState& self = rt.self();
  auto& tool = rt.tool();
  std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr) &
                     ~static_cast<std::uintptr_t>(ShadowGeometry::kGranularity - 1);
  const std::uintptr_t end = reinterpret_cast<std::uintptr_t>(addr) + size;
  bool ok = true;
  for (; a < end; a += ShadowGeometry::kGranularity) {
    ok &= tool.read(self, shadow.of(reinterpret_cast<const void*>(a)));
  }
  return ok;
}

template <Detector D, typename S>
  requires ShadowBackendFor<S, D>
bool instrumented_range_write(Runtime<D>& rt, S& shadow, const void* addr,
                              std::size_t size) {
  if (size == 0) return true;
  ThreadState& self = rt.self();
  auto& tool = rt.tool();
  std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr) &
                     ~static_cast<std::uintptr_t>(ShadowGeometry::kGranularity - 1);
  const std::uintptr_t end = reinterpret_cast<std::uintptr_t>(addr) + size;
  bool ok = true;
  for (; a < end; a += ShadowGeometry::kGranularity) {
    ok &= tool.write(self, shadow.of(reinterpret_cast<const void*>(a)));
  }
  return ok;
}

}  // namespace vft::rt
