// Two-level shadow memory: the production-shaped mapping from target
// addresses to VarState objects, replacing the mutex-sharded hash table
// as the primary raw-pointer backend.
//
// Layout (the Valgrind-DRD primary/secondary map, adapted to 64-bit
// address spaces the way ThreadSanitizer-style tools do):
//
//   address ──┬─ bits [kPageSpanLog2, 64)  ──> bucket in a fixed top-level
//             │                                array of atomic page
//             │                                pointers (hash-mixed so the
//             │                                sparse 48-bit user space
//             │                                spreads evenly)
//             └─ bits [kGranularityLog2,
//                      kPageSpanLog2)      ──> slot inside the page
//
// Each "shadow page" covers kPageSpan bytes of target memory at
// word (8-byte) granularity: one VarState per word. Pages are allocated
// on first touch and published with a CAS into the bucket's chain - no
// lock anywhere on the lookup path. Distinct page bases that land in the
// same bucket chain off each other (the chain is almost always length 1).
//
// Two properties the Section 4 runtime assumptions need:
//
//   Stability  pages are never freed or moved during a session, so a
//              VarState& stays valid forever (the one-to-one persistent
//              variable->VarState mapping). The flip side: if the target
//              frees memory and the allocator reuses the address, the new
//              object inherits the old shadow word (real tools hook free()
//              to clear shadow; see docs/ALGORITHM.md §8).
//   Agreement  every alias of an address maps to the same VarState, so
//              wrapper-based (rt::Array carving) and raw-pointer
//              instrumentation of the same memory see the same history.
//
// Granularity: accesses within the same 8-byte word share a VarState
// (word-granular shadow, as in TSan's default). The fallback ShadowTable
// keys exact addresses instead; use word-aligned data when comparing
// backends.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "vft/detector.h"

namespace vft::rt {

template <Detector D>
class Runtime;

/// Geometry shared by every ShadowSpace instantiation (non-template so the
/// formatting helpers can live in shadow_space.cpp).
struct ShadowGeometry {
  /// log2 bytes per shadow slot: 8-byte words, one VarState each.
  static constexpr std::size_t kGranularityLog2 = 3;
  static constexpr std::size_t kGranularity = 1u << kGranularityLog2;
  /// log2 slots per page: 512 slots -> a page spans 4 KiB of target memory.
  static constexpr std::size_t kSlotsPerPageLog2 = 9;
  static constexpr std::size_t kSlotsPerPage = 1u << kSlotsPerPageLog2;
  static constexpr std::size_t kPageSpanLog2 = kGranularityLog2 + kSlotsPerPageLog2;
  static constexpr std::size_t kPageSpan = 1u << kPageSpanLog2;
  /// log2 top-level buckets: 64K atomic pointers = 512 KiB per space.
  static constexpr std::size_t kTopBitsLog2 = 16;
  static constexpr std::size_t kBuckets = 1u << kTopBitsLog2;

  /// Top-level index for a page base: multiply-shift mix of the page
  /// number, so the handful of live 48-bit address-space regions (stack,
  /// heap, globals) spread over the buckets instead of clustering.
  static std::size_t bucket_of(std::uintptr_t page_base) {
    std::uintptr_t x = page_base >> kPageSpanLog2;
    x ^= x >> 29;
    x *= 0x9E3779B97F4A7C15ull;
    x ^= x >> 32;
    return static_cast<std::size_t>(x) & (kBuckets - 1);
  }

  /// One-line description of the layout constants (for docs/tools).
  static std::string describe();

  /// Monotonically increasing id handed to each ShadowSpace instance.
  /// The thread-local lookup cache tags entries with it, so a cache entry
  /// can never resurrect a page of a destroyed (or different) space even
  /// if a later space reuses the same object address.
  static std::uint64_t next_space_id();
};

/// Allocation counters of one ShadowSpace (snapshot; relaxed reads).
struct ShadowSpaceStats {
  std::size_t pages = 0;       ///< shadow pages allocated
  std::size_t slots = 0;       ///< VarState slots those pages hold
  std::size_t bytes = 0;       ///< footprint: top-level array + pages
  std::size_t collisions = 0;  ///< bucket chains longer than one + CAS races
  std::size_t cache_misses = 0;  ///< of() calls that fell past the TL cache
};

/// "pages=N slots=N mem=N.NMiB collisions=N" (shadow_space.cpp).
std::string str(const ShadowSpaceStats& s);

template <Detector D>
class ShadowSpace {
 public:
  using Geometry = ShadowGeometry;

  ShadowSpace()
      : buckets_(std::make_unique<std::atomic<Page*>[]>(Geometry::kBuckets)) {}

  ~ShadowSpace() {
    for (std::size_t b = 0; b < Geometry::kBuckets; ++b) {
      Page* p = buckets_[b].load(std::memory_order_relaxed);
      while (p != nullptr) {
        Page* next = p->next.load(std::memory_order_relaxed);
        delete p;
        p = next;
      }
    }
  }

  ShadowSpace(const ShadowSpace&) = delete;
  ShadowSpace& operator=(const ShadowSpace&) = delete;

  /// The VarState shadowing the word containing `addr` (page allocated on
  /// first touch). Lock-free; the returned reference is stable forever.
  ///
  /// Fast path: a TSan-style thread-local last-page cache. Consecutive
  /// accesses to the same 4 KiB shadow page (the overwhelmingly common
  /// case for sweeps and per-thread working sets) skip the bucket hash,
  /// the atomic chain walk, and their acquire fences: two compares and a
  /// shift. Entries are tagged with the space's unique id, so a cache
  /// line can never outlive its space or leak across spaces (ids are
  /// never reused); the cached Page* was acquire-loaded by this same
  /// thread when it was inserted, so its contents are already visible.
  typename D::VarState& of(const void* addr) {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    const std::uintptr_t base =
        a & ~static_cast<std::uintptr_t>(Geometry::kPageSpan - 1);
    const Cache& c = tl_cache_;
    // Single fused tag check: both the space id and the page base must
    // match; OR-ing the XORs turns that into one compare-and-branch.
    if (((c.space ^ id_) | (c.base ^ base)) == 0) {
      return c.page->slot(a);
    }
    return of_miss(a, base);
  }

  /// The pre-cache lookup path (hash + chain walk), kept callable so
  /// bench_hotpath can measure exactly what the cache buys.
  typename D::VarState& of_uncached(const void* addr) {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    const std::uintptr_t base =
        a & ~static_cast<std::uintptr_t>(Geometry::kPageSpan - 1);
    std::atomic<Page*>& head = buckets_[Geometry::bucket_of(base)];
    for (Page* p = head.load(std::memory_order_acquire); p != nullptr;
         p = p->next.load(std::memory_order_acquire)) {
      if (p->base == base) return p->slot(a);
    }
    return publish_page(head, base).slot(a);
  }

  /// Pages allocated so far (racy snapshot).
  std::size_t pages() const { return pages_.load(std::memory_order_relaxed); }

  /// VarState slots materialized so far (pages * slots-per-page).
  std::size_t size() const { return pages() * Geometry::kSlotsPerPage; }

  ShadowSpaceStats stats() const {
    ShadowSpaceStats s;
    s.pages = pages();
    s.slots = s.pages * Geometry::kSlotsPerPage;
    s.bytes = Geometry::kBuckets * sizeof(std::atomic<Page*>) +
              s.pages * sizeof(Page);
    s.collisions = collisions_.load(std::memory_order_relaxed);
    s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Page;

  /// One-entry per-thread lookup cache (per ShadowSpace instantiation).
  struct Cache {
    std::uint64_t space = 0;  ///< owning space's id_; 0 never matches
    std::uintptr_t base = 0;
    Page* page = nullptr;
  };
  inline static thread_local Cache tl_cache_{};

  typename D::VarState& of_miss(std::uintptr_t a, std::uintptr_t base) {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    std::atomic<Page*>& head = buckets_[Geometry::bucket_of(base)];
    Page* p = head.load(std::memory_order_acquire);
    while (p != nullptr && p->base != base) {
      p = p->next.load(std::memory_order_acquire);
    }
    if (p == nullptr) p = &publish_page(head, base);
    tl_cache_ = Cache{id_, base, p};
    return p->slot(a);
  }
  struct Page {
    explicit Page(std::uintptr_t b) : base(b) {
      for (std::size_t i = 0; i < Geometry::kSlotsPerPage; ++i) {
        slots[i].id = base + (i << Geometry::kGranularityLog2);
      }
    }

    typename D::VarState& slot(std::uintptr_t addr) {
      return slots[(addr >> Geometry::kGranularityLog2) &
                   (Geometry::kSlotsPerPage - 1)];
    }

    const std::uintptr_t base;
    std::atomic<Page*> next{nullptr};
    typename D::VarState slots[Geometry::kSlotsPerPage];
  };

  /// Miss path: allocate the page for `base` and CAS it onto the bucket
  /// chain; on a lost race the winner's page is used and ours is dropped.
  Page& publish_page(std::atomic<Page*>& head, std::uintptr_t base) {
    auto fresh = std::make_unique<Page>(base);
    Page* expected = head.load(std::memory_order_acquire);
    for (;;) {
      // Re-scan: a concurrent publisher may have added `base` meanwhile.
      for (Page* p = expected; p != nullptr;
           p = p->next.load(std::memory_order_acquire)) {
        if (p->base == base) {
          collisions_.fetch_add(1, std::memory_order_relaxed);
          return *p;
        }
      }
      fresh->next.store(expected, std::memory_order_relaxed);
      if (head.compare_exchange_weak(expected, fresh.get(),
                                     std::memory_order_release,
                                     std::memory_order_acquire)) {
        if (expected != nullptr) {
          collisions_.fetch_add(1, std::memory_order_relaxed);
        }
        pages_.fetch_add(1, std::memory_order_relaxed);
        return *fresh.release();
      }
    }
  }

  const std::uint64_t id_ = Geometry::next_space_id();
  std::unique_ptr<std::atomic<Page*>[]> buckets_;
  std::atomic<std::size_t> pages_{0};
  std::atomic<std::size_t> collisions_{0};
  std::atomic<std::size_t> cache_misses_{0};
};

/// Anything mapping addresses to stable VarStates can back the raw-pointer
/// entry points: ShadowSpace (primary) and ShadowTable (fallback).
template <typename S, typename D>
concept ShadowBackendFor = requires(S& s, const void* p) {
  { s.of(p) } -> std::same_as<typename D::VarState&>;
};

// --- Raw-pointer instrumentation entry points -------------------------------
//
// The API a compiler pass or binary-instrumentation front end would call
// (TSan's __tsan_readN/__tsan_writeN shape), generic over the backend so
// tools can switch between ShadowSpace and ShadowTable with a flag.

template <Detector D, typename S>
  requires ShadowBackendFor<S, D>
bool instrumented_read(Runtime<D>& rt, S& shadow, const void* addr) {
  return rt.tool().read(rt.self(), shadow.of(addr));
}

template <Detector D, typename S>
  requires ShadowBackendFor<S, D>
bool instrumented_write(Runtime<D>& rt, S& shadow, const void* addr) {
  return rt.tool().write(rt.self(), shadow.of(addr));
}

/// Hint-prefetch the shadow word `slots_ahead` slots past `vs`. Inside a
/// shadow page consecutive target words shadow to consecutive VarStates,
/// so a range sweep's next few shadow words sit right after the current
/// one; pulling them toward L1 while the detector handler runs hides the
/// VarState-sized stride. Prefetch never faults, so running past a page
/// end (or, for the ShadowTable backend, into unrelated heap) is merely a
/// wasted hint.
template <typename V>
inline void prefetch_shadow_ahead(const V& vs, std::size_t slots_ahead = 4) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(
      reinterpret_cast<const char*>(&vs) + slots_ahead * sizeof(V), 1, 3);
#else
  (void)vs;
  (void)slots_ahead;
#endif
}

/// Access-size/range variant: one read event per shadow word overlapped by
/// [addr, addr+size) - the __tsan_read8/memcpy-annotation shape. Returns
/// false iff any word reported a race.
template <Detector D, typename S>
  requires ShadowBackendFor<S, D>
bool instrumented_range_read(Runtime<D>& rt, S& shadow, const void* addr,
                             std::size_t size) {
  if (size == 0) return true;
  ThreadState& self = rt.self();
  auto& tool = rt.tool();
  std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr) &
                     ~static_cast<std::uintptr_t>(ShadowGeometry::kGranularity - 1);
  const std::uintptr_t end = reinterpret_cast<std::uintptr_t>(addr) + size;
  bool ok = true;
  for (; a < end; a += ShadowGeometry::kGranularity) {
    auto& vs = shadow.of(reinterpret_cast<const void*>(a));
    prefetch_shadow_ahead(vs);
    ok &= tool.read(self, vs);
  }
  return ok;
}

template <Detector D, typename S>
  requires ShadowBackendFor<S, D>
bool instrumented_range_write(Runtime<D>& rt, S& shadow, const void* addr,
                              std::size_t size) {
  if (size == 0) return true;
  ThreadState& self = rt.self();
  auto& tool = rt.tool();
  std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr) &
                     ~static_cast<std::uintptr_t>(ShadowGeometry::kGranularity - 1);
  const std::uintptr_t end = reinterpret_cast<std::uintptr_t>(addr) + size;
  bool ok = true;
  for (; a < end; a += ShadowGeometry::kGranularity) {
    auto& vs = shadow.of(reinterpret_cast<const void*>(a));
    prefetch_shadow_ahead(vs);
    ok &= tool.write(self, vs);
  }
  return ok;
}

}  // namespace vft::rt
