// Coarse-granularity array shadow: the "single shadow location for whole
// arrays/objects" overhead reduction surveyed in Section 9 (and refined by
// the array-shadow-compression line of work the paper cites as
// complementary). One VarState covers G consecutive elements, dividing
// shadow memory and check count by up to G.
//
// Precision tradeoff, stated upfront (Section 9: "although this may
// generate false alarms"): two threads touching *different* elements of
// the same granule without synchronization are reported as racing, because
// the analysis cannot tell the elements apart. Race-free use therefore
// requires thread partitions aligned to granule boundaries (or
// synchronization across granule boundaries). tests/coarse_array_test.cpp
// demonstrates both the speedup pattern and the false-alarm mode;
// bench_compression measures the overhead curve across granularities.
#pragma once

#include "runtime/tool.h"

#include <atomic>
#include <memory>

namespace vft::rt {

template <typename T, Detector D>
class CoarseArray {
 public:
  /// n elements shadowed at granularity `granule` (elements per VarState).
  /// With `packed = true` (spill-capable detectors only), each granule's
  /// VarState is fronted by a packed cell: granule-exclusive phases run
  /// the same-epoch fast path inline and the eager VarState becomes the
  /// spill target on escalation. Opt-in, so the E11 granularity curves
  /// keep measuring the detectors themselves by default.
  CoarseArray(Runtime<D>& rt, std::size_t n, std::size_t granule,
              T initial = T{}, bool packed = false)
      : rt_(&rt),
        n_(n),
        granule_(granule == 0 ? 1 : granule),
        data_(std::make_unique<std::atomic<T>[]>(n)),
        shadow_(std::make_unique<typename D::VarState[]>(
            (n + granule_ - 1) / granule_)) {
    for (std::size_t i = 0; i < n; ++i) {
      data_[i].store(initial, std::memory_order_relaxed);
    }
    for (std::size_t g = 0; g < (n + granule_ - 1) / granule_; ++g) {
      shadow_[g].id = reinterpret_cast<std::uint64_t>(&shadow_[g]);
    }
    if constexpr (SpillableVarState<typename D::VarState>) {
      if (packed) {
        cells_ = std::make_unique<PackedCell[]>((n + granule_ - 1) / granule_);
      }
    }
  }

  std::size_t size() const { return n_; }
  std::size_t granule() const { return granule_; }

  T load(std::size_t i) {
    VFT_ASSERT(i < n_);
    check_granule(i / granule_, /*is_write=*/false);
    return data_[i].load(std::memory_order_relaxed);
  }

  void store(std::size_t i, T v) {
    VFT_ASSERT(i < n_);
    check_granule(i / granule_, /*is_write=*/true);
    data_[i].store(v, std::memory_order_relaxed);
  }

  /// Range operations: one check per *granule touched*, not per element -
  /// the dynamic analogue of BigFoot-style check coalescing (one displaced
  /// check proven to cover a whole region). The caller asserts that the
  /// range is accessed as a unit between synchronization operations.
  template <typename Fn>
  void read_range(std::size_t lo, std::size_t hi, Fn&& consume) {
    VFT_ASSERT(lo <= hi && hi <= n_);
    check_range(lo, hi, /*is_write=*/false);
    for (std::size_t i = lo; i < hi; ++i) {
      consume(i, data_[i].load(std::memory_order_relaxed));
    }
  }

  template <typename Fn>
  void write_range(std::size_t lo, std::size_t hi, Fn&& produce) {
    VFT_ASSERT(lo <= hi && hi <= n_);
    check_range(lo, hi, /*is_write=*/true);
    for (std::size_t i = lo; i < hi; ++i) {
      data_[i].store(produce(i), std::memory_order_relaxed);
    }
  }

  T raw(std::size_t i) const { return data_[i].load(std::memory_order_relaxed); }

 private:
  void check_granule(std::size_t g, bool is_write) {
    if constexpr (SpillableVarState<typename D::VarState>) {
      if (cells_ != nullptr) {
        auto target = [this, g]() -> typename D::VarState& {
          return shadow_[g];
        };
        if (is_write) {
          packed_write(rt_->tool(), rt_->self(), cells_[g], target, target);
        } else {
          packed_read(rt_->tool(), rt_->self(), cells_[g], target, target);
        }
        return;
      }
    }
    if (is_write) {
      rt_->tool().write(rt_->self(), shadow_[g]);
    } else {
      rt_->tool().read(rt_->self(), shadow_[g]);
    }
  }

  void check_range(std::size_t lo, std::size_t hi, bool is_write) {
    if (lo == hi) return;
    const std::size_t g_lo = lo / granule_;
    const std::size_t g_hi = (hi - 1) / granule_;
    for (std::size_t g = g_lo; g <= g_hi; ++g) {
      check_granule(g, is_write);
    }
  }

  Runtime<D>* rt_;
  std::size_t n_;
  std::size_t granule_;
  std::unique_ptr<std::atomic<T>[]> data_;
  std::unique_ptr<typename D::VarState[]> shadow_;
  std::unique_ptr<PackedCell[]> cells_;  // non-null iff packed mode
};

}  // namespace vft::rt
