// Native-lock registry: the address-keyed map from target lock objects
// (pthread_mutex_t*, or any stable address acting as a lock identity) to
// their LockState shadow.
//
// The rt::Mutex wrapper owns its LockState inline; an unmodified binary's
// mutexes are just addresses the interposer observes, so the session keeps
// this side table instead - the lock analogue of ShadowSpace's
// address->VarState mapping, with the same two properties the Section 4
// runtime discipline needs:
//
//   Stability  a LockState reference stays valid for the whole session
//              (entries are never erased behind a handler's back), so the
//              acquire/release handlers can run against it while holding
//              only the target lock itself.
//   Agreement  every alias of the lock address maps to the same LockState.
//
// Reuse safety mirrors ShadowSpace: if the target frees a mutex and the
// allocator recycles the address for a new one, the new lock would inherit
// the old release clock (sound - it only adds happens-before edges - but
// stale). free()/munmap() interposition calls reset_range(), which drops
// entries covered by the freed block so a recycled address starts from a
// bottom clock.
//
// Locking: a sharded hash map guarded by per-shard mutexes. Lock
// operations already serialize on the target lock and (for pthreads) a
// futex syscall, so a short shard critical section on the lookup is noise;
// the LockState itself is then accessed under the target lock per the
// discipline, not under the shard mutex.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "vft/shadow_state.h"

namespace vft::rt {

class LockRegistry {
 public:
  LockRegistry() = default;
  LockRegistry(const LockRegistry&) = delete;
  LockRegistry& operator=(const LockRegistry&) = delete;

  /// The LockState identified by `addr`, created bottom on first use.
  /// The reference is stable until a reset_range covering `addr`.
  LockState& of(const void* addr) {
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    Shard& s = shard_of(a);
    std::scoped_lock lk(s.mu);
    auto& slot = s.map[a];
    if (slot == nullptr) slot = std::make_unique<LockState>();
    return *slot;
  }

  /// Drop every lock whose address lies in [addr, addr+size): the target
  /// freed that memory, so a later lock at a recycled address must start
  /// from a bottom clock, not the dead lock's release time. The caller
  /// must guarantee no handler is concurrently using a dropped LockState -
  /// true for any target that does not free a mutex another thread still
  /// holds (which is undefined behaviour in pthreads anyway).
  void reset_range(const void* addr, std::size_t size) {
    const auto lo = reinterpret_cast<std::uintptr_t>(addr);
    const std::uintptr_t hi = lo + size;
    for (Shard& s : shards_) {
      std::scoped_lock lk(s.mu);
      for (auto it = s.map.begin(); it != s.map.end();) {
        if (it->first >= lo && it->first < hi) {
          it = s.map.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  /// Number of distinct locks seen so far.
  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::scoped_lock lk(s.mu);
      n += s.map.size();
    }
    return n;
  }

 private:
  static constexpr std::size_t kShards = 64;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uintptr_t, std::unique_ptr<LockState>> map;
  };

  Shard& shard_of(std::uintptr_t a) {
    // Mutexes are at least word-aligned; drop the low bits before mixing
    // so neighbouring locks still spread over shards.
    std::uintptr_t x = a >> 4;
    x ^= x >> 17;
    x *= 0x9E3779B97F4A7C15ull;
    return shards_[(x >> 32) & (kShards - 1)];
  }

  Shard shards_[kShards];
};

}  // namespace vft::rt
