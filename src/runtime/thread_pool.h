// Instrumented fixed-size thread pool: the execution substrate of the
// server-style DaCapo programs (tomcat/h2 use pools, not thread-per-task).
// Happens-before is inherited from the instrumented queue lock and
// condition variable: a task observes everything its submitter did before
// submit(), and wait_idle()/the destructor observe everything every
// completed task did - the same guarantees Java executors give via their
// internal synchronization, expressed with this runtime's own primitives
// so the detector sees every edge.
#pragma once

#include <deque>
#include <functional>

#include "runtime/instrument.h"

namespace vft::rt {

template <Detector D>
class ThreadPool {
 public:
  ThreadPool(Runtime<D>& rt, std::uint32_t workers)
      : rt_(&rt), mu_(rt), cv_(rt), idle_cv_(rt), accepting_(rt, 1),
        pending_(rt, 0), active_(rt, 0) {
    for (std::uint32_t w = 0; w < workers; ++w) {
      workers_.push_back(std::make_unique<Thread<D>>(rt, [this] { run(); }));
    }
  }

  ~ThreadPool() { shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. The submitting thread's clock is published via the
  /// queue lock, so the executing worker is ordered after the submitter.
  void submit(std::function<void()> task) {
    mu_.lock();
    VFT_CHECK(accepting_.load() == 1);
    queue_.push_back(std::move(task));
    pending_.store(pending_.load() + 1);
    mu_.unlock();
    cv_.notify_one();
  }

  /// Blocks until every submitted task has finished. The caller is ordered
  /// after all of them (it re-acquires the queue lock last released by the
  /// final worker).
  void wait_idle() {
    mu_.lock();
    idle_cv_.wait(mu_, [&] {
      return pending_.load() == 0 && active_.load() == 0;
    });
    mu_.unlock();
  }

  /// Stops accepting work, drains the queue, joins the workers. Idempotent.
  void shutdown() {
    if (workers_.empty()) return;
    mu_.lock();
    accepting_.store(0);
    mu_.unlock();
    cv_.notify_all();
    for (auto& w : workers_) w->join();
    workers_.clear();
  }

 private:
  void run() {
    for (;;) {
      std::function<void()> task;
      {
        mu_.lock();
        cv_.wait(mu_, [&] {
          return pending_.load() > 0 || accepting_.load() == 0;
        });
        if (pending_.load() == 0) {  // shutting down, queue drained
          mu_.unlock();
          return;
        }
        task = std::move(queue_.front());
        queue_.pop_front();
        pending_.store(pending_.load() - 1);
        active_.store(active_.load() + 1);
        mu_.unlock();
      }
      task();
      {
        mu_.lock();
        active_.store(active_.load() - 1);
        mu_.unlock();
        idle_cv_.notify_all();
        cv_.notify_one();
      }
    }
  }

  Runtime<D>* rt_;
  Mutex<D> mu_;
  CondVar<D> cv_;       // workers wait for tasks
  CondVar<D> idle_cv_;  // wait_idle() waits for drain
  Var<int, D> accepting_;
  Var<int, D> pending_;
  Var<int, D> active_;
  std::deque<std::function<void()>> queue_;  // guarded by mu_
  std::vector<std::unique_ptr<Thread<D>>> workers_;
};

}  // namespace vft::rt
