// Ambient instrumentation: a process-wide analysis session plus free
// functions keyed by raw addresses - the call interface a compiler
// instrumentation pass (TSan-style __tsan_read/__tsan_write) would emit,
// for code that cannot be rewritten against the rt:: wrappers.
//
// The VFT_AMBIENT_READ/WRITE macros annotate accesses to *existing* data
// structures; the ambient::Thread/Lock wrappers supply the fork/join and
// acquire/release events. One session per process (reset() for tests).
//
// The ambient detector is VerifiedFT-v2 and the ambient shadow backend is
// the lock-free two-level ShadowSpace - the configuration a production
// deployment would pick. Shadow is word-granular: accesses within the
// same 8-byte word map to one VarState (see shadow_space.h).
#pragma once

#include <functional>

#include "runtime/instrument.h"
#include "vft/vft_v2.h"

namespace vft::rt::ambient {

/// The process-wide analysis session.
class Session {
 public:
  static Session& instance() {
    static Session session;
    return session;
  }

  RaceCollector& races() { return races_; }
  Runtime<VftV2>& runtime() { return *runtime_; }
  ShadowSpace<VftV2>& shadow() { return runtime_->shadow_space(); }

  /// Drops all analysis state (shadow, reports, thread registry). Only
  /// safe while no ambient threads are live; intended for tests.
  void reset() {
    runtime_ = std::make_unique<Runtime<VftV2>>(VftV2(&races_));
    races_.clear();
  }

 private:
  Session() : runtime_(std::make_unique<Runtime<VftV2>>(VftV2(&races_))) {}

  RaceCollector races_;
  std::unique_ptr<Runtime<VftV2>> runtime_;
};

}  // namespace vft::rt::ambient

namespace vft::rt::ambient {

// Reference-forwarding accessors that survive reset().
inline ShadowSpace<VftV2>& shadow() { return Session::instance().shadow(); }
inline Runtime<VftV2>& runtime() { return Session::instance().runtime(); }
inline RaceCollector& races() { return Session::instance().races(); }

/// Registers the calling thread as the target's main thread.
class MainScope {
 public:
  MainScope() : scope_(runtime().registry().create()) {}

 private:
  Registry::ThreadScope scope_;
};

/// The event a compiler pass emits before a load of *addr.
inline void on_read(const void* addr) {
  instrumented_read(runtime(), shadow(), addr);
}

/// The event a compiler pass emits before a store to *addr.
inline void on_write(const void* addr) {
  instrumented_write(runtime(), shadow(), addr);
}

/// The events a pass emits before a sized access (memcpy-style or a
/// whole-struct read/write): one event per overlapped shadow word.
inline void on_range_read(const void* addr, std::size_t size) {
  instrumented_range_read(runtime(), shadow(), addr, size);
}

inline void on_range_write(const void* addr, std::size_t size) {
  instrumented_range_write(runtime(), shadow(), addr, size);
}

/// Instrumented thread over the ambient session.
class Thread {
 public:
  template <typename Fn>
  explicit Thread(Fn fn) : inner_(runtime(), std::move(fn)) {}

  void join() { inner_.join(); }

 private:
  rt::Thread<VftV2> inner_;
};

/// Instrumented lock over the ambient session.
class Lock {
 public:
  Lock() : inner_(runtime()) {}
  void lock() { inner_.lock(); }
  void unlock() { inner_.unlock(); }

 private:
  rt::Mutex<VftV2> inner_;
};

}  // namespace vft::rt::ambient

/// Annotation macros: evaluate to the address expression's value so they
/// can wrap existing reads/writes with minimal diff noise:
///   int v = VFT_AMBIENT_READ(&obj.field), *VFT_AMBIENT_READ(&p->x);
///   *VFT_AMBIENT_WRITE(&obj.field) = v;
#define VFT_AMBIENT_READ(addr) \
  (::vft::rt::ambient::on_read((addr)), (addr))
#define VFT_AMBIENT_WRITE(addr) \
  (::vft::rt::ambient::on_write((addr)), (addr))
