// Ambient instrumentation: free functions keyed by raw addresses - the
// call interface a compiler instrumentation pass (TSan-style
// __tsan_read/__tsan_write) would emit, for code that cannot be rewritten
// against the rt:: wrappers.
//
// The VFT_AMBIENT_READ/WRITE macros annotate accesses to *existing* data
// structures; the ambient::Thread/Lock wrappers supply the fork/join and
// acquire/release events. One Session per process (see session.h; reset()
// for tests); every event routes through its detector-erased backend, the
// same entry point the C ABI (src/abi/vft_abi.h) uses, so annotated code
// and interposed binaries share one analysis state.
//
// The default ambient detector is VerifiedFT-v2 over the lock-free
// two-level ShadowSpace - the configuration a production deployment would
// pick; VFT_DETECTOR selects another at launch. The typed wrappers below
// (Thread, Lock, MainScope) are v2-only and fatal under a different
// detector. Shadow is word-granular: accesses within the same 8-byte word
// map to one VarState (see shadow_space.h).
#pragma once

#include "runtime/instrument.h"
#include "runtime/session.h"
#include "vft/vft_v2.h"

namespace vft::rt::ambient {

// Reference-forwarding accessors that survive reset(). runtime()/shadow()
// are the typed v2 views; backend() is the detector-erased session every
// event below routes through.
inline SessionBackend& backend() { return Session::instance().backend(); }
inline ShadowSpace<VftV2>& shadow() { return Session::instance().shadow(); }
inline Runtime<VftV2>& runtime() { return Session::instance().runtime(); }
inline RaceCollector& races() { return Session::instance().races(); }

/// Registers the calling thread as the target's main thread.
class MainScope {
 public:
  MainScope() : scope_(runtime().registry().create()) {}

 private:
  Registry::ThreadScope scope_;
};

/// The event a compiler pass emits before a load of *addr.
inline void on_read(const void* addr) { backend().read(addr, 1); }

/// The event a compiler pass emits before a store to *addr.
inline void on_write(const void* addr) { backend().write(addr, 1); }

/// The events a pass emits before a sized access (memcpy-style or a
/// whole-struct read/write): one event per overlapped shadow word.
inline void on_range_read(const void* addr, std::size_t size) {
  backend().range_read(addr, size);
}

inline void on_range_write(const void* addr, std::size_t size) {
  backend().range_write(addr, size);
}

/// Instrumented thread over the ambient session.
class Thread {
 public:
  template <typename Fn>
  explicit Thread(Fn fn) : inner_(runtime(), std::move(fn)) {}

  void join() { inner_.join(); }

 private:
  rt::Thread<VftV2> inner_;
};

/// Instrumented lock over the ambient session.
class Lock {
 public:
  Lock() : inner_(runtime()) {}
  void lock() { inner_.lock(); }
  void unlock() { inner_.unlock(); }

 private:
  rt::Mutex<VftV2> inner_;
};

}  // namespace vft::rt::ambient

/// Annotation macros: evaluate to the address expression's value so they
/// can wrap existing reads/writes with minimal diff noise:
///   int v = VFT_AMBIENT_READ(&obj.field), *VFT_AMBIENT_READ(&p->x);
///   *VFT_AMBIENT_WRITE(&obj.field) = v;
#define VFT_AMBIENT_READ(addr) \
  (::vft::rt::ambient::on_read((addr)), (addr))
#define VFT_AMBIENT_WRITE(addr) \
  (::vft::rt::ambient::on_write((addr)), (addr))
