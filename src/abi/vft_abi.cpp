// C ABI implementation: a thin, reentrancy-guarded shim from the extern
// "C" surface onto the process-global ambient::Session backend.
//
// The guard matters because the analysis runs *inside* the target
// process: a free() performed by the runtime's own allocations while a
// free-hint is being processed, or a mutex the session takes while a
// lock event is in flight, would otherwise recurse through the interposer
// back into this layer. Nested events on the same thread are dropped -
// they describe the analysis, not the target.
#include "abi/vft_abi.h"

#include <cstdio>
#include <cstring>
#include <string>

#include "abi/vft_abi_inline.h"
#include "runtime/session.h"
#include "runtime/shadow_space.h"
#include "vft/report.h"
#include "vft/report_io.h"
#include "vft/sampling.h"

// The inline header's pointer math must agree with the shadow geometry it
// caches pointers into.
static_assert(VFT_FASTPATH_GRANULARITY_LOG2 ==
              vft::rt::ShadowGeometry::kGranularityLog2);
static_assert(VFT_FASTPATH_PAGE_SPAN == vft::rt::ShadowGeometry::kPageSpan);
static_assert(VFT_FASTPATH_SLOT_MASK ==
              vft::rt::ShadowGeometry::kSlotsPerPage - 1);

namespace {

using vft::rt::ambient::EntryTable;
using vft::rt::ambient::Session;
using vft::rt::ambient::SessionBackend;

thread_local bool tl_in_abi = false;

/// RAII reentrancy guard; `entered()` is false for a nested call.
class AbiScope {
 public:
  AbiScope() : entered_(!tl_in_abi) { tl_in_abi = true; }
  ~AbiScope() {
    if (entered_) tl_in_abi = false;
  }
  AbiScope(const AbiScope&) = delete;
  AbiScope& operator=(const AbiScope&) = delete;

  bool entered() const { return entered_; }

 private:
  bool entered_;
};

SessionBackend& backend() { return Session::instance().backend(); }

/// The shared slow-path body; callers hold the AbiScope. Protocol:
///  1. Re-sync the calling thread's fast-path descriptor against the
///     global generation (a Session::reset() since the last arm makes
///     every cached pointer in it untrustworthy).
///  2. Drop-policy gate: one draw per event, through admit_and_refill so
///     the freshly drawn skip-gap lands in the descriptor and subsequent
///     sampled-out accesses resolve entirely inline. Only the descriptor's
///     generation+countdown half is armed here - the cell half stays
///     disarmed under sampling so inline hits can't bypass the gate.
///  3. Dispatch through the devirtualized entry table when its generation
///     snapshot is current; fall back to the virtual backend otherwise
///     (first event, mid-reset, or a table published under an older gen).
///  4. Consume the event context exactly once, on the way out - the
///     single clear the whole access path performs (inline hits neither
///     read nor clear it).
void slow_access(const void* addr, size_t size, bool is_write,
                 bool is_range) {
  vft_fastpath_s& fp = vft_tl_fastpath;
  const uint64_t gen =
      __atomic_load_n(&vft_g_fastpath_gen, __ATOMIC_ACQUIRE);
  if (fp.gen != 0 && fp.gen != gen) fp = vft_fastpath_s{};
  // Credit the inline path's pending hit tallies before dispatching: every
  // slow-path entry is a quiescent point at which the rule counters must
  // equal what the out-of-line path would have produced.
  if (fp.gen == gen) vft_fastpath_flush_hits(&fp);
  if (vft::sampling::Gate::drop_policy_active()) {
    if (vft::sampling::Gate* g = vft::sampling::Gate::active()) {
      fp.gen = gen;
      if (!g->admit_and_refill(addr, &fp)) {
        vft_tl_event_ctx.pc = nullptr;
        return;
      }
    }
  }
  const EntryTable* t = Session::instance().entry_table();
  if (t != nullptr && t->generation == gen) {
    (is_range ? (is_write ? t->range_write : t->range_read)
              : (is_write ? t->write : t->read))(t->self, addr, size);
  } else {
    SessionBackend& b = backend();
    if (is_range) {
      if (is_write) {
        b.range_write(addr, size);
      } else {
        b.range_read(addr, size);
      }
    } else {
      if (is_write) {
        b.write(addr, size);
      } else {
        b.read(addr, size);
      }
    }
  }
  vft_tl_event_ctx.pc = nullptr;
}

/// Clamp an untrusted morder from the target to the ABI range; anything
/// out of range degrades to seq_cst (the conservative reading).
int clamp_mo(int mo) { return mo >= 0 && mo <= 5 ? mo : 5; }

/// Atomic sync dispatch: devirtualized entry table when its generation
/// snapshot is current, virtual backend otherwise (same protocol as
/// slow_access; atomics never route through the inline descriptor, so
/// there is no descriptor re-sync to do here).
void atomic_event(const void* addr, int mo,
                  EntryTable::AtomicFn EntryTable::* slot,
                  void (SessionBackend::*virt)(const void*, int)) {
  mo = clamp_mo(mo);
  const uint64_t gen = __atomic_load_n(&vft_g_fastpath_gen, __ATOMIC_ACQUIRE);
  const EntryTable* t = Session::instance().entry_table();
  if (t != nullptr && t->generation == gen) {
    (t->*slot)(t->self, addr, mo);
  } else {
    (backend().*virt)(addr, mo);
  }
}

int write_report(const char* path, int json, int clean) {
  // Snapshot first, open the file second: on the crash path the document
  // is built before any stdio state is trusted with it.
  const vft::reportio::ReportDoc doc =
      Session::instance().report_doc(clean != 0);
  const std::string text = json != 0 ? vft::reportio::render_json(doc)
                                     : vft::reportio::render_plain(doc);
  std::FILE* out = stderr;
  bool owned = false;
  if (path != nullptr && std::strcmp(path, "-") != 0) {
    out = std::fopen(path, "w");
    if (out == nullptr) return -1;
    owned = true;
  }
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), out) == text.size();
  if (owned) {
    if (std::fclose(out) != 0) return -1;
  } else {
    std::fflush(out);
  }
  return ok ? 0 : -1;
}

}  // namespace

extern "C" {

int vft_attach(void) {
  AbiScope guard;
  if (!guard.entered()) return 0;
  return backend().attach() ? 1 : 0;
}

void vft_detach(void) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().detach();
}

uint64_t vft_thread_create(void) {
  AbiScope guard;
  if (!guard.entered()) return 0;
  return backend().thread_create();
}

void vft_thread_begin(uint64_t token) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().thread_begin(token);
}

void vft_thread_join(uint64_t token) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().thread_join(token);
}

void vft_thread_detach(uint64_t token) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().thread_detach(token);
}

/// Access entry points: the header-inlined try first (same-epoch hit or
/// drop-policy sampled-out skip resolves with no call at all - no
/// AbiScope, no dispatch, no event-context store), then the guarded
/// slow path. The try-functions touch nothing but the thread's own
/// descriptor and the cell word, so running them outside the reentrancy
/// guard is safe; analysis-internal code never calls these sized entry
/// points anyway.
///
/// The drop-policy sampling gate lives in slow_access, before the session
/// dispatch: a sampled-out access under `VFT_SAMPLING=policy=drop` costs
/// one inline TLS countdown decrement once the descriptor is armed. The
/// gate is null until the first event creates the session, so the first
/// access always falls through and initializes everything.
#define VFT_ABI_READ(name, size)                         \
  void name(const void* addr) {                          \
    if (vft_fastpath_try_read(addr, (size))) return;     \
    AbiScope guard;                                      \
    if (!guard.entered()) return;                        \
    slow_access(addr, (size), /*is_write=*/false, false); \
  }
#define VFT_ABI_WRITE(name, size)                        \
  void name(const void* addr) {                          \
    if (vft_fastpath_try_write(addr, (size))) return;    \
    AbiScope guard;                                      \
    if (!guard.entered()) return;                        \
    slow_access(addr, (size), /*is_write=*/true, false); \
  }

VFT_ABI_READ(vft_read1, 1)
VFT_ABI_READ(vft_read2, 2)
VFT_ABI_READ(vft_read4, 4)
VFT_ABI_READ(vft_read8, 8)
VFT_ABI_WRITE(vft_write1, 1)
VFT_ABI_WRITE(vft_write2, 2)
VFT_ABI_WRITE(vft_write4, 4)
VFT_ABI_WRITE(vft_write8, 8)

#undef VFT_ABI_READ
#undef VFT_ABI_WRITE

int vft_abi_in_runtime(void) { return tl_in_abi ? 1 : 0; }

void vft_abi_slow_read(const void* addr, size_t size) {
  AbiScope guard;
  if (!guard.entered()) return;
  slow_access(addr, size, /*is_write=*/false, /*is_range=*/false);
}

void vft_abi_slow_write(const void* addr, size_t size) {
  AbiScope guard;
  if (!guard.entered()) return;
  slow_access(addr, size, /*is_write=*/true, /*is_range=*/false);
}

void vft_range_read(const void* addr, size_t size) {
  AbiScope guard;
  if (!guard.entered() || size == 0) return;
  // One gate draw covers the whole range: a range is one program event.
  // A drop-countdown skip the inline path prepaid also covers it (ranges
  // and straddles arriving mid-gap consume one unit in admit_and_refill).
  slow_access(addr, size, /*is_write=*/false, /*is_range=*/true);
}

void vft_range_write(const void* addr, size_t size) {
  AbiScope guard;
  if (!guard.entered() || size == 0) return;
  slow_access(addr, size, /*is_write=*/true, /*is_range=*/true);
}

void vft_atomic_load(const void* addr, int mo) {
  AbiScope guard;
  if (!guard.entered()) return;
  atomic_event(addr, mo, &EntryTable::atomic_load,
               &SessionBackend::atomic_load);
}

void vft_atomic_store(const void* addr, int mo) {
  AbiScope guard;
  if (!guard.entered()) return;
  atomic_event(addr, mo, &EntryTable::atomic_store,
               &SessionBackend::atomic_store);
}

void vft_atomic_rmw_pre(const void* addr, int mo) {
  AbiScope guard;
  if (!guard.entered()) return;
  atomic_event(addr, mo, &EntryTable::atomic_rmw_pre,
               &SessionBackend::atomic_rmw_pre);
}

void vft_atomic_rmw_post(const void* addr, int mo) {
  AbiScope guard;
  if (!guard.entered()) return;
  atomic_event(addr, mo, &EntryTable::atomic_rmw_post,
               &SessionBackend::atomic_rmw_post);
}

void vft_atomic_fence(int mo) {
  AbiScope guard;
  if (!guard.entered()) return;
  mo = clamp_mo(mo);
  const uint64_t gen = __atomic_load_n(&vft_g_fastpath_gen, __ATOMIC_ACQUIRE);
  const EntryTable* t = Session::instance().entry_table();
  if (t != nullptr && t->generation == gen) {
    t->atomic_fence(t->self, mo);
  } else {
    backend().atomic_fence(mo);
  }
}

void vft_mutex_lock(const void* m) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().mutex_lock(m);
}

void vft_mutex_unlock(const void* m) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().mutex_unlock(m);
}

void vft_free_hint(const void* addr, size_t size) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().free_hint(addr, size);
}

size_t vft_race_count(void) {
  AbiScope guard;
  if (!guard.entered()) return 0;
  return Session::instance().races().count();
}

size_t vft_suppressed_count(void) {
  AbiScope guard;
  if (!guard.entered()) return 0;
  return Session::instance().races().suppressed();
}

int vft_suppressions_load(const char* path) {
  AbiScope guard;
  if (!guard.entered() || path == nullptr) return -1;
  std::string err;
  if (!Session::instance().races().load_suppressions(path, &err)) {
    std::fprintf(stderr, "vft: %s\n", err.c_str());
    return -1;
  }
  return 0;
}

int vft_report_write(const char* path, int json) {
  AbiScope guard;
  if (!guard.entered()) return -1;
  return write_report(path, json, /*clean=*/1);
}

int vft_report_write_ex(const char* path, int json, int clean) {
  AbiScope guard;
  if (!guard.entered()) return -1;
  return write_report(path, json, clean);
}

const char* vft_detector_name(void) {
  AbiScope guard;
  return backend().detector_name();
}

const char* vft_sampling_describe(void) {
  AbiScope guard;
  backend();  // force session creation so the gate reflects the env
  static std::string text;
  vft::sampling::Gate* g = vft::sampling::Gate::active();
  text = g != nullptr ? vft::sampling::describe(g->config()) : "off";
  return text.c_str();
}

int vft_sampling_stats(vft_sampling_stats_s* out) {
  AbiScope guard;
  if (out == nullptr) return 0;
  std::memset(out, 0, sizeof(*out));
  vft::sampling::Gate* g = vft::sampling::Gate::active();
  if (g == nullptr) return 0;
  const vft::sampling::Stats s = g->snapshot();
  out->sampled = s.sampled;
  out->skipped = s.skipped;
  out->cooled_out = s.cooled_out;
  out->reheats = s.reheats;
  out->overhead_ns = s.overhead_ns;
  out->busy_ns = s.busy_ns;
  out->adjustments = s.adjustments;
  out->rate = s.rate;
  out->overhead_pct = s.overhead_pct;
  return 1;
}

}  // extern "C"
