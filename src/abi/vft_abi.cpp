// C ABI implementation: a thin, reentrancy-guarded shim from the extern
// "C" surface onto the process-global ambient::Session backend.
//
// The guard matters because the analysis runs *inside* the target
// process: a free() performed by the runtime's own allocations while a
// free-hint is being processed, or a mutex the session takes while a
// lock event is in flight, would otherwise recurse through the interposer
// back into this layer. Nested events on the same thread are dropped -
// they describe the analysis, not the target.
#include "abi/vft_abi.h"

#include <cstdio>
#include <cstring>
#include <string>

#include "runtime/session.h"
#include "vft/report.h"
#include "vft/report_io.h"
#include "vft/sampling.h"

namespace {

using vft::rt::ambient::Session;
using vft::rt::ambient::SessionBackend;

thread_local bool tl_in_abi = false;

/// RAII reentrancy guard; `entered()` is false for a nested call.
class AbiScope {
 public:
  AbiScope() : entered_(!tl_in_abi) { tl_in_abi = true; }
  ~AbiScope() {
    if (entered_) tl_in_abi = false;
  }
  AbiScope(const AbiScope&) = delete;
  AbiScope& operator=(const AbiScope&) = delete;

  bool entered() const { return entered_; }

 private:
  bool entered_;
};

SessionBackend& backend() { return Session::instance().backend(); }

int write_report(const char* path, int json, int clean) {
  // Snapshot first, open the file second: on the crash path the document
  // is built before any stdio state is trusted with it.
  const vft::reportio::ReportDoc doc =
      Session::instance().report_doc(clean != 0);
  const std::string text = json != 0 ? vft::reportio::render_json(doc)
                                     : vft::reportio::render_plain(doc);
  std::FILE* out = stderr;
  bool owned = false;
  if (path != nullptr && std::strcmp(path, "-") != 0) {
    out = std::fopen(path, "w");
    if (out == nullptr) return -1;
    owned = true;
  }
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), out) == text.size();
  if (owned) {
    if (std::fclose(out) != 0) return -1;
  } else {
    std::fflush(out);
  }
  return ok ? 0 : -1;
}

}  // namespace

extern "C" {

int vft_attach(void) {
  AbiScope guard;
  if (!guard.entered()) return 0;
  return backend().attach() ? 1 : 0;
}

void vft_detach(void) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().detach();
}

uint64_t vft_thread_create(void) {
  AbiScope guard;
  if (!guard.entered()) return 0;
  return backend().thread_create();
}

void vft_thread_begin(uint64_t token) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().thread_begin(token);
}

void vft_thread_join(uint64_t token) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().thread_join(token);
}

void vft_thread_detach(uint64_t token) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().thread_detach(token);
}

/// Access events consume the interposition boundary: the armed event
/// context describes exactly this access, so it is cleared on the way
/// out - a later race on a *different* path (ambient wrappers mixed into
/// an interposed process) must not inherit this access's stack.
///
/// The drop-policy sampling gate sits here, before even the session
/// dispatch: a sampled-out access under `VFT_SAMPLING=policy=drop` costs
/// one TLS countdown and returns - no virtual hop, no shadow lookup, no
/// cell. The event context is still consumed (the skipped access owned
/// it). The gate is null until the first event creates the session, so
/// the first access always falls through and initializes everything.
#define VFT_ABI_ACCESS(name, method, size)          \
  void name(const void* addr) {                     \
    AbiScope guard;                                 \
    if (!guard.entered()) return;                   \
    if (vft::sampling::drop_gate_skips(addr)) {     \
      vft_tl_event_ctx.pc = nullptr;                \
      return;                                       \
    }                                               \
    backend().method(addr, (size));                 \
    vft_tl_event_ctx.pc = nullptr;                  \
  }

VFT_ABI_ACCESS(vft_read1, read, 1)
VFT_ABI_ACCESS(vft_read2, read, 2)
VFT_ABI_ACCESS(vft_read4, read, 4)
VFT_ABI_ACCESS(vft_read8, read, 8)
VFT_ABI_ACCESS(vft_write1, write, 1)
VFT_ABI_ACCESS(vft_write2, write, 2)
VFT_ABI_ACCESS(vft_write4, write, 4)
VFT_ABI_ACCESS(vft_write8, write, 8)

#undef VFT_ABI_ACCESS

void vft_range_read(const void* addr, size_t size) {
  AbiScope guard;
  if (!guard.entered() || size == 0) return;
  // One gate draw covers the whole range: a range is one program event.
  if (vft::sampling::drop_gate_skips(addr)) {
    vft_tl_event_ctx.pc = nullptr;
    return;
  }
  backend().range_read(addr, size);
  vft_tl_event_ctx.pc = nullptr;
}

void vft_range_write(const void* addr, size_t size) {
  AbiScope guard;
  if (!guard.entered() || size == 0) return;
  if (vft::sampling::drop_gate_skips(addr)) {
    vft_tl_event_ctx.pc = nullptr;
    return;
  }
  backend().range_write(addr, size);
  vft_tl_event_ctx.pc = nullptr;
}

void vft_mutex_lock(const void* m) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().mutex_lock(m);
}

void vft_mutex_unlock(const void* m) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().mutex_unlock(m);
}

void vft_free_hint(const void* addr, size_t size) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().free_hint(addr, size);
}

size_t vft_race_count(void) {
  AbiScope guard;
  if (!guard.entered()) return 0;
  return Session::instance().races().count();
}

size_t vft_suppressed_count(void) {
  AbiScope guard;
  if (!guard.entered()) return 0;
  return Session::instance().races().suppressed();
}

int vft_suppressions_load(const char* path) {
  AbiScope guard;
  if (!guard.entered() || path == nullptr) return -1;
  std::string err;
  if (!Session::instance().races().load_suppressions(path, &err)) {
    std::fprintf(stderr, "vft: %s\n", err.c_str());
    return -1;
  }
  return 0;
}

int vft_report_write(const char* path, int json) {
  AbiScope guard;
  if (!guard.entered()) return -1;
  return write_report(path, json, /*clean=*/1);
}

int vft_report_write_ex(const char* path, int json, int clean) {
  AbiScope guard;
  if (!guard.entered()) return -1;
  return write_report(path, json, clean);
}

const char* vft_detector_name(void) {
  AbiScope guard;
  return backend().detector_name();
}

const char* vft_sampling_describe(void) {
  AbiScope guard;
  backend();  // force session creation so the gate reflects the env
  static std::string text;
  vft::sampling::Gate* g = vft::sampling::Gate::active();
  text = g != nullptr ? vft::sampling::describe(g->config()) : "off";
  return text.c_str();
}

int vft_sampling_stats(vft_sampling_stats_s* out) {
  AbiScope guard;
  if (out == nullptr) return 0;
  std::memset(out, 0, sizeof(*out));
  vft::sampling::Gate* g = vft::sampling::Gate::active();
  if (g == nullptr) return 0;
  const vft::sampling::Stats s = g->snapshot();
  out->sampled = s.sampled;
  out->skipped = s.skipped;
  out->cooled_out = s.cooled_out;
  out->reheats = s.reheats;
  out->overhead_ns = s.overhead_ns;
  out->busy_ns = s.busy_ns;
  out->adjustments = s.adjustments;
  out->rate = s.rate;
  out->overhead_pct = s.overhead_pct;
  return 1;
}

}  // extern "C"
