// C ABI implementation: a thin, reentrancy-guarded shim from the extern
// "C" surface onto the process-global ambient::Session backend.
//
// The guard matters because the analysis runs *inside* the target
// process: a free() performed by the runtime's own allocations while a
// free-hint is being processed, or a mutex the session takes while a
// lock event is in flight, would otherwise recurse through the interposer
// back into this layer. Nested events on the same thread are dropped -
// they describe the analysis, not the target.
#include "abi/vft_abi.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "runtime/session.h"
#include "vft/report.h"

namespace {

using vft::rt::ambient::Session;
using vft::rt::ambient::SessionBackend;

thread_local bool tl_in_abi = false;

/// RAII reentrancy guard; `entered()` is false for a nested call.
class AbiScope {
 public:
  AbiScope() : entered_(!tl_in_abi) { tl_in_abi = true; }
  ~AbiScope() {
    if (entered_) tl_in_abi = false;
  }
  AbiScope(const AbiScope&) = delete;
  AbiScope& operator=(const AbiScope&) = delete;

  bool entered() const { return entered_; }

 private:
  bool entered_;
};

SessionBackend& backend() { return Session::instance().backend(); }

void report_text(std::FILE* out) {
  auto& session = Session::instance();
  const auto reports = session.races().all();
  std::fprintf(out, "== VerifiedFT report (detector %s) ==\n",
               backend().detector_name());
  for (const auto& r : reports) {
    std::fprintf(out, "race: %s\n", session.races().describe(r).c_str());
  }
  std::fprintf(out,
               "summary: races=%zu suppressed=%zu threads=%zu locks=%zu "
               "shadow-words=%zu\n",
               reports.size(), session.races().suppressed(),
               backend().threads_seen(), backend().locks_seen(),
               backend().shadow_words());
}

void json_escape(std::FILE* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      std::fprintf(out, "\\%c", c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(out, "\\u%04x", c);
    } else {
      std::fputc(c, out);
    }
  }
}

void report_json(std::FILE* out) {
  auto& session = Session::instance();
  const auto reports = session.races().all();
  std::fprintf(out, "{\n  \"detector\": \"");
  json_escape(out, backend().detector_name());
  std::fprintf(out, "\",\n  \"races\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& r = reports[i];
    std::fprintf(out,
                 "    {\"kind\": \"%s\", \"var\": \"0x%" PRIx64
                 "\", \"current_tid\": %u, "
                 "\"prior_epoch\": \"%s\", \"current_epoch\": \"%s\"}%s\n",
                 vft::race_kind_name(r.kind), r.var,
                 static_cast<unsigned>(r.current_tid), r.prior.str().c_str(),
                 r.current.str().c_str(),
                 i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"summary\": {\"races\": %zu, \"suppressed\": %zu, "
               "\"threads\": %zu, \"locks\": %zu, \"shadow_words\": %zu}\n}\n",
               reports.size(), session.races().suppressed(),
               backend().threads_seen(), backend().locks_seen(),
               backend().shadow_words());
}

}  // namespace

extern "C" {

int vft_attach(void) {
  AbiScope guard;
  if (!guard.entered()) return 0;
  return backend().attach() ? 1 : 0;
}

void vft_detach(void) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().detach();
}

uint64_t vft_thread_create(void) {
  AbiScope guard;
  if (!guard.entered()) return 0;
  return backend().thread_create();
}

void vft_thread_begin(uint64_t token) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().thread_begin(token);
}

void vft_thread_join(uint64_t token) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().thread_join(token);
}

void vft_thread_detach(uint64_t token) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().thread_detach(token);
}

#define VFT_ABI_ACCESS(name, method, size)        \
  void name(const void* addr) {                   \
    AbiScope guard;                               \
    if (!guard.entered()) return;                 \
    backend().method(addr, (size));               \
  }

VFT_ABI_ACCESS(vft_read1, read, 1)
VFT_ABI_ACCESS(vft_read2, read, 2)
VFT_ABI_ACCESS(vft_read4, read, 4)
VFT_ABI_ACCESS(vft_read8, read, 8)
VFT_ABI_ACCESS(vft_write1, write, 1)
VFT_ABI_ACCESS(vft_write2, write, 2)
VFT_ABI_ACCESS(vft_write4, write, 4)
VFT_ABI_ACCESS(vft_write8, write, 8)

#undef VFT_ABI_ACCESS

void vft_range_read(const void* addr, size_t size) {
  AbiScope guard;
  if (!guard.entered() || size == 0) return;
  backend().range_read(addr, size);
}

void vft_range_write(const void* addr, size_t size) {
  AbiScope guard;
  if (!guard.entered() || size == 0) return;
  backend().range_write(addr, size);
}

void vft_mutex_lock(const void* m) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().mutex_lock(m);
}

void vft_mutex_unlock(const void* m) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().mutex_unlock(m);
}

void vft_free_hint(const void* addr, size_t size) {
  AbiScope guard;
  if (!guard.entered()) return;
  backend().free_hint(addr, size);
}

size_t vft_race_count(void) {
  AbiScope guard;
  if (!guard.entered()) return 0;
  return Session::instance().races().count();
}

int vft_report_write(const char* path, int json) {
  AbiScope guard;
  if (!guard.entered()) return -1;
  std::FILE* out = stderr;
  bool owned = false;
  if (path != nullptr && std::strcmp(path, "-") != 0) {
    out = std::fopen(path, "w");
    if (out == nullptr) return -1;
    owned = true;
  }
  if (json != 0) {
    report_json(out);
  } else {
    report_text(out);
  }
  if (owned) std::fclose(out);
  return 0;
}

const char* vft_detector_name(void) {
  AbiScope guard;
  return backend().detector_name();
}

}  // extern "C"
