/* The narrow C ABI over the analysis session: every entry point an
 * interposition layer (LD_PRELOAD, a compiler pass, a DBI tool, or a
 * foreign-language binding) needs, and nothing else.
 *
 * The whole C++ runtime stack - detector, shadow memory, thread registry,
 * native-lock registry - sits behind these ~20 plain functions; the
 * detector is fixed per process but selectable at launch (VFT_DETECTOR
 * environment variable: v1 v1.5 v2 ft-mutex ft-cas djit; default v2).
 *
 * Threading model: every entry point may be called from any OS thread.
 * The calling thread is attached to the analysis implicitly on its first
 * event (vft_attach exists to make that explicit and observable). When
 * the registry's tid space is exhausted (more than Epoch::kMaxTid+1
 * concurrently-live threads) further threads degrade to *unmonitored* -
 * their events become no-ops after a one-time warning - rather than
 * aborting the target.
 *
 * Ordering discipline (ALGORITHM.md Section 4): the caller invokes
 *   - vft_mutex_lock   *after* the native acquire succeeded,
 *   - vft_thread_join  *after* the native join returned success,
 *   - everything else  *before* the corresponding target operation.
 *
 * Reentrancy: entry points are self-guarded. If the analysis itself
 * triggers a nested event in the same thread (e.g. a free() performed by
 * the runtime while a free-hint is being processed), the nested call is
 * dropped instead of recursing.
 */
#ifndef VFT_ABI_VFT_ABI_H_
#define VFT_ABI_VFT_ABI_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* --- thread lifecycle ------------------------------------------------- */

/* Attach the calling OS thread to the analysis as a fresh target thread
 * (implicitly detached: its slot retires at vft_detach). Idempotent; a
 * thread bound via vft_thread_begin keeps that binding. Returns 1 when
 * the thread is monitored after the call, 0 when it runs unmonitored
 * (registry exhausted). */
int vft_attach(void);

/* End-of-thread event for the calling thread. Retires the thread's tid
 * slot if no joiner will (detached or implicitly attached threads);
 * always safe to call, also for unmonitored or never-attached threads. */
void vft_detach(void);

/* Parent side of thread creation, *before* the native create: runs the
 * fork handler and reserves the child's ThreadState. Returns an opaque
 * nonzero token identifying the child, or 0 when the child cannot be
 * monitored (exhausted registry / unmonitored parent); 0 is safe to pass
 * to the other vft_thread_* calls (they no-op). */
uint64_t vft_thread_create(void);

/* Child side: bind the calling OS thread to the token's ThreadState.
 * Must be the child's first analysis-visible action. */
void vft_thread_begin(uint64_t token);

/* Joiner side, *after* the native join returned success: runs the join
 * handler and retires the child's slot (unless already retired by a
 * detach). Consumes the token. */
void vft_thread_join(uint64_t token);

/* pthread_detach equivalent: no one will join this child; its slot
 * retires at its vft_detach (immediately, if it already ended). */
void vft_thread_detach(uint64_t token);

/* --- memory accesses -------------------------------------------------- */

/* Pre-access events, sized like the TSan instrumentation surface. An
 * access contained in one 8-byte shadow word is a single-word event; a
 * straddling access degrades to the range path. */
void vft_read1(const void* addr);
void vft_read2(const void* addr);
void vft_read4(const void* addr);
void vft_read8(const void* addr);
void vft_write1(const void* addr);
void vft_write2(const void* addr);
void vft_write4(const void* addr);
void vft_write8(const void* addr);

/* memcpy-style sized accesses: one event per overlapped shadow word. */
void vft_range_read(const void* addr, size_t size);
void vft_range_write(const void* addr, size_t size);

/* --- native locks ------------------------------------------------------ */

/* Acquire/release events for a native lock identified by its address
 * (e.g. a pthread_mutex_t*). States are created on first use in the
 * session's lock registry; vft_free_hint drops states whose addresses
 * die, so recycled addresses start from scratch. */
void vft_mutex_lock(const void* m);
void vft_mutex_unlock(const void* m);

/* --- memory lifetime --------------------------------------------------- */

/* The target freed [addr, addr+size) (free, munmap, ...): clear the
 * covered shadow words and drop dead lock states so a recycled address
 * cannot inherit stale analysis state. */
void vft_free_hint(const void* addr, size_t size);

/* --- reporting --------------------------------------------------------- */

/* Number of race reports collected so far (suppressed reports not
 * included; vft_report_write's summary counts them). */
size_t vft_race_count(void);

/* Write the end-of-run race report to `path` ("-" or NULL: stderr).
 * `json` nonzero selects the machine-readable JSON form, else text.
 * Returns 0 on success, -1 when the file cannot be written. */
int vft_report_write(const char* path, int json);

/* The active detector's name (e.g. "VerifiedFT-v2"). */
const char* vft_detector_name(void);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* VFT_ABI_VFT_ABI_H_ */
