/* The narrow C ABI over the analysis session: every entry point an
 * interposition layer (LD_PRELOAD, a compiler pass, a DBI tool, or a
 * foreign-language binding) needs, and nothing else.
 *
 * The whole C++ runtime stack - detector, shadow memory, thread registry,
 * native-lock registry - sits behind these ~20 plain functions; the
 * detector is fixed per process but selectable at launch (VFT_DETECTOR
 * environment variable: v1 v1.5 v2 ft-mutex ft-cas djit; default v2).
 *
 * Threading model: every entry point may be called from any OS thread.
 * The calling thread is attached to the analysis implicitly on its first
 * event (vft_attach exists to make that explicit and observable). When
 * the registry's tid space is exhausted (more than Epoch::kMaxTid+1
 * concurrently-live threads) further threads degrade to *unmonitored* -
 * their events become no-ops after a one-time warning - rather than
 * aborting the target.
 *
 * Ordering discipline (ALGORITHM.md Section 4): the caller invokes
 *   - vft_mutex_lock   *after* the native acquire succeeded,
 *   - vft_thread_join  *after* the native join returned success,
 *   - everything else  *before* the corresponding target operation.
 *
 * Reentrancy: entry points are self-guarded. If the analysis itself
 * triggers a nested event in the same thread (e.g. a free() performed by
 * the runtime while a free-hint is being processed), the nested call is
 * dropped instead of recursing.
 */
#ifndef VFT_ABI_VFT_ABI_H_
#define VFT_ABI_VFT_ABI_H_

#include <stddef.h>
#include <stdint.h>

#include "vft/event_ctx.h"

#ifdef __cplusplus
extern "C" {
#endif

/* --- thread lifecycle ------------------------------------------------- */

/* Attach the calling OS thread to the analysis as a fresh target thread
 * (implicitly detached: its slot retires at vft_detach). Idempotent; a
 * thread bound via vft_thread_begin keeps that binding. Returns 1 when
 * the thread is monitored after the call, 0 when it runs unmonitored
 * (registry exhausted). */
int vft_attach(void);

/* End-of-thread event for the calling thread. Retires the thread's tid
 * slot if no joiner will (detached or implicitly attached threads);
 * always safe to call, also for unmonitored or never-attached threads. */
void vft_detach(void);

/* Parent side of thread creation, *before* the native create: runs the
 * fork handler and reserves the child's ThreadState. Returns an opaque
 * nonzero token identifying the child, or 0 when the child cannot be
 * monitored (exhausted registry / unmonitored parent); 0 is safe to pass
 * to the other vft_thread_* calls (they no-op). */
uint64_t vft_thread_create(void);

/* Child side: bind the calling OS thread to the token's ThreadState.
 * Must be the child's first analysis-visible action. */
void vft_thread_begin(uint64_t token);

/* Joiner side, *after* the native join returned success: runs the join
 * handler and retires the child's slot (unless already retired by a
 * detach). Consumes the token. */
void vft_thread_join(uint64_t token);

/* pthread_detach equivalent: no one will join this child; its slot
 * retires at its vft_detach (immediately, if it already ended). */
void vft_thread_detach(uint64_t token);

/* --- memory accesses -------------------------------------------------- */

/* Pre-access events, sized like the TSan instrumentation surface. An
 * access contained in one 8-byte shadow word is a single-word event; a
 * straddling access degrades to the range path. */
void vft_read1(const void* addr);
void vft_read2(const void* addr);
void vft_read4(const void* addr);
void vft_read8(const void* addr);
void vft_write1(const void* addr);
void vft_write2(const void* addr);
void vft_write4(const void* addr);
void vft_write8(const void* addr);

/* memcpy-style sized accesses: one event per overlapped shadow word
 * (same-epoch runs are resolved in bulk by a SIMD prefix scan). */
void vft_range_read(const void* addr, size_t size);
void vft_range_write(const void* addr, size_t size);

/* Out-of-line halves of the header-inlined fast path
 * (src/abi/vft_abi_inline.h): an interposition layer that compiles the
 * inline try-functions calls these only on an inline miss. vft_readN /
 * vft_writeN are exactly `if (!try) slow`; callers without the header
 * just use those. */
void vft_abi_slow_read(const void* addr, size_t size);
void vft_abi_slow_write(const void* addr, size_t size);

/* Nonzero while the calling thread is inside an ABI entry point (the
 * reentrancy guard is held). An interposition layer that also wraps libc
 * routines the analysis itself uses (memcpy, strlen, ...) must consult
 * this before arming the event context for such a wrapper: the nested
 * range event would be dropped by the guard anyway, but the arm would
 * overwrite the context mid-event and a second race recorded from the
 * same enclosing access would capture an analysis-internal stack. */
int vft_abi_in_runtime(void);

/* --- atomics (__tsan_atomic* sync surface) ----------------------------- */

/* Synchronization halves of the target's C11/C++11 atomic operations,
 * keyed by address like native locks. `mo` is the operation's declared
 * memory order in the TSan ABI encoding (identical to the compiler's
 * __ATOMIC_* values: 0 relaxed, 1 consume, 2 acquire, 3 release,
 * 4 acq_rel, 5 seq_cst); out-of-range values are treated as seq_cst.
 *
 * Ordering discipline, extending Section 4: the caller invokes
 *   - vft_atomic_store / vft_atomic_rmw_pre  *before* the real operation
 *     (the publication must be in the sync clock before the stored value
 *     can be observed),
 *   - vft_atomic_load / vft_atomic_rmw_post  *after* it (the join happens
 *     once the value was actually read).
 * A compare_exchange calls rmw_pre with the success order, performs the
 * real CAS, then calls rmw_post with the success order (CAS won) or the
 * failure order (CAS lost - a failed CAS is a load).
 *
 * Semantics per order follow VFT_ATOMICS mode (default "precise"):
 * acquire-class loads join the location's release clock, release-class
 * stores publish the thread clock into it, relaxed accesses contribute no
 * edge. VFT_ATOMICS=sc upgrades every order to seq_cst (the conservative
 * TSan-on-x86 view); VFT_ATOMICS=off ignores atomics entirely. */
void vft_atomic_load(const void* addr, int mo);
void vft_atomic_store(const void* addr, int mo);
void vft_atomic_rmw_pre(const void* addr, int mo);
void vft_atomic_rmw_post(const void* addr, int mo);

/* __tsan_atomic_thread_fence: per-thread fence event (no address). */
void vft_atomic_fence(int mo);

/* --- native locks ------------------------------------------------------ */

/* Acquire/release events for a native lock identified by its address
 * (e.g. a pthread_mutex_t*). States are created on first use in the
 * session's lock registry; vft_free_hint drops states whose addresses
 * die, so recycled addresses start from scratch. */
void vft_mutex_lock(const void* m);
void vft_mutex_unlock(const void* m);

/* --- memory lifetime --------------------------------------------------- */

/* The target freed [addr, addr+size) (free, munmap, ...): clear the
 * covered shadow words and drop dead lock states so a recycled address
 * cannot inherit stale analysis state. */
void vft_free_hint(const void* addr, size_t size);

/* --- event context (stack capture) ------------------------------------- */

/* Per-thread capture boundary for race call stacks (vft/event_ctx.h: the
 * `vft_tl_event_ctx` thread-local). An interposition layer stores the
 * instrumented call site's return address (`pc`) and its own frame
 * pointer (`fp`) there immediately before forwarding an access event; if
 * that event detects a race, the runtime walks the frame-pointer chain
 * upward from `fp` to reconstruct the *target's* stack (capped by
 * VFT_STACK_DEPTH, default 16, max 32). Cost on the non-racing path: the
 * two stores. Left unset, races are recorded without stacks and
 * deduplicate by variable instead. Cleared by the runtime at each
 * *slow-path* exit (inline fast-path hits cannot race, so they neither
 * read nor clear the context); an interposition layer should arm it only
 * when it is about to take the slow path, so a stale boundary can never
 * describe the wrong access. */

/* --- reporting --------------------------------------------------------- */

/* Number of *visible* race occurrences collected so far (occurrences
 * hidden by suppression rules or report limits are counted separately;
 * see vft_suppressed_count and the report summary). */
size_t vft_race_count(void);

/* Occurrences hidden from the report: suppression-rule matches plus
 * over-limit drops. racy run := vft_race_count() + vft_suppressed_count()
 * > 0. */
size_t vft_suppressed_count(void);

/* Load a valgrind-style suppression file (see docs: `vft:<kind-glob>`,
 * `fun:`/`obj:` frame globs, `...` ellipsis) into the session's engine.
 * Files named by the VFT_SUPPRESSIONS environment variable (colon-
 * separated list) are loaded automatically at session creation; this
 * entry point adds more at runtime. Rules apply to contexts created
 * after the load. Returns 0 on success, -1 on a missing/malformed file
 * (a diagnostic goes to stderr; previously loaded rules are kept). */
int vft_suppressions_load(const char* path);

/* Write the end-of-run race report to `path` ("-" or NULL: stderr).
 * `json` nonzero selects the machine-readable "vft-report-v2" JSON
 * schema - deduplicated error contexts with call stacks (module+offset
 * frames for offline symbolization via `vft report symbolize`), per-
 * context occurrence counts, and suppression statistics; `vft report
 * merge` fuses such files across a fleet of runs. `json` zero writes the
 * flat pre-v2 text form (compatibility mode).
 * Returns 0 on success, -1 when the file cannot be written. */
int vft_report_write(const char* path, int json);

/* vft_report_write with an explicit exit disposition: `clean` zero marks
 * the report as written from a crash/signal path ("clean_exit": false),
 * letting offline consumers distinguish a complete run from a salvaged
 * one. vft_report_write(path, json) == vft_report_write_ex(path, json, 1). */
int vft_report_write_ex(const char* path, int json, int clean);

/* The active detector's name (e.g. "VerifiedFT-v2"). */
const char* vft_detector_name(void);

/* --- sampling (always-on production mode) ------------------------------ */

/* The effective sampling configuration as a human-readable line ("off"
 * when sampling is disabled; otherwise e.g. "policy=cell budget=5%
 * rate0=1 adaptive=1 seed=1"). Configuration comes from VFT_SAMPLING /
 * VFT_BUDGET at session creation; see vft/sampling.h for the grammar.
 * The returned storage is valid until the next call from any thread. */
const char* vft_sampling_describe(void);

/* Lifetime counters of the active sampling gate. The integer fields are
 * monotone; rate/overhead_pct are the controller's current state. */
typedef struct vft_sampling_stats_s {
  uint64_t sampled;     /* accesses admitted to the analysis */
  uint64_t skipped;     /* accesses gated out */
  uint64_t cooled_out;  /* skips due to a cooled adaptive entry */
  uint64_t reheats;     /* adaptive entries reset by spill/race/free */
  uint64_t overhead_ns; /* extrapolated detector self-time */
  uint64_t busy_ns;     /* process CPU time since gate install */
  uint64_t adjustments; /* controller windows applied */
  double rate;          /* current global sampling rate */
  double overhead_pct;  /* overhead_ns / busy_ns, percent */
} vft_sampling_stats_s;

/* Snapshot the active gate's counters into *out. Returns 1 when sampling
 * is enabled (out filled), 0 when disabled (out zeroed). */
int vft_sampling_stats(vft_sampling_stats_s* out);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* VFT_ABI_VFT_ABI_H_ */
