/* Header-inlined C-callable fast path for the per-access ABI surface.
 *
 * Compiled directly into the interposer's __tsan_* wrappers and into the
 * vft_read1..8 / vft_write1..8 entry points: the same-epoch hit and the
 * drop-policy
 * sampled-out skip resolve entirely inline against the per-thread
 * descriptor (vft/fastpath_ctx.h) - no call, no AbiScope construction, no
 * virtual dispatch, no vft_tl_event_ctx stores. Everything else returns 0
 * and the caller takes the out-of-line slow path (vft_abi_slow_read/write),
 * which re-arms the descriptor for the next access.
 *
 * Soundness of the two inline verdicts:
 *
 *   Read hit:  the packed cell's R half equals this thread's current epoch
 *     e = c@t. Epochs cap the clock at 2^24-2 and the tid at 254, so a live
 *     epoch is never 0xFFFFFFFF and the comparison can never confuse a
 *     same-epoch read with the ESCALATING/ESCALATED sentinels (whose R half
 *     is all-ones). R == e proves this thread already recorded a read at
 *     this epoch - the FastTrack [Read Same Epoch] no-op.
 *
 *   Write hit: the W half equals e AND the R half is not all-ones. The
 *     second conjunct is required: the ESCALATED sentinel's W half is 1,
 *     which collides with tid 0 at clock 1, so W alone could match a
 *     spilled cell. With both checks this is the [Write Same Epoch] no-op.
 *
 *   Sampled-out skip: the descriptor holds a prepaid geometric countdown
 *     drawn by the gate's slow path; decrementing it inline is exactly the
 *     drop-policy gate semantics (no cell update, no detector), with the
 *     skip count flushed to the gate at the next slow-path entry.
 *
 * The cell load is an acquire load, matching the out-of-line packed_read /
 * packed_write ordering. A hit only increments a plain thread-local tally
 * in the descriptor (two shared-counter RMWs per access would cost more
 * than the dispatch the inline path saves); the runtime flushes the
 * tallies into the session's RuleStats at every slow-path entry, re-arm,
 * and detach, so at any quiescent observation point the counters are
 * bit-identical to the out-of-line path's (asserted by
 * tests/fastpath_test.cpp).
 *
 * Under VFT_SCHED every shared access must pass through the announce/park
 * seam, which the inline path bypasses by design; the try-functions
 * compile to `return 0` so the scheduler sees every access.
 */
#ifndef VFT_ABI_VFT_ABI_INLINE_H_
#define VFT_ABI_VFT_ABI_INLINE_H_

#include <stddef.h>
#include <stdint.h>

#include "vft/fastpath_ctx.h"

#ifdef __cplusplus
extern "C" {
#endif

/* Shadow geometry mirrored from runtime/shadow_space.h (static_asserted
 * against the real constants at the arming site in runtime/session.h). */
#define VFT_FASTPATH_GRANULARITY_LOG2 3
#define VFT_FASTPATH_PAGE_SPAN ((uintptr_t)4096)
#define VFT_FASTPATH_SLOT_MASK ((uintptr_t)511)

/* Out-of-line continuations (abi/vft_abi.cpp): full AbiScope + gate +
 * entry-table dispatch, then descriptor re-arm. */
void vft_abi_slow_read(const void* addr, size_t size);
void vft_abi_slow_write(const void* addr, size_t size);

#ifdef VFT_SCHED

static inline int vft_fastpath_try_read(const void* addr, size_t size) {
  (void)addr;
  (void)size;
  return 0;
}

static inline int vft_fastpath_try_write(const void* addr, size_t size) {
  (void)addr;
  (void)size;
  return 0;
}

#else /* !VFT_SCHED */

/* Shared prologue: descriptor liveness, sampling countdown, and the cell
 * lookup. Returns 1 when the access was fully resolved inline. `is_write`
 * is a compile-time constant at every call site, so the branch folds. */
static inline int vft_fastpath_try_access(const void* addr, size_t size,
                                          int is_write) {
  vft_fastpath_s* fp = &vft_tl_fastpath;
  /* TLS-only staleness check first: a never-armed thread pays one load. */
  if (fp->gen == 0) return 0;
  if (__atomic_load_n(&vft_g_fastpath_gen, __ATOMIC_ACQUIRE) != fp->gen) {
    return 0;
  }
  /* Drop-policy sampled-out skip: checked before the straddle/page tests
   * so one countdown draw covers every access shape, exactly like the
   * out-of-line drop gate. */
  if (fp->drop_countdown > 0) {
    fp->drop_countdown--;
    fp->drop_pending++;
    return 1;
  }
  const uintptr_t a = (uintptr_t)addr;
  /* Word-straddling accesses take the slow path (two cells). */
  if (((a & ((1u << VFT_FASTPATH_GRANULARITY_LOG2) - 1)) + size) >
      (1u << VFT_FASTPATH_GRANULARITY_LOG2)) {
    return 0;
  }
  if (fp->cells == 0 ||
      (a & ~(VFT_FASTPATH_PAGE_SPAN - 1)) != fp->page_base) {
    return 0;
  }
  const uint64_t cell = __atomic_load_n(
      &fp->cells[(a >> VFT_FASTPATH_GRANULARITY_LOG2) & VFT_FASTPATH_SLOT_MASK],
      __ATOMIC_ACQUIRE);
  const uint32_t e = *fp->epoch_addr;
  if (is_write) {
    if ((uint32_t)cell != e || (uint32_t)(cell >> 32) == 0xFFFFFFFFu) {
      return 0;
    }
    fp->hit_writes++;
  } else {
    if ((uint32_t)(cell >> 32) != e) return 0;
    fp->hit_reads++;
  }
  return 1;
}

static inline int vft_fastpath_try_read(const void* addr, size_t size) {
  return vft_fastpath_try_access(addr, size, 0);
}

static inline int vft_fastpath_try_write(const void* addr, size_t size) {
  return vft_fastpath_try_access(addr, size, 1);
}

#endif /* VFT_SCHED */

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* VFT_ABI_VFT_ABI_INLINE_H_ */
