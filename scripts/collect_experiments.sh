#!/usr/bin/env bash
# The exact runs behind EXPERIMENTS.md: full-size Table 1, the access-mix
# distribution, the ablations, scaling, compression, memory, and the
# micro-costs. Run on an otherwise idle machine; each bench prints its own
# paper-vs-measured context. Output lands in experiments_out/.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
mkdir -p experiments_out

VFT_BENCH_SCALE=8 VFT_BENCH_ITERS=5 ./build/bench/bench_table1 \
  | tee experiments_out/e1_table1.txt
./build/bench/bench_figure1 | tee experiments_out/e2_figure1.txt
./build/bench/bench_rulefreq | tee experiments_out/e3_rulefreq.txt
VFT_BENCH_SCALE=4 ./build/bench/bench_ablation \
  | tee experiments_out/e456_ablation.txt
VFT_BENCH_SCALE=4 ./build/bench/bench_scaling \
  | tee experiments_out/e10_scaling.txt
./build/bench/bench_compression | tee experiments_out/e11_compression.txt
./build/bench/bench_memory | tee experiments_out/e12_memory.txt
./build/bench/bench_micro --benchmark_min_time=0.1 \
  | tee experiments_out/e9_micro.txt
