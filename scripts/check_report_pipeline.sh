#!/usr/bin/env bash
# End-to-end check of the race-report pipeline (ISSUE 6 acceptance):
#   1. dedup: the hot-loop racer folds 1000 same-stack occurrences into
#      exactly one error context with count >= 1000;
#   2. fleet merge: merging three runs sums counts and is byte-stable
#      across input orderings;
#   3. suppressions: a rule hides the plain write-write race from the
#      report body while the suppressed counters still record it;
#   4. symbolization: offline `vft report symbolize` resolves >= 2
#      frames of the racing access to module+symbol (file:line when
#      debug info is present);
#   5. crash salvage: a target that SIGSEGVs mid-run still yields a
#      partial report and a RACE verdict.
#
# Usage: check_report_pipeline.sh <vft> <hot_loop> <plain_ww> <crash> \
#                                 <norace> <supp_file> <workdir>
set -u

VFT="$1"
HOT="$2"
PLAIN="$3"
CRASH="$4"
NORACE="$5"
SUPP="$6"
WORK="$7"

fail() {
  echo "report_pipeline: FAIL: $*" >&2
  exit 1
}

# Fail fast on a miswired harness: a missing corpus binary would
# otherwise show up as a misleading verdict failure deep in the legs.
for bin in "$VFT" "$HOT" "$PLAIN" "$CRASH" "$NORACE"; do
  [ -x "$bin" ] || fail "required binary '$bin' missing or not executable (rebuild the corpus/tools targets)"
done
[ -f "$SUPP" ] || fail "suppression file '$SUPP' not found"

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

# --- 1. dedup: three runs of the hot loop --------------------------------
for i in 1 2 3; do
  "$VFT" run --expect race --report "r$i.json" -- "$HOT" \
    || fail "hot-loop run $i did not report a race"
done

# Exactly one context reaches the 1000-occurrence threshold; the spin
# side context stays small. Canonical rendering puts one context per
# "count": line.
big=$(grep -c '"count": [0-9]\{4,\}' r1.json)
[ "$big" = "1" ] || fail "expected exactly 1 context with count >= 1000 in r1.json, got $big"
grep -q '"clean_exit": true' r1.json || fail "clean run not marked clean_exit"

# Every captured stack must carry the access site plus at least one
# caller frame (the wrapper's frame stays live across the detector, so
# the frame-pointer walk reaches the target's caller chain).
python3 - r1.json <<'EOF' || fail "a racing access captured fewer than 2 frames"
import json, sys
doc = json.load(open(sys.argv[1]))
stacks = [a.get("stack", []) for c in doc["contexts"] for a in c["accesses"]]
captured = [s for s in stacks if s]
assert captured, "no stacks captured at all"
assert all(len(s) >= 2 for s in captured), [len(s) for s in captured]
EOF

# --- 2. merge: sums counts, byte-stable across orders --------------------
"$VFT" report merge --out m123.json r1.json r2.json r3.json \
  || fail "merge r1 r2 r3 failed"
"$VFT" report merge --out m312.json r3.json r1.json r2.json \
  || fail "merge r3 r1 r2 failed"
"$VFT" report merge --out m231.json r2.json r3.json r1.json \
  || fail "merge r2 r3 r1 failed"
cmp -s m123.json m312.json || fail "merge output depends on input order (123 vs 312)"
cmp -s m123.json m231.json || fail "merge output depends on input order (123 vs 231)"
grep -q '"runs": 3' m123.json || fail "merged report does not say runs: 3"

sum_races() { sed -n 's/.*"summary": {"races": \([0-9]*\).*/\1/p' "$1"; }
r1=$(sum_races r1.json); r2=$(sum_races r2.json); r3=$(sum_races r3.json)
m=$(sum_races m123.json)
[ "$m" = "$((r1 + r2 + r3))" ] \
  || fail "merged races $m != $r1 + $r2 + $r3"

# --- 3. suppressions: hidden but counted ---------------------------------
"$VFT" run --suppressions "$SUPP" --expect none --report rsupp.json -- "$PLAIN" \
  || fail "suppressed plain_write_write still visible (expect none failed)"
grep -q '"suppressed_by": "corpus-plain-write-write"' rsupp.json \
  || fail "suppressed context does not name its rule"
sed -n 's/.*"suppressed": \([0-9]*\).*/\1/p' rsupp.json | head -1 | grep -qv '^0$' \
  || fail "suppressed counter is zero in rsupp.json"
# The same binary without the suppression must still race.
"$VFT" run --expect race -- "$PLAIN" \
  || fail "plain_write_write stopped racing without suppressions"
# And suppressions must not disturb a clean program's verdict.
"$VFT" run --suppressions "$SUPP" --expect none -- "$NORACE" \
  || fail "norace verdict changed under suppressions"

# --- 4. offline symbolization -------------------------------------------
if command -v addr2line >/dev/null 2>&1; then
  "$VFT" report symbolize --out sym.json m123.json || fail "symbolize failed"
  nsym=$(grep -o '"symbol": "[^"]*"' sym.json | wc -l)
  [ "$nsym" -ge 2 ] || fail "symbolize resolved $nsym frames, want >= 2"
else
  echo "report_pipeline: addr2line not found, skipping symbolize leg" >&2
fi

# --- 5. crash salvage ----------------------------------------------------
"$VFT" run --expect race --report rcrash.json -- "$CRASH" \
  || fail "crashing racy target did not yield a RACE verdict"
grep -q '"clean_exit": false' rcrash.json \
  || fail "salvaged crash report not marked clean_exit: false"

echo "report_pipeline: OK (merged races=$m over 3 runs)"
exit 0
