#!/usr/bin/env bash
# The budgeted always-on deployment check (ISSUE 7 acceptance):
#   1. recall: every racy corpus program is detected under
#      `vft run --budget 5` within a bounded number of seeded runs
#      (the controller starts at full rate, so detection is normally
#      immediate - the seed loop only covers throttled unlucky draws);
#   2. precision: the norace program stays quiet under the same budget;
#   3. plumbing: the run banner prints the effective sampling config and
#      the achieved rate/overhead, and the JSON report carries the
#      "sampling" block with matching counters;
#   4. stats artifact: each run's sampling block is collected into
#      sampling_stats.json for the CI artifact upload.
#
# Usage: check_sampling_corpus.sh <vft> <workdir> <norace_bin> \
#                                 <racy_bin>...
set -u

VFT="$1"
WORK="$2"
NORACE="$3"
shift 3
RACY=("$@")

MAX_SEEDS=8

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

fail() {
  echo "sampling_corpus: FAIL: $*" >&2
  exit 1
}

# --- 1. recall: every racy program within MAX_SEEDS seeded runs ----------
for bin in "${RACY[@]}"; do
  name=$(basename "$bin")
  found=""
  for seed in $(seq 1 "$MAX_SEEDS"); do
    if "$VFT" run --budget 5 --sampling "seed=$seed" \
        --expect race --report "$name.seed$seed.json" -- "$bin" \
        > "$name.seed$seed.out" 2>&1; then
      found="$seed"
      break
    fi
  done
  [ -n "$found" ] || fail "$name: no race within $MAX_SEEDS seeded runs at --budget 5"
  echo "sampling_corpus: $name detected at seed $found"
  cp "$name.seed$found.json" "$name.json"
  cp "$name.seed$found.out" "$name.out"
done

# --- 2. precision: norace stays quiet under the budget -------------------
"$VFT" run --budget 5 --expect none --report norace.json -- "$NORACE" \
  > norace.out 2>&1 || fail "norace program was not silent under --budget 5"

# --- 3. banner + report plumbing -----------------------------------------
grep -q "vft run: sampling: " norace.out \
  || fail "run banner missing the effective sampling config line"
grep -q "budget=5" norace.out \
  || fail "banner sampling config does not show budget=5"
grep -q "vft run: sampling achieved: " norace.out \
  || fail "run summary missing the achieved rate/overhead line"
grep -q '"sampling": {' norace.json \
  || fail "JSON report missing the sampling block"
grep -q '"budget_pct": 5' norace.json \
  || fail "report sampling block does not carry budget_pct=5"
for key in achieved_rate overhead_pct sampled skipped rate_ppm; do
  grep -q "\"$key\":" norace.json \
    || fail "report sampling block missing \"$key\""
done

# A racy run's report must carry the block too (detection and sampling
# accounting coexist).
first=$(basename "${RACY[0]}")
grep -q '"sampling": {' "$first.json" \
  || fail "racy report $first.json missing the sampling block"

# --- 4. stats artifact ---------------------------------------------------
# One JSON object per run: { "program": ..., "sampling": {...} }, for the
# CI artifact. python3 is part of the toolchain image.
python3 - <<'EOF' || fail "could not assemble sampling_stats.json"
import glob
import json

rows = []
for path in sorted(glob.glob("*.json")):
    if path == "sampling_stats.json":
        continue
    with open(path) as f:
        try:
            doc = json.load(f)
        except ValueError:
            continue  # crash-salvaged partial report
    if "sampling" in doc:
        rows.append({"program": path[:-5], "sampling": doc["sampling"]})

assert rows, "no reports carried a sampling block"
with open("sampling_stats.json", "w") as f:
    json.dump(rows, f, indent=2, sort_keys=True)
EOF

echo "sampling_corpus: OK (stats in $PWD/sampling_stats.json)"
