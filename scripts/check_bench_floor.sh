#!/usr/bin/env bash
# CI perf guard over the bench_hotpath JSON artifact.
#
# Parses BENCH_hotpath.json (path as $1, default build/bench/BENCH_hotpath.json)
# and fails when a guarded hot-path row regresses more than 2x against its
# pinned floor. Floors are the ns costs measured on the reference machine
# (Xeon @ 2.1 GHz, AVX2) when the row was introduced; CI runners are
# slower and noisier than the reference box, which is exactly why the
# trip-wire is a 2x band and not the floor itself - it catches "the fast
# path fell off a cliff" (a missed inline resolve, a devirtualization
# regression, a kernel falling back to scalar), not machine-to-machine
# scatter.
#
# Guarded rows:
#   abi_dispatch / read8   abi_ns   - the header-inlined ABI fast path
#   sampling / sampled_out drop_ns  - the inline drop-policy skip
#   range_memcpy / b4096   vft_ns   - SIMD range interposition, L1 copies
#   range_memcpy / b65536  vft_ns   - SIMD range interposition, L2 copies
#   atomic_dispatch / load acquire_ns - armed fast-epoch acquire load
#   atomic_dispatch / load relaxed_ns - locked accumulate relaxed load
#   history / same_epoch_write on_ns  - same-epoch writes with the access
#                                       history installed: the ring records
#                                       only on the slow path, so this row
#                                       pins "installed but never touched"
#                                       at the inline fast-path cost
#
# Ratio rows (range_memcpy ratio vs raw memcpy) are deliberately NOT
# guarded: the ratio divides by raw memcpy throughput, which varies more
# across runners than the vft side does.
set -u

JSON="${1:-build/bench/BENCH_hotpath.json}"

if [[ ! -f "$JSON" ]]; then
  echo "check_bench_floor: $JSON not found" >&2
  exit 1
fi

# Pinned floors (ns) and the 2x regression ceilings derived from them.
# Reference values from BENCH_hotpath.json at the PR that added each row.
#   abi_dispatch read8 abi_ns:      3.08
#   sampling sampled_out drop_ns:   3.25
#   range_memcpy b4096 vft_ns:    322
#   range_memcpy b65536 vft_ns:  4680
#   atomic_dispatch load acquire_ns: 31.2
#   atomic_dispatch load relaxed_ns: 56.1
#   history same_epoch_write on_ns:  3.45
fail=0
check() {
  local section="$1" name="$2" field="$3" floor="$4"
  local value
  value=$(python3 - "$JSON" "$section" "$name" "$field" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for rec in doc.get("records", []):
    if rec.get("section") == sys.argv[2] and rec.get("name") == sys.argv[3]:
        print(rec[sys.argv[4]])
        break
EOF
)
  if [[ -z "$value" ]]; then
    echo "FAIL  $section/$name: row missing from $JSON" >&2
    fail=1
    return
  fi
  # Regression trip-wire: measured > 2x the pinned floor.
  if python3 -c "import sys; sys.exit(0 if float('$value') <= 2.0 * float('$floor') else 1)"; then
    printf 'ok    %-28s %-10s %10s ns  (floor %s, ceiling %s)\n' \
      "$section/$name" "$field" "$value" "$floor" \
      "$(python3 -c "print(2.0 * float('$floor'))")"
  else
    printf 'FAIL  %-28s %-10s %10s ns  exceeds 2x floor %s\n' \
      "$section/$name" "$field" "$value" "$floor" >&2
    fail=1
  fi
}

check abi_dispatch read8       abi_ns   3.08
check sampling     sampled_out drop_ns  3.25
check range_memcpy b4096       vft_ns   322
check range_memcpy b65536      vft_ns   4680
check atomic_dispatch load     acquire_ns 31.2
check atomic_dispatch load     relaxed_ns 56.1
check history      same_epoch_write on_ns 3.45

if [[ "$fail" -ne 0 ]]; then
  echo "check_bench_floor: hot-path regression detected" >&2
  exit 1
fi
echo "check_bench_floor: all guarded rows within 2x of their pinned floors"
