#!/usr/bin/env bash
# End-to-end check of the access-history layer (ISSUE 10 acceptance):
#   1. two-stack reports: every racy corpus program's report carries a
#      `prior` access with a captured stack of >= 2 frames and an access
#      kind on both sides;
#   2. kill switch: VFT_HISTORY=off still reports the race, with the
#      prior stack empty - byte-compatible with pre-history reports;
#   3. norace corpus: the history layer must not change a clean verdict;
#   4. prior-side symbolization: offline `vft report symbolize` resolves
#      the prior access's innermost frame to the racing source line
#      (gated on addr2line, like the report-pipeline leg);
#   5. fleet merge + schema golden: reports with prior stacks merge and
#      their structural skeleton matches the checked-in golden.
#
# Usage: check_history_pipeline.sh <vft> <plain_ww> <memcpy> <norace> \
#                                  <golden_skeleton> <workdir> [corpus_bin...]
# The trailing corpus binaries join the fleet-merge leg only: the golden
# skeleton is the field union over the whole corpus (e.g. dynamic-symbol
# frames), so the merge must cover the same programs CI's fleet step runs.
set -u

# Absolutized: the legs run from inside the workdir.
VFT=$(readlink -f "$1")
PLAIN=$(readlink -f "$2")
MEMCPY=$(readlink -f "$3")
NORACE=$(readlink -f "$4")
GOLDEN=$(readlink -f "$5")
WORK="$6"
shift 6
FLEET_BINS=("$PLAIN" "$MEMCPY" "$NORACE")
for extra in "$@"; do
  FLEET_BINS+=("$(readlink -f "$extra")")
done

fail() {
  echo "history_pipeline: FAIL: $*" >&2
  exit 1
}

# Fail fast on a miswired harness (see check_report_pipeline.sh).
for bin in "$VFT" "${FLEET_BINS[@]}"; do
  [ -x "$bin" ] || fail "required binary '$bin' missing or not executable (rebuild the corpus/tools targets)"
done
[ -f "$GOLDEN" ] || fail "golden skeleton '$GOLDEN' not found"

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

# --- 1. two-stack reports on the racy corpus ------------------------------
for bin in "$PLAIN" "$MEMCPY"; do
  name=$(basename "$bin")
  "$VFT" run --expect race --report "$name.json" -- "$bin" \
    > "$name.out" 2>&1 \
    || fail "$name did not report a race (see $PWD/$name.out)"
  python3 - "$name.json" <<'EOF' || fail "$name: no context carries a prior stack with >= 2 frames"
import json, sys
doc = json.load(open(sys.argv[1]))
ok = False
for c in doc["contexts"]:
    roles = {a["role"]: a for a in c["accesses"]}
    assert set(roles) == {"current", "prior"}, sorted(roles)
    for a in c["accesses"]:
        assert a.get("kind") in ("read", "write"), a.get("kind")
    if len(roles["prior"].get("stack", [])) >= 2:
        ok = True
assert ok, [len(a.get("stack", [])) for c in doc["contexts"]
            for a in c["accesses"] if a["role"] == "prior"]
EOF
done
echo "history_pipeline: two-stack reports OK"

# --- 2. VFT_HISTORY=off degrades to a bare prior epoch -------------------
VFT_HISTORY=off "$VFT" run --expect race --report off.json -- "$PLAIN" \
  > off.out 2>&1 \
  || fail "race lost under VFT_HISTORY=off (see $PWD/off.out)"
python3 - off.json <<'EOF' || fail "VFT_HISTORY=off still captured a prior stack"
import json, sys
doc = json.load(open(sys.argv[1]))
for c in doc["contexts"]:
    for a in c["accesses"]:
        if a["role"] == "prior":
            assert not a.get("stack"), a["stack"]
EOF
echo "history_pipeline: VFT_HISTORY=off kill switch OK"

# --- 3. norace corpus unchanged -------------------------------------------
"$VFT" run --expect none -- "$NORACE" > norace.out 2>&1 \
  || fail "norace verdict changed with the history layer on (see $PWD/norace.out)"
echo "history_pipeline: norace verdict OK"

# --- 4. prior side symbolizes to the racing source line -------------------
if command -v addr2line >/dev/null 2>&1; then
  plain=$(basename "$PLAIN")
  "$VFT" report symbolize --out sym.json "$plain.json" \
    || fail "symbolize failed on $plain.json"
  # race_plain_write_write: both racing writes are `counter = counter + 1`
  # inside bump() - the prior side must resolve into that source file, in
  # bump's line range.
  python3 - sym.json <<'EOF' || fail "prior stack does not symbolize to the racing source line"
import json, sys
doc = json.load(open(sys.argv[1]))
ok = False
for c in doc["contexts"]:
    for a in c["accesses"]:
        if a["role"] != "prior" or not a.get("stack"):
            continue
        f = a["stack"][0]
        if f.get("file", "").endswith("race_plain_write_write.cpp") and \
           17 <= f.get("line", -1) <= 21:
            ok = True
assert ok
EOF
  echo "history_pipeline: prior-side symbolization OK"
else
  echo "history_pipeline: addr2line not found, skipping symbolize leg" >&2
fi

# --- 5. fleet merge + schema golden ---------------------------------------
for pass in 1 2; do
  for bin in "${FLEET_BINS[@]}"; do
    name=$(basename "$bin")
    "$VFT" run --report "fleet-$name-p$pass.json" -- "$bin" \
      > /dev/null 2>&1 || true
  done
done
"$VFT" report merge --out merged.json fleet-*.json \
  || fail "fleet merge over two-stack reports failed"
"$VFT" report skeleton merged.json > merged.skeleton \
  || fail "skeleton extraction failed"
diff -u "$GOLDEN" merged.skeleton \
  || fail "merged skeleton diverged from the checked-in golden"
echo "history_pipeline: fleet merge + skeleton OK"

echo "history_pipeline: OK"
exit 0
