#!/usr/bin/env bash
# The atomics litmus corpus driver (ISSUE 9 acceptance):
#   1. default mode: every litmus program produces its expected verdict
#      (race_* reports, norace_* stays quiet) under plain `vft run`;
#   2. production mode: the same corpus under `vft run --budget 5`.
#      Atomic events are never sampled out, so the sync edges survive
#      throttling and norace_* programs stay quiet at any rate; racy
#      programs get a small seeded-run bound because the *plain* racy
#      access is subject to sampling (the controller starts at full
#      rate, so detection is normally immediate);
#   3. sc A/B sweep: the shapes in AB_PROGRAMS race only because of a
#      weak memory order. Under VFT_ATOMICS=sc (every atomic upgraded to
#      seq_cst - what a TSan-style detector effectively assumes on x86)
#      the race must disappear; race_independent_atomics must keep
#      racing, because its atomics never touch and no upgrade can
#      manufacture an edge;
#   4. verdict artifact: one row per (program, mode) is collected into
#      litmus_verdicts.json for the CI artifact upload.
#
# Usage: run_litmus.sh <vft> <workdir> <litmus_bin>...
# Expected verdicts are encoded in the binary basenames: litmus_race_*
# must report, litmus_norace_* must not.
set -u

VFT="$1"
WORK="$2"
shift 2
BINS=("$@")

MAX_SEEDS=8

# Fail fast with a usable message when the harness was wired up wrong
# (stale build tree, renamed target): a missing corpus binary would
# otherwise surface as a confusing per-program verdict failure.
[ -x "$VFT" ] || { echo "litmus: FAIL: vft binary '$VFT' missing or not executable (build the tools target first)" >&2; exit 1; }
[ "${#BINS[@]}" -gt 0 ] || { echo "litmus: FAIL: no litmus binaries passed (usage: run_litmus.sh <vft> <workdir> <litmus_bin>...)" >&2; exit 1; }
for bin in "${BINS[@]}"; do
  [ -x "$bin" ] || { echo "litmus: FAIL: corpus binary '$bin' missing or not executable (rebuild the litmus targets)" >&2; exit 1; }
done

# Keep in sync with VFT_LITMUS_SC_HIDDEN in tests/litmus/CMakeLists.txt.
AB_PROGRAMS="race_mp_relaxed race_mp_release_relaxed_load \
race_mp_relaxed_store_acquire_load race_mp_fence_missing_acquire \
race_exchange_relaxed race_cas_relaxed_publish"

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

fail() {
  echo "litmus: FAIL: $*" >&2
  exit 1
}

: > verdicts.tsv

# program name without the litmus_ target prefix, e.g. race_mp_relaxed
prog_name() {
  basename "$1" | sed 's/^litmus_//'
}

expected_verdict() {
  case "$1" in
    race_*) echo race ;;
    norace_*) echo none ;;
    *) fail "cannot derive a verdict from program name '$1'" ;;
  esac
}

# --- 1. default mode ------------------------------------------------------
for bin in "${BINS[@]}"; do
  name=$(prog_name "$bin")
  verdict=$(expected_verdict "$name")
  "$VFT" run --expect "$verdict" --report "$name.default.json" -- "$bin" \
    > "$name.default.out" 2>&1 \
    || fail "$name: expected verdict '$verdict' in default mode (see $PWD/$name.default.out)"
  printf '%s\tdefault\t%s\tok\t-\n' "$name" "$verdict" >> verdicts.tsv
done
echo "litmus: default mode OK (${#BINS[@]} programs)"

# --- 2. production mode (--budget 5) --------------------------------------
for bin in "${BINS[@]}"; do
  name=$(prog_name "$bin")
  verdict=$(expected_verdict "$name")
  if [ "$verdict" = none ]; then
    "$VFT" run --budget 5 --expect none --report "$name.budget.json" \
        -- "$bin" > "$name.budget.out" 2>&1 \
      || fail "$name: not silent under --budget 5 (see $PWD/$name.budget.out)"
    printf '%s\tbudget5\tnone\tok\t-\n' "$name" >> verdicts.tsv
  else
    found=""
    for seed in $(seq 1 "$MAX_SEEDS"); do
      if "$VFT" run --budget 5 --sampling "seed=$seed" \
          --expect race --report "$name.budget.json" -- "$bin" \
          > "$name.budget.out" 2>&1; then
        found="$seed"
        break
      fi
    done
    [ -n "$found" ] \
      || fail "$name: no race within $MAX_SEEDS seeded runs at --budget 5"
    printf '%s\tbudget5\trace\tok\t%s\n' "$name" "$found" >> verdicts.tsv
  fi
done
echo "litmus: --budget 5 mode OK (${#BINS[@]} programs)"

# --- 3. sc A/B sweep ------------------------------------------------------
ab_ran=0
for bin in "${BINS[@]}"; do
  name=$(prog_name "$bin")
  case " $AB_PROGRAMS " in
    *" $name "*) ;;
    *) continue ;;
  esac
  # Default mode already proved the race is reported; the upgraded model
  # must NOT see it.
  VFT_ATOMICS=sc "$VFT" run --expect none --report "$name.sc.json" \
      -- "$bin" > "$name.sc.out" 2>&1 \
    || fail "$name: race not hidden by VFT_ATOMICS=sc - the shape does not depend on a weak order (see $PWD/$name.sc.out)"
  printf '%s\tsc\tnone\tok\t-\n' "$name" >> verdicts.tsv
  ab_ran=$((ab_ran + 1))
done
[ "$ab_ran" -ge 3 ] \
  || fail "A/B sweep needs at least 3 sc-hidden shapes, ran $ab_ran"

for bin in "${BINS[@]}"; do
  name=$(prog_name "$bin")
  [ "$name" = race_independent_atomics ] || continue
  VFT_ATOMICS=sc "$VFT" run --expect race \
      --report "$name.sc.json" -- "$bin" > "$name.sc.out" 2>&1 \
    || fail "$name: must still race under VFT_ATOMICS=sc (no shared atomic, no edge to manufacture)"
  printf '%s\tsc\trace\tok\t-\n' "$name" >> verdicts.tsv
done
echo "litmus: sc A/B sweep OK ($ab_ran hidden + race_independent_atomics still racing)"

# --- 4. verdict artifact --------------------------------------------------
# One row per (program, mode), for the CI artifact. python3 is part of
# the toolchain image.
python3 - <<'EOF' || fail "could not assemble litmus_verdicts.json"
import json

rows = []
with open("verdicts.tsv") as f:
    for line in f:
        program, mode, expected, status, seed = line.rstrip("\n").split("\t")
        row = {"program": program, "mode": mode,
               "expected": expected, "status": status}
        if seed != "-":
            row["detected_at_seed"] = int(seed)
        rows.append(row)

assert rows, "no verdict rows were recorded"
with open("litmus_verdicts.json", "w") as f:
    json.dump(rows, f, indent=2, sort_keys=True)
EOF

echo "litmus: OK (verdicts in $PWD/litmus_verdicts.json)"
