#!/usr/bin/env bash
# Build, test, and run every bench with default (quick) sizing - the
# smoke-level reproduction. See collect_experiments.sh for the full-size
# runs behind EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/bench_*; do
  [ -x "$b" ] && "$b"
done
