#!/usr/bin/env bash
# Build, test, and run every bench with default (quick) sizing - the
# smoke-level reproduction. See collect_experiments.sh for the full-size
# runs behind EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/bench_*; do
  [ -x "$b" ] && "$b"
done

# Native interposition corpus: every unmodified pthread program through
# the real `vft run` launcher, verdict asserted from the name prefix
# (race_* must report, norace_* must stay quiet). Absent in sanitizer
# configurations, where VFT_BUILD_INTERPOSE is OFF.
if [ -d build/examples/native ]; then
  for prog in build/examples/native/native_race_* \
              build/examples/native/native_norace_*; do
    [ -x "$prog" ] || continue
    case "$(basename "$prog")" in
      native_race_*) verdict=race ;;
      *) verdict=none ;;
    esac
    ./build/tools/vft run --expect "$verdict" -- "$prog"
  done
fi
