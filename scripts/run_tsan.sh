#!/usr/bin/env bash
# Run the whole test suite under ThreadSanitizer: validates the detectors'
# *own* synchronization (every analysis-state access is a lock or a
# std::atomic, so any TSan report inside src/vft is a discipline
# violation - the "concurrency bugs in a concurrency bug detector" check).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-tsan -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
cmake --build build-tsan
# Extra args pass straight to ctest (e.g. -R 'shadow|concurrent' for the
# lock-free shadow paths only, -j N for parallel runs).
ctest --test-dir build-tsan --output-on-failure "$@"
