// vft: command-line driver for the library.
//
//   vft analyze <trace | @file> [--tool v1|v1.5|v2|ft-mutex|ft-cas|djit]
//       Parse and feasibility-check a Section 2 trace, replay it through
//       the chosen detector and the specification, report the verdict and
//       the happens-before oracle's cross-check.
//
//   vft generate --ops N [--threads T] [--forked F] [--vars V] [--locks L]
//                [--disciplined P] [--seed S]
//       Emit a random feasible trace (one op per line flows through
//       `vft analyze @-` nicely).
//
//   vft bench <kernel> [--tool ...] [--threads T] [--scale S]
//             [--shadow inline|table|space|packed]
//       Time one kernel of the Table 1 suite under one detector.
//       --shadow picks where ported kernels (sor, lufact) keep their
//       element shadow: inline VarStates (default), the sharded-hash
//       ShadowTable, the lock-free two-level ShadowSpace, or the packed
//       64-bit-cell PackedShadowSpace (prints the fast-path hit/miss/
//       spill counters next to the rule totals).
//
//   vft minimize <trace | @file>
//       Shrink a racy trace to a locally minimal racy core (delta
//       debugging for race triage).
//
//   vft sched list
//   vft sched <scenario> [--bound K] [--mutate NAME]
//   vft sched <scenario> --seed N [--preemptions K] [--runs R] [--mutate NAME]
//   vft sched <scenario> --schedule 0,1,1,0 [--mutate NAME]
//       Systematic schedule exploration of the detector hot paths
//       (src/sched/). The three modes are exhaustive/bounded DFS, PCT
//       randomized sampling, and exact replay of one recorded schedule -
//       the triage loop for a VFT-SCHED-FAIL artifact line is to paste
//       its schedule= field into --schedule (plus the same --mutate, if
//       any). Requires a -DVFT_SCHED=ON build; exits 2 otherwise.
//
//   vft run [--detector NAME] [--report PATH] [--expect race|none]
//           [--suppressions FILE] [--preload LIB] [--budget PCT]
//           [--sampling SPEC] -- <program> [args...]
//       Run an *unmodified* binary under the analysis: LD_PRELOAD the
//       interposition library (src/interpose/), select the detector via
//       VFT_DETECTOR, collect the end-of-run report (text, or JSON when
//       the path ends in .json), and print the verdict. A target that
//       crashes or is killed mid-run still yields a verdict: the
//       interposer's crash handler salvages a partial report
//       (clean_exit=false) and the tolerant parser recovers every
//       complete context even from a cut-short file. With --expect the
//       exit code asserts the verdict (0 iff it matches), which is how
//       the examples/native corpus runs under ctest and CI. --budget PCT
//       (VFT_BUDGET) arms the always-on sampling mode with a target
//       overhead; --sampling SPEC (VFT_SAMPLING, e.g.
//       "rate=0.02,policy=drop,seed=7") sets the gate directly. The
//       effective configuration is echoed in the banner and recorded in
//       the JSON report's "sampling" object.
//
//   vft report merge [--out PATH] <report.json>...
//       Fuse vft-report-v2 JSONs from a fleet of runs: contexts with the
//       same ASLR-stable key are merged (counts summed, suppression
//       stats summed, `runs` accumulated). Output is canonical - byte-
//       identical regardless of input order.
//
//   vft report symbolize [--out PATH] [--symbolizer BIN] <report.json>
//       Offline symbolization: resolve each frame's module+offset to
//       function/file/line with addr2line (or llvm-symbolizer). The
//       monitored process never touches symbol tables; this is where
//       names come from.
//
//   vft report show <report.json>
//       Render a v2 JSON report in the flat text form.
//
//   vft report skeleton <report.json>
//       Print the report's structural schema (keys sorted, scalars as
//       type tags) - what CI diffs against the checked-in golden.
//
//   vft rules
//       Print the Figure 2 rule names with a one-line summary each.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "kernels/all.h"
#include "sched/explore.h"
#include "sched/scenarios.h"
#include "trace/feasibility.h"
#include "trace/generator.h"
#include "trace/hb_oracle.h"
#include "trace/minimize.h"
#include "trace/replay.h"
#include "vft/report_io.h"
#include "vft/sampling.h"

namespace {

using namespace vft;

int usage() {
  std::fprintf(stderr,
               "usage: vft analyze <trace|@file> [--tool NAME]\n"
               "       vft generate --ops N [--threads T] [--forked F]\n"
               "                    [--vars V] [--locks L] [--disciplined P]"
               " [--seed S]\n"
               "       vft bench <kernel> [--tool NAME] [--threads T]"
               " [--scale S] [--shadow inline|table|space|packed]\n"
               "       vft minimize <trace|@file>\n"
               "       vft sched list\n"
               "       vft sched <scenario> [--bound K] [--seed N"
               " [--preemptions K] [--runs R]] [--schedule CSV]"
               " [--mutate NAME]\n"
               "       vft run [--detector NAME] [--report PATH]"
               " [--expect race|none] [--suppressions FILE] [--preload LIB]"
               "\n               [--budget PCT] [--sampling SPEC]"
               " -- <program> [args...]\n"
               "       vft report merge [--out PATH] <report.json>...\n"
               "       vft report symbolize [--out PATH] [--symbolizer BIN]"
               " <report.json>\n"
               "       vft report show <report.json>\n"
               "       vft report skeleton <report.json>\n"
               "       vft rules\n"
               "tools: v1 v1.5 v2 ft-mutex ft-cas djit (default v2)\n");
  return 2;
}

std::string arg_value(int argc, char** argv, const char* flag,
                      const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

std::string load_trace_text(const std::string& spec) {
  if (spec.empty() || spec[0] != '@') return spec;
  std::istream* in = &std::cin;
  std::ifstream file;
  if (spec != "@-") {
    file.open(spec.substr(1));
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", spec.c_str() + 1);
      std::exit(2);
    }
    in = &file;
  }
  std::ostringstream all;
  std::string line;
  while (std::getline(*in, line)) all << line << "; ";
  return all.str();
}

template <typename D>
int analyze_with(const trace::Trace& t, D detector, RaceCollector& rc) {
  const trace::ReplayResult run = trace::replay(t, detector);
  Spec spec;
  const trace::SpecReplayResult sr = trace::replay_spec(t, spec);
  const trace::HbResult oracle = trace::analyze(t);

  if (run.first_race) {
    std::printf("%s: race detected at op %zu (%s)\n", D::kName,
                *run.first_race, t[*run.first_race].str().c_str());
    for (const auto& r : rc.all()) {
      std::printf("  %s\n", r.str().c_str());
    }
  } else {
    std::printf("%s: race-free (%zu operations)\n", D::kName, t.size());
  }
  const bool spec_agrees = sr.error_index == run.first_race;
  const bool oracle_agrees =
      oracle.race_free() == !run.first_race.has_value();
  std::printf("specification %s, happens-before oracle %s\n",
              spec_agrees ? "agrees" : "DISAGREES",
              oracle_agrees ? "agrees" : "DISAGREES");
  return spec_agrees && oracle_agrees ? (run.first_race ? 1 : 0) : 3;
}

int cmd_analyze(int argc, char** argv) {
  if (argc < 1) return usage();
  trace::Trace t;
  if (!trace::parse(load_trace_text(argv[0]), &t)) {
    std::fprintf(stderr, "parse error\n");
    return 2;
  }
  if (const auto err = trace::check_feasible(t)) {
    std::fprintf(stderr, "infeasible at op %zu: %s\n", err->index,
                 err->message.c_str());
    return 2;
  }
  const std::string tool = arg_value(argc, argv, "--tool", "v2");
  RaceCollector rc;
  if (tool == "v1") return analyze_with(t, VftV1(&rc), rc);
  if (tool == "v1.5") return analyze_with(t, VftV15(&rc), rc);
  if (tool == "v2") return analyze_with(t, VftV2(&rc), rc);
  if (tool == "ft-mutex") return analyze_with(t, FtMutex(&rc), rc);
  if (tool == "ft-cas") return analyze_with(t, FtCas(&rc), rc);
  if (tool == "djit") return analyze_with(t, Djit(&rc), rc);
  return usage();
}

int cmd_generate(int argc, char** argv) {
  trace::GeneratorConfig cfg;
  cfg.ops = static_cast<std::uint32_t>(
      std::atoi(arg_value(argc, argv, "--ops", "100").c_str()));
  cfg.initial_threads = static_cast<std::uint32_t>(
      std::atoi(arg_value(argc, argv, "--threads", "3").c_str()));
  cfg.max_threads = static_cast<std::uint32_t>(
      std::atoi(arg_value(argc, argv, "--forked", "2").c_str()));
  cfg.vars = static_cast<std::uint32_t>(
      std::atoi(arg_value(argc, argv, "--vars", "8").c_str()));
  cfg.locks = static_cast<std::uint32_t>(
      std::atoi(arg_value(argc, argv, "--locks", "2").c_str()));
  cfg.disciplined_fraction =
      std::atof(arg_value(argc, argv, "--disciplined", "1.0").c_str());
  cfg.seed = static_cast<std::uint64_t>(
      std::atoll(arg_value(argc, argv, "--seed", "1").c_str()));
  const trace::Trace t = trace::generate(cfg);
  for (const trace::Op& op : t) std::printf("%s\n", op.str().c_str());
  return 0;
}

template <typename D>
int bench_with(const std::string& kernel, kernels::KernelConfig cfg) {
  for (const auto& e : kernels::kernel_table<D>()) {
    if (kernel != e.name) continue;
    RaceCollector races;
    RuleStats stats;
    rt::Runtime<D> R{D(&races, &stats)};
    typename rt::Runtime<D>::MainScope scope(R);
    const auto t0 = std::chrono::steady_clock::now();
    const kernels::KernelResult result = e.fn(R, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    std::printf("%s/%s: %.4fs valid=%d races=%zu checksum=%.6g shadow=%s\n",
                e.name, D::kName,
                std::chrono::duration<double>(t1 - t0).count(),
                result.valid ? 1 : 0, races.count(), result.checksum,
                kernels::shadow_backend_name(cfg.shadow));
    if (R.has_shadow_space()) {
      std::printf("  shadow space: %s\n",
                  rt::str(R.shadow_space().stats()).c_str());
    }
    if (R.has_shadow_table()) {
      std::printf("  shadow table: entries=%zu\n", R.shadow_table().size());
    }
    if (R.has_packed_space()) {
      std::printf("  packed space: %s\n",
                  rt::str(R.packed_space().stats()).c_str());
      const std::uint64_t all = stats.total_accesses();
      const std::uint64_t rh = stats.count(Rule::kFastReadHit);
      const std::uint64_t wh = stats.count(Rule::kFastWriteHit);
      auto pct = [all](std::uint64_t n) {
        return all == 0 ? 0.0 : 100.0 * static_cast<double>(n) /
                                    static_cast<double>(all);
      };
      std::printf("  fast path: read-hit %.1f%% write-hit %.1f%% miss %.1f%% "
                  "spills=%llu (of %llu accesses)\n",
                  pct(rh), pct(wh), pct(stats.count(Rule::kFastMiss)),
                  static_cast<unsigned long long>(
                      stats.count(Rule::kFastSpill)),
                  static_cast<unsigned long long>(all));
    }
    return result.valid ? 0 : 1;
  }
  std::fprintf(stderr, "unknown kernel %s (see DESIGN.md 1.4)\n",
               kernel.c_str());
  return 2;
}

int cmd_bench(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string kernel = argv[0];
  kernels::KernelConfig cfg;
  cfg.threads = static_cast<std::uint32_t>(
      std::atoi(arg_value(argc, argv, "--threads", "4").c_str()));
  cfg.scale = static_cast<std::uint32_t>(
      std::atoi(arg_value(argc, argv, "--scale", "2").c_str()));
  const std::string shadow = arg_value(argc, argv, "--shadow", "inline");
  if (shadow == "table") {
    cfg.shadow = kernels::ShadowBackend::kTable;
  } else if (shadow == "space") {
    cfg.shadow = kernels::ShadowBackend::kSpace;
  } else if (shadow == "packed") {
    cfg.shadow = kernels::ShadowBackend::kPacked;
  } else if (shadow != "inline") {
    std::fprintf(stderr, "unknown shadow backend %s\n", shadow.c_str());
    return usage();
  }
  const std::string tool = arg_value(argc, argv, "--tool", "v2");
  if (tool == "none") return bench_with<rt::NullTool>(kernel, cfg);
  if (tool == "v1") return bench_with<VftV1>(kernel, cfg);
  if (tool == "v1.5") return bench_with<VftV15>(kernel, cfg);
  if (tool == "v2") return bench_with<VftV2>(kernel, cfg);
  if (tool == "ft-mutex") return bench_with<FtMutex>(kernel, cfg);
  if (tool == "ft-cas") return bench_with<FtCas>(kernel, cfg);
  if (tool == "djit") return bench_with<Djit>(kernel, cfg);
  return usage();
}

int cmd_minimize(int argc, char** argv) {
  if (argc < 1) return usage();
  trace::Trace t;
  if (!trace::parse(load_trace_text(argv[0]), &t)) {
    std::fprintf(stderr, "parse error\n");
    return 2;
  }
  if (const auto err = trace::check_feasible(t)) {
    std::fprintf(stderr, "infeasible at op %zu: %s\n", err->index,
                 err->message.c_str());
    return 2;
  }
  if (trace::analyze(t).race_free()) {
    std::printf("trace is race-free; nothing to minimize\n");
    return 0;
  }
  const trace::MinimizeResult r = trace::minimize_racy_trace(t);
  std::printf("minimized %zu ops -> %zu ops (%zu oracle calls)\n", t.size(),
              r.trace.size(), r.oracle_calls);
  for (const trace::Op& op : r.trace) std::printf("%s\n", op.str().c_str());
  return 0;
}

std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream all;
  all << in.rdbuf();
  return all.str();
}

/// What `vft run` learned from the report file the target (or its crash
/// handler) left behind.
struct RunReport {
  bool found = false;    ///< a report file existed and yielded a summary
  bool partial = false;  ///< crash-path write or truncated file
  long races = -1;
  long suppressed = 0;
  reportio::SamplingInfo sampling;  ///< .enabled iff the run was sampled
};

/// Race count scraped from the plain text form ("summary: races=N ...").
/// -1 when there is no summary to scrape.
long scrape_race_count(const std::string& text) {
  const std::size_t sum = text.find("summary");
  if (sum == std::string::npos) return -1;
  const std::size_t key = text.find("races", sum);
  if (key == std::string::npos) return -1;
  std::size_t i = key + 5;
  while (i < text.size() && (text[i] == '"' || text[i] == ':' ||
                             text[i] == '=' || text[i] == ' ')) {
    ++i;
  }
  if (i >= text.size() || text[i] < '0' || text[i] > '9') return -1;
  return std::atol(text.c_str() + i);
}

/// Parse whatever the run left at `path`: the v2 JSON schema through the
/// tolerant parser (which salvages complete contexts from a file a dying
/// target cut short), or the plain text form by summary-scraping.
RunReport load_run_report(const std::string& path) {
  RunReport r;
  const auto text = slurp(path);
  if (!text.has_value()) return r;
  std::size_t first = text->find_first_not_of(" \t\r\n");
  if (first != std::string::npos && (*text)[first] == '{') {
    reportio::ReportDoc doc;
    if (reportio::parse_report(*text, &doc)) {
      r.found = true;
      r.partial = doc.truncated || !doc.clean_exit;
      r.races = static_cast<long>(doc.summary.races);
      r.suppressed = static_cast<long>(doc.summary.suppressed);
      r.sampling = doc.sampling;
      return r;
    }
  }
  const long races = scrape_race_count(*text);
  if (races >= 0) {
    r.found = true;
    r.races = races;
  }
  return r;
}

int cmd_run(int argc, char** argv) {
  int sep = -1;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--") == 0) {
      sep = i;
      break;
    }
  }
  if (sep < 0 || sep + 1 >= argc) {
    std::fprintf(stderr, "vft run: missing `-- <program> [args...]`\n");
    return usage();
  }

  const std::string detector = arg_value(sep, argv, "--detector", "v2");
  const std::string expect = arg_value(sep, argv, "--expect", "");
  const std::string suppressions =
      arg_value(sep, argv, "--suppressions", "");
  if (!expect.empty() && expect != "race" && expect != "none") {
    std::fprintf(stderr, "vft run: --expect wants `race` or `none`\n");
    return 2;
  }

  // Sampling knobs: flags win over inherited environment (and are
  // propagated explicitly below, so the child's configuration never
  // depends on what happens to be in vft's own env). Validate here -
  // rejecting a bad spec in the launcher beats a warning buried in the
  // target's stderr.
  std::string budget = arg_value(sep, argv, "--budget", "");
  std::string sampling_spec = arg_value(sep, argv, "--sampling", "");
  if (budget.empty()) {
    if (const char* env = std::getenv("VFT_BUDGET")) budget = env;
  }
  if (sampling_spec.empty()) {
    if (const char* env = std::getenv("VFT_SAMPLING")) sampling_spec = env;
  }
  sampling::Config sampling_cfg;
  {
    std::string err;
    if (!sampling::parse_config(
            sampling_spec.empty() ? nullptr : sampling_spec.c_str(),
            budget.empty() ? nullptr : budget.c_str(), &sampling_cfg, &err)) {
      std::fprintf(stderr, "vft run: %s\n", err.c_str());
      return 2;
    }
  }

  std::string preload = arg_value(sep, argv, "--preload", "");
  if (preload.empty()) {
    if (const char* env = std::getenv("VFT_PRELOAD")) preload = env;
  }
#ifdef VFT_PRELOAD_DEFAULT
  if (preload.empty()) preload = VFT_PRELOAD_DEFAULT;
#endif
  if (preload.empty()) {
    std::fprintf(stderr,
                 "vft run: no interposition library available in this build "
                 "(sanitizer configurations do not build it); pass "
                 "--preload <libvft_preload.so> or set VFT_PRELOAD\n");
    return 2;
  }

  std::string report = arg_value(sep, argv, "--report", "");
  bool temp_report = false;
  if (report.empty()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "/tmp/vft-report-%d.json",
                  static_cast<int>(getpid()));
    report = buf;
    temp_report = true;
  }

  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("vft run: fork");
    return 2;
  }
  if (pid == 0) {
    setenv("LD_PRELOAD", preload.c_str(), 1);
    setenv("VFT_DETECTOR", detector.c_str(), 1);
    setenv("VFT_REPORT", report.c_str(), 1);
    if (!suppressions.empty()) {
      setenv("VFT_SUPPRESSIONS", suppressions.c_str(), 1);
    }
    if (!budget.empty()) setenv("VFT_BUDGET", budget.c_str(), 1);
    if (!sampling_spec.empty()) setenv("VFT_SAMPLING", sampling_spec.c_str(), 1);
    execvp(argv[sep + 1], argv + sep + 1);
    std::perror("vft run: exec");
    _exit(127);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  const bool signaled = WIFSIGNALED(status);
  const int target_rc = WIFEXITED(status) ? WEXITSTATUS(status)
                                          : 128 + WTERMSIG(status);

  const RunReport rr = load_run_report(report);
  if (!rr.found) {
    // No salvageable report at all: the target died before the interposer
    // could write anything (e.g. SIGKILL, or a crash inside the crash
    // handler). Still give a verdict - just an inconclusive one.
    if (signaled) {
      std::fprintf(stderr,
                   "vft run: target killed by signal %d before any report "
                   "could be written (%s); verdict: inconclusive\n",
                   WTERMSIG(status), report.c_str());
    } else {
      std::fprintf(stderr,
                   "vft run: no report from the target (exit %d) at %s; "
                   "verdict: inconclusive\n",
                   target_rc, report.c_str());
    }
    if (temp_report) std::remove(report.c_str());
    return expect.empty() ? target_rc : 1;
  }

  std::printf("vft run: detector=%s races=%ld suppressed=%ld "
              "target-exit=%d%s%s%s\n",
              detector.c_str(), rr.races, rr.suppressed, target_rc,
              rr.partial ? " (partial)" : "",
              temp_report ? "" : " report=",
              temp_report ? "" : report.c_str());
  if (sampling_cfg.enabled) {
    std::printf("vft run: sampling: %s\n",
                sampling::describe(sampling_cfg).c_str());
  }
  if (rr.sampling.enabled) {
    const reportio::SamplingInfo& sp = rr.sampling;
    const double total = static_cast<double>(sp.sampled + sp.skipped);
    std::printf(
        "vft run: sampling achieved: rate=%.4f (now %.4f) overhead=%.2f%% "
        "sampled=%llu skipped=%llu reheats=%llu adjustments=%llu\n",
        total > 0 ? static_cast<double>(sp.sampled) / total : 0.0,
        static_cast<double>(sp.rate_ppm) / 1e6,
        sp.busy_ns > 0 ? 100.0 * static_cast<double>(sp.overhead_ns) /
                             static_cast<double>(sp.busy_ns)
                       : 0.0,
        static_cast<unsigned long long>(sp.sampled),
        static_cast<unsigned long long>(sp.skipped),
        static_cast<unsigned long long>(sp.reheats),
        static_cast<unsigned long long>(sp.adjustments));
  }
  if (rr.partial) {
    std::printf("vft run: verdict from a PARTIAL report: the target %s "
                "mid-run; counts cover everything detected before that\n",
                signaled ? "was killed" : "crashed or was killed");
  }
  if (temp_report) std::remove(report.c_str());

  if (expect == "race") {
    if (rr.races > 0) return 0;
    std::fprintf(stderr, "vft run: expected a race, found none%s\n",
                 rr.partial ? " (partial report)" : "");
    return 1;
  }
  if (expect == "none") {
    if (rr.races == 0 && !rr.partial) return 0;
    if (rr.races == 0) {
      std::fprintf(stderr,
                   "vft run: race-free so far, but the report is partial "
                   "(target died mid-run) - refusing a clean verdict\n");
      return 1;
    }
    std::fprintf(stderr, "vft run: expected race-free, found %ld\n",
                 rr.races);
    return 1;
  }
  return target_rc;
}

// ---------------------------------------------------------------------
// vft report: offline triage over vft-report-v2 JSON files.
// ---------------------------------------------------------------------

bool write_out(const std::string& out_path, const std::string& text) {
  if (out_path.empty() || out_path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "vft report: cannot write %s\n", out_path.c_str());
    return false;
  }
  out << text;
  return out.good();
}

bool load_doc(const std::string& path, reportio::ReportDoc* doc) {
  const auto text = slurp(path);
  if (!text.has_value()) {
    std::fprintf(stderr, "vft report: cannot read %s\n", path.c_str());
    return false;
  }
  std::string err;
  if (!reportio::parse_report(*text, doc, &err)) {
    std::fprintf(stderr, "vft report: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  if (doc->truncated) {
    std::fprintf(stderr,
                 "vft report: note: %s is truncated; using the %zu "
                 "complete context(s) it still holds\n",
                 path.c_str(), doc->contexts.size());
  }
  return true;
}

/// One batch of addresses through the symbolizer for one module.
/// addr2line and llvm-symbolizer (GNU output style) agree on the shape:
/// with -f, each address yields a function line then a file:line line.
/// Addresses are `offset - 1`: a frame holds a *return* address, and the
/// byte before it is inside the calling instruction - the line the call
/// is on, not the line after it.
std::vector<std::pair<std::string, std::string>> symbolize_module(
    const std::string& symbolizer, const std::string& module,
    const std::vector<std::uint64_t>& offsets) {
  std::vector<std::pair<std::string, std::string>> out(offsets.size(),
                                                       {"", ""});
  const bool llvm = symbolizer.find("llvm-symbolizer") != std::string::npos;
  std::string cmd = "'" + symbolizer + "'";
  if (llvm) {
    cmd += " --output-style=GNU --functions=linkage --demangle --obj='" +
           module + "'";
  } else {
    cmd += " -f -C -e '" + module + "'";
  }
  char buf[32];
  for (const std::uint64_t off : offsets) {
    std::snprintf(buf, sizeof(buf), " 0x%llx",
                  static_cast<unsigned long long>(off == 0 ? 0 : off - 1));
    cmd += buf;
  }
  cmd += " 2>/dev/null";
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return out;
  std::string text;
  char chunk[4096];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), pipe)) > 0) {
    text.append(chunk, n);
  }
  pclose(pipe);

  std::istringstream lines(text);
  std::string line;
  std::size_t i = 0;
  while (i < offsets.size() && std::getline(lines, line)) {
    if (line.empty()) continue;  // llvm-symbolizer's blank separators
    const std::string func = line;
    std::string loc;
    if (!std::getline(lines, loc)) break;
    out[i] = {func, loc};
    ++i;
  }
  return out;
}

void apply_symbolization(reportio::ReportDoc* doc,
                         const std::string& symbolizer) {
  // Batch per module: every unresolved (module, offset) pair goes through
  // one symbolizer invocation per module.
  std::map<std::string, std::vector<std::uint64_t>> batches;
  for (const auto& c : doc->contexts) {
    for (const auto& a : c.accesses) {
      for (const auto& f : a.stack) {
        if (!f.module.empty()) batches[f.module].push_back(f.offset);
      }
    }
  }
  std::map<std::string,
           std::vector<std::pair<std::string, std::string>>> results;
  for (const auto& [module, offsets] : batches) {
    results[module] = symbolize_module(symbolizer, module, offsets);
  }
  std::map<std::string, std::size_t> cursor;
  for (auto& c : doc->contexts) {
    for (auto& a : c.accesses) {
      for (auto& f : a.stack) {
        if (f.module.empty()) continue;
        const std::size_t i = cursor[f.module]++;
        const auto& mod_results = results[f.module];
        if (i >= mod_results.size()) continue;
        const auto& [func, loc] = mod_results[i];
        if (!func.empty() && func != "??") {
          f.symbol = func;
          f.symbol_offset = 0;  // line info supersedes the dladdr offset
        }
        // loc is "file:line" (possibly ":col" suffixed, possibly "??:0").
        const std::size_t colon = loc.find_last_of(':');
        std::string file = colon == std::string::npos
                               ? loc
                               : loc.substr(0, colon);
        std::string line_s =
            colon == std::string::npos ? "" : loc.substr(colon + 1);
        // GNU style can emit file:line:col - peel a trailing column.
        const std::size_t colon2 = file.find_last_of(':');
        if (colon2 != std::string::npos &&
            file.find_first_not_of("0123456789", colon2 + 1) ==
                std::string::npos) {
          line_s = file.substr(colon2 + 1);
          file = file.substr(0, colon2);
        }
        if (!file.empty() && file != "??") {
          f.file = file;
          f.line = std::atoi(line_s.c_str());
        }
      }
    }
  }
}

int cmd_report(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string what = argv[0];
  const std::string out_path = arg_value(argc, argv, "--out", "");

  // Positional arguments: everything that is neither a flag nor a flag's
  // value.
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-' && argv[i][1] == '-') {
      ++i;  // skip the flag's value
      continue;
    }
    inputs.emplace_back(argv[i]);
  }

  if (what == "merge") {
    if (inputs.empty()) {
      std::fprintf(stderr, "vft report merge: no input reports\n");
      return 2;
    }
    std::vector<reportio::ReportDoc> docs(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (!load_doc(inputs[i], &docs[i])) return 2;
    }
    const reportio::ReportDoc merged = reportio::merge_reports(docs);
    return write_out(out_path, reportio::render_json(merged)) ? 0 : 2;
  }

  if (what == "symbolize") {
    if (inputs.size() != 1) {
      std::fprintf(stderr, "vft report symbolize: want one input report\n");
      return 2;
    }
    reportio::ReportDoc doc;
    if (!load_doc(inputs[0], &doc)) return 2;
    const std::string symbolizer =
        arg_value(argc, argv, "--symbolizer", "addr2line");
    apply_symbolization(&doc, symbolizer);
    return write_out(out_path, reportio::render_json(doc)) ? 0 : 2;
  }

  if (what == "show") {
    if (inputs.size() != 1) {
      std::fprintf(stderr, "vft report show: want one input report\n");
      return 2;
    }
    reportio::ReportDoc doc;
    if (!load_doc(inputs[0], &doc)) return 2;
    return write_out(out_path, reportio::render_plain(doc)) ? 0 : 2;
  }

  if (what == "skeleton") {
    if (inputs.size() != 1) {
      std::fprintf(stderr, "vft report skeleton: want one input report\n");
      return 2;
    }
    const auto text = slurp(inputs[0]);
    if (!text.has_value()) {
      std::fprintf(stderr, "vft report: cannot read %s\n",
                   inputs[0].c_str());
      return 2;
    }
    return write_out(out_path, reportio::json_skeleton(*text)) ? 0 : 2;
  }

  return usage();
}

int cmd_rules() {
  std::printf(
      "Figure 2 analysis rules (VerifiedFT):\n"
      "  [Read Same Epoch]         re-read within the epoch: no-op (60%% of accesses)\n"
      "  [Read Shared Same Epoch]  re-read of read-shared data within the epoch (12%%)\n"
      "  [Read Exclusive]          ordered read: R := E_t\n"
      "  [Read Share]              concurrent reads: inflate R to a vector clock\n"
      "  [Read Shared]             read-shared bookkeeping: V(t) := E_t\n"
      "  [Write Same Epoch]        re-write within the epoch: no-op (14%%)\n"
      "  [Write Exclusive]         ordered write: W := E_t\n"
      "  [Write Shared]            write over read-shared data (full VC check)\n"
      "  [Write-Read Race]         read races with the last write\n"
      "  [Write-Write Race]        write races with the last write\n"
      "  [Read-Write Race]         write races with the last (epoch) read\n"
      "  [Shared-Write Race]       write races with an unordered shared read\n");
  return 0;
}

void print_sched_artifacts(const std::vector<sched::FailureArtifact>& all,
                           const char* scenario) {
  for (sched::FailureArtifact a : all) {
    a.scenario = scenario;
    std::printf("%s\n", sched::format_artifact(a).c_str());
  }
}

int cmd_sched(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string what = argv[0];
  if (what == "list") {
    for (const sched::Scenario& s : sched::scenarios()) {
      std::printf("%-22s %s%s\n", s.name, s.summary,
                  s.expect_deadlocks ? " (deadlocks expected)" : "");
    }
    std::printf("mutations (--mutate): volatile-value-before-arm"
                " escalate-publish-before-inject\n");
    return 0;
  }
  if (!sched::kEnabled) {
    std::fprintf(stderr,
                 "vft sched needs a -DVFT_SCHED=ON build; in this one the "
                 "hot-path schedule points compile to no-ops, so there is "
                 "nothing to explore\n");
    return 2;
  }
  const sched::Scenario* sc = sched::find_scenario(what);
  if (sc == nullptr) {
    std::fprintf(stderr, "unknown scenario %s (try `vft sched list`)\n",
                 what.c_str());
    return 2;
  }

  const std::string mutate = arg_value(argc, argv, "--mutate", "");
  std::unique_ptr<sched::ScopedMutation> armed;
  if (!mutate.empty()) {
    std::atomic<bool>* knob = sched::find_mutation(mutate);
    if (knob == nullptr) {
      std::fprintf(stderr, "unknown mutation %s (try `vft sched list`)\n",
                   mutate.c_str());
      return 2;
    }
    armed = std::make_unique<sched::ScopedMutation>(*knob);
  }

  const std::string schedule_csv = arg_value(argc, argv, "--schedule", "");
  if (!schedule_csv.empty()) {
    const std::optional<sched::Schedule> plan =
        sched::parse_schedule(schedule_csv);
    if (!plan.has_value()) {
      std::fprintf(stderr, "--schedule wants comma-separated thread "
                           "indices, e.g. 0,1,1,0\n");
      return 2;
    }
    const sched::ReplayOutcome out = sched::replay(sc->make, *plan);
    if (out.error.has_value()) {
      std::printf("replay: FAIL (%s)\n", out.error->c_str());
      return 1;
    }
    std::printf("replay: schedule completes and every oracle agrees\n");
    return 0;
  }

  const std::string seed = arg_value(argc, argv, "--seed", "");
  if (!seed.empty()) {
    sched::PctConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(std::atoll(seed.c_str()));
    cfg.preemptions =
        std::atoi(arg_value(argc, argv, "--preemptions", "3").c_str());
    cfg.runs = static_cast<std::size_t>(
        std::atoll(arg_value(argc, argv, "--runs", "200").c_str()));
    cfg.length_hint = static_cast<std::size_t>(
        std::atoll(arg_value(argc, argv, "--length-hint", "32").c_str()));
    const sched::PctResult r = sched::explore_pct(sc->make, cfg);
    std::printf("%s: pct seed=%llu d=%d runs=%zu failures=%zu "
                "deadlocks=%zu livelocks=%zu\n",
                sc->name, static_cast<unsigned long long>(cfg.seed),
                cfg.preemptions, r.runs, r.failures, r.deadlocks,
                r.livelocks);
    print_sched_artifacts(r.artifacts, sc->name);
    return r.failures == 0 ? 0 : 1;
  }

  sched::ExploreConfig cfg;
  cfg.preemption_bound =
      std::atoi(arg_value(argc, argv, "--bound", "-1").c_str());
  const sched::ExploreResult r = sched::explore_dfs(sc->make, cfg);
  std::printf("%s: schedules=%zu sleep_blocked=%zu bound_blocked=%zu "
              "deadlocks=%zu livelocks=%zu failures=%zu%s\n",
              sc->name, r.schedules, r.sleep_blocked, r.bound_blocked,
              r.deadlocks, r.livelocks, r.failures,
              r.capped ? " (CAPPED)" : "");
  print_sched_artifacts(r.artifacts, sc->name);
  const bool deadlocks_ok =
      sc->expect_deadlocks ? r.deadlocks > 0 : r.deadlocks == 0;
  return r.failures == 0 && r.livelocks == 0 && !r.capped && deadlocks_ok
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "analyze") return cmd_analyze(argc - 2, argv + 2);
  if (cmd == "generate") return cmd_generate(argc - 2, argv + 2);
  if (cmd == "bench") return cmd_bench(argc - 2, argv + 2);
  if (cmd == "minimize") return cmd_minimize(argc - 2, argv + 2);
  if (cmd == "sched") return cmd_sched(argc - 2, argv + 2);
  if (cmd == "run") return cmd_run(argc - 2, argv + 2);
  if (cmd == "report") return cmd_report(argc - 2, argv + 2);
  if (cmd == "rules") return cmd_rules();
  return usage();
}
