// Systematic rule-interaction matrix for the Figure 2 specification: for
// every ordered pair of accesses (first kind x second kind x ordered?),
// the rule fired by the second access is fully determined - this test
// pins the whole transition table, parameterized.
//
// Also sweeps the three-access compositions that exercise the adaptive
// representation (exclusive -> shared -> write and friends).
#include <gtest/gtest.h>

#include "vft/spec.h"

namespace vft {
namespace {

constexpr VarId kX = 0;
constexpr LockId kM = 9;
constexpr Tid A = 0, B = 1, C = 2;

enum class Access { kRead, kWrite };

struct PairCase {
  Access first;
  Access second;
  bool same_thread;  // second access by the same thread (program order)
  bool ordered;      // if different threads: lock-ordered?
  Rule expect;       // rule fired by the second access
  bool error;
};

class PairMatrix : public ::testing::TestWithParam<PairCase> {};

TEST_P(PairMatrix, SecondAccessFiresExpectedRule) {
  const PairCase p = GetParam();
  Spec s;
  auto access = [&](Tid t, Access a) {
    return a == Access::kRead ? s.on_read(t, kX) : s.on_write(t, kX);
  };
  access(A, p.first);
  Tid second = A;
  if (!p.same_thread) {
    second = B;
    if (p.ordered) {
      s.on_acquire(A, kM);
      s.on_release(A, kM);
      s.on_acquire(B, kM);
    }
  }
  const Spec::StepResult r = access(second, p.second);
  EXPECT_EQ(r.rule, p.expect);
  EXPECT_EQ(r.error, p.error);
}

INSTANTIATE_TEST_SUITE_P(
    SameThread, PairMatrix,
    ::testing::Values(
        // Program order: everything same-epoch (no sync between).
        PairCase{Access::kRead, Access::kRead, true, true,
                 Rule::kReadSameEpoch, false},
        PairCase{Access::kRead, Access::kWrite, true, true,
                 Rule::kWriteExclusive, false},
        PairCase{Access::kWrite, Access::kRead, true, true,
                 Rule::kReadExclusive, false},
        PairCase{Access::kWrite, Access::kWrite, true, true,
                 Rule::kWriteSameEpoch, false}));

INSTANTIATE_TEST_SUITE_P(
    CrossThreadOrdered, PairMatrix,
    ::testing::Values(
        PairCase{Access::kRead, Access::kRead, false, true,
                 Rule::kReadExclusive, false},
        PairCase{Access::kRead, Access::kWrite, false, true,
                 Rule::kWriteExclusive, false},
        PairCase{Access::kWrite, Access::kRead, false, true,
                 Rule::kReadExclusive, false},
        PairCase{Access::kWrite, Access::kWrite, false, true,
                 Rule::kWriteExclusive, false}));

INSTANTIATE_TEST_SUITE_P(
    CrossThreadConcurrent, PairMatrix,
    ::testing::Values(
        // Concurrent read/read shares; everything else races.
        PairCase{Access::kRead, Access::kRead, false, false, Rule::kReadShare,
                 false},
        PairCase{Access::kRead, Access::kWrite, false, false,
                 Rule::kReadWriteRace, true},
        PairCase{Access::kWrite, Access::kRead, false, false,
                 Rule::kWriteReadRace, true},
        PairCase{Access::kWrite, Access::kWrite, false, false,
                 Rule::kWriteWriteRace, true}));

// --- three-access compositions over the adaptive representation ---

TEST(TripleComposition, SharedThenOrderedWriteIsWriteShared) {
  Spec s;
  s.on_read(A, kX);
  s.on_read(B, kX);  // SHARED
  // Order C after both readers via two lock handoffs.
  s.on_acquire(A, kM);
  s.on_release(A, kM);
  s.on_acquire(B, kM);
  s.on_release(B, kM);
  s.on_acquire(C, kM);
  const auto r = s.on_write(C, kX);
  EXPECT_EQ(r.rule, Rule::kWriteShared);
  EXPECT_FALSE(r.error);
}

TEST(TripleComposition, SharedThenPartiallyOrderedWriteRaces) {
  Spec s;
  s.on_read(A, kX);
  s.on_read(B, kX);  // SHARED
  s.on_acquire(A, kM);
  s.on_release(A, kM);
  s.on_acquire(C, kM);  // C ordered after A only
  const auto r = s.on_write(C, kX);
  EXPECT_EQ(r.rule, Rule::kSharedWriteRace);
  EXPECT_TRUE(r.error);
}

TEST(TripleComposition, WriteSharedThenLaterReadStaysShared) {
  Spec s;
  s.on_read(A, kX);
  s.on_read(B, kX);  // SHARED
  s.on_acquire(A, kM);
  s.on_release(A, kM);
  s.on_acquire(B, kM);
  s.on_release(B, kM);
  s.on_acquire(C, kM);
  s.on_write(C, kX);  // [Write Shared], R stays SHARED under VerifiedFT
  s.on_release(C, kM);
  s.on_acquire(A, kM);  // A ordered after C's write
  const auto r = s.on_read(A, kX);
  EXPECT_EQ(r.rule, Rule::kReadShared);  // still in shared mode
  EXPECT_FALSE(r.error);
}

TEST(TripleComposition, ExclusiveReaderChainNeverInflates) {
  // A chain of lock-ordered readers keeps the epoch representation.
  Spec s;
  Tid prev = A;
  s.on_read(A, kX);
  for (Tid t = 1; t <= 5; ++t) {
    s.on_acquire(prev, kM);
    s.on_release(prev, kM);
    s.on_acquire(t, kM);
    const auto r = s.on_read(t, kX);
    EXPECT_EQ(r.rule, Rule::kReadExclusive) << "thread " << t;
    EXPECT_FALSE(s.var(kX).R.is_shared());
    prev = t;
  }
}

TEST(TripleComposition, ManyConcurrentReadersAllRecorded) {
  Spec s;
  for (Tid t = 0; t < 6; ++t) s.on_read(t, kX);
  EXPECT_TRUE(s.var(kX).R.is_shared());
  for (Tid t = 0; t < 6; ++t) {
    EXPECT_EQ(s.var(kX).V.get(t), Epoch::make(t, 1));
  }
  // A seventh thread ordered after *all* of them may write.
  for (Tid t = 0; t < 6; ++t) {
    s.on_acquire(t, kM);
    s.on_release(t, kM);
    s.on_acquire(6, kM);
    s.on_release(6, kM);
  }
  s.on_acquire(6, kM);
  EXPECT_FALSE(s.on_write(6, kX).error);
}

TEST(TripleComposition, ForkChainTransfersKnowledge) {
  Spec s;
  s.on_write(A, kX);
  s.on_fork(A, B);
  s.on_fork(B, C);  // grandchild
  EXPECT_FALSE(s.on_write(C, kX).error);
}

TEST(TripleComposition, SiblingsAfterForkStillRace) {
  Spec s;
  s.on_fork(A, B);
  s.on_fork(A, C);
  s.on_write(B, kX);
  const auto r = s.on_write(C, kX);  // siblings: unordered
  EXPECT_TRUE(r.error);
}

}  // namespace
}  // namespace vft
