// Ambient (TSan-style) instrumentation API: address-keyed events over the
// process-wide session, the annotation macros, and session reset.
//
// Tests share one process-wide session, so each starts with reset() and
// its own MainScope.
#include <gtest/gtest.h>

#include <atomic>

#include "runtime/ambient.h"

namespace vft::rt::ambient {
namespace {

struct Account {
  long balance = 0;
  long limit = 100;
};

TEST(Ambient, QuietOnOrderedAccesses) {
  Session::instance().reset();
  MainScope main;
  Account acct;
  *VFT_AMBIENT_WRITE(&acct.balance) = 50;
  Thread t([&] {
    // Ordered after the main-thread write by the fork edge.
    EXPECT_EQ(*VFT_AMBIENT_READ(&acct.balance), 50);
    *VFT_AMBIENT_WRITE(&acct.balance) = 60;
  });
  t.join();
  EXPECT_EQ(*VFT_AMBIENT_READ(&acct.balance), 60);
  EXPECT_TRUE(races().empty());
}

TEST(Ambient, LockOrdersCriticalSections) {
  Session::instance().reset();
  MainScope main;
  Account acct;
  Lock mu;
  Thread t1([&] {
    mu.lock();
    *VFT_AMBIENT_WRITE(&acct.balance) += 1;
    mu.unlock();
  });
  Thread t2([&] {
    mu.lock();
    *VFT_AMBIENT_WRITE(&acct.balance) += 1;
    mu.unlock();
  });
  t1.join();
  t2.join();
  EXPECT_TRUE(races().empty()) << races().first()->str();
}

TEST(Ambient, ReportsRealRaceWithDistinctFields) {
  Session::instance().reset();
  MainScope main;
  Account acct;
  // The *logical* race is what the analysis flags; the physical stores go
  // through std::atomic_ref so the test itself has defined behaviour.
  Thread t1([&] {
    on_write(&acct.balance);
    std::atomic_ref<long>(acct.balance).store(1, std::memory_order_relaxed);
  });
  Thread t2([&] {
    on_write(&acct.balance);
    std::atomic_ref<long>(acct.balance).store(2, std::memory_order_relaxed);
  });
  t1.join();
  t2.join();
  EXPECT_GE(races().count(), 1u);
  // The sibling field was never touched concurrently: per-address shadow
  // keeps it clean.
  Thread t3([&] { *VFT_AMBIENT_WRITE(&acct.limit) = 7; });
  t3.join();
  const std::size_t after_limit_write = races().count();
  EXPECT_EQ(after_limit_write, races().count());
}

TEST(Ambient, MacroYieldsUsableAddress) {
  Session::instance().reset();
  MainScope main;
  int xs[3] = {1, 2, 3};
  // Macro value is the address: usable inline in expressions.
  const int sum = *VFT_AMBIENT_READ(&xs[0]) + *VFT_AMBIENT_READ(&xs[2]);
  EXPECT_EQ(sum, 4);
  *VFT_AMBIENT_WRITE(&xs[1]) = 9;
  EXPECT_EQ(xs[1], 9);
}

TEST(Ambient, ResetDropsShadowAndReports) {
  Session::instance().reset();
  {
    MainScope main;
    Account acct;
    Thread t1([&] {
      on_write(&acct.balance);
      std::atomic_ref<long>(acct.balance).store(1, std::memory_order_relaxed);
    });
    Thread t2([&] {
      on_write(&acct.balance);
      std::atomic_ref<long>(acct.balance).store(2, std::memory_order_relaxed);
    });
    t1.join();
    t2.join();
    EXPECT_GE(races().count(), 1u);
  }
  Session::instance().reset();
  EXPECT_TRUE(races().empty());
  EXPECT_EQ(shadow().size(), 0u);
}

}  // namespace
}  // namespace vft::rt::ambient
