// CoarseArray (array shadow compression): correctness of the granule
// mapping, the race-detection semantics at coarse granularity - including
// the documented false-alarm mode - and the BigFoot-style range checks.
#include <gtest/gtest.h>

#include "runtime/coarse_array.h"
#include "runtime/instrument.h"
#include "vft/vft_v2.h"

namespace vft::rt {
namespace {

TEST(CoarseArray, LoadStoreRoundTripAcrossGranules) {
  Runtime<VftV2> R{VftV2{}};
  Runtime<VftV2>::MainScope scope(R);
  CoarseArray<int, VftV2> a(R, 100, 8, -1);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a.granule(), 8u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.load(i), -1);
    a.store(i, static_cast<int>(i));
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.load(i), static_cast<int>(i));
  }
}

TEST(CoarseArray, GranuleAlignedPartitionIsRaceFree) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  constexpr std::size_t kN = 64, kG = 16;  // 4 granules, one per worker
  CoarseArray<int, VftV2> a(R, kN, kG);
  parallel_for_threads(R, 4, [&](std::uint32_t w) {
    for (std::size_t i = w * kG; i < (w + 1) * kG; ++i) {
      a.store(i, static_cast<int>(w));
    }
  });
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

TEST(CoarseArray, UnalignedPartitionFalseAlarm) {
  // Two threads write disjoint elements that share a granule: a *false*
  // alarm by construction - the precision price of compression that
  // Section 9 calls out for whole-object shadow locations.
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  CoarseArray<int, VftV2> a(R, 8, 8);  // one granule for everything
  Thread<VftV2> t1(R, [&] { a.store(0, 1); });
  Thread<VftV2> t2(R, [&] { a.store(7, 2); });  // disjoint, same granule
  t1.join();
  t2.join();
  EXPECT_GE(rc.count(), 1u);  // reported although no element-level race
  EXPECT_EQ(a.raw(0), 1);
  EXPECT_EQ(a.raw(7), 2);
}

TEST(CoarseArray, StillCatchesRealRaces) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  CoarseArray<int, VftV2> a(R, 32, 4);
  parallel_for_threads(R, 2, [&](std::uint32_t w) {
    a.store(5, static_cast<int>(w));  // same element, no sync
  });
  EXPECT_GE(rc.count(), 1u);
}

TEST(CoarseArray, RangeOpsCheckOncePerGranule) {
  RaceCollector rc;
  RuleStats stats;
  Runtime<VftV2> R{VftV2(&rc, &stats)};
  Runtime<VftV2>::MainScope scope(R);
  CoarseArray<int, VftV2> a(R, 64, 16);
  a.write_range(0, 64, [](std::size_t i) { return static_cast<int>(i); });
  // 64 elements, granule 16 -> exactly 4 write checks.
  EXPECT_EQ(stats.total_accesses(), 4u);
  int sum = 0;
  a.read_range(0, 64, [&](std::size_t, int v) { sum += v; });
  EXPECT_EQ(stats.total_accesses(), 8u);
  EXPECT_EQ(sum, 63 * 64 / 2);
  EXPECT_TRUE(rc.empty());
}

TEST(CoarseArray, RangeOpsRespectPartialGranules) {
  RuleStats stats;
  Runtime<VftV2> R{VftV2(nullptr, &stats)};
  Runtime<VftV2>::MainScope scope(R);
  CoarseArray<int, VftV2> a(R, 100, 16);
  a.write_range(10, 20, [](std::size_t) { return 1; });  // granules 0 and 1
  EXPECT_EQ(stats.total_accesses(), 2u);
  a.write_range(5, 5, [](std::size_t) { return 1; });  // empty: no checks
  EXPECT_EQ(stats.total_accesses(), 2u);
}

TEST(CoarseArray, GranuleOneBehavesLikeFineArray) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  CoarseArray<int, VftV2> a(R, 16, 1);
  parallel_for_threads(R, 2, [&](std::uint32_t w) {
    a.store(static_cast<std::size_t>(w), 1);  // disjoint elements
  });
  EXPECT_TRUE(rc.empty());  // no false alarm at granularity 1
}

}  // namespace
}  // namespace vft::rt
