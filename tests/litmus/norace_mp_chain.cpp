// Three-thread release/acquire chain: t1 publishes data via flag1, t2
// observes flag1 and republishes via flag2, t3 observes flag2 and reads
// the data. Ordering must be transitive through t2's clock.
// Expected: no race.
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> flag1{0};
std::atomic<int> flag2{0};

void t1() {
  data = 1;
  flag1.store(1, std::memory_order_release);
}

void t2() {
  while (flag1.load(std::memory_order_acquire) == 0) {
  }
  flag2.store(1, std::memory_order_release);
}

void t3() {
  while (flag2.load(std::memory_order_acquire) == 0) {
  }
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(t1, t2, t3);
  return data == 2 ? 0 : 1;
}
