// A hand-rolled CAS spinlock: lock = CAS 0->1 with acquire on success,
// unlock = release store. Both threads increment plain data under the
// lock; each unlock->lock pair is a release/acquire edge.
// Expected: no race.
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> lock{0};

void lock_acquire() {
  int expected = 0;
  while (!lock.compare_exchange_weak(expected, 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
    expected = 0;
  }
}

void lock_release() { lock.store(0, std::memory_order_release); }

void worker() {
  for (int i = 0; i < 100; i++) {
    lock_acquire();
    data = data + 1;
    lock_release();
  }
}
}  // namespace

int main() {
  litmus::run(worker, worker);
  return data == 200 ? 0 : 1;
}
