// Writer publishes correctly via a release fence + relaxed store, but
// the reader spins with relaxed loads and never issues the acquire fence
// that would complete the edge: the publication sits at the flag, unjoined.
// Expected: race (hidden under VFT_ATOMICS=sc, where the spin loads are
// upgraded to seq_cst).
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> flag{0};

void writer() {
  data = 1;
  std::atomic_thread_fence(std::memory_order_release);
  flag.store(1, std::memory_order_relaxed);
}

void reader() {
  while (flag.load(std::memory_order_relaxed) == 0) {
  }
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(writer, reader);
  return data == 2 ? 0 : 1;
}
