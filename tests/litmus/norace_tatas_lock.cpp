// Test-and-test-and-set lock built on exchange: spin on a relaxed read
// until the lock looks free, then try to grab it with an acquire
// exchange; unlock is a release store. The relaxed peek is fine - only
// the successful exchange is relied on for ordering.
// Expected: no race.
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> lock{0};

void lock_acquire() {
  for (;;) {
    while (lock.load(std::memory_order_relaxed) != 0) {
    }
    if (lock.exchange(1, std::memory_order_acquire) == 0) return;
  }
}

void lock_release() { lock.store(0, std::memory_order_release); }

void worker() {
  for (int i = 0; i < 100; i++) {
    lock_acquire();
    data = data + 1;
    lock_release();
  }
}
}  // namespace

int main() {
  litmus::run(worker, worker);
  return data == 200 ? 0 : 1;
}
