// Store buffering with nothing but atomics: each thread stores to its
// own atomic and loads the other's. There is no plain shared data at
// all, so whatever outcomes the memory model allows, no data race
// exists; the detector must stay quiet on atomic-atomic conflicts.
// (r0/r1 are word-sized so the two result writes land in distinct
// shadow words - plain-access granularity is 8 bytes.)
// Expected: no race.
#include <atomic>

#include "litmus.h"

namespace {
std::atomic<int> x{0};
std::atomic<int> y{0};
long r0 = -1;  // long: 4-byte ints would share an 8-byte shadow word
long r1 = -1;

void left() {
  x.store(1, std::memory_order_seq_cst);
  r0 = y.load(std::memory_order_seq_cst);
}

void right() {
  y.store(1, std::memory_order_seq_cst);
  r1 = x.load(std::memory_order_seq_cst);
}
}  // namespace

int main() {
  litmus::run(left, right);
  return (r0 | r1) >= 0 ? 0 : 1;
}
