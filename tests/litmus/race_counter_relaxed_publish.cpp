// The refcount shape from norace_counter_acq_rel with the fetch_add
// demoted to relaxed: the second bumper still *observes* the count but
// no longer joins the first bumper's clock, so its read of the other
// slot races with that slot's write.
// Expected: race.
#include <atomic>

#include "litmus.h"

namespace {
long slot0 = 0;
long slot1 = 0;
std::atomic<int> done{0};
long sum = 0;

void worker0() {
  slot0 = 1;
  if (done.fetch_add(1, std::memory_order_relaxed) == 1) sum = slot0 + slot1;
}

void worker1() {
  slot1 = 2;
  if (done.fetch_add(1, std::memory_order_relaxed) == 1) sum = slot0 + slot1;
}
}  // namespace

int main() {
  litmus::run(worker0, worker1);
  return (sum == 3 || sum == 0) ? 0 : 1;
}
