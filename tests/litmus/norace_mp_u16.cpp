// Message passing through a two-byte atomic flag: exercises the
// __tsan_atomic16_* entry points.
// Expected: no race.
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<unsigned short> flag{0};

void writer() {
  data = 1;
  flag.store(1, std::memory_order_release);
}

void reader() {
  while (flag.load(std::memory_order_acquire) == 0) {
  }
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(writer, reader);
  return data == 2 ? 0 : 1;
}
