// Fences on both sides around fully relaxed atomics: release fence +
// relaxed store on the writer, relaxed spin + acquire fence on the
// reader. The entire edge is carried by the two fences.
// Expected: no race.
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> flag{0};

void writer() {
  data = 1;
  std::atomic_thread_fence(std::memory_order_release);
  flag.store(1, std::memory_order_relaxed);
}

void reader() {
  while (flag.load(std::memory_order_relaxed) == 0) {
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(writer, reader);
  return data == 2 ? 0 : 1;
}
