// The CAS publication with both the success and failure orders demoted
// to relaxed: the flag flips, nothing is published.
// Expected: race (hidden under VFT_ATOMICS=sc).
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> flag{0};

void writer() {
  data = 1;
  int expected = 0;
  while (!flag.compare_exchange_weak(expected, 1, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
    expected = 0;
  }
}

void reader() {
  while (flag.load(std::memory_order_acquire) == 0) {
  }
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(writer, reader);
  return data == 2 ? 0 : 1;
}
