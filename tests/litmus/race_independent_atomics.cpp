// Atomics are not holy water: each thread does perfectly ordered seq_cst
// operations on its OWN private atomic, then both touch the same plain
// variable. The atomics never interact, so they create no edge between
// the threads and the plain accesses race regardless of order strength.
// Expected: race - in every atomics mode, including VFT_ATOMICS=sc.
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> a{0};
std::atomic<int> b{0};

void left() {
  a.store(1, std::memory_order_seq_cst);
  data = 1;
}

void right() {
  b.store(1, std::memory_order_seq_cst);
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(left, right);
  return data >= 1 ? 0 : 1;
}
