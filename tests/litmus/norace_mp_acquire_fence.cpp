// Fence-backed consumption: the reader spins with relaxed loads and only
// then issues an acquire fence. The fence must retroactively acquire the
// publication observed by the relaxed loads.
// Expected: no race.
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> flag{0};

void writer() {
  data = 1;
  flag.store(1, std::memory_order_release);
}

void reader() {
  while (flag.load(std::memory_order_relaxed) == 0) {
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(writer, reader);
  return data == 2 ? 0 : 1;
}
