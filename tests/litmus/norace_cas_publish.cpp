// Publication via compare_exchange: the writer CASes the flag 0->1 with
// release on success (relaxed on failure - it cannot fail here), the
// reader spins with acquire.
// Expected: no race.
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> flag{0};

void writer() {
  data = 1;
  int expected = 0;
  while (!flag.compare_exchange_weak(expected, 1, std::memory_order_release,
                                     std::memory_order_relaxed)) {
    expected = 0;
  }
}

void reader() {
  while (flag.load(std::memory_order_acquire) == 0) {
  }
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(writer, reader);
  return data == 2 ? 0 : 1;
}
