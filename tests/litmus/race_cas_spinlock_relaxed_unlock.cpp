// The CAS spinlock with the unlock demoted to a relaxed store: mutual
// exclusion still holds (the CAS itself is atomic), but the unlock no
// longer publishes the critical section, so the next lock holder's
// plain increment races with the previous one's.
// Expected: race.
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> lock{0};

void lock_acquire() {
  int expected = 0;
  while (!lock.compare_exchange_weak(expected, 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
    expected = 0;
  }
}

void lock_release() { lock.store(0, std::memory_order_relaxed); }

void worker() {
  for (int i = 0; i < 100; i++) {
    lock_acquire();
    data = data + 1;
    lock_release();
  }
}
}  // namespace

int main() {
  litmus::run(worker, worker);
  return data == 200 ? 0 : 1;
}
