// Reference-count shape: each thread writes its own plain slot, then
// bumps a shared counter with acq_rel fetch_add. Whichever thread sees
// the *second* bump (return value 1) has joined the other's clock and
// may read both slots.
// Expected: no race.
#include <atomic>

#include "litmus.h"

namespace {
long slot0 = 0;
long slot1 = 0;
std::atomic<int> done{0};
long sum = 0;

void worker0() {
  slot0 = 1;
  if (done.fetch_add(1, std::memory_order_acq_rel) == 1) sum = slot0 + slot1;
}

void worker1() {
  slot1 = 2;
  if (done.fetch_add(1, std::memory_order_acq_rel) == 1) sum = slot0 + slot1;
}
}  // namespace

int main() {
  litmus::run(worker0, worker1);
  return sum == 3 ? 0 : 1;
}
