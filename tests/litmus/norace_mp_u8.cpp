// Message passing through a one-byte atomic flag: exercises the
// __tsan_atomic8_* entry points rather than the 32-bit ones.
// Expected: no race (release/acquire ordering is width-independent).
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<unsigned char> flag{0};

void writer() {
  data = 1;
  flag.store(1, std::memory_order_release);
}

void reader() {
  while (flag.load(std::memory_order_acquire) == 0) {
  }
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(writer, reader);
  return data == 2 ? 0 : 1;
}
