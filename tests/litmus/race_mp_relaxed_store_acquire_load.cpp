// The mirror image: the reader spins with acquire, but the writer's store
// is relaxed and publishes nothing, so there is nothing to acquire.
// Expected: race (hidden under VFT_ATOMICS=sc).
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> flag{0};

void writer() {
  data = 1;
  flag.store(1, std::memory_order_relaxed);
}

void reader() {
  while (flag.load(std::memory_order_acquire) == 0) {
  }
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(writer, reader);
  return data == 2 ? 0 : 1;
}
