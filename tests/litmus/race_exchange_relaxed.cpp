// The exchange handoff with the RMW demoted to relaxed: the exchange
// still flips the flag but publishes nothing, so the reader's acquire
// has nothing to join.
// Expected: race (hidden under VFT_ATOMICS=sc).
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> flag{0};

void writer() {
  data = 1;
  flag.exchange(1, std::memory_order_relaxed);
}

void reader() {
  while (flag.load(std::memory_order_acquire) == 0) {
  }
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(writer, reader);
  return data == 2 ? 0 : 1;
}
