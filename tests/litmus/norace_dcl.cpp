// Double-checked initialization done right: fast path is an acquire load
// of the init flag; the slow path re-checks under a CAS-based lock and
// publishes with release. Whoever observes init==1 - on either check -
// is ordered after the initializer.
// Expected: no race.
#include <atomic>

#include "litmus.h"

namespace {
long value = 0;
std::atomic<int> init{0};
std::atomic<int> lock{0};
long observed[2] = {0, 0};

void ensure_init(int self) {
  if (init.load(std::memory_order_acquire) == 0) {
    int expected = 0;
    while (!lock.compare_exchange_weak(expected, 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      expected = 0;
    }
    if (init.load(std::memory_order_relaxed) == 0) {
      value = 42;
      init.store(1, std::memory_order_release);
    }
    lock.store(0, std::memory_order_release);
  }
  observed[self] = value;
}

void worker0() { ensure_init(0); }
void worker1() { ensure_init(1); }
}  // namespace

int main() {
  litmus::run(worker0, worker1);
  return (observed[0] == 42 && observed[1] == 42) ? 0 : 1;
}
