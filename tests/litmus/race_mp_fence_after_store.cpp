// A release fence in the wrong place: it comes *after* the relaxed store,
// so at the moment the flag flips nothing has been published. A fence
// only covers stores that follow it.
// Expected: race.
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> flag{0};

void writer() {
  data = 1;
  flag.store(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
}

void reader() {
  while (flag.load(std::memory_order_acquire) == 0) {
  }
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(writer, reader);
  return data == 2 ? 0 : 1;
}
