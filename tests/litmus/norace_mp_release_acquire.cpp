// Message passing, correctly ordered: writer publishes plain data with a
// release store, reader spins on an acquire load before touching it.
// Expected: no race (the release->acquire edge orders the plain accesses).
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> flag{0};

void writer() {
  data = 1;
  flag.store(1, std::memory_order_release);
}

void reader() {
  while (flag.load(std::memory_order_acquire) == 0) {
  }
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(writer, reader);
  return data == 2 ? 0 : 1;
}
