// The classic double-checked locking bug: the fast-path check is a
// relaxed load. A thread that skips the lock because it saw init==1 via
// the relaxed load is NOT ordered after the initializer's plain write,
// even though the initializer published with release.
// Expected: race. The reader spins until the flag is visible so the
// unsynchronized read happens in every execution.
#include <atomic>

#include "litmus.h"

namespace {
long value = 0;
std::atomic<int> init{0};
long observed = 0;

void initializer() {
  value = 42;
  init.store(1, std::memory_order_release);
}

void reader() {
  while (init.load(std::memory_order_relaxed) == 0) {
  }
  observed = value;
}
}  // namespace

int main() {
  litmus::run(initializer, reader);
  return observed == 42 ? 0 : 1;
}
