// Writer publishes with release, but the reader's spin uses a relaxed
// load: half an edge is no edge. The release store parks the writer's
// clock at the flag; nobody ever joins it.
// Expected: race (hidden under VFT_ATOMICS=sc).
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> flag{0};

void writer() {
  data = 1;
  flag.store(1, std::memory_order_release);
}

void reader() {
  while (flag.load(std::memory_order_relaxed) == 0) {
  }
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(writer, reader);
  return data == 2 ? 0 : 1;
}
