// A shared counter bumped with relaxed fetch_add from two threads, with
// no dependent plain data. Relaxed RMWs on the same atomic are always
// race-free with each other - the detector must not report atomic-atomic
// conflicts.
// Expected: no race.
#include <atomic>

#include "litmus.h"

namespace {
std::atomic<long> counter{0};

void bump() {
  for (int i = 0; i < 1000; i++) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace

int main() {
  litmus::run(bump, bump);
  return counter.load(std::memory_order_relaxed) == 2000 ? 0 : 1;
}
