// Relaxed message passing through a one-byte flag: the width-specific
// __tsan_atomic8_* entries must preserve the declared order too.
// Expected: race.
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<unsigned char> flag{0};

void writer() {
  data = 1;
  flag.store(1, std::memory_order_relaxed);
}

void reader() {
  while (flag.load(std::memory_order_relaxed) == 0) {
  }
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(writer, reader);
  return data == 2 ? 0 : 1;
}
