// The reader does everything right (relaxed spin + acquire fence), but
// the writer's store is relaxed with no release fence before it: nothing
// was ever published for the acquire fence to join.
// Expected: race.
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> flag{0};

void writer() {
  data = 1;
  flag.store(1, std::memory_order_relaxed);
}

void reader() {
  while (flag.load(std::memory_order_relaxed) == 0) {
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(writer, reader);
  return data == 2 ? 0 : 1;
}
