// Publication via exchange: the writer hands off data with an acq_rel
// exchange, the reader spins on an acquire load. RMWs must carry both a
// release (publish) and an acquire (join) half.
// Expected: no race.
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> flag{0};

void writer() {
  data = 1;
  flag.exchange(1, std::memory_order_acq_rel);
}

void reader() {
  while (flag.load(std::memory_order_acquire) == 0) {
  }
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(writer, reader);
  return data == 2 ? 0 : 1;
}
