// Fence-backed publication: a release *fence* followed by a relaxed store
// publishes everything the thread did before the fence. The reader's
// acquire load must pick that up even though the store itself is relaxed.
// Expected: no race.
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> flag{0};

void writer() {
  data = 1;
  std::atomic_thread_fence(std::memory_order_release);
  flag.store(1, std::memory_order_relaxed);
}

void reader() {
  while (flag.load(std::memory_order_acquire) == 0) {
  }
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(writer, reader);
  return data == 2 ? 0 : 1;
}
