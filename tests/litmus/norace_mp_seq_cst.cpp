// Message passing with seq_cst on both ends. seq_cst subsumes
// release/acquire, so the plain accesses are ordered.
// Expected: no race.
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> flag{0};

void writer() {
  data = 1;
  flag.store(1, std::memory_order_seq_cst);
}

void reader() {
  while (flag.load(std::memory_order_seq_cst) == 0) {
  }
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(writer, reader);
  return data == 2 ? 0 : 1;
}
