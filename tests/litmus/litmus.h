// Shared scaffolding for the litmus corpus: spawn the two (or three)
// sides of a shape as plain pthreads and join them all.
//
// Litmus programs are *unmodified* C++ atomics programs: no vft headers,
// no wrappers. They are compiled with `-fsanitize=thread` (compile-only)
// so the compiler replaces every std::atomic operation with a
// __tsan_atomic* call and every plain access with a __tsan_read*/write*
// call; libvft_preload supplies that surface (examples/native explains
// the build recipe). pthreads are used directly - std::thread would pull
// instrumented libstdc++ internals into every shape's baseline.
#ifndef VFT_TESTS_LITMUS_LITMUS_H_
#define VFT_TESTS_LITMUS_LITMUS_H_

#include <pthread.h>

namespace litmus {

using Fn = void (*)();

inline void* trampoline(void* p) {
  reinterpret_cast<Fn>(p)();
  return nullptr;
}

/// Run each body on its own thread; return after all have joined. The
/// bodies are unordered with each other (the only edges are the parent's
/// fork/join), which is the point: any cross-body ordering must come from
/// the shape's own atomics.
inline void run(Fn a, Fn b, Fn c = nullptr) {
  pthread_t ta, tb, tc;
  pthread_create(&ta, nullptr, trampoline, reinterpret_cast<void*>(a));
  pthread_create(&tb, nullptr, trampoline, reinterpret_cast<void*>(b));
  if (c != nullptr) {
    pthread_create(&tc, nullptr, trampoline, reinterpret_cast<void*>(c));
  }
  pthread_join(ta, nullptr);
  pthread_join(tb, nullptr);
  if (c != nullptr) pthread_join(tc, nullptr);
}

}  // namespace litmus

#endif  // VFT_TESTS_LITMUS_LITMUS_H_
