// Bit-flag publication: each writer sets its own plain slot and then ORs
// its bit into a shared mask with release; the reader spins until both
// bits are visible with acquire loads, then reads both slots.
// Expected: no race.
#include <atomic>

#include "litmus.h"

namespace {
long slot0 = 0;
long slot1 = 0;
std::atomic<unsigned> mask{0};
long sum = 0;

void writer0() {
  slot0 = 1;
  mask.fetch_or(1u, std::memory_order_release);
}

void writer1() {
  slot1 = 2;
  mask.fetch_or(2u, std::memory_order_release);
}

void reader() {
  while (mask.load(std::memory_order_acquire) != 3u) {
  }
  sum = slot0 + slot1;
}
}  // namespace

int main() {
  litmus::run(writer0, writer1, reader);
  return sum == 3 ? 0 : 1;
}
