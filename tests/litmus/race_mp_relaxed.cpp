// Message passing with relaxed on both ends: neither side contributes a
// synchronization edge, so the plain accesses are concurrent. The reader
// still spins until the flag flips, which makes the racy read determinate
// in program order without making it *ordered*.
// Expected: race. Under VFT_ATOMICS=sc (TSan-on-x86 style upgrade to
// seq_cst) the edge appears and the race is hidden - the A/B ctest case
// asserts exactly that.
#include <atomic>

#include "litmus.h"

namespace {
long data = 0;
std::atomic<int> flag{0};

void writer() {
  data = 1;
  flag.store(1, std::memory_order_relaxed);
}

void reader() {
  while (flag.load(std::memory_order_relaxed) == 0) {
  }
  data = data + 1;
}
}  // namespace

int main() {
  litmus::run(writer, reader);
  return data == 2 ? 0 : 1;
}
