// Small-scope serializability checking for the FT-CAS handlers - the
// implementation the paper describes as using "optimistic concurrency
// based on atomic CAS operations" with "subtle ordering issues". CIVL was
// never applied to FT-CAS (only to VerifiedFT-v2); this enumeration checks
// the same obligation for our reconstruction, including the race fail-over
// paths (force_read / force_write) and the locked share-inflation loop.
//
// Model: the packed 8-byte (R, W) word is one atomic cell (loads see both
// fields consistently; CAS compares and swaps both), V has one slot per
// thread, plus the VC mutex. Each handler follows ft_cas.h step for step,
// one shared-memory access (or CAS attempt) per step; local recomputation
// after a CAS failure is folded into the CAS step, exactly as
// compare_exchange returns the fresh value.
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <tuple>
#include <vector>

#include "vft/epoch.h"
#include "vft/vector_clock.h"

namespace vft {
namespace {

struct MState {
  Epoch R, W;  // the packed word's two halves (always accessed together)
  std::array<Epoch, 2> V{Epoch::bottom(0), Epoch::bottom(1)};
  int lock = -1;

  friend bool operator==(const MState&, const MState&) = default;
  friend auto operator<=>(const MState& a, const MState& b) {
    return std::tuple(a.R.bits(), a.W.bits(), a.V[0].bits(), a.V[1].bits(),
                      a.lock) <=> std::tuple(b.R.bits(), b.W.bits(),
                                             b.V[0].bits(), b.V[1].bits(),
                                             b.lock);
  }
};

enum Path : int {
  kPending = -1,
  kReadSame = 0,
  kReadSharedSame,
  kReadExcl,
  kReadShare,
  kReadShared,
  kWriteSame,
  kWriteExcl,
  kWriteShared,
};
constexpr int kRaceBit = 16;

struct Exec {
  bool is_write;
  int self;
  Epoch e;
  VectorClock stv;
  int pc = 0;
  Epoch lr, lw;  // snapshot of the packed word
  bool raced = false;
  int ret = kPending;

  bool done() const { return ret != kPending; }

  bool ordered(Epoch x) const { return leq(x, stv.get(x.tid())); }

  bool can_step(const MState& s) const {
    // Lock-acquisition pcs block while the lock is held.
    const bool is_acquire = pc == 10 || pc == 25 || pc == 30 || pc == 50;
    return !(is_acquire && s.lock != -1);
  }

  void load(const MState& s) {
    lr = s.R;
    lw = s.W;
  }

  /// Try CAS on the packed word: expected (lr, lw) -> (nr, nw). On failure
  /// refreshes (lr, lw), exactly like compare_exchange.
  bool cas(MState& s, Epoch nr, Epoch nw) {
    if (s.R == lr && s.W == lw) {
      s.R = nr;
      s.W = nw;
      return true;
    }
    load(s);
    return false;
  }

  void release(MState& s, Path p) {
    VFT_CHECK(s.lock == self);
    s.lock = -1;
    ret = p | (raced ? kRaceBit : 0);
  }

  void step(MState& s) { is_write ? step_write(s) : step_read(s); }

  // --- the read handler (ft_cas.h read + its locked/forced helpers) ---

  /// The lock-free dispatch over a fresh (lr, lw) snapshot.
  void read_branch() {
    if (lr == e) {
      ret = kReadSame | (raced ? kRaceBit : 0);
    } else if (lr.is_shared()) {
      pc = 1;  // try the V[self] fast path
    } else if (!ordered(lw)) {
      raced = true;
      pc = 20;  // force_read
    } else if (ordered(lr)) {
      pc = 3;  // lock-free [Read Exclusive] CAS
    } else {
      pc = 30;  // read_share_locked
    }
  }

  /// Dispatch inside read_share_locked's retry loop (lock held).
  void share_locked_branch() {
    if (!ordered(lw)) raced = true;
    if (lr.is_shared()) {
      pc = 12;  // just our slot
    } else if (lr == e) {
      pc = 13;  // defensive no-op exit (unreachable from feasible states)
    } else if (ordered(lr)) {
      pc = 32;  // exclusive CAS under the lock
    } else {
      pc = 34;  // inflate
    }
  }

  /// Dispatch inside force_read (race already recorded).
  void force_read_branch() {
    if (lr.is_shared()) {
      pc = 25;  // lock, set our slot
    } else if (ordered(lr)) {
      pc = 24;  // CAS R := e
    } else {
      pc = 25;  // lock, inflate without re-reporting
    }
  }

  void step_read(MState& s) {
    switch (pc) {
      case 0:  // initial atomic load of the packed word
        load(s);
        read_branch();
        return;
      case 1:  // lock-free V[self] probe ([Read Shared Same Epoch])
        if (s.V[self] == e) {
          ret = kReadSharedSame;
        } else {
          pc = 10;  // read_shared_locked
        }
        return;
      case 3:  // [Read Exclusive] CAS
        if (cas(s, e, lw)) {
          ret = kReadExcl | (raced ? kRaceBit : 0);
        } else {
          read_branch();  // fresh snapshot: full re-dispatch
        }
        return;
      // --- read_shared_locked ---
      case 10:
        VFT_CHECK(s.lock == -1);
        s.lock = self;
        pc = 11;
        return;
      case 11:
        load(s);  // locked re-read; R is SHARED and final
        VFT_CHECK(lr.is_shared());
        if (!ordered(lw)) raced = true;
        pc = 12;
        return;
      case 12:
        s.V[self] = e;
        pc = 13;
        return;
      case 13:
        release(s, kReadShared);
        return;
      // --- read_share_locked ---
      case 30:
        VFT_CHECK(s.lock == -1);
        s.lock = self;
        pc = 31;
        return;
      case 31:
        load(s);
        share_locked_branch();
        return;
      case 32:  // exclusive CAS under the lock
        if (cas(s, e, lw)) {
          pc = 33;
        } else {
          share_locked_branch();
        }
        return;
      case 33:
        release(s, kReadExcl);
        return;
      case 34:  // inflate 1/3: record the previous reader
        s.V[lr.tid()] = lr;
        pc = 35;
        return;
      case 35:  // inflate 2/3: record ourselves
        s.V[self] = e;
        pc = 36;
        return;
      case 36:  // inflate 3/3: publish SHARED via CAS
        if (cas(s, Epoch::shared(), lw)) {
          pc = 37;
        } else {
          share_locked_branch();
        }
        return;
      case 37:
        release(s, kReadShare);
        return;
      // --- force_read (raced already set) ---
      case 20:
        load(s);
        force_read_branch();
        return;
      case 24:  // CAS R := e (history ordered in the meantime)
        if (cas(s, e, lw)) {
          ret = kReadExcl | kRaceBit;
        } else {
          force_read_branch();
        }
        return;
      case 25:
        VFT_CHECK(s.lock == -1);
        s.lock = self;
        pc = 26;
        return;
      case 26:
        load(s);
        pc = lr.is_shared() ? 27 : 28;
        return;
      case 27:  // already shared: our slot, done
        s.V[self] = e;
        pc = 29;
        return;
      case 28:  // inflate without re-reporting
        s.V[lr.tid()] = lr;
        s.V[self] = e;  // (both under the lock; see ft_cas.h force_read)
        if (cas(s, Epoch::shared(), lw)) {
          pc = 29;
        } else {
          pc = 26;  // reload and retry
        }
        return;
      case 29:
        release(s, kReadShared);
        return;
      default:
        VFT_CHECK(false);
    }
  }

  // --- the write handler ---

  void write_branch() {
    if (lw == e) {
      ret = kWriteSame | (raced ? kRaceBit : 0);
    } else if (!ordered(lw)) {
      raced = true;
      pc = 40;  // force_write
    } else if (lr.is_shared()) {
      pc = 50;  // write_shared_locked
    } else if (!ordered(lr)) {
      raced = true;
      pc = 40;
    } else {
      pc = 5;  // lock-free [Write Exclusive] CAS
    }
  }

  void step_write(MState& s) {
    switch (pc) {
      case 0:
        load(s);
        write_branch();
        return;
      case 5:
        if (cas(s, lr, e)) {
          ret = kWriteExcl | (raced ? kRaceBit : 0);
        } else {
          write_branch();
        }
        return;
      // --- force_write: CAS W := e keeping whatever R is ---
      case 40:
        load(s);
        pc = 41;
        return;
      case 41:
        if (cas(s, lr, e)) {
          ret = kWriteExcl | kRaceBit;
        } else {
          pc = 41;  // lr/lw refreshed by cas(); try again
        }
        return;
      // --- write_shared_locked ---
      case 50:
        VFT_CHECK(s.lock == -1);
        s.lock = self;
        pc = 51;
        return;
      case 51:
        load(s);
        VFT_CHECK(lr.is_shared());  // SHARED is final
        if (!ordered(lw)) {
          raced = true;
          pc = 53;
        } else {
          pc = 52;
        }
        return;
      case 52:  // full VC check under the lock
        for (int i = 0; i < 2; ++i) {
          if (!leq(s.V[i], stv.get(static_cast<Tid>(i)))) raced = true;
        }
        pc = 53;
        return;
      case 53:  // publish (SHARED, e) via CAS retry
        if (cas(s, Epoch::shared(), e)) {
          pc = 54;
        } else {
          pc = 53;
        }
        return;
      case 54:
        release(s, kWriteShared);
        return;
      default:
        VFT_CHECK(false);
    }
  }
};

using Outcome = std::tuple<MState, int, int>;

void explore(const MState& s, const Exec& a, const Exec& b,
             std::set<Outcome>& out) {
  if (a.done() && b.done()) {
    out.emplace(s, a.ret, b.ret);
    return;
  }
  bool progressed = false;
  if (!a.done() && a.can_step(s)) {
    MState s2 = s;
    Exec a2 = a;
    a2.step(s2);
    explore(s2, a2, b, out);
    progressed = true;
  }
  if (!b.done() && b.can_step(s)) {
    MState s2 = s;
    Exec b2 = b;
    b2.step(s2);
    explore(s2, a, b2, out);
    progressed = true;
  }
  ASSERT_TRUE(progressed) << "deadlock in the FT-CAS model";
}

Outcome run_serial(MState s, Exec first, Exec second, bool a_first) {
  while (!first.done()) first.step(s);
  while (!second.done()) second.step(s);
  return a_first ? Outcome{s, first.ret, second.ret}
                 : Outcome{s, second.ret, first.ret};
}

// The headline finding of this test, mirroring the paper's motivation for
// the clean-slate redesign: FT-CAS is *behaviourally* correct but NOT
// strictly handler-serializable. Every interleaved execution ends in a
// final analysis state some serial order produces, and it reports a race
// exactly when a serial order would - but the *attribution* can differ:
// an interleaving may report the race from the reader's handler where the
// serial order reports it from the writer's (the racing pair is the same;
// the reporting site is not). VerifiedFT-v2 passes the strict check
// (serializability_test.cpp); FT-CAS only passes this weaker one. That is
// precisely the kind of "benign (but subtle) data race conditions" the
// paper says made the historical implementations so hard to verify.
TEST(SerializabilityFtCas, StateSerializableAndRaceVerdictConsistent) {
  const Epoch e0 = Epoch::make(0, 2);
  const Epoch e1 = Epoch::make(1, 2);
  const std::vector<Epoch> r_choices = {Epoch::bottom(0), Epoch::make(0, 1),
                                        e0, Epoch::make(1, 1), e1,
                                        Epoch::shared()};
  const std::vector<Epoch> w_choices = {Epoch::bottom(0), Epoch::make(0, 1),
                                        e0, Epoch::make(1, 1), e1};

  auto race_in = [](const Outcome& o) {
    return ((std::get<1>(o) | std::get<2>(o)) & kRaceBit) != 0;
  };
  auto state_of = [](const Outcome& o) { return std::get<0>(o); };

  std::size_t scenarios = 0, interleavings = 0;
  std::size_t strict_violations = 0;  // attribution differences (expected)
  for (const bool a_write : {false, true}) {
    for (const bool b_write : {false, true}) {
      for (const Epoch r0 : r_choices) {
        for (const Epoch w0 : w_choices) {
          for (const Clock v0 : {0u, 1u, 2u}) {
            for (const Clock v1 : {0u, 1u, 2u}) {
              for (const Clock k01 : {0u, 1u}) {
                for (const Clock k10 : {0u, 1u}) {
                  MState init;
                  init.R = r0;
                  init.W = w0;
                  init.V = {Epoch::make(0, v0), Epoch::make(1, v1)};

                  Exec a{a_write, 0, e0, {}, 0, {}, {}, false, kPending};
                  a.stv.set(0, e0);
                  a.stv.set(1, Epoch::make(1, k01));
                  Exec b{b_write, 1, e1, {}, 0, {}, {}, false, kPending};
                  b.stv.set(0, Epoch::make(0, k10));
                  b.stv.set(1, e1);

                  std::set<Outcome> outcomes;
                  explore(init, a, b, outcomes);
                  const Outcome ab = run_serial(init, a, b, true);
                  const Outcome ba = run_serial(init, b, a, false);
                  for (const Outcome& o : outcomes) {
                    // Weak (behavioural) serializability: final state from
                    // some serial order...
                    ASSERT_TRUE(state_of(o) == state_of(ab) ||
                                state_of(o) == state_of(ba))
                        << "FT-CAS final-state violation: a_write=" << a_write
                        << " b_write=" << b_write << " R=" << init.R.str()
                        << " W=" << init.W.str() << " k01=" << k01
                        << " k10=" << k10;
                    // ...and a race verdict some serial order produces.
                    ASSERT_TRUE(race_in(o) == race_in(ab) ||
                                race_in(o) == race_in(ba))
                        << "FT-CAS race-verdict violation: a_write=" << a_write
                        << " b_write=" << b_write << " R=" << init.R.str()
                        << " W=" << init.W.str();
                    // Strict handler atomicity: known not to hold.
                    if (!(o == ab || o == ba)) ++strict_violations;
                  }
                  ++scenarios;
                  interleavings += outcomes.size();
                }
              }
            }
          }
        }
      }
    }
  }
  EXPECT_EQ(scenarios, 4u * 6 * 5 * 3 * 3 * 2 * 2);
  EXPECT_GT(interleavings, scenarios);
  // Documented finding (see EXPERIMENTS.md E8): strict atomicity fails for
  // FT-CAS. If this ever becomes 0 the reconstruction stopped exhibiting
  // the historical behaviour - investigate before celebrating.
  EXPECT_GT(strict_violations, 0u);
}

}  // namespace
}  // namespace vft
