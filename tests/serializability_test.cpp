// Small-scope serializability checking for the VerifiedFT-v2 handlers:
// the testing analogue of the Section 6 CIVL proof.
//
// Each v2 read/write handler is decomposed into its atomic micro-steps
// (one shared-memory or lock operation per step, exactly following the
// Figure 4 code, including the lock-free pure blocks and the re-read of W
// under the lock). Two handlers by different threads are then run against
// a shared VarState model under *every* interleaving (DFS over step
// choices), from a swept set of initial analysis states. Serializability
// demands that every interleaved outcome - final VarState plus both
// handlers' rule/race verdicts - equals the outcome of one of the two
// serial executions (A then B, or B then A).
//
// This checks the same obligation CIVL discharges symbolically: the pure
// blocks are movers, the lock-protected sections reduce, and the one
// unlocked SHARED read commutes correctly with concurrent transitions.
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <tuple>
#include <vector>

#include "vft/epoch.h"
#include "vft/vector_clock.h"

namespace vft {
namespace {

// --- the shared VarState model -------------------------------------------

struct MState {
  Epoch R, W;
  std::array<Epoch, 2> V{Epoch::bottom(0), Epoch::bottom(1)};
  int lock = -1;  // -1 free, else owner thread index

  friend bool operator==(const MState&, const MState&) = default;
  friend auto operator<=>(const MState& a, const MState& b) {
    return std::tuple(a.R.bits(), a.W.bits(), a.V[0].bits(), a.V[1].bits(),
                      a.lock) <=> std::tuple(b.R.bits(), b.W.bits(),
                                             b.V[0].bits(), b.V[1].bits(),
                                             b.lock);
  }
};

// Handler outcome: which rule path completed, plus race flags.
enum Path : int {
  kPending = -1,
  kReadSame = 0,
  kReadSharedSame,
  kReadExcl,
  kReadShare,
  kReadShared,
  kWriteSame,
  kWriteExcl,
  kWriteShared,
};
constexpr int kRaceBit = 16;  // OR'ed onto the path when a race fired

// --- handler micro-step machines (Figure 4, one shared access per step) --

struct Exec {
  bool is_write;
  int self;          // 0 or 1
  Epoch e;           // current epoch of the executing thread
  VectorClock stv;   // the executing thread's clock (thread-local: fixed)
  int pc = 0;
  Epoch r_local, w_local;
  bool raced = false;
  int ret = kPending;
  /// Mutation knob for the checker's own validation: skip the locked
  /// re-read of W in the write handler (the bug the paper's "re-reads
  /// sx.W in case it has changed" sentence is about).
  bool skip_w_reread = false;
  /// Second mutation: publish R = SHARED *before* populating the V slots
  /// in [Read Share] - the ordering the comment in vft_v2.h's read handler
  /// insists on (lock-free readers must observe populated slots).
  bool publish_shared_early = false;

  bool done() const { return ret != kPending; }

  bool leq_vc(Epoch x) const { return leq(x, stv.get(x.tid())); }

  /// Whether the next step can run (only lock acquisition blocks).
  bool can_step(const MState& s) const {
    const int acquire_pc = is_write ? 1 : 2;
    return !(pc == acquire_pc && s.lock != -1);
  }

  void step(MState& s) {
    if (is_write) {
      step_write(s);
    } else {
      step_read(s);
    }
  }

  void finish(MState& s, Path p) {
    VFT_CHECK(s.lock == self);
    s.lock = -1;  // release
    ret = p | (raced ? kRaceBit : 0);
  }

  void step_read(MState& s) {
    switch (pc) {
      case 0:  // pure block: unlocked load of R
        r_local = s.R;
        if (r_local == e) {
          ret = kReadSame;
        } else if (r_local.is_shared()) {
          pc = 1;
        } else {
          pc = 2;
        }
        return;
      case 1:  // pure block: unlocked load of own V slot
        if (s.V[self] == e) {
          ret = kReadSharedSame;
        } else {
          pc = 2;
        }
        return;
      case 2:  // acquire
        VFT_CHECK(s.lock == -1);
        s.lock = self;
        pc = 3;
        return;
      case 3:  // locked load of W + write-read check
        w_local = s.W;
        if (!leq_vc(w_local)) raced = true;
        pc = 4;
        return;
      case 4:  // locked re-load of R + branch
        r_local = s.R;
        if (!r_local.is_shared()) {
          pc = leq_vc(r_local) ? 5 : 6;
        } else {
          pc = 9;
        }
        return;
      case 5:  // [Read Exclusive]: R := e
        s.R = e;
        pc = 10;
        return;
      case 6:  // [Read Share] 1/3: V[tid(r)] := r  (or, under the
               // publish_shared_early mutation, R := SHARED first)
        if (publish_shared_early) {
          s.R = Epoch::shared();
        } else {
          s.V[r_local.tid()] = r_local;
        }
        pc = 7;
        return;
      case 7:  // [Read Share] 2/3: V[self] := e
        if (publish_shared_early) s.V[r_local.tid()] = r_local;
        s.V[self] = e;
        pc = 8;
        return;
      case 8:  // [Read Share] 3/3: R := SHARED (already done if mutated)
        if (!publish_shared_early) s.R = Epoch::shared();
        pc = 11;
        return;
      case 9:  // [Read Shared]: V[self] := e
        s.V[self] = e;
        pc = 12;
        return;
      case 10:
        finish(s, kReadExcl);
        return;
      case 11:
        finish(s, kReadShare);
        return;
      case 12:
        finish(s, kReadShared);
        return;
      default:
        VFT_CHECK(false);
    }
  }

  void step_write(MState& s) {
    switch (pc) {
      case 0:  // pure block: unlocked load of W
        w_local = s.W;
        if (w_local == e) {
          ret = kWriteSame;
        } else {
          pc = 1;
        }
        return;
      case 1:  // acquire
        VFT_CHECK(s.lock == -1);
        s.lock = self;
        pc = 2;
        return;
      case 2:  // locked re-read of W + write-write check
        if (!skip_w_reread) w_local = s.W;  // mutation: use the stale value
        if (!leq_vc(w_local)) raced = true;
        pc = 3;
        return;
      case 3:  // locked load of R + branch
        r_local = s.R;
        if (!r_local.is_shared()) {
          if (!leq_vc(r_local)) raced = true;
          pc = 4;
        } else {
          pc = 5;
        }
        return;
      case 4:  // [Write Exclusive]: W := e
        s.W = e;
        pc = 7;
        return;
      case 5: {  // [Write Shared] check: V <= stv (reads under the lock)
        for (int i = 0; i < 2; ++i) {
          if (!leq(s.V[i], stv.get(static_cast<Tid>(i)))) raced = true;
        }
        pc = 6;
        return;
      }
      case 6:  // [Write Shared]: W := e (R stays SHARED)
        s.W = e;
        pc = 8;
        return;
      case 7:
        finish(s, kWriteExcl);
        return;
      case 8:
        finish(s, kWriteShared);
        return;
      default:
        VFT_CHECK(false);
    }
  }
};

// --- exploration ----------------------------------------------------------

using Outcome = std::tuple<MState, int, int>;  // final state, retA, retB

void explore(const MState& s, const Exec& a, const Exec& b,
             std::set<Outcome>& out) {
  if (a.done() && b.done()) {
    out.emplace(s, a.ret, b.ret);
    return;
  }
  bool progressed = false;
  if (!a.done() && a.can_step(s)) {
    MState s2 = s;
    Exec a2 = a;
    a2.step(s2);
    explore(s2, a2, b, out);
    progressed = true;
  }
  if (!b.done() && b.can_step(s)) {
    MState s2 = s;
    Exec b2 = b;
    b2.step(s2);
    explore(s2, a, b2, out);
    progressed = true;
  }
  // One side can always move: the only blocking step is lock acquisition,
  // and the lock is only ever held by a handler that will release it.
  ASSERT_TRUE(progressed) << "deadlock in the model";
}

Outcome run_serial(MState s, Exec first, Exec second, bool a_first) {
  while (!first.done()) first.step(s);
  while (!second.done()) second.step(s);
  return a_first ? Outcome{s, first.ret, second.ret}
                 : Outcome{s, second.ret, first.ret};
}

// --- the sweep -------------------------------------------------------------

TEST(SerializabilityV2, AllInterleavingsReduceToASerialOrder) {
  const Epoch e0 = Epoch::make(0, 2);
  const Epoch e1 = Epoch::make(1, 2);
  const std::vector<Epoch> r_choices = {Epoch::bottom(0), Epoch::make(0, 1),
                                        e0, Epoch::make(1, 1), e1,
                                        Epoch::shared()};
  const std::vector<Epoch> w_choices = {Epoch::bottom(0), Epoch::make(0, 1),
                                        e0, Epoch::make(1, 1), e1};

  std::size_t scenarios = 0, interleavings = 0;
  for (const bool a_write : {false, true}) {
    for (const bool b_write : {false, true}) {
      for (const Epoch r0 : r_choices) {
        for (const Epoch w0 : w_choices) {
          for (const Clock v0 : {0u, 1u, 2u}) {
            for (const Clock v1 : {0u, 1u, 2u}) {
              for (const Clock k01 : {0u, 1u}) {    // what t0 knows of t1
                for (const Clock k10 : {0u, 1u}) {  // what t1 knows of t0
                  MState init;
                  init.R = r0;
                  init.W = w0;
                  init.V = {Epoch::make(0, v0), Epoch::make(1, v1)};

                  Exec a{a_write, 0, e0, {}, 0, {}, {}, false, kPending};
                  a.stv.set(0, e0);
                  a.stv.set(1, Epoch::make(1, k01));
                  Exec b{b_write, 1, e1, {}, 0, {}, {}, false, kPending};
                  b.stv.set(0, Epoch::make(0, k10));
                  b.stv.set(1, e1);

                  std::set<Outcome> outcomes;
                  explore(init, a, b, outcomes);
                  const Outcome ab = run_serial(init, a, b, true);
                  const Outcome ba = run_serial(init, b, a, false);
                  for (const Outcome& o : outcomes) {
                    ASSERT_TRUE(o == ab || o == ba)
                        << "non-serializable interleaving: a_write="
                        << a_write << " b_write=" << b_write
                        << " R=" << init.R.str() << " W=" << init.W.str()
                        << " V=[" << init.V[0].str() << ","
                        << init.V[1].str() << "] k01=" << k01
                        << " k10=" << k10;
                  }
                  ++scenarios;
                  interleavings += outcomes.size();
                }
              }
            }
          }
        }
      }
    }
  }
  // Sanity: the sweep is not vacuous.
  EXPECT_EQ(scenarios, 4u * 6 * 5 * 3 * 3 * 2 * 2);
  EXPECT_GT(interleavings, scenarios);
}

// Checker self-validation: a deliberately broken write handler that skips
// the locked re-read of W (using the stale pure-block value) must produce
// a non-serializable interleaving somewhere in the sweep. If this test
// ever starts failing, the checker has gone vacuous.
TEST(SerializabilityV2, MutationWithoutLockedRereadIsCaught) {
  const Epoch e0 = Epoch::make(0, 2);
  const Epoch e1 = Epoch::make(1, 2);
  bool found_violation = false;
  for (const Epoch w0 : {Epoch::bottom(0), Epoch::make(0, 1), Epoch::make(1, 1)}) {
    MState init;
    init.W = w0;
    init.R = Epoch::bottom(0);
    Exec a{true, 0, e0, {}, 0, {}, {}, false, kPending, /*skip=*/true};
    a.stv.set(0, e0);
    Exec b{true, 1, e1, {}, 0, {}, {}, false, kPending, /*skip=*/true};
    b.stv.set(1, e1);
    std::set<Outcome> outcomes;
    explore(init, a, b, outcomes);
    const Outcome ab = run_serial(init, a, b, true);
    const Outcome ba = run_serial(init, b, a, false);
    for (const Outcome& o : outcomes) {
      if (!(o == ab || o == ba)) found_violation = true;
    }
  }
  EXPECT_TRUE(found_violation);
}

// Second mutation: [Read Share] publishing SHARED before populating the
// slots lets a concurrent lock-free reader consume a stale V entry - the
// sweep must find a non-serializable interleaving.
TEST(SerializabilityV2, MutationPublishSharedEarlyIsCaught) {
  const Epoch e0 = Epoch::make(0, 2);
  const Epoch e1 = Epoch::make(1, 2);
  bool found_violation = false;
  for (const Epoch r0 : {Epoch::make(0, 1), Epoch::make(1, 1)}) {
    for (const Clock v1 : {0u, 1u, 2u}) {
      MState init;
      init.R = r0;
      init.W = Epoch::bottom(0);
      init.V = {Epoch::bottom(0), Epoch::make(1, v1)};
      Exec a{false, 0, e0, {}, 0, {}, {}, false, kPending, false,
             /*publish_early=*/true};
      a.stv.set(0, e0);  // knows nothing of t1: will take [Read Share]
      Exec b{false, 1, e1, {}, 0, {}, {}, false, kPending, false,
             /*publish_early=*/true};
      b.stv.set(1, e1);
      std::set<Outcome> outcomes;
      explore(init, a, b, outcomes);
      const Outcome ab = run_serial(init, a, b, true);
      const Outcome ba = run_serial(init, b, a, false);
      for (const Outcome& o : outcomes) {
        if (!(o == ab || o == ba)) found_violation = true;
      }
    }
  }
  EXPECT_TRUE(found_violation);
}

}  // namespace
}  // namespace vft
