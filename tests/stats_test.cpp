// Rule-frequency accounting: the machinery behind experiment E3 (the
// Section 5 access-mix claim). Checks exact counts on hand traces and the
// fast-path dominance property on a read-shared workload.
#include "vft/stats.h"

#include <gtest/gtest.h>

#include "trace/replay.h"
#include "trace/trace.h"
#include "vft/detector.h"

namespace vft {
namespace {

TEST(RuleStats, CountsExactRulesOnHandTrace) {
  RaceCollector rc;
  RuleStats stats;
  VftV2 d(&rc, &stats);
  trace::Trace t;
  // A reads x three times in one epoch: exclusive, then 2x same-epoch.
  t.push_back(trace::rd(0, 0));
  t.push_back(trace::rd(0, 0));
  t.push_back(trace::rd(0, 0));
  // B joins the party: share, then shared-same-epoch.
  t.push_back(trace::rd(1, 0));
  t.push_back(trace::rd(1, 0));
  // A writes its own variable twice.
  t.push_back(trace::wr(0, 1));
  t.push_back(trace::wr(0, 1));
  trace::replay(t, d);
  EXPECT_EQ(stats.count(Rule::kReadExclusive), 1u);
  EXPECT_EQ(stats.count(Rule::kReadSameEpoch), 2u);
  EXPECT_EQ(stats.count(Rule::kReadShare), 1u);
  EXPECT_EQ(stats.count(Rule::kReadSharedSameEpoch), 1u);
  EXPECT_EQ(stats.count(Rule::kWriteExclusive), 1u);
  EXPECT_EQ(stats.count(Rule::kWriteSameEpoch), 1u);
  EXPECT_EQ(stats.total_accesses(), 7u);
}

TEST(RuleStats, SyncOpsCounted) {
  RaceCollector rc;
  RuleStats stats;
  VftV1 d(&rc, &stats);
  trace::Trace t = {trace::acq(0, 0), trace::rel(0, 0), trace::fork(0, 1),
                    trace::rd(1, 0), trace::join(0, 1)};
  trace::replay(t, d);
  EXPECT_EQ(stats.count(Rule::kAcquire), 1u);
  EXPECT_EQ(stats.count(Rule::kRelease), 1u);
  EXPECT_EQ(stats.count(Rule::kFork), 1u);
  EXPECT_EQ(stats.count(Rule::kJoin), 1u);
}

TEST(RuleStats, RaceRulesCounted) {
  RaceCollector rc;
  RuleStats stats;
  VftV2 d(&rc, &stats);
  trace::Trace t = {trace::wr(0, 0), trace::wr(1, 0)};
  trace::replay(t, d);
  EXPECT_EQ(stats.count(Rule::kWriteWriteRace), 1u);
}

TEST(RuleStats, ResetZeroesEverything) {
  RuleStats stats;
  stats.bump(Rule::kReadSameEpoch);
  stats.bump(Rule::kFork);
  stats.reset();
  EXPECT_EQ(stats.count(Rule::kReadSameEpoch), 0u);
  EXPECT_EQ(stats.count(Rule::kFork), 0u);
  EXPECT_EQ(stats.total_accesses(), 0u);
}

TEST(RuleStats, NullStatsPointerIsSafe) {
  RaceCollector rc;
  VftV2 d(&rc, nullptr);  // the default bench configuration
  trace::Trace t = {trace::rd(0, 0), trace::rd(0, 0)};
  const auto result = trace::replay(t, d);
  EXPECT_FALSE(result.first_race.has_value());
}

// Re-reading shared data within an epoch must funnel into the same-epoch
// fast rules - the property that makes v2's lock-free paths matter.
TEST(RuleStats, ReadSharedWorkloadIsFastPathDominated) {
  RaceCollector rc;
  RuleStats stats;
  VftV2 d(&rc, &stats);
  trace::Trace t;
  for (Tid th = 0; th < 4; ++th) {
    for (int rep = 0; rep < 50; ++rep) {
      for (VarId x = 0; x < 4; ++x) t.push_back(trace::rd(th, x));
    }
  }
  trace::replay(t, d);
  const std::uint64_t fast = stats.count(Rule::kReadSameEpoch) +
                             stats.count(Rule::kReadSharedSameEpoch) +
                             stats.count(Rule::kWriteSameEpoch);
  const std::uint64_t total = stats.total_accesses();
  EXPECT_GT(static_cast<double>(fast) / static_cast<double>(total), 0.9);
}

}  // namespace
}  // namespace vft
