// Instrumented thread pool: happens-before through submit / execution /
// wait_idle, clean shutdown, and race detection on unsynchronized task
// cross-talk.
#include <gtest/gtest.h>

#include "runtime/thread_pool.h"
#include "vft/detector.h"

namespace vft::rt {
namespace {

TEST(ThreadPool, ExecutesEverySubmittedTask) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  ThreadPool<VftV2> pool(R, 3);
  Mutex<VftV2> mu(R);
  Var<int, VftV2> done(R, 0);
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] {
      Guard<VftV2> g(mu);
      done.store(done.load() + 1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
  pool.shutdown();
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

TEST(ThreadPool, SubmitterHappensBeforeTask) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  ThreadPool<VftV2> pool(R, 2);
  Array<int, VftV2> inputs(R, 16, 0);
  Array<int, VftV2> outputs(R, 16, 0);
  for (int i = 0; i < 16; ++i) {
    inputs.store(static_cast<std::size_t>(i), i * 3);  // before submit
    pool.submit([&, i] {
      // Ordered after the submitter's write via the queue lock.
      outputs.store(static_cast<std::size_t>(i),
                    inputs.load(static_cast<std::size_t>(i)) + 1);
    });
  }
  pool.wait_idle();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(outputs.load(static_cast<std::size_t>(i)), i * 3 + 1);
  }
  pool.shutdown();
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

TEST(ThreadPool, WaitIdleOrdersTaskEffectsBeforeCaller) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  ThreadPool<VftV2> pool(R, 4);
  Array<long, VftV2> cells(R, 64, 0);
  for (std::size_t i = 0; i < 64; ++i) {
    pool.submit([&, i] { cells.store(i, static_cast<long>(i * i)); });
  }
  pool.wait_idle();
  long sum = 0;  // reads without locks: must be ordered by wait_idle
  for (std::size_t i = 0; i < 64; ++i) sum += cells.load(i);
  EXPECT_EQ(sum, 85344);  // sum of squares 0..63
  pool.shutdown();
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

TEST(ThreadPool, UnsynchronizedTaskCrosstalkIsReported) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  ThreadPool<VftV2> pool(R, 2);
  Var<int, VftV2> hot(R, 0);
  Barrier<VftV2> rendezvous(R, 2);
  // Two tasks forced in-flight simultaneously (the barrier makes the
  // overlap deterministic even on one core); their stores are unordered.
  for (int i = 0; i < 2; ++i) {
    pool.submit([&] {
      rendezvous.arrive_and_wait();
      hot.store(hot.load() + 1);  // no lock: races with the sibling task
    });
  }
  pool.wait_idle();
  pool.shutdown();
  EXPECT_GE(rc.count(), 1u);
}

TEST(ThreadPool, ShutdownIsIdempotentAndDrains) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  Var<int, VftV2> done(R, 0);
  Mutex<VftV2> mu(R);
  {
    ThreadPool<VftV2> pool(R, 2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&] {
        Guard<VftV2> g(mu);
        done.store(done.load() + 1);
      });
    }
    pool.shutdown();
    pool.shutdown();  // idempotent
    // Destructor runs shutdown() again: also a no-op.
  }
  EXPECT_EQ(done.load(), 20);  // drained before the workers exited
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

TEST(ThreadPool, WorksUnderEveryDetector) {
  const auto drive = [](auto tool) {
    using D = decltype(tool);
    RaceCollector rc;
    Runtime<D> R{D(&rc)};
    typename Runtime<D>::MainScope scope(R);
    ThreadPool<D> pool(R, 2);
    Mutex<D> mu(R);
    Var<int, D> done(R, 0);
    for (int i = 0; i < 12; ++i) {
      pool.submit([&] {
        Guard<D> g(mu);
        done.store(done.load() + 1);
      });
    }
    pool.wait_idle();
    pool.shutdown();
    EXPECT_EQ(done.load(), 12);
    EXPECT_TRUE(rc.empty());
  };
  drive(VftV1{});
  drive(VftV15{});
  drive(VftV2{});
  drive(FtMutex{});
  drive(FtCas{});
  drive(Djit{});
  drive(NullTool{});
}

}  // namespace
}  // namespace vft::rt
