// Trace generator: every generated trace is feasible (checked by the
// independent checker), deterministic in the seed, respects configuration,
// and fully disciplined configurations are race-free per the HB oracle.
#include "trace/generator.h"

#include <gtest/gtest.h>

#include "trace/feasibility.h"
#include "trace/hb_oracle.h"

namespace vft::trace {
namespace {

TEST(Generator, DeterministicInSeed) {
  GeneratorConfig cfg;
  cfg.seed = 99;
  EXPECT_EQ(generate(cfg), generate(cfg));
  cfg.seed = 100;
  const Trace other = generate(cfg);
  GeneratorConfig cfg99;
  cfg99.seed = 99;
  EXPECT_NE(generate(cfg99), other);
}

TEST(Generator, ProducesRequestedLength) {
  GeneratorConfig cfg;
  cfg.ops = 500;
  EXPECT_EQ(generate(cfg).size(), 500u);
}

struct GenParam {
  std::uint32_t initial;
  std::uint32_t forked;
  double disciplined;
  double sync;
};

class GeneratorSweep : public ::testing::TestWithParam<GenParam> {};

TEST_P(GeneratorSweep, AllTracesFeasible) {
  const GenParam p = GetParam();
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    GeneratorConfig cfg;
    cfg.initial_threads = p.initial;
    cfg.max_threads = p.forked;
    cfg.disciplined_fraction = p.disciplined;
    cfg.sync_fraction = p.sync;
    cfg.ops = 150;
    cfg.seed = seed;
    const Trace t = generate(cfg);
    const auto err = check_feasible(t);
    ASSERT_FALSE(err.has_value())
        << "seed " << seed << " op " << err->index << ": " << err->message
        << "\n" << to_string(t);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorSweep,
    ::testing::Values(GenParam{1, 0, 1.0, 0.2}, GenParam{2, 2, 1.0, 0.3},
                      GenParam{4, 4, 0.5, 0.5}, GenParam{3, 1, 0.0, 0.1},
                      GenParam{2, 6, 0.8, 0.9}, GenParam{8, 0, 0.7, 0.05}));

TEST(Generator, FullyDisciplinedTracesAreRaceFree) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    GeneratorConfig cfg;
    cfg.disciplined_fraction = 1.0;
    cfg.initial_threads = 4;
    cfg.max_threads = 3;
    cfg.ops = 200;
    cfg.seed = seed;
    const Trace t = generate(cfg);
    EXPECT_TRUE(analyze(t).race_free()) << to_string(t);
  }
}

TEST(Generator, UndisciplinedTracesUsuallyRace) {
  std::size_t racy = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    GeneratorConfig cfg;
    cfg.disciplined_fraction = 0.0;
    cfg.initial_threads = 4;
    cfg.vars = 2;
    cfg.ops = 100;
    cfg.seed = seed;
    if (!analyze(generate(cfg)).race_free()) ++racy;
  }
  EXPECT_GT(racy, 25u);  // almost all should race
}

TEST(Generator, ForksActuallyHappen) {
  GeneratorConfig cfg;
  cfg.initial_threads = 1;
  cfg.max_threads = 4;
  cfg.sync_fraction = 0.5;
  cfg.fork_join_fraction = 0.8;
  cfg.ops = 300;
  cfg.seed = 5;
  const Trace t = generate(cfg);
  std::size_t forks = 0, joins = 0;
  for (const Op& op : t) {
    forks += op.kind == OpKind::kFork ? 1 : 0;
    joins += op.kind == OpKind::kJoin ? 1 : 0;
  }
  EXPECT_GT(forks, 0u);
  EXPECT_GT(joins, 0u);
}

}  // namespace
}  // namespace vft::trace
