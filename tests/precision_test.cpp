// Theorem 3.1 (precision): a feasible trace is race-free iff the analysis
// accepts it (never transitions to Error). Validated differentially
// against the independent happens-before oracle over a seeded sweep of
// generator configurations - including the exact position of the first
// race, which must be the first access that races with an earlier one.
//
// Both rule sets are precise (the three VerifiedFT changes are
// precision-preserving), so the sweep runs the original FastTrack rules
// too.
#include <gtest/gtest.h>

#include "trace/feasibility.h"
#include "trace/generator.h"
#include "trace/hb_oracle.h"
#include "trace/replay.h"
#include "vft/spec.h"

namespace vft {
namespace {

using trace::GeneratorConfig;
using trace::Trace;

struct PrecisionParam {
  RuleSet rules;
  double disciplined;
  std::uint32_t threads;
  std::uint32_t forked;
  std::uint32_t vars;
};

class Precision : public ::testing::TestWithParam<PrecisionParam> {};

TEST_P(Precision, ErrorIffRaceAtSamePosition) {
  const PrecisionParam p = GetParam();
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    GeneratorConfig cfg;
    cfg.initial_threads = p.threads;
    cfg.max_threads = p.forked;
    cfg.vars = p.vars;
    cfg.ops = 200;
    cfg.disciplined_fraction = p.disciplined;
    cfg.seed = seed;
    const Trace t = trace::generate(cfg);
    ASSERT_TRUE(trace::is_feasible(t));

    const trace::HbResult oracle = trace::analyze(t);
    Spec spec(p.rules);
    const trace::SpecReplayResult run = trace::replay_spec(t, spec);

    ASSERT_EQ(oracle.race_free(), !run.error_index.has_value())
        << "seed " << seed << ": " << trace::to_string(t);
    if (!oracle.race_free()) {
      // Precision is positional: the analysis must flag exactly the first
      // racing access, neither earlier (false positive on a race-free
      // prefix) nor later (missed race).
      EXPECT_EQ(*run.error_index, oracle.first_race->second)
          << "seed " << seed << ": " << trace::to_string(t);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    VerifiedFTRules, Precision,
    ::testing::Values(PrecisionParam{RuleSet::kVerifiedFT, 1.0, 3, 2, 8},
                      PrecisionParam{RuleSet::kVerifiedFT, 0.9, 4, 2, 6},
                      PrecisionParam{RuleSet::kVerifiedFT, 0.7, 2, 4, 6},
                      PrecisionParam{RuleSet::kVerifiedFT, 0.4, 4, 0, 4},
                      PrecisionParam{RuleSet::kVerifiedFT, 0.0, 2, 2, 3}));

INSTANTIATE_TEST_SUITE_P(
    OriginalFTRules, Precision,
    ::testing::Values(PrecisionParam{RuleSet::kOriginalFastTrack, 1.0, 3, 2, 8},
                      PrecisionParam{RuleSet::kOriginalFastTrack, 0.8, 4, 2, 6},
                      PrecisionParam{RuleSet::kOriginalFastTrack, 0.5, 3, 3, 5},
                      PrecisionParam{RuleSet::kOriginalFastTrack, 0.0, 2, 2, 3}));

// The two rule sets agree on where the first race is (they differ only in
// bookkeeping ahead of races, not in what counts as one).
TEST(Precision, RuleSetsAgreeOnFirstRace) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    GeneratorConfig cfg;
    cfg.initial_threads = 4;
    cfg.max_threads = 2;
    cfg.disciplined_fraction = 0.6;
    cfg.ops = 200;
    cfg.seed = seed;
    const Trace t = trace::generate(cfg);
    Spec vft(RuleSet::kVerifiedFT);
    Spec oft(RuleSet::kOriginalFastTrack);
    EXPECT_EQ(trace::replay_spec(t, vft).error_index,
              trace::replay_spec(t, oft).error_index)
        << trace::to_string(t);
  }
}

}  // namespace
}  // namespace vft
