// Unit tests for the bit-packed epoch representation (paper Section 3
// epoch algebra; Figure 3 lines 9-14).
#include "vft/epoch.h"

#include <gtest/gtest.h>

namespace vft {
namespace {

TEST(Epoch, DefaultIsBottom) {
  const Epoch e;
  EXPECT_FALSE(e.is_shared());
  EXPECT_EQ(e.tid(), 0u);
  EXPECT_EQ(e.clock(), 0u);
}

TEST(Epoch, MakeRoundTripsTidAndClock) {
  const Epoch e = Epoch::make(13, 4711);
  EXPECT_EQ(e.tid(), 13u);
  EXPECT_EQ(e.clock(), 4711u);
  EXPECT_FALSE(e.is_shared());
}

TEST(Epoch, ExtremesFitThePacking) {
  const Epoch e = Epoch::make(Epoch::kMaxTid, Epoch::kMaxClock);
  EXPECT_EQ(e.tid(), Epoch::kMaxTid);
  EXPECT_EQ(e.clock(), Epoch::kMaxClock);
}

TEST(Epoch, SharedIsDistinctFromEveryRealEpoch) {
  const Epoch s = Epoch::shared();
  EXPECT_TRUE(s.is_shared());
  // SHARED is all-ones; a real epoch can never equal it because the max
  // representable tid/clock are one below the field maxima.
  EXPECT_NE(s, Epoch::make(Epoch::kMaxTid, Epoch::kMaxClock));
  EXPECT_NE(s, Epoch());
}

TEST(Epoch, BottomPerThread) {
  const Epoch b = Epoch::bottom(7);
  EXPECT_EQ(b.tid(), 7u);
  EXPECT_EQ(b.clock(), 0u);
}

TEST(Epoch, LeqComparesClocksWithinAThread) {
  EXPECT_TRUE(leq(Epoch::make(3, 5), Epoch::make(3, 5)));
  EXPECT_TRUE(leq(Epoch::make(3, 5), Epoch::make(3, 6)));
  EXPECT_FALSE(leq(Epoch::make(3, 6), Epoch::make(3, 5)));
  EXPECT_TRUE(leq(Epoch::bottom(3), Epoch::make(3, 0)));
}

TEST(Epoch, MaxTakesTheLargerClock) {
  EXPECT_EQ(max(Epoch::make(2, 9), Epoch::make(2, 4)), Epoch::make(2, 9));
  EXPECT_EQ(max(Epoch::make(2, 4), Epoch::make(2, 9)), Epoch::make(2, 9));
  EXPECT_EQ(max(Epoch::make(2, 4), Epoch::make(2, 4)), Epoch::make(2, 4));
}

TEST(Epoch, IncAdvancesClockOnly) {
  const Epoch e = Epoch::make(9, 41).inc();
  EXPECT_EQ(e.tid(), 9u);
  EXPECT_EQ(e.clock(), 42u);
}

TEST(Epoch, IncOverflowAborts) {
  const Epoch e = Epoch::make(1, Epoch::kMaxClock);
  EXPECT_DEATH((void)e.inc(), "VFT_CHECK");
}

TEST(Epoch, BitsRoundTrip) {
  const Epoch e = Epoch::make(200, 12345);
  EXPECT_EQ(Epoch::from_bits(e.bits()), e);
}

TEST(Epoch, StrFormatsTidAtClock) {
  EXPECT_EQ(Epoch::make(4, 17).str(), "4@17");
  EXPECT_EQ(Epoch::shared().str(), "SHARED");
}

TEST(Epoch, OrderingIsTotalPerThread) {
  // Property sweep: leq agrees with clock comparison for many pairs.
  for (Clock a = 0; a < 50; a += 7) {
    for (Clock b = 0; b < 50; b += 5) {
      EXPECT_EQ(leq(Epoch::make(6, a), Epoch::make(6, b)), a <= b);
    }
  }
}

}  // namespace
}  // namespace vft
