// Registry lifecycle hardening: exhaustion of the tid space, double
// retirement, and events from unregistered threads must all produce
// actionable fatal diagnostics (or graceful degradation on the
// try_create path) instead of bare assertion aborts.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/tool.h"
#include "vft/vft_v2.h"

namespace vft::rt {
namespace {

TEST(RegistryLifecycle, TryCreateReturnsNullWhenTidSpaceIsExhausted) {
  Registry reg;
  std::vector<ThreadState*> all;
  for (std::uint32_t i = 0; i <= Epoch::kMaxTid; ++i) {
    ThreadState* ts = reg.try_create();
    ASSERT_NE(ts, nullptr) << "slot " << i;
    all.push_back(ts);
  }
  EXPECT_EQ(reg.live_count(), Epoch::kMaxTid + 1u);
  // Every tid in [0, kMaxTid] is live: the next allocation must degrade,
  // not abort.
  EXPECT_EQ(reg.try_create(), nullptr);
  EXPECT_EQ(reg.slots_in_use(), Epoch::kMaxTid + 1u);

  // Retiring any slot makes allocation possible again, with the same tid.
  const Tid freed = all[17]->t;
  reg.retire(*all[17]);
  ThreadState* reused = reg.try_create();
  ASSERT_NE(reused, nullptr);
  EXPECT_EQ(reused->t, freed);
  EXPECT_EQ(reg.slots_in_use(), Epoch::kMaxTid + 1u);
}

TEST(RegistryLifecycleDeathTest, CreateDiesActionablyOnExhaustion) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Registry reg;
        for (std::uint32_t i = 0; i <= Epoch::kMaxTid + 1u; ++i) {
          reg.create();
        }
      },
      "thread registry exhausted.*Join or detach finished threads");
}

TEST(RegistryLifecycleDeathTest, DoubleRetireIsRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Registry reg;
        ThreadState& ts = reg.create();
        reg.retire(ts);
        reg.retire(ts);
      },
      "double retire of thread slot");
}

TEST(RegistryLifecycleDeathTest, RetireAfterReuseRejectsTheStalePredecessor) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Registry reg;
        ThreadState& first = reg.create();
        reg.retire(first);
        // The successor takes the same tid; retiring through the *stale*
        // state must not free the live slot under it. (The predecessor
        // object itself stays alive inside the registry, so this is not
        // a use-after-free - just a lifecycle protocol violation.)
        ThreadState* second = reg.try_create();
        ASSERT_NE(second, nullptr);
        reg.retire(first);
      },
      "double retire of thread slot");
}

TEST(RegistryLifecycleDeathTest, SelfOnUnregisteredThreadSaysHowToAttach) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        RaceCollector races;
        Runtime<VftV2> rt{VftV2(&races)};
        // No MainScope, no bind: a handler asking for "self" is target
        // integration misuse and the message must point at the fixes.
        (void)rt.self();
      },
      "unregistered thread.*MainScope.*C ABI");
}

TEST(RegistryLifecycle, LiveCountTracksChurn) {
  Registry reg;
  ThreadState& main_ts = reg.create();
  EXPECT_EQ(reg.live_count(), 1u);
  for (int round = 0; round < 3 * (Epoch::kMaxTid + 1); ++round) {
    ThreadState* worker = reg.try_create();
    ASSERT_NE(worker, nullptr);
    EXPECT_EQ(reg.live_count(), 2u);
    reg.retire(*worker);
    EXPECT_EQ(reg.live_count(), 1u);
  }
  // Total threads over the registry's lifetime far exceeded the tid
  // space; the allocated-slot footprint never did.
  EXPECT_EQ(reg.slots_in_use(), 2u);
  reg.retire(main_ts);
  EXPECT_EQ(reg.live_count(), 0u);
}

}  // namespace
}  // namespace vft::rt
