// Dynamic-granularity shadow: coarse while thread-exclusive, split on
// sharing, per-element precision afterwards - including the property that
// distinguishes it from CoarseArray: disjoint-element access by two
// threads after a quiescent split point raises no false alarm.
#include <gtest/gtest.h>

#include "runtime/adaptive_array.h"
#include "runtime/instrument.h"
#include "vft/vft_v2.h"

namespace vft::rt {
namespace {

TEST(AdaptiveArray, LoadStoreRoundTrip) {
  Runtime<VftV2> R{VftV2{}};
  Runtime<VftV2>::MainScope scope(R);
  AdaptiveArray<int, VftV2> a(R, 64, 16, -5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.load(i), -5);
    a.store(i, static_cast<int>(i));
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.load(i), static_cast<int>(i));
  }
}

TEST(AdaptiveArray, ExclusiveUseNeverSplits) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  AdaptiveArray<int, VftV2> a(R, 256, 32);
  for (int round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < a.size(); ++i) a.store(i, round);
  }
  EXPECT_EQ(a.split_count(), 0u);  // single owner: stays coarse
  EXPECT_TRUE(rc.empty());
}

TEST(AdaptiveArray, DisjointSlicesSplitOnlySharedGranules) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  constexpr std::size_t kN = 128, kG = 32;  // 4 granules
  AdaptiveArray<int, VftV2> a(R, kN, kG);
  // Worker 0 owns granules 0-1, worker 1 owns granules 2-3: aligned, so
  // nothing splits and nothing reports.
  parallel_for_threads(R, 2, [&](std::uint32_t w) {
    for (std::size_t i = w * 64; i < (w + 1) * 64; ++i) {
      a.store(i, static_cast<int>(w));
    }
  });
  EXPECT_EQ(a.split_count(), 0u);
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

TEST(AdaptiveArray, UnalignedDisjointAccessSplitsWithoutFalseAlarm) {
  // The CoarseArray false-alarm scenario, now handled: main touches the
  // granule, then (after a quiescent handoff) a child touches *different*
  // elements of it. The granule splits; the pre-split history is ordered
  // by the fork edge, so no report.
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  AdaptiveArray<int, VftV2> a(R, 8, 8);  // one granule
  a.store(0, 1);  // main claims the granule
  Thread<VftV2> t(R, [&] {
    a.store(7, 2);  // second thread: split, ordered by fork
    a.store(6, 3);
  });
  t.join();
  EXPECT_EQ(a.split_count(), 1u);
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
  EXPECT_EQ(a.raw(0), 1);
  EXPECT_EQ(a.raw(7), 2);
}

TEST(AdaptiveArray, PostSplitDisjointConcurrencyIsPrecise) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  AdaptiveArray<int, VftV2> a(R, 16, 16);
  a.store(0, 9);  // main owns the granule
  // Two children write disjoint elements concurrently: the first one in
  // splits; element-level shadows keep the pair race-free.
  Thread<VftV2> t1(R, [&] { a.store(3, 1); });
  Thread<VftV2> t2(R, [&] { a.store(12, 2); });
  t1.join();
  t2.join();
  EXPECT_EQ(a.split_count(), 1u);
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

TEST(AdaptiveArray, RealRacesStillCaughtAfterSplit) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  AdaptiveArray<int, VftV2> a(R, 16, 16);
  a.store(5, 0);
  Thread<VftV2> t1(R, [&] { a.store(5, 1); });  // same element
  Thread<VftV2> t2(R, [&] { a.store(5, 2); });
  t1.join();
  t2.join();
  EXPECT_GE(rc.count(), 1u);  // t1 vs t2 on element 5
}

TEST(AdaptiveArray, PreSplitHistoryIsRemembered) {
  // Owner writes, then a *concurrent* (unordered) thread touches the
  // granule: the split inherits the owner's write epoch, so the race with
  // the pre-split write is still detected even though it happened at
  // coarse granularity.
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  AdaptiveArray<int, VftV2> a(R, 8, 8);
  Barrier<VftV2> sync(R, 2);
  parallel_for_threads(R, 2, [&](std::uint32_t w) {
    if (w == 0) {
      a.store(0, 1);  // claims the granule
      sync.arrive_and_wait();
    } else {
      sync.arrive_and_wait();
      // Ordered *after* w0's store by the barrier... but then write
      // element 0 again from a third epoch after an unordered region:
      a.store(0, 2);  // ordered: no race yet
    }
  });
  EXPECT_TRUE(rc.empty());
  // Now a genuinely unordered access to the pre-split-written element.
  Thread<VftV2> t1(R, [&] { a.store(0, 3); });
  Thread<VftV2> t2(R, [&] { a.store(0, 4); });
  t1.join();
  t2.join();
  EXPECT_GE(rc.count(), 1u);
}

TEST(AdaptiveArray, MemoryStaysCoarseUntilSharing) {
  Runtime<VftV2> R{VftV2{}};
  Runtime<VftV2>::MainScope scope(R);
  AdaptiveArray<std::uint64_t, VftV2> a(R, 1 << 12, 64);
  for (std::size_t i = 0; i < a.size(); ++i) a.store(i, i);
  EXPECT_EQ(a.split_count(), 0u);  // 4096 elements, 64 shadow states
}

}  // namespace
}  // namespace vft::rt
