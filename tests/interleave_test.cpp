// Exhaustive small-scope precision: for curated program templates,
// enumerate EVERY feasible schedule, and on each one require full
// agreement between the happens-before oracle, the specification, and all
// six detectors - the exhaustive companion to the randomized Theorem 3.1
// sweeps (no schedule of these programs can hide a disagreement).
#include <gtest/gtest.h>

#include "trace/feasibility.h"
#include "trace/hb_oracle.h"
#include "trace/interleave.h"
#include "trace/replay.h"
#include "vft/detector.h"

namespace vft::trace {
namespace {

// The Op helpers' tid field is overwritten by the enumerator; 0 is fine.
constexpr Tid kAny = 0;

std::size_t check_all_schedules(std::vector<ThreadProgram> programs,
                                std::size_t* racy_out = nullptr) {
  std::size_t racy = 0;
  const std::size_t n = for_each_interleaving(
      std::move(programs), [&](const Trace& t) {
        ASSERT_TRUE(is_feasible(t)) << to_string(t);
        const HbResult oracle = analyze(t);
        ASSERT_EQ(oracle.race_free(), analyze_closure(t).race_free())
            << to_string(t);
        Spec spec;
        const SpecReplayResult sr = replay_spec(t, spec);
        ASSERT_EQ(!oracle.race_free(), sr.error_index.has_value())
            << to_string(t);
        if (!oracle.race_free()) {
          ASSERT_EQ(*sr.error_index, oracle.first_race->second)
              << to_string(t);
          ++racy;
        }
        for_each_detector(nullptr, nullptr, [&](auto& d) {
          using D = std::decay_t<decltype(d)>;
          const ReplayResult run = replay(t, d);
          ASSERT_EQ(run.first_race, sr.error_index)
              << D::kName << " on " << to_string(t);
        });
      });
  if (racy_out != nullptr) *racy_out = racy;
  return n;
}

TEST(Interleave, EnumeratesAllMergesOfIndependentThreads) {
  // 3 ops and 2 ops with no blocking: C(5,2) = 10 schedules.
  std::size_t count = 0;
  for_each_interleaving(
      {{rd(kAny, 0), rd(kAny, 0), rd(kAny, 0)}, {rd(kAny, 1), rd(kAny, 1)}},
      [&](const Trace& t) {
        ++count;
        EXPECT_EQ(t.size(), 5u);
      });
  EXPECT_EQ(count, 10u);
}

TEST(Interleave, LockBlockingPrunesInfeasibleSchedules) {
  // Both threads do acq(m); x; rel(m): critical sections cannot overlap.
  std::size_t count = 0;
  for_each_interleaving(
      {{acq(kAny, 0), wr(kAny, 0), rel(kAny, 0)},
       {acq(kAny, 0), wr(kAny, 0), rel(kAny, 0)}},
      [&](const Trace& t) {
        ++count;
        EXPECT_TRUE(is_feasible(t)) << to_string(t);
      });
  EXPECT_EQ(count, 2u);  // A-then-B or B-then-A, nothing else
}

TEST(Interleave, ForkGatesChildOps) {
  // Thread 0 forks thread 1 after its own write: the child's ops can never
  // precede the fork.
  std::size_t count = 0;
  for_each_interleaving({{wr(kAny, 0), fork(kAny, 1)}, {rd(kAny, 0)}},
                        [&](const Trace& t) {
                          ++count;
                          ASSERT_EQ(t.size(), 3u);
                          EXPECT_EQ(t[2], rd(1, 0));  // always last
                        });
  EXPECT_EQ(count, 1u);
}

TEST(Interleave, JoinWaitsForTargetCompletion) {
  std::size_t count = 0;
  for_each_interleaving(
      {{fork(kAny, 1), join(kAny, 1), rd(kAny, 0)}, {wr(kAny, 0)}},
      [&](const Trace& t) {
        ++count;
        EXPECT_TRUE(is_feasible(t)) << to_string(t);
        EXPECT_TRUE(analyze(t).race_free());  // fully ordered program
      });
  EXPECT_EQ(count, 1u);
}

// --- exhaustive precision over program templates ---

TEST(InterleaveExhaustive, UnlockedConflictRacesUnderEverySchedule) {
  std::size_t racy = 0;
  const std::size_t n = check_all_schedules(
      {{wr(kAny, 0), rd(kAny, 0)}, {wr(kAny, 0)}}, &racy);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(racy, n);  // every schedule has the unordered pair
}

TEST(InterleaveExhaustive, FullyLockedProgramNeverRaces) {
  std::size_t racy = 0;
  const std::size_t n = check_all_schedules(
      {{acq(kAny, 0), wr(kAny, 5), rd(kAny, 5), rel(kAny, 0)},
       {acq(kAny, 0), wr(kAny, 5), rel(kAny, 0)},
       {acq(kAny, 0), rd(kAny, 5), rel(kAny, 0)}},
      &racy);
  EXPECT_EQ(n, 6u);  // 3! critical-section orders
  EXPECT_EQ(racy, 0u);
}

TEST(InterleaveExhaustive, HalfLockedProgramRacesOnSomeSchedulesOnly) {
  // Thread 1's read is unlocked: schedules where it lands inside/around
  // thread 0's critical section race; sequentialized ones may not.
  std::size_t racy = 0;
  const std::size_t n = check_all_schedules(
      {{acq(kAny, 0), wr(kAny, 7), rel(kAny, 0)}, {rd(kAny, 7)}}, &racy);
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(racy, n);  // no lock on the reader: every schedule races
}

TEST(InterleaveExhaustive, VolatilePublicationRacesOnlyWhenReadTooEarly) {
  std::size_t racy = 0;
  const std::size_t n = check_all_schedules(
      {{wr(kAny, 3), vwr(kAny, 1)}, {vrd(kAny, 1), rd(kAny, 3)}}, &racy);
  EXPECT_EQ(n, 6u);
  // Race-free iff the volatile read lands after the volatile write AND the
  // data read after the volatile read: exactly the schedules where t1 runs
  // entirely after t0's vwr... count: schedules of (w v | R r) where v
  // precedes R: t0 fully first (1), or w, v interleaved before R: w v R r
  // orders with v<R: enumerate: sequences of merges (C(4,2)=6): wvRr ok;
  // wRvr race; wRrv race; Rwvr race; Rrwv race; Rwrv race => 1 race-free.
  EXPECT_EQ(racy, n - 1);
}

TEST(InterleaveExhaustive, ForkJoinDiamondAlwaysRaceFree) {
  std::size_t racy = 0;
  const std::size_t n = check_all_schedules(
      {{wr(kAny, 0), fork(kAny, 1), fork(kAny, 2), join(kAny, 1),
        join(kAny, 2), rd(kAny, 0), rd(kAny, 1), rd(kAny, 2)},
       {wr(kAny, 1), rd(kAny, 0)},
       {wr(kAny, 2), rd(kAny, 0)}},
      &racy);
  EXPECT_GT(n, 1u);
  EXPECT_EQ(racy, 0u);  // siblings touch disjoint vars; parent is ordered
}

TEST(InterleaveExhaustive, SiblingConflictRacesUnderEverySchedule) {
  std::size_t racy = 0;
  const std::size_t n = check_all_schedules(
      {{fork(kAny, 1), fork(kAny, 2), join(kAny, 1), join(kAny, 2)},
       {wr(kAny, 9)},
       {wr(kAny, 9)}},
      &racy);
  EXPECT_GT(n, 1u);
  EXPECT_EQ(racy, n);
}

TEST(InterleaveExhaustive, ReadSharedThenOrderedWriteMatrix) {
  // Two concurrent readers, then a writer ordered after both via the lock
  // protocol: races exactly when the writer's acquire precedes a reader's
  // release pairing. Rather than predict the count, require only full
  // verdict agreement (the check_all_schedules body) plus both kinds
  // being present.
  std::size_t racy = 0;
  const std::size_t n = check_all_schedules(
      {{rd(kAny, 0), acq(kAny, 1), rel(kAny, 1)},
       {rd(kAny, 0), acq(kAny, 1), rel(kAny, 1)},
       {acq(kAny, 1), rel(kAny, 1), acq(kAny, 1), rel(kAny, 1),
        wr(kAny, 0)}},
      &racy);
  EXPECT_GT(n, 50u);
  EXPECT_GT(racy, 0u);
  EXPECT_LT(racy, n);
}

}  // namespace
}  // namespace vft::trace
