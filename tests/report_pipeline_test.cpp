// The report pipeline above the collector: suppression rules and their
// valgrind-like grammar, JSON escaping/parsing, the v2 document model
// (render -> parse round trips), fleet merge determinism, and the
// structural skeleton used as the CI golden.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "vft/report.h"
#include "vft/report_io.h"
#include "vft/suppress.h"

namespace vft {
namespace {

using reportio::ReportDoc;

// ---------------------------------------------------------------------
// Glob matching.
// ---------------------------------------------------------------------

TEST(GlobMatch, Basics) {
  EXPECT_TRUE(glob_match("abc", "abc"));
  EXPECT_FALSE(glob_match("abc", "abd"));
  EXPECT_TRUE(glob_match("a?c", "abc"));
  EXPECT_FALSE(glob_match("a?c", "ac"));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("lib*.so", "libserver.so"));
  EXPECT_FALSE(glob_match("lib*.so", "libserver.so.1"));
  EXPECT_TRUE(glob_match("*race*", "write-write race"));
  EXPECT_TRUE(glob_match("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(glob_match("a*b*c", "aXXcYYb"));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("", ""));
}

// ---------------------------------------------------------------------
// Suppression grammar and matching.
// ---------------------------------------------------------------------

ResolvedFrame frame(const char* module, const char* symbol) {
  ResolvedFrame f;
  f.pc = 0x1000;
  f.module = module;
  f.offset = 0x10;
  f.symbol = symbol;
  return f;
}

TEST(SuppressionEngine, ParsesBlocksAndRejectsMalformed) {
  SuppressionEngine e;
  std::string err;
  EXPECT_TRUE(e.load_text("# comment\n{\n rule-a\n vft:race\n fun:foo*\n ...\n}\n"
                          "{\n rule-b\n vft:write-*\n obj:*libx.so\n}\n",
                          "test", &err))
      << err;
  ASSERT_EQ(e.rules().size(), 2u);
  EXPECT_EQ(e.rules()[0].name, "rule-a");
  EXPECT_EQ(e.rules()[1].kind_glob, "write-*");

  // Each failure leaves previously loaded rules intact.
  EXPECT_FALSE(e.load_text("{\n unnamed-block-missing-vft\n}\n", "t", &err));
  EXPECT_NE(err.find("no vft:"), std::string::npos);
  EXPECT_FALSE(e.load_text("{\n r\n vft:race\n bogus:line\n}\n", "t", &err));
  EXPECT_NE(err.find("unrecognized"), std::string::npos);
  EXPECT_FALSE(e.load_text("{\n r\n vft:race\n", "t", &err));
  EXPECT_NE(err.find("unterminated"), std::string::npos);
  EXPECT_FALSE(e.load_text("not-a-brace\n", "t", &err));
  EXPECT_EQ(e.rules().size(), 2u);
}

TEST(SuppressionEngine, MatchesStackPrefixWithEllipsis) {
  SuppressionEngine e;
  ASSERT_TRUE(e.load_text(
      "{\n deep\n vft:race\n fun:leaf\n ...\n fun:main\n}\n", "t", nullptr));
  std::vector<ResolvedFrame> stack = {
      frame("/bin/app", "leaf"), frame("/bin/app", "mid1"),
      frame("/bin/app", "mid2"), frame("/bin/app", "main")};
  EXPECT_NE(e.match("write-write race", stack), nullptr);
  // Prefix semantics: frames below the pattern are ignored.
  stack.push_back(frame("/lib/libc.so", "__libc_start_main"));
  EXPECT_NE(e.match("write-write race", stack), nullptr);
  // But the anchored first frame must be the innermost one.
  std::vector<ResolvedFrame> wrong = {frame("/bin/app", "other"),
                                      frame("/bin/app", "leaf")};
  EXPECT_EQ(e.match("write-write race", wrong), nullptr);
}

TEST(SuppressionEngine, KindGlobFiltersAndRaceMatchesAll) {
  SuppressionEngine e;
  ASSERT_TRUE(e.load_text("{\n ww-only\n vft:write-write*\n ...\n}\n"
                          "{\n everything\n vft:race\n ...\n}\n",
                          "t", nullptr));
  std::vector<ResolvedFrame> stack = {frame("/bin/app", "f")};
  const SuppressionRule* m = e.match("write-write race", stack);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->name, "ww-only");  // first matching rule wins
  m = e.match("read-write race", stack);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->name, "everything");
}

TEST(SuppressionEngine, ObjMatchesModuleAndEmptyStackNeedsEllipsisOnly) {
  SuppressionEngine e;
  ASSERT_TRUE(e.load_text("{\n by-obj\n vft:race\n obj:*libserver.so\n}\n"
                          "{\n stackless\n vft:race\n ...\n}\n",
                          "t", nullptr));
  std::vector<ResolvedFrame> server = {frame("/opt/libserver.so", "")};
  const SuppressionRule* m = e.match("write-read race", server);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->name, "by-obj");
  // A report with no captured stack can only match frame-free patterns.
  std::vector<ResolvedFrame> none;
  m = e.match("write-read race", none);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->name, "stackless");
}

TEST(RaceCollector, SuppressionHidesButCounts) {
  RaceCollector c;
  ASSERT_TRUE(c.load_suppressions_text(
      "{\n hide-ww\n vft:write-write*\n ...\n}\n", "test"));
  EXPECT_EQ(c.suppression_rule_count(), 1u);
  for (int i = 0; i < 4; ++i) {
    c.report(RaceReport{RaceKind::kWriteWrite, 7, 2, Epoch::make(1, 5),
                        Epoch::make(2, 3), {}});
  }
  c.report(RaceReport{RaceKind::kReadWrite, 7, 2, Epoch::make(1, 5),
                      Epoch::make(2, 3), {}});
  EXPECT_EQ(c.count(), 1u);       // only the read-write context is visible
  EXPECT_EQ(c.suppressed(), 4u);  // ...but every hidden occurrence counted
  EXPECT_FALSE(c.empty());        // suppressed races still mean "racy run"
  ASSERT_EQ(c.contexts().size(), 2u);
  EXPECT_TRUE(c.contexts()[0].hidden());
  ASSERT_NE(c.contexts()[0].suppressed_by, nullptr);
  EXPECT_EQ(c.contexts()[0].suppressed_by->name, "hide-ww");
  auto stats = c.suppression_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].first, "hide-ww");
  EXPECT_EQ(stats[0].second, 4u);
}

// ---------------------------------------------------------------------
// JSON escaping: report fields must survive adversarial bytes.
// ---------------------------------------------------------------------

TEST(JsonEscape, AdversarialStrings) {
  using reportio::json_escape;
  EXPECT_EQ(json_escape("plain_name.so"), "plain_name.so");
  EXPECT_EQ(json_escape("quote\"backslash\\"), "quote\\\"backslash\\\\");
  EXPECT_EQ(json_escape(std::string_view("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(json_escape("tab\tnewline\n"), "tab\\u0009newline\\u000a");
  // Non-ASCII bytes (e.g. UTF-8 é = 0xc3 0xa9) become \u00XX per byte:
  // lossless for any input, valid JSON always.
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\\u00c3\\u00a9");
  EXPECT_EQ(json_escape("\x7f\x80"), "\\u007f\\u0080");
}

TEST(JsonEscape, EscapedFieldsRoundTripThroughParser) {
  using reportio::json_escape;
  using reportio::parse_json;
  const std::string nasty =
      std::string("a\"b\\c\n\t") + "\xc3\xa9" + std::string("\0z", 2);
  const std::string doc = "{\"v\": \"" + json_escape(nasty) + "\"}";
  auto p = parse_json(doc);
  ASSERT_TRUE(p.complete) << p.error;
  const reportio::Json* v = p.value.get("v");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->string, nasty);
}

// ---------------------------------------------------------------------
// Tolerant parsing of truncated documents (crash salvage).
// ---------------------------------------------------------------------

ReportDoc doc_from_collector(RaceCollector& c, bool clean = true) {
  return reportio::build_report_doc(c, "VerifiedFT-v2", 3, 2, 100, clean);
}

RaceReport rep(RaceKind k, std::uint64_t var, std::uintptr_t pc = 0) {
  RaceReport r{k, var, 2, Epoch::make(1, 5), Epoch::make(2, 3), {}};
  if (pc != 0) r.stack.push(pc);
  return r;
}

TEST(ParseReport, TruncatedInputKeepsCompleteContexts) {
  RaceCollector c;
  c.report(rep(RaceKind::kWriteWrite, 1));
  c.report(rep(RaceKind::kReadWrite, 2));
  const std::string full = reportio::render_json(doc_from_collector(c));

  // Cut the document in the middle of the second context.
  const std::size_t second = full.find("\"kind\"", full.find("\"kind\"") + 1);
  ASSERT_NE(second, std::string::npos);
  const std::string cut = full.substr(0, second + 3);

  ReportDoc doc;
  std::string err;
  ASSERT_TRUE(reportio::parse_report(cut, &doc, &err)) << err;
  EXPECT_TRUE(doc.truncated);
  EXPECT_FALSE(doc.clean_exit);  // truncation implies a dirty end
  ASSERT_EQ(doc.contexts.size(), 1u);
  EXPECT_EQ(doc.contexts[0].count, 1u);
  EXPECT_EQ(doc.summary.races, 1u);
}

TEST(ParseReport, RejectsGarbageAndWrongSchema) {
  ReportDoc doc;
  std::string err;
  EXPECT_FALSE(reportio::parse_report("not json at all", &doc, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(
      reportio::parse_report("{\"schema\": \"something-else\"}", &doc, &err));
  EXPECT_NE(err.find("schema"), std::string::npos);
}

TEST(ParseReport, RenderParseRoundTripPreservesEverything) {
  RaceCollector c;
  c.name_var(5, "Account.balance \"quoted\"");
  for (int i = 0; i < 3; ++i) c.report(rep(RaceKind::kWriteWrite, 5));
  c.report(rep(RaceKind::kWriteRead, 6, 0x4000));
  const std::string text = reportio::render_json(doc_from_collector(c));

  ReportDoc doc;
  std::string err;
  ASSERT_TRUE(reportio::parse_report(text, &doc, &err)) << err;
  EXPECT_FALSE(doc.truncated);
  EXPECT_EQ(doc.detector, "VerifiedFT-v2");
  EXPECT_EQ(doc.runs, 1u);
  ASSERT_EQ(doc.contexts.size(), 2u);
  EXPECT_EQ(doc.summary.races, 4u);
  EXPECT_EQ(doc.summary.threads, 3u);
  // Re-render of the parse is byte-identical: the canonical form is a
  // fixed point.
  EXPECT_EQ(reportio::render_json(doc), text);
}

// ---------------------------------------------------------------------
// Fleet merge: counts sum, output independent of input order.
// ---------------------------------------------------------------------

TEST(MergeReports, SumsCountsByContextKey) {
  RaceCollector a, b;
  for (int i = 0; i < 10; ++i) a.report(rep(RaceKind::kWriteWrite, 1));
  a.report(rep(RaceKind::kReadWrite, 2));
  for (int i = 0; i < 5; ++i) b.report(rep(RaceKind::kWriteWrite, 1));

  ReportDoc da = doc_from_collector(a);
  ReportDoc db = doc_from_collector(b);
  ReportDoc m = reportio::merge_reports({da, db});
  EXPECT_EQ(m.runs, 2u);
  ASSERT_EQ(m.contexts.size(), 2u);  // shared context fused, unique kept
  EXPECT_EQ(m.summary.races, 16u);
  EXPECT_EQ(m.summary.threads, 6u);  // process stats sum across runs

  std::uint64_t fused = 0;
  for (const auto& ctx : m.contexts) {
    if (ctx.kind == "write-write race") fused = ctx.count;
  }
  EXPECT_EQ(fused, 15u);
}

TEST(MergeReports, ByteStableAcrossInputOrders) {
  RaceCollector a, b, c;
  for (int i = 0; i < 7; ++i) a.report(rep(RaceKind::kWriteWrite, 1));
  b.report(rep(RaceKind::kReadWrite, 2, 0x5000));
  c.report(rep(RaceKind::kWriteWrite, 1));
  c.report(rep(RaceKind::kSharedWrite, 3));

  ReportDoc da = doc_from_collector(a);
  ReportDoc db = doc_from_collector(b);
  ReportDoc dc = doc_from_collector(c);

  const std::string m1 = reportio::render_json(reportio::merge_reports({da, db, dc}));
  const std::string m2 = reportio::render_json(reportio::merge_reports({dc, da, db}));
  const std::string m3 = reportio::render_json(reportio::merge_reports({db, dc, da}));
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(m1, m3);
}

TEST(MergeReports, CrashInAnyRunDirtiesTheFleet) {
  RaceCollector a, b;
  a.report(rep(RaceKind::kWriteWrite, 1));
  b.report(rep(RaceKind::kWriteWrite, 1));
  ReportDoc da = doc_from_collector(a, /*clean=*/true);
  ReportDoc db = doc_from_collector(b, /*clean=*/false);
  ReportDoc m = reportio::merge_reports({da, db});
  EXPECT_FALSE(m.clean_exit);
}

TEST(MergeReports, SuppressionStatsSumByRuleName) {
  RaceCollector a, b;
  const char* rules = "{\n hide-ww\n vft:write-write*\n ...\n}\n";
  ASSERT_TRUE(a.load_suppressions_text(rules, "t"));
  ASSERT_TRUE(b.load_suppressions_text(rules, "t"));
  for (int i = 0; i < 3; ++i) a.report(rep(RaceKind::kWriteWrite, 1));
  for (int i = 0; i < 2; ++i) b.report(rep(RaceKind::kWriteWrite, 1));
  ReportDoc m =
      reportio::merge_reports({doc_from_collector(a), doc_from_collector(b)});
  ASSERT_EQ(m.suppression_stats.size(), 1u);
  EXPECT_EQ(m.suppression_stats[0].first, "hide-ww");
  EXPECT_EQ(m.suppression_stats[0].second, 5u);
  EXPECT_EQ(m.summary.suppressed, 5u);
  EXPECT_EQ(m.summary.races, 0u);
}

// ---------------------------------------------------------------------
// Structural skeleton (the CI golden): values vary, shape does not.
// ---------------------------------------------------------------------

TEST(JsonSkeleton, InvariantUnderValuesAndCounts) {
  RaceCollector a, b;
  for (int i = 0; i < 100; ++i) a.report(rep(RaceKind::kWriteWrite, 1, 0x7000));
  b.report(rep(RaceKind::kReadWrite, 99, 0x9999));
  const std::string sa = reportio::json_skeleton(
      reportio::render_json(doc_from_collector(a)));
  const std::string sb = reportio::json_skeleton(
      reportio::render_json(doc_from_collector(b)));
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa.find("\"schema\""), std::string::npos);
}

}  // namespace
}  // namespace vft
