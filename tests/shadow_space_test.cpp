// The two-level ShadowSpace: geometry (word granularity, page
// straddling), lock-free publication under thread hammering, the range
// entry points, and - the load-bearing property - parity: wrapper-based
// and raw-pointer instrumentation of the same memory, and the table and
// space backends, produce identical race verdicts for every detector
// variant.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "runtime/instrument.h"
#include "runtime/shadow_table.h"

namespace vft::rt {
namespace {

using Geometry = ShadowGeometry;

TEST(ShadowSpace, WordGranularSlots) {
  ShadowSpace<VftV2> space;
  alignas(8) char bytes[24] = {};
  // Same 8-byte word -> same VarState; different word -> different.
  EXPECT_EQ(&space.of(&bytes[0]), &space.of(&bytes[7]));
  EXPECT_NE(&space.of(&bytes[0]), &space.of(&bytes[8]));
  EXPECT_NE(&space.of(&bytes[8]), &space.of(&bytes[16]));
  // The id is the word base address (stable across aliases).
  EXPECT_EQ(space.of(&bytes[7]).id, reinterpret_cast<std::uint64_t>(&bytes[0]));
  EXPECT_EQ(space.pages(), 1u);
}

TEST(ShadowSpace, PageStraddlingAddressesGetDistinctPages) {
  ShadowSpace<VftV2> space;
  std::vector<double> big(3 * Geometry::kPageSpan / sizeof(double));
  const auto base = reinterpret_cast<std::uintptr_t>(big.data());
  // Words just left and right of every page boundary in the buffer.
  std::vector<typename VftV2::VarState*> states;
  for (std::uintptr_t a = (base + Geometry::kPageSpan) &
                          ~static_cast<std::uintptr_t>(Geometry::kPageSpan - 1);
       a + Geometry::kGranularity <
       base + 3 * Geometry::kPageSpan / sizeof(double) * sizeof(double);
       a += Geometry::kPageSpan) {
    auto* left = &space.of(reinterpret_cast<void*>(a - Geometry::kGranularity));
    auto* right = &space.of(reinterpret_cast<void*>(a));
    EXPECT_NE(left, right);
    states.push_back(left);
    states.push_back(right);
  }
  EXPECT_GE(space.pages(), 2u);
  // Lookups are idempotent: every state re-resolves to the same object.
  for (auto* s : states) {
    EXPECT_EQ(&space.of(reinterpret_cast<void*>(s->id)), s);
  }
}

TEST(ShadowSpace, ConcurrentLookupsAgreeOnOverlappingAddresses) {
  ShadowSpace<VftV2> space;
  // A window spanning several pages; every thread resolves every word,
  // including the page-straddling ones, racing on first-touch publication.
  constexpr std::size_t kWords = 4 * Geometry::kSlotsPerPage + 17;
  std::vector<std::uint64_t> data(kWords);
  constexpr int kThreads = 8;
  std::vector<std::vector<typename VftV2::VarState*>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[t].reserve(kWords);
      for (std::size_t i = 0; i < kWords; ++i) {
        seen[t].push_back(&space.of(&data[i]));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_EQ(seen[t], seen[0]);  // all threads resolved identical VarStates
  }
  // kWords words never straddle more than pages+1 pages.
  EXPECT_GE(space.pages(), kWords / Geometry::kSlotsPerPage);
  EXPECT_LE(space.pages(), kWords / Geometry::kSlotsPerPage + 2);
}

TEST(ShadowSpace, RangeVariantsWalkWords) {
  RaceCollector rc;
  RuleStats stats;
  Runtime<VftV2> R{VftV2(&rc, &stats)};
  Runtime<VftV2>::MainScope scope(R);
  ShadowSpace<VftV2>& space = R.shadow_space();
  struct Blob {
    std::uint64_t a, b, c;
  };
  alignas(8) Blob blob{};
  EXPECT_TRUE(instrumented_range_write(R, space, &blob, sizeof(blob)));
  // Three words -> three write events, all [Write Exclusive] first touch.
  EXPECT_EQ(stats.count(Rule::kWriteExclusive), 3u);
  EXPECT_TRUE(instrumented_range_read(R, space, &blob, sizeof(blob)));
  EXPECT_TRUE(rc.empty());
  // Unaligned sub-range still covers the words it overlaps.
  const auto before = stats.count(Rule::kReadSameEpoch) +
                      stats.count(Rule::kReadExclusive);
  EXPECT_TRUE(instrumented_range_read(
      R, space, reinterpret_cast<char*>(&blob) + 4, 8));  // straddles a|b
  const auto after = stats.count(Rule::kReadSameEpoch) +
                     stats.count(Rule::kReadExclusive);
  EXPECT_EQ(after - before, 2u);
}

TEST(ShadowSpace, ConcurrentRangeAccessesUnderRealThreads) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  ShadowSpace<VftV2>& space = R.shadow_space();
  // Page-straddling buffer: a 64-word read-only prefix every thread
  // sweeps (read-shared) plus disjoint written slices behind it. Threads
  // race on page *publication* at slice boundaries, never on data.
  constexpr std::size_t kWords = 2 * Geometry::kSlotsPerPage + 128;
  std::vector<std::uint64_t> buf(kWords);
  constexpr std::uint32_t kThreads = 4;
  constexpr std::size_t kShared = 64;
  parallel_for_threads(R, kThreads, [&](std::uint32_t w) {
    const std::size_t chunk = (kWords - kShared) / kThreads;
    for (int rep = 0; rep < 8; ++rep) {
      instrumented_range_write(R, space, &buf[kShared + w * chunk],
                               chunk * sizeof(std::uint64_t));
      instrumented_range_read(R, space, buf.data(),
                              kShared * sizeof(std::uint64_t));
    }
  });
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
  EXPECT_GE(space.pages(), 2u);
}

TEST(ShadowSpace, ArrayCarvedFromSpaceAgreesWithRawPointers) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  Array<double, VftV2> a(R, R.shadow_space(), 8, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    // The wrapper's VarState is exactly the space's VarState for the
    // element address: wrapper and raw instrumentation agree.
    EXPECT_EQ(&a.shadow(i), &R.shadow_space().of(&a.data()[i]));
  }
  a.store(3, 1.0);
  EXPECT_TRUE(instrumented_read(R, R.shadow_space(), &a.data()[3]));
  EXPECT_TRUE(rc.empty());
}

// --- Parity: identical race verdicts across API paths and backends ---------

/// One deterministic schedule, driven from two sequentially-scoped
/// ThreadStates with no ordering edge between them (so the racy steps are
/// the same every run):
///   t0: write x      -> clean first write
///   t1: read  x      -> write-read race
///   t1: write y      -> clean
///   t0: write y      -> write-write race
///   t0: read  z, t1: read z -> read-share, no race
struct Verdict {
  std::size_t reports;
  std::vector<RaceKind> kinds;

  bool operator==(const Verdict&) const = default;
};

template <typename D, typename Access>
Verdict run_schedule(Access&& acc) {
  // acc(rt, which_thread, op{0=read,1=write}, loc{0,1,2})
  RaceCollector rc;
  Runtime<D> R{D(&rc)};
  ThreadState& t0 = R.registry().create();
  ThreadState& t1 = R.registry().create();
  auto step = [&](ThreadState& ts, int op, int loc) {
    Registry::ThreadScope scope(ts);
    acc(R, op, loc);
  };
  step(t0, 1, 0);
  step(t1, 0, 0);
  step(t1, 1, 1);
  step(t0, 1, 1);
  step(t0, 0, 2);
  step(t1, 0, 2);
  Verdict v;
  v.reports = rc.count();
  for (const auto& r : rc.all()) v.kinds.push_back(r.kind);
  return v;
}

template <typename D>
void expect_parity() {
  // Raw-pointer paths over both backends, on word-aligned locations.
  alignas(8) static thread_local std::uint64_t raw_locs[3];
  auto raw = [](auto& backend) {
    return [&backend](Runtime<D>& R, int op, int loc) {
      if (op == 1) {
        instrumented_write(R, backend, &raw_locs[loc]);
      } else {
        instrumented_read(R, backend, &raw_locs[loc]);
      }
    };
  };
  ShadowSpace<D> space;
  ShadowTable<D> table;
  const Verdict via_space = run_schedule<D>(raw(space));
  const Verdict via_table = run_schedule<D>(raw(table));

  // Wrapper path: an Array carved from a fresh space, driven through
  // load/store (needs a live runtime reference inside the accessor).
  RaceCollector rc;
  Runtime<D> R{D(&rc)};
  ThreadState& t0 = R.registry().create();
  ThreadState& t1 = R.registry().create();
  Array<std::uint64_t, D> arr(R, R.shadow_space(), 3, 0);
  auto wrapped_step = [&](ThreadState& ts, int op, int loc) {
    Registry::ThreadScope scope(ts);
    if (op == 1) {
      arr.store(static_cast<std::size_t>(loc), 1);
    } else {
      arr.load(static_cast<std::size_t>(loc));
    }
  };
  wrapped_step(t0, 1, 0);
  wrapped_step(t1, 0, 0);
  wrapped_step(t1, 1, 1);
  wrapped_step(t0, 1, 1);
  wrapped_step(t0, 0, 2);
  wrapped_step(t1, 0, 2);
  Verdict via_wrapper;
  via_wrapper.reports = rc.count();
  for (const auto& r : rc.all()) via_wrapper.kinds.push_back(r.kind);

  EXPECT_GE(via_space.reports, 2u) << D::kName;  // both races reported
  EXPECT_EQ(via_space, via_table) << D::kName;
  EXPECT_EQ(via_space, via_wrapper) << D::kName;
}

TEST(ShadowParity, IdenticalVerdictsAcrossBackendsAndApis) {
  expect_parity<VftV1>();
  expect_parity<VftV15>();
  expect_parity<VftV2>();
  expect_parity<FtMutex>();
  expect_parity<FtCas>();
  expect_parity<Djit>();
}

TEST(ShadowParity, OrderedAccessesStayCleanOnEveryBackend) {
  RaceCollector rc;
  Runtime<VftV2> R{VftV2(&rc)};
  Runtime<VftV2>::MainScope scope(R);
  alignas(8) std::uint64_t x = 0;
  instrumented_write(R, R.shadow_space(), &x);
  Thread<VftV2> child(R, [&] {
    instrumented_write(R, R.shadow_space(), &x);  // ordered by fork
    instrumented_write(R, R.shadow_table(), &x);  // distinct history, clean
  });
  child.join();
  instrumented_read(R, R.shadow_space(), &x);  // ordered by join
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

}  // namespace
}  // namespace vft::rt
