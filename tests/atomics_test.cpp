// The __tsan_atomic* clock layer (vft/atomics.h + the DetectorBase
// atomic handlers) against its contracts:
//
//   differential  every atomic operation kind the detectors see (load,
//                 store, rmw = the pre/post halves every exchange/
//                 fetch_*/compare_exchange collapses to, fence) crossed
//                 with every memory order, mirrored step-by-step into the
//                 Spec oracle's on_atomic_* rules across all six
//                 detectors, with the thread and release clocks compared
//                 after every step and race verdicts compared on the
//                 gated data accesses - including the relaxed-no-edge
//                 rows and the C++ fence-synchronization pairings;
//   abi           the vft_atomic_* entries produce bit-identical rule
//                 counters with the inline fast path armed and retracted,
//                 atomic events are never sampled out, and the
//                 VFT_ATOMICS mode knob (precise / sc / off) gates the
//                 sync edge end to end through the session dispatch.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>

#include "abi/vft_abi.h"
#include "runtime/session.h"
#include "vft/atomics.h"
#include "vft/djit.h"
#include "vft/ft_cas.h"
#include "vft/ft_mutex.h"
#include "vft/spec.h"
#include "vft/stats.h"
#include "vft/vft_v1.h"
#include "vft/vft_v15.h"
#include "vft/vft_v2.h"

namespace vft {
namespace {

constexpr VarId kX = 1;
constexpr VolId kA = 100;

template <typename D>
D make_det(RaceCollector* rc, RuleStats* st) {
  if constexpr (std::is_constructible_v<D, RaceCollector*, RuleStats*,
                                        RuleSet>) {
    return D(rc, st, RuleSet::kVerifiedFT);
  } else {
    return D(rc, st);
  }
}

bool vc_eq(const VectorClock& a, const VectorClock& b) {
  return a.leq(b) && b.leq(a);
}

/// One mirrored machine: each step drives the detector handler and the
/// matching Spec rule, then cross-checks the clock state both sides
/// expose (the owner's vector clock and the location's release clock).
/// Plain data accesses compare the Spec halt against the detector's
/// report stream; after a race the rig is done (the Spec stops).
template <typename D>
struct Rig {
  RaceCollector races;
  RuleStats stats;
  D det;
  typename D::VarState x;
  atomics::AtomicState a;
  std::array<atomics::FenceTls, 3> fences;
  ThreadState t0{0}, t1{1}, t2{2};
  Spec spec;

  Rig() : det(make_det<D>(&races, &stats)) {
    x.id = kX;
    det.write(t0, x);
    spec.on_write(0, kX);
    det.fork(t0, t1);
    spec.on_fork(0, 1);
    det.fork(t0, t2);
    spec.on_fork(0, 2);
  }

  ThreadState& ts(Tid t) { return t == 0 ? t0 : (t == 1 ? t1 : t2); }

  void check(Tid t) {
    EXPECT_TRUE(vc_eq(ts(t).V, spec.thread_vc(t)))
        << "thread clock diverged from Spec for t" << t;
    EXPECT_TRUE(vc_eq(a.sync_V, spec.atomic_vc(kA)))
        << "release clock diverged from Spec";
  }

  void store(Tid t, int mo) {
    det.atomic_store(ts(t), a, fences[t], mo);
    spec.on_atomic_store(t, kA, mo);
    check(t);
  }
  void load(Tid t, int mo) {
    det.atomic_load(ts(t), a, fences[t], mo);
    spec.on_atomic_load(t, kA, mo);
    check(t);
  }
  void rmw(Tid t, int mo) {
    det.atomic_rmw_pre(ts(t), a, fences[t], mo);
    det.atomic_rmw_post(ts(t), a, fences[t], mo);
    spec.on_atomic_rmw(t, kA, mo);
    check(t);
  }
  void fence(Tid t, int mo) {
    det.atomic_fence(ts(t), fences[t], mo);
    spec.on_atomic_fence(t, mo);
    check(t);
  }

  /// Plain data access on x; both sides must agree on the race verdict.
  testing::AssertionResult data_op(Tid t, bool is_write) {
    const std::size_t before = races.count();
    if (is_write) {
      det.write(ts(t), x);
    } else {
      det.read(ts(t), x);
    }
    const Spec::StepResult r =
        is_write ? spec.on_write(t, kX) : spec.on_read(t, kX);
    const std::size_t delta = races.count() - before;
    if (r.error != (delta > 0)) {
      return testing::AssertionFailure()
             << "spec error=" << r.error << " but detector reported " << delta
             << " race report(s)";
    }
    return testing::AssertionSuccess();
  }
  testing::AssertionResult write(Tid t) { return data_op(t, true); }
  testing::AssertionResult read(Tid t) { return data_op(t, false); }
};

std::string mo_label(int mo) {
  static const char* kNames[] = {"relaxed", "consume", "acquire",
                                 "release", "acq_rel", "seq_cst"};
  return kNames[mo];
}

/// Message-passing matrix: writer publishes x behind a store (or rmw)
/// with order ms, reader consumes behind a load (or rmw) with order ml,
/// then touches x. The pair orders the read iff the store half is
/// release-class AND the load half is acquire-class; everything else -
/// notably every relaxed row TSan-on-x86's SC execution would hide -
/// must produce exactly the write-read race the Spec halts on.
template <typename D>
void run_mp_matrix(bool via_rmw) {
  for (int ms = atomics::kMoRelaxed; ms <= atomics::kMoSeqCst; ++ms) {
    for (int ml = atomics::kMoRelaxed; ml <= atomics::kMoSeqCst; ++ml) {
      SCOPED_TRACE(std::string(D::kName) + (via_rmw ? " rmw " : " store/load ") +
                   mo_label(ms) + " -> " + mo_label(ml));
      Rig<D> r;
      ASSERT_TRUE(r.write(1));
      if (via_rmw) {
        r.rmw(1, ms);
      } else {
        r.store(1, ms);
      }
      if (via_rmw) {
        r.rmw(2, ml);
      } else {
        r.load(2, ml);
      }
      const bool ordered =
          atomics::mo_is_release(ms) && atomics::mo_is_acquire(ml);
      const std::size_t before = r.races.count();
      EXPECT_TRUE(r.read(2));
      EXPECT_EQ(r.races.count() - before, ordered ? 0u : 1u);
      if (!ordered && r.races.count() == 1) {
        const RaceReport rep = *r.races.first();
        EXPECT_EQ(rep.kind, RaceKind::kWriteRead);
        EXPECT_EQ(rep.var, kX);
        EXPECT_EQ(rep.current_tid, 2u);
      }
    }
  }
}

template <typename D>
void run_fence_pairings() {
  {  // Release fence + relaxed store pairs with an acquire load.
    SCOPED_TRACE(std::string(D::kName) + " fence-MP release side");
    Rig<D> r;
    ASSERT_TRUE(r.write(1));
    r.fence(1, atomics::kMoRelease);
    r.store(1, atomics::kMoRelaxed);
    r.load(2, atomics::kMoAcquire);
    EXPECT_TRUE(r.read(2));
    EXPECT_EQ(r.races.count(), 0u);
  }
  {  // Relaxed load + acquire fence pairs with a release store.
    SCOPED_TRACE(std::string(D::kName) + " fence-MP acquire side");
    Rig<D> r;
    ASSERT_TRUE(r.write(1));
    r.store(1, atomics::kMoRelease);
    r.load(2, atomics::kMoRelaxed);
    r.fence(2, atomics::kMoAcquire);
    EXPECT_TRUE(r.read(2));
    EXPECT_EQ(r.races.count(), 0u);
  }
  {  // Both halves through fences around fully relaxed accesses.
    SCOPED_TRACE(std::string(D::kName) + " fence-MP both sides");
    Rig<D> r;
    ASSERT_TRUE(r.write(1));
    r.fence(1, atomics::kMoSeqCst);
    r.store(1, atomics::kMoRelaxed);
    r.load(2, atomics::kMoRelaxed);
    r.fence(2, atomics::kMoSeqCst);
    EXPECT_TRUE(r.read(2));
    EXPECT_EQ(r.races.count(), 0u);
  }
  {  // A relaxed fence is not a release fence: the edge must not form.
    SCOPED_TRACE(std::string(D::kName) + " relaxed fence orders nothing");
    Rig<D> r;
    ASSERT_TRUE(r.write(1));
    r.fence(1, atomics::kMoRelaxed);
    r.store(1, atomics::kMoRelaxed);
    r.load(2, atomics::kMoAcquire);
    EXPECT_TRUE(r.read(2));
    EXPECT_EQ(r.races.count(), 1u);
  }
  {  // Missing acquire fence: the relaxed load alone forms no edge.
    SCOPED_TRACE(std::string(D::kName) + " missing acquire fence");
    Rig<D> r;
    ASSERT_TRUE(r.write(1));
    r.store(1, atomics::kMoRelease);
    r.load(2, atomics::kMoRelaxed);
    EXPECT_TRUE(r.read(2));
    EXPECT_EQ(r.races.count(), 1u);
  }
  {  // The release fence must start a new epoch: operations after the
     // snapshot must stay unordered with its consumers (st.inc).
    SCOPED_TRACE(std::string(D::kName) + " post-fence write stays unordered");
    Rig<D> r;
    r.fence(1, atomics::kMoRelease);
    ASSERT_TRUE(r.write(1));  // after the snapshot
    r.store(1, atomics::kMoRelaxed);
    r.load(2, atomics::kMoAcquire);
    EXPECT_TRUE(r.read(2));
    EXPECT_EQ(r.races.count(), 1u);
  }
}

template <typename D>
void run_counters() {
  Rig<D> r;
  r.store(1, atomics::kMoRelease);
  r.store(1, atomics::kMoRelaxed);
  r.load(2, atomics::kMoAcquire);
  r.load(2, atomics::kMoRelaxed);
  r.rmw(1, atomics::kMoAcqRel);
  r.rmw(1, atomics::kMoRelaxed);
  r.fence(2, atomics::kMoSeqCst);
  r.fence(2, atomics::kMoRelaxed);
  EXPECT_EQ(r.stats.count(Rule::kAtomicStore), 2u);
  EXPECT_EQ(r.stats.count(Rule::kAtomicLoad), 2u);
  EXPECT_EQ(r.stats.count(Rule::kAtomicRmw), 2u);
  EXPECT_EQ(r.stats.count(Rule::kAtomicFence), 2u);
  EXPECT_EQ(r.stats.count(Rule::kAtomicRelaxed), 4u);
  // Atomics are sync events: the data-access totals must not move.
  EXPECT_EQ(r.stats.count(Rule::kAtomicLoad) + r.stats.count(Rule::kAtomicStore),
            4u);
}

template <typename D>
void run_all_differential() {
  run_mp_matrix<D>(/*via_rmw=*/false);
  run_mp_matrix<D>(/*via_rmw=*/true);
  run_fence_pairings<D>();
  run_counters<D>();
}

TEST(AtomicsDifferential, VftV1) { run_all_differential<VftV1>(); }
TEST(AtomicsDifferential, VftV15) { run_all_differential<VftV15>(); }
TEST(AtomicsDifferential, VftV2) { run_all_differential<VftV2>(); }
TEST(AtomicsDifferential, FtMutex) { run_all_differential<FtMutex>(); }
TEST(AtomicsDifferential, FtCas) { run_all_differential<FtCas>(); }
TEST(AtomicsDifferential, Djit) { run_all_differential<Djit>(); }

// ---------------------------------------------------------------------------
// ABI level: the vft_atomic_* entries through the process-global Session.
// ---------------------------------------------------------------------------

using rt::ambient::Session;

constexpr const char* kDetectors[] = {"v1",       "v1.5",   "v2",
                                      "ft-mutex", "ft-cas", "djit"};

constexpr Rule kAtomicRules[] = {Rule::kAtomicLoad, Rule::kAtomicStore,
                                 Rule::kAtomicRmw, Rule::kAtomicFence,
                                 Rule::kAtomicRelaxed};

void configure(const char* detector, bool inline_on, const char* sampling) {
  if (inline_on) {
    unsetenv("VFT_FASTPATH");
  } else {
    setenv("VFT_FASTPATH", "off", 1);
  }
  if (sampling != nullptr) {
    setenv("VFT_SAMPLING", sampling, 1);
  } else {
    unsetenv("VFT_SAMPLING");
  }
  unsetenv("VFT_BUDGET");
  ASSERT_TRUE(Session::instance().configure(detector));
  Session::instance().reset();
  Session::instance().backend();
  Session::instance().rule_stats().reset();
}

/// Leave no environment behind for later binaries.
struct EnvGuard {
  ~EnvGuard() {
    unsetenv("VFT_FASTPATH");
    unsetenv("VFT_SAMPLING");
    unsetenv("VFT_BUDGET");
    unsetenv("VFT_ATOMICS");
  }
} env_guard;

alignas(64) long g_data[16];

/// Deterministic race-free workload over every entry and order, plus a
/// forked child consuming a release/acquire handoff.
void atomic_workload() {
  vft_attach();
  for (int mo = 0; mo <= 5; ++mo) {
    vft_atomic_store(&g_data[0], mo);
    vft_atomic_load(&g_data[0], mo);
    vft_atomic_rmw_pre(&g_data[1], mo);
    vft_atomic_rmw_post(&g_data[1], mo);
    vft_atomic_fence(mo);
  }
  vft_write8(&g_data[2]);
  vft_read8(&g_data[2]);
  const std::uint64_t tok = vft_thread_create();
  std::thread child([tok] {
    vft_thread_begin(tok);
    vft_atomic_load(&g_data[0], atomics::kMoAcquire);
    vft_read8(&g_data[2]);  // ordered by the fork edge
    vft_atomic_store(&g_data[3], atomics::kMoRelease);
    vft_detach();
  });
  child.join();
  vft_thread_join(tok);
  vft_atomic_load(&g_data[3], atomics::kMoAcquire);
  vft_detach();
}

std::array<std::uint64_t, RuleStats::kN> snapshot() {
  std::array<std::uint64_t, RuleStats::kN> out{};
  RuleStats& s = Session::instance().rule_stats();
  for (std::size_t i = 0; i < RuleStats::kN; ++i) {
    out[i] = s.count(static_cast<Rule>(i));
  }
  return out;
}

TEST(AtomicsAbi, BitIdenticalRuleCountersInlineVsOutOfLine) {
  for (const char* det : kDetectors) {
    SCOPED_TRACE(det);
    configure(det, /*inline_on=*/true, nullptr);
    atomic_workload();
    const auto with_inline = snapshot();
    configure(det, /*inline_on=*/false, nullptr);
    atomic_workload();
    const auto without_inline = snapshot();
    for (std::size_t i = 0; i < RuleStats::kN; ++i) {
      EXPECT_EQ(with_inline[i], without_inline[i])
          << rule_name(static_cast<Rule>(i));
    }
    EXPECT_EQ(vft_race_count(), 0u);
  }
}

TEST(AtomicsAbi, SamplingNeverGatesAtomicEvents) {
  // A drop-policy rate that skips nearly every plain access must not
  // skip a single atomic event: a dropped sync edge would manufacture
  // false races, so atomics run ungated (like mutex events).
  configure("v2", /*inline_on=*/true, nullptr);
  atomic_workload();
  const auto unsampled = snapshot();
  configure("v2", /*inline_on=*/true, "rate=0.01 policy=drop adaptive=0");
  atomic_workload();
  const auto sampled = snapshot();
  for (const Rule rule : kAtomicRules) {
    EXPECT_EQ(unsampled[static_cast<std::size_t>(rule)],
              sampled[static_cast<std::size_t>(rule)])
        << rule_name(rule);
  }
  EXPECT_EQ(vft_race_count(), 0u);
}

/// One message-passing handoff through real threads and the ABI: child
/// writes data then publishes flag; parent (unordered with the child
/// after the fork edge) consumes flag then reads data. Returns the
/// session's race count for the run.
std::uint64_t mp_races(const char* mode, int store_mo, int load_mo) {
  if (mode != nullptr) {
    setenv("VFT_ATOMICS", mode, 1);
  } else {
    unsetenv("VFT_ATOMICS");
  }
  configure("v2", /*inline_on=*/true, nullptr);
  static long flag;
  static long data;
  vft_attach();
  const std::uint64_t tok = vft_thread_create();
  std::thread child([tok, store_mo] {
    vft_thread_begin(tok);
    vft_write8(&data);
    vft_atomic_store(&flag, store_mo);
    vft_detach();
  });
  child.join();  // real edge: publication complete, but no vft_thread_join
  vft_atomic_load(&flag, load_mo);
  vft_read8(&data);
  vft_detach();
  unsetenv("VFT_ATOMICS");
  return vft_race_count();
}

TEST(AtomicsAbi, ModeKnobGatesTheSyncEdge) {
  // precise (default): declared orders decide the edge.
  EXPECT_EQ(mp_races(nullptr, atomics::kMoRelease, atomics::kMoAcquire), 0u);
  EXPECT_EQ(mp_races(nullptr, atomics::kMoRelaxed, atomics::kMoAcquire), 1u);
  EXPECT_EQ(mp_races("precise", atomics::kMoRelaxed, atomics::kMoRelaxed), 1u);
  // sc: every order upgraded to seq_cst - the TSan-on-x86 view that
  // hides relaxed races.
  EXPECT_EQ(mp_races("sc", atomics::kMoRelaxed, atomics::kMoRelaxed), 0u);
  // off: atomics invisible - even a correct release/acquire pair
  // contributes nothing (the PR-5 interposer-only behavior).
  EXPECT_EQ(mp_races("off", atomics::kMoRelease, atomics::kMoAcquire), 1u);
}

}  // namespace
}  // namespace vft
