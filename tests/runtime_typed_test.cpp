// Runtime happens-before semantics, typed over the whole detector family:
// every primitive (fork/join, mutex, volatile, barrier, condvar, rwlock,
// once) must yield zero reports on its disciplined pattern for *every*
// detector - and the corresponding broken pattern must report.
#include <gtest/gtest.h>

#include "runtime/sync_extras.h"
#include "vft/detector.h"

namespace vft::rt {
namespace {

template <typename D>
class RuntimeHb : public ::testing::Test {};

using AllDetectors = ::testing::Types<VftV1, VftV15, VftV2, FtMutex, FtCas, Djit>;
TYPED_TEST_SUITE(RuntimeHb, AllDetectors);

template <typename D, typename Fn>
std::size_t run(Fn target) {
  RaceCollector rc;
  Runtime<D> R{D(&rc)};
  typename Runtime<D>::MainScope scope(R);
  target(R);
  return rc.count();
}

TYPED_TEST(RuntimeHb, VolatilePublication) {
  const std::size_t n = run<TypeParam>([](auto& R) {
    Var<int, TypeParam> data(R, 0);
    Volatile<int, TypeParam> flag(R, 0);
    Thread<TypeParam> producer(R, [&] {
      data.store(5);
      flag.store(1);
    });
    Thread<TypeParam> consumer(R, [&] {
      while (flag.load() != 1) {
      }
      EXPECT_EQ(data.load(), 5);
    });
    producer.join();
    consumer.join();
  });
  EXPECT_EQ(n, 0u);
}

TYPED_TEST(RuntimeHb, PlainFlagPublicationRaces) {
  const std::size_t n = run<TypeParam>([](auto& R) {
    Var<int, TypeParam> data(R, 0);
    Var<int, TypeParam> flag(R, 0);  // not a volatile: broken idiom
    Thread<TypeParam> producer(R, [&] {
      data.store(5);
      flag.store(1);
    });
    Thread<TypeParam> consumer(R, [&] {
      while (flag.load() != 1) {
      }
      (void)data.load();
    });
    producer.join();
    consumer.join();
  });
  EXPECT_GE(n, 1u);  // at least the flag itself races
}

TYPED_TEST(RuntimeHb, BarrierPhases) {
  const std::size_t n = run<TypeParam>([](auto& R) {
    constexpr std::uint32_t kN = 3;
    Array<int, TypeParam> cells(R, kN, 0);
    Barrier<TypeParam> barrier(R, kN);
    parallel_for_threads(R, kN, [&](std::uint32_t w) {
      for (int round = 0; round < 5; ++round) {
        cells.store(w, round);
        barrier.arrive_and_wait();
        int sum = 0;
        for (std::uint32_t i = 0; i < kN; ++i) sum += cells.load(i);
        EXPECT_EQ(sum, static_cast<int>(kN) * round);
        barrier.arrive_and_wait();
      }
    });
  });
  EXPECT_EQ(n, 0u);
}

TYPED_TEST(RuntimeHb, CondVarHandoff) {
  const std::size_t n = run<TypeParam>([](auto& R) {
    Var<int, TypeParam> data(R, 0);
    Var<int, TypeParam> stage(R, 0);
    Mutex<TypeParam> m(R);
    CondVar<TypeParam> cv(R);
    Thread<TypeParam> consumer(R, [&] {
      m.lock();
      cv.wait(m, [&] { return stage.load() == 1; });
      EXPECT_EQ(data.load(), 3);
      m.unlock();
    });
    Thread<TypeParam> producer(R, [&] {
      m.lock();
      data.store(3);
      stage.store(1);
      m.unlock();
      cv.notify_all();
    });
    producer.join();
    consumer.join();
  });
  EXPECT_EQ(n, 0u);
}

TYPED_TEST(RuntimeHb, SharedMutexReadersAndWriters) {
  const std::size_t n = run<TypeParam>([](auto& R) {
    Var<int, TypeParam> data(R, 0);
    SharedMutex<TypeParam> rw(R);
    parallel_for_threads(R, 4, [&](std::uint32_t w) {
      for (int i = 0; i < 25; ++i) {
        if (w == 0) {
          rw.lock();
          data.store(data.load() + 1);
          rw.unlock();
        } else {
          SharedGuard<TypeParam> g(rw);
          (void)data.load();
        }
      }
    });
  });
  EXPECT_EQ(n, 0u);
}

TYPED_TEST(RuntimeHb, OnceInitialization) {
  const std::size_t n = run<TypeParam>([](auto& R) {
    auto cfg = std::make_unique<Array<int, TypeParam>>(R, 4, 0);
    Once<int, TypeParam> once(R);
    parallel_for_threads(R, 3, [&](std::uint32_t) {
      (void)once.get([&] {
        for (std::size_t i = 0; i < cfg->size(); ++i) cfg->store(i, 9);
        return 9;
      });
      for (std::size_t i = 0; i < cfg->size(); ++i) {
        EXPECT_EQ(cfg->load(i), 9);
      }
    });
  });
  EXPECT_EQ(n, 0u);
}

TYPED_TEST(RuntimeHb, TidReuseKeepsHighTidEpochsWellFormed) {
  // Drive tids up near the packing limit via sequential fork/join churn,
  // with every generation touching shared state race-freely.
  const std::size_t n = run<TypeParam>([](auto& R) {
    Var<std::uint64_t, TypeParam> acc(R, 0);
    for (int g = 0; g < 600; ++g) {  // far beyond kMaxTid without reuse
      Thread<TypeParam> t(R, [&] { acc.store(acc.load() + 1); });
      t.join();
    }
    EXPECT_EQ(acc.load(), 600u);
  });
  EXPECT_EQ(n, 0u);
}

}  // namespace
}  // namespace vft::rt
