// Differential functional-correctness tests: replaying the same feasible
// trace through a detector and through the Figure 2 specification must
// agree - on whether a race exists, on *which operation* first trips it,
// and (on race-free traces) on the final per-variable analysis state.
//
// This is the sequential half of the Section 6 correctness argument: given
// serializability (tested separately), handlers executed at their trace
// positions must transform the state exactly as the rules do.
#include <gtest/gtest.h>

#include "trace/generator.h"
#include "trace/hb_oracle.h"
#include "trace/replay.h"
#include "vft/detector.h"

namespace vft {
namespace {

using trace::GeneratorConfig;
using trace::Trace;

// Final-state extraction per detector family (epoch detectors only).
void expect_var_matches_spec(VftV1::VarState& v, const Spec::VarState& s) {
  EXPECT_EQ(v.R, s.R);
  EXPECT_EQ(v.W, s.W);
  if (s.R.is_shared()) {
    EXPECT_TRUE(v.V == s.V);
  }
}
void expect_var_matches_spec(SyncVarState& v, const Spec::VarState& s) {
  EXPECT_EQ(v.R.load(), s.R);
  EXPECT_EQ(v.W.load(), s.W);
  if (s.R.is_shared()) {
    EXPECT_TRUE(v.V.snapshot_locked() == s.V);
  }
}
void expect_var_matches_spec(FtCas::VarState& v, const Spec::VarState& s) {
  EXPECT_EQ(FtCas::VarState::unpack_r(v.rw.load()), s.R);
  EXPECT_EQ(FtCas::VarState::unpack_w(v.rw.load()), s.W);
  if (s.R.is_shared()) {
    EXPECT_TRUE(v.V.snapshot_locked() == s.V);
  }
}
// DJIT+ keeps no epoch state; only behavioural agreement is checked.
void expect_var_matches_spec(Djit::VarState&, const Spec::VarState&) {}

template <typename D>
void run_equivalence(D&& d, RaceCollector& races, RuleSet rules,
                     bool check_state) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    for (const double disciplined : {1.0, 0.85, 0.5}) {
      races.clear();
      GeneratorConfig cfg;
      cfg.initial_threads = 3;
      cfg.max_threads = 3;
      cfg.vars = 6;
      cfg.ops = 180;
      cfg.disciplined_fraction = disciplined;
      cfg.seed = seed * 31 + static_cast<std::uint64_t>(disciplined * 10);
      const Trace t = trace::generate(cfg);

      Spec spec(rules);
      const trace::SpecReplayResult sr = trace::replay_spec(t, spec);

      trace::ShadowStore<std::decay_t<D>> store;
      trace::ReplayResult dr;
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (!trace::apply(d, store, t[i])) {
          if (!dr.first_race) dr.first_race = i;
          dr.racy_ops++;
        }
        // Compare prefixes only up to the spec's halt (Section 7: the
        // implementation continues, the spec stops).
        if (sr.error_index && i == *sr.error_index) break;
      }

      ASSERT_EQ(dr.first_race, sr.error_index)
          << D::kName << " seed " << seed << " disc " << disciplined << "\n"
          << trace::to_string(t);
      if (!sr.error_index) {
        EXPECT_TRUE(races.empty());
        if (check_state) {
          // Final analysis state of every touched variable matches S.
          for (const trace::Op& op : t) {
            if (op.kind == trace::OpKind::kRead ||
                op.kind == trace::OpKind::kWrite) {
              expect_var_matches_spec(store.var(op.target),
                                      spec.var(op.target));
            }
          }
        }
      } else {
        EXPECT_GE(races.count(), 1u);
      }
    }
  }
}

TEST(Equivalence, VftV1MatchesSpec) {
  RaceCollector rc;
  run_equivalence(VftV1(&rc), rc, RuleSet::kVerifiedFT, true);
}

TEST(Equivalence, VftV15MatchesSpec) {
  RaceCollector rc;
  run_equivalence(VftV15(&rc), rc, RuleSet::kVerifiedFT, true);
}

TEST(Equivalence, VftV2MatchesSpec) {
  RaceCollector rc;
  run_equivalence(VftV2(&rc), rc, RuleSet::kVerifiedFT, true);
}

TEST(Equivalence, FtMutexMatchesOriginalSpec) {
  RaceCollector rc;
  run_equivalence(FtMutex(&rc), rc, RuleSet::kOriginalFastTrack, true);
}

TEST(Equivalence, FtMutexWithRevisedRulesMatchesVerifiedFTSpec) {
  RaceCollector rc;
  run_equivalence(FtMutex(&rc, nullptr, RuleSet::kVerifiedFT), rc,
                  RuleSet::kVerifiedFT, true);
}

TEST(Equivalence, FtCasMatchesOriginalSpec) {
  RaceCollector rc;
  run_equivalence(FtCas(&rc), rc, RuleSet::kOriginalFastTrack, true);
}

TEST(Equivalence, FtCasWithRevisedRulesMatchesVerifiedFTSpec) {
  RaceCollector rc;
  run_equivalence(FtCas(&rc, nullptr, RuleSet::kVerifiedFT), rc,
                  RuleSet::kVerifiedFT, true);
}

// DJIT+ has no epoch state to compare, but must still be precise: same
// first-race position as the specification.
TEST(Equivalence, DjitFindsSameFirstRace) {
  RaceCollector rc;
  run_equivalence(Djit(&rc), rc, RuleSet::kVerifiedFT, false);
}

}  // namespace
}  // namespace vft
