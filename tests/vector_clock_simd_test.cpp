// Randomized differential tests for the SIMD vector-clock kernels
// (src/vft/vc_simd.h): every ISA variant the machine can run must agree
// with the scalar reference on identical inputs, across sizes straddling
// the vector widths and VectorClock::kInline, and across clock values at
// the 24-bit packing boundary. The VectorClock-level operations (leq /
// join / copy) are additionally checked against a naive get()-based model,
// so the epoch_bits() reinterpretation and the inline/heap split are
// covered end to end.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "vft/vc_simd.h"
#include "vft/vector_clock.h"

namespace vft {
namespace {

constexpr std::uint32_t kClockMask =
    (std::uint32_t{1} << Epoch::kClockBits) - 1;

const simd::Isa kAllIsas[] = {simd::Isa::kScalar, simd::Isa::kSse2,
                              simd::Isa::kAvx2};

struct Kernels {
  bool (*leq)(const std::uint32_t*, const std::uint32_t*, std::size_t);
  void (*join)(std::uint32_t*, const std::uint32_t*, std::size_t);
  bool (*mask)(const std::uint32_t*, std::size_t, std::uint32_t);
};

Kernels kernels_for(simd::Isa isa) {
  switch (isa) {
    case simd::Isa::kSse2:
      return {simd::leq_all_sse2, simd::join_max_sse2,
              simd::all_masked_zero_sse2};
    case simd::Isa::kAvx2:
      return {simd::leq_all_avx2, simd::join_max_avx2,
              simd::all_masked_zero_avx2};
    default:
      return {simd::leq_all_scalar, simd::join_max_scalar,
              simd::all_masked_zero_scalar};
  }
}

// Sizes crossing the AVX2 width (8), the SSE2 width (4), kInline (8), and
// assorted tails.
const std::size_t kSizes[] = {0,  1,  2,  3,  4,  5,  7,  8,   9,
                              12, 15, 16, 17, 31, 32, 33, 63,  64,
                              65, 96, 100, 127, 128, 129, 255, 256, 257};

/// Random well-formed slot array: tid(V[i]) == i (mod the 8-bit packing),
/// clocks drawn across the full 24-bit range including the kMaxClock edge.
std::vector<std::uint32_t> random_slots(std::mt19937& rng, std::size_t n) {
  std::uniform_int_distribution<std::uint32_t> pick(0, 5);
  std::uniform_int_distribution<std::uint32_t> any_clock(0, kClockMask);
  std::vector<std::uint32_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t c;
    switch (pick(rng)) {
      case 0: c = 0; break;                    // bottom
      case 1: c = Epoch::kMaxClock; break;     // overflow boundary
      case 2: c = Epoch::kMaxClock - 1; break;
      case 3: c = 1; break;
      default: c = any_clock(rng); break;
    }
    v[i] = (static_cast<std::uint32_t>(i & 0xff) << Epoch::kClockBits) | c;
  }
  return v;
}

TEST(VcSimdKernels, DifferentialAgainstScalar) {
  std::mt19937 rng(20260806);
  for (const simd::Isa isa : kAllIsas) {
    if (!simd::isa_available(isa)) {
      GTEST_LOG_(INFO) << simd::isa_name(isa) << " unavailable, skipped";
      continue;
    }
    const Kernels k = kernels_for(isa);
    for (const std::size_t n : kSizes) {
      for (int round = 0; round < 64; ++round) {
        const auto a = random_slots(rng, n);
        auto b = random_slots(rng, n);
        // Half the rounds: force b >= a slot-wise so the "true" outcome
        // (every slot scanned) is exercised, not just early exits.
        if (round % 2 == 0) {
          for (std::size_t i = 0; i < n; ++i) b[i] = std::max(a[i], b[i]);
        }
        ASSERT_EQ(k.leq(a.data(), b.data(), n),
                  simd::leq_all_scalar(a.data(), b.data(), n))
            << simd::isa_name(isa) << " leq n=" << n << " round=" << round;

        auto dst_isa = a;
        auto dst_ref = a;
        k.join(dst_isa.data(), b.data(), n);
        simd::join_max_scalar(dst_ref.data(), b.data(), n);
        ASSERT_EQ(dst_isa, dst_ref)
            << simd::isa_name(isa) << " join n=" << n << " round=" << round;

        // Mask check over clock bits; half the rounds all-bottom (true).
        auto m = a;
        if (round % 2 == 0) {
          for (auto& w : m) w &= ~kClockMask;
        }
        ASSERT_EQ(k.mask(m.data(), n, kClockMask),
                  simd::all_masked_zero_scalar(m.data(), n, kClockMask))
            << simd::isa_name(isa) << " mask n=" << n << " round=" << round;
      }
    }
  }
}

TEST(VcSimdKernels, SingleSlotViolationDetected) {
  std::mt19937 rng(7);
  for (const simd::Isa isa : kAllIsas) {
    if (!simd::isa_available(isa)) continue;
    const Kernels k = kernels_for(isa);
    for (const std::size_t n : kSizes) {
      if (n == 0) continue;
      for (int round = 0; round < 16; ++round) {
        const auto a = random_slots(rng, n);
        auto b = a;  // equal: leq holds
        ASSERT_TRUE(k.leq(a.data(), b.data(), n));
        // Lower exactly one slot of b below a (if it has clock bits).
        const std::size_t at =
            std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
        if ((b[at] & kClockMask) == 0) continue;
        b[at] -= 1;
        ASSERT_FALSE(k.leq(a.data(), b.data(), n))
            << simd::isa_name(isa) << " n=" << n << " violation at " << at;
      }
    }
  }
}

// --- VectorClock-level differential (exercises epoch_bits + dispatch) ------

/// Naive reference via the scalar Epoch algebra and get().
bool ref_leq(const VectorClock& a, const VectorClock& b) {
  const std::uint32_t n = std::max(a.size(), b.size());
  for (Tid i = 0; i < n; ++i) {
    if (!leq(a.get(i), b.get(i))) return false;
  }
  return true;
}

VectorClock random_clock(std::mt19937& rng, std::uint32_t n) {
  VectorClock v;
  std::uniform_int_distribution<std::uint32_t> pick(0, 4);
  std::uniform_int_distribution<Clock> any_clock(0, Epoch::kMaxClock);
  for (Tid t = 0; t < n; ++t) {
    Clock c;
    switch (pick(rng)) {
      case 0: c = 0; break;
      case 1: c = Epoch::kMaxClock; break;
      default: c = any_clock(rng); break;
    }
    v.set(t, Epoch::make(t, c));
  }
  return v;
}

TEST(VectorClockSimd, LeqJoinCopyMatchScalarModel) {
  std::mt19937 rng(42);
  // Sizes straddling kInline == 8 and the SIMD widths, including
  // asymmetric pairs (shorter vs longer in both directions).
  const std::uint32_t sizes[] = {0, 1, 4, 7, 8, 9, 12, 16, 17, 33, 64, 100};
  for (const std::uint32_t na : sizes) {
    for (const std::uint32_t nb : sizes) {
      for (int round = 0; round < 24; ++round) {
        VectorClock a = random_clock(rng, na);
        VectorClock b = random_clock(rng, nb);
        if (round % 3 == 0) {
          // Force a <= b on the common prefix so the full-scan outcome
          // (plus the beyond-length bottom check) is common.
          VectorClock joined = b;
          joined.join(a);
          b = std::move(joined);
        }
        ASSERT_EQ(a.leq(b), ref_leq(a, b))
            << "na=" << na << " nb=" << nb << " round=" << round;

        // join: result slot-wise max, checked via get() over both ranges.
        VectorClock j = a;
        j.join(b);
        const std::uint32_t n = std::max(na, nb);
        for (Tid t = 0; t < n; ++t) {
          ASSERT_EQ(j.get(t), max(a.get(t), b.get(t)))
              << "join slot " << t << " na=" << na << " nb=" << nb;
        }
        ASSERT_TRUE(a.leq(j));
        ASSERT_TRUE(b.leq(j));

        // copy: exact equality including bottom-fill past source length.
        VectorClock c = random_clock(rng, na);
        c.copy(b);
        ASSERT_TRUE(c == b) << "copy na=" << na << " nb=" << nb;
      }
    }
  }
}

TEST(VectorClockSimd, ReserveKeepsContentsAndPreventsReallocation) {
  std::mt19937 rng(3);
  VectorClock v = random_clock(rng, 6);
  const VectorClock before = v;
  v.reserve(200);
  EXPECT_GE(v.capacity(), 200u);
  EXPECT_TRUE(v == before);
  // Growth within the reservation must not move the data.
  const Epoch* p = v.raw_slots();
  v.ensure_capacity(200);
  EXPECT_EQ(v.raw_slots(), p);
  for (Tid t = 0; t < 6; ++t) EXPECT_EQ(v.get(t), before.get(t));
  for (Tid t = 6; t < 200; ++t) EXPECT_EQ(v.get(t), Epoch::bottom(t));
}

// --- Packed-cell prefix kernels --------------------------------------------
//
// Every ISA variant must return exactly the scalar reference's prefix
// length on identical cells, across lengths straddling the 2/8-cell
// vector blocks, for epochs on both sides of the write kernel's hoisted
// sentinel compare (epoch_bits 1 collides with ESCALATED's W half = 1;
// every epoch > 1 takes the lean loop), and with sentinel cells planted
// at block-interior offsets.

struct CellKernels {
  std::size_t (*read)(const std::uint64_t*, std::size_t, std::uint32_t);
  std::size_t (*write)(const std::uint64_t*, std::size_t, std::uint32_t);
};

CellKernels cell_kernels_for(simd::Isa isa) {
  switch (isa) {
    case simd::Isa::kSse2:
      return {simd::cells_match_read_prefix_sse2,
              simd::cells_match_write_prefix_sse2};
    case simd::Isa::kAvx2:
      return {simd::cells_match_read_prefix_avx2,
              simd::cells_match_write_prefix_avx2};
    default:
      return {simd::cells_match_read_prefix_scalar,
              simd::cells_match_write_prefix_scalar};
  }
}

constexpr std::uint64_t kEscalatingCell = 0xFFFFFFFF00000000ull;
constexpr std::uint64_t kEscalatedCell = 0xFFFFFFFF00000001ull;

TEST(VectorClockSimd, CellPrefixKernelsMatchScalarReference) {
  std::mt19937 rng(11);
  // Epoch 1 = tid 0 at clock 1 (the sentinel-collision epoch); 2 = the
  // smallest lean-loop epoch; the third is an arbitrary high tid@clock.
  const std::uint32_t epochs[] = {1u, 2u, (7u << Epoch::kClockBits) | 9001u};
  for (const std::uint32_t e : epochs) {
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
          std::size_t{7}, std::size_t{8}, std::size_t{9}, std::size_t{15},
          std::size_t{16}, std::size_t{17}, std::size_t{64},
          std::size_t{513}}) {
      for (int variant = 0; variant < 8; ++variant) {
        std::vector<std::uint64_t> cells(n, 0);
        // Baseline: every cell a same-epoch hit for both kernels.
        for (auto& c : cells) {
          c = (static_cast<std::uint64_t>(e) << 32) | e;
        }
        // Variants plant a breaker at a random position: a different
        // epoch, a sentinel, or a cell matching only one half.
        if (variant > 0 && n > 0) {
          std::uniform_int_distribution<std::size_t> pos(0, n - 1);
          const std::size_t at = pos(rng);
          switch (variant % 4) {
            case 0: cells[at] = kEscalatingCell; break;
            case 1: cells[at] = kEscalatedCell; break;
            case 2:  // W matches, R stale: read breaker only.
              cells[at] = (static_cast<std::uint64_t>(e + 1) << 32) | e;
              break;
            case 3:  // R matches, W stale: write breaker only.
              cells[at] =
                  (static_cast<std::uint64_t>(e) << 32) | (e + 1);
              break;
          }
        }
        const std::size_t ref_r =
            simd::cells_match_read_prefix_scalar(cells.data(), n, e);
        const std::size_t ref_w =
            simd::cells_match_write_prefix_scalar(cells.data(), n, e);
        for (const simd::Isa isa : kAllIsas) {
          if (!simd::isa_available(isa)) continue;
          const CellKernels k = cell_kernels_for(isa);
          EXPECT_EQ(k.read(cells.data(), n, e), ref_r)
              << simd::isa_name(isa) << " read e=" << e << " n=" << n
              << " variant=" << variant;
          EXPECT_EQ(k.write(cells.data(), n, e), ref_w)
              << simd::isa_name(isa) << " write e=" << e << " n=" << n
              << " variant=" << variant;
        }
      }
    }
  }
}

TEST(VectorClockSimd, WritePrefixRejectsEscalatedAtCollisionEpoch) {
  // The exact collision the hoist must not break: epoch_bits == 1 and a
  // cell holding ESCALATED (W half == 1). The W-lane compare alone would
  // accept it; the guarded loop must stop there.
  std::vector<std::uint64_t> cells(16, (std::uint64_t{1} << 32) | 1u);
  cells[9] = kEscalatedCell;
  for (const simd::Isa isa : kAllIsas) {
    if (!simd::isa_available(isa)) continue;
    const CellKernels k = cell_kernels_for(isa);
    EXPECT_EQ(k.write(cells.data(), cells.size(), 1u), 9u)
        << simd::isa_name(isa);
  }
}

TEST(VectorClockSimd, ActiveIsaIsAvailable) {
  EXPECT_TRUE(simd::isa_available(simd::active_isa()));
  // Kernel sanity at the dispatch point itself.
  const std::uint32_t a[3] = {1, 2, 3};
  const std::uint32_t b[3] = {1, 2, 4};
  EXPECT_TRUE(simd::leq_all(a, b, 3));
  EXPECT_FALSE(simd::leq_all(b, a, 3));
}

}  // namespace
}  // namespace vft
