// Algebraic property tests over the vector-clock lattice (randomized,
// seeded): join is the least upper bound for the pointwise order, leq is a
// partial order, and copy/inc interact as Section 3 requires. These are
// the facts the correctness argument leans on; pinning them guards the
// SBO representation against subtle regressions.
#include <gtest/gtest.h>

#include <mutex>
#include <random>

#include "vft/sync_vector_clock.h"
#include "vft/vector_clock.h"

namespace vft {
namespace {

VectorClock random_vc(std::mt19937_64& rng, std::uint32_t max_len,
                      Clock max_clock) {
  VectorClock v;
  const std::uint32_t len =
      std::uniform_int_distribution<std::uint32_t>(0, max_len)(rng);
  for (Tid t = 0; t < len; ++t) {
    const Clock c =
        std::uniform_int_distribution<Clock>(0, max_clock)(rng);
    v.set(t, Epoch::make(t, c));
  }
  return v;
}

class VcAlgebra : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::mt19937_64 rng{GetParam()};
};

TEST_P(VcAlgebra, LeqIsReflexiveAndAntisymmetricAndTransitive) {
  for (int i = 0; i < 60; ++i) {
    const VectorClock a = random_vc(rng, 20, 6);
    const VectorClock b = random_vc(rng, 20, 6);
    const VectorClock c = random_vc(rng, 20, 6);
    EXPECT_TRUE(a.leq(a));
    if (a.leq(b) && b.leq(a)) EXPECT_TRUE(a == b);
    if (a.leq(b) && b.leq(c)) EXPECT_TRUE(a.leq(c));
  }
}

TEST_P(VcAlgebra, JoinIsLeastUpperBound) {
  for (int i = 0; i < 60; ++i) {
    const VectorClock a = random_vc(rng, 16, 6);
    const VectorClock b = random_vc(rng, 16, 6);
    VectorClock j = a;
    j.join(b);
    EXPECT_TRUE(a.leq(j));
    EXPECT_TRUE(b.leq(j));
    // Least: any other upper bound dominates the join.
    VectorClock ub = a;
    ub.join(b);
    ub.join(random_vc(rng, 16, 6));  // a random clock above the join
    EXPECT_TRUE(j.leq(ub));
  }
}

TEST_P(VcAlgebra, JoinCommutativeAssociativeIdempotent) {
  for (int i = 0; i < 60; ++i) {
    const VectorClock a = random_vc(rng, 12, 5);
    const VectorClock b = random_vc(rng, 12, 5);
    const VectorClock c = random_vc(rng, 12, 5);
    VectorClock ab = a;
    ab.join(b);
    VectorClock ba = b;
    ba.join(a);
    EXPECT_TRUE(ab == ba);
    VectorClock ab_c = ab;
    ab_c.join(c);
    VectorClock bc = b;
    bc.join(c);
    VectorClock a_bc = a;
    a_bc.join(bc);
    EXPECT_TRUE(ab_c == a_bc);
    VectorClock aa = a;
    aa.join(a);
    EXPECT_TRUE(aa == a);
  }
}

TEST_P(VcAlgebra, CopyMakesEqualAndLeqBothWays) {
  for (int i = 0; i < 60; ++i) {
    const VectorClock a = random_vc(rng, 24, 6);
    VectorClock b = random_vc(rng, 24, 6);
    b.copy(a);
    EXPECT_TRUE(b == a);
    EXPECT_TRUE(a.leq(b) && b.leq(a));
  }
}

TEST_P(VcAlgebra, IncIsStrictlyIncreasingInOneComponent) {
  for (int i = 0; i < 60; ++i) {
    VectorClock a = random_vc(rng, 10, 6);
    const Tid t = std::uniform_int_distribution<Tid>(0, 9)(rng);
    const VectorClock before = a;
    a.inc(t);
    EXPECT_TRUE(before.leq(a));
    EXPECT_FALSE(a.leq(before));
    EXPECT_EQ(a.get(t), before.get(t).inc());
    for (Tid u = 0; u < 10; ++u) {
      if (u != t) EXPECT_EQ(a.get(u), before.get(u));
    }
  }
}

TEST_P(VcAlgebra, EpochLeqVcAgreesWithComponentwise) {
  for (int i = 0; i < 60; ++i) {
    const VectorClock v = random_vc(rng, 10, 6);
    for (Tid t = 0; t < 10; ++t) {
      const Clock c = std::uniform_int_distribution<Clock>(0, 7)(rng);
      const Epoch e = Epoch::make(t, c);
      EXPECT_EQ(leq(e, v.get(t)), c <= v.get(t).clock());
    }
  }
}

TEST_P(VcAlgebra, SyncVectorClockAgreesWithPlainOnSameOps) {
  std::mutex mu;
  for (int i = 0; i < 20; ++i) {
    VectorClock plain;
    SyncVectorClock sync;
    for (int op = 0; op < 40; ++op) {
      const Tid t = std::uniform_int_distribution<Tid>(0, 15)(rng);
      const Clock c = std::uniform_int_distribution<Clock>(0, 9)(rng);
      plain.set(t, Epoch::make(t, c));
      std::scoped_lock lk(mu);
      sync.set_locked(t, Epoch::make(t, c));
    }
    for (Tid t = 0; t < 16; ++t) EXPECT_EQ(sync.get(t), plain.get(t));
    EXPECT_TRUE(sync.snapshot_locked() == plain);
    const VectorClock probe = random_vc(rng, 16, 9);
    EXPECT_EQ(sync.leq_locked(probe), plain.leq(probe));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VcAlgebra,
                         ::testing::Values(1, 7, 42, 1234, 99991));

}  // namespace
}  // namespace vft
