// Unit tests for the plain VectorClock (Figure 3 lines 17-59) and the
// concurrent SyncVectorClock (Section 5 discipline).
#include "vft/vector_clock.h"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

#include "vft/sync_vector_clock.h"

namespace vft {
namespace {

TEST(VectorClock, GetBeyondCapacityReturnsBottom) {
  VectorClock v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.get(0), Epoch::bottom(0));
  EXPECT_EQ(v.get(12), Epoch::bottom(12));
}

TEST(VectorClock, SetGrowsAndPreservesWellFormedness) {
  VectorClock v;
  v.set(5, Epoch::make(5, 3));
  EXPECT_EQ(v.size(), 6u);
  EXPECT_EQ(v.get(5), Epoch::make(5, 3));
  // Slots materialized by growth hold their thread's bottom epoch.
  for (Tid t = 0; t < 5; ++t) EXPECT_EQ(v.get(t), Epoch::bottom(t));
}

TEST(VectorClock, IncAdvancesOneComponent) {
  VectorClock v;
  v.inc(2);
  v.inc(2);
  v.inc(1);
  EXPECT_EQ(v.get(2), Epoch::make(2, 2));
  EXPECT_EQ(v.get(1), Epoch::make(1, 1));
  EXPECT_EQ(v.get(0), Epoch::bottom(0));
}

TEST(VectorClock, LeqIsPointwiseOverEitherLength) {
  VectorClock a, b;
  a.set(0, Epoch::make(0, 1));
  b.set(0, Epoch::make(0, 2));
  b.set(1, Epoch::make(1, 5));
  EXPECT_TRUE(a.leq(b));
  EXPECT_FALSE(b.leq(a));  // b(1)=1@5 > a(1)=bottom
  VectorClock empty;
  EXPECT_TRUE(empty.leq(a));
  EXPECT_TRUE(empty.leq(empty));
}

TEST(VectorClock, JoinTakesPointwiseMax) {
  VectorClock a, b;
  a.set(0, Epoch::make(0, 4));
  a.set(1, Epoch::make(1, 1));
  b.set(1, Epoch::make(1, 8));
  b.set(2, Epoch::make(2, 2));
  a.join(b);
  EXPECT_EQ(a.get(0), Epoch::make(0, 4));
  EXPECT_EQ(a.get(1), Epoch::make(1, 8));
  EXPECT_EQ(a.get(2), Epoch::make(2, 2));
}

TEST(VectorClock, JoinIsIdempotentAndMonotone) {
  VectorClock a, b;
  a.set(0, Epoch::make(0, 3));
  b.set(1, Epoch::make(1, 9));
  VectorClock before = a;
  a.join(b);
  EXPECT_TRUE(before.leq(a));
  EXPECT_TRUE(b.leq(a));
  VectorClock once = a;
  a.join(b);
  EXPECT_TRUE(a == once);
}

TEST(VectorClock, CopyReplacesAllComponents) {
  VectorClock a, b;
  a.set(3, Epoch::make(3, 7));
  b.set(0, Epoch::make(0, 2));
  a.copy(b);
  EXPECT_EQ(a.get(0), Epoch::make(0, 2));
  EXPECT_EQ(a.get(3), Epoch::bottom(3));  // copied over with b's bottom
}

TEST(VectorClock, EqualityIgnoresTrailingBottoms) {
  VectorClock a, b;
  a.set(4, Epoch::bottom(4));  // materializes slots 0..4 as bottoms
  EXPECT_TRUE(a == b);
  b.set(1, Epoch::make(1, 1));
  EXPECT_FALSE(a == b);
}

TEST(VectorClock, StrIsReadable) {
  VectorClock v;
  v.set(1, Epoch::make(1, 2));
  EXPECT_EQ(v.str(), "<0@0, 1@2>");
}

TEST(VectorClock, GrowthAcrossInlineBoundary) {
  VectorClock v;
  for (Tid t = 0; t < 3 * VectorClock::kInline; ++t) {
    v.set(t, Epoch::make(t, t + 1));
  }
  EXPECT_EQ(v.size(), 3 * VectorClock::kInline);
  for (Tid t = 0; t < 3 * VectorClock::kInline; ++t) {
    EXPECT_EQ(v.get(t), Epoch::make(t, t + 1));
  }
}

TEST(VectorClock, CopySemanticsInlineAndHeap) {
  VectorClock small;
  small.set(2, Epoch::make(2, 9));
  VectorClock small_copy = small;
  EXPECT_TRUE(small_copy == small);
  small.set(2, Epoch::make(2, 10));
  EXPECT_EQ(small_copy.get(2), Epoch::make(2, 9));  // deep copy

  VectorClock big;
  big.set(40, Epoch::make(40, 3));  // heap-backed
  VectorClock big_copy = big;
  EXPECT_TRUE(big_copy == big);
  big.set(40, Epoch::make(40, 4));
  EXPECT_EQ(big_copy.get(40), Epoch::make(40, 3));

  big_copy = small;  // heap object assigned a smaller inline clock
  EXPECT_TRUE(big_copy == small);
  EXPECT_EQ(big_copy.get(40), Epoch::bottom(40));
}

TEST(VectorClock, MoveSemanticsInlineAndHeap) {
  VectorClock big;
  big.set(40, Epoch::make(40, 3));
  VectorClock moved = std::move(big);
  EXPECT_EQ(moved.get(40), Epoch::make(40, 3));
  EXPECT_EQ(big.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty

  VectorClock small;
  small.set(1, Epoch::make(1, 7));
  VectorClock moved2 = std::move(small);
  EXPECT_EQ(moved2.get(1), Epoch::make(1, 7));
}

TEST(VectorClock, SelfAssignIsSafe) {
  VectorClock v;
  v.set(3, Epoch::make(3, 5));
  VectorClock& alias = v;
  v = alias;
  EXPECT_EQ(v.get(3), Epoch::make(3, 5));
}

TEST(VectorClock, LeqWithTrailingNonBottomOnLeft) {
  VectorClock a, b;
  a.set(9, Epoch::make(9, 1));  // a longer than b, non-bottom tail
  b.set(0, Epoch::make(0, 5));
  EXPECT_FALSE(a.leq(b));
  a.set(9, Epoch::bottom(9));  // bottom tail: fine
  EXPECT_TRUE(a.leq(b));
}

TEST(SyncVectorClock, GetBeyondCapacityReturnsBottom) {
  SyncVectorClock v;
  EXPECT_EQ(v.get(0), Epoch::bottom(0));
  EXPECT_EQ(v.get(9), Epoch::bottom(9));
  EXPECT_EQ(v.size(), 0u);
}

TEST(SyncVectorClock, SetLockedGrowsAndPreserves) {
  SyncVectorClock v;
  v.set_locked(2, Epoch::make(2, 5));
  v.set_locked(7, Epoch::make(7, 1));
  EXPECT_EQ(v.get(2), Epoch::make(2, 5));
  EXPECT_EQ(v.get(7), Epoch::make(7, 1));
  EXPECT_EQ(v.get(3), Epoch::bottom(3));
}

TEST(SyncVectorClock, LeqLockedAgainstPlainClock) {
  SyncVectorClock v;
  v.set_locked(0, Epoch::make(0, 2));
  VectorClock w;
  w.set(0, Epoch::make(0, 2));
  EXPECT_TRUE(v.leq_locked(w));
  v.set_locked(1, Epoch::make(1, 1));
  EXPECT_FALSE(v.leq_locked(w));
  w.set(1, Epoch::make(1, 4));
  EXPECT_TRUE(v.leq_locked(w));
}

TEST(SyncVectorClock, SnapshotMatchesContents) {
  SyncVectorClock v;
  v.set_locked(1, Epoch::make(1, 3));
  VectorClock s = v.snapshot_locked();
  EXPECT_EQ(s.get(1), Epoch::make(1, 3));
  EXPECT_EQ(s.size(), v.size());
}

// The discipline's crucial liveness property: a reader holding a stale
// array (growth raced with the read) still sees its *own* slot's last
// value, because growth copies and never mutates retired arrays. We
// stress it: one thread grows the clock under an external lock while a
// reader thread re-reads its own slot lock-free.
TEST(SyncVectorClock, ConcurrentGrowthNeverCorruptsOwnSlot) {
  SyncVectorClock v;
  std::mutex mu;
  constexpr Tid kReader = 1;
  {
    std::scoped_lock lk(mu);
    v.set_locked(kReader, Epoch::make(kReader, 7));
  }
  std::atomic<bool> stop{false};
  std::thread grower([&] {
    for (Tid t = 2; t < 200; ++t) {
      std::scoped_lock lk(mu);
      v.set_locked(t, Epoch::make(t, 1));
    }
    stop.store(true);
  });
  std::size_t reads = 0;
  // At least 10k reads even if the grower finishes first (single-core
  // schedulers often run it to completion before we get a slice).
  while (!stop.load() || reads < 10000) {
    ASSERT_EQ(v.get(kReader), Epoch::make(kReader, 7));
    ++reads;
  }
  grower.join();
  EXPECT_EQ(v.get(kReader), Epoch::make(kReader, 7));
}

}  // namespace
}  // namespace vft
