// Behavioural tests specific to the reconstructed historical FastTrack
// implementations (FT-Mutex, FT-CAS): original-rule state transitions,
// optimistic-retry robustness, and the packed-word invariants of FT-CAS.
#include <gtest/gtest.h>

#include <thread>

#include "vft/detector.h"

namespace vft {
namespace {

TEST(FtMutexOriginal, WriteSharedResetsReadHistory) {
  RaceCollector rc;
  FtMutex d(&rc);  // original rules by default
  ThreadState a(0), b(1), c(2);
  FtMutex::VarState x;
  ASSERT_TRUE(d.read(a, x));
  ASSERT_TRUE(d.read(b, x));  // -> SHARED
  c.join(a.V);
  c.join(b.V);
  ASSERT_TRUE(d.write(c, x));
  // Original [Write Shared]: R drops back to the bottom epoch.
  EXPECT_EQ(x.R.load(), Epoch());
  EXPECT_TRUE(rc.empty());
}

TEST(FtMutexOriginal, ThrashingPatternRepeatedlyReinflates) {
  // The Section 3 motivation for VerifiedFT's rule change: alternating
  // shared reads and ordered writes force R to oscillate between SHARED
  // and epoch mode under the original rules.
  RaceCollector rc;
  FtMutex d(&rc);
  ThreadState a(0), b(1), c(2);
  FtMutex::VarState x;
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(d.read(a, x));
    ASSERT_TRUE(d.read(b, x));
    EXPECT_TRUE(x.R.load().is_shared()) << "round " << round;
    c.join(a.V);
    c.join(b.V);
    ASSERT_TRUE(d.write(c, x));
    EXPECT_FALSE(x.R.load().is_shared()) << "round " << round;
    a.join(c.V);
    b.join(c.V);
    a.inc();
    b.inc();
    c.inc();
  }
  EXPECT_TRUE(rc.empty());
}

TEST(FtCasOriginal, WriteSharedResetsReadHistory) {
  RaceCollector rc;
  FtCas d(&rc);
  ThreadState a(0), b(1), c(2);
  FtCas::VarState x;
  ASSERT_TRUE(d.read(a, x));
  ASSERT_TRUE(d.read(b, x));
  c.join(a.V);
  c.join(b.V);
  ASSERT_TRUE(d.write(c, x));
  EXPECT_EQ(FtCas::VarState::unpack_r(x.rw.load()), Epoch());
  EXPECT_EQ(FtCas::VarState::unpack_w(x.rw.load()), c.epoch());
}

TEST(FtCas, PackUnpackRoundTrips) {
  const Epoch r = Epoch::make(3, 77);
  const Epoch w = Epoch::make(9, 1234);
  const std::uint64_t packed = FtCas::VarState::pack(r, w);
  EXPECT_EQ(FtCas::VarState::unpack_r(packed), r);
  EXPECT_EQ(FtCas::VarState::unpack_w(packed), w);
  const std::uint64_t shared_pack = FtCas::VarState::pack(Epoch::shared(), w);
  EXPECT_TRUE(FtCas::VarState::unpack_r(shared_pack).is_shared());
  EXPECT_EQ(FtCas::VarState::unpack_w(shared_pack), w);
}

TEST(FtCas, PackedWordIsLockFree) {
  FtCas::VarState x;
  EXPECT_TRUE(x.rw.is_lock_free());
}

Epoch get_r(FtMutex::VarState& v) { return v.R.load(); }
Epoch get_r(FtCas::VarState& v) {
  return FtCas::VarState::unpack_r(v.rw.load());
}

// Optimistic paths under real interference: many threads read one
// variable concurrently through FT-Mutex/FT-CAS; the runs must be
// race-report-free and end in SHARED mode with every reader recorded.
template <typename D>
void hammer_readers(D&& d, RaceCollector& rc) {
  typename std::decay_t<D>::VarState x;
  constexpr int kReaders = 6;
  std::vector<std::unique_ptr<ThreadState>> states;
  std::vector<std::thread> threads;
  states.reserve(kReaders);
  for (Tid t = 0; t < kReaders; ++t) {
    states.push_back(std::make_unique<ThreadState>(t));
  }
  for (Tid t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 3000; ++i) EXPECT_TRUE(d.read(*states[t], x));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(rc.empty());
  for (Tid t = 0; t < kReaders; ++t) {
    // Every reader's last epoch is recorded (either as the exclusive
    // epoch, if somehow still exclusive, or in the shared clock).
    const Epoch e = states[t]->epoch();
    const Epoch r = get_r(x);
    if (r.is_shared()) {
      EXPECT_EQ(x.V.get(t), e) << "reader " << t;
    } else {
      EXPECT_EQ(r, e);
    }
  }
}

TEST(FtMutex, ConcurrentReadersConvergeToShared) {
  RaceCollector rc;
  hammer_readers(FtMutex(&rc), rc);
}

TEST(FtCas, ConcurrentReadersConvergeToShared) {
  RaceCollector rc;
  hammer_readers(FtCas(&rc), rc);
}

}  // namespace
}  // namespace vft
