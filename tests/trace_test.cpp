// Trace language: construction, printing, parsing round-trips.
#include "trace/trace.h"

#include <gtest/gtest.h>

#include <random>

namespace vft::trace {
namespace {

TEST(Trace, OpStrMatchesPaperSyntax) {
  EXPECT_EQ(rd(0, 1).str(), "rd(0,x1)");
  EXPECT_EQ(wr(2, 7).str(), "wr(2,x7)");
  EXPECT_EQ(acq(1, 0).str(), "acq(1,m0)");
  EXPECT_EQ(rel(1, 0).str(), "rel(1,m0)");
  EXPECT_EQ(fork(0, 1).str(), "fork(0,1)");
  EXPECT_EQ(join(0, 1).str(), "join(0,1)");
}

TEST(Trace, ToStringJoinsWithSemicolons) {
  const Trace t = {rd(0, 1), wr(1, 1)};
  EXPECT_EQ(to_string(t), "rd(0,x1); wr(1,x1)");
}

TEST(Trace, ParseRoundTrip) {
  const Trace t = {fork(0, 1), acq(0, 2), wr(0, 3), rel(0, 2),
                   acq(1, 2), rd(1, 3), rel(1, 2), join(0, 1)};
  Trace parsed;
  ASSERT_TRUE(parse(to_string(t), &parsed));
  EXPECT_EQ(parsed, t);
}

TEST(Trace, ParseAcceptsOptionalSigilsAndWhitespace) {
  Trace parsed;
  ASSERT_TRUE(parse("  rd( 0 , 5 ) ;wr(1,x5); acq(0, m3)", &parsed));
  const Trace expect = {rd(0, 5), wr(1, 5), acq(0, 3)};
  EXPECT_EQ(parsed, expect);
}

TEST(Trace, ParseRejectsGarbage) {
  Trace parsed;
  EXPECT_FALSE(parse("frob(0,1)", &parsed));
  EXPECT_FALSE(parse("rd(0", &parsed));
  EXPECT_FALSE(parse("rd(,1)", &parsed));
  EXPECT_FALSE(parse("rd 0,1", &parsed));
}

TEST(Trace, ParseEmptyIsEmptyTrace) {
  Trace parsed = {rd(0, 0)};
  ASSERT_TRUE(parse("   ", &parsed));
  EXPECT_TRUE(parsed.empty());
}

TEST(Trace, ParserNeverCrashesOnArbitraryInput) {
  // Seeded byte-noise sweep: parse() must return true/false, never crash
  // or hang, and accepted inputs must round-trip.
  std::mt19937_64 rng(99);
  const std::string alphabet = "rdwacqelfjoinv(),;x m0123456789\t\n";
  for (int i = 0; i < 2000; ++i) {
    std::string input;
    const std::size_t len = rng() % 40;
    for (std::size_t k = 0; k < len; ++k) {
      input.push_back(alphabet[rng() % alphabet.size()]);
    }
    Trace parsed;
    if (parse(input, &parsed)) {
      Trace again;
      ASSERT_TRUE(parse(to_string(parsed), &again)) << input;
      EXPECT_EQ(again, parsed) << input;
    }
  }
}

TEST(Trace, ParserHandlesHugeNumbers) {
  // Numbers accumulate into uint64 (unsigned wrap is defined); oversized
  // literals parse without UB, and out-of-range tids are rejected later by
  // the feasibility checker, not the parser.
  Trace parsed;
  EXPECT_TRUE(parse("rd(0,x18446744073709551615)", &parsed));
  EXPECT_TRUE(parse("rd(99999999999999999999999999,x0)", &parsed));
}

}  // namespace
}  // namespace vft::trace
