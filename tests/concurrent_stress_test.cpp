// Concurrency stress: real threads hammering each detector through the
// runtime with disciplined (race-free) and undisciplined (racy) access
// patterns. Disciplined runs must stay report-free under arbitrary
// schedules; racy runs must report. Run under -fsanitize=thread in the
// nightly configuration to also check the detectors' own synchronization
// (the ironic bug class the paper is about).
#include <gtest/gtest.h>

#include "runtime/instrument.h"
#include "vft/detector.h"

namespace vft {
namespace {

template <typename D>
class Stress : public ::testing::Test {};

using AllDetectors = ::testing::Types<VftV1, VftV15, VftV2, FtMutex, FtCas, Djit>;
TYPED_TEST_SUITE(Stress, AllDetectors);

TYPED_TEST(Stress, DisciplinedMixedWorkloadIsQuiet) {
  RaceCollector rc;
  rt::Runtime<TypeParam> R{TypeParam(&rc)};
  typename rt::Runtime<TypeParam>::MainScope scope(R);
  constexpr std::size_t kVars = 8;
  constexpr std::uint32_t kThreads = 6;
  rt::Array<std::uint64_t, TypeParam> vars(R, kVars, 0);
  std::vector<std::unique_ptr<rt::Mutex<TypeParam>>> locks;
  for (std::size_t i = 0; i < kVars; ++i) {
    locks.push_back(std::make_unique<rt::Mutex<TypeParam>>(R));
  }
  rt::Array<std::uint64_t, TypeParam> read_shared(R, 4, 7);
  rt::parallel_for_threads(R, kThreads, [&](std::uint32_t w) {
    std::uint64_t state = w * 77 + 13;
    for (int i = 0; i < 2000; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const std::size_t x = (state >> 33) % kVars;
      rt::Guard<TypeParam> g(*locks[x]);
      if ((state & 1) != 0) {
        vars.store(x, vars.load(x) + 1);
      } else {
        (void)vars.load(x);
      }
      // Plus plenty of unlocked read-shared traffic.
      (void)read_shared.load(state % 4);
    }
  });
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
}

TYPED_TEST(Stress, UndisciplinedWorkloadReports) {
  RaceCollector rc;
  rt::Runtime<TypeParam> R{TypeParam(&rc)};
  typename rt::Runtime<TypeParam>::MainScope scope(R);
  rt::Array<std::uint64_t, TypeParam> vars(R, 2, 0);
  rt::parallel_for_threads(R, 4, [&](std::uint32_t w) {
    for (int i = 0; i < 200; ++i) {
      vars.store(i % 2, w);  // no locks at all
    }
  });
  EXPECT_GE(rc.count(), 1u);
}

TYPED_TEST(Stress, RepeatedRunsWithFreshRuntimesAreIndependent) {
  for (int round = 0; round < 8; ++round) {
    RaceCollector rc;
    rt::Runtime<TypeParam> R{TypeParam(&rc)};
    typename rt::Runtime<TypeParam>::MainScope scope(R);
    rt::Var<int, TypeParam> v(R, 0);
    rt::Mutex<TypeParam> m(R);
    rt::parallel_for_threads(R, 3, [&](std::uint32_t) {
      for (int i = 0; i < 50; ++i) {
        rt::Guard<TypeParam> g(m);
        v.store(v.load() + 1);
      }
    });
    EXPECT_EQ(v.load(), 150);
    EXPECT_TRUE(rc.empty());
  }
}

// Tid reuse under churn: more total threads than the epoch tid space,
// kept race-free by join ordering. Exercises Registry slot recycling and
// the clock-continuation construction.
TYPED_TEST(Stress, ThreadChurnBeyondTidSpace) {
  RaceCollector rc;
  rt::Runtime<TypeParam> R{TypeParam(&rc)};
  typename rt::Runtime<TypeParam>::MainScope scope(R);
  rt::Var<std::uint64_t, TypeParam> acc(R, 0);
  constexpr int kGenerations = 300;  // > Epoch::kMaxTid with reuse
  for (int g = 0; g < kGenerations; ++g) {
    rt::Thread<TypeParam> t(R, [&] { acc.store(acc.load() + 1); });
    t.join();
  }
  EXPECT_EQ(acc.load(), static_cast<std::uint64_t>(kGenerations));
  EXPECT_TRUE(rc.empty()) << rc.first()->str();
  EXPECT_LE(R.registry().slots_in_use(), 3u);  // main + recycled slots
}

}  // namespace
}  // namespace vft
