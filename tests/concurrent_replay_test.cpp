// Concurrent replay: running each trace thread's handlers on a dedicated
// OS thread (with the trace as the enforced interleaving) must produce
// exactly the sequential replay's verdicts, for every detector, across
// racy and race-free trace sweeps.
#include <gtest/gtest.h>

#include "trace/generator.h"
#include "trace/replay.h"
#include "vft/detector.h"

namespace vft {
namespace {

using trace::GeneratorConfig;
using trace::Trace;

template <typename D>
void check_equivalence() {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    for (const double disciplined : {1.0, 0.6}) {
      GeneratorConfig cfg;
      cfg.initial_threads = 3;
      cfg.max_threads = 2;
      cfg.vars = 6;
      cfg.ops = 120;
      cfg.disciplined_fraction = disciplined;
      cfg.seed = seed;
      const Trace t = trace::generate(cfg);

      RaceCollector rc_seq, rc_conc;
      D d_seq(&rc_seq);
      D d_conc(&rc_conc);
      const trace::ReplayResult seq = trace::replay(t, d_seq);
      const trace::ReplayResult conc = trace::concurrent_replay(t, d_conc);
      ASSERT_EQ(seq.first_race, conc.first_race)
          << D::kName << " seed " << seed << "\n" << trace::to_string(t);
      ASSERT_EQ(seq.racy_ops, conc.racy_ops)
          << D::kName << " seed " << seed;
      ASSERT_EQ(rc_seq.count(), rc_conc.count());
    }
  }
}

TEST(ConcurrentReplay, MatchesSequentialVftV1) { check_equivalence<VftV1>(); }
TEST(ConcurrentReplay, MatchesSequentialVftV15) { check_equivalence<VftV15>(); }
TEST(ConcurrentReplay, MatchesSequentialVftV2) { check_equivalence<VftV2>(); }
TEST(ConcurrentReplay, MatchesSequentialFtMutex) { check_equivalence<FtMutex>(); }
TEST(ConcurrentReplay, MatchesSequentialFtCas) { check_equivalence<FtCas>(); }
TEST(ConcurrentReplay, MatchesSequentialDjit) { check_equivalence<Djit>(); }

TEST(ConcurrentReplay, EmptyTrace) {
  VftV2 d;
  const trace::ReplayResult r = trace::concurrent_replay({}, d);
  EXPECT_FALSE(r.first_race.has_value());
}

TEST(ConcurrentReplay, Figure1StyleRaceFound) {
  Trace t;
  ASSERT_TRUE(trace::parse(
      "wr(0,x0); acq(0,m0); rel(0,m0); acq(1,m0); rd(1,x0); rel(1,m0); "
      "rd(0,x0); wr(0,x0)",
      &t));
  RaceCollector rc;
  VftV2 d(&rc);
  const trace::ReplayResult r = trace::concurrent_replay(t, d);
  ASSERT_TRUE(r.first_race.has_value());
  EXPECT_EQ(*r.first_race, 7u);  // the final write races with B's read
  EXPECT_EQ(rc.first()->kind, RaceKind::kSharedWrite);
}

}  // namespace
}  // namespace vft
