// Golden trace corpus: curated traces under tests/corpus/, named
// <name>.racy.trace or <name>.free.trace. Every file must parse, be
// feasible, and get the verdict its name promises - from the HB oracle
// (both implementations), the specification, and all six detectors, in
// sequential and concurrent replay.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "trace/feasibility.h"
#include "trace/hb_oracle.h"
#include "trace/replay.h"
#include "vft/detector.h"

#ifndef VFT_CORPUS_DIR
#error "VFT_CORPUS_DIR must point at tests/corpus"
#endif

namespace vft {
namespace {

struct CorpusEntry {
  std::string name;
  trace::Trace t;
  bool racy;
};

std::vector<CorpusEntry> load_corpus() {
  std::vector<CorpusEntry> entries;
  for (const auto& file :
       std::filesystem::directory_iterator(VFT_CORPUS_DIR)) {
    const std::string name = file.path().filename().string();
    if (file.path().extension() != ".trace") continue;
    std::ifstream in(file.path());
    std::ostringstream text;
    std::string line;
    while (std::getline(in, line)) text << line << "; ";
    CorpusEntry e;
    e.name = name;
    e.racy = name.find(".racy.") != std::string::npos;
    const bool parsed = trace::parse(text.str(), &e.t);
    EXPECT_TRUE(parsed) << name;
    if (parsed) entries.push_back(std::move(e));
  }
  return entries;
}

TEST(Corpus, HasBothVerdictKinds) {
  const auto corpus = load_corpus();
  std::size_t racy = 0, free = 0;
  for (const auto& e : corpus) (e.racy ? racy : free)++;
  EXPECT_GE(racy, 4u);
  EXPECT_GE(free, 4u);
}

TEST(Corpus, AllFeasible) {
  for (const auto& e : load_corpus()) {
    const auto err = trace::check_feasible(e.t);
    EXPECT_FALSE(err.has_value())
        << e.name << ": " << (err ? err->message : "");
  }
}

TEST(Corpus, OraclesAgreeWithVerdicts) {
  for (const auto& e : load_corpus()) {
    EXPECT_EQ(!trace::analyze(e.t).race_free(), e.racy) << e.name;
    EXPECT_EQ(!trace::analyze_closure(e.t).race_free(), e.racy) << e.name;
  }
}

TEST(Corpus, SpecAgreesWithVerdicts) {
  for (const auto& e : load_corpus()) {
    for (const RuleSet rules :
         {RuleSet::kVerifiedFT, RuleSet::kOriginalFastTrack}) {
      Spec spec(rules);
      EXPECT_EQ(trace::replay_spec(e.t, spec).error_index.has_value(), e.racy)
          << e.name;
    }
  }
}

TEST(Corpus, EveryDetectorAgreesSequentialAndConcurrent) {
  for (const auto& e : load_corpus()) {
    for_each_detector(nullptr, nullptr, [&](auto& d) {
      using D = std::decay_t<decltype(d)>;
      const trace::ReplayResult seq = trace::replay(e.t, d);
      EXPECT_EQ(seq.first_race.has_value(), e.racy)
          << D::kName << " (sequential) on " << e.name;
      D fresh;
      const trace::ReplayResult conc = trace::concurrent_replay(e.t, fresh);
      EXPECT_EQ(conc.first_race, seq.first_race)
          << D::kName << " (concurrent) on " << e.name;
    });
  }
}

}  // namespace
}  // namespace vft
